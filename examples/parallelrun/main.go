// Parallelrun drives the same fork-join program through the three
// execution engines of the repository and cross-checks them:
//
//  1. the formal interleaving semantics (internal/machine),
//  2. exhaustive exploration of all interleavings (internal/explore),
//  3. the goroutine runtime (internal/runtime),
//
// and then demonstrates the Section 8 places extension: the same
// program with place-switching asyncs and the same-place refinement
// of its MHP relation.
//
//	go run ./examples/parallelrun
package main

import (
	"fmt"

	"fx10/internal/constraints"
	"fx10/internal/explore"
	"fx10/internal/machine"
	"fx10/internal/mhp"
	"fx10/internal/parser"
	"fx10/internal/places"
	"fx10/internal/runtime"
	"fx10/internal/syntax"
)

// A three-way fan-out with a racy read: a[3] is read while workers
// may still be running, so several final states are reachable.
const fanout = `
array 8;

void main() {
  async { a[0] = 1; a[3] = 1; }
  async { a[1] = 1; a[3] = 2; }
  async { a[2] = 1; a[3] = 3; }
  a[4] = a[3] + 1;
}
`

// The placed variant distributes the workers over three places.
const placed = `
array 8;

void main() {
  A0: async at (1) { W0: a[0] = 1; }
  A1: async at (2) { W1: a[1] = 1; }
  A2: async { W2: a[2] = 1; }
  H: skip;
}
`

func main() {
	p := parser.MustParse(fanout)

	// 1. All final states the formal semantics can reach.
	finals, complete := explore.ReachableFinals(p, nil, 2_000_000)
	fmt.Printf("formal semantics: %d reachable final arrays (complete=%v)\n", len(finals), complete)

	// 2. Sampled interleavings via the seeded random scheduler.
	seen := map[string]bool{}
	for seed := int64(0); seed < 200; seed++ {
		res := machine.Run(p, machine.Initial(p, nil), machine.NewRandom(seed), 100_000)
		seen[res.Final.A.Key()] = true
	}
	fmt.Printf("random scheduler: sampled %d distinct finals\n", len(seen))

	// 3. Real goroutines; every observed final must be formally
	// reachable.
	observed := map[string]bool{}
	for i := 0; i < 500; i++ {
		res, err := runtime.Run(p, nil, runtime.Options{})
		if err != nil {
			panic(err)
		}
		k := machine.Array(res.Array).Key()
		if _, ok := finals[k]; !ok {
			panic(fmt.Sprintf("goroutine runtime reached %v, not reachable formally", res.Array))
		}
		observed[k] = true
	}
	fmt.Printf("goroutine runtime: observed %d of the %d reachable finals, all valid\n",
		len(observed), len(finals))

	// 4. Places extension.
	q := parser.MustParse(placed)
	r := mhp.MustAnalyze(q, constraints.ContextSensitive)
	pi := places.Compute(q)
	refined := pi.Refine(r.M)
	fmt.Printf("\nplaces extension: %d MHP pairs, %d at a common place\n", r.M.Len(), refined.Len())
	w0, _ := q.LabelByName("W0")
	w1, _ := q.LabelByName("W1")
	w2, _ := q.LabelByName("W2")
	h, _ := q.LabelByName("H")
	fmt.Printf("  W0@%v W1@%v W2@%v H@%v\n",
		pi.Places(w0), pi.Places(w1), pi.Places(w2), pi.Places(h))
	fmt.Printf("  (W0,W1) same place? %v   (W2,H) same place? %v\n",
		refined.Has(int(w0), int(w1)), refined.Has(int(w2), int(h)))
	_ = syntax.Print
}
