// Go front end: analyze a restricted-Go program — goroutines as
// async, WaitGroup scopes as finish — without writing any FX10.
//
//	go run ./examples/gofront
package main

import (
	"fmt"
	"sort"

	"fx10/internal/condensed"
	"fx10/internal/constraints"
	"fx10/internal/frontend"
	"fx10/internal/mhp"
	"fx10/internal/syntax"
)

// A fan-out in ordinary Go: main spawns workers under a WaitGroup,
// does some work of its own, and joins. The front end lowers the
// wg span to a finish, each `go` to an async, and calls to declared
// functions to call edges; everything else is skip-lowered with a
// diagnostic (the conservative direction — dropped code only ever
// adds behavior the analysis already over-approximates).
const src = `
package main

import "sync"

func work() {}
func tally() {}

func main() {
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
	}
	work()
	wg.Wait()
	tally()
}
`

func main() {
	// 1. Lower through the front-end registry; "main.go" alone is
	// enough for detection (or force it with the language name).
	u, stats, err := frontend.Lower("", "main.go", src)
	if err != nil {
		panic(err)
	}
	fmt.Printf("lowered %d statements, coverage %.2f\n", stats.Stmts, stats.Coverage())
	for _, d := range stats.Dropped {
		fmt.Println("  dropped:", d)
	}

	// 2. The condensed unit is language-agnostic from here on.
	p, err := condensed.Lower(u)
	if err != nil {
		panic(err)
	}
	r := mhp.MustAnalyze(p, constraints.ContextSensitive)

	var pairs []string
	r.M.Each(func(i, j int) {
		if i <= j {
			pairs = append(pairs, fmt.Sprintf("(%s,%s)",
				p.LabelName(syntax.Label(i)), p.LabelName(syntax.Label(j))))
		}
	})
	sort.Strings(pairs)
	fmt.Println("MHP pairs:", pairs)

	// 3. The finish (wg.Wait) orders the workers before tally: no
	// pair involves the statements after the join.
	fmt.Println("workers parallel with main's own work; tally() runs alone")
}
