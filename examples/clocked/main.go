// Clocked demonstrates the Section 8 clocks extension: a split-phase
// stencil step where two clocked workers write their cells in phase
// 0, synchronize on the implicit clock with next, and read each
// other's cells in phase 1 — the X10 idiom that replaces
// finish-per-step barriers.
//
// The example runs the program under the faithful barrier semantics
// (internal/clocks), shows that the erased core analysis reports
// cross-phase MHP pairs, and that the static phase refinement removes
// exactly those, validated against the dynamic execution.
//
//	go run ./examples/clocked
package main

import (
	"fmt"
	"sort"

	"fx10/internal/clocks"
	"fx10/internal/constraints"
	"fx10/internal/mhp"
	"fx10/internal/parser"
	"fx10/internal/syntax"
)

const src = `
array 8;

void main() {
  L: clocked async {
    WL: a[0] = 1;       // phase 0: write left cell
    NL: next;
    RL: a[2] = a[1] + 1; // phase 1: read right neighbour
  }
  R: clocked async {
    WR: a[1] = 1;       // phase 0: write right cell
    NR: next;
    RR: a[3] = a[0] + 1; // phase 1: read left neighbour
  }
  N: next;
  D: a[4] = a[2] + 1;    // phase 1: main combines
}
`

func main() {
	p := parser.MustParse(src)

	// 1. Execute under the barrier semantics: every schedule sees the
	// phase-0 writes in phase 1.
	for seed := int64(0); seed < 50; seed++ {
		res, err := clocks.Run(p, nil, seed, 100_000)
		if err != nil {
			panic(err)
		}
		if res.Array[2] != 2 || res.Array[3] != 2 {
			panic(fmt.Sprintf("barrier broken: %v", res.Array))
		}
	}
	res, _ := clocks.Run(p, nil, 1, 100_000)
	fmt.Printf("clocked run: a=%v phases=%d steps=%d\n", res.Array, res.Phases, res.Steps)

	// 2. The erased analysis is sound but conservative: it pairs the
	// phase-0 writes with the phase-1 reads.
	r := mhp.MustAnalyze(p, constraints.ContextSensitive)
	pi := clocks.ComputePhases(p)
	refined := pi.Refine(r.M)

	show := func(name string, set interface {
		Each(func(i, j int))
	}) {
		var pairs []string
		set.Each(func(i, j int) {
			if i <= j {
				pairs = append(pairs, fmt.Sprintf("(%s,%s)",
					p.LabelName(syntax.Label(i)), p.LabelName(syntax.Label(j))))
			}
		})
		sort.Strings(pairs)
		fmt.Printf("%-22s %2d pairs: %v\n", name, len(pairs), pairs)
	}
	show("erased analysis:", r.M)
	show("phase-refined:", refined)

	// 3. The refinement removed exactly the cross-phase pairs.
	wl, _ := p.LabelByName("WL")
	rr, _ := p.LabelByName("RR")
	wr, _ := p.LabelByName("WR")
	rl, _ := p.LabelByName("RL")
	fmt.Printf("\n(WL,RR) erased=%v refined=%v   (WR,RL) erased=%v refined=%v\n",
		r.M.Has(int(wl), int(rr)), refined.Has(int(wl), int(rr)),
		r.M.Has(int(wr), int(rl)), refined.Has(int(wr), int(rl)))

	// 4. Static phases, for the record.
	for _, name := range []string{"WL", "WR", "RL", "RR", "D"} {
		l, _ := p.LabelByName(name)
		fmt.Printf("phase(%s) = %v   ", name, pi.PhaseOf(l))
	}
	fmt.Println()
}
