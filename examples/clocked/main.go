// Clocked demonstrates the Section 8 clocks extension: a split-phase
// stencil step where two clocked workers write their cells in phase
// 0, synchronize on the implicit clock with next, and read each
// other's cells in phase 1 — the X10 idiom that replaces
// finish-per-step barriers.
//
// The example runs the program under the faithful barrier semantics
// (internal/clocks), then shows that the analysis is clock-aware out
// of the box: phase-ordering facts are threaded into constraint
// solving, so the standard pipeline already excludes the cross-phase
// pairs a clock-blind solve reports — validated against both the
// dynamic execution and an exhaustive exploration of every schedule.
//
//	go run ./examples/clocked
package main

import (
	"fmt"
	"sort"

	"fx10/internal/clocks"
	"fx10/internal/constraints"
	"fx10/internal/intset"
	"fx10/internal/labels"
	"fx10/internal/mhp"
	"fx10/internal/parser"
	"fx10/internal/syntax"
)

const src = `
array 8;

void main() {
  L: clocked async {
    WL: a[0] = 1;       // phase 0: write left cell
    NL: next;
    RL: a[2] = a[1] + 1; // phase 1: read right neighbour
  }
  R: clocked async {
    WR: a[1] = 1;       // phase 0: write right cell
    NR: next;
    RR: a[3] = a[0] + 1; // phase 1: read left neighbour
  }
  N: next;
  D: a[4] = a[2] + 1;    // phase 1: main combines
}
`

func main() {
	p := parser.MustParse(src)

	// 1. Execute under the barrier semantics: every schedule sees the
	// phase-0 writes in phase 1.
	for seed := int64(0); seed < 50; seed++ {
		res, err := clocks.Run(p, nil, seed, 100_000)
		if err != nil {
			panic(err)
		}
		if res.Array[2] != 2 || res.Array[3] != 2 {
			panic(fmt.Sprintf("barrier broken: %v", res.Array))
		}
	}
	res, _ := clocks.Run(p, nil, 1, 100_000)
	fmt.Printf("clocked run: a=%v phases=%d steps=%d\n", res.Array, res.Phases, res.Steps)

	// 2. The standard pipeline is clock-aware: phase facts prune
	// ordered pairs during solving. A clock-blind solve of the same
	// system shows what that buys.
	r := mhp.MustAnalyze(p, constraints.ContextSensitive)
	blindSys := constraints.Generate(labels.Compute(p), constraints.ContextSensitive)
	blindSys.Phases, blindSys.PhaseCode = nil, nil
	blind := blindSys.Solve(constraints.Options{}).MainM()

	show := func(name string, set *intset.PairSet) {
		var pairs []string
		set.Each(func(i, j int) {
			if i <= j {
				pairs = append(pairs, fmt.Sprintf("(%s,%s)",
					p.LabelName(syntax.Label(i)), p.LabelName(syntax.Label(j))))
			}
		})
		sort.Strings(pairs)
		fmt.Printf("%-22s %2d pairs: %v\n", name, len(pairs), pairs)
	}
	show("clock-blind solve:", blind)
	show("clock-aware (default):", r.M)

	// 3. The cross-phase pairs are gone, and re-applying the post-hoc
	// refinement is a no-op — the pruning already happened inside the
	// solver.
	wl, _ := p.LabelByName("WL")
	rr, _ := p.LabelByName("RR")
	wr, _ := p.LabelByName("WR")
	rl, _ := p.LabelByName("RL")
	pi := clocks.ComputePhases(p)
	if !pi.Refine(r.M).Equal(r.M) {
		panic("post-hoc refinement changed the already-pruned result")
	}
	fmt.Printf("\n(WL,RR) blind=%v aware=%v   (WR,RL) blind=%v aware=%v\n",
		blind.Has(int(wl), int(rr)), r.M.Has(int(wl), int(rr)),
		blind.Has(int(wr), int(rl)), r.M.Has(int(wr), int(rl)))

	// 4. The pruning is sound: exhaustively exploring every schedule
	// under the barrier semantics finds no pair outside the aware M.
	ex := clocks.Explore(p, nil, 1<<20)
	if !ex.Complete || !ex.MHP.SubsetOf(r.M) {
		panic("exact clocked relation escapes the clock-aware analysis")
	}
	fmt.Printf("exhaustive check: %d states, exact ⊆ aware M holds\n", ex.States)

	// 5. Static phases, for the record.
	for _, name := range []string{"WL", "WR", "RL", "RR", "D"} {
		l, _ := p.LabelByName(name)
		fmt.Printf("phase(%s) = %v   ", name, pi.PhaseOf(l))
	}
	fmt.Println()
}
