// Interproc reproduces the paper's Section 2.2 example: modular,
// context-sensitive interprocedural analysis, contrasted with the
// context-insensitive baseline that merges call sites and reports the
// spurious (S3, S4) pair.
//
//	go run ./examples/interproc
package main

import (
	"fmt"
	"sort"

	"fx10/internal/constraints"
	"fx10/internal/fixtures"
	"fx10/internal/mhp"
	"fx10/internal/syntax"
)

func main() {
	p := fixtures.Example22()
	fmt.Println("program (paper, Section 2.2):")
	fmt.Print(fixtures.Example22Source)

	cs := mhp.MustAnalyze(p, constraints.ContextSensitive)
	ci := mhp.MustAnalyze(p, constraints.ContextInsensitive)

	show := func(name string, r *mhp.Result) {
		var pairs []string
		r.M.Each(func(i, j int) {
			if i <= j {
				pairs = append(pairs, fmt.Sprintf("(%s,%s)",
					p.LabelName(syntax.Label(i)), p.LabelName(syntax.Label(j))))
			}
		})
		sort.Strings(pairs)
		fmt.Printf("%-20s %d pairs: %v\n", name, len(pairs), pairs)
	}
	show("context-sensitive:", cs)
	show("context-insensitive:", ci)

	s3, _ := p.LabelByName("S3")
	s4, _ := p.LabelByName("S4")
	fmt.Println()
	fmt.Printf("the (S3,S4) false positive: context-sensitive=%v context-insensitive=%v\n",
		cs.MayHappenInParallel(s3, s4), ci.MayHappenInParallel(s3, s4))

	// Method summaries are the modularity mechanism: f is analyzed
	// once, under R = ∅, and each call site splices in (M_f, O_f).
	fi, _ := p.MethodIndex("f")
	fmt.Printf("summary of f: M has %d pairs, O = %v (S5 may outlive the call)\n",
		cs.Env[fi].M.Len(), cs.Env[fi].O)

	// Ground truth by exhaustive exploration confirms the
	// context-sensitive result is exact here.
	rep := cs.CheckFalsePositives(nil, 1_000_000)
	fmt.Printf("exhaustive check: complete=%v sound=%v false positives=%d\n",
		rep.Complete, rep.SoundnessHolds, len(rep.FalsePositives))
}
