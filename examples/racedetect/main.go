// Racedetect builds the client the paper motivates: a static data-race
// detector on top of the may-happen-in-parallel analysis. Two array
// accesses are a race candidate when they may happen in parallel,
// touch the same index, and at least one writes.
//
// The example analyzes a buggy reduction (workers accumulate into one
// cell without synchronization), confirms the dynamic nondeterminism
// with the goroutine runtime, then analyzes the finish-fixed version
// and shows the candidates disappear.
//
//	go run ./examples/racedetect
package main

import (
	"fmt"

	"fx10/internal/constraints"
	"fx10/internal/mhp"
	"fx10/internal/parser"
	"fx10/internal/runtime"
	"fx10/internal/syntax"
)

// buggy: two workers increment a[0] concurrently and the total is
// read while they may still be running.
const buggy = `
array 4;

void worker() {
  W: a[0] = a[0] + 1;
}

void main() {
  A1: async { worker(); }
  A2: async { worker(); }
  R: a[1] = a[0] + 1;
}
`

// fixed: each worker writes a private cell, and a finish joins them
// before the read. (Merely adding the finish would still leave the
// two increments of a[0] racing with each other — a lost update the
// analysis correctly keeps flagging — so the fix also privatizes.)
const fixed = `
array 4;

void worker1() {
  W1: a[1] = a[1] + 1;
}

void worker2() {
  W2: a[2] = a[2] + 1;
}

void main() {
  F: finish {
    A1: async { worker1(); }
    A2: async { worker2(); }
  }
  R: a[0] = a[1] + 1;
}
`

func analyze(name, src string) []mhp.RaceCandidate {
	p := parser.MustParse(src)
	r := mhp.MustAnalyze(p, constraints.ContextSensitive)
	races := r.RaceCandidates()
	fmt.Printf("%s: %d race candidates\n", name, len(races))
	for _, rc := range races {
		kind := "write/read"
		if rc.WriteWrite {
			kind = "write/write"
		}
		fmt.Printf("  a[%d]: %s vs %s (%s)\n",
			rc.Index, p.LabelName(rc.L1), p.LabelName(rc.L2), kind)
	}
	return races
}

func observe(name, src string, cell int, runs int) map[int64]int {
	p := parser.MustParse(src)
	outcomes := map[int64]int{}
	for i := 0; i < runs; i++ {
		res, err := runtime.Run(p, nil, runtime.Options{})
		if err != nil {
			panic(err)
		}
		outcomes[res.Array[cell]]++
	}
	fmt.Printf("%s: observed a[%d] outcomes over %d goroutine runs: %v\n", name, cell, runs, outcomes)
	return outcomes
}

func main() {
	fmt.Println("--- buggy version ---")
	races := analyze("static analysis", buggy)
	if len(races) < 2 {
		panic("expected the write/write and write/read candidates")
	}
	observe("dynamic runs", buggy, 1, 500)

	fmt.Println()
	fmt.Println("--- fixed version (private cells + finish) ---")
	fixedRaces := analyze("static analysis", fixed)
	if len(fixedRaces) != 0 {
		panic("fixed version should be race free")
	}
	outcomes := observe("dynamic runs", fixed, 0, 500)
	if len(outcomes) != 1 {
		panic(fmt.Sprintf("fixed version should be deterministic, saw %v", outcomes))
	}

	// The self-pair subtlety: the worker's increment W races with
	// itself in the buggy version (two concurrent calls).
	p := parser.MustParse(buggy)
	w, _ := p.LabelByName("W")
	r := mhp.MustAnalyze(p, constraints.ContextSensitive)
	fmt.Println()
	fmt.Printf("W may happen in parallel with itself: %v\n", r.MayHappenInParallel(w, w))
	_ = syntax.Print
}
