// Quickstart: parse an FX10 program, execute it under the formal
// small-step semantics, and run the may-happen-in-parallel analysis.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"sort"

	"fx10/internal/constraints"
	"fx10/internal/machine"
	"fx10/internal/mhp"
	"fx10/internal/parser"
	"fx10/internal/syntax"
)

// A producer/consumer skeleton: the producer async fills a[1] while
// the main activity spins on the flag cell a[0]; the finish then
// joins everything before the result is read.
const src = `
array 4;

void main() {
  a[0] = 1;
  F: finish {
    P: async {
      W1: a[1] = 41;
      W2: a[0] = 0;
    }
    L: while (a[0] != 0) {
      S: skip;
    }
  }
  R: a[2] = a[1] + 1;
}
`

func main() {
	p, err := parser.Parse(src)
	if err != nil {
		panic(err)
	}

	// 1. Execute with the formal interleaving semantics.
	res := machine.Run(p, machine.Initial(p, nil), machine.NewRandom(7), 100_000)
	fmt.Printf("executed %d steps, done=%v, a = %v (result a[2] = %d)\n",
		res.Steps, res.Done, res.Final.A, res.Final.A[2])

	// 2. Analyze: which labeled statements may happen in parallel?
	r := mhp.MustAnalyze(p, constraints.ContextSensitive)
	var pairs []string
	r.M.Each(func(i, j int) {
		if i <= j {
			pairs = append(pairs, fmt.Sprintf("(%s,%s)",
				p.LabelName(syntax.Label(i)), p.LabelName(syntax.Label(j))))
		}
	})
	sort.Strings(pairs)
	fmt.Printf("MHP pairs: %v\n", pairs)

	// 3. The analysis knows the finish ordered W1 before R: no pair
	// involves R.
	rLabel, _ := p.LabelByName("R")
	if len(r.ParallelWith(rLabel)) == 0 {
		fmt.Println("R is properly synchronized: it happens in parallel with nothing")
	}

	// 4. But the producer's writes race with the spinning loop —
	// which is the point of the flag protocol.
	for _, rc := range r.RaceCandidates() {
		kind := "write/read"
		if rc.WriteWrite {
			kind = "write/write"
		}
		fmt.Printf("race candidate on a[%d]: %s vs %s (%s)\n",
			rc.Index, p.LabelName(rc.L1), p.LabelName(rc.L2), kind)
	}
}
