# Development targets. `make verify` is the gate every change must
# pass: it includes the race detector because the analysis engine's
# corpus worker pool must be race-clean.

GO ?= go

.PHONY: verify build vet test race bench benchsmoke profile figures solverbench incrementalbench clockedbench parallelbench serverbench serversmoke storebench store-smoke fleetbench fleet-smoke fuzz fuzz-smoke clocked-smoke parallel-smoke shard-smoke gofrontbench gofront-smoke

verify: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench is the real measurement run (count 3 so best-of can reject
# noise); benchsmoke just checks every benchmark still executes.
bench:
	$(GO) test -run xxx -bench . -benchmem -count 3 ./...
	$(GO) run ./cmd/mhpbench -figure solver -benchjson BENCH_solver.json

benchsmoke:
	$(GO) test -run xxx -bench . -benchtime 1x ./...

# profile writes CPU and heap profiles for the worklist-vs-topo solver
# ablation; inspect with `go tool pprof solver.cpu.pprof`.
profile:
	$(GO) test -run xxx -bench 'BenchmarkSolverWorklist|BenchmarkSolverTopo' -benchmem \
		-cpuprofile solver.cpu.pprof -memprofile solver.mem.pprof .

# solverbench regenerates the committed strategy comparison.
solverbench:
	$(GO) run ./cmd/mhpbench -figure solver -benchjson BENCH_solver.json

# incrementalbench regenerates the committed edit-one-method sweep
# (incremental re-analysis vs from scratch).
incrementalbench:
	$(GO) run ./cmd/mhpbench -figure incremental -benchjson BENCH_incremental.json

# clockedbench regenerates the committed clock-blind vs clock-aware
# comparison (pair counts and solve times over the clocked corpus).
clockedbench:
	$(GO) run ./cmd/mhpbench -figure clocked -benchjson BENCH_clocked.json

# parallelbench regenerates the committed huge-tier scaling figure
# (worklist vs topo vs ptopo across pool widths, 5k–100k labels).
# Takes minutes; the crossover it reports is hardware-dependent.
parallelbench:
	$(GO) run ./cmd/mhpbench -figure parallel -benchjson BENCH_parallel.json

# serverbench regenerates the committed analysis-service load report:
# a mixed query/analyze/delta run plus a cached-/v1/query-only run,
# both in-process (no TCP listener flakiness), seeded.
serverbench:
	printf '{"mixed": %s, "cachedQuery": %s}\n' \
		"$$($(GO) run ./cmd/fx10d loadgen -c 8 -duration 10s -mix query=8,analyze=3,delta=1,goanalyze=1 -json)" \
		"$$($(GO) run ./cmd/fx10d loadgen -c 16 -duration 10s -mix query=1 -json)" \
		> BENCH_server.json

# serversmoke starts a real fx10d, hammers it for 15s over TCP, and
# fails on transport errors or any status outside 2xx/429.
serversmoke:
	./scripts/server_smoke.sh

# storebench regenerates the committed persistent-summary-store
# figure: per-workload cold starts with no/empty/warm store, plus
# cached-query throughput with and without the store.
storebench:
	$(GO) run ./cmd/mhpbench -figure store -benchjson BENCH_store.json

# store-smoke is the CI gate for the persistent summary store: the
# in-process restart scenario plus a real fx10d (built -race) killed
# with SIGTERM and restarted on the same store directory, asserting
# byte-identical reports and warm summary hits in /metrics.
store-smoke:
	./scripts/store_smoke.sh

fleetbench:
	$(GO) run ./cmd/mhpbench -figure fleet -benchjson BENCH_fleet.json

# fleet-smoke is the CI gate for the fleet: the in-process fleet
# scenario (3 replicas + router + mid-load kill, -race), then the same
# topology as real daemons on one shared store behind `fx10d route`,
# with a replica SIGTERMed mid-burst — asserting zero failures, zero
# cross-backend divergences, reroutes counted and warm shared-store
# hits.
fleet-smoke:
	./scripts/fleet_smoke.sh

# shard-smoke is the CI gate for the sharded solver: bit-equality with
# sequential topo across shard/worker configurations under -race.
shard-smoke:
	$(GO) test -race -run 'TestShardEqualsTopo' -count=1 ./internal/shard

figures:
	$(GO) run ./cmd/mhpbench -figure all

# fuzz is the full differential soundness run (observed ⊆ exact ⊆
# static across all solver strategies); fuzz-smoke is the fixed-seed
# CI subset, sized to finish within a minute.
fuzz:
	$(GO) run ./cmd/fx10 fuzz -seeds 1,2,3,4 -n 250

fuzz-smoke:
	$(GO) run ./cmd/fx10 fuzz -seeds 1 -n 200

# clocked-smoke is the CI gate for the clock-aware analysis: a
# fixed-seed clocked differential fuzz run (observed ⊆ exact ⊆ static
# under the barrier semantics; fails on any soundness violation) plus
# a small clocked figure.
clocked-smoke:
	$(GO) run ./cmd/fx10 fuzz -clocked -seeds 1 -n 150
	$(GO) run ./cmd/mhpbench -figure clocked -n 10

# gofrontbench regenerates the committed Go-front-end figure
# (per-corpus-program lowering coverage and pair counts; fails if a
# runtime-observed pair escapes the static relation).
gofrontbench:
	$(GO) run ./cmd/mhpbench -figure gofront -benchjson BENCH_gofront.json

# gofront-smoke is the CI gate for the Go front end: the committed
# goprograms corpus under the race detector (observed ⊆ static on
# every file) plus a fixed-seed cross-front-end oracle run (X10 and
# Go renderings of the same program must analyze bit-identically
# under every solver strategy).
gofront-smoke:
	$(GO) test -race -run 'TestGoPrograms' -count=1 ./internal/gofront
	$(GO) run ./cmd/fx10 fuzz -frontends -seeds 1 -n 200

# parallel-smoke is the CI gate for the concurrent solver: a small
# huge-tier program solved by ptopo at several pool widths under the
# race detector, asserting bit-equality with sequential topo.
parallel-smoke:
	$(GO) test -race -run TestParallelSmokeHugeTier -count=1 ./internal/constraints
