# Development targets. `make verify` is the gate every change must
# pass: it includes the race detector because the analysis engine's
# corpus worker pool must be race-clean.

GO ?= go

.PHONY: verify build vet test race bench figures

verify: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench . -benchtime 1x ./...

figures:
	$(GO) run ./cmd/mhpbench -figure all
