package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func captureRun(t *testing.T, path string, stats, lower bool) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	ferr := run(path, stats, lower)
	w.Close()
	os.Stdout = old
	var sb strings.Builder
	buf := make([]byte, 32<<10)
	for {
		n, rerr := r.Read(buf)
		sb.Write(buf[:n])
		if rerr != nil {
			break
		}
	}
	return sb.String(), ferr
}

func TestX10cStatsAndLower(t *testing.T) {
	out, err := captureRun(t, "../../testdata/pipeline.x10", true, true)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, frag := range []string{
		"loc:",
		"nodes: total=",
		"asyncs: total=2 loop=1 place-switch=1 plain=0",
		"void main() {",
		"void map() {",
		"while (a[0] != 0) {", // the lowered foreach loop
		"async at (1) {",      // the lowered place async
	} {
		if !strings.Contains(out, frag) {
			t.Fatalf("output missing %q:\n%s", frag, out)
		}
	}
}

func TestX10cLibraryCallsCondensed(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "lib.x10")
	src := `
void main() {
  helper();
  System.gc();
  unknown();
}
void helper() { return; }
`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := captureRun(t, path, true, false)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "library calls condensed to skip: 1") {
		t.Fatalf("resolve count wrong:\n%s", out)
	}
}

func TestX10cErrors(t *testing.T) {
	if _, err := captureRun(t, "/nonexistent.x10", true, false); err == nil {
		t.Fatalf("missing file accepted")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.x10")
	if err := os.WriteFile(path, []byte("void main() { async {"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := captureRun(t, path, true, false); err == nil {
		t.Fatalf("bad source accepted")
	}
}
