package main

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fx10/internal/condensed"
	"fx10/internal/frontend"
)

func captureRun(t *testing.T, lang, path string, stats, lower, diag bool) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	ferr := run(lang, path, stats, lower, diag)
	w.Close()
	os.Stdout = old
	var sb strings.Builder
	buf := make([]byte, 32<<10)
	for {
		n, rerr := r.Read(buf)
		sb.Write(buf[:n])
		if rerr != nil {
			break
		}
	}
	return sb.String(), ferr
}

func TestX10cStatsAndLower(t *testing.T) {
	out, err := captureRun(t, "", "../../testdata/pipeline.x10", true, true, false)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, frag := range []string{
		"loc:",
		"nodes: total=",
		"asyncs: total=2 loop=1 place-switch=1 plain=0",
		"coverage:",
		"void main() {",
		"void map() {",
		"while (a[0] != 0) {", // the lowered foreach loop
		"async at (1) {",      // the lowered place async
	} {
		if !strings.Contains(out, frag) {
			t.Fatalf("output missing %q:\n%s", frag, out)
		}
	}
}

func TestX10cLibraryCallsCondensed(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "lib.x10")
	src := `
void main() {
  helper();
  System.gc();
  unknown();
}
void helper() { return; }
`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := captureRun(t, "", path, true, false, true)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "constructs condensed to skip: 1") {
		t.Fatalf("resolve count wrong:\n%s", out)
	}
	if !strings.Contains(out, "dropped: library call unknown") {
		t.Fatalf("-diag output missing the library-call diagnostic:\n%s", out)
	}
}

func TestX10cGoSource(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "main.go")
	src := `package main

import "sync"

func work() {}

func main() {
	var wg sync.WaitGroup
	wg.Go(work)
	wg.Wait()
}
`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	// Extension detection: no -lang needed for .go.
	out, err := captureRun(t, "", path, true, true, false)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, frag := range []string{
		"finish {", // the WaitGroup span
		"async {",  // the wg.Go spawn
		"void work() {",
	} {
		if !strings.Contains(out, frag) {
			t.Fatalf("output missing %q:\n%s", frag, out)
		}
	}
}

func TestX10cErrors(t *testing.T) {
	if _, err := captureRun(t, "", "/nonexistent.x10", true, false, false); err == nil {
		t.Fatalf("missing file accepted")
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.x10")
	if err := os.WriteFile(path, []byte("void main() { async {"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := captureRun(t, "", path, true, false, false)
	if err == nil {
		t.Fatalf("bad source accepted")
	}
	var pe *frontend.ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("parse failure not a *frontend.ParseError: %v", err)
	}
}

// TestX10cExitCodes pins the CLI convention: parse/input/detection
// errors exit 2, analysis (lowering) errors exit 3, everything else 1.
func TestX10cExitCodes(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"parse", &frontend.ParseError{Lang: "go", Err: errors.New("syntax")}, 2},
		{"unknown-lang", &frontend.UnknownLanguageError{Lang: "rust"}, 2},
		{"ambiguous", &frontend.AmbiguousInputError{Path: "-"}, 2},
		{"lowering", &condensed.LoweringError{Err: errors.New("no main")}, 3},
		{"wrapped-lowering", errors.Join(errors.New("ctx"), &condensed.LoweringError{Err: errors.New("dup")}), 3},
		{"io", os.ErrNotExist, 1},
	}
	for _, tc := range cases {
		if got := exitCode(tc.err); got != tc.want {
			t.Errorf("%s: exitCode = %d, want %d", tc.name, got, tc.want)
		}
	}
}

// TestX10cDetectionEdges covers the detection edge cases: an empty
// file with an unclaimed extension, forcing the wrong language onto a
// file, and input with no extension at all. All must classify as
// input errors (exit 2).
func TestX10cDetectionEdges(t *testing.T) {
	dir := t.TempDir()

	// Empty file, extension claimed by no front end: detection fails.
	empty := filepath.Join(dir, "empty.txt")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := captureRun(t, "", empty, true, false, false)
	var ae *frontend.AmbiguousInputError
	if !errors.As(err, &ae) {
		t.Fatalf("empty unclaimed file: got %v, want *AmbiguousInputError", err)
	}
	if exitCode(err) != 2 {
		t.Fatalf("empty unclaimed file: exit %d, want 2", exitCode(err))
	}

	// X10 source forced through the Go front end: parse error, exit 2.
	x10path := filepath.Join(dir, "prog.fx10")
	if err := os.WriteFile(x10path, []byte("def main() { skip; }"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = captureRun(t, "go", x10path, true, false, false)
	var pe *frontend.ParseError
	if !errors.As(err, &pe) {
		t.Fatalf(".fx10 with -lang go: got %v, want *ParseError", err)
	}
	if pe.Lang != "go" || exitCode(err) != 2 {
		t.Fatalf(".fx10 with -lang go: lang %q exit %d, want go/2", pe.Lang, exitCode(err))
	}

	// Empty .go file: claimed by the Go front end, parse succeeds but
	// there is no main to analyze — still a front-end error, exit 2.
	goEmpty := filepath.Join(dir, "empty.go")
	if err := os.WriteFile(goEmpty, []byte("package main\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = captureRun(t, "", goEmpty, true, false, false)
	if !errors.As(err, &pe) || exitCode(err) != 2 {
		t.Fatalf("empty .go file: got %v (exit %d), want *ParseError/2", err, exitCode(err))
	}
}
