// Command x10c is the X10-subset front end: it parses an X10-like
// source file into the condensed form of Figure 7, reports node and
// async statistics, and can lower the program to core FX10 concrete
// syntax for the fx10 tool.
//
// Usage:
//
//	x10c [-stats] [-lower] FILE.x10
package main

import (
	"flag"
	"fmt"
	"os"

	"fx10/internal/condensed"
	"fx10/internal/syntax"
	"fx10/internal/x10"
)

func main() {
	stats := flag.Bool("stats", true, "print node and async statistics")
	lower := flag.Bool("lower", false, "print the lowered core FX10 program")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: x10c [-stats] [-lower] FILE.x10")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *stats, *lower); err != nil {
		fmt.Fprintln(os.Stderr, "x10c:", err)
		os.Exit(1)
	}
}

func run(path string, stats, lower bool) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	unit, st, err := x10.Parse(string(data))
	if err != nil {
		return err
	}
	rewritten := x10.ResolveCalls(unit)

	if stats {
		c := unit.NodeCounts()
		a := unit.AsyncStats()
		fmt.Printf("loc: %d (library calls condensed to skip: %d)\n", st.LOC, rewritten)
		fmt.Printf("nodes: total=%d end=%d async=%d call=%d finish=%d if=%d loop=%d method=%d return=%d skip=%d switch=%d\n",
			c.Total,
			c.Of(condensed.End), c.Of(condensed.Async), c.Of(condensed.Call),
			c.Of(condensed.Finish), c.Of(condensed.If), c.Of(condensed.Loop),
			c.Of(condensed.Method), c.Of(condensed.Return), c.Of(condensed.Skip),
			c.Of(condensed.Switch))
		fmt.Printf("asyncs: total=%d loop=%d place-switch=%d plain=%d\n",
			a.Total, a.Loop, a.PlaceSwitch, a.Plain)
	}
	if lower {
		p, err := condensed.Lower(unit)
		if err != nil {
			return fmt.Errorf("lowering: %w", err)
		}
		fmt.Print(syntax.Print(p))
	}
	return nil
}
