// Command x10c is the front-end driver: it lowers a source file
// through the language front-end boundary (internal/frontend) into
// the condensed form of Figure 7, reports node/async statistics and
// lowering diagnostics, and can lower further to core FX10 concrete
// syntax for the fx10 tool.
//
// Usage:
//
//	x10c [-lang x10|go] [-stats] [-lower] [-diag] FILE
//
// The front end is chosen by -lang, or detected from the file
// extension (.x10, .go). Reading from stdin ("-") requires an
// explicit -lang. Exit codes follow the fx10/mhpbench convention:
// 2 for parse/input errors, 3 for lowering/analysis errors, 1
// otherwise.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"fx10/internal/condensed"
	"fx10/internal/frontend"
	"fx10/internal/syntax"
)

func main() {
	lang := flag.String("lang", "", "source language ("+strings.Join(frontend.Names(), ", ")+"); default: detect from extension")
	stats := flag.Bool("stats", true, "print node and async statistics")
	lower := flag.Bool("lower", false, "print the lowered core FX10 program")
	diag := flag.Bool("diag", false, "print per-construct lowering diagnostics")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: x10c [-lang LANG] [-stats] [-lower] [-diag] FILE")
		os.Exit(2)
	}
	if err := run(*lang, flag.Arg(0), *stats, *lower, *diag); err != nil {
		fmt.Fprintln(os.Stderr, "x10c:", err)
		os.Exit(exitCode(err))
	}
}

// exitCode implements the shared CLI convention: 2 for parse or
// input errors (including front-end detection failures), 3 for
// analysis-stage errors (lowering), 1 otherwise.
func exitCode(err error) int {
	var pe *frontend.ParseError
	var ue *frontend.UnknownLanguageError
	var ae *frontend.AmbiguousInputError
	var le *condensed.LoweringError
	switch {
	case errors.As(err, &pe), errors.As(err, &ue), errors.As(err, &ae):
		return 2
	case errors.As(err, &le):
		return 3
	}
	return 1
}

func run(lang, path string, stats, lower, diag bool) error {
	var data []byte
	var err error
	if path == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		return err
	}
	unit, st, err := frontend.Lower(lang, path, string(data))
	if err != nil {
		return err
	}

	if stats {
		c := unit.NodeCounts()
		a := unit.AsyncStats()
		fmt.Printf("loc: %d (constructs condensed to skip: %d)\n", st.LOC, len(st.Dropped))
		fmt.Printf("nodes: total=%d end=%d async=%d call=%d finish=%d if=%d loop=%d method=%d return=%d skip=%d switch=%d\n",
			c.Total,
			c.Of(condensed.End), c.Of(condensed.Async), c.Of(condensed.Call),
			c.Of(condensed.Finish), c.Of(condensed.If), c.Of(condensed.Loop),
			c.Of(condensed.Method), c.Of(condensed.Return), c.Of(condensed.Skip),
			c.Of(condensed.Switch))
		fmt.Printf("asyncs: total=%d loop=%d place-switch=%d plain=%d\n",
			a.Total, a.Loop, a.PlaceSwitch, a.Plain)
		fmt.Printf("coverage: %.2f (%d of %d statements lowered faithfully)\n",
			st.Coverage(), st.Stmts-len(st.Dropped), st.Stmts)
	}
	if diag {
		for _, d := range st.Dropped {
			fmt.Printf("dropped: %s\n", d)
		}
	}
	if lower {
		p, err := condensed.Lower(unit)
		if err != nil {
			return err
		}
		fmt.Print(syntax.Print(p))
	}
	return nil
}
