package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"fx10/internal/fleet"
	"fx10/internal/syntax"
	"fx10/internal/workloads"
)

// runFleetScenario exercises the fleet end to end, in-process:
//
//  1. start three replicas sharing one summary-store directory
//     (multi-process mode) and a consistent-hash router in front;
//  2. analyze the full workload corpus through the router and record
//     every report;
//  3. assert every replica, asked directly, returns byte-identical
//     reports (the fleet's core invariant), and that the shared store
//     warm-starts the replicas that did not solve first;
//  4. kill the replica owning the corpus' hottest key mid-load and
//     keep driving traffic through the router: every request must
//     still succeed with the recorded bytes — failover is invisible.
//
// Any violated assertion is an error regardless of -strict: the
// scenario exists to be a CI gate for the fleet.
func runFleetScenario(cfg lgConfig) error {
	if cfg.addr != "" || cfg.backends != "" {
		return fmt.Errorf("scenario fleet drives in-process servers; drop -addr/-backends")
	}
	dir := cfg.store
	if dir == "" {
		tmp, err := os.MkdirTemp("", "fx10d-fleet-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	client := &http.Client{Timeout: 30 * time.Second}
	corpus := workloads.All()

	// Three replicas on one shared store.
	const replicas = 3
	repCfg := cfg
	repCfg.store = dir
	repCfg.storeShared = true
	bases := make([]string, replicas)
	shutdowns := make([]func(), replicas)
	for i := range bases {
		base, shutdown, err := selfserve(repCfg)
		if err != nil {
			return err
		}
		bases[i] = base
		shutdowns[i] = shutdown
		defer shutdown()
	}

	// The router in front, on its own listener.
	rt, err := fleet.NewRouter(fleet.RouterConfig{
		Backends:    bases,
		HealthEvery: 100 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	defer rt.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	front := &http.Server{Handler: rt.Handler()}
	go func() { _ = front.Serve(ln) }()
	defer front.Close()
	frontURL := "http://" + ln.Addr().String()

	// Phase 1: the corpus through the router; record the reports.
	want := make(map[string][]byte, len(corpus))
	sources := make(map[string]string, len(corpus))
	for _, b := range corpus {
		src := syntax.Print(b.Program())
		sources[b.Name] = src
		rep, err := analyzeReport(client, frontURL, src, cfg.mode)
		if err != nil {
			return fmt.Errorf("fleet warm %s: %w", b.Name, err)
		}
		want[b.Name] = rep
	}

	// Phase 2: every replica directly — byte-identical reports.
	for i, base := range bases {
		for _, b := range corpus {
			rep, err := analyzeReport(client, base, sources[b.Name], cfg.mode)
			if err != nil {
				return fmt.Errorf("replica %d %s: %w", i, b.Name, err)
			}
			if !bytes.Equal(rep, want[b.Name]) {
				return fmt.Errorf("replica %d: report for %s diverges from the routed run", i, b.Name)
			}
		}
	}

	// The shared store must have warmed the replicas that solved
	// second: at least one replica served summaries from disk.
	warmHits := uint64(0)
	for _, base := range bases {
		var m struct {
			SummaryStore struct {
				Enabled bool   `json:"enabled"`
				Hits    uint64 `json:"hits"`
			} `json:"summaryStore"`
		}
		resp, err := client.Get(base + "/metrics")
		if err != nil {
			return err
		}
		err = json.NewDecoder(resp.Body).Decode(&m)
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("decode replica /metrics: %w", err)
		}
		if !m.SummaryStore.Enabled {
			return fmt.Errorf("replica reports no summary store")
		}
		warmHits += m.SummaryStore.Hits
	}
	if warmHits == 0 {
		return fmt.Errorf("no replica recorded shared-store hits: store not shared, fleet runs cold")
	}

	// Phase 3: kill the owner of the first workload's key mid-load.
	victimKey := "p|" + hashOf(want, corpus[0].Name) + "|" + cfg.mode
	victim := rt.Ring().Lookup(victimKey)
	victimIdx := -1
	for i, b := range bases {
		if b == victim {
			victimIdx = i
		}
	}
	if victimIdx < 0 {
		return fmt.Errorf("ring owner %s is not a replica", victim)
	}

	var (
		wg        sync.WaitGroup
		failures  atomic.Int64
		mismatch  atomic.Int64
		completed atomic.Int64
		killAt    = time.Now().Add(300 * time.Millisecond)
		stopAt    = time.Now().Add(1200 * time.Millisecond)
	)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for time.Now().Before(stopAt) {
				b := corpus[(w+int(completed.Add(1)))%len(corpus)]
				rep, err := analyzeReport(client, frontURL, sources[b.Name], cfg.mode)
				if err != nil {
					failures.Add(1)
					continue
				}
				if !bytes.Equal(rep, want[b.Name]) {
					mismatch.Add(1)
				}
			}
		}(w)
	}
	time.Sleep(time.Until(killAt))
	shutdowns[victimIdx]()
	wg.Wait()

	if n := failures.Load(); n > 0 {
		return fmt.Errorf("fleet kill: %d requests failed during failover", n)
	}
	if n := mismatch.Load(); n > 0 {
		return fmt.Errorf("fleet kill: %d responses diverged after failover", n)
	}
	fmt.Fprintf(os.Stdout,
		"fleet scenario: %d workloads byte-identical across %d replicas; shared-store hits=%d; %d requests served through the kill of replica %d with zero failures\n",
		len(corpus), replicas, warmHits, completed.Load(), victimIdx)
	return nil
}

// hashOf recovers the program hash embedded in a recorded report.
func hashOf(reports map[string][]byte, name string) string {
	var rep struct {
		ProgramHash string `json:"programHash"`
	}
	if json.Unmarshal(reports[name], &rep) == nil {
		return rep.ProgramHash
	}
	return ""
}
