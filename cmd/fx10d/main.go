// Command fx10d is the MHP analysis daemon: internal/server behind a
// plain net/http listener, with expvar metrics published at
// /debug/vars (in addition to the service's own /metrics) and a
// graceful drain on SIGINT/SIGTERM.
//
// Usage:
//
//	fx10d [flags]                   serve (default)
//	fx10d route [flags]             fleet front door: route to replicas
//	fx10d loadgen [flags]           drive a server and report latency
//
// See DESIGN.md §8 for the API and §13 for fleet routing.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"fx10/internal/server"
)

func main() {
	args := os.Args[1:]
	if len(args) > 0 && args[0] == "loadgen" {
		if err := runLoadgen(args[1:]); err != nil {
			fmt.Fprintln(os.Stderr, "fx10d loadgen:", err)
			os.Exit(1)
		}
		return
	}
	if len(args) > 0 && args[0] == "route" {
		if err := runRoute(args[1:]); err != nil {
			fmt.Fprintln(os.Stderr, "fx10d route:", err)
			os.Exit(1)
		}
		return
	}
	if err := runServe(args); err != nil {
		fmt.Fprintln(os.Stderr, "fx10d:", err)
		os.Exit(1)
	}
}

func runServe(args []string) error {
	fs := flag.NewFlagSet("fx10d", flag.ExitOnError)
	var (
		addr       = fs.String("addr", ":8710", "listen address")
		workers    = fs.Int("workers", 0, "concurrent solves (0 = GOMAXPROCS)")
		queue      = fs.Int("queue", 0, "admission queue depth (0 = 4×workers)")
		strategy   = fs.String("strategy", "", "solver strategy (empty = default)")
		solverW    = fs.Int("solver-workers", 0, "pool width inside parallel strategies like ptopo (0 = strategy default)")
		cache      = fs.Int("cache", 0, "program cache entries (0 = default)")
		sumStore   = fs.String("summary-store", "", "directory for the persistent method-summary store (empty = disabled)")
		sumShared  = fs.Bool("summary-store-shared", false, "open the summary store in multi-process mode (fleet replicas sharing one directory)")
		solveTO    = fs.Duration("solve-timeout", 30*time.Second, "per-solve ceiling")
		reqTO      = fs.Duration("request-timeout", 10*time.Second, "per-request deadline")
		drainGrace = fs.Duration("drain-grace", 15*time.Second, "max time to finish in-flight requests on shutdown")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	srv, err := server.New(server.Config{
		Workers:            *workers,
		QueueDepth:         *queue,
		Strategy:           *strategy,
		SolverWorkers:      *solverW,
		CacheSize:          *cache,
		SummaryStorePath:   *sumStore,
		SummaryStoreShared: *sumShared,
		SolveTimeout:       *solveTO,
		RequestTimeout:     *reqTO,
	})
	if err != nil {
		return err
	}
	// The daemon owns the process, so publishing globally is safe
	// here (tests must not: expvar.Publish panics on duplicates).
	expvar.Publish("fx10d", srv.Metrics().Expvar())

	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	httpSrv := &http.Server{Addr: *addr, Handler: mux}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "fx10d: listening on %s\n", *addr)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "fx10d: %v, draining\n", sig)
	}

	// Drain: health flips to 503 so load balancers stop routing here,
	// in-flight requests get drainGrace to land, then outstanding
	// solves are cancelled.
	srv.Drain()
	ctx, cancel := context.WithTimeout(context.Background(), *drainGrace)
	defer cancel()
	err = httpSrv.Shutdown(ctx)
	srv.Close()
	if err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	fmt.Fprintln(os.Stderr, "fx10d: stopped")
	return nil
}
