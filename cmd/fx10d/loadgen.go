package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fx10/internal/condensed"
	"fx10/internal/fleet"
	"fx10/internal/gofront"
	"fx10/internal/progen"
	"fx10/internal/server"
	"fx10/internal/syntax"
	"fx10/internal/workloads"
)

// loadgen drives a server (or, with -addr "", an in-process one) with
// a seeded mix of query/analyze/delta/batch traffic over the
// 13-workload corpus and reports client-side latency percentiles.
// With -scenario restart it instead exercises the persistent summary
// store end to end: warm a server, shut it down cleanly, restart on
// the same store directory, and check that the restarted server
// warm-starts (nonzero store hits) with byte-identical reports.

type lgConfig struct {
	addr        string
	backends    string // comma-separated replica URLs (fleet mode)
	concurrency int
	duration    time.Duration
	seed        int64
	mix         string
	mode        string
	scenario    string
	store       string // selfserve: summary store directory
	storeShared bool   // selfserve: open the store multi-process
	jsonOut     bool
	strict      bool
	workers     int // selfserve only
	queue       int
}

func runLoadgen(args []string) error {
	fs := flag.NewFlagSet("fx10d loadgen", flag.ExitOnError)
	var cfg lgConfig
	fs.StringVar(&cfg.addr, "addr", "", "target server (host:port); empty starts one in-process")
	fs.StringVar(&cfg.backends, "backends", "", "comma-separated replica URLs; routes ops by hash affinity (query/analyze/delta) and round-robin (rest)")
	fs.IntVar(&cfg.concurrency, "c", 8, "concurrent clients")
	fs.DurationVar(&cfg.duration, "duration", 10*time.Second, "traffic duration (after warmup)")
	fs.Int64Var(&cfg.seed, "seed", 1, "rng seed (traffic is deterministic per seed)")
	fs.StringVar(&cfg.mix, "mix", "query=8,analyze=3,delta=1,goanalyze=1", "weighted op mix (ops: query, analyze, goanalyze, delta, batch)")
	fs.StringVar(&cfg.mode, "mode", "cs", "analysis mode (cs or ci)")
	fs.StringVar(&cfg.scenario, "scenario", "", `named scenario instead of mixed traffic ("restart" or "fleet")`)
	fs.StringVar(&cfg.store, "store", "", "selfserve: persistent summary store directory")
	fs.BoolVar(&cfg.jsonOut, "json", false, "emit the report as JSON on stdout")
	fs.BoolVar(&cfg.strict, "strict", false, "exit non-zero on transport errors, any status outside 2xx/429, or cross-backend report divergence (CI smoke)")
	fs.IntVar(&cfg.workers, "workers", 0, "selfserve: solve workers")
	fs.IntVar(&cfg.queue, "queue", 0, "selfserve: admission queue depth")
	if err := fs.Parse(args); err != nil {
		return err
	}
	weights, err := parseMix(cfg.mix)
	if err != nil {
		return err
	}

	if cfg.scenario != "" {
		switch cfg.scenario {
		case "restart":
			return runRestartScenario(cfg)
		case "fleet":
			return runFleetScenario(cfg)
		default:
			return fmt.Errorf("unknown scenario %q (want restart or fleet)", cfg.scenario)
		}
	}

	// Fleet mode: a -backends list replaces the single target. Ops
	// with a content key route by the same consistent-hash ring the
	// fx10d router uses (so replica caches stay hot); the rest
	// round-robin. bases[w%len] is each worker's round-robin start.
	var ring *fleet.Ring
	var bases []string
	if cfg.backends != "" {
		if cfg.addr != "" {
			return fmt.Errorf("-addr and -backends are mutually exclusive")
		}
		for _, b := range strings.Split(cfg.backends, ",") {
			if b = strings.TrimSpace(b); b != "" {
				if !strings.HasPrefix(b, "http") {
					b = "http://" + b
				}
				bases = append(bases, b)
			}
		}
		ring, err = fleet.NewRing(bases, 0)
		if err != nil {
			return err
		}
	}

	base := cfg.addr
	var shutdown func()
	if base == "" && ring == nil {
		base, shutdown, err = selfserve(cfg)
		if err != nil {
			return err
		}
		defer shutdown()
	}
	if base != "" && !strings.HasPrefix(base, "http") {
		base = "http://" + base
	}
	// pick resolves the backend for one op: the ring owner for keyed
	// ops, round-robin otherwise, the single target when no fleet.
	pick := func(key string, rr *int) string {
		if ring == nil {
			return base
		}
		if key != "" {
			return ring.Lookup(key)
		}
		*rr++
		return bases[*rr%len(bases)]
	}

	client := &http.Client{Timeout: 30 * time.Second}

	// Warmup: analyze every workload once so /v1/query has something
	// to hit and the engine cache is hot. In fleet mode every backend
	// is warmed, and the reports are cross-checked: replicas must be
	// byte-identical — divergence is an error under -strict.
	type target struct {
		name   string
		hash   string
		source string
		prog   *syntax.Program
		labels []string
	}
	var targets []target
	var divergences int64
	warmupBases := []string{base}
	if ring != nil {
		warmupBases = bases
	}
	for _, b := range workloads.All() {
		p := b.Program()
		src := syntax.Print(p)
		var hash string
		var firstReport []byte
		for _, wb := range warmupBases {
			var resp server.AnalyzeResponse
			status, err := post(client, wb+"/v1/analyze", server.AnalyzeRequest{Source: src, Mode: cfg.mode}, &resp)
			if err != nil {
				return fmt.Errorf("warmup %s @ %s: %w", b.Name, wb, err)
			}
			if status != http.StatusOK {
				return fmt.Errorf("warmup %s @ %s: status %d", b.Name, wb, status)
			}
			hash = resp.ProgramHash
			rep, err := json.Marshal(resp.Report)
			if err != nil {
				return err
			}
			if firstReport == nil {
				firstReport = rep
			} else if !bytes.Equal(firstReport, rep) {
				divergences++
				fmt.Fprintf(os.Stderr, "loadgen: %s: report from %s diverges from %s\n", b.Name, wb, warmupBases[0])
			}
		}
		names := make([]string, len(p.Labels))
		for l := range p.Labels {
			names[l] = p.Labels[l].Name
		}
		targets = append(targets, target{name: b.Name, hash: hash, source: src, prog: p, labels: names})
	}

	// Go-language traffic: deterministic restricted-Go sources derived
	// from generated programs (condensed → gofront.Render), analyzed
	// with language:"go" so the server's front-end path stays hot under
	// load alongside the core-syntax ops.
	goSources, err := renderGoSources(cfg.seed, 8)
	if err != nil {
		return err
	}

	var (
		mu        sync.Mutex
		latencies = map[string][]time.Duration{}
		statuses  = map[int]int64{}
		errorsN   atomic.Int64
	)
	record := func(op string, d time.Duration, status int) {
		mu.Lock()
		latencies[op] = append(latencies[op], d)
		statuses[status]++
		mu.Unlock()
	}

	deadline := time.Now().Add(cfg.duration)
	var wg sync.WaitGroup
	for w := 0; w < cfg.concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.seed + int64(w)))
			rr := w // round-robin cursor, staggered per worker
			// Each client owns one delta session rooted at one
			// workload; edits accumulate across the run.
			sessProg := progen.Clone(targets[w%len(targets)].prog)
			sessID := "loadgen-" + strconv.Itoa(w)
			for time.Now().Before(deadline) {
				t := targets[rng.Intn(len(targets))]
				op := pickOp(rng, weights)
				t0 := time.Now()
				var status int
				var err error
				switch op {
				case "query":
					a := t.labels[rng.Intn(len(t.labels))]
					b := t.labels[rng.Intn(len(t.labels))]
					status, err = post(client, pick("p|"+t.hash+"|"+cfg.mode, &rr)+"/v1/query", server.QueryRequest{
						ProgramHash: t.hash, Mode: cfg.mode, A: a, B: b,
					}, nil)
				case "analyze":
					_, status, err = postAnalyze(client, pick("p|"+t.hash+"|"+cfg.mode, &rr), t.source, cfg.mode)
				case "goanalyze":
					status, err = post(client, pick("", &rr)+"/v1/analyze", server.AnalyzeRequest{
						Source: goSources[rng.Intn(len(goSources))], Mode: cfg.mode, Language: "go",
					}, nil)
				case "delta":
					// Sessions are per-daemon state: sticky routing by
					// session identity, exactly like the fleet router.
					mi := rng.Intn(len(sessProg.Methods))
					sessProg = progen.MutateMethod(sessProg, mi, rng.Int63())
					status, err = post(client, pick("s|"+sessID, &rr)+"/v1/delta", server.DeltaRequest{
						Session: sessID, Source: syntax.Print(sessProg), Mode: cfg.mode,
					}, nil)
				case "batch":
					// A small corpus submission: 2–4 random workloads in
					// one request, one admission slot server-side.
					n := 2 + rng.Intn(3)
					req := server.BatchRequest{Mode: cfg.mode}
					for k := 0; k < n; k++ {
						bt := targets[rng.Intn(len(targets))]
						req.Programs = append(req.Programs, server.BatchProgram{Name: bt.name, Source: bt.source})
					}
					status, err = post(client, pick("", &rr)+"/v1/batch", req, nil)
				}
				if err != nil {
					errorsN.Add(1)
					continue
				}
				record(op, time.Since(t0), status)
			}
		}(w)
	}
	wg.Wait()

	rep := buildReport(cfg, latencies, statuses, errorsN.Load())
	if cfg.jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
	} else {
		printReport(os.Stdout, rep)
	}
	if cfg.strict {
		if divergences > 0 {
			return fmt.Errorf("strict: %d cross-backend report divergences", divergences)
		}
		if rep.Errors > 0 {
			return fmt.Errorf("strict: %d transport errors", rep.Errors)
		}
		for code, n := range rep.Statuses {
			if c, _ := strconv.Atoi(code); c/100 != 2 && c != http.StatusTooManyRequests {
				return fmt.Errorf("strict: %d responses with status %s", n, code)
			}
		}
	}
	return nil
}

// renderGoSources builds n deterministic restricted-Go programs for
// the goanalyze op: generated core programs converted to condensed
// form and rendered as Go (the same path the cross-front-end oracle
// exercises). Clock-free by construction (progen.Finite), so every
// source lowers.
func renderGoSources(seed int64, n int) ([]string, error) {
	var out []string
	for i := int64(0); len(out) < n; i++ {
		p := progen.Generate(seed+i, progen.Finite())
		u, err := condensed.FromProgram(p)
		if err != nil {
			return nil, fmt.Errorf("goanalyze corpus: %w", err)
		}
		src, err := gofront.Render(u)
		if err != nil {
			return nil, fmt.Errorf("goanalyze corpus: %w", err)
		}
		out = append(out, src)
	}
	return out, nil
}

// selfserve starts an in-process server on a loopback port.
func selfserve(cfg lgConfig) (addr string, shutdown func(), err error) {
	srv, err := server.New(server.Config{
		Workers:            cfg.workers,
		QueueDepth:         cfg.queue,
		SummaryStorePath:   cfg.store,
		SummaryStoreShared: cfg.storeShared,
	})
	if err != nil {
		return "", nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go func() { _ = httpSrv.Serve(ln) }()
	return "http://" + ln.Addr().String(), func() {
		_ = httpSrv.Close()
		srv.Close()
	}, nil
}

func postAnalyze(client *http.Client, base, source, mode string) (hash string, status int, err error) {
	var resp server.AnalyzeResponse
	status, err = post(client, base+"/v1/analyze", server.AnalyzeRequest{Source: source, Mode: mode}, &resp)
	return resp.ProgramHash, status, err
}

// post sends a JSON body and optionally decodes a 2xx response into
// out. Non-2xx statuses are returned, not errors: the load generator
// counts them.
func post(client *http.Client, url string, body any, out any) (int, error) {
	buf, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode/100 == 2 {
		return resp.StatusCode, json.NewDecoder(resp.Body).Decode(out)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}

func parseMix(s string) (map[string]int, error) {
	out := map[string]int{}
	for _, part := range strings.Split(s, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("bad mix element %q (want op=weight)", part)
		}
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("bad mix weight %q", v)
		}
		switch k {
		case "query", "analyze", "goanalyze", "delta", "batch":
			out[k] = n
		default:
			return nil, fmt.Errorf("unknown op %q (want query, analyze, goanalyze, delta or batch)", k)
		}
	}
	return out, nil
}

func pickOp(rng *rand.Rand, weights map[string]int) string {
	total := 0
	for _, w := range weights {
		total += w
	}
	if total == 0 {
		return "query"
	}
	n := rng.Intn(total)
	for _, op := range []string{"query", "analyze", "goanalyze", "delta", "batch"} {
		if n -= weights[op]; n < 0 {
			return op
		}
	}
	return "query"
}

// lgReport is the machine-readable loadgen result (BENCH_server.json).
type lgReport struct {
	Concurrency int                 `json:"concurrency"`
	DurationSec float64             `json:"durationSec"`
	Mix         string              `json:"mix"`
	Mode        string              `json:"mode"`
	Seed        int64               `json:"seed"`
	TotalReqs   int64               `json:"totalReqs"`
	ReqPerSec   float64             `json:"reqPerSec"`
	Errors      int64               `json:"errors"`
	Statuses    map[string]int64    `json:"statuses"`
	Ops         map[string]lgOpStat `json:"ops"`
}

type lgOpStat struct {
	Count     int64   `json:"count"`
	ReqPerSec float64 `json:"reqPerSec"`
	P50Ms     float64 `json:"p50Ms"`
	P95Ms     float64 `json:"p95Ms"`
	P99Ms     float64 `json:"p99Ms"`
	MaxMs     float64 `json:"maxMs"`
}

func buildReport(cfg lgConfig, latencies map[string][]time.Duration, statuses map[int]int64, errs int64) lgReport {
	rep := lgReport{
		Concurrency: cfg.concurrency,
		DurationSec: cfg.duration.Seconds(),
		Mix:         cfg.mix,
		Mode:        cfg.mode,
		Seed:        cfg.seed,
		Errors:      errs,
		Statuses:    map[string]int64{},
		Ops:         map[string]lgOpStat{},
	}
	for code, n := range statuses {
		rep.Statuses[strconv.Itoa(code)] = n
		rep.TotalReqs += n
	}
	rep.ReqPerSec = float64(rep.TotalReqs) / cfg.duration.Seconds()
	for op, ds := range latencies {
		sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
		st := lgOpStat{
			Count:     int64(len(ds)),
			ReqPerSec: float64(len(ds)) / cfg.duration.Seconds(),
			P50Ms:     pctMs(ds, 0.50),
			P95Ms:     pctMs(ds, 0.95),
			P99Ms:     pctMs(ds, 0.99),
		}
		if len(ds) > 0 {
			st.MaxMs = float64(ds[len(ds)-1].Nanoseconds()) / 1e6
		}
		rep.Ops[op] = st
	}
	return rep
}

func pctMs(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return float64(sorted[i].Nanoseconds()) / 1e6
}

func printReport(w io.Writer, rep lgReport) {
	fmt.Fprintf(w, "loadgen: %d clients × %.0fs, mix %s, mode %s, seed %d\n",
		rep.Concurrency, rep.DurationSec, rep.Mix, rep.Mode, rep.Seed)
	fmt.Fprintf(w, "  %d requests (%.0f req/s), %d transport errors\n", rep.TotalReqs, rep.ReqPerSec, rep.Errors)
	var codes []string
	for c := range rep.Statuses {
		codes = append(codes, c)
	}
	sort.Strings(codes)
	for _, c := range codes {
		fmt.Fprintf(w, "  status %s: %d\n", c, rep.Statuses[c])
	}
	for _, op := range []string{"query", "analyze", "goanalyze", "delta", "batch"} {
		st, ok := rep.Ops[op]
		if !ok {
			continue
		}
		fmt.Fprintf(w, "  %-8s %7d reqs %8.0f req/s  p50 %.3fms  p95 %.3fms  p99 %.3fms  max %.1fms\n",
			op, st.Count, st.ReqPerSec, st.P50Ms, st.P95Ms, st.P99Ms, st.MaxMs)
	}
}
