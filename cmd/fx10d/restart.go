package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"time"

	"fx10/internal/server"
	"fx10/internal/syntax"
	"fx10/internal/workloads"
)

// runRestartScenario exercises the persistent summary store across a
// simulated daemon restart:
//
//  1. start a server with a summary store, analyze the full workload
//     corpus, record every report, shut the server down cleanly;
//  2. start a fresh server on the same store directory, analyze the
//     corpus again;
//  3. assert the restarted server's reports are byte-identical and
//     that its first analyzes warm-started from disk (nonzero
//     summary-store hits in /metrics).
//
// Any violated assertion is an error regardless of -strict: the
// scenario exists to be a CI gate for the store.
func runRestartScenario(cfg lgConfig) error {
	if cfg.addr != "" {
		return fmt.Errorf("scenario restart drives in-process servers; drop -addr")
	}
	dir := cfg.store
	if dir == "" {
		tmp, err := os.MkdirTemp("", "fx10d-restart-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	client := &http.Client{Timeout: 30 * time.Second}
	corpus := workloads.All()

	// Phase 1: populate the store.
	phase1 := cfg
	phase1.store = dir
	base, shutdown, err := selfserve(phase1)
	if err != nil {
		return err
	}
	want := make(map[string][]byte, len(corpus))
	for _, b := range corpus {
		rep, err := analyzeReport(client, base, syntax.Print(b.Program()), cfg.mode)
		if err != nil {
			shutdown()
			return fmt.Errorf("warm phase %s: %w", b.Name, err)
		}
		want[b.Name] = rep
	}
	// Clean shutdown: server.Close → engine.Close → store sync +
	// snapshot, the same path a drained fx10d takes on SIGTERM.
	shutdown()

	// Phase 2: a cold process, a warm disk.
	base, shutdown, err = selfserve(phase1)
	if err != nil {
		return err
	}
	defer shutdown()
	for _, b := range corpus {
		rep, err := analyzeReport(client, base, syntax.Print(b.Program()), cfg.mode)
		if err != nil {
			return fmt.Errorf("restart phase %s: %w", b.Name, err)
		}
		if !bytes.Equal(rep, want[b.Name]) {
			return fmt.Errorf("restart phase %s: report differs from pre-restart run", b.Name)
		}
	}

	var m struct {
		SummaryStore struct {
			Enabled bool   `json:"enabled"`
			Records int    `json:"records"`
			Hits    uint64 `json:"hits"`
			Misses  uint64 `json:"misses"`
		} `json:"summaryStore"`
	}
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return fmt.Errorf("decode /metrics: %w", err)
	}
	if !m.SummaryStore.Enabled {
		return fmt.Errorf("restarted server reports no summary store")
	}
	if m.SummaryStore.Hits == 0 {
		return fmt.Errorf("restarted server recorded no summary-store hits (records=%d misses=%d): cold start, not warm",
			m.SummaryStore.Records, m.SummaryStore.Misses)
	}
	fmt.Fprintf(os.Stdout,
		"restart scenario: %d workloads byte-identical across restart; store records=%d, warm hits=%d, misses=%d\n",
		len(corpus), m.SummaryStore.Records, m.SummaryStore.Hits, m.SummaryStore.Misses)
	return nil
}

// analyzeReport posts one analyze and returns the report's canonical
// JSON bytes (mhp.Report marshals deterministically).
func analyzeReport(client *http.Client, base, source, mode string) ([]byte, error) {
	var resp server.AnalyzeResponse
	status, err := post(client, base+"/v1/analyze", server.AnalyzeRequest{Source: source, Mode: mode}, &resp)
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		return nil, fmt.Errorf("status %d", status)
	}
	return json.Marshal(resp.Report)
}
