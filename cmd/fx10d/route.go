package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"fx10/internal/fleet"
)

// runRoute serves the fleet front door: a consistent-hash router over
// fx10d replicas (internal/fleet), with its own /healthz, /metrics and
// /debug/vars, and the same signal-driven graceful shutdown as serve.
func runRoute(args []string) error {
	fs := flag.NewFlagSet("fx10d route", flag.ExitOnError)
	var (
		addr     = fs.String("addr", ":8709", "listen address")
		backends = fs.String("backends", "", "comma-separated fx10d replica base URLs (required)")
		vnodes   = fs.Int("vnodes", 0, "virtual nodes per backend (0 = default)")
		healthEv = fs.Duration("health-every", time.Second, "health-sweep period")
		healthTO = fs.Duration("health-timeout", time.Second, "per-probe timeout")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var list []string
	for _, b := range strings.Split(*backends, ",") {
		if b = strings.TrimSpace(b); b != "" {
			list = append(list, b)
		}
	}
	if len(list) == 0 {
		return fmt.Errorf("-backends is required (comma-separated replica URLs)")
	}

	rt, err := fleet.NewRouter(fleet.RouterConfig{
		Backends:      list,
		Vnodes:        *vnodes,
		HealthEvery:   *healthEv,
		HealthTimeout: *healthTO,
	})
	if err != nil {
		return err
	}
	expvar.Publish("fx10route", rt.Metrics().Expvar())

	mux := http.NewServeMux()
	mux.Handle("/", rt.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	httpSrv := &http.Server{Addr: *addr, Handler: mux}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "fx10d route: listening on %s, %d backends\n", *addr, len(list))

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		rt.Close()
		return err
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "fx10d route: %v, shutting down\n", sig)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	err = httpSrv.Shutdown(ctx)
	rt.Close()
	if err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	fmt.Fprintln(os.Stderr, "fx10d route: stopped")
	return nil
}
