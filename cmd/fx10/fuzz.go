package main

import (
	"flag"
	"fmt"
	"strconv"
	"strings"

	"fx10/internal/difffuzz"
)

// cmdFuzz runs the differential soundness fuzzer: generated programs
// are checked for observed ⊆ exact ⊆ static and cross-strategy
// agreement, with violating programs delta-debugged to minimal
// reproducers. A non-zero exit reports violations (or, with
// -selftest, the absence of them).
func cmdFuzz(args []string) error {
	fs := flag.NewFlagSet("fuzz", flag.ContinueOnError)
	seeds := fs.String("seeds", "1", "comma-separated base seeds")
	n := fs.Int("n", 100, "programs per base seed")
	budget := fs.Int("budget", 200_000, "exhaustive-exploration state budget per program")
	parallel := fs.Int("parallel", 0, "worker pool width (0 = GOMAXPROCS)")
	minimize := fs.Bool("minimize", true, "delta-debug violating programs to minimal reproducers")
	incremental := fs.Bool("incremental", true, "also check incremental re-analysis (AnalyzeDelta) against scratch on a mutated method")
	runs := fs.Int("runs", 3, "recorded runtime executions per program")
	steps := fs.Int64("steps", 100_000, "instruction budget per recorded execution")
	failures := fs.String("failures", "testdata/fuzz-failures", "directory for reproducer files (written only on violation)")
	selftest := fs.Bool("selftest", false, "fuzz a deliberately unsound analysis; succeeds only if the harness catches it")
	clocked := fs.Bool("clocked", false, "fuzz the clocked corpus: barrier-aware exact relation vs the phase-aware analysis")
	frontends := fs.Bool("frontends", false, "also run the cross-front-end oracle: render each program as X10 and as Go, lower both, require bit-identical reports")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("fuzz takes no positional arguments")
	}

	var seedVals []int64
	for _, part := range strings.Split(*seeds, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
		if err != nil {
			return fmt.Errorf("bad seed %q", part)
		}
		seedVals = append(seedVals, v)
	}

	cfg := difffuzz.Config{
		Seeds:       seedVals,
		N:           *n,
		MaxStates:   *budget,
		Runs:        *runs,
		MaxSteps:    *steps,
		Parallel:    *parallel,
		Incremental: *incremental,
		Minimize:    *minimize,
		FailureDir:  *failures,
		Clocked:     *clocked,
		Frontends:   *frontends,
	}
	if *selftest {
		cfg.Static = difffuzz.UnsoundStatic(difffuzz.EngineStatic())
	}

	rep, err := difffuzz.Run(cfg)
	if err != nil {
		return err
	}
	fmt.Print(difffuzz.FormatReport(rep))

	if *selftest {
		if len(rep.Violations) == 0 {
			return fmt.Errorf("selftest: the deliberately unsound analysis was not caught")
		}
		fmt.Printf("selftest: unsound analysis caught (%d violations) — the harness works\n", len(rep.Violations))
		return nil
	}
	if len(rep.Violations) > 0 {
		return fmt.Errorf("%d soundness violations", len(rep.Violations))
	}
	return nil
}
