// Command fx10 is the Featherweight X10 toolchain driver: it runs,
// analyzes and explores FX10 programs.
//
// Usage:
//
//	fx10 run        [-lang L] [-sched S] [-seed N] [-steps N] [-a CSV] [-trace] FILE
//	fx10 exec       [-lang L] [-procs N] [-a CSV] FILE
//	fx10 mhp        [-lang L] [-mode M] [-strategy NAME] [-workers N] [-pairs] [-races] [-places] FILE
//	fx10 constraints [-lang L] [-mode M] FILE
//	fx10 explore    [-lang L] [-max N] [-a CSV] FILE
//	fx10 fuzz       [-seeds CSV] [-n N] [-budget N] [-parallel N] [-minimize] [-incremental] [-clocked] [-frontends]
//	fx10 print      [-lang L] FILE
//	fx10 check      [-lang L] FILE
//
// run steps the formal small-step semantics (internal/machine); exec
// executes with real goroutines (internal/runtime); mhp runs the
// may-happen-in-parallel analysis; constraints prints the generated
// constraint system (Figure 5 style); explore computes the exact MHP
// relation by exhaustive interleaving search; fuzz differentially
// tests the analysis against the explorer and the instrumented
// runtime (internal/difffuzz); print pretty-prints; check parses and
// validates.
//
// FILE may be core FX10 (.fx10, parsed directly) or any language with
// a registered front end (internal/frontend): X10-subset .x10 files
// and restricted Go .go files, chosen by extension or forced with
// -lang. `fx10 mhp main.go` analyzes a real Go file's goroutine
// structure. FILE "-" reads stdin, which needs an explicit -lang.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"fx10/internal/clocks"
	"fx10/internal/condensed"
	"fx10/internal/constraints"
	"fx10/internal/engine"
	"fx10/internal/explore"
	"fx10/internal/frontend"
	"fx10/internal/labels"
	"fx10/internal/machine"
	"fx10/internal/mhp"
	"fx10/internal/parser"
	"fx10/internal/places"
	"fx10/internal/runtime"
	"fx10/internal/syntax"
	"fx10/internal/tree"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fx10:", err)
		os.Exit(exitCode(err))
	}
}

// exitCode distinguishes failure classes for scripting: 2 means the
// input did not parse or failed static validation (including clock
// misuse: next/advance inside an unclocked async), could not be routed
// to a front end, or named an unregistered solver strategy; 3 means
// the analysis (or the condensed→core lowering) itself failed on input
// that parsed; 1 is everything else.
func exitCode(err error) int {
	var pe *parser.Error
	var ce *syntax.ClockUseError
	var ue *engine.UnknownStrategyError
	var fpe *frontend.ParseError
	var fue *frontend.UnknownLanguageError
	var fae *frontend.AmbiguousInputError
	var ae *engine.AnalysisError
	var le *condensed.LoweringError
	switch {
	case errors.As(err, &pe), errors.As(err, &ce), errors.As(err, &ue),
		errors.As(err, &fpe), errors.As(err, &fue), errors.As(err, &fae):
		return 2
	case errors.As(err, &ae), errors.As(err, &le):
		return 3
	}
	return 1
}

func run(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: fx10 <run|exec|clocked|mhp|constraints|explore|fuzz|print|check> [flags] FILE")
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "run":
		return cmdRun(rest)
	case "exec":
		return cmdExec(rest)
	case "mhp":
		return cmdMHP(rest)
	case "clocked":
		return cmdClocked(rest)
	case "constraints":
		return cmdConstraints(rest)
	case "explore":
		return cmdExplore(rest)
	case "fuzz":
		return cmdFuzz(rest)
	case "print":
		return cmdPrint(rest)
	case "check":
		return cmdCheck(rest)
	}
	return fmt.Errorf("unknown subcommand %q", cmd)
}

// langFlag registers the shared -lang flag on a subcommand's flag set;
// loadProgram picks it up by name.
func langFlag(fs *flag.FlagSet) {
	fs.String("lang", "", "source language ("+strings.Join(frontend.Names(), ", ")+
		", or fx10 for core syntax); default: .fx10 parses as core, other extensions are detected")
}

// loadProgram reads the positional FILE argument of a flag set ("-"
// for stdin) and parses it via parseSource, honoring the -lang flag
// when the subcommand registered one.
func loadProgram(fs *flag.FlagSet) (*syntax.Program, error) {
	if fs.NArg() != 1 {
		return nil, fmt.Errorf("expected exactly one input file")
	}
	path := fs.Arg(0)
	var data []byte
	var err error
	if path == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(path)
	}
	if err != nil {
		return nil, err
	}
	lang := ""
	if f := fs.Lookup("lang"); f != nil {
		lang = f.Value.String()
	}
	return parseSource(lang, path, string(data))
}

// parseSource routes source text to a parser. Core FX10 (-lang fx10,
// or a .fx10 extension with no -lang) goes straight to the core
// parser, which preserves source label names; everything else goes
// through the front-end registry (-lang, or extension detection) and
// the condensed→core lowering. Either way a barrier inside an
// unclocked async is rejected here (exit code 2) like any other
// invalid input.
func parseSource(lang, path, src string) (*syntax.Program, error) {
	var p *syntax.Program
	if lang == "fx10" || (lang == "" && strings.HasSuffix(path, ".fx10")) {
		var err error
		p, err = parser.Parse(src)
		if err != nil {
			return nil, err
		}
	} else {
		u, _, err := frontend.Lower(lang, path, src)
		if err != nil {
			return nil, err
		}
		p, err = condensed.Lower(u)
		if err != nil {
			return nil, err
		}
	}
	if err := syntax.CheckClockUse(p); err != nil {
		return nil, err
	}
	return p, nil
}

// parseArray parses "1,2,3" into an initial array prefix.
func parseArray(csv string) ([]int64, error) {
	if csv == "" {
		return nil, nil
	}
	var out []int64
	for _, part := range strings.Split(csv, ",") {
		v, err := strconv.ParseInt(strings.TrimSpace(part), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad array value %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	langFlag(fs)
	sched := fs.String("sched", "leftmost", "scheduler: leftmost or random")
	seed := fs.Int64("seed", 0, "random scheduler seed")
	steps := fs.Int("steps", 1_000_000, "maximum steps")
	a0 := fs.String("a", "", "initial array prefix, e.g. 1,0,2")
	trace := fs.Bool("trace", false, "print every intermediate tree")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, err := loadProgram(fs)
	if err != nil {
		return err
	}
	arr, err := parseArray(*a0)
	if err != nil {
		return err
	}
	var s machine.Scheduler = machine.Leftmost{}
	switch *sched {
	case "leftmost":
	case "random":
		s = machine.NewRandom(*seed)
	default:
		return fmt.Errorf("unknown scheduler %q", *sched)
	}
	st := machine.Initial(p, arr)
	if *trace {
		states := machine.Trace(p, st, s, *steps)
		for i, cur := range states {
			fmt.Printf("%4d  %s  a=%v\n", i, tree.String(p, cur.T), cur.A)
		}
		last := states[len(states)-1]
		fmt.Printf("done=%v steps=%d result a[0]=%d\n", last.T.Done(), len(states)-1, last.A[0])
		return nil
	}
	res := machine.Run(p, st, s, *steps)
	fmt.Printf("done=%v steps=%d a=%v result a[0]=%d\n", res.Done, res.Steps, res.Final.A, res.Final.A[0])
	if !res.Done {
		return fmt.Errorf("step budget exhausted (program may diverge; raise -steps)")
	}
	return nil
}

func cmdExec(args []string) error {
	fs := flag.NewFlagSet("exec", flag.ContinueOnError)
	langFlag(fs)
	procs := fs.Int("procs", 0, "max concurrent async goroutines (0 = unbounded)")
	maxSteps := fs.Int64("steps", runtime.DefaultMaxSteps, "instruction budget")
	a0 := fs.String("a", "", "initial array prefix")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, err := loadProgram(fs)
	if err != nil {
		return err
	}
	arr, err := parseArray(*a0)
	if err != nil {
		return err
	}
	res, err := runtime.Run(p, arr, runtime.Options{MaxGoroutines: *procs, MaxSteps: *maxSteps})
	if err != nil {
		return err
	}
	fmt.Printf("a=%v result a[0]=%d steps=%d goroutines=%d inlined=%d maxlive=%d\n",
		res.Array, res.Array[0], res.Steps, res.Spawned, res.Inlined, res.MaxLive)
	return nil
}

func cmdClocked(args []string) error {
	fs := flag.NewFlagSet("clocked", flag.ContinueOnError)
	langFlag(fs)
	seed := fs.Int64("seed", 0, "scheduling seed")
	steps := fs.Int("steps", 1_000_000, "step budget")
	a0 := fs.String("a", "", "initial array prefix")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, err := loadProgram(fs)
	if err != nil {
		return err
	}
	arr, err := parseArray(*a0)
	if err != nil {
		return err
	}
	res, err := clocks.Run(p, arr, *seed, *steps)
	if err != nil {
		return err
	}
	fmt.Printf("a=%v result a[0]=%d steps=%d phases=%d\n",
		res.Array, res.Array[0], res.Steps, res.Phases)
	return nil
}

func parseMode(s string) (constraints.Mode, error) {
	switch s {
	case "cs", "sensitive", "context-sensitive":
		return constraints.ContextSensitive, nil
	case "ci", "insensitive", "context-insensitive":
		return constraints.ContextInsensitive, nil
	}
	return 0, fmt.Errorf("unknown mode %q (want cs or ci)", s)
}

func cmdMHP(args []string) error {
	fs := flag.NewFlagSet("mhp", flag.ContinueOnError)
	langFlag(fs)
	mode := fs.String("mode", "cs", "analysis mode: cs (context-sensitive) or ci")
	strategy := fs.String("strategy", "", "solver strategy (default: "+engine.DefaultStrategy+"); unknown names list the registered ones")
	workers := fs.Int("workers", 0, "solver pool width for parallel strategies like ptopo (0 = strategy default); results never depend on it")
	showPairs := fs.Bool("pairs", true, "print the MHP label pairs")
	showRaces := fs.Bool("races", false, "print race candidates")
	withPlaces := fs.Bool("places", false, "apply the same-place refinement (Section 8 extension)")
	withClocks := fs.Bool("clocks", false, "apply the clock-phase refinement (now built into solving for clocked programs; kept for compatibility, a re-application is a no-op)")
	asJSON := fs.Bool("json", false, "emit a machine-readable JSON report (ignores the other output flags)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, err := parseMode(*mode)
	if err != nil {
		return err
	}
	p, err := loadProgram(fs)
	if err != nil {
		return err
	}
	// Resolve the strategy first: a bad name errors out listing the
	// registered ones.
	e, err := engine.New(engine.Config{Strategy: *strategy, CacheSize: -1, SolverWorkers: *workers})
	if err != nil {
		return err
	}
	res, err := e.AnalyzeSafe(context.Background(), engine.Job{Name: fs.Arg(0), Program: p, Mode: m})
	if err != nil {
		return err
	}
	r := mhp.FromEngine(res)
	if *asJSON {
		return r.WriteJSON(os.Stdout)
	}
	set := r.M
	if *withPlaces {
		set = places.Compute(p).Refine(set)
	}
	if *withClocks {
		set = clocks.ComputePhases(p).Refine(set)
	}

	if *showPairs {
		var pairs []string
		set.Each(func(i, j int) {
			if i <= j {
				pairs = append(pairs, fmt.Sprintf("(%s, %s)", p.LabelName(syntax.Label(i)), p.LabelName(syntax.Label(j))))
			}
		})
		sort.Strings(pairs)
		fmt.Printf("%s MHP pairs: %d\n", m, len(pairs))
		for _, pr := range pairs {
			fmt.Println(" ", pr)
		}
	}

	counts := mhp.CountPairs(r.AsyncBodyPairs())
	fmt.Printf("async-body pairs: total=%d self=%d same=%d diff=%d\n",
		counts.Total, counts.Self, counts.Same, counts.Diff)
	if r.Sys.PhaseCode != nil {
		pruned := 0
		r.Sol.ClockPrunedMainPairs().Each(func(i, j int) {
			if i <= j {
				pruned++
			}
		})
		fmt.Printf("clock phases: pruned %d pairs\n", pruned)
	}
	fmt.Printf("iterations: Slabels=%d level1=%d level2=%d\n",
		r.Sol.IterSlabels, r.Sol.IterL1, r.Sol.IterL2)

	if *showRaces {
		races := r.RaceCandidates()
		fmt.Printf("race candidates: %d\n", len(races))
		for _, rc := range races {
			kind := "write/read"
			if rc.WriteWrite {
				kind = "write/write"
			}
			fmt.Printf("  a[%d]: %s vs %s (%s)\n", rc.Index, p.LabelName(rc.L1), p.LabelName(rc.L2), kind)
		}
	}
	return nil
}

func cmdConstraints(args []string) error {
	fs := flag.NewFlagSet("constraints", flag.ContinueOnError)
	langFlag(fs)
	mode := fs.String("mode", "cs", "analysis mode: cs or ci")
	if err := fs.Parse(args); err != nil {
		return err
	}
	m, err := parseMode(*mode)
	if err != nil {
		return err
	}
	p, err := loadProgram(fs)
	if err != nil {
		return err
	}
	sys := constraints.Generate(labels.Compute(p), m)
	sl, l1, l2 := sys.Counts()
	fmt.Printf("// %s: %d Slabels, %d level-1, %d level-2 constraints\n", m, sl, l1, l2)
	fmt.Print(sys.String())
	return nil
}

func cmdExplore(args []string) error {
	fs := flag.NewFlagSet("explore", flag.ContinueOnError)
	langFlag(fs)
	maxStates := fs.Int("max", 1_000_000, "state budget")
	a0 := fs.String("a", "", "initial array prefix")
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, err := loadProgram(fs)
	if err != nil {
		return err
	}
	arr, err := parseArray(*a0)
	if err != nil {
		return err
	}
	res := explore.MHP(p, arr, *maxStates)
	fmt.Printf("states=%d complete=%v terminated=%v\n", res.States, res.Complete, res.Terminated)
	var pairs []string
	res.MHP.Each(func(i, j int) {
		if i <= j {
			pairs = append(pairs, fmt.Sprintf("(%s, %s)", p.LabelName(syntax.Label(i)), p.LabelName(syntax.Label(j))))
		}
	})
	sort.Strings(pairs)
	fmt.Printf("exact MHP pairs: %d\n", len(pairs))
	for _, pr := range pairs {
		fmt.Println(" ", pr)
	}
	return nil
}

func cmdPrint(args []string) error {
	fs := flag.NewFlagSet("print", flag.ContinueOnError)
	langFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, err := loadProgram(fs)
	if err != nil {
		return err
	}
	fmt.Print(syntax.Print(p))
	return nil
}

func cmdCheck(args []string) error {
	fs := flag.NewFlagSet("check", flag.ContinueOnError)
	langFlag(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	p, err := loadProgram(fs)
	if err != nil {
		return err
	}
	fmt.Printf("ok: %d methods, %d labels, array length %d\n",
		len(p.Methods), p.NumLabels(), p.ArrayLen)
	return nil
}
