package main

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"fx10/internal/engine"
	"fx10/internal/parser"
)

func TestExitCodeClassification(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"nil-ish generic", fmt.Errorf("boom"), 1},
		{"parse", &parser.Error{Line: 3, Col: 7, Msg: "expected ';'"}, 2},
		{"wrapped parse", fmt.Errorf("loading: %w", &parser.Error{Line: 1, Col: 1, Msg: "x"}), 2},
		{"analysis", &engine.AnalysisError{Name: "p", Value: "kaboom"}, 3},
		{"wrapped analysis", fmt.Errorf("corpus: %w", &engine.AnalysisError{Name: "p", Value: "kaboom"}), 3},
	}
	for _, tc := range cases {
		if got := exitCode(tc.err); got != tc.want {
			t.Errorf("%s: exitCode = %d, want %d", tc.name, got, tc.want)
		}
	}
}

// TestMHPParseErrorExitCode drives the real mhp subcommand at a file
// that does not parse and checks the error classifies as exit 2.
func TestMHPParseErrorExitCode(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "bad.fx10")
	if err := os.WriteFile(bad, []byte("array 2;\nvoid main() { async }"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"mhp", bad})
	if err == nil {
		t.Fatal("mhp accepted a malformed program")
	}
	if got := exitCode(err); got != 2 {
		t.Errorf("parse failure maps to exit %d, want 2 (err: %v)", got, err)
	}
}
