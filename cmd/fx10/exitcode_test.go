package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fx10/internal/engine"
	"fx10/internal/parser"
	"fx10/internal/syntax"
)

func TestExitCodeClassification(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"nil-ish generic", fmt.Errorf("boom"), 1},
		{"parse", &parser.Error{Line: 3, Col: 7, Msg: "expected ';'"}, 2},
		{"wrapped parse", fmt.Errorf("loading: %w", &parser.Error{Line: 1, Col: 1, Msg: "x"}), 2},
		{"clock misuse", &syntax.ClockUseError{Label: "N", Async: "A", Method: "main"}, 2},
		{"wrapped clock misuse", fmt.Errorf("loading: %w", &syntax.ClockUseError{Label: "N", Async: "A", Method: "main"}), 2},
		{"unknown strategy", &engine.UnknownStrategyError{Name: "bogus"}, 2},
		{"wrapped unknown strategy", fmt.Errorf("mhp: %w", &engine.UnknownStrategyError{Name: "bogus"}), 2},
		{"analysis", &engine.AnalysisError{Name: "p", Value: "kaboom"}, 3},
		{"wrapped analysis", fmt.Errorf("corpus: %w", &engine.AnalysisError{Name: "p", Value: "kaboom"}), 3},
	}
	for _, tc := range cases {
		if got := exitCode(tc.err); got != tc.want {
			t.Errorf("%s: exitCode = %d, want %d", tc.name, got, tc.want)
		}
	}
}

// TestMHPUnknownStrategyExitCode drives the real mhp subcommand with
// a strategy name that is not registered: the error must classify as
// exit 2 (bad invocation, not a failed analysis) and list every
// registered strategy so the user can correct the flag.
func TestMHPUnknownStrategyExitCode(t *testing.T) {
	src := filepath.Join(t.TempDir(), "ok.fx10")
	if err := os.WriteFile(src, []byte("array 2;\nvoid main() { L: a[0] = 1; }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"mhp", "-strategy", "no-such-solver", src})
	if err == nil {
		t.Fatal("mhp accepted an unregistered strategy")
	}
	if got := exitCode(err); got != 2 {
		t.Errorf("unknown strategy maps to exit %d, want 2 (err: %v)", got, err)
	}
	for _, name := range []string{"no-such-solver", "monolithic", "phased", "ptopo", "topo", "worklist"} {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error does not mention %q: %v", name, err)
		}
	}
}

// TestMHPWorkersFlag checks -workers parses and reaches the engine
// without changing the report: ptopo at any width prints the same
// pairs as sequential topo.
func TestMHPWorkersFlag(t *testing.T) {
	src := filepath.Join(t.TempDir(), "ok.fx10")
	prog := "array 4;\nvoid main() { finish { async { A: a[1] = 1; } B: a[2] = 2; } C: a[3] = 3; }\n"
	if err := os.WriteFile(src, []byte(prog), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, args := range [][]string{
		{"mhp", "-strategy", "ptopo", "-workers", "4", src},
		{"mhp", "-strategy", "ptopo", src},
		{"mhp", "-strategy", "topo", "-workers", "4", src}, // ignored by sequential strategies
	} {
		if err := run(args); err != nil {
			t.Errorf("%v: %v", args, err)
		}
	}
}

// TestMHPParseErrorExitCode drives the real mhp subcommand at a file
// that does not parse and checks the error classifies as exit 2.
func TestMHPParseErrorExitCode(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "bad.fx10")
	if err := os.WriteFile(bad, []byte("array 2;\nvoid main() { async }"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"mhp", bad})
	if err == nil {
		t.Fatal("mhp accepted a malformed program")
	}
	if got := exitCode(err); got != 2 {
		t.Errorf("parse failure maps to exit %d, want 2 (err: %v)", got, err)
	}
}

// A barrier inside an unclocked async must be rejected statically by
// every subcommand that loads a program — exit code 2, not a panic or
// a runtime error. "advance" is the X10 spelling of "next".
func TestAdvanceOutsideClockedContextExitCode(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "unclocked_advance.fx10")
	src := "array 2;\nvoid main() {\n  async { N: advance; }\n  next;\n}\n"
	if err := os.WriteFile(bad, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, sub := range []string{"mhp", "run", "clocked", "check", "print"} {
		err := run([]string{sub, bad})
		if err == nil {
			t.Fatalf("%s accepted advance inside an unclocked async", sub)
		}
		if got := exitCode(err); got != 2 {
			t.Errorf("%s: clock misuse maps to exit %d, want 2 (err: %v)", sub, got, err)
		}
	}

	// The same barrier inside a *clocked* async is legal.
	good := filepath.Join(t.TempDir(), "clocked_advance.fx10")
	src = "array 2;\nvoid main() {\n  clocked async { N: advance; }\n  next;\n}\n"
	if err := os.WriteFile(good, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"check", good}); err != nil {
		t.Errorf("check rejected a legal clocked advance: %v", err)
	}
}
