package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// capture runs f with stdout redirected and returns what it printed.
// A concurrent reader drains the pipe so large outputs cannot block
// the writer.
func capture(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var sb strings.Builder
		buf := make([]byte, 64<<10)
		for {
			n, rerr := r.Read(buf)
			sb.Write(buf[:n])
			if rerr != nil {
				break
			}
		}
		done <- sb.String()
	}()
	ferr := f()
	w.Close()
	os.Stdout = old
	return <-done, ferr
}

const fanout = "../../testdata/fanout.fx10"
const spinflag = "../../testdata/spinflag.fx10"

func TestCmdRun(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"run", fanout}) })
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "done=true") || !strings.Contains(out, "result a[0]=1") {
		t.Fatalf("unexpected output: %s", out)
	}
}

func TestCmdRunTraceRandom(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"run", "-trace", "-sched", "random", "-seed", "5", fanout})
	})
	if err != nil {
		t.Fatalf("run -trace: %v", err)
	}
	if !strings.Contains(out, ">>") { // a finish tree appears in the trace
		t.Fatalf("trace missing tree rendering: %s", out)
	}
	if !strings.Contains(out, "done=true") {
		t.Fatalf("trace did not finish: %s", out)
	}
}

func TestCmdRunInitialArray(t *testing.T) {
	// Arm the spin loop's flag from the command line... it is armed by
	// the program; instead check -a plumbs through on fanout.
	out, err := capture(t, func() error { return run([]string{"run", "-a", "0,0,0,0,9", fanout}) })
	if err != nil {
		t.Fatalf("run -a: %v", err)
	}
	if !strings.Contains(out, "9") {
		t.Fatalf("initial array not used: %s", out)
	}
}

func TestCmdExec(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"exec", fanout}) })
	if err != nil {
		t.Fatalf("exec: %v", err)
	}
	if !strings.Contains(out, "result a[0]=1") {
		t.Fatalf("unexpected output: %s", out)
	}
}

func TestCmdMHP(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"mhp", "-races", spinflag}) })
	if err != nil {
		t.Fatalf("mhp: %v", err)
	}
	for _, frag := range []string{"MHP pairs", "(W, L)", "race candidates", "a[0]: Z vs L"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("mhp output missing %q:\n%s", frag, out)
		}
	}
}

func TestCmdMHPModesAndPlaces(t *testing.T) {
	if _, err := capture(t, func() error { return run([]string{"mhp", "-mode", "ci", spinflag}) }); err != nil {
		t.Fatalf("mhp -mode ci: %v", err)
	}
	if _, err := capture(t, func() error { return run([]string{"mhp", "-places", spinflag}) }); err != nil {
		t.Fatalf("mhp -places: %v", err)
	}
	if _, err := capture(t, func() error { return run([]string{"mhp", "-mode", "bogus", spinflag}) }); err == nil {
		t.Fatalf("bogus mode accepted")
	}
}

func TestCmdConstraints(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"constraints", fanout}) })
	if err != nil {
		t.Fatalf("constraints: %v", err)
	}
	if !strings.Contains(out, "m_F = Lcross(F, r_F)") {
		t.Fatalf("constraints output missing finish constraint:\n%s", out)
	}
	if !strings.Contains(out, "Slabels") {
		t.Fatalf("constraints header missing:\n%s", out)
	}
}

func TestCmdExplore(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"explore", fanout}) })
	if err != nil {
		t.Fatalf("explore: %v", err)
	}
	if !strings.Contains(out, "complete=true") || !strings.Contains(out, "exact MHP pairs") {
		t.Fatalf("explore output malformed:\n%s", out)
	}
}

func TestCmdPrintAndCheck(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"print", fanout}) })
	if err != nil {
		t.Fatalf("print: %v", err)
	}
	if !strings.Contains(out, "F: finish {") {
		t.Fatalf("print output malformed:\n%s", out)
	}
	out, err = capture(t, func() error { return run([]string{"check", fanout}) })
	if err != nil || !strings.Contains(out, "ok:") {
		t.Fatalf("check: %v / %s", err, out)
	}
}

func TestCmdErrors(t *testing.T) {
	cases := [][]string{
		{},
		{"bogus"},
		{"run"},                          // missing file
		{"run", "/nonexistent.fx10"},     // unreadable
		{"run", "-sched", "wat", fanout}, // bad scheduler
		{"mhp"},                          // missing file
	}
	for _, args := range cases {
		if _, err := capture(t, func() error { return run(args) }); err == nil {
			t.Fatalf("args %v unexpectedly succeeded", args)
		}
	}
}

func TestCmdRunDivergenceReported(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "spin.fx10")
	src := "array 1;\nvoid main() {\n  a[0] = 1;\n  while (a[0] != 0) { skip; }\n}\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := capture(t, func() error { return run([]string{"run", "-steps", "100", path}) })
	if err == nil || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("divergence not reported: %v", err)
	}
}

func TestParseArray(t *testing.T) {
	got, err := parseArray("1, 2,3")
	if err != nil || len(got) != 3 || got[2] != 3 {
		t.Fatalf("parseArray: %v %v", got, err)
	}
	if _, err := parseArray("1,x"); err == nil {
		t.Fatalf("bad csv accepted")
	}
	if got, err := parseArray(""); err != nil || got != nil {
		t.Fatalf("empty csv: %v %v", got, err)
	}
}

const phased = "../../testdata/phased.fx10"

func TestCmdClocked(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"clocked", "-seed", "3", phased}) })
	if err != nil {
		t.Fatalf("clocked: %v", err)
	}
	if !strings.Contains(out, "phases=1") {
		t.Fatalf("clocked output missing phase count: %s", out)
	}
	// The barrier guarantees both cross-phase reads.
	if !strings.Contains(out, "a=[1 1 2 2") {
		t.Fatalf("clocked result wrong: %s", out)
	}
}

func TestCmdMHPClockAwareByDefault(t *testing.T) {
	full, err := capture(t, func() error { return run([]string{"mhp", phased}) })
	if err != nil {
		t.Fatalf("mhp: %v", err)
	}
	if strings.Contains(full, "(WL, RR)") {
		t.Fatalf("default analysis kept a cross-phase pair:\n%s", full)
	}
	if !strings.Contains(full, "(WL, WR)") {
		t.Fatalf("default analysis dropped a same-phase pair:\n%s", full)
	}
	if !strings.Contains(full, "pruned") {
		t.Fatalf("default analysis does not report pruned pairs:\n%s", full)
	}
	// -clocks is a compatibility no-op: the refinement already ran
	// inside the solver, so re-applying it must change nothing.
	refined, err := capture(t, func() error { return run([]string{"mhp", "-clocks", phased}) })
	if err != nil {
		t.Fatalf("mhp -clocks: %v", err)
	}
	if refined != full {
		t.Fatalf("-clocks changed clock-aware output:\nwithout:\n%s\nwith:\n%s", full, refined)
	}
}

func TestCmdMHPJSON(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"mhp", "-json", spinflag}) })
	if err != nil {
		t.Fatalf("mhp -json: %v", err)
	}
	if !strings.Contains(out, `"mhpPairs"`) || !strings.Contains(out, `"raceCandidates"`) {
		t.Fatalf("json output malformed:\n%s", out)
	}
}
