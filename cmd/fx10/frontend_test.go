package main

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"fx10/internal/condensed"
	"fx10/internal/frontend"
)

const goFanOut = `package main

import "sync"

func work() {}

func main() {
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
	}
	wg.Wait()
}
`

// TestCmdMHPGoFile is the README quickstart: `fx10 mhp main.go`
// analyzes a real Go file through the front-end boundary.
func TestCmdMHPGoFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "main.go")
	if err := os.WriteFile(path, []byte(goFanOut), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, args := range [][]string{
		{"mhp", path},
		{"mhp", "-lang", "go", path},
		{"mhp", "-lang", "golang", path}, // alias
		{"check", path},
		{"print", path},
		{"exec", path},
	} {
		if err := run(args); err != nil {
			t.Errorf("%v: %v", args, err)
		}
	}
}

// TestParseSourceRouting pins which parser each (lang, path) lands on.
func TestParseSourceRouting(t *testing.T) {
	core := "array 2;\nvoid main() { L: a[0] = 1; }\n"
	x10src := "void main() { async { skip; } }\n"

	if _, err := parseSource("", "prog.fx10", core); err != nil {
		t.Errorf(".fx10 default: %v", err)
	}
	if _, err := parseSource("fx10", "-", core); err != nil {
		t.Errorf("-lang fx10 stdin: %v", err)
	}
	if _, err := parseSource("", "prog.x10", x10src); err != nil {
		t.Errorf(".x10 default: %v", err)
	}
	if _, err := parseSource("go", "-", goFanOut); err != nil {
		t.Errorf("-lang go stdin: %v", err)
	}

	// Stdin with no -lang: no extension to detect on, must classify as
	// an input error (exit 2), not crash or mis-parse.
	_, err := parseSource("", "-", goFanOut)
	var ae *frontend.AmbiguousInputError
	if !errors.As(err, &ae) {
		t.Errorf("ambiguous stdin: got %v, want *AmbiguousInputError", err)
	}
	if exitCode(err) != 2 {
		t.Errorf("ambiguous stdin: exit %d, want 2", exitCode(err))
	}

	// Forcing the wrong language is a parse error, exit 2.
	_, err = parseSource("go", "prog.fx10", core)
	var pe *frontend.ParseError
	if !errors.As(err, &pe) || exitCode(err) != 2 {
		t.Errorf("core source as -lang go: got %v (exit %d), want *ParseError/2", err, exitCode(err))
	}

	// Unknown language, exit 2.
	_, err = parseSource("rust", "x.rs", "fn main() {}")
	var ue *frontend.UnknownLanguageError
	if !errors.As(err, &ue) || exitCode(err) != 2 {
		t.Errorf("unknown -lang: got %v (exit %d), want *UnknownLanguageError/2", err, exitCode(err))
	}
}

// TestExitCodeFrontendClasses extends the exit-code table with the
// front-end error classes.
func TestExitCodeFrontendClasses(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"frontend parse", &frontend.ParseError{Lang: "go", Err: errors.New("syntax")}, 2},
		{"wrapped frontend parse", fmt.Errorf("load: %w", &frontend.ParseError{Lang: "x10", Err: errors.New("x")}), 2},
		{"unknown language", &frontend.UnknownLanguageError{Lang: "rust"}, 2},
		{"ambiguous input", &frontend.AmbiguousInputError{Path: "-"}, 2},
		{"lowering", &condensed.LoweringError{Err: errors.New("duplicate method")}, 3},
	}
	for _, tc := range cases {
		if got := exitCode(tc.err); got != tc.want {
			t.Errorf("%s: exitCode = %d, want %d", tc.name, got, tc.want)
		}
	}
}
