// Command mhpbench regenerates the paper's evaluation: the worked
// examples of Sections 2.1/2.2, the constraint system of Figure 5,
// and the benchmark tables of Figures 6–9, each printed as a
// measured/paper table, plus a corpus sweep that runs the whole
// evaluation through the analysis engine's worker pool and reports
// the wall-clock speedup over sequential analysis.
//
// Usage:
//
//	mhpbench [-figure NAME,...] [-parallel N] [-strategy NAME] [-benchjson FILE] [-n N]
//
// -figure takes a comma-separated subset of the known figures; the
// one authoritative list is the figures slice below, which also
// generates the flag's help text and the unknown-figure error, so
// this comment does not enumerate it. Highlights: the solver figure
// races every registered solving strategy on the 13-benchmark corpus;
// the incremental figure sweeps single-method edits and compares
// incremental re-analysis (engine.AnalyzeDelta) against solving from
// scratch; the clocked figure compares clock-blind and clock-aware
// pair counts over a generated clocked corpus (-n programs); the
// parallel figure races worklist/topo/ptopo on the progen huge tier
// across pool widths and locates the topo→ptopo crossover; the
// gofront figure sweeps the committed Go corpus (-gocorpus) through
// the real-Go front end and reports lowering coverage and pair
// counts, failing if any runtime-observed pair escapes the static
// relation. -benchjson additionally writes the selected sweep
// machine-readably (the committed BENCH_solver.json /
// BENCH_incremental.json / BENCH_clocked.json / BENCH_parallel.json /
// BENCH_store.json / BENCH_gofront.json; the store figure measures
// cold starts against the persistent summary store in its
// no/empty/warm configurations).
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"fx10/internal/engine"
	"fx10/internal/experiments"
	"fx10/internal/parser"
)

// figures is the single authoritative list of selectable figures:
// the -figure help text, the unknown-figure error and the "all"
// default are all derived from it, so they cannot drift apart.
var figures = []string{
	"examples", "5", "6", "7", "8", "9",
	"precision", "scaling", "corpus",
	"solver", "incremental", "clocked", "parallel", "store", "gofront", "fleet",
}

// allFigures is what -figure all selects: the paper regeneration
// (examples and numbered figures) plus the corpus sweep. The studies
// and benches run only when asked for by name.
var allFigures = []string{"examples", "5", "6", "7", "8", "9", "corpus"}

func figureList() string { return "all, " + strings.Join(figures, ", ") }

func main() {
	figure := flag.String("figure", "all", "which figure(s) to regenerate, comma-separated: "+figureList())
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "worker pool width for the corpus sweep")
	strategy := flag.String("strategy", "", "solver strategy for the incremental figure (default: "+engine.DefaultStrategy+")")
	benchjson := flag.String("benchjson", "", "with -figure solver, incremental or clocked: also write the sweep as JSON to this file")
	n := flag.Int("n", 40, "generated programs for the clocked figure")
	gocorpus := flag.String("gocorpus", "testdata/goprograms", "Go corpus directory for the gofront figure")
	flag.Parse()
	if err := run(*figure, *parallel, *strategy, *benchjson, *n, *gocorpus); err != nil {
		fmt.Fprintln(os.Stderr, "mhpbench:", err)
		os.Exit(exitCode(err))
	}
}

// exitCode mirrors cmd/fx10: 2 for parse failures, 3 for analysis
// failures, 1 otherwise — so CI can tell a broken corpus program from
// a broken analysis.
func exitCode(err error) int {
	var pe *parser.Error
	var ae *engine.AnalysisError
	var ue *engine.UnknownStrategyError
	switch {
	case errors.As(err, &pe), errors.As(err, &ue):
		return 2
	case errors.As(err, &ae):
		return 3
	}
	return 1
}

func run(figure string, parallel int, strategy, benchjson string, clockedN int, gocorpus string) error {
	// Fail early on a bad strategy name; the error lists the
	// registered names.
	if _, err := engine.Lookup(strategy); err != nil {
		return err
	}

	known := map[string]bool{}
	for _, f := range figures {
		known[f] = true
	}
	want := map[string]bool{}
	for _, f := range strings.Split(figure, ",") {
		f = strings.TrimSpace(f)
		if f == "all" {
			for _, a := range allFigures {
				want[a] = true
			}
			continue
		}
		if f == "" {
			continue
		}
		if !known[f] {
			return fmt.Errorf("unknown figure %q; known figures: %s", f, figureList())
		}
		want[f] = true
	}

	section := func(title string) { fmt.Printf("\n== %s ==\n\n", title) }

	if want["examples"] {
		section("Worked examples (Sections 2.1 and 2.2)")
		for _, run := range []func() (experiments.ExampleResult, error){experiments.Example21, experiments.Example22} {
			ex, err := run()
			if err != nil {
				return err
			}
			status := "MATCHES PAPER"
			if !ex.Match {
				status = "MISMATCH"
			}
			fmt.Printf("%s: %s\n  inferred: %s\n  paper:    %s\n",
				ex.Name, status, strings.Join(ex.Pairs, " "), strings.Join(ex.Expected, " "))
		}
	}
	if want["5"] {
		section("Figure 5: constraints for the Section 2.1 example")
		fmt.Print(experiments.Figure5())
	}
	if want["6"] {
		section("Figure 6: static measurements (measured/paper)")
		fmt.Print(experiments.FormatFigure6(experiments.Figure6()))
	}
	if want["7"] {
		section("Figure 7: condensed node counts (measured/paper)")
		fmt.Print(experiments.FormatFigure7(experiments.Figure7()))
	}
	if want["8"] {
		section("Figure 8: type inference (context-sensitive)")
		rows, err := experiments.Figure8()
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatFigure8(rows))
	}
	if want["9"] {
		section("Figure 9: context-sensitive vs context-insensitive (mg, plasma)")
		rows, err := experiments.Figure9()
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatFigure9(rows))
	}
	if want["corpus"] {
		section("Corpus engine: 13 benchmarks, parallel vs sequential")
		run, err := experiments.Corpus(parallel)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatCorpus(run))
	}
	if want["precision"] {
		section("Precision study: exact (explorer) vs static M per benchmark (Theorem 2)")
		rows, err := experiments.TheoremPrecision(experiments.DefaultPrecisionBudget)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatPrecision(rows))
	}
	if want["scaling"] {
		section("Scaling study: solver time vs program size (Section 5.2 complexity)")
		rows, err := experiments.Scaling(experiments.DefaultScalingSizes)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatScaling(rows))
	}
	if want["solver"] {
		section("Solver strategies: 13 benchmarks × 4 strategies")
		bench, err := experiments.RunSolverBench(3)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatSolverBench(bench))
		if benchjson != "" {
			if err := experiments.WriteSolverBenchJSON(bench, benchjson); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", benchjson)
		}
	}
	if want["incremental"] {
		section("Incremental analysis: edit-one-method sweep, delta vs scratch")
		bench, err := experiments.RunIncremental(3, strategy)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatIncremental(bench))
		if benchjson != "" {
			if err := experiments.WriteIncrementalJSON(bench, benchjson); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", benchjson)
		}
	}
	if want["clocked"] {
		section("Clocked analysis: clock-blind vs clock-aware pair counts")
		bench, err := experiments.RunClockedBench(clockedN, 3)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatClockedBench(bench))
		if benchjson != "" {
			if err := experiments.WriteClockedBenchJSON(bench, benchjson); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", benchjson)
		}
	}
	if want["store"] {
		section("Persistent summary store: cold starts with no/empty/warm store")
		bench, err := experiments.RunStoreBench(3)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatStoreBench(bench))
		if benchjson != "" {
			if err := experiments.WriteStoreBenchJSON(bench, benchjson); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", benchjson)
		}
	}
	if want["fleet"] {
		section("Fleet: routed throughput at 1/2/4 replicas + shard vs topo solve cost")
		bench, err := experiments.RunFleetBench(3)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatFleetBench(bench))
		if benchjson != "" {
			if err := experiments.WriteFleetBenchJSON(bench, benchjson); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", benchjson)
		}
	}
	if want["parallel"] {
		section("Parallel solving: huge-tier scaling, worklist vs topo vs ptopo")
		bench, err := experiments.RunParallelBench(1)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatParallelBench(bench))
		if benchjson != "" {
			if err := experiments.WriteParallelBenchJSON(bench, benchjson); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", benchjson)
		}
	}
	if want["gofront"] {
		section("Go front end: corpus coverage and pair counts (observed ⊆ static)")
		bench, err := experiments.RunGofrontBench(gocorpus, 4)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatGofrontBench(bench))
		if benchjson != "" {
			if err := experiments.WriteGofrontBenchJSON(bench, benchjson); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", benchjson)
		}
	}
	if len(want) == 0 {
		return fmt.Errorf("nothing selected; use -figure with %s", figureList())
	}
	return nil
}
