package main

import (
	"os"
	"strings"
	"testing"

	"fx10/internal/experiments"
)

func captureRun(t *testing.T, figure string) (string, error) {
	t.Helper()
	return captureRunParallel(t, figure, 1)
}

func captureRunParallel(t *testing.T, figure string, parallel int) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		var sb strings.Builder
		buf := make([]byte, 64<<10)
		for {
			n, rerr := r.Read(buf)
			sb.Write(buf[:n])
			if rerr != nil {
				break
			}
		}
		done <- sb.String()
	}()
	ferr := run(figure, parallel, "", "", 5, "../../testdata/goprograms")
	w.Close()
	os.Stdout = old
	return <-done, ferr
}

func TestExamplesFigure(t *testing.T) {
	out, err := captureRun(t, "examples")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if strings.Contains(out, "MISMATCH") {
		t.Fatalf("worked example mismatch:\n%s", out)
	}
	if !strings.Contains(out, "example-2.1: MATCHES PAPER") ||
		!strings.Contains(out, "example-2.2: MATCHES PAPER") {
		t.Fatalf("examples output malformed:\n%s", out)
	}
}

func TestFigure5(t *testing.T) {
	out, err := captureRun(t, "5")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "r_S13 = {S2} ∪ r_S1") {
		t.Fatalf("figure 5 output malformed:\n%s", out)
	}
}

func TestFigures6And7(t *testing.T) {
	out, err := captureRun(t, "6,7")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, frag := range []string{"Figure 6", "Figure 7", "plasma", "151/151"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("output missing %q", frag)
		}
	}
}

func TestFigures8And9(t *testing.T) {
	if testing.Short() {
		t.Skip("full benchmark analysis")
	}
	out, err := captureRun(t, "8,9")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, frag := range []string{"Figure 8", "Figure 9", "context-insensitive", "mg"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("output missing %q", frag)
		}
	}
}

func TestUnknownFigure(t *testing.T) {
	_, err := captureRun(t, "42")
	if err == nil {
		t.Fatal("unknown figure accepted")
	}
	if !strings.Contains(err.Error(), `"42"`) {
		t.Fatalf("error does not name the bad figure: %v", err)
	}
	for _, f := range figures {
		if !strings.Contains(err.Error(), f) {
			t.Fatalf("error does not list figure %q: %v", f, err)
		}
	}
	// A typo next to valid selections must fail too, before any
	// section runs.
	if _, err := captureRun(t, "examples,solvr"); err == nil {
		t.Fatal("typoed figure next to a valid one accepted")
	}
}

// TestFigureListsAgree pins satellite concerns: every figure the run
// dispatcher handles must be in the figures slice and vice versa, and
// the "all" selection must be a subset of it.
func TestFigureListsAgree(t *testing.T) {
	known := map[string]bool{}
	for _, f := range figures {
		known[f] = true
	}
	if len(known) != len(figures) {
		t.Fatal("duplicate entries in figures")
	}
	for _, f := range allFigures {
		if !known[f] {
			t.Fatalf("all selects %q which is not a known figure", f)
		}
	}
	help := figureList()
	for _, f := range figures {
		if !strings.Contains(help, f) {
			t.Fatalf("figureList() missing %q: %s", f, help)
		}
	}
}

func TestParallelSection(t *testing.T) {
	oldSizes, oldWorkers := experiments.ParallelBenchSizes, experiments.ParallelBenchWorkers
	experiments.ParallelBenchSizes, experiments.ParallelBenchWorkers = []int{600}, []int{2}
	defer func() {
		experiments.ParallelBenchSizes, experiments.ParallelBenchWorkers = oldSizes, oldWorkers
	}()

	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	defer func() { os.Stdout = old; devnull.Close() }()

	path := t.TempDir() + "/bench.json"
	if err := run("parallel", 1, "", path, 5, ""); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("benchjson not written: %v", err)
	}
	for _, frag := range []string{`"strategy": "ptopo"`, `"strategy": "topo"`, `"strategy": "worklist"`, `"ns_per_op"`, `"num_cpu"`, `"gomaxprocs"`} {
		if !strings.Contains(string(data), frag) {
			t.Fatalf("benchjson missing %q:\n%s", frag, data)
		}
	}
}

func TestSolverSection(t *testing.T) {
	if testing.Short() {
		t.Skip("full strategy sweep")
	}
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	defer func() { os.Stdout = old; devnull.Close() }()

	path := t.TempDir() + "/bench.json"
	if err := run("solver", 1, "", path, 5, ""); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("benchjson not written: %v", err)
	}
	for _, frag := range []string{`"strategy": "topo"`, `"benchmark": "mg"`, `"ns_per_op"`, `"evaluations"`, `"allocs_per_op"`} {
		if !strings.Contains(string(data), frag) {
			t.Fatalf("benchjson missing %q:\n%s", frag, data)
		}
	}
}

func TestIncrementalSection(t *testing.T) {
	if testing.Short() {
		t.Skip("full edit sweep")
	}
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	defer func() { os.Stdout = old; devnull.Close() }()

	path := t.TempDir() + "/bench.json"
	if err := run("incremental", 1, "worklist", path, 5, ""); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("benchjson not written: %v", err)
	}
	for _, frag := range []string{`"strategy": "worklist"`, `"benchmark": "mg"`, `"delta_ns_per_op"`, `"strict_subset_edits"`, `"identical": true`} {
		if !strings.Contains(string(data), frag) {
			t.Fatalf("benchjson missing %q:\n%s", frag, data)
		}
	}
}

func TestUnknownStrategy(t *testing.T) {
	err := run("incremental", 1, "no-such-solver", "", 5, "")
	if err == nil {
		t.Fatal("unknown strategy accepted")
	}
	if !strings.Contains(err.Error(), "no-such-solver") || !strings.Contains(err.Error(), "phased") {
		t.Fatalf("error does not name the strategy and the registered names: %v", err)
	}
}

func TestClockedSection(t *testing.T) {
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	defer func() { os.Stdout = old; devnull.Close() }()

	n := 8
	if testing.Short() {
		n = 3
	}
	path := t.TempDir() + "/bench.json"
	if err := run("clocked", 1, "", path, n, ""); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("benchjson not written: %v", err)
	}
	for _, frag := range []string{`"name": "phased"`, `"blind_pairs"`, `"aware_pairs"`, `"pruned"`, `"strictly_fewer"`} {
		if !strings.Contains(string(data), frag) {
			t.Fatalf("benchjson missing %q:\n%s", frag, data)
		}
	}
}

func TestCorpusSection(t *testing.T) {
	if testing.Short() {
		t.Skip("two full corpus sweeps")
	}
	out, err := captureRunParallel(t, "corpus", 4)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, frag := range []string{"Corpus engine", "workers: 4", "speedup", "identical to sequential: true"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("corpus output missing %q:\n%s", frag, out)
		}
	}
}

func TestGofrontSection(t *testing.T) {
	old := os.Stdout
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = devnull
	defer func() { os.Stdout = old; devnull.Close() }()

	path := t.TempDir() + "/bench.json"
	if err := run("gofront", 1, "", path, 5, "../../testdata/goprograms"); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("benchjson not written: %v", err)
	}
	for _, frag := range []string{`"file": "fanout.go"`, `"file": "leaky.go"`, `"coverage"`, `"cs_pairs"`, `"observed_pairs"`} {
		if !strings.Contains(string(data), frag) {
			t.Fatalf("benchjson missing %q:\n%s", frag, data)
		}
	}
}
