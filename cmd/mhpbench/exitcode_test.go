package main

import (
	"fmt"
	"testing"

	"fx10/internal/engine"
	"fx10/internal/parser"
)

func TestExitCodeClassification(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"generic", fmt.Errorf("boom"), 1},
		{"parse", &parser.Error{Line: 2, Col: 1, Msg: "expected '}'"}, 2},
		{"wrapped parse", fmt.Errorf("figure 6: %w", &parser.Error{Line: 1, Col: 1, Msg: "x"}), 2},
		{"analysis", &engine.AnalysisError{Name: "mg", Value: "kaboom"}, 3},
		{"wrapped analysis", fmt.Errorf("sweep: %w", &engine.AnalysisError{Name: "mg", Value: "kaboom"}), 3},
	}
	for _, tc := range cases {
		if got := exitCode(tc.err); got != tc.want {
			t.Errorf("%s: exitCode = %d, want %d", tc.name, got, tc.want)
		}
	}
}
