// Package fx10 is a Go reproduction of "Featherweight X10: A Core
// Calculus for Async-Finish Parallelism" (Lee and Palsberg, PPoPP
// 2010): the FX10 calculus and its small-step operational semantics,
// the may-happen-in-parallel type system and its constraint-based
// type inference (context-sensitive and context-insensitive), a
// goroutine-backed runtime, a language-agnostic front-end layer
// (internal/frontend) over the paper's condensed program form with
// two registered front ends — the X10 subset and real Go
// (internal/gofront: `go` statements lower to async,
// WaitGroup/errgroup join spans to finish, the rest skip-lowered
// conservatively with diagnostics, so `fx10 mhp main.go` analyzes
// ordinary Go), synthetic reconstructions of the paper's 13
// benchmarks, and harnesses regenerating Figures 5–9. The analysis
// runs through a unified engine with six pluggable solver strategies
// (including ptopo, a parallel topological solver that schedules SCC
// components of the condensed constraint graph onto a bounded worker
// pool, and shard, a place-sharded solver that partitions the
// constraint system by method shard and solves shards concurrently
// with a deterministic merge loop — both bit-identical to their
// sequential counterparts), a two-tier
// content-hash cache (whole-program results and cross-program method
// summaries, the latter optionally backed by a crash-safe persistent
// store (internal/sumstore) so summaries survive restarts and are
// shared across processes) and method-granular incremental
// re-analysis (engine.AnalyzeDelta), all differentially fuzzed
// against exact and observed parallelism and scale-tested on
// generated programs past 100k labels (internal/progen's huge tier,
// BENCH_parallel.json). The engine also serves as a long-lived
// HTTP/JSON daemon (cmd/fx10d): admission-controlled solves,
// singleflight coalescing, batch corpus submission under one
// admission slot (/v1/batch), editor delta sessions, per-request
// language selection through the front-end registry, and live
// metrics including the summary store's warm-start hit rate; fx10d
// route turns N daemons into one fleet — consistent-hash routing on
// program content (internal/fleet), health-checked failover that is
// byte-invisible because replicas agree bit-for-bit, and a summary
// store shareable across processes (sumstore.OpenShared). Front
// ends are held to the analysis's soundness bar by a cross-front-end
// oracle (X10 and Go renderings of the same program must analyze
// bit-identically under every strategy, and runtime-observed pairs
// on lowered Go must be contained in the static relation). The Section 8 clocks
// extension is analyzed, not just executed: per-label phase
// inference (internal/clocks) feeds phase-ordering facts into
// constraint solving, so barrier-separated pairs are pruned
// identically under every solver strategy and the incremental path,
// with soundness fuzzed against an exhaustive barrier-semantics
// explorer and a clocked reference interpreter.
//
// Start at README.md for the tour, DESIGN.md for the system
// inventory, and EXPERIMENTS.md for paper-vs-measured results. The
// implementation lives under internal/; the executables are
// cmd/fx10, cmd/fx10d, cmd/x10c and cmd/mhpbench; runnable examples
// are under examples/.
package fx10
