#!/usr/bin/env bash
# Store smoke test: the persistent summary store across a real daemon
# restart. Build fx10d with -race, start it with -summary-store,
# analyze a burst, SIGTERM it, restart on the same directory, and
# assert (a) the restart scenario reports byte-identical results with
# warm summary hits and (b) /metrics on the restarted daemon shows
# nonzero summaryStore hits on its first analyzes. Used by CI and
# `make store-smoke`.
set -euo pipefail
cd "$(dirname "$0")/.."

PORT="${FX10D_STORE_PORT:-8711}"
ADDR="127.0.0.1:${PORT}"
TMP="$(mktemp -d)"
BIN="${TMP}/fx10d"
STORE="${TMP}/sumstore"
trap 'rm -rf "$TMP"' EXIT

go build -race -o "$BIN" ./cmd/fx10d

# The in-process restart scenario: warm phase, clean shutdown,
# restart, byte-identical reports + warm store hits — all under -race.
"$BIN" loadgen -scenario restart -store "$STORE"
rm -rf "$STORE"

wait_healthy() {
  for _ in $(seq 1 50); do
    if curl -sf "http://${ADDR}/healthz" >/dev/null 2>&1; then
      return 0
    fi
    sleep 0.1
  done
  curl -sf "http://${ADDR}/healthz" >/dev/null
}

# The same flow against a real daemon over TCP: analyze, SIGTERM (the
# drain path syncs and snapshots the store), restart, analyze again.
"$BIN" -addr "$ADDR" -summary-store "$STORE" &
DAEMON=$!
trap 'kill "$DAEMON" 2>/dev/null || true; rm -rf "$TMP"' EXIT
wait_healthy

"$BIN" loadgen -addr "$ADDR" -c 4 -duration 5s -mix analyze=3,batch=1,query=4 -strict

kill -TERM "$DAEMON"
wait "$DAEMON"

"$BIN" -addr "$ADDR" -summary-store "$STORE" &
DAEMON=$!
wait_healthy

# One analyze burst on the restarted daemon: its summary tier is
# memory-cold, so any summary reuse can only come from disk.
"$BIN" loadgen -addr "$ADDR" -c 2 -duration 2s -mix analyze=1 -strict

# "hits" only occurs inside the summaryStore section (the cache
# section uses programHits/summaryHits).
METRICS="$(curl -sf "http://${ADDR}/metrics")"
HITS="$(echo "$METRICS" | grep -o '"hits":[0-9]*' | head -1 | cut -d: -f2)"
if [ -z "$HITS" ] || [ "$HITS" -eq 0 ]; then
  echo "restarted daemon shows no warm summary-store hits in /metrics" >&2
  echo "$METRICS" >&2
  exit 1
fi

kill -TERM "$DAEMON"
wait "$DAEMON"
trap 'rm -rf "$TMP"' EXIT
echo "store smoke OK (warm hits after restart: $HITS)"
