#!/usr/bin/env bash
# Fleet smoke test: three real fx10d replicas sharing one summary
# store behind the consistent-hash router, all built with -race.
# Drive mixed load through the router, kill one replica mid-load, and
# assert (a) zero failed requests and zero cross-backend report
# divergences, (b) the router's /metrics shows the dead replica down
# and reroutes counted, and (c) the shared store produced warm hits on
# replicas that did not solve first. Used by CI and `make fleet-smoke`.
set -euo pipefail
cd "$(dirname "$0")/.."

BASE_PORT="${FX10D_FLEET_PORT:-8720}"
P1="$((BASE_PORT))"; P2="$((BASE_PORT + 1))"; P3="$((BASE_PORT + 2))"
RPORT="$((BASE_PORT + 3))"
TMP="$(mktemp -d)"
BIN="${TMP}/fx10d"
STORE="${TMP}/sumstore"
PIDS=()
cleanup() {
  for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  for pid in "${PIDS[@]:-}"; do wait "$pid" 2>/dev/null || true; done
  rm -rf "$TMP" 2>/dev/null || true
}
trap cleanup EXIT

go build -race -o "$BIN" ./cmd/fx10d

# The in-process fleet scenario first: 3 replicas + router + mid-load
# kill, byte-identity asserted end to end — all under -race.
"$BIN" loadgen -scenario fleet -store "$STORE"
rm -rf "$STORE"

wait_healthy() {
  for _ in $(seq 1 50); do
    if curl -sf "http://127.0.0.1:$1/healthz" >/dev/null 2>&1; then
      return 0
    fi
    sleep 0.1
  done
  curl -sf "http://127.0.0.1:$1/healthz" >/dev/null
}

# The same topology as real processes over TCP: three daemons on one
# shared store directory, the router in front.
for port in "$P1" "$P2" "$P3"; do
  "$BIN" -addr "127.0.0.1:${port}" -summary-store "$STORE" -summary-store-shared &
  PIDS+=($!)
done
for port in "$P1" "$P2" "$P3"; do wait_healthy "$port"; done

"$BIN" route -addr "127.0.0.1:${RPORT}" \
  -backends "http://127.0.0.1:${P1},http://127.0.0.1:${P2},http://127.0.0.1:${P3}" \
  -health-every 200ms &
PIDS+=($!)
wait_healthy "$RPORT"

# Warm every replica directly, with the cross-backend divergence check
# armed: -backends + -strict fails if any replica's report bytes
# differ from the others'.
"$BIN" loadgen \
  -backends "http://127.0.0.1:${P1},http://127.0.0.1:${P2},http://127.0.0.1:${P3}" \
  -c 4 -duration 3s -mix analyze=2,query=6,batch=1 -strict

# Mixed load through the router, killing replica 2 mid-burst. The
# loadgen run and the kill race on purpose; -strict demands that every
# request still lands 2xx/429.
"$BIN" loadgen -addr "127.0.0.1:${RPORT}" -c 4 -duration 6s \
  -mix analyze=3,query=6,batch=1 -strict &
LG=$!
sleep 2
kill -TERM "${PIDS[1]}"
wait "${PIDS[1]}" 2>/dev/null || true
wait "$LG"

# The router must have noticed the death and rerouted.
RMETRICS="$(curl -sf "http://127.0.0.1:${RPORT}/metrics")"
DOWN="$(echo "$RMETRICS" | grep -c "127.0.0.1:${P2}" || true)"
if [ "$DOWN" -eq 0 ]; then
  echo "router /metrics does not mention the killed replica" >&2
  echo "$RMETRICS" >&2
  exit 1
fi
REROUTES="$(echo "$RMETRICS" | grep -o '"reroutes": *[0-9]*' | grep -o '[0-9]*$' | head -1)"
if [ -z "$REROUTES" ] || [ "$REROUTES" -eq 0 ]; then
  echo "router recorded no reroutes after a replica was killed" >&2
  echo "$RMETRICS" >&2
  exit 1
fi

# Shared-store warmth: a surviving replica must show summaryStore hits
# (the corpus was first solved elsewhere in the fleet).
HITS_TOTAL=0
for port in "$P1" "$P3"; do
  METRICS="$(curl -sf "http://127.0.0.1:${port}/metrics")"
  HITS="$(echo "$METRICS" | grep -o '"hits":[0-9]*' | head -1 | cut -d: -f2)"
  HITS_TOTAL=$((HITS_TOTAL + ${HITS:-0}))
done
if [ "$HITS_TOTAL" -eq 0 ]; then
  echo "no surviving replica shows warm shared-store hits" >&2
  exit 1
fi

echo "fleet smoke OK (reroutes after kill: $REROUTES, shared-store hits: $HITS_TOTAL)"
