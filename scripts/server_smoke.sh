#!/usr/bin/env bash
# Server smoke test: start fx10d, throw a 15s loadgen burst at it over
# real TCP, scrape /metrics, and fail on transport errors or any
# response outside 2xx/429. Used by CI and `make serversmoke`.
set -euo pipefail
cd "$(dirname "$0")/.."

PORT="${FX10D_PORT:-8710}"
ADDR="127.0.0.1:${PORT}"
BIN="$(mktemp -d)/fx10d"

go build -o "$BIN" ./cmd/fx10d

"$BIN" -addr "$ADDR" &
DAEMON=$!
trap 'kill "$DAEMON" 2>/dev/null || true' EXIT

# Wait for /healthz (the daemon binds fast, but don't race it).
for _ in $(seq 1 50); do
  if curl -sf "http://${ADDR}/healthz" >/dev/null 2>&1; then
    break
  fi
  sleep 0.1
done
curl -sf "http://${ADDR}/healthz" >/dev/null

"$BIN" loadgen -addr "$ADDR" -c 8 -duration 15s -strict

# /metrics must be valid JSON and show the burst.
METRICS="$(curl -sf "http://${ADDR}/metrics")"
echo "$METRICS" | grep -q '"solves"' || { echo "metrics missing solves: $METRICS" >&2; exit 1; }
echo "$METRICS" | grep -q '"requestLatencyMs"' || { echo "metrics missing latency histogram" >&2; exit 1; }

# Graceful drain: SIGTERM must flip /healthz and exit cleanly.
kill -TERM "$DAEMON"
wait "$DAEMON"
trap - EXIT
echo "server smoke OK"
