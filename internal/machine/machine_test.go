package machine

import (
	"strings"
	"testing"

	"fx10/internal/fixtures"
	"fx10/internal/parser"
	"fx10/internal/syntax"
	"fx10/internal/tree"
)

func TestArrayEval(t *testing.T) {
	a := Array{5, 7}
	if got := a.Eval(syntax.Const{C: 42}); got != 42 {
		t.Fatalf("Eval(42) = %d", got)
	}
	if got := a.Eval(syntax.Plus{D: 1}); got != 8 {
		t.Fatalf("Eval(a[1]+1) = %d, want 8", got)
	}
}

func TestInitial(t *testing.T) {
	p := fixtures.Example22()
	st := Initial(p, []int64{1, 2})
	if len(st.A) != p.ArrayLen {
		t.Fatalf("array len = %d, want %d", len(st.A), p.ArrayLen)
	}
	if st.A[0] != 1 || st.A[1] != 2 || st.A[2] != 0 {
		t.Fatalf("array init wrong: %v", st.A)
	}
	lf, ok := st.T.(*tree.Leaf)
	if !ok || lf.S != p.Main().Body {
		t.Fatalf("initial tree is not ⟨s_0⟩")
	}
}

func TestSkipAndAssignSteps(t *testing.T) {
	p := parser.MustParse(`
array 2;
void main() {
  a[0] = 41;
  a[1] = a[0] + 1;
  skip;
}
`)
	st := Initial(p, nil)
	res := Run(p, st, Leftmost{}, 100)
	if !res.Done {
		t.Fatalf("program did not finish")
	}
	if res.Steps != 3 {
		t.Fatalf("steps = %d, want 3", res.Steps)
	}
	if res.Final.A[0] != 41 || res.Final.A[1] != 42 {
		t.Fatalf("final array = %v", res.Final.A)
	}
}

func TestArrayCopyOnWrite(t *testing.T) {
	p := parser.MustParse(`array 1; void main() { a[0] = 9; }`)
	st := Initial(p, nil)
	succ := Successors(p, st)
	if len(succ) != 1 {
		t.Fatalf("successors = %d", len(succ))
	}
	if st.A[0] != 0 {
		t.Fatalf("step mutated the source state's array")
	}
	if succ[0].A[0] != 9 {
		t.Fatalf("assignment lost: %v", succ[0].A)
	}
}

func TestWhileZeroIterations(t *testing.T) {
	p := parser.MustParse(`
array 2;
void main() {
  while (a[0] != 0) { a[1] = 1; }
  a[1] = 7;
}
`)
	res := Run(p, Initial(p, nil), Leftmost{}, 100)
	if !res.Done || res.Final.A[1] != 7 {
		t.Fatalf("while(0) should skip body: %+v", res.Final.A)
	}
}

func TestWhileOneIteration(t *testing.T) {
	p := parser.MustParse(`
array 2;
void main() {
  a[0] = 1;
  while (a[0] != 0) {
    a[1] = a[1] + 1;
    a[0] = 0;
  }
}
`)
	res := Run(p, Initial(p, nil), Leftmost{}, 100)
	if !res.Done {
		t.Fatalf("did not terminate")
	}
	if res.Final.A[1] != 1 || res.Final.A[0] != 0 {
		t.Fatalf("final array = %v", res.Final.A)
	}
}

func TestWhileDivergesUntilFuel(t *testing.T) {
	p := parser.MustParse(`
array 1;
void main() {
  a[0] = 1;
  while (a[0] != 0) { skip; }
}
`)
	res := Run(p, Initial(p, nil), Leftmost{}, 50)
	if res.Done {
		t.Fatalf("divergent loop reported done")
	}
	if res.Steps != 50 {
		t.Fatalf("steps = %d, want the full fuel 50", res.Steps)
	}
}

// A spinning loop terminated by a parallel async: the core async-
// finish interaction. The loop only exits if the async body's write
// is interleaved, which the leftmost scheduler provides by stepping
// the spawned body (left Par subtree) first.
func TestAsyncStopsSpinningLoop(t *testing.T) {
	p := parser.MustParse(`
array 2;
void main() {
  a[0] = 1;
  async { a[0] = 0; }
  while (a[0] != 0) { skip; }
  a[1] = 5;
}
`)
	res := Run(p, Initial(p, nil), Leftmost{}, 1000)
	if !res.Done {
		t.Fatalf("did not terminate under leftmost scheduling")
	}
	if res.Final.A[1] != 5 {
		t.Fatalf("final array = %v", res.Final.A)
	}
	// And under a random scheduler (which must eventually pick the
	// async body).
	res = Run(p, Initial(p, nil), NewRandom(1), 100000)
	if !res.Done {
		t.Fatalf("did not terminate under random scheduling")
	}
}

// TestPaperTraceExample22 follows the execution prefix the paper
// walks through in Section 3.1 for the first finish of the Section
// 2.2 example, checking each intermediate tree shape.
func TestPaperTraceExample22(t *testing.T) {
	p := fixtures.Example22()
	st := Initial(p, nil)

	shape := func(st State) string { return tree.String(p, st.T) }

	// ⟨S1 S2⟩ → ⟨A3 C1⟩ ▷ ⟨S2⟩       (finish rule 13)
	st = Successors(p, st)[0]
	if got := shape(st); got != "(<A3 C1> >> <S2>)" {
		t.Fatalf("after finish: %s", got)
	}
	// → (⟨S3⟩ ∥ ⟨C1⟩) ▷ ⟨S2⟩          (async rule 12)
	st = Successors(p, st)[0]
	if got := shape(st); got != "((<S3> || <C1>) >> <S2>)" {
		t.Fatalf("after async: %s", got)
	}
	// Step the call (right Par subtree): → (⟨S3⟩ ∥ ⟨A5⟩) ▷ ⟨S2⟩ (rule 14)
	succ := Successors(p, st)
	var next *State
	for i := range succ {
		if strings.Contains(shape(succ[i]), "<A5>") {
			next = &succ[i]
		}
	}
	if next == nil {
		t.Fatalf("no successor performed the call; got %d successors", len(succ))
	}
	st = *next
	if got := shape(st); got != "((<S3> || <A5>) >> <S2>)" {
		t.Fatalf("after call: %s", got)
	}
	// Step A5: → (⟨S3⟩ ∥ (⟨S5⟩ ∥ √)) ▷ ⟨S2⟩ (rule 12, empty continuation).
	succ = Successors(p, st)
	next = nil
	for i := range succ {
		if strings.Contains(shape(succ[i]), "<S5>") {
			next = &succ[i]
		}
	}
	if next == nil {
		t.Fatalf("no successor stepped A5")
	}
	if got := shape(*next); got != "((<S3> || (<S5> || OK)) >> <S2>)" {
		t.Fatalf("after inner async: %s", got)
	}
}

func TestFullRunExample22(t *testing.T) {
	p := fixtures.Example22()
	for seed := int64(0); seed < 20; seed++ {
		res := Run(p, Initial(p, nil), NewRandom(seed), 10000)
		if !res.Done {
			t.Fatalf("seed %d: did not terminate", seed)
		}
	}
	res := Run(p, Initial(p, nil), Leftmost{}, 10000)
	if !res.Done {
		t.Fatalf("leftmost: did not terminate")
	}
}

// Finish must block its continuation until the body (including
// spawned asyncs) completes: a[1] is written by an async inside the
// finish, and read (via +1) after the finish. Every schedule must see
// the write.
func TestFinishWaitsForAsyncs(t *testing.T) {
	p := parser.MustParse(`
array 2;
void main() {
  finish {
    async { a[0] = 10; }
  }
  a[1] = a[0] + 1;
}
`)
	for seed := int64(0); seed < 50; seed++ {
		res := Run(p, Initial(p, nil), NewRandom(seed), 10000)
		if !res.Done {
			t.Fatalf("seed %d: not done", seed)
		}
		if res.Final.A[1] != 11 {
			t.Fatalf("seed %d: finish did not wait; a = %v", seed, res.Final.A)
		}
	}
}

// Without finish, the read may or may not see the async's write:
// both outcomes must be reachable under some schedule.
func TestAsyncRaceBothOutcomes(t *testing.T) {
	p := parser.MustParse(`
array 2;
void main() {
  async { a[0] = 10; }
  a[1] = a[0] + 1;
}
`)
	saw := map[int64]bool{}
	for seed := int64(0); seed < 100; seed++ {
		res := Run(p, Initial(p, nil), NewRandom(seed), 10000)
		if !res.Done {
			t.Fatalf("seed %d: not done", seed)
		}
		saw[res.Final.A[1]] = true
	}
	if !saw[1] || !saw[11] {
		t.Fatalf("expected both race outcomes {1, 11}, saw %v", saw)
	}
}

func TestProgressOnDone(t *testing.T) {
	p := fixtures.Example22()
	if !Progress(p, State{A: make(Array, p.ArrayLen), T: tree.Done}) {
		t.Fatalf("√ should satisfy progress")
	}
}

// Theorem 1 (deadlock freedom) along every state of several random
// executions.
func TestDeadlockFreedomAlongTraces(t *testing.T) {
	for _, src := range []string{fixtures.Example21Source, fixtures.Example22Source} {
		p := parser.MustParse(src)
		for seed := int64(0); seed < 10; seed++ {
			states := Trace(p, Initial(p, nil), NewRandom(seed), 500)
			for i, st := range states {
				if !Progress(p, st) {
					t.Fatalf("seed %d state %d violates progress: %s", seed, i, tree.String(p, st.T))
				}
			}
		}
	}
}

func TestRecursionUnfoldsViaCall(t *testing.T) {
	// Terminating recursion: f calls itself while a[0] != 0, with the
	// guard cleared on the first pass. (FX10 has no decrement, so the
	// recursion is guarded by a flag cell.)
	p := parser.MustParse(`
array 2;
void f() {
  while (a[0] != 0) {
    a[0] = 0;
    a[1] = a[1] + 1;
    g();
  }
}
void g() { a[1] = a[1] + 1; }
void main() {
  a[0] = 1;
  f();
}
`)
	res := Run(p, Initial(p, nil), Leftmost{}, 1000)
	if !res.Done {
		t.Fatalf("not done")
	}
	if res.Final.A[1] != 2 {
		t.Fatalf("a[1] = %d, want 2", res.Final.A[1])
	}
}

func TestPlacesPropagation(t *testing.T) {
	p := parser.MustParse(`
array 2;
void main() {
  async at (3) {
    async { skip; }
  }
  skip;
}
`)
	st := Initial(p, nil)
	st = Successors(p, st)[0] // spawn the placed async
	par, ok := st.T.(*tree.Par)
	if !ok {
		t.Fatalf("expected Par, got %T", st.T)
	}
	body := par.L.(*tree.Leaf)
	if body.Place != 3 {
		t.Fatalf("body place = %d, want 3", body.Place)
	}
	// The nested plain async inherits place 3.
	inner := succLeaf(p, st.A, body)[0]
	ipar := inner.T.(*tree.Par)
	if ipar.L.(*tree.Leaf).Place != 3 {
		t.Fatalf("nested async place = %d, want 3", ipar.L.(*tree.Leaf).Place)
	}
}

func TestTraceIncludesInitialAndFinal(t *testing.T) {
	p := parser.MustParse(`array 1; void main() { skip; }`)
	states := Trace(p, Initial(p, nil), Leftmost{}, 10)
	if len(states) != 2 {
		t.Fatalf("trace length = %d, want 2", len(states))
	}
	if !states[1].T.Done() {
		t.Fatalf("final trace state not done")
	}
}

func TestSuccessorsOfDoneEmpty(t *testing.T) {
	p := fixtures.Example22()
	if got := Successors(p, State{A: make(Array, 4), T: tree.Done}); got != nil {
		t.Fatalf("√ has successors: %v", got)
	}
}

func TestParBothDoneCollapses(t *testing.T) {
	p := fixtures.Example22()
	st := State{A: make(Array, 4), T: &tree.Par{L: tree.Done, R: tree.Done}}
	succ := Successors(p, st)
	if len(succ) != 2 {
		t.Fatalf("√∥√ successors = %d, want 2 (rules 3 and 4)", len(succ))
	}
	for _, s := range succ {
		if !s.T.Done() {
			t.Fatalf("√∥√ must collapse to √")
		}
	}
}
