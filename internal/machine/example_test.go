package machine_test

import (
	"fmt"

	"fx10/internal/machine"
	"fx10/internal/parser"
	"fx10/internal/tree"
)

// ExampleRun steps a finish/async program to completion under the
// deterministic leftmost scheduler.
func ExampleRun() {
	p := parser.MustParse(`
array 4;
void main() {
  finish {
    async { a[0] = 41; }
  }
  a[1] = a[0] + 1;
}
`)
	res := machine.Run(p, machine.Initial(p, nil), machine.Leftmost{}, 1000)
	fmt.Println("done:", res.Done)
	fmt.Println("array:", res.Final.A)
	// Output:
	// done: true
	// array: [41 42 0 0]
}

// ExampleTrace shows the execution trees the finish and async rules
// build.
func ExampleTrace() {
	p := parser.MustParse(`
array 2;
void main() {
  F: finish {
    A: async { S: skip; }
  }
  T: skip;
}
`)
	states := machine.Trace(p, machine.Initial(p, nil), machine.Leftmost{}, 10)
	for _, st := range states {
		fmt.Println(tree.String(p, st.T))
	}
	// Output:
	// <F T>
	// (<A> >> <T>)
	// ((<S> || OK) >> <T>)
	// (<S> >> <T>)
	// (OK >> <T>)
	// <T>
	// OK
}
