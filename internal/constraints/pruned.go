package constraints

import "fx10/internal/intset"

// Post-hoc accounting for the clock-phase pruning: which pairs did the
// barrier remove from the main method's MHP relation?
//
// The solvers drop a pair the moment it would enter a pair variable
// (pairBag.crossSym), so the pruned pairs are never materialized during
// solving and no strategy-dependent counter exists. They are instead
// reconstructed exactly from the least solution: level-1 values are
// unaffected by the pruning (no set constraint reads a pair variable),
// so a clock-blind solve has the same set valuation, and its main m
// value is the pruned one plus every phase-rejected cross-term pair of
// a level-2 constraint reachable from m_main through Pairs edges. The
// walk below collects exactly those, making the count a deterministic
// function of the system — identical across solver strategies and
// delta vs scratch solves, which the report layer's byte-stability
// contract requires.

// ClockPrunedMainPairs returns the symmetric pair set the phase
// analysis pruned from the main method's m variable: a clock-blind
// solve's MainM equals MainM() ∪ ClockPrunedMainPairs(), and the two
// are disjoint. Returns an empty set for clock-free systems.
func (sol *Solution) ClockPrunedMainPairs() *intset.PairSet {
	s := sol.sys
	out := intset.NewPairs(s.P.NumLabels())
	code := s.PhaseCode
	if code == nil {
		return out
	}

	// L2 constraints indexed by left-hand side, for the reachability
	// walk. Every pair variable has at most one defining constraint
	// today, but nothing below depends on that.
	byLHS := make([][]int32, len(s.PairVarNames))
	for ci := range s.L2s {
		lhs := s.L2s[ci].LHS
		byLHS[lhs] = append(byLHS[lhs], int32(ci))
	}

	root := s.MethodM[s.P.MainIndex]
	seen := make([]bool, len(s.PairVarNames))
	seen[root] = true
	stack := []PairVar{root}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, ci := range byLHS[v] {
			c := &s.L2s[ci]
			for _, ct := range c.Crosses {
				val := sol.setVals[ct.Var]
				ct.Const.Each(func(i int) {
					pi := code[i]
					if pi < 0 {
						return
					}
					val.Each(func(j int) {
						if pj := code[j]; pj >= 0 && pj != pi {
							out.AddSym(i, j)
						}
					})
				})
			}
			for _, pv := range c.Pairs {
				if !seen[pv] {
					seen[pv] = true
					stack = append(stack, pv)
				}
			}
		}
	}
	return out
}
