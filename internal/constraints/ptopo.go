package constraints

// Parallel topological SCC solving (the "ptopo" strategy): the topo
// solver's condensation, scheduled concurrently. The condensed
// dependency graph is a DAG, so components become independently
// runnable the moment all their predecessor components are solved;
// tracking that with one atomic indegree counter per component turns
// the sequential reverse-id sweep of topo.go into a work queue a
// bounded pool drains. Everything that determines the answer — the
// Tarjan condensation, the member order inside a component, the
// copy-elision decisions, the per-component evaluation bodies
// (evalL1Comp/evalL2Comp, shared with the sequential solver) — is
// unchanged, and every cross-component read is of a value that is
// final before the reader is scheduled, so the solution (valuations,
// pair bags, clock-phase pruning, even the Evaluations count) is
// bit-identical to topo's by construction.
//
// Memory discipline: workers never share mutable scratch. Each level-1
// worker draws result sets from its own slab arena (intset.NewBatch
// refills), each level-2 component builds a private bag; the shared
// vals/bags arrays are written exactly once per component, by the
// worker that solved it, and read only by components scheduled after
// it. The happens-before chain is: component writes → atomic indegree
// decrement of each successor → (for the decrement that reaches zero)
// buffered channel send → receive by the worker that solves the
// successor. Sends never block: each component is enqueued exactly
// once and the channel's capacity is the component count; the channel
// is closed only after all components are solved, so no send can race
// the close.

import (
	"runtime"
	"sync"
	"sync/atomic"

	"fx10/internal/intset"
)

// condensedDAG is the component-level dependency graph: succ lists
// each component's successor components in CSR form (multi-edges
// kept), indeg holds one atomic counter per component, initialized to
// its incoming edge count. Scheduling decrements indeg once per edge,
// so a component becomes ready exactly when its last predecessor
// finishes.
type condensedDAG struct {
	succ  graphCSR
	indeg []atomic.Int32
}

// condense projects the variable-level dependency graph g onto
// components, dropping intra-component edges.
func condense(comp []int32, ncomp int32, g graphCSR) *condensedDAG {
	d := &condensedDAG{
		succ:  graphCSR{off: make([]int32, ncomp+1)},
		indeg: make([]atomic.Int32, ncomp),
	}
	nv := len(comp)
	for v := 0; v < nv; v++ {
		cv := comp[v]
		for _, w := range g.edges[g.off[v]:g.off[v+1]] {
			if comp[w] != cv {
				d.succ.off[cv+1]++
			}
		}
	}
	for c := int32(1); c <= ncomp; c++ {
		d.succ.off[c] += d.succ.off[c-1]
	}
	d.succ.edges = make([]int32, d.succ.off[ncomp])
	pos := make([]int32, ncomp)
	copy(pos, d.succ.off[:ncomp])
	for v := 0; v < nv; v++ {
		cv := comp[v]
		for _, w := range g.edges[g.off[v]:g.off[v+1]] {
			if cw := comp[w]; cw != cv {
				d.succ.edges[pos[cv]] = cw
				pos[cv]++
				d.indeg[cw].Add(1)
			}
		}
	}
	return d
}

// normalizeWorkers resolves the pool width: ≤ 0 means GOMAXPROCS, and
// the pool never exceeds the number of schedulable units.
func normalizeWorkers(workers int, units int32) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if int32(workers) > units {
		workers = int(units)
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// runComponents drains the condensed DAG with a bounded worker pool:
// solve(w, cid) is called exactly once per component, only after all
// of cid's predecessors have been solved. A panic in any solve (a
// cancellation unwind, or a genuine bug) aborts the pool and is
// re-panicked on the calling goroutine, preserving the SolveCtx
// recover contract.
func runComponents(workers int, d *condensedDAG, solve func(w int, cid int32)) {
	ncomp := int32(len(d.indeg))
	if ncomp == 0 {
		return
	}
	// Every component is sent exactly once, so cap ncomp means sends
	// never block (a blocked send could deadlock against an aborting
	// pool).
	ready := make(chan int32, ncomp)
	var remaining atomic.Int32
	remaining.Store(ncomp)
	// Seed sources in descending id order — the order the sequential
	// sweep would first reach them. Any order is correct; this one
	// keeps single-worker runs close to the sequential access pattern.
	for cid := ncomp - 1; cid >= 0; cid-- {
		if d.indeg[cid].Load() == 0 {
			ready <- cid
		}
	}

	quit := make(chan struct{})
	var quitOnce sync.Once
	var panicMu sync.Mutex
	var panicVal any

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicVal == nil {
						panicVal = r
					}
					panicMu.Unlock()
					quitOnce.Do(func() { close(quit) })
				}
			}()
			for {
				select {
				case <-quit:
					return
				case cid, ok := <-ready:
					if !ok {
						return
					}
					solve(w, cid)
					for _, sc := range d.succ.edges[d.succ.off[cid]:d.succ.off[cid+1]] {
						if d.indeg[sc].Add(-1) == 0 {
							ready <- sc
						}
					}
					if remaining.Add(-1) == 0 {
						close(ready)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
}

// ptopoWorker is one level-1 worker's private state: a forked
// cancellation countdown, an evaluation counter, and a slab arena of
// result sets refilled in chunks so the hot path allocates nothing.
type ptopoWorker struct {
	cancel   cancelState
	evals    int64
	free     []*intset.Set
	universe int
	chunk    int
}

// nextSet returns a fresh empty set from the worker's arena.
func (w *ptopoWorker) nextSet() *intset.Set {
	if len(w.free) == 0 {
		w.free = intset.NewBatch(w.universe, w.chunk)
	}
	s := w.free[len(w.free)-1]
	w.free = w.free[:len(w.free)-1]
	return s
}

// arenaChunk sizes worker slab refills: roughly a worker's fair share
// of the sets, clamped so tiny systems don't over-allocate and huge
// ones don't refill constantly.
func arenaChunk(n, workers int) int {
	c := (n + workers - 1) / workers
	if c < 8 {
		c = 8
	}
	if c > 256 {
		c = 256
	}
	return c
}

// solveParallelL1 computes the level-1 least solution: topo's
// condensation, drained by runComponents.
func (sol *Solution) solveParallelL1(workers int) {
	s := sol.sys
	nv := len(s.SetVarNames)
	if nv == 0 {
		return
	}
	n := s.P.NumLabels()

	lhsL1, subSrc, g := s.l1Graph()
	comp, ncomp := tarjanSCC(nv, g)
	members := memberCSR(comp, ncomp)
	dag := condense(comp, ncomp, g)
	workers = normalizeWorkers(workers, ncomp)

	vals := make([]*intset.Set, ncomp)
	owner := make([]int32, ncomp)
	for cid := range owner {
		owner[cid] = -1
	}

	ws := make([]*ptopoWorker, workers)
	for i := range ws {
		ws[i] = &ptopoWorker{
			cancel:   sol.cancel.fork(),
			universe: n,
			chunk:    arenaChunk(nv, workers),
		}
	}

	runComponents(workers, dag, func(w int, cid int32) {
		ms := members.edges[members.off[cid]:members.off[cid+1]]
		// Copy elision, exactly as in solveTopoL1: the source
		// component is a predecessor in the condensed DAG, so its
		// value is final before this component is scheduled.
		if len(ms) == 1 {
			if src, ok := s.l1SingleInflow(ms[0], cid, comp, lhsL1, subSrc); ok {
				vals[cid] = vals[src]
				return
			}
		}
		wk := ws[w]
		val := wk.nextSet()
		s.evalL1Comp(cid, ms, comp, lhsL1, subSrc, vals, val, &wk.evals, &wk.cancel)
		vals[cid] = val
		owner[cid] = ms[0]
	})
	for _, wk := range ws {
		sol.Evaluations += wk.evals
	}

	// Materialize, as in solveTopoL1: the owning variable keeps the
	// component's set, every other variable gets its own copy — in
	// parallel over contiguous variable ranges, each range drawing
	// from an exactly-sized private batch.
	parallelRanges(workers, nv, func(lo, hi int) {
		need := 0
		for v := lo; v < hi; v++ {
			if owner[comp[v]] != int32(v) {
				need++
			}
		}
		batch := intset.NewBatch(n, need)
		next := 0
		for v := lo; v < hi; v++ {
			cid := comp[v]
			if owner[cid] == int32(v) {
				sol.setVals[v] = vals[cid]
				continue
			}
			cp := batch[next]
			next++
			cp.CopyFrom(vals[cid])
			sol.setVals[v] = cp
		}
	})
}

// solveParallelL2 computes the level-2 least solution over the
// pair-variable condensation. Cross terms read the final level-1
// valuation read-only; bags are written once per component and read
// only by successors, like vals in level 1. Copy-elided chains alias
// the source bag, as sequentially.
func (sol *Solution) solveParallelL2(workers int) {
	s := sol.sys
	np := len(s.PairVarNames)
	if np == 0 {
		return
	}

	lhsL2, g := s.l2Graph()
	comp, ncomp := tarjanSCC(np, g)
	members := memberCSR(comp, ncomp)
	dag := condense(comp, ncomp, g)
	workers = normalizeWorkers(workers, ncomp)

	bags := make([]pairBag, ncomp)
	cancels := make([]cancelState, workers)
	evals := make([]int64, workers)
	for i := range cancels {
		cancels[i] = sol.cancel.fork()
	}

	runComponents(workers, dag, func(w int, cid int32) {
		ms := members.edges[members.off[cid]:members.off[cid+1]]
		if len(ms) == 1 {
			if src, ok := s.l2SingleInflow(ms[0], cid, comp, lhsL2, sol.setVals); ok {
				bags[cid] = bags[src]
				return
			}
		}
		bags[cid] = s.evalL2Comp(cid, ms, comp, lhsL2, sol.setVals, bags, &evals[w], &cancels[w])
	})
	for _, e := range evals {
		sol.Evaluations += e
	}

	for v := 0; v < np; v++ {
		sol.pairVals[v] = bags[comp[v]]
	}
}

// parallelRanges splits [0, n) into one contiguous chunk per worker
// and runs fn on the chunks concurrently, re-panicking the first
// panic on the caller.
func parallelRanges(workers, n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	var panicMu sync.Mutex
	var panicVal any
	var wg sync.WaitGroup
	step := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += step {
		hi := lo + step
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicVal == nil {
						panicVal = r
					}
					panicMu.Unlock()
				}
			}()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
}
