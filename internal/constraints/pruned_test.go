package constraints

import (
	"testing"

	"fx10/internal/parser"
)

// TestClockPrunedMainPairs checks the post-hoc accounting identity on
// clocked programs: a clock-blind solve's MainM is exactly the
// clock-aware MainM plus the reconstructed pruned set, and the two are
// disjoint.
func TestClockPrunedMainPairs(t *testing.T) {
	srcs := map[string]string{
		"split-phase": `
array 8;
void main() {
  C1: clocked async {
    W1: a[0] = 1;
    N1: next;
    R1: a[2] = a[1] + 1;
  }
  C2: clocked async {
    W2: a[1] = 1;
    N2: next;
    R2: a[3] = a[0] + 1;
  }
  N0: next;
  D: a[4] = 9;
}
`,
		"through-call": `
array 8;
void work() {
  WC: clocked async {
    WA: a[0] = 1;
    WN: next;
    WB: a[1] = 2;
  }
  WD: a[2] = 3;
  WM: next;
  WE: a[3] = 4;
}
void main() {
  F1: work();
}
`,
		"clock-free": `
array 4;
void main() {
  A: async { B: a[0] = 1; }
  C: a[1] = 2;
}
`,
	}
	for name, src := range srcs {
		p := parser.MustParse(src)
		for _, mode := range []Mode{ContextSensitive, ContextInsensitive} {
			aware := deltaSys(p, mode).Solve(Options{})
			pruned := aware.ClockPrunedMainPairs()

			blindSys := deltaSys(p, mode)
			blindSys.Phases = nil
			blindSys.PhaseCode = nil
			blind := blindSys.Solve(Options{}).MainM()

			m := aware.MainM()
			if name == "clock-free" {
				if pruned.Len() != 0 {
					t.Errorf("%s/%v: clock-free program pruned %d pairs", name, mode, pruned.Len())
				}
			} else if pruned.Len() == 0 {
				t.Errorf("%s/%v: clocked program pruned nothing", name, mode)
			}
			pruned.Each(func(i, j int) {
				if m.Has(i, j) {
					t.Errorf("%s/%v: pair (%d,%d) both pruned and present", name, mode, i, j)
				}
			})
			union := m.Clone()
			union.UnionWith(pruned)
			if !union.Equal(blind) {
				t.Errorf("%s/%v: aware ∪ pruned != blind (aware %d, pruned %d, blind %d)",
					name, mode, m.Len(), pruned.Len(), blind.Len())
			}
		}
	}
}
