package constraints

import (
	"context"
	"errors"
	"testing"
	"time"

	"fx10/internal/labels"
	"fx10/internal/parser"
)

const cancelSrc = `
array 4;
void main() {
  finish {
    async { f(); }
    l1: a[0] = 1;
    f();
  }
}
void f() {
  finish {
    async { l2: a[1] = a[2] + 1; }
    g();
  }
}
void g() {
  while (a[3] != 0) { async { l3: a[2] = 0; } }
}
`

func cancelSystem(t *testing.T, mode Mode) *System {
	t.Helper()
	p, err := parser.Parse(cancelSrc)
	if err != nil {
		t.Fatal(err)
	}
	return Generate(labels.Compute(p), mode)
}

// SolveCtx with a live context must agree exactly with Solve, for
// every strategy.
func TestSolveCtxMatchesSolve(t *testing.T) {
	for _, mode := range []Mode{ContextSensitive, ContextInsensitive} {
		sys := cancelSystem(t, mode)
		for _, opts := range []Options{{}, {Monolithic: true}, {Worklist: true}, {Topo: true}, {Parallel: true}, {Parallel: true, Workers: 4}} {
			want := sys.Solve(opts)
			got, err := sys.SolveCtx(context.Background(), opts)
			if err != nil {
				t.Fatalf("%v %+v: unexpected error %v", mode, opts, err)
			}
			if !got.MainM().Equal(want.MainM()) {
				t.Errorf("%v %+v: SolveCtx diverges from Solve", mode, opts)
			}
		}
	}
}

// A context cancelled before the call returns immediately with its
// error and no solution.
func TestSolveCtxPreCancelled(t *testing.T) {
	sys := cancelSystem(t, ContextSensitive)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, opts := range []Options{{}, {Monolithic: true}, {Worklist: true}, {Topo: true}, {Parallel: true}, {Parallel: true, Workers: 4}} {
		sol, err := sys.SolveCtx(ctx, opts)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%+v: want context.Canceled, got %v", opts, err)
		}
		if sol != nil {
			t.Fatalf("%+v: got partial solution on cancellation", opts)
		}
	}
}

// A deadline that expires mid-solve aborts the solve promptly. The
// workload solves in well under a millisecond, so the deadline is set
// in the past to force every stride poll to observe expiry.
func TestSolveCtxExpiredDeadline(t *testing.T) {
	sys := cancelSystem(t, ContextSensitive)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := sys.SolveCtx(ctx, Options{Worklist: true}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
}

// SolveDeltaCtx: live context matches SolveDelta; cancelled context
// returns the context error.
func TestSolveDeltaCtx(t *testing.T) {
	sys := cancelSystem(t, ContextSensitive)
	prev := sys.Solve(Options{})

	got, info, err := sys.SolveDeltaCtx(context.Background(), prev, []MethodID{0})
	if err != nil {
		t.Fatal(err)
	}
	want, winfo := sys.SolveDelta(prev, []MethodID{0})
	if !got.MainM().Equal(want.MainM()) || info.MethodsResolved != winfo.MethodsResolved {
		t.Fatal("SolveDeltaCtx diverges from SolveDelta")
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sol, _, err := sys.SolveDeltaCtx(ctx, prev, []MethodID{0})
	if !errors.Is(err, context.Canceled) || sol != nil {
		t.Fatalf("want (nil, context.Canceled), got (%v, %v)", sol, err)
	}
}
