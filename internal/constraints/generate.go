package constraints

import (
	"fx10/internal/clocks"
	"fx10/internal/intset"
	"fx10/internal/labels"
	"fx10/internal/syntax"
)

// Generate builds the constraint system C(p) for the program behind
// in, in the given mode. Constraint shapes follow equations (57)–(82)
// (and (83)–(84) for ContextInsensitive), extended uniformly to
// statements whose final instruction is not a skip: an absent
// continuation contributes nothing to m and leaves o equal to the
// instruction's own "still running afterwards" set, mirroring the
// treatment in internal/types.
//
// Constraints are emitted in dependency-friendly order so that the
// Gauss–Seidel solver converges in few passes, as the paper's
// implementation does: methods are ordered callee-first (level-1
// information flows callee→caller through the oᵢ variables in the
// context-sensitive analysis), r constraints are emitted in pre-order
// (they flow root-to-leaf) and o/m constraints in post-order (they
// flow leaf-to-root). The context-insensitive mode adds
// caller→callee flows through the rᵢ variables, which is why it needs
// more level-1 passes (the Figure 9 effect).
func Generate(in *labels.Info, mode Mode) *System {
	p := in.Program()
	s := &System{
		P:     p,
		Info:  in,
		Mode:  mode,
		StmtR: map[*syntax.Stmt]SetVar{},
		StmtO: map[*syntax.Stmt]SetVar{},
		StmtM: map[*syntax.Stmt]PairVar{},
	}
	g := &generator{s: s, in: in, n: p.NumLabels()}

	// Per-method variables first, so call-site constraints can refer
	// to any method.
	s.MethodO = make([]SetVar, len(p.Methods))
	s.MethodM = make([]PairVar, len(p.Methods))
	if mode == ContextInsensitive {
		s.MethodR = make([]SetVar, len(p.Methods))
	}
	for i, m := range p.Methods {
		s.MethodO[i] = g.newSetVar("o_" + m.Name)
		s.MethodM[i] = g.newPairVar("m_" + m.Name)
		if mode == ContextInsensitive {
			s.MethodR[i] = g.newSetVar("r_" + m.Name)
		}
	}

	for _, i := range calleeFirstOrder(p) {
		m := p.Methods[i]
		g.allocStmt(m.Body)
		// Equation (57) / (84): the body's R is ∅, or rᵢ when
		// context-insensitive.
		if mode == ContextInsensitive {
			g.l1(s.StmtR[m.Body], nil, s.MethodR[i])
			// rᵢ itself is defined only by the subset constraints
			// from call sites; give it the empty base equation.
			g.l1(s.MethodR[i], nil)
		} else {
			g.l1(s.StmtR[m.Body], nil)
		}

		g.genStmt(m.Body)

		// Equations (58), (59), after the body so oᵢ/mᵢ see the
		// body's solved values within the same pass.
		g.l1(s.MethodO[i], nil, s.StmtO[m.Body])
		s.L2s = append(s.L2s, L2{LHS: s.MethodM[i], Pairs: []PairVar{s.StmtM[m.Body]}})
	}
	s.buildPartition()

	// Section 8 clocks: programs that use the clock get the static
	// phase analysis attached, and the solvers filter symcross through
	// its codes — two labels at known, different phases are serialized
	// by the barrier, so their pair never enters the level-2 system.
	// Clock-free programs pay nothing (nil slice disables the filter).
	if p.UsesClocks() {
		s.Phases = clocks.ComputePhases(p)
		s.PhaseCode = s.Phases.Codes()
	}
	return s
}

// calleeFirstOrder returns the method indices in reverse call-graph
// order (callees before callers where the call graph permits; cycles
// are broken at the DFS back edge). Unreachable methods follow in
// index order.
func calleeFirstOrder(p *syntax.Program) []int {
	visited := make([]bool, len(p.Methods))
	var order []int
	var visit func(int)
	visit = func(mi int) {
		if visited[mi] {
			return
		}
		visited[mi] = true
		p.Methods[mi].Body.EachDeep(func(i syntax.Instr) {
			if c, ok := i.(*syntax.Call); ok {
				visit(c.Method)
			}
		})
		order = append(order, mi)
	}
	visit(p.MainIndex)
	for mi := range p.Methods {
		visit(mi)
	}
	return order
}

type generator struct {
	s  *System
	in *labels.Info
	n  int
}

func (g *generator) newSetVar(name string) SetVar {
	v := SetVar(len(g.s.SetVarNames))
	g.s.SetVarNames = append(g.s.SetVarNames, name)
	return v
}

func (g *generator) newPairVar(name string) PairVar {
	v := PairVar(len(g.s.PairVarNames))
	g.s.PairVarNames = append(g.s.PairVarNames, name)
	return v
}

// allocStmt allocates r/o/m variables for every statement node
// (suffix) reachable from st, including nested bodies.
func (g *generator) allocStmt(st *syntax.Stmt) {
	for cur := st; cur != nil; cur = cur.Next {
		name := g.s.P.LabelName(cur.Instr.Label())
		g.s.StmtR[cur] = g.newSetVar("r_" + name)
		g.s.StmtO[cur] = g.newSetVar("o_" + name)
		g.s.StmtM[cur] = g.newPairVar("m_" + name)
		if b := syntax.Body(cur.Instr); b != nil {
			g.allocStmt(b)
		}
	}
}

// l1 appends LHS = const ∪ vars….
func (g *generator) l1(lhs SetVar, c *intset.Set, vars ...SetVar) {
	g.s.L1s = append(g.s.L1s, L1{LHS: lhs, Const: c, Vars: vars})
}

// lcross builds the Lcross(l, v) cross term.
func (g *generator) lcross(l syntax.Label, v SetVar) CrossTerm {
	return CrossTerm{
		Kind:  KLcross,
		Name:  g.s.P.LabelName(l),
		Const: intset.Of(g.n, int(l)),
		Var:   v,
	}
}

// scross builds the Scross(s, v) cross term for a statement.
func (g *generator) scross(body *syntax.Stmt, v SetVar) CrossTerm {
	return CrossTerm{
		Kind:  KScross,
		Name:  g.s.P.LabelName(body.Instr.Label()),
		Const: g.in.Slabels(body),
		Var:   v,
	}
}

// symcrossMethod builds symcross(Slabels(p(f)), v) for a callee.
func (g *generator) symcrossMethod(mi int, v SetVar) CrossTerm {
	return CrossTerm{
		Kind:  KSymcross,
		Name:  "Slabels(" + g.s.P.Methods[mi].Name + ")",
		Const: g.in.MethodLabels(mi),
		Var:   v,
	}
}

// genStmt emits the constraints for the statement node cur and
// everything nested in or following it: r constraints on the way
// down, o and m constraints on the way back up. Variables must
// already be allocated.
func (g *generator) genStmt(cur *syntax.Stmt) {
	if cur == nil {
		return
	}
	s := g.s
	l := cur.Instr.Label()
	k := cur.Next
	rS, oS, mS := s.StmtR[cur], s.StmtO[cur], s.StmtM[cur]

	switch i := cur.Instr.(type) {
	case *syntax.Skip, *syntax.Assign, *syntax.Next:
		// Equations (60)–(67); next is clock-erased (see
		// internal/types), so it constrains like a skip.
		if k != nil {
			g.l1(s.StmtR[k], nil, rS)
			g.genStmt(k)
			g.l1(oS, nil, s.StmtO[k])
			s.L2s = append(s.L2s, L2{LHS: mS,
				Crosses: []CrossTerm{g.lcross(l, rS)},
				Pairs:   []PairVar{s.StmtM[k]}})
		} else {
			g.l1(oS, nil, rS)
			s.L2s = append(s.L2s, L2{LHS: mS,
				Crosses: []CrossTerm{g.lcross(l, rS)}})
		}

	case *syntax.While:
		// Equations (68)–(71).
		b := i.Body
		g.l1(s.StmtR[b], nil, rS)
		g.genStmt(b)
		crosses := []CrossTerm{g.lcross(l, s.StmtO[b]), g.scross(b, s.StmtO[b])}
		if k != nil {
			g.l1(s.StmtR[k], nil, s.StmtO[b])
			g.genStmt(k)
			g.l1(oS, nil, s.StmtO[k])
			s.L2s = append(s.L2s, L2{LHS: mS, Crosses: crosses,
				Pairs: []PairVar{s.StmtM[b], s.StmtM[k]}})
		} else {
			g.l1(oS, nil, s.StmtO[b])
			s.L2s = append(s.L2s, L2{LHS: mS, Crosses: crosses,
				Pairs: []PairVar{s.StmtM[b]}})
		}

	case *syntax.Async:
		// Equations (72)–(75).
		b := i.Body
		if k != nil {
			g.l1(s.StmtR[b], g.in.Slabels(k), rS)
			g.l1(s.StmtR[k], g.in.Slabels(b), rS)
			g.genStmt(b)
			g.genStmt(k)
			g.l1(oS, nil, s.StmtO[k])
			s.L2s = append(s.L2s, L2{LHS: mS,
				Crosses: []CrossTerm{g.lcross(l, rS)},
				Pairs:   []PairVar{s.StmtM[b], s.StmtM[k]}})
		} else {
			g.l1(s.StmtR[b], nil, rS)
			g.genStmt(b)
			g.l1(oS, g.in.Slabels(b), rS)
			s.L2s = append(s.L2s, L2{LHS: mS,
				Crosses: []CrossTerm{g.lcross(l, rS)},
				Pairs:   []PairVar{s.StmtM[b]}})
		}

	case *syntax.Finish:
		// Equations (76)–(79).
		b := i.Body
		g.l1(s.StmtR[b], nil, rS)
		g.genStmt(b)
		if k != nil {
			g.l1(s.StmtR[k], nil, rS)
			g.genStmt(k)
			g.l1(oS, nil, s.StmtO[k])
			s.L2s = append(s.L2s, L2{LHS: mS,
				Crosses: []CrossTerm{g.lcross(l, rS)},
				Pairs:   []PairVar{s.StmtM[b], s.StmtM[k]}})
		} else {
			g.l1(oS, nil, rS)
			s.L2s = append(s.L2s, L2{LHS: mS,
				Crosses: []CrossTerm{g.lcross(l, rS)},
				Pairs:   []PairVar{s.StmtM[b]}})
		}

	case *syntax.Call:
		// Equations (80)–(82), plus (83) when context-insensitive.
		fi := i.Method
		if s.Mode == ContextInsensitive {
			s.Subsets = append(s.Subsets, Subset{Sup: s.MethodR[fi], Sub: rS})
		}
		if k != nil {
			g.l1(s.StmtR[k], nil, rS, s.MethodO[fi])
			g.genStmt(k)
			g.l1(oS, nil, s.StmtO[k])
			s.L2s = append(s.L2s, L2{LHS: mS,
				Crosses: []CrossTerm{g.lcross(l, rS), g.symcrossMethod(fi, rS)},
				Pairs:   []PairVar{s.MethodM[fi], s.StmtM[k]}})
		} else {
			g.l1(oS, nil, rS, s.MethodO[fi])
			s.L2s = append(s.L2s, L2{LHS: mS,
				Crosses: []CrossTerm{g.lcross(l, rS), g.symcrossMethod(fi, rS)},
				Pairs:   []PairVar{s.MethodM[fi]}})
		}
	}
}
