package constraints

import (
	"testing"

	"fx10/internal/fixtures"
)

// TestOptionsNormalize pins the single-place resolution of the
// strategy flags' mutual exclusion: Parallel wins over Topo wins over
// Worklist wins over Monolithic, and Workers survives only with
// Parallel.
func TestOptionsNormalize(t *testing.T) {
	cases := []struct {
		in, want Options
	}{
		{Options{}, Options{}},
		{Options{Monolithic: true}, Options{Monolithic: true}},
		{Options{Worklist: true}, Options{Worklist: true}},
		{Options{Monolithic: true, Worklist: true}, Options{Worklist: true}},
		{Options{Topo: true}, Options{Topo: true}},
		{Options{Topo: true, Worklist: true}, Options{Topo: true}},
		{Options{Topo: true, Monolithic: true}, Options{Topo: true}},
		{Options{Topo: true, Worklist: true, Monolithic: true}, Options{Topo: true}},
		{Options{Parallel: true}, Options{Parallel: true}},
		{Options{Parallel: true, Workers: 4}, Options{Parallel: true, Workers: 4}},
		{Options{Parallel: true, Topo: true, Worklist: true, Monolithic: true}, Options{Parallel: true}},
		{Options{Topo: true, Workers: 4}, Options{Topo: true}},
		{Options{Workers: 4}, Options{}},
	}
	for _, c := range cases {
		if got := c.in.Normalize(); got != c.want {
			t.Errorf("Normalize(%+v) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

// TestSolveRejectsHybridOptions checks that Solve enforces the
// exclusion rather than just documenting it: the invalid combination
// behaves exactly like the worklist solver (worklist metrics, no
// pass counters, identical valuation) and never runs a hybrid.
func TestSolveRejectsHybridOptions(t *testing.T) {
	for _, mode := range []Mode{ContextSensitive, ContextInsensitive} {
		_, sys := gen(t, fixtures.Example22Source, mode)
		both := sys.Solve(Options{Monolithic: true, Worklist: true})
		worklist := sys.Solve(Options{Worklist: true})

		if both.IterL1 != 0 || both.IterL2 != 0 {
			t.Errorf("%v: hybrid options ran pass-based phases (IterL1=%d IterL2=%d)",
				mode, both.IterL1, both.IterL2)
		}
		if both.Evaluations == 0 {
			t.Errorf("%v: hybrid options did not run the worklist solver", mode)
		}
		if both.Evaluations != worklist.Evaluations {
			t.Errorf("%v: hybrid evaluations %d != worklist evaluations %d",
				mode, both.Evaluations, worklist.Evaluations)
		}
		if !both.ValuationEqual(worklist) {
			t.Errorf("%v: hybrid options valuation differs from worklist", mode)
		}
	}
}

// TestValuationEqualDetectsDifference guards the comparator itself:
// solutions of different programs must not compare equal.
func TestValuationEqualDetectsDifference(t *testing.T) {
	_, sys1 := gen(t, fixtures.Example21Source, ContextSensitive)
	_, sys2 := gen(t, fixtures.Example22Source, ContextSensitive)
	a := sys1.Solve(Options{})
	b := sys2.Solve(Options{})
	if a.ValuationEqual(b) {
		t.Fatal("valuations of different programs compare equal")
	}
	if !a.ValuationEqual(sys1.Solve(Options{Worklist: true})) {
		t.Fatal("same system solved twice compares unequal")
	}
}
