package constraints

// Worklist solving: instead of full Gauss–Seidel passes (the paper's
// "iterative data flow" style, Section 5.2), re-evaluate only the
// constraints whose inputs changed. The least solution is identical;
// the work is proportional to the number of useful re-evaluations,
// which the Solution records in Evaluations. Kept alongside the
// pass-based solver as an ablation (see BenchmarkSolverWorklist).

// solveL1Worklist computes the level-1 least solution with a
// worklist.
func (sol *Solution) solveL1Worklist() {
	s := sol.sys
	// constraint ids: 0..len(L1s)-1 are equalities, then subsets.
	total := len(s.L1s) + len(s.Subsets)
	// dependents[v] lists the constraints that read set variable v.
	dependents := make([][]int32, len(s.SetVarNames))
	for ci, c := range s.L1s {
		for _, v := range c.Vars {
			dependents[v] = append(dependents[v], int32(ci))
		}
	}
	for si, c := range s.Subsets {
		dependents[c.Sub] = append(dependents[c.Sub], int32(len(s.L1s)+si))
	}

	queue := make([]int32, 0, total)
	inQueue := make([]bool, total)
	for i := 0; i < total; i++ {
		queue = append(queue, int32(i))
		inQueue[i] = true
	}
	push := func(ci int32) {
		if !inQueue[ci] {
			inQueue[ci] = true
			queue = append(queue, ci)
		}
	}

	for len(queue) > 0 {
		ci := queue[0]
		queue = queue[1:]
		inQueue[ci] = false
		sol.Evaluations++

		var lhs SetVar
		changed := false
		if int(ci) < len(s.L1s) {
			c := s.L1s[ci]
			lhs = c.LHS
			dst := sol.setVals[lhs]
			if c.Const != nil && dst.UnionWith(c.Const) {
				changed = true
			}
			for _, v := range c.Vars {
				if dst.UnionWith(sol.setVals[v]) {
					changed = true
				}
			}
		} else {
			c := s.Subsets[int(ci)-len(s.L1s)]
			lhs = c.Sup
			changed = sol.setVals[lhs].UnionWith(sol.setVals[c.Sub])
		}
		if changed {
			for _, d := range dependents[lhs] {
				push(d)
			}
		}
	}
}

// solveL2Worklist computes the level-2 least solution with a
// worklist; cross terms are folded in once (level-1 is already
// solved), then only pair-variable unions propagate.
func (sol *Solution) solveL2Worklist() {
	s := sol.sys
	dependents := make([][]int32, len(s.PairVarNames))
	for ci, c := range s.L2s {
		for _, v := range c.Pairs {
			dependents[v] = append(dependents[v], int32(ci))
		}
	}
	queue := make([]int32, 0, len(s.L2s))
	inQueue := make([]bool, len(s.L2s))
	push := func(ci int32) {
		if !inQueue[ci] {
			inQueue[ci] = true
			queue = append(queue, ci)
		}
	}

	// Fold the constant cross terms and seed the queue with every
	// constraint whose seed changed something (plus all constraints
	// once, so pure-union chains fire).
	for ci, c := range s.L2s {
		lhs := sol.pairVals[c.LHS]
		for _, ct := range c.Crosses {
			lhs.crossSym(ct.Const, sol.setVals[ct.Var])
		}
		push(int32(ci))
	}

	for len(queue) > 0 {
		ci := queue[0]
		queue = queue[1:]
		inQueue[ci] = false
		sol.Evaluations++

		c := s.L2s[ci]
		lhs := sol.pairVals[c.LHS]
		changed := false
		for _, v := range c.Pairs {
			if lhs.unionWith(sol.pairVals[v]) {
				changed = true
			}
		}
		if changed {
			for _, d := range dependents[c.LHS] {
				push(d)
			}
		}
	}
}
