package constraints

// Worklist solving: instead of full Gauss–Seidel passes (the paper's
// "iterative data flow" style, Section 5.2), re-evaluate only the
// constraints whose inputs changed. The least solution is identical;
// the work is proportional to the number of useful re-evaluations,
// which the Solution records in Evaluations. Kept alongside the
// pass-based solver as an ablation (see BenchmarkSolverWorklist).

// workqueue is a FIFO of constraint ids. Pops advance a head index
// instead of reslicing (the old queue = queue[1:] retained the whole
// backing array and grew it forever); once the dead prefix reaches
// half the buffer it is compacted in place, so each element is moved
// at most once per residence — amortized O(1) with bounded memory.
type workqueue struct {
	buf  []int32
	head int
}

func (q *workqueue) reset(capHint int) {
	if cap(q.buf) < capHint {
		q.buf = make([]int32, 0, capHint)
	}
	q.buf = q.buf[:0]
	q.head = 0
}

func (q *workqueue) empty() bool { return q.head == len(q.buf) }

func (q *workqueue) push(ci int32) { q.buf = append(q.buf, ci) }

func (q *workqueue) pop() int32 {
	ci := q.buf[q.head]
	q.head++
	if q.head >= 64 && q.head*2 >= len(q.buf) {
		n := copy(q.buf, q.buf[q.head:])
		q.buf = q.buf[:n]
		q.head = 0
	}
	return ci
}

// solverScratch holds the worklist buffers. The level-2 solve reuses
// the level-1 solve's allocations where the shapes allow: the queue
// buffer and in-queue flags are resized in place, and the dependents
// index reuses both the outer array and the per-variable inner slices
// (truncated, capacity kept).
type solverScratch struct {
	wq      workqueue
	inQueue []bool
	deps    [][]int32
}

// flags returns n cleared booleans, reusing the previous buffer.
func (sc *solverScratch) flags(n int) []bool {
	if cap(sc.inQueue) < n {
		sc.inQueue = make([]bool, n)
		return sc.inQueue
	}
	f := sc.inQueue[:n]
	for i := range f {
		f[i] = false
	}
	return f
}

// dependents returns n empty dependency lists, reusing previous inner
// slices' capacity.
func (sc *solverScratch) dependents(n int) [][]int32 {
	if cap(sc.deps) < n {
		old := sc.deps[:cap(sc.deps)]
		sc.deps = make([][]int32, n)
		copy(sc.deps, old)
	}
	sc.deps = sc.deps[:n]
	for i := range sc.deps {
		sc.deps[i] = sc.deps[i][:0]
	}
	return sc.deps
}

// solveL1Worklist computes the level-1 least solution with a
// worklist.
func (sol *Solution) solveL1Worklist() {
	s := sol.sys
	// constraint ids: 0..len(L1s)-1 are equalities, then subsets.
	total := len(s.L1s) + len(s.Subsets)
	// dependents[v] lists the constraints that read set variable v.
	dependents := sol.scratch.dependents(len(s.SetVarNames))
	for ci, c := range s.L1s {
		for _, v := range c.Vars {
			dependents[v] = append(dependents[v], int32(ci))
		}
	}
	for si, c := range s.Subsets {
		dependents[c.Sub] = append(dependents[c.Sub], int32(len(s.L1s)+si))
	}

	queue := &sol.scratch.wq
	queue.reset(total)
	inQueue := sol.scratch.flags(total)
	for i := 0; i < total; i++ {
		queue.push(int32(i))
		inQueue[i] = true
	}

	for !queue.empty() {
		ci := queue.pop()
		inQueue[ci] = false
		sol.Evaluations++
		sol.checkCancel()

		var lhs SetVar
		changed := false
		if int(ci) < len(s.L1s) {
			c := s.L1s[ci]
			lhs = c.LHS
			dst := sol.setVals[lhs]
			if c.Const != nil && dst.UnionWith(c.Const) {
				changed = true
			}
			for _, v := range c.Vars {
				if dst.UnionWith(sol.setVals[v]) {
					changed = true
				}
			}
		} else {
			c := s.Subsets[int(ci)-len(s.L1s)]
			lhs = c.Sup
			changed = sol.setVals[lhs].UnionWith(sol.setVals[c.Sub])
		}
		if changed {
			for _, d := range dependents[lhs] {
				if !inQueue[d] {
					inQueue[d] = true
					queue.push(d)
				}
			}
		}
	}
}

// solveL2Worklist computes the level-2 least solution with a
// worklist; cross terms are folded in once (level-1 is already
// solved), then only pair-variable unions propagate.
func (sol *Solution) solveL2Worklist() {
	s := sol.sys
	dependents := sol.scratch.dependents(len(s.PairVarNames))
	for ci, c := range s.L2s {
		for _, v := range c.Pairs {
			dependents[v] = append(dependents[v], int32(ci))
		}
	}
	queue := &sol.scratch.wq
	queue.reset(len(s.L2s))
	inQueue := sol.scratch.flags(len(s.L2s))

	// Fold the constant cross terms and seed the queue with every
	// constraint, so pure-union chains fire.
	for ci, c := range s.L2s {
		sol.checkCancel()
		lhs := sol.pairVals[c.LHS]
		for _, ct := range c.Crosses {
			lhs.crossSym(ct.Const, sol.setVals[ct.Var], s.PhaseCode)
		}
		queue.push(int32(ci))
		inQueue[ci] = true
	}

	for !queue.empty() {
		ci := queue.pop()
		inQueue[ci] = false
		sol.Evaluations++
		sol.checkCancel()

		c := s.L2s[ci]
		lhs := sol.pairVals[c.LHS]
		changed := false
		for _, v := range c.Pairs {
			if lhs.unionWith(sol.pairVals[v]) {
				changed = true
			}
		}
		if changed {
			for _, d := range dependents[c.LHS] {
				if !inQueue[d] {
					inQueue[d] = true
					queue.push(d)
				}
			}
		}
	}
}
