package constraints

import (
	"context"
	"runtime"
	"time"

	"fx10/internal/intset"
	"fx10/internal/syntax"
	"fx10/internal/types"
)

// Options configures constraint solving.
//
// Monolithic, Worklist and Topo are mutually exclusive; Solve
// normalizes the combination (Topo wins over Worklist wins over
// Monolithic) via Normalize, so the flags never select an undefined
// hybrid. Engine callers should prefer the named strategies of
// internal/engine, whose registry makes the invalid combinations
// unrepresentable.
type Options struct {
	// Monolithic disables the paper's three-phase optimization
	// (Section 5.3) and instead iterates level-1 and level-2
	// constraints together until a joint fixpoint, re-evaluating
	// cross terms every pass. Kept as an ablation baseline; results
	// are identical, time is worse.
	Monolithic bool
	// Worklist replaces the pass-based iteration with a worklist
	// that re-evaluates only constraints whose inputs changed
	// (still phased). Results are identical; Evaluations is
	// reported instead of pass counts. Mutually exclusive with
	// Monolithic (Worklist wins).
	Worklist bool
	// Topo eliminates iteration instead of just pruning it: each
	// level's constraint graph is condensed into strongly connected
	// components (Tarjan), every variable in a cycle provably shares
	// the SCC's least value and is aliased to one representative, and
	// components are solved exactly once in topological order (see
	// topo.go). Results are identical; Evaluations counts the
	// near-minimal constraint evaluations. Wins over both other
	// flags.
	Topo bool
	// Parallel runs the topo solve concurrently: components of the
	// condensed constraint DAG are scheduled onto a bounded worker
	// pool as soon as all their predecessors are solved (see
	// ptopo.go). Results are bit-identical to Topo, including the
	// Evaluations count. Wins over every other flag.
	Parallel bool
	// Workers bounds the parallel solver's pool; ≤ 0 means
	// runtime.GOMAXPROCS(0). Ignored (normalized to 0) unless
	// Parallel is set. Worker count never affects results, only wall
	// clock.
	Workers int
}

// Normalize resolves the strategy flags' mutual exclusion: Parallel
// wins over Topo, which wins over Worklist, which wins over
// Monolithic; Workers is zeroed unless Parallel survives. Solve calls
// this, so it is the single place the invariant is enforced.
func (o Options) Normalize() Options {
	if o.Parallel {
		o.Topo, o.Worklist, o.Monolithic = false, false, false
	} else {
		o.Workers = 0
	}
	if o.Topo {
		o.Worklist, o.Monolithic = false, false
	}
	if o.Worklist {
		o.Monolithic = false
	}
	return o
}

// Solution is a least solution of a System, with solver metrics.
type Solution struct {
	sys *System

	setVals  []*intset.Set
	pairVals []pairBag

	// IterSlabels, IterL1 and IterL2 are the fixpoint pass counts of
	// the three phases (each includes the final, no-change pass). In
	// monolithic mode IterL1 == IterL2 == joint pass count; in
	// worklist mode they stay zero and Evaluations counts constraint
	// re-evaluations instead.
	IterSlabels int
	IterL1      int
	IterL2      int
	// Evaluations counts individual constraint evaluations in
	// worklist and topo modes. The topo solver evaluates each
	// constraint at most once (copy-elided constraints not at all),
	// so its count is a lower bound the worklist count can be
	// compared against.
	Evaluations int64

	// scratch holds buffers the iterative solvers share across the
	// two levels; it is released before Solve returns.
	scratch solverScratch

	// cancel is the cooperative-cancellation state (see cancel.go);
	// zero when the solve is not cancellable.
	cancel cancelState

	// Duration is the wall time of Solve (constraint solving only;
	// see internal/experiments for end-to-end pipeline timing).
	Duration time.Duration

	// AllocBytes is the heap allocated during Solve (runtime
	// TotalAlloc delta): a machine-independent proxy for the space
	// column of Figure 8.
	AllocBytes uint64

	// FootprintBytes estimates the memory retained by the solved
	// valuation itself.
	FootprintBytes int

	// Shard, set only by the sharded solver (internal/shard via
	// NewSolution), describes how the solve was partitioned and
	// merged; nil for the built-in strategies.
	Shard *ShardStats
}

// Solve computes the least solution of the system (Theorem 5: the
// constraints define a monotone function on a finite lattice, so a
// least fixpoint exists; we reach it by accumulating iteration from
// the bottom valuation).
func (s *System) Solve(opts Options) *Solution {
	return s.solve(context.Background(), opts)
}

// solve is the shared core of Solve and SolveCtx. It unwinds with a
// canceledPanic when ctx is cancelled mid-solve (see cancel.go).
func (s *System) solve(ctx context.Context, opts Options) *Solution {
	opts = opts.Normalize()
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()

	n := s.P.NumLabels()
	sol := &Solution{
		sys:         s,
		setVals:     make([]*intset.Set, len(s.SetVarNames)),
		pairVals:    make([]pairBag, len(s.PairVarNames)),
		IterSlabels: s.Info.Iterations,
	}
	sol.cancel.arm(ctx)
	// The topo solvers allocate their own valuation (one slab for all
	// set variables, aliased pair bags); the iterative solvers start
	// from an explicit bottom valuation.
	if !opts.Topo && !opts.Parallel {
		for i := range sol.setVals {
			sol.setVals[i] = intset.New(n)
		}
		for i := range sol.pairVals {
			sol.pairVals[i] = pairBag{}
		}
	}

	switch {
	case opts.Parallel:
		sol.solveParallelL1(opts.Workers)
		sol.solveParallelL2(opts.Workers)
	case opts.Topo:
		sol.solveTopoL1()
		sol.solveTopoL2()
	case opts.Worklist:
		sol.solveL1Worklist()
		sol.solveL2Worklist()
	case opts.Monolithic:
		sol.solveMonolithic()
	default:
		sol.solveL1()
		sol.solveL2()
	}
	sol.scratch = solverScratch{}

	sol.Duration = time.Since(start)
	runtime.ReadMemStats(&ms1)
	sol.AllocBytes = ms1.TotalAlloc - ms0.TotalAlloc
	// Dense sets: words × 8 bytes each (plus header); sparse bags:
	// estimated per entry.
	sol.FootprintBytes += len(sol.setVals) * ((n+63)/64*8 + 24)
	for _, b := range sol.pairVals {
		sol.FootprintBytes += b.footprintBytes()
	}
	return sol
}

// l1Pass applies every level-1 constraint once (Gauss–Seidel with
// union accumulation, which preserves the least fixpoint because all
// right-hand sides are monotone unions) and reports change.
func (sol *Solution) l1Pass() bool {
	s := sol.sys
	changed := false
	for _, c := range s.L1s {
		sol.checkCancel()
		lhs := sol.setVals[c.LHS]
		if c.Const != nil && lhs.UnionWith(c.Const) {
			changed = true
		}
		for _, v := range c.Vars {
			if lhs.UnionWith(sol.setVals[v]) {
				changed = true
			}
		}
	}
	for _, c := range s.Subsets {
		sol.checkCancel()
		if sol.setVals[c.Sup].UnionWith(sol.setVals[c.Sub]) {
			changed = true
		}
	}
	return changed
}

func (sol *Solution) solveL1() {
	for {
		sol.IterL1++
		if !sol.l1Pass() {
			return
		}
	}
}

// l2Pass applies every level-2 constraint once against the current
// valuation. evalCrosses selects whether cross terms are re-evaluated
// (monolithic mode) or assumed already folded into the pair values.
func (sol *Solution) l2Pass(evalCrosses bool) bool {
	s := sol.sys
	changed := false
	for _, c := range s.L2s {
		sol.checkCancel()
		lhs := sol.pairVals[c.LHS]
		if evalCrosses {
			for _, ct := range c.Crosses {
				if lhs.crossSym(ct.Const, sol.setVals[ct.Var], s.PhaseCode) {
					changed = true
				}
			}
		}
		for _, v := range c.Pairs {
			if lhs.unionWith(sol.pairVals[v]) {
				changed = true
			}
		}
	}
	return changed
}

func (sol *Solution) solveL2() {
	// Phase 3 of Section 5.3: with level-1 solved, every cross term
	// is a constant pair set; fold them in once, then iterate pure
	// m-variable unions.
	for _, c := range sol.sys.L2s {
		sol.checkCancel()
		lhs := sol.pairVals[c.LHS]
		for _, ct := range c.Crosses {
			lhs.crossSym(ct.Const, sol.setVals[ct.Var], sol.sys.PhaseCode)
		}
	}
	for {
		sol.IterL2++
		if !sol.l2Pass(false) {
			return
		}
	}
}

func (sol *Solution) solveMonolithic() {
	for {
		sol.IterL1++
		sol.IterL2++
		c1 := sol.l1Pass()
		c2 := sol.l2Pass(true)
		if !c1 && !c2 {
			return
		}
	}
}

// SetValue returns the solved value of a set variable (shared; do not
// mutate).
func (sol *Solution) SetValue(v SetVar) *intset.Set { return sol.setVals[v] }

// PairValue returns the solved value of a pair variable as a dense
// pair set (fresh copy).
func (sol *Solution) PairValue(v PairVar) *intset.PairSet {
	return sol.pairVals[v].toPairSet(sol.sys.P.NumLabels())
}

// PairLen returns the number of ordered pairs in a pair variable
// without densifying it.
func (sol *Solution) PairLen(v PairVar) int { return len(sol.pairVals[v]) }

// StmtR returns the solved r_s for a statement node.
func (sol *Solution) StmtR(st *syntax.Stmt) *intset.Set { return sol.setVals[sol.sys.StmtR[st]] }

// StmtO returns the solved o_s for a statement node.
func (sol *Solution) StmtO(st *syntax.Stmt) *intset.Set { return sol.setVals[sol.sys.StmtO[st]] }

// StmtM returns the solved m_s for a statement node (fresh dense set).
func (sol *Solution) StmtM(st *syntax.Stmt) *intset.PairSet {
	return sol.PairValue(sol.sys.StmtM[st])
}

// MethodSummary returns the solved (mᵢ, oᵢ) for a method as a type
// summary.
func (sol *Solution) MethodSummary(mi int) types.Summary {
	return types.Summary{
		M: sol.PairValue(sol.sys.MethodM[mi]),
		O: sol.setVals[sol.sys.MethodO[mi]].Clone(),
	}
}

// Env converts the solved method summaries to a type environment, the
// "φ extends E" direction of Theorem 4.
func (sol *Solution) Env() types.Env {
	env := make(types.Env, len(sol.sys.P.Methods))
	for i := range env {
		env[i] = sol.MethodSummary(i)
	}
	return env
}

// MainM returns the solved m variable of the main method: by
// Theorem 3 a conservative approximation of MHP(p).
func (sol *Solution) MainM() *intset.PairSet {
	return sol.PairValue(sol.sys.MethodM[sol.sys.P.MainIndex])
}
