package constraints

import (
	"fx10/internal/intset"
)

// pairBag is a sparse set of ordered label pairs, used for the m
// variables of the constraint solver. The analysis generates one m
// variable per statement; at benchmark scale (thousands of labels) a
// dense n×n bitmap per variable would need gigabytes, while the
// number of distinct pairs actually flowing through the system is
// small. Final results are converted to dense intset.PairSet.
type pairBag map[uint64]struct{}

func pairKey(i, j int) uint64 {
	return uint64(uint32(i))<<32 | uint64(uint32(j))
}

// add inserts the ordered pair (i, j) and reports change.
func (b pairBag) add(i, j int) bool {
	k := pairKey(i, j)
	if _, ok := b[k]; ok {
		return false
	}
	b[k] = struct{}{}
	return true
}

// unionWith adds every pair of o and reports change.
func (b pairBag) unionWith(o pairBag) bool {
	changed := false
	for k := range o {
		if _, ok := b[k]; !ok {
			b[k] = struct{}{}
			changed = true
		}
	}
	return changed
}

// crossSym adds (A × B) ∪ (B × A) and reports change, skipping pairs
// the phase analysis proves ordered: when phase[i] and phase[j] are
// both known and different, the single clock serializes them and they
// can never run in parallel. phase is nil for clock-free programs
// (no filtering). This is the ONE place pairs enter the level-2
// system — level 2 is otherwise pure union — so filtering here makes
// every solving strategy (and the delta solver) compute exactly the
// phase-refined least solution, preserving cross-strategy
// bit-identity.
func (b pairBag) crossSym(a, bb *intset.Set, phase []int32) bool {
	if a.Empty() || bb.Empty() {
		return false // both products are empty (O(1) on cached counts)
	}
	changed := false
	a.Each(func(i int) {
		pi := int32(-1)
		if phase != nil {
			pi = phase[i]
		}
		bb.Each(func(j int) {
			if pi >= 0 {
				if pj := phase[j]; pj >= 0 && pj != pi {
					return // provably ordered by the clock
				}
			}
			if b.add(i, j) {
				changed = true
			}
			if b.add(j, i) {
				changed = true
			}
		})
	})
	return changed
}

// equal reports whether b and o hold exactly the same pairs.
func (b pairBag) equal(o pairBag) bool {
	if len(b) != len(o) {
		return false
	}
	for k := range b {
		if _, ok := o[k]; !ok {
			return false
		}
	}
	return true
}

// toPairSet converts to a dense pair set over universe n.
func (b pairBag) toPairSet(n int) *intset.PairSet {
	out := intset.NewPairs(n)
	for k := range b {
		out.Add(int(k>>32), int(uint32(k)))
	}
	return out
}

// footprintBytes estimates the memory retained by the bag (Go map
// overhead of roughly 16 bytes per 8-byte key entry).
func (b pairBag) footprintBytes() int { return len(b) * 24 }
