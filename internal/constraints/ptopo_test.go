package constraints

import (
	"context"
	"errors"
	"testing"
	"time"

	"fx10/internal/fixtures"
	"fx10/internal/labels"
	"fx10/internal/parser"
	"fx10/internal/progen"
	"fx10/internal/syntax"
)

// TestPtopoEqualsTopo checks the parallel solver is bit-identical to
// the sequential condensation solver — same valuations, same pair
// bags, and (because the two share their per-component evaluation
// bodies and elision decisions) the same Evaluations count — across
// the paper examples, a recursive program, seeded progen sweeps
// including clocked programs (phase pruning), both modes, and several
// pool widths.
func TestPtopoEqualsTopo(t *testing.T) {
	sources := []string{fixtures.Example21Source, fixtures.Example22Source, recursiveSource}
	var programs []*syntax.Program
	for _, src := range sources {
		programs = append(programs, parser.MustParse(src))
	}
	for seed := int64(700); seed < 715; seed++ {
		programs = append(programs, progen.Generate(seed, progen.Default()))
	}
	for seed := int64(800); seed < 815; seed++ {
		programs = append(programs, progen.Generate(seed, progen.ClockedFinite()))
	}
	for pi, p := range programs {
		for _, mode := range []Mode{ContextSensitive, ContextInsensitive} {
			sys := Generate(labels.Compute(p), mode)
			topo := sys.Solve(Options{Topo: true})
			for _, workers := range []int{0, 1, 2, 4, 8} {
				pt := sys.Solve(Options{Parallel: true, Workers: workers})
				if !topo.ValuationEqual(pt) {
					t.Fatalf("program %d (%v, %d workers): ptopo valuation differs from topo\n%s",
						pi, mode, workers, syntax.Print(p))
				}
				if pt.Evaluations != topo.Evaluations {
					t.Errorf("program %d (%v, %d workers): ptopo evaluations %d != topo %d",
						pi, mode, workers, pt.Evaluations, topo.Evaluations)
				}
				if pt.IterL1 != 0 || pt.IterL2 != 0 {
					t.Errorf("program %d (%v): ptopo ran pass-based phases (IterL1=%d IterL2=%d)",
						pi, mode, pt.IterL1, pt.IterL2)
				}
			}
		}
	}
}

// TestPtopoExpiredDeadline checks that every parallel worker honours
// cancellation: a deadline already in the past makes each worker's
// first stride poll abort, and the unwind is re-panicked across the
// pool back to SolveCtx as a plain error.
func TestPtopoExpiredDeadline(t *testing.T) {
	sys := cancelSystem(t, ContextSensitive)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	for _, workers := range []int{1, 4} {
		sol, err := sys.SolveCtx(ctx, Options{Parallel: true, Workers: workers})
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("%d workers: want context.DeadlineExceeded, got %v", workers, err)
		}
		if sol != nil {
			t.Fatalf("%d workers: got partial solution on cancellation", workers)
		}
	}
}

// TestParallelSmokeHugeTier is the CI parallel smoke (make
// parallel-smoke runs it under -race): a small huge-tier program,
// solved by topo and by ptopo at several widths, must agree bit for
// bit. Small enough to stay well inside the smoke-test time budget
// even with the race detector's overhead.
func TestParallelSmokeHugeTier(t *testing.T) {
	p := progen.GenerateHuge(1, progen.Huge(4000))
	if n := p.NumLabels(); n < 4000 {
		t.Fatalf("huge tier undershot target: %d labels", n)
	}
	sys := Generate(labels.Compute(p), ContextInsensitive)
	topo := sys.Solve(Options{Topo: true})
	for _, workers := range []int{2, 4} {
		pt := sys.Solve(Options{Parallel: true, Workers: workers})
		if !topo.ValuationEqual(pt) {
			t.Fatalf("%d workers: ptopo valuation differs from topo on huge tier", workers)
		}
		if pt.Evaluations != topo.Evaluations {
			t.Fatalf("%d workers: ptopo evaluations %d != topo %d", workers, pt.Evaluations, topo.Evaluations)
		}
	}
}

// buildCSR assembles a graphCSR from an explicit edge list.
func buildCSR(nv int, edges [][2]int32) graphCSR {
	g := graphCSR{off: make([]int32, nv+1)}
	for _, e := range edges {
		g.off[e[0]+1]++
	}
	for v := 1; v <= nv; v++ {
		g.off[v] += g.off[v-1]
	}
	g.edges = make([]int32, len(edges))
	pos := make([]int32, nv)
	copy(pos, g.off[:nv])
	for _, e := range edges {
		g.edges[pos[e[0]]] = e[1]
		pos[e[0]]++
	}
	return g
}

// checkSCC asserts the two invariants every condensation consumer
// relies on: the member CSR partitions the nodes (each node appears
// exactly once, in its own component's slice), and component ids are
// in reverse topological order (every cross-component edge v→w has
// comp[w] < comp[v]).
func checkSCC(t *testing.T, nv int, g graphCSR, comp []int32, ncomp int32) {
	t.Helper()
	members := memberCSR(comp, ncomp)
	seen := make([]bool, nv)
	for c := int32(0); c < ncomp; c++ {
		for _, v := range members.edges[members.off[c]:members.off[c+1]] {
			if comp[v] != c {
				t.Fatalf("member CSR: node %d listed under component %d but comp[%d]=%d", v, c, v, comp[v])
			}
			if seen[v] {
				t.Fatalf("member CSR: node %d listed twice", v)
			}
			seen[v] = true
		}
	}
	for v, s := range seen {
		if !s {
			t.Fatalf("member CSR: node %d missing", v)
		}
	}
	for v := 0; v < nv; v++ {
		for _, w := range g.edges[g.off[v]:g.off[v+1]] {
			if comp[w] != comp[v] && comp[w] >= comp[v] {
				t.Fatalf("edge %d→%d violates reverse topological ids: comp %d → %d", v, w, comp[v], comp[w])
			}
		}
	}
}

// TestTarjanSCCAdversarial drives the iterative Tarjan on shapes that
// stress it structurally: a single giant cycle (one big SCC), a long
// path (the recursion-depth proxy — a recursive Tarjan would blow its
// stack here), star fan-out and fan-in (wide shallow DAGs), and the
// empty graph.
func TestTarjanSCCAdversarial(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		comp, ncomp := tarjanSCC(0, buildCSR(0, nil))
		if ncomp != 0 || len(comp) != 0 {
			t.Fatalf("empty graph: got %d components over %d nodes", ncomp, len(comp))
		}
	})

	t.Run("giant-cycle", func(t *testing.T) {
		const n = 5000
		edges := make([][2]int32, n)
		for i := range edges {
			edges[i] = [2]int32{int32(i), int32((i + 1) % n)}
		}
		g := buildCSR(n, edges)
		comp, ncomp := tarjanSCC(n, g)
		if ncomp != 1 {
			t.Fatalf("giant cycle: got %d components, want 1", ncomp)
		}
		checkSCC(t, n, g, comp, ncomp)
	})

	t.Run("long-path", func(t *testing.T) {
		const n = 200000
		edges := make([][2]int32, n-1)
		for i := range edges {
			edges[i] = [2]int32{int32(i), int32(i + 1)}
		}
		g := buildCSR(n, edges)
		comp, ncomp := tarjanSCC(n, g)
		if int(ncomp) != n {
			t.Fatalf("long path: got %d components, want %d", ncomp, n)
		}
		checkSCC(t, n, g, comp, ncomp)
	})

	t.Run("star-fan-out", func(t *testing.T) {
		const n = 10000
		edges := make([][2]int32, n-1)
		for i := range edges {
			edges[i] = [2]int32{0, int32(i + 1)}
		}
		g := buildCSR(n, edges)
		comp, ncomp := tarjanSCC(n, g)
		if int(ncomp) != n {
			t.Fatalf("fan-out: got %d components, want %d", ncomp, n)
		}
		checkSCC(t, n, g, comp, ncomp)
	})

	t.Run("star-fan-in", func(t *testing.T) {
		const n = 10000
		edges := make([][2]int32, n-1)
		for i := range edges {
			edges[i] = [2]int32{int32(i + 1), 0}
		}
		g := buildCSR(n, edges)
		comp, ncomp := tarjanSCC(n, g)
		if int(ncomp) != n {
			t.Fatalf("fan-in: got %d components, want %d", ncomp, n)
		}
		checkSCC(t, n, g, comp, ncomp)
	})
}
