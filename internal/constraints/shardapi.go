package constraints

// Exported assembly hooks for external solvers. The sharded solver
// (internal/shard) partitions a System by method shard, solves the
// shards concurrently against its own valuation buffers, and then
// needs to hand the finished valuation back as a *Solution so the rest
// of the pipeline (Env extraction, reports, caches, delta seeding)
// cannot tell which solver produced it. Set values travel as plain
// *intset.Set slices; pair values travel as a PairBags, the exported
// wrapper around the internal sparse pairBag representation, so the
// one pair-entry point (crossSym, with its phase filtering) stays
// shared between every solver and cross-strategy bit-identity is
// preserved by construction.

import (
	"time"

	"fx10/internal/intset"
)

// PairBags is an indexed collection of sparse pair sets — the exported
// form of the solver's internal pair representation, for external
// solvers that assemble a Solution via NewSolution. Index i of a
// PairBags built with NewPairBags(NumPairVars()) corresponds to
// PairVar(i). The zero-value bags are empty (bottom).
type PairBags struct {
	bags []pairBag
}

// NewPairBags returns k empty bags.
func NewPairBags(k int) *PairBags {
	b := make([]pairBag, k)
	for i := range b {
		b[i] = pairBag{}
	}
	return &PairBags{bags: b}
}

// Len returns the number of bags.
func (b *PairBags) Len() int { return len(b.bags) }

// PairLen returns the number of ordered pairs in bag i.
func (b *PairBags) PairLen(i int) int { return len(b.bags[i]) }

// CrossSym folds symcross(c, v) into bag i exactly as the built-in
// solvers do — symmetric product, phase-ordered pairs pruned — and
// reports change. phase is System.PhaseCode (nil for clock-free
// programs).
func (b *PairBags) CrossSym(i int, c, v *intset.Set, phase []int32) bool {
	return b.bags[i].crossSym(c, v, phase)
}

// Union adds every pair of o's bag src into bag dst and reports
// change. o may be b itself; a self-union (same collection, dst ==
// src) is a no-op by construction.
func (b *PairBags) Union(dst int, o *PairBags, src int) bool {
	return b.bags[dst].unionWith(o.bags[src])
}

// ShardStats describes one sharded solve: how the system was split,
// how many merge rounds each level needed to reach the cross-shard
// fixpoint, and the summed per-shard solve time (which exceeds the
// wall clock when shards ran concurrently).
type ShardStats struct {
	// Shards is the number of non-empty method shards.
	Shards int
	// MergeRoundsL1 and MergeRoundsL2 count the solve→merge rounds of
	// the two constraint levels (each includes the final, no-change
	// round).
	MergeRoundsL1 int
	MergeRoundsL2 int
	// ShardSolveNs sums the per-shard local solve durations across all
	// rounds.
	ShardSolveNs int64
}

// SolveMetrics carries an external solver's counters into
// NewSolution.
type SolveMetrics struct {
	Evaluations int64
	IterL1      int
	IterL2      int
	Duration    time.Duration
	AllocBytes  uint64
	// Shard, when non-nil, records sharded-solve structure; it is
	// surfaced on the Solution for metrics.
	Shard *ShardStats
}

// NewSolution assembles a Solution for sys from an externally computed
// valuation: sets must have NumSetVars entries over the program's
// label universe and pairs must have NumPairVars bags. NewSolution
// takes ownership of both. The caller is responsible for the valuation
// being the least solution; Theorems 5–6 then make the result
// indistinguishable from any built-in strategy's.
func NewSolution(sys *System, sets []*intset.Set, pairs *PairBags, m SolveMetrics) *Solution {
	if len(sets) != sys.NumSetVars() {
		panic("constraints: NewSolution: set valuation size mismatch")
	}
	if pairs.Len() != sys.NumPairVars() {
		panic("constraints: NewSolution: pair valuation size mismatch")
	}
	sol := &Solution{
		sys:         sys,
		setVals:     sets,
		pairVals:    pairs.bags,
		IterSlabels: sys.Info.Iterations,
		IterL1:      m.IterL1,
		IterL2:      m.IterL2,
		Evaluations: m.Evaluations,
		Duration:    m.Duration,
		AllocBytes:  m.AllocBytes,
		Shard:       m.Shard,
	}
	n := sys.P.NumLabels()
	sol.FootprintBytes += len(sol.setVals) * ((n+63)/64*8 + 24)
	for _, b := range sol.pairVals {
		sol.FootprintBytes += b.footprintBytes()
	}
	return sol
}
