// Package constraints implements the constraint-based type inference
// of Section 5 of the paper: constraint generation (equations
// (57)–(82)), the context-insensitive variant of Section 7 (equations
// (83)–(84)), and the three-phase iterative solver of Section 5.3
// (Slabels, then level-1, then level-2), plus a single-phase
// "monolithic" solver kept for ablation.
//
// For every statement s (every suffix position, i.e. every
// instruction) the generator introduces the set variables r_s and o_s
// and the pair variable m_s; for every method fᵢ it introduces oᵢ and
// mᵢ (and, context-insensitively, rᵢ). Level-1 constraints relate r/o
// variables; level-2 constraints define m variables from cross terms
// and other m variables.
package constraints

import (
	"fmt"
	"sort"
	"strings"

	"fx10/internal/clocks"
	"fx10/internal/intset"
	"fx10/internal/labels"
	"fx10/internal/syntax"
)

// Mode selects between the paper's context-sensitive analysis
// (Section 5) and the context-insensitive baseline (Section 7).
type Mode int

const (
	// ContextSensitive is the paper's analysis: method bodies are
	// analyzed once under R = ∅ and call sites splice in summaries.
	ContextSensitive Mode = iota
	// ContextInsensitive merges the R sets of all call sites of a
	// method into a per-method rᵢ variable (equations (83)–(84)).
	ContextInsensitive
)

func (m Mode) String() string {
	if m == ContextSensitive {
		return "context-sensitive"
	}
	return "context-insensitive"
}

// SetVar indexes a level-1 (label set) variable.
type SetVar int

// PairVar indexes a level-2 (label pair set) variable.
type PairVar int

// CrossKind records which helper function a cross term prints as.
type CrossKind int

const (
	// KLcross is Lcross(l, v): the constant is the singleton {l}.
	KLcross CrossKind = iota
	// KScross is Scross_p(s, v): the constant is Slabels_p(s).
	KScross
	// KSymcross is symcross(c, v) for a general constant c (used by
	// the call rule with c = Slabels_p(p(fᵢ))).
	KSymcross
)

// CrossTerm is symcross(Const, value of Var): every cross term in the
// generated constraints has one constant and one variable operand.
type CrossTerm struct {
	Kind  CrossKind
	Name  string // display text for the constant operand
	Const *intset.Set
	Var   SetVar
}

// L1 is a level-1 constraint LHS = Const ∪ Vars[0] ∪ Vars[1] ∪ ….
// Const may be nil (empty). Every set variable is the LHS of exactly
// one L1 constraint.
type L1 struct {
	LHS   SetVar
	Const *intset.Set
	Vars  []SetVar
}

// Subset is the context-insensitive inclusion Sub ⊆ Sup (equation
// (83): r_s ⊆ rᵢ).
type Subset struct {
	Sup SetVar
	Sub SetVar
}

// L2 is a level-2 constraint
// LHS = Crosses[0] ∪ … ∪ Pairs[0] ∪ ….
// Every pair variable is the LHS of exactly one L2 constraint.
type L2 struct {
	LHS     PairVar
	Crosses []CrossTerm
	Pairs   []PairVar
}

// System is a generated constraint system.
type System struct {
	P    *syntax.Program
	Info *labels.Info
	Mode Mode

	SetVarNames  []string
	PairVarNames []string

	L1s     []L1
	Subsets []Subset
	L2s     []L2

	// Per-statement variables, keyed by statement (suffix) node.
	StmtR map[*syntax.Stmt]SetVar
	StmtO map[*syntax.Stmt]SetVar
	StmtM map[*syntax.Stmt]PairVar

	// Per-method variables, indexed like Program.Methods.
	MethodO []SetVar
	MethodM []PairVar
	// MethodR holds the rᵢ variables; only populated in
	// ContextInsensitive mode.
	MethodR []SetVar

	// The method partition: every variable is owned by exactly one
	// method (a statement variable by its enclosing method, a
	// summary variable by the method it summarizes), and Calls is
	// the cross-method dependency layer. Together they let the
	// delta solver (SolveDelta) restrict re-solving to the dirty
	// methods' closure. SetVarsOf/PairVarsOf give each method's
	// variables in ascending index order, which is deterministic in
	// the method's body structure — the correspondence delta seeding
	// relies on.
	SetVarOwner  []MethodID // owner of each SetVar
	PairVarOwner []MethodID // owner of each PairVar
	Calls        *CallGraph

	// Phases is the static clock-phase analysis of the program, set by
	// Generate iff the program uses clocks (Section 8); nil otherwise.
	// PhaseCode is its flattened form (clocks.PhaseInfo.Codes): one
	// int32 per label, the concrete phase for Known labels and -1 for
	// ⊥/⊤. The solvers consult it in crossSym — two labels with
	// non-negative different codes are barrier-ordered, so their pair
	// never enters the level-2 system.
	Phases    *clocks.PhaseInfo
	PhaseCode []int32

	methodSetVars  [][]SetVar
	methodPairVars [][]PairVar
}

// Counts returns the constraint counts reported in Figure 6: the
// number of Slabels equations (one per statement node, equations
// (15)–(21)), of level-1 constraints (including context-insensitive
// subset constraints), and of level-2 constraints.
func (s *System) Counts() (slabels, l1, l2 int) {
	return len(s.StmtM), len(s.L1s) + len(s.Subsets), len(s.L2s)
}

// NumSetVars returns the number of level-1 variables.
func (s *System) NumSetVars() int { return len(s.SetVarNames) }

// NumPairVars returns the number of level-2 variables.
func (s *System) NumPairVars() int { return len(s.PairVarNames) }

// SetVarsOf returns method mi's set variables in ascending variable
// order (shared slice; do not mutate).
func (s *System) SetVarsOf(mi MethodID) []SetVar { return s.methodSetVars[mi] }

// PairVarsOf returns method mi's pair variables in ascending variable
// order (shared slice; do not mutate).
func (s *System) PairVarsOf(mi MethodID) []PairVar { return s.methodPairVars[mi] }

// buildPartition derives the ownership tables and the call-graph
// layer after generation: a statement variable belongs to the method
// whose body contains the statement, a summary variable (oᵢ/mᵢ/rᵢ)
// to the method it summarizes.
func (s *System) buildPartition() {
	p := s.P
	s.SetVarOwner = make([]MethodID, len(s.SetVarNames))
	s.PairVarOwner = make([]MethodID, len(s.PairVarNames))
	for i := range p.Methods {
		s.SetVarOwner[s.MethodO[i]] = i
		s.PairVarOwner[s.MethodM[i]] = i
		if s.MethodR != nil {
			s.SetVarOwner[s.MethodR[i]] = i
		}
	}
	for st, v := range s.StmtR {
		mi := p.Labels[st.Instr.Label()].Method
		s.SetVarOwner[v] = mi
		s.SetVarOwner[s.StmtO[st]] = mi
		s.PairVarOwner[s.StmtM[st]] = mi
	}
	s.methodSetVars = make([][]SetVar, len(p.Methods))
	for v, mi := range s.SetVarOwner {
		s.methodSetVars[mi] = append(s.methodSetVars[mi], SetVar(v))
	}
	s.methodPairVars = make([][]PairVar, len(p.Methods))
	for v, mi := range s.PairVarOwner {
		s.methodPairVars[mi] = append(s.methodPairVars[mi], PairVar(v))
	}
	s.Calls = NewCallGraph(p)
}

// labelSetString renders a constant label set with display names.
func (s *System) labelSetString(set *intset.Set) string {
	if set == nil || set.Empty() {
		return "{}"
	}
	var elems []string
	set.Each(func(e int) { elems = append(elems, s.P.LabelName(syntax.Label(e))) })
	sort.Strings(elems)
	return "{" + strings.Join(elems, ", ") + "}"
}

// String renders the whole system in the notation of Figure 5.
func (s *System) String() string {
	var b strings.Builder
	for _, c := range s.L1s {
		fmt.Fprintf(&b, "%s = %s\n", s.SetVarNames[c.LHS], s.l1RHSString(c))
	}
	for _, c := range s.Subsets {
		fmt.Fprintf(&b, "%s ⊆ %s\n", s.SetVarNames[c.Sub], s.SetVarNames[c.Sup])
	}
	for _, c := range s.L2s {
		fmt.Fprintf(&b, "%s = %s\n", s.PairVarNames[c.LHS], s.l2RHSString(c))
	}
	return b.String()
}

func (s *System) l1RHSString(c L1) string {
	var parts []string
	if c.Const != nil && !c.Const.Empty() {
		parts = append(parts, s.labelSetString(c.Const))
	}
	for _, v := range c.Vars {
		parts = append(parts, s.SetVarNames[v])
	}
	if len(parts) == 0 {
		return "{}"
	}
	return strings.Join(parts, " ∪ ")
}

func (s *System) l2RHSString(c L2) string {
	var parts []string
	for _, ct := range c.Crosses {
		switch ct.Kind {
		case KLcross:
			parts = append(parts, fmt.Sprintf("Lcross(%s, %s)", ct.Name, s.SetVarNames[ct.Var]))
		case KScross:
			parts = append(parts, fmt.Sprintf("Scross(%s, %s)", ct.Name, s.SetVarNames[ct.Var]))
		default:
			parts = append(parts, fmt.Sprintf("symcross(%s, %s)", ct.Name, s.SetVarNames[ct.Var]))
		}
	}
	for _, v := range c.Pairs {
		parts = append(parts, s.PairVarNames[v])
	}
	if len(parts) == 0 {
		return "{}"
	}
	return strings.Join(parts, " ∪ ")
}
