package constraints

import (
	"strings"
	"testing"

	"fx10/internal/fixtures"
	"fx10/internal/intset"
	"fx10/internal/labels"
	"fx10/internal/parser"
	"fx10/internal/syntax"
	"fx10/internal/types"
)

func gen(t *testing.T, src string, mode Mode) (*syntax.Program, *System) {
	t.Helper()
	p := parser.MustParse(src)
	return p, Generate(labels.Compute(p), mode)
}

func namedPairs(t *testing.T, p *syntax.Program, pairs [][2]string) *intset.PairSet {
	t.Helper()
	out := intset.NewPairs(p.NumLabels())
	for _, pr := range pairs {
		l1, ok1 := p.LabelByName(pr[0])
		l2, ok2 := p.LabelByName(pr[1])
		if !ok1 || !ok2 {
			t.Fatalf("labels %v missing", pr)
		}
		out.AddSym(int(l1), int(l2))
	}
	return out
}

// Figure 5: the generated constraints for the Section 2.1 example
// must match the paper's system line for line (modulo our method-
// variable naming).
func TestFigure5Constraints(t *testing.T) {
	_, sys := gen(t, fixtures.Example21Source, ContextSensitive)
	out := sys.String()
	for _, want := range []string{
		"r_S0 = {}",
		"r_S1 = r_S0",
		"r_S3 = r_S0",
		"r_S13 = {S2} ∪ r_S1",
		"r_S5 = r_S13",
		"r_S8 = r_S13",
		"r_S6 = r_S5",
		"r_S11 = {S12, S7} ∪ r_S6",
		"r_S7 = {S11} ∪ r_S6",
		"r_S12 = r_S7",
		"o_S11 = r_S11",
		"o_S12 = r_S12",
		"o_S7 = {S12} ∪ r_S7",
		"o_S6 = o_S7",
		"o_S5 = o_S6",
		"o_S13 = o_S8",
		"o_S1 = o_S2",
		"o_S0 = o_S3",
		"m_S0 = Lcross(S0, r_S0) ∪ m_S1 ∪ m_S3",
		"m_S1 = Lcross(S1, r_S1) ∪ m_S13 ∪ m_S2",
		"m_S13 = Lcross(S13, r_S13) ∪ m_S5 ∪ m_S8",
		"m_S5 = Lcross(S5, r_S5) ∪ m_S6",
		"m_S6 = Lcross(S6, r_S6) ∪ m_S11 ∪ m_S7",
		"m_S11 = Lcross(S11, r_S11)",
		"m_S7 = Lcross(S7, r_S7) ∪ m_S12",
		"m_S12 = Lcross(S12, r_S12)",
		"m_S8 = Lcross(S8, r_S8)",
		"m_S2 = Lcross(S2, r_S2)",
		"m_S3 = Lcross(S3, r_S3)",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("generated system missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("full system:\n%s", out)
	}
}

// Solved level-1 values for the Section 2.1 example, from hand
// evaluation of Figure 5.
func TestExample21Level1Solution(t *testing.T) {
	p, sys := gen(t, fixtures.Example21Source, ContextSensitive)
	sol := sys.Solve(Options{})
	check := func(varName string, want ...string) {
		t.Helper()
		var v SetVar = -1
		for i, n := range sys.SetVarNames {
			if n == varName {
				v = SetVar(i)
			}
		}
		if v < 0 {
			t.Fatalf("variable %s not found", varName)
		}
		wantSet := intset.New(p.NumLabels())
		for _, w := range want {
			l, ok := p.LabelByName(w)
			if !ok {
				t.Fatalf("label %s missing", w)
			}
			wantSet.Add(int(l))
		}
		if !sol.SetValue(v).Equal(wantSet) {
			t.Fatalf("%s = %s, want %s", varName, sys.labelSetString(sol.SetValue(v)), sys.labelSetString(wantSet))
		}
	}
	check("r_S0")
	check("r_S2", "S13", "S5", "S6", "S7", "S8", "S11", "S12")
	check("r_S13", "S2")
	check("r_S11", "S2", "S7", "S12")
	check("r_S7", "S2", "S11")
	check("r_S12", "S2", "S11")
	check("o_S7", "S2", "S11", "S12")
	check("o_S13", "S2") // finish discards the body's O
	check("o_main")      // everything in main is finish-wrapped
}

// The solved main m variable must be exactly the paper's reported
// MHP set for both examples.
func TestSolvedMHPMatchesPaper(t *testing.T) {
	cases := []struct {
		src   string
		pairs [][2]string
	}{
		{fixtures.Example21Source, fixtures.Example21MHP},
		{fixtures.Example22Source, fixtures.Example22MHP},
	}
	for i, tc := range cases {
		p, sys := gen(t, tc.src, ContextSensitive)
		sol := sys.Solve(Options{})
		want := namedPairs(t, p, tc.pairs)
		if !sol.MainM().Equal(want) {
			t.Fatalf("case %d: solved M = %v, want %v", i, sol.MainM(), want)
		}
	}
}

// Theorem 4 (equivalence): the solved environment type-checks, and it
// coincides with the least environment direct type inference finds.
func TestEquivalenceTheorem4(t *testing.T) {
	srcs := []string{
		fixtures.Example21Source,
		fixtures.Example22Source,
		`void rec() { W: while (a[0] != 0) { B: async { S: skip; } C: rec(); } }
		 void main() { M: rec(); }`,
		`void f() { g(); } void g() { f(); } void main() { f(); async { g(); } }`,
	}
	for i, src := range srcs {
		p := parser.MustParse(src)
		in := labels.Compute(p)
		sys := Generate(in, ContextSensitive)
		sol := sys.Solve(Options{})
		env := sol.Env()

		c := types.NewChecker(in)
		if err := c.Check(env); err != nil {
			t.Fatalf("case %d: solved env fails type check: %v", i, err)
		}
		inferred := c.Infer().Env
		if !env.Equal(inferred) {
			t.Fatalf("case %d: solver and direct inference disagree", i)
		}
	}
}

// The monolithic solver must produce the identical least solution.
func TestMonolithicEqualsPhased(t *testing.T) {
	for _, src := range []string{fixtures.Example21Source, fixtures.Example22Source} {
		p, sys := gen(t, src, ContextSensitive)
		a := sys.Solve(Options{})
		b := sys.Solve(Options{Monolithic: true})
		for mi := range p.Methods {
			sa, sb := a.MethodSummary(mi), b.MethodSummary(mi)
			if !sa.Equal(sb) {
				t.Fatalf("%s: method %d differs between phased and monolithic", src[:20], mi)
			}
		}
	}
}

// Section 7: on the Section 2.2 example the context-insensitive
// analysis must produce the (S3, S4) false positive that the
// context-sensitive analysis avoids — the paper's motivating
// comparison.
func TestContextInsensitiveFalsePositive(t *testing.T) {
	p, csSys := gen(t, fixtures.Example22Source, ContextSensitive)
	cs := csSys.Solve(Options{})
	_, ciSys := gen(t, fixtures.Example22Source, ContextInsensitive)
	ci := ciSys.Solve(Options{})

	s3, _ := p.LabelByName("S3")
	s4, _ := p.LabelByName("S4")
	if cs.MainM().Has(int(s3), int(s4)) {
		t.Fatalf("context-sensitive analysis produced (S3,S4)")
	}
	if !ci.MainM().Has(int(s3), int(s4)) {
		t.Fatalf("context-insensitive analysis did not produce (S3,S4)")
	}
	// Context-insensitive must still be a superset (it is strictly
	// more conservative).
	if !cs.MainM().SubsetOf(ci.MainM()) {
		t.Fatalf("CS result not a subset of CI result")
	}
}

// Without method calls the two analyses coincide (as the paper
// observed on the 11 smaller benchmarks).
func TestModesAgreeWithoutCalls(t *testing.T) {
	p, csSys := gen(t, fixtures.Example21Source, ContextSensitive)
	cs := csSys.Solve(Options{})
	_, ciSys := gen(t, fixtures.Example21Source, ContextInsensitive)
	ci := ciSys.Solve(Options{})
	if !cs.MainM().Equal(ci.MainM()) {
		t.Fatalf("modes disagree on a call-free program")
	}
	_ = p
}

func TestCounts(t *testing.T) {
	_, sys := gen(t, fixtures.Example21Source, ContextSensitive)
	sl, l1, l2 := sys.Counts()
	// 11 statement nodes (S0,S1,S13,S5,S6,S11,S7,S12,S8,S2,S3).
	if sl != 11 {
		t.Fatalf("Slabels count = %d, want 11", sl)
	}
	// One m constraint per statement plus one per method.
	if l2 != 12 {
		t.Fatalf("level-2 count = %d, want 12", l2)
	}
	// Level-1: 2 for the single method (r_s0 = ∅ and o_i = o_s0) plus
	// 21 statement-level constraints (3 each for the two finishes and
	// two asyncs with continuations, 2 for the async without one, 2
	// for the one mid-sequence skip, 1 each for the five trailing
	// skips).
	if l1 != 23 {
		t.Fatalf("level-1 count = %d, want 23", l1)
	}

	// Context-insensitive adds one subset constraint per call site
	// and one base constraint per method r_i.
	_, ciSys := gen(t, fixtures.Example22Source, ContextInsensitive)
	_, ciL1, _ := ciSys.Counts()
	_, csL1, _ := Generate(labels.Compute(parser.MustParse(fixtures.Example22Source)), ContextSensitive).Counts()
	if ciL1 != csL1+2+2 { // 2 methods (r_i base) + 2 call sites (subsets)
		t.Fatalf("CI level-1 = %d, CS = %d, want CI = CS+4", ciL1, csL1)
	}
}

func TestIterationCountsSane(t *testing.T) {
	_, sys := gen(t, fixtures.Example22Source, ContextSensitive)
	sol := sys.Solve(Options{})
	if sol.IterSlabels < 2 || sol.IterL1 < 2 || sol.IterL2 < 2 {
		t.Fatalf("iteration counts too small: %d/%d/%d", sol.IterSlabels, sol.IterL1, sol.IterL2)
	}
	if sol.Duration <= 0 {
		t.Fatalf("duration not recorded")
	}
	if sol.FootprintBytes <= 0 {
		t.Fatalf("footprint not recorded")
	}
}

// The context-insensitive analysis needs more level-1 iterations on
// call-heavy programs (the paper's Figure 9 effect): labels must flow
// call-chain-deep through the rᵢ variables.
func TestCIMoreIterationsOnCallChain(t *testing.T) {
	src := `
void main() { A: async { X: skip; } c1(); }
void c1() { c2(); }
void c2() { c3(); }
void c3() { c4(); }
void c4() { B: async { Y: skip; } }
`
	_, csSys := gen(t, src, ContextSensitive)
	cs := csSys.Solve(Options{})
	_, ciSys := gen(t, src, ContextInsensitive)
	ci := ciSys.Solve(Options{})
	if ci.IterL1 <= cs.IterL1 {
		t.Fatalf("expected CI to need more level-1 passes: CI %d vs CS %d", ci.IterL1, cs.IterL1)
	}
}

func TestStmtAccessors(t *testing.T) {
	p, sys := gen(t, fixtures.Example21Source, ContextSensitive)
	sol := sys.Solve(Options{})
	body := p.Main().Body
	if !sol.StmtR(body).Empty() {
		t.Fatalf("r of main body not empty")
	}
	s3set := sol.StmtO(body)
	s3, _ := p.LabelByName("S3")
	_ = s3
	_ = s3set
	if sol.StmtM(body).Empty() {
		t.Fatalf("m of main body empty")
	}
	if sol.PairLen(sys.StmtM[body]) != sol.StmtM(body).Len() {
		t.Fatalf("PairLen inconsistent with dense conversion")
	}
}

func TestModeString(t *testing.T) {
	if ContextSensitive.String() != "context-sensitive" || ContextInsensitive.String() != "context-insensitive" {
		t.Fatalf("Mode.String wrong")
	}
}

// The worklist solver must produce the identical least solution, with
// evaluation counting in place of pass counting.
func TestWorklistEqualsPhased(t *testing.T) {
	srcs := []string{
		fixtures.Example21Source,
		fixtures.Example22Source,
		`void rec() { W: while (a[0] != 0) { B: async { S: skip; } C: rec(); } }
		 void main() { M: rec(); }`,
	}
	for _, mode := range []Mode{ContextSensitive, ContextInsensitive} {
		for i, src := range srcs {
			p, sys := gen(t, src, mode)
			a := sys.Solve(Options{})
			b := sys.Solve(Options{Worklist: true})
			for mi := range p.Methods {
				if !a.MethodSummary(mi).Equal(b.MethodSummary(mi)) {
					t.Fatalf("mode %v case %d: worklist differs on method %d", mode, i, mi)
				}
			}
			if b.Evaluations == 0 {
				t.Fatalf("worklist did not count evaluations")
			}
			if b.IterL1 != 0 || b.IterL2 != 0 {
				t.Fatalf("worklist should not report pass counts")
			}
		}
	}
}
