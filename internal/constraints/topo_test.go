package constraints

import (
	"testing"

	"fx10/internal/fixtures"
	"fx10/internal/labels"
	"fx10/internal/parser"
	"fx10/internal/progen"
	"fx10/internal/syntax"
)

// recursiveSource has mutually recursive methods, so the level-1 (and
// through the call rule, level-2) constraint graphs contain genuine
// cycles: the topo solver must collapse multi-member SCCs, not just
// order a DAG.
const recursiveSource = `
array 4;
void f() {
  async { a[0] = 1; }
  g();
}
void g() {
  a[1] = 2;
  f();
}
void main() {
  finish { f(); }
  a[2] = 3;
}
`

// TestTopoEqualsPhased checks the topo strategy reaches the same
// least solution as the pass-based reference on the paper examples, a
// recursive program, and a seeded progen sweep, in both modes.
func TestTopoEqualsPhased(t *testing.T) {
	sources := []string{fixtures.Example21Source, fixtures.Example22Source, recursiveSource}
	var programs []*syntax.Program
	for _, src := range sources {
		programs = append(programs, parser.MustParse(src))
	}
	for seed := int64(300); seed < 320; seed++ {
		programs = append(programs, progen.Generate(seed, progen.Default()))
	}
	for pi, p := range programs {
		for _, mode := range []Mode{ContextSensitive, ContextInsensitive} {
			sys := Generate(labels.Compute(p), mode)
			phased := sys.Solve(Options{})
			topo := sys.Solve(Options{Topo: true})
			if !phased.ValuationEqual(topo) {
				t.Fatalf("program %d (%v): topo valuation differs from phased\n%s",
					pi, mode, syntax.Print(p))
			}
			if topo.IterL1 != 0 || topo.IterL2 != 0 {
				t.Errorf("program %d (%v): topo ran pass-based phases (IterL1=%d IterL2=%d)",
					pi, mode, topo.IterL1, topo.IterL2)
			}
		}
	}
}

// TestTopoEvaluationsAtMostWorklist checks the cycle-elimination
// payoff claim: the topo solver evaluates each constraint at most
// once, so its evaluation count can never exceed the worklist's
// (which seeds every constraint at least once).
func TestTopoEvaluationsAtMostWorklist(t *testing.T) {
	var programs []*syntax.Program
	for _, src := range []string{fixtures.Example21Source, fixtures.Example22Source, recursiveSource} {
		programs = append(programs, parser.MustParse(src))
	}
	for seed := int64(400); seed < 420; seed++ {
		programs = append(programs, progen.Generate(seed, progen.Default()))
	}
	for pi, p := range programs {
		for _, mode := range []Mode{ContextSensitive, ContextInsensitive} {
			sys := Generate(labels.Compute(p), mode)
			_, l1, l2 := sys.Counts()
			worklist := sys.Solve(Options{Worklist: true})
			topo := sys.Solve(Options{Topo: true})
			if topo.Evaluations > worklist.Evaluations {
				t.Errorf("program %d (%v): topo evaluations %d > worklist %d",
					pi, mode, topo.Evaluations, worklist.Evaluations)
			}
			if max := int64(l1 + l2); topo.Evaluations > max {
				t.Errorf("program %d (%v): topo evaluations %d > constraint count %d",
					pi, mode, topo.Evaluations, max)
			}
		}
	}
}

// TestTopoAliasingPointerDistinct checks that the SCC collapse and
// copy elision stay internal: the materialized valuation hands every
// set variable its own Set, so no sharing is visible to callers even
// though whole alias chains were solved as one value. (Pair variables
// are never exposed by reference — PairValue densifies a fresh copy —
// so aliased bags are unobservable by construction; the set side is
// where accidental sharing could leak.)
func TestTopoAliasingPointerDistinct(t *testing.T) {
	for _, src := range []string{fixtures.Example21Source, fixtures.Example22Source, recursiveSource} {
		p := parser.MustParse(src)
		for _, mode := range []Mode{ContextSensitive, ContextInsensitive} {
			sys := Generate(labels.Compute(p), mode)
			topo := sys.Solve(Options{Topo: true})
			if !topo.ValuationEqual(sys.Solve(Options{})) {
				t.Fatalf("%v: topo valuation differs from phased", mode)
			}
			ptrs := map[interface{}]SetVar{}
			for v := 0; v < sys.NumSetVars(); v++ {
				s := topo.SetValue(SetVar(v))
				if s == nil {
					t.Fatalf("%v: set variable %s has nil value", mode, sys.SetVarNames[v])
				}
				if prev, dup := ptrs[s]; dup {
					t.Fatalf("%v: set variables %s and %s share one *Set",
						mode, sys.SetVarNames[prev], sys.SetVarNames[v])
				}
				ptrs[s] = SetVar(v)
			}
			// Densified pair values are fresh per call.
			for v := 0; v < sys.NumPairVars(); v++ {
				if topo.PairValue(PairVar(v)) == topo.PairValue(PairVar(v)) {
					t.Fatalf("%v: PairValue(%s) returned a shared pair set", mode, sys.PairVarNames[v])
				}
			}
		}
	}
}

// TestTopoElidesCopies pins that copy elision actually fires: on the
// worked examples the topo solver must evaluate strictly fewer
// constraints than exist (straight-line programs are full of
// single-inflow copy variables).
func TestTopoElidesCopies(t *testing.T) {
	p := parser.MustParse(fixtures.Example21Source)
	sys := Generate(labels.Compute(p), ContextSensitive)
	_, l1, l2 := sys.Counts()
	topo := sys.Solve(Options{Topo: true})
	if total := int64(l1 + l2); topo.Evaluations >= total {
		t.Fatalf("no copy elision: %d evaluations for %d constraints", topo.Evaluations, total)
	}
}
