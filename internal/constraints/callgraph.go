package constraints

import (
	"sort"

	"fx10/internal/syntax"
)

// MethodID indexes a method, like syntax.Program.Methods.
type MethodID = int

// CallGraph is the cross-method dependency layer of a constraint
// system: one edge per distinct (caller, callee) pair. In the
// generated constraints these edges are exactly where information
// crosses method boundaries — a call site reads the callee's oᵢ/mᵢ
// summary variables (context-sensitively), and context-insensitively
// additionally feeds the call site's r into the callee's rᵢ — so the
// delta solver's invalidation closure is a graph reachability
// question over this layer.
type CallGraph struct {
	callees [][]MethodID // callees[i]: methods i calls (sorted, deduped)
	callers [][]MethodID // callers[i]: methods that call i (sorted, deduped)
}

// NewCallGraph builds the call graph of p.
func NewCallGraph(p *syntax.Program) *CallGraph {
	g := &CallGraph{
		callees: make([][]MethodID, len(p.Methods)),
		callers: make([][]MethodID, len(p.Methods)),
	}
	seen := map[[2]MethodID]bool{}
	p.EachInstr(func(mi int, i syntax.Instr) {
		c, ok := i.(*syntax.Call)
		if !ok || seen[[2]MethodID{mi, c.Method}] {
			return
		}
		seen[[2]MethodID{mi, c.Method}] = true
		g.callees[mi] = append(g.callees[mi], c.Method)
		g.callers[c.Method] = append(g.callers[c.Method], mi)
	})
	for i := range g.callees {
		sort.Ints(g.callees[i])
		sort.Ints(g.callers[i])
	}
	return g
}

// NumMethods returns the number of methods the graph covers.
func (g *CallGraph) NumMethods() int { return len(g.callees) }

// Callees returns the methods mi calls (shared slice; do not mutate).
func (g *CallGraph) Callees(mi MethodID) []MethodID { return g.callees[mi] }

// Callers returns the methods that call mi (shared slice; do not
// mutate).
func (g *CallGraph) Callers(mi MethodID) []MethodID { return g.callers[mi] }

// CallerClosure marks dirty and every transitive caller of a dirty
// method. This is the context-sensitive invalidation set: a method's
// values depend only on its call-graph subtree, so a method whose
// subtree contains no dirty method is unaffected. The closure is
// closed under SCCs by construction — every member of a cycle is a
// transitive caller of every other member.
func (g *CallGraph) CallerClosure(dirty []MethodID) []bool {
	mark := make([]bool, len(g.callees))
	var stack []MethodID
	for _, mi := range dirty {
		if mi >= 0 && mi < len(mark) && !mark[mi] {
			mark[mi] = true
			stack = append(stack, mi)
		}
	}
	for len(stack) > 0 {
		mi := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range g.callers[mi] {
			if !mark[c] {
				mark[c] = true
				stack = append(stack, c)
			}
		}
	}
	return mark
}

// ComponentClosure marks the weakly connected component of every
// dirty method: the closure under both caller and callee edges. This
// is the context-insensitive invalidation set — rᵢ variables flow
// caller→callee while oᵢ/mᵢ flow callee→caller, so influence
// propagates along edges in both directions.
func (g *CallGraph) ComponentClosure(dirty []MethodID) []bool {
	mark := make([]bool, len(g.callees))
	var stack []MethodID
	for _, mi := range dirty {
		if mi >= 0 && mi < len(mark) && !mark[mi] {
			mark[mi] = true
			stack = append(stack, mi)
		}
	}
	for len(stack) > 0 {
		mi := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range g.callers[mi] {
			if !mark[c] {
				mark[c] = true
				stack = append(stack, c)
			}
		}
		for _, c := range g.callees[mi] {
			if !mark[c] {
				mark[c] = true
				stack = append(stack, c)
			}
		}
	}
	return mark
}
