package constraints

import (
	"context"
)

// Cancellation support: SolveCtx and SolveDeltaCtx are the
// context-aware entry points a long-lived caller (internal/server)
// uses to abandon a solve mid-flight — a client gone away must not pin
// a worker for the rest of a large fixpoint. The iterative loops poll
// the context every CancelStride constraint evaluations (polling every
// evaluation would put an atomic load on the hottest path for no
// benefit; a stride keeps the overhead to a countdown decrement) and
// bail out by panicking with a private sentinel that the entry points
// recover into a plain error. The context-free Solve/SolveDelta
// wrappers keep their exact old signatures and never pay more than a
// nil check per stride.

// CancelStride is the number of constraint evaluations between
// context polls. At typical sub-microsecond evaluation cost this
// bounds cancellation latency well under a millisecond.
const CancelStride = 256

// canceledPanic is the sentinel unwound through the solver loops on
// cancellation; it never escapes SolveCtx/SolveDeltaCtx.
type canceledPanic struct{ err error }

// cancelState is embedded in Solution. ctx is nil when the solve is
// not cancellable (the common case), making checkCancel a branch on
// cheap local state.
type cancelState struct {
	ctx       context.Context
	countdown int
}

// arm enables cancellation polling when ctx can actually be
// cancelled; a Background-like context keeps the fast path.
func (cs *cancelState) arm(ctx context.Context) {
	if ctx != nil && ctx.Done() != nil {
		cs.ctx = ctx
		cs.countdown = CancelStride
	}
}

// check polls the context every CancelStride calls and aborts the
// solve (canceledPanic) if it is done.
func (cs *cancelState) check() {
	if cs.ctx == nil {
		return
	}
	cs.countdown--
	if cs.countdown > 0 {
		return
	}
	cs.countdown = CancelStride
	if err := cs.ctx.Err(); err != nil {
		panic(canceledPanic{err: err})
	}
}

// fork returns an independent cancellation state sharing cs's context
// but with a fresh countdown. The parallel solver gives each worker
// its own fork: the countdown is plain mutable state and must not be
// shared across goroutines.
func (cs *cancelState) fork() cancelState {
	f := cancelState{ctx: cs.ctx}
	if f.ctx != nil {
		f.countdown = CancelStride
	}
	return f
}

// checkCancel is called once per constraint evaluation by every
// sequential solver loop.
func (sol *Solution) checkCancel() { sol.cancel.check() }

// recoverCanceled converts the cancellation sentinel into err,
// re-panicking anything else. Use in a deferred call.
func recoverCanceled(err *error) {
	if r := recover(); r != nil {
		cp, ok := r.(canceledPanic)
		if !ok {
			panic(r)
		}
		*err = cp.err
	}
}

// SolveCtx is Solve with cooperative cancellation: it returns
// (nil, ctx.Err()) if ctx is cancelled mid-solve, and the least
// solution otherwise. Cancellation is checked every CancelStride
// constraint evaluations in all five solver strategies (each parallel
// worker polls its own fork of the state), so a cancel
// is honoured promptly even deep inside a large fixpoint. A partial
// solve is never returned.
func (s *System) SolveCtx(ctx context.Context, opts Options) (sol *Solution, err error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	defer recoverCanceled(&err)
	return s.solve(ctx, opts), nil
}

// SolveDeltaCtx is SolveDelta with cooperative cancellation; the
// restricted worklists (and the full-solve fallback) poll ctx every
// CancelStride evaluations. On cancellation it returns
// (nil, DeltaInfo{}, ctx.Err()) and no partial solution.
func (s *System) SolveDeltaCtx(ctx context.Context, prev *Solution, dirty []MethodID) (sol *Solution, info DeltaInfo, err error) {
	if err := ctx.Err(); err != nil {
		return nil, DeltaInfo{}, err
	}
	defer recoverCanceled(&err)
	sol, info = s.solveDelta(ctx, prev, dirty)
	return sol, info, nil
}
