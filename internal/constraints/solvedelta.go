package constraints

import (
	"context"
	"runtime"
	"time"

	"fx10/internal/intset"
	"fx10/internal/syntax"
)

// Delta solving: re-solve only the methods an edit can have affected,
// seeding everything else from a previous solution.
//
// The soundness argument rests on the method partition. Every
// variable is owned by one method (System.SetVarOwner/PairVarOwner),
// and the only constraints crossing method boundaries follow call
// edges: a call site reads the callee's oᵢ/mᵢ (context-sensitive),
// and context-insensitively the callee's rᵢ reads the call site's r.
// So a method's solved values depend only on its call-graph subtree
// (context-sensitive) or its weakly connected component
// (context-insensitive). If that region is structurally unchanged
// between the previous program and this one, the least solution
// restricted to the method's variables is unchanged too — up to the
// global label renumbering an edit elsewhere induces, which the
// per-method structural correspondence walk recovers exactly.
//
// Methods whose region may have changed form the closure: the dirty
// methods plus their transitive callers (context-sensitive; closed
// under SCCs by construction, since cycle members are mutual
// transitive callers) or their weak components over the union of the
// old and new call graphs (context-insensitive — the old graph
// matters because a removed call edge can strand stale caller-context
// labels). Closure variables restart from bottom and are re-solved by
// a worklist restricted to constraints whose left-hand side the
// closure owns; all other variables are seeded from the previous
// valuation through the label remap and are provably already at their
// least fixpoint, so their constraints are never re-evaluated.
//
// Any structural surprise — a method with no same-named predecessor,
// a correspondence mismatch, a previous value mentioning a label the
// remap does not cover — widens the closure or falls back to a full
// solve. The result is bitwise-identical to solving from scratch
// (the engine's delta equivalence tests and difffuzz's incremental
// oracle check this program-by-program).

// DeltaInfo reports what SolveDelta actually did.
type DeltaInfo struct {
	// Full is true when the delta path was abandoned for a full
	// re-solve (incompatible previous solution, or a previous value
	// outside the remap's domain).
	Full bool
	// Closure lists the methods that were re-solved, ascending.
	Closure []MethodID
	// MethodsReused and MethodsResolved partition the program's
	// methods: seeded from the previous solution vs re-solved.
	MethodsReused, MethodsResolved int
	// ConstraintsReevaluated counts individual constraint
	// evaluations performed by the restricted (or fallback) solve.
	ConstraintsReevaluated int64
}

// SolveDelta computes the least solution of s, reusing prev — a least
// solution of a previous version of the program — for every method
// outside the dirty closure. dirty must list every method of s.P
// whose own body differs from its same-named method in prev's program
// (callers of dirty methods need not be listed; the closure adds
// them). The returned solution is bitwise-identical to s.Solve.
func (s *System) SolveDelta(prev *Solution, dirty []MethodID) (*Solution, DeltaInfo) {
	return s.solveDelta(context.Background(), prev, dirty)
}

// solveDelta is the shared core of SolveDelta and SolveDeltaCtx. It
// unwinds with a canceledPanic when ctx is cancelled mid-solve.
func (s *System) solveDelta(ctx context.Context, prev *Solution, dirty []MethodID) (*Solution, DeltaInfo) {
	if prev == nil || prev.sys == nil || prev.sys.Mode != s.Mode || prev.sys.Calls == nil {
		return s.fullFallback(ctx)
	}
	prevSys := prev.sys
	prevP := prevSys.P
	p := s.P

	// matchNewToPrev[mi] is the index of prev's same-named method
	// (-1 when absent). Methods without a predecessor are dirty by
	// definition.
	matchNewToPrev := make([]int, len(p.Methods))
	isDirty := make([]bool, len(p.Methods))
	for _, mi := range dirty {
		if mi >= 0 && mi < len(isDirty) {
			isDirty[mi] = true
		}
	}
	for mi, m := range p.Methods {
		pj, ok := prevP.MethodIndex(m.Name)
		if !ok {
			pj = -1
			isDirty[mi] = true
		}
		matchNewToPrev[mi] = pj
	}

	// Grow the dirty set to a fixpoint: compute the closure, then try
	// to build the label correspondence for every method outside it;
	// a method that fails (its body shape differs from its same-named
	// predecessor after all) joins the dirty set and the closure is
	// recomputed. Terminates because the dirty set only grows.
	n := p.NumLabels()
	remap := make([]int, prevP.NumLabels()) // prev label → new label
	identSelf := make([]bool, len(p.Methods))
	var inClosure []bool
	for {
		if s.Mode == ContextSensitive {
			inClosure = s.Calls.CallerClosure(dirtyList(isDirty))
		} else {
			inClosure = s.componentClosureWithPrev(prevSys, isDirty, matchNewToPrev)
		}
		for i := range remap {
			remap[i] = -1
		}
		grew := false
		for mi := range p.Methods {
			if inClosure[mi] {
				continue
			}
			ident := true
			pj := matchNewToPrev[mi]
			if pj < 0 || !correspond(p.Methods[mi].Body, prevP.Methods[pj].Body, remap, &ident) ||
				len(s.SetVarsOf(mi)) != len(prevSys.SetVarsOf(pj)) ||
				len(s.PairVarsOf(mi)) != len(prevSys.PairVarsOf(pj)) {
				isDirty[mi] = true
				grew = true
				continue
			}
			// Phase agreement: the previous pair values were pruned
			// under the previous program's phase codes, so a method is
			// reusable only if every one of its labels keeps the same
			// abstract clock phase. An edit elsewhere (say an extra
			// next in main) can shift a structurally untouched helper's
			// phases; that helper joins the dirty set here and the
			// closure re-derives everything whose pruning could differ.
			if (s.PhaseCode != nil || prevSys.PhaseCode != nil) &&
				!phasesAgree(p.Methods[mi].Body, prevP.Methods[pj].Body, s.PhaseCode, prevSys.PhaseCode) {
				isDirty[mi] = true
				grew = true
				continue
			}
			identSelf[mi] = ident
		}
		if !grew {
			break
		}
	}

	// identVals[mi] means method mi's previous values can be reused
	// verbatim, with no per-element translation: its own label
	// correspondence is the identity, and so is every method's whose
	// labels can appear in its values — callees (summaries flow up)
	// and, context-insensitively, callers too (call-site context flows
	// down). Closed by fixpoint; the booleans only flip one way.
	identVals := make([]bool, len(p.Methods))
	for mi := range p.Methods {
		identVals[mi] = !inClosure[mi] && identSelf[mi]
	}
	for changed := true; changed; {
		changed = false
		for mi := range p.Methods {
			if !identVals[mi] {
				continue
			}
			ok := true
			for _, c := range s.Calls.Callees(mi) {
				if !identVals[c] {
					ok = false
					break
				}
			}
			if ok && s.Mode == ContextInsensitive {
				for _, c := range s.Calls.Callers(mi) {
					if !identVals[c] {
						ok = false
						break
					}
				}
			}
			if !ok {
				identVals[mi] = false
				changed = true
			}
		}
	}

	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()

	sol := &Solution{
		sys:         s,
		setVals:     intset.NewBatch(n, len(s.SetVarNames)),
		pairVals:    make([]pairBag, len(s.PairVarNames)),
		IterSlabels: s.Info.Iterations,
	}
	sol.cancel.arm(ctx)

	// Seed: closure variables restart from bottom (the batch sets are
	// born empty; pair bags are presized from the previous solve, a
	// size hint that spares the worklist's incremental map growth);
	// every other variable gets its previous value. Identity methods
	// (identVals) reuse it verbatim — word-copied sets, aliased pair
	// bags, safe because the restricted solvers only ever mutate
	// closure-owned values. The rest translate through the label remap.
	// A previous value containing a label the remap does not cover
	// means influence from outside the reused region — re-solve
	// everything (it cannot legitimately happen for the closures
	// computed above; this is the defensive backstop).
	for mi := range p.Methods {
		pj := matchNewToPrev[mi]
		if inClosure[mi] {
			var prevPair []PairVar
			if pj >= 0 {
				prevPair = prevSys.PairVarsOf(pj)
			}
			for k, v := range s.PairVarsOf(mi) {
				hint := 0
				if k < len(prevPair) {
					hint = len(prev.pairVals[prevPair[k]])
				}
				sol.pairVals[v] = make(pairBag, hint)
			}
			continue
		}
		prevSet := prevSys.SetVarsOf(pj)
		prevPair := prevSys.PairVarsOf(pj)
		if identVals[mi] {
			ok := true
			for k, v := range s.SetVarsOf(mi) {
				if !sol.setVals[v].CopyFromFit(prev.setVals[prevSet[k]]) {
					ok = false
					break
				}
			}
			if ok {
				for k, v := range s.PairVarsOf(mi) {
					sol.pairVals[v] = prev.pairVals[prevPair[k]]
				}
				continue
			}
			// An element outside the new universe: fall through to the
			// checked remap path, which re-derives or rejects it.
		}
		for k, v := range s.SetVarsOf(mi) {
			dst := sol.setVals[v]
			dst.Clear()
			if !remapSetInto(dst, prev.setVals[prevSet[k]], remap) {
				return s.fullFallback(ctx)
			}
		}
		for k, v := range s.PairVarsOf(mi) {
			dst := make(pairBag, len(prev.pairVals[prevPair[k]]))
			if !remapBagInto(dst, prev.pairVals[prevPair[k]], remap) {
				return s.fullFallback(ctx)
			}
			sol.pairVals[v] = dst
		}
	}

	sol.solveL1Restricted(inClosure)
	sol.solveL2Restricted(inClosure)
	sol.scratch = solverScratch{}

	sol.Duration = time.Since(start)
	runtime.ReadMemStats(&ms1)
	sol.AllocBytes = ms1.TotalAlloc - ms0.TotalAlloc
	sol.FootprintBytes += len(sol.setVals) * ((n+63)/64*8 + 24)
	for _, b := range sol.pairVals {
		sol.FootprintBytes += b.footprintBytes()
	}

	info := DeltaInfo{ConstraintsReevaluated: sol.Evaluations}
	for mi := range p.Methods {
		if inClosure[mi] {
			info.Closure = append(info.Closure, mi)
			info.MethodsResolved++
		} else {
			info.MethodsReused++
		}
	}
	return sol, info
}

// fullFallback solves from scratch and reports it.
func (s *System) fullFallback(ctx context.Context) (*Solution, DeltaInfo) {
	sol := s.solve(ctx, Options{Worklist: true})
	info := DeltaInfo{
		Full:                   true,
		MethodsResolved:        len(s.P.Methods),
		ConstraintsReevaluated: sol.Evaluations,
	}
	for mi := range s.P.Methods {
		info.Closure = append(info.Closure, mi)
	}
	return sol, info
}

func dirtyList(isDirty []bool) []MethodID {
	var out []MethodID
	for mi, d := range isDirty {
		if d {
			out = append(out, mi)
		}
	}
	return out
}

// componentClosureWithPrev computes the context-insensitive closure:
// the weakly connected components of the dirty methods over the
// union of the new call graph and the previous one (prev methods
// identified with new ones by name; prev methods with no same-named
// survivor count as dirty, since whatever context they contributed is
// gone). Returned marks are over the new program's methods.
func (s *System) componentClosureWithPrev(prevSys *System, isDirty []bool, matchNewToPrev []int) []bool {
	p := s.P
	prevP := prevSys.P
	matchPrevToNew := make([]int, len(prevP.Methods))
	for i := range matchPrevToNew {
		matchPrevToNew[i] = -1
	}
	for mi, pj := range matchNewToPrev {
		if pj >= 0 {
			matchPrevToNew[pj] = mi
		}
	}

	markNew := make([]bool, len(p.Methods))
	markPrev := make([]bool, len(prevP.Methods))
	// The frontier holds new-space indices and prev-space indices
	// (offset by len(p.Methods)).
	var stack []int
	pushNew := func(mi int) {
		if !markNew[mi] {
			markNew[mi] = true
			stack = append(stack, mi)
		}
	}
	pushPrev := func(pj int) {
		if !markPrev[pj] {
			markPrev[pj] = true
			stack = append(stack, len(p.Methods)+pj)
		}
	}
	for mi, d := range isDirty {
		if d {
			pushNew(mi)
		}
	}
	for pj, mi := range matchPrevToNew {
		if mi < 0 {
			pushPrev(pj) // deleted or renamed away: its context is gone
		}
	}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if v < len(p.Methods) {
			for _, c := range s.Calls.Callers(v) {
				pushNew(c)
			}
			for _, c := range s.Calls.Callees(v) {
				pushNew(c)
			}
			if pj := matchNewToPrev[v]; pj >= 0 {
				pushPrev(pj)
			}
		} else {
			pj := v - len(p.Methods)
			for _, c := range prevSys.Calls.Callers(pj) {
				pushPrev(c)
			}
			for _, c := range prevSys.Calls.Callees(pj) {
				pushPrev(c)
			}
			if mi := matchPrevToNew[pj]; mi >= 0 {
				pushNew(mi)
			}
		}
	}
	return markNew
}

// correspond walks two method bodies in lockstep, checking structural
// equality (kinds, indices, expressions, callee names) and recording
// the prev→new label correspondence. It returns false on any shape
// difference; remap entries written before a failure are simply
// unused (the method joins the dirty set and the remap is rebuilt).
// ident is cleared when any label of the walk is renumbered, i.e. the
// recorded correspondence is not the identity on this body.
func correspond(a, b *syntax.Stmt, remap []int, ident *bool) bool {
	// a is the new body, b the previous one.
	for ; a != nil && b != nil; a, b = a.Next, b.Next {
		ai, bi := a.Instr, b.Instr
		if ai.Kind() != bi.Kind() {
			return false
		}
		switch x := ai.(type) {
		case *syntax.Assign:
			y := bi.(*syntax.Assign)
			if x.D != y.D || x.Rhs != y.Rhs {
				return false
			}
		case *syntax.While:
			y := bi.(*syntax.While)
			if x.D != y.D || !correspond(x.Body, y.Body, remap, ident) {
				return false
			}
		case *syntax.Async:
			y := bi.(*syntax.Async)
			if x.Place != y.Place || x.Clocked != y.Clocked || !correspond(x.Body, y.Body, remap, ident) {
				return false
			}
		case *syntax.Finish:
			if !correspond(x.Body, bi.(*syntax.Finish).Body, remap, ident) {
				return false
			}
		case *syntax.Call:
			if x.Name != bi.(*syntax.Call).Name {
				return false
			}
		}
		if bi.Label() != ai.Label() {
			*ident = false
		}
		remap[bi.Label()] = int(ai.Label())
	}
	return a == nil && b == nil
}

// phaseAt reads a label's phase code, treating a nil slice (clock-free
// system) as all-unknown.
func phaseAt(code []int32, l syntax.Label) int32 {
	if code == nil {
		return -1
	}
	return code[l]
}

// phasesAgree walks two already-corresponding bodies in lockstep and
// reports whether every label carries the same abstract phase code in
// both systems. Shapes are known equal (correspond succeeded), so the
// nested bodies line up.
func phasesAgree(a, b *syntax.Stmt, newCode, prevCode []int32) bool {
	for ; a != nil && b != nil; a, b = a.Next, b.Next {
		if phaseAt(newCode, a.Instr.Label()) != phaseAt(prevCode, b.Instr.Label()) {
			return false
		}
		if ba := syntax.Body(a.Instr); ba != nil {
			if !phasesAgree(ba, syntax.Body(b.Instr), newCode, prevCode) {
				return false
			}
		}
	}
	return true
}

// remapSetInto translates every element of src through remap into
// dst, reporting false if any element is unmapped.
func remapSetInto(dst *intset.Set, src *intset.Set, remap []int) bool {
	ok := true
	src.Each(func(e int) {
		ne := remap[e]
		if ne < 0 {
			ok = false
			return
		}
		dst.Add(ne)
	})
	return ok
}

// remapBagInto translates every pair of src through remap into dst,
// reporting false if any coordinate is unmapped.
func remapBagInto(dst pairBag, src pairBag, remap []int) bool {
	for k := range src {
		i, j := remap[int(k>>32)], remap[int(uint32(k))]
		if i < 0 || j < 0 {
			return false
		}
		dst[pairKey(i, j)] = struct{}{}
	}
	return true
}

// solveL1Restricted runs the level-1 worklist over the constraints
// whose left-hand side is owned by a closure method. Non-closure
// variables are already at their least fixpoint (seeded), never
// change, and so never require their constraints to fire.
func (sol *Solution) solveL1Restricted(inClosure []bool) {
	s := sol.sys
	var active []int32 // global ids: 0..len(L1s)-1, then subsets
	for ci, c := range s.L1s {
		if inClosure[s.SetVarOwner[c.LHS]] {
			active = append(active, int32(ci))
		}
	}
	for si, c := range s.Subsets {
		if inClosure[s.SetVarOwner[c.Sup]] {
			active = append(active, int32(len(s.L1s)+si))
		}
	}

	// dependents[v] lists active positions reading set variable v.
	dependents := sol.scratch.dependents(len(s.SetVarNames))
	for pos, ci := range active {
		if int(ci) < len(s.L1s) {
			for _, v := range s.L1s[ci].Vars {
				dependents[v] = append(dependents[v], int32(pos))
			}
		} else {
			dependents[s.Subsets[int(ci)-len(s.L1s)].Sub] = append(
				dependents[s.Subsets[int(ci)-len(s.L1s)].Sub], int32(pos))
		}
	}

	queue := &sol.scratch.wq
	queue.reset(len(active))
	inQueue := sol.scratch.flags(len(active))
	for pos := range active {
		queue.push(int32(pos))
		inQueue[pos] = true
	}

	for !queue.empty() {
		pos := queue.pop()
		inQueue[pos] = false
		sol.Evaluations++
		sol.checkCancel()

		ci := active[pos]
		var lhs SetVar
		changed := false
		if int(ci) < len(s.L1s) {
			c := s.L1s[ci]
			lhs = c.LHS
			dst := sol.setVals[lhs]
			if c.Const != nil && dst.UnionWith(c.Const) {
				changed = true
			}
			for _, v := range c.Vars {
				if dst.UnionWith(sol.setVals[v]) {
					changed = true
				}
			}
		} else {
			c := s.Subsets[int(ci)-len(s.L1s)]
			lhs = c.Sup
			changed = sol.setVals[lhs].UnionWith(sol.setVals[c.Sub])
		}
		if changed {
			for _, d := range dependents[lhs] {
				if !inQueue[d] {
					inQueue[d] = true
					queue.push(d)
				}
			}
		}
	}
}

// solveL2Restricted runs the level-2 worklist over the closure's
// constraints: cross terms are folded once (level 1 is solved), then
// pair unions propagate.
func (sol *Solution) solveL2Restricted(inClosure []bool) {
	s := sol.sys
	var active []int32
	for ci, c := range s.L2s {
		if inClosure[s.PairVarOwner[c.LHS]] {
			active = append(active, int32(ci))
		}
	}

	dependents := sol.scratch.dependents(len(s.PairVarNames))
	for pos, ci := range active {
		for _, v := range s.L2s[ci].Pairs {
			dependents[v] = append(dependents[v], int32(pos))
		}
	}

	queue := &sol.scratch.wq
	queue.reset(len(active))
	inQueue := sol.scratch.flags(len(active))
	for pos, ci := range active {
		lhs := sol.pairVals[s.L2s[ci].LHS]
		for _, ct := range s.L2s[ci].Crosses {
			lhs.crossSym(ct.Const, sol.setVals[ct.Var], s.PhaseCode)
		}
		queue.push(int32(pos))
		inQueue[pos] = true
	}

	for !queue.empty() {
		pos := queue.pop()
		inQueue[pos] = false
		sol.Evaluations++
		sol.checkCancel()

		c := s.L2s[active[pos]]
		lhs := sol.pairVals[c.LHS]
		changed := false
		for _, v := range c.Pairs {
			if lhs.unionWith(sol.pairVals[v]) {
				changed = true
			}
		}
		if changed {
			for _, d := range dependents[c.LHS] {
				if !inQueue[d] {
					inQueue[d] = true
					queue.push(d)
				}
			}
		}
	}
}
