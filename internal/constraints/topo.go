package constraints

// Topological SCC solving (the "topo" strategy): classic fixpoint
// engineering applied to the paper's constraint system. All
// right-hand sides are monotone unions, so the least solution of each
// level is determined by reachability in the dependency graph over
// its variables: condense the graph's strongly connected components
// (every variable in a cycle provably has the same least value — each
// can reach the other, so their values mutually include each other),
// solve one representative per component, and propagate component by
// component in topological order. Each constraint is then evaluated at
// most once, against already-final inputs, instead of being iterated
// or re-queued; singleton components whose right-hand side is a single
// inflow are copy-elided entirely (their value is aliased, zero
// evaluations). The worst case drops from the worklist's
// O(passes × constraints) re-evaluations to one evaluation per
// constraint plus a linear Tarjan pass.

import (
	"fx10/internal/intset"
)

// graphCSR is a directed graph over nodes 0..nv-1 in compressed
// sparse row form: the out-neighbours of v are edges[off[v]:off[v+1]].
// Edges point in the direction values flow (source variable → the
// variable whose constraint reads it).
type graphCSR struct {
	off   []int32
	edges []int32
}

// tarjanSCC computes the strongly connected components of g
// (iteratively — constraint graphs reach tens of thousands of nodes,
// beyond any safe recursion budget). comp maps each node to its
// component id. Ids are assigned in reverse topological order of the
// condensation: every edge v→w with comp[v] != comp[w] has
// comp[w] < comp[v], so iterating ids from ncomp-1 down to 0 visits
// components sources-first, exactly the order single-pass propagation
// needs.
func tarjanSCC(nv int, g graphCSR) (comp []int32, ncomp int32) {
	comp = make([]int32, nv)
	index := make([]int32, nv) // 0 = unvisited, else DFS index+1
	low := make([]int32, nv)
	onStack := make([]bool, nv)
	stack := make([]int32, 0, nv)

	type frame struct {
		v  int32
		ei int32 // next out-edge offset to explore (absolute)
	}
	frames := make([]frame, 0, 64)
	var next int32

	for root := 0; root < nv; root++ {
		if index[root] != 0 {
			continue
		}
		next++
		index[root], low[root] = next, next
		stack = append(stack, int32(root))
		onStack[root] = true
		frames = append(frames, frame{v: int32(root), ei: g.off[root]})

		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			v := f.v
			if f.ei < g.off[v+1] {
				w := g.edges[f.ei]
				f.ei++
				if index[w] == 0 {
					next++
					index[w], low[w] = next, next
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w, ei: g.off[w]})
				} else if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
				continue
			}
			frames = frames[:len(frames)-1]
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = ncomp
					if w == v {
						break
					}
				}
				ncomp++
			}
			if len(frames) > 0 {
				p := &frames[len(frames)-1]
				if low[v] < low[p.v] {
					low[p.v] = low[v]
				}
			}
		}
	}
	return comp, ncomp
}

// memberCSR groups nodes by component: the members of component c are
// nodes[off[c]:off[c+1]].
func memberCSR(comp []int32, ncomp int32) graphCSR {
	off := make([]int32, ncomp+1)
	for _, c := range comp {
		off[c+1]++
	}
	for c := int32(1); c <= ncomp; c++ {
		off[c] += off[c-1]
	}
	nodes := make([]int32, len(comp))
	pos := make([]int32, ncomp)
	copy(pos, off[:ncomp])
	for v, c := range comp {
		nodes[pos[c]] = int32(v)
		pos[c]++
	}
	return graphCSR{off: off, edges: nodes}
}

// l1Graph builds the level-1 dependency machinery shared by the
// sequential (topo) and parallel (ptopo) condensation solvers:
// lhsL1[v] is the index of the L1 constraint defining v (every set
// variable is the LHS of exactly one; -1 guards the invariant),
// subSrc groups subset inflows by Sup in CSR form (the subset sources
// of v are subSrc.edges[subSrc.off[v]:subSrc.off[v+1]]), and g is the
// dependency graph with edges source → LHS.
func (s *System) l1Graph() (lhsL1 []int32, subSrc, g graphCSR) {
	nv := len(s.SetVarNames)
	lhsL1 = make([]int32, nv)
	for i := range lhsL1 {
		lhsL1[i] = -1
	}
	for ci, c := range s.L1s {
		lhsL1[c.LHS] = int32(ci)
	}

	subSrc = graphCSR{off: make([]int32, nv+1)}
	if len(s.Subsets) > 0 {
		for _, c := range s.Subsets {
			subSrc.off[c.Sup+1]++
		}
		for v := 1; v <= nv; v++ {
			subSrc.off[v] += subSrc.off[v-1]
		}
		subSrc.edges = make([]int32, len(s.Subsets))
		pos := make([]int32, nv)
		copy(pos, subSrc.off[:nv])
		for _, c := range s.Subsets {
			subSrc.edges[pos[c.Sup]] = int32(c.Sub)
			pos[c.Sup]++
		}
	}

	g = graphCSR{off: make([]int32, nv+1)}
	for _, c := range s.L1s {
		for _, v := range c.Vars {
			g.off[v+1]++
		}
	}
	for _, c := range s.Subsets {
		g.off[c.Sub+1]++
	}
	for v := 1; v <= nv; v++ {
		g.off[v] += g.off[v-1]
	}
	g.edges = make([]int32, g.off[nv])
	pos := make([]int32, nv)
	copy(pos, g.off[:nv])
	for _, c := range s.L1s {
		for _, v := range c.Vars {
			g.edges[pos[v]] = int32(c.LHS)
			pos[v]++
		}
	}
	for _, c := range s.Subsets {
		g.edges[pos[c.Sub]] = int32(c.Sup)
		pos[c.Sub]++
	}
	return lhsL1, subSrc, g
}

// solveTopoL1 computes the level-1 least solution by SCC condensation.
func (sol *Solution) solveTopoL1() {
	s := sol.sys
	nv := len(s.SetVarNames)
	if nv == 0 {
		return
	}
	n := s.P.NumLabels()

	lhsL1, subSrc, g := s.l1Graph()
	comp, ncomp := tarjanSCC(nv, g)
	members := memberCSR(comp, ncomp)

	// One final Set per variable, all drawn from a single slab: the
	// materialization below gives every variable a pointer-distinct
	// set, so callers never observe the internal aliasing.
	slab := intset.NewBatch(n, nv)
	nextSet := 0

	vals := make([]*intset.Set, ncomp) // component value (maybe aliased)
	owner := make([]int32, ncomp)      // var that owns vals, -1 if aliased
	for cid := range owner {
		owner[cid] = -1
	}

	for cid := ncomp - 1; cid >= 0; cid-- {
		ms := members.edges[members.off[cid]:members.off[cid+1]]
		// Copy elision: a singleton whose constraint contributes no
		// constant and draws from exactly one earlier component is
		// that component's value; alias it instead of copying.
		if len(ms) == 1 {
			if src, ok := s.l1SingleInflow(ms[0], cid, comp, lhsL1, subSrc); ok {
				vals[cid] = vals[src]
				continue
			}
		}
		val := slab[nextSet]
		nextSet++
		s.evalL1Comp(cid, ms, comp, lhsL1, subSrc, vals, val, &sol.Evaluations, &sol.cancel)
		vals[cid] = val
		owner[cid] = ms[0]
	}

	// Materialize: the owning variable keeps the component's set;
	// every other variable (SCC co-members and copy-elided aliases)
	// gets its own copy from the slab.
	for v := 0; v < nv; v++ {
		cid := comp[v]
		if owner[cid] == int32(v) {
			sol.setVals[v] = vals[cid]
			continue
		}
		cp := slab[nextSet]
		nextSet++
		cp.CopyFrom(vals[cid])
		sol.setVals[v] = cp
	}
}

// evalL1Comp evaluates every level-1 constraint of one component
// against the (final) values of its predecessor components,
// accumulating into val. Both condensation solvers call it — the
// sequential one with the Solution's own counter and cancel state,
// the parallel one with a worker's — so the per-component work, and
// hence the result and the Evaluations count, are identical by
// construction.
func (s *System) evalL1Comp(cid int32, ms []int32, comp, lhsL1 []int32, subSrc graphCSR, vals []*intset.Set, val *intset.Set, evals *int64, cancel *cancelState) {
	for _, m := range ms {
		if ci := lhsL1[m]; ci >= 0 {
			*evals++
			cancel.check()
			c := &s.L1s[ci]
			if c.Const != nil {
				val.UnionWith(c.Const)
			}
			for _, v := range c.Vars {
				if comp[v] != cid {
					val.UnionWith(vals[comp[v]])
				}
			}
		}
		for _, src := range subSrc.edges[subSrc.off[m]:subSrc.off[m+1]] {
			*evals++
			cancel.check()
			if comp[src] != cid {
				val.UnionWith(vals[comp[src]])
			}
		}
	}
}

// l1SingleInflow reports whether set variable m (a singleton
// component cid) is a pure copy of exactly one earlier component:
// no constant, no self-loop, and all variable inflows drawn from one
// component. Returns that component.
func (s *System) l1SingleInflow(m int32, cid int32, comp []int32, lhsL1 []int32, subSrc graphCSR) (int32, bool) {
	src := int32(-1)
	ci := lhsL1[m]
	if ci >= 0 {
		c := &s.L1s[ci]
		if c.Const != nil && !c.Const.Empty() {
			return 0, false
		}
		for _, v := range c.Vars {
			vc := comp[v]
			if vc == cid {
				return 0, false // self-loop: not a pure copy
			}
			if src == -1 {
				src = vc
			} else if src != vc {
				return 0, false
			}
		}
	}
	for _, sub := range subSrc.edges[subSrc.off[m]:subSrc.off[m+1]] {
		vc := comp[sub]
		if vc == cid {
			return 0, false
		}
		if src == -1 {
			src = vc
		} else if src != vc {
			return 0, false
		}
	}
	return src, src != -1
}

// solveTopoL2 computes the level-2 least solution by SCC condensation.
// Level-1 is final, so every cross term is a constant; the graph is
// over pair variables only. Pair values are sparse bags, and here the
// aliasing is kept (bags are never handed out by reference — PairValue
// densifies a copy), so a copy-elided chain of m variables shares one
// bag instead of duplicating it per variable.
func (sol *Solution) solveTopoL2() {
	s := sol.sys
	np := len(s.PairVarNames)
	if np == 0 {
		return
	}

	lhsL2, g := s.l2Graph()
	comp, ncomp := tarjanSCC(np, g)
	members := memberCSR(comp, ncomp)

	bags := make([]pairBag, ncomp)
	for cid := ncomp - 1; cid >= 0; cid-- {
		ms := members.edges[members.off[cid]:members.off[cid+1]]
		if len(ms) == 1 {
			if src, ok := s.l2SingleInflow(ms[0], cid, comp, lhsL2, sol.setVals); ok {
				bags[cid] = bags[src]
				continue
			}
		}
		bags[cid] = s.evalL2Comp(cid, ms, comp, lhsL2, sol.setVals, bags, &sol.Evaluations, &sol.cancel)
	}

	for v := 0; v < np; v++ {
		sol.pairVals[v] = bags[comp[v]]
	}
}

// l2Graph builds the level-2 dependency machinery shared by both
// condensation solvers: lhsL2[v] is the index of the L2 constraint
// defining v (-1 if none) and g has dependency edges source → LHS
// over pair variables only (level-1 is final by the time level-2
// runs, so cross terms contribute no edges).
func (s *System) l2Graph() (lhsL2 []int32, g graphCSR) {
	np := len(s.PairVarNames)
	lhsL2 = make([]int32, np)
	for i := range lhsL2 {
		lhsL2[i] = -1
	}
	for ci, c := range s.L2s {
		lhsL2[c.LHS] = int32(ci)
	}

	g = graphCSR{off: make([]int32, np+1)}
	for _, c := range s.L2s {
		for _, v := range c.Pairs {
			g.off[v+1]++
		}
	}
	for v := 1; v <= np; v++ {
		g.off[v] += g.off[v-1]
	}
	g.edges = make([]int32, g.off[np])
	pos := make([]int32, np)
	copy(pos, g.off[:np])
	for _, c := range s.L2s {
		for _, v := range c.Pairs {
			g.edges[pos[v]] = int32(c.LHS)
			pos[v]++
		}
	}
	return lhsL2, g
}

// evalL2Comp builds one component's pair bag from its cross terms and
// the (final) bags of its predecessor components. Shared by both
// condensation solvers, like evalL1Comp.
func (s *System) evalL2Comp(cid int32, ms []int32, comp, lhsL2 []int32, setVals []*intset.Set, bags []pairBag, evals *int64, cancel *cancelState) pairBag {
	// Pre-size the bag to the sum of its inflows so the map grows
	// once instead of rehashing per union.
	hint := 0
	for _, m := range ms {
		if ci := lhsL2[m]; ci >= 0 {
			for _, v := range s.L2s[ci].Pairs {
				if comp[v] != cid {
					hint += len(bags[comp[v]])
				}
			}
		}
	}
	bag := make(pairBag, hint)
	for _, m := range ms {
		ci := lhsL2[m]
		if ci < 0 {
			continue
		}
		*evals++
		cancel.check()
		c := &s.L2s[ci]
		for _, ct := range c.Crosses {
			bag.crossSym(ct.Const, setVals[ct.Var], s.PhaseCode)
		}
		for _, v := range c.Pairs {
			if comp[v] != cid {
				bag.unionWith(bags[comp[v]])
			}
		}
	}
	return bag
}

// l2SingleInflow reports whether pair variable m (a singleton
// component cid) is a pure copy of exactly one earlier component: no
// effective cross term (level-1 is final, so a cross with an empty
// operand is permanently empty), no self-loop, and all pair inflows
// from one component.
func (s *System) l2SingleInflow(m int32, cid int32, comp []int32, lhsL2 []int32, setVals []*intset.Set) (int32, bool) {
	ci := lhsL2[m]
	if ci < 0 {
		return 0, false
	}
	c := &s.L2s[ci]
	for _, ct := range c.Crosses {
		if ct.Const != nil && !ct.Const.Empty() && !setVals[ct.Var].Empty() {
			return 0, false
		}
	}
	src := int32(-1)
	for _, v := range c.Pairs {
		vc := comp[v]
		if vc == cid {
			return 0, false
		}
		if src == -1 {
			src = vc
		} else if src != vc {
			return 0, false
		}
	}
	return src, src != -1
}
