package constraints

// Valuation comparison: Theorems 5–6 say every solving strategy
// reaches the same least solution, and internal/engine's
// cross-strategy equivalence test checks that claim executably. The
// comparison must be on the raw valuation (every set and pair
// variable), not just on derived views like MainM, so that a strategy
// bug in an intermediate variable cannot hide behind an unchanged
// final answer.

// ValuationEqual reports whether sol and other assign bit-identical
// values to every set and pair variable. Both solutions must come
// from systems over the same program shape (same variable counts);
// solutions of differently-shaped systems compare unequal. Solver
// metrics (iterations, durations, allocations) are ignored.
func (sol *Solution) ValuationEqual(other *Solution) bool {
	if len(sol.setVals) != len(other.setVals) || len(sol.pairVals) != len(other.pairVals) {
		return false
	}
	for i, s := range sol.setVals {
		if !s.Equal(other.setVals[i]) {
			return false
		}
	}
	for i, b := range sol.pairVals {
		if !b.equal(other.pairVals[i]) {
			return false
		}
	}
	return true
}
