package constraints

import (
	"testing"

	"fx10/internal/labels"
	"fx10/internal/parser"
	"fx10/internal/progen"
	"fx10/internal/syntax"
)

// deltaSys generates the system for p in the given mode.
func deltaSys(p *syntax.Program, mode Mode) *System {
	return Generate(labels.Compute(p), mode)
}

// dirtyByHash diffs edited against base by method content hash,
// returning the dirty method IDs of edited — what engine.AnalyzeDelta
// feeds SolveDelta.
func dirtyByHash(base, edited *syntax.Program) []MethodID {
	prev := map[string]syntax.ProgramHash{}
	for mi, m := range base.Methods {
		prev[m.Name] = base.MethodHash(mi)
	}
	var dirty []MethodID
	for mi, m := range edited.Methods {
		if h, ok := prev[m.Name]; !ok || h != edited.MethodHash(mi) {
			dirty = append(dirty, mi)
		}
	}
	return dirty
}

// TestCallGraph checks the call-graph layer on a known shape.
func TestCallGraph(t *testing.T) {
	b := syntax.NewBuilder(4)
	b.MustAddMethod("g", b.Stmts(b.Skip("")))
	b.MustAddMethod("f", b.Stmts(b.Call("", "g")))
	b.MustAddMethod("main", b.Stmts(b.Call("", "f"), b.Call("", "g")))
	p := b.MustProgram()
	cg := NewCallGraph(p)

	g, _ := p.MethodIndex("g")
	f, _ := p.MethodIndex("f")
	main := p.MainIndex
	if got := cg.Callees(main); len(got) != 2 {
		t.Fatalf("main callees = %v, want f and g", got)
	}
	if got := cg.Callers(g); len(got) != 2 {
		t.Fatalf("g callers = %v, want f and main", got)
	}
	closure := cg.CallerClosure([]MethodID{g})
	for mi, in := range closure {
		if !in {
			t.Errorf("caller closure of g should include every method, missing %d", mi)
		}
	}
	closure = cg.CallerClosure([]MethodID{main})
	if closure[f] || closure[g] {
		t.Error("caller closure of main must not include its callees")
	}
}

// TestSystemPartition checks that every variable has an owner and the
// per-method variable lists cover the system exactly once.
func TestSystemPartition(t *testing.T) {
	for _, mode := range []Mode{ContextSensitive, ContextInsensitive} {
		p := progen.Generate(7, progen.Default())
		sys := deltaSys(p, mode)
		if sys.Calls == nil {
			t.Fatal("system has no call graph")
		}
		seenSet := 0
		for mi := range p.Methods {
			seenSet += len(sys.SetVarsOf(mi))
			for _, v := range sys.SetVarsOf(mi) {
				if sys.SetVarOwner[v] != mi {
					t.Fatalf("%v: set var %d listed under method %d but owned by %d", mode, v, mi, sys.SetVarOwner[v])
				}
			}
		}
		if seenSet != len(sys.SetVarOwner) {
			t.Fatalf("%v: per-method set-var lists cover %d of %d vars", mode, seenSet, len(sys.SetVarOwner))
		}
		seenPair := 0
		for mi := range p.Methods {
			seenPair += len(sys.PairVarsOf(mi))
		}
		if seenPair != len(sys.PairVarOwner) {
			t.Fatalf("%v: per-method pair-var lists cover %d of %d vars", mode, seenPair, len(sys.PairVarOwner))
		}
	}
}

// TestSolveDeltaEquivalence: across a seeded corpus of (program,
// single-method edit) pairs and both modes, SolveDelta must reproduce
// the from-scratch solution bit for bit.
func TestSolveDeltaEquivalence(t *testing.T) {
	for _, mode := range []Mode{ContextSensitive, ContextInsensitive} {
		for seed := int64(0); seed < 20; seed++ {
			p := progen.Generate(seed, progen.Default())
			prevSol := deltaSys(p, mode).Solve(Options{Worklist: true})
			for mi := range p.Methods {
				edited := progen.MutateMethod(p, mi, seed*31+int64(mi))
				sys := deltaSys(edited, mode)
				got, info := sys.SolveDelta(prevSol, dirtyByHash(p, edited))
				want := sys.Solve(Options{Worklist: true})
				if !got.ValuationEqual(want) {
					t.Fatalf("%v seed %d method %d: delta valuation differs (full=%v, closure=%v)\n%s",
						mode, seed, mi, info.Full, info.Closure, syntax.Print(edited))
				}
				if info.MethodsReused+info.MethodsResolved != len(edited.Methods) {
					t.Fatalf("%v seed %d: reused %d + resolved %d != %d methods",
						mode, seed, info.MethodsReused, info.MethodsResolved, len(edited.Methods))
				}
			}
		}
	}
}

// TestSolveDeltaStrictSubset: editing a leaf method of a fan-out
// program must not re-solve untouched siblings (context-sensitively
// the closure is the edited method plus its transitive callers).
func TestSolveDeltaStrictSubset(t *testing.T) {
	build := func(extra bool) *syntax.Program {
		b := syntax.NewBuilder(4)
		b.MustAddMethod("leaf", b.Stmts(b.Async("", b.Stmts(b.Skip("")))))
		instrs := []syntax.Instr{b.Async("", b.Stmts(b.Skip(""))), b.Skip("")}
		if extra {
			instrs = append(instrs, b.Skip(""))
		}
		b.MustAddMethod("edited", b.Stmts(instrs...))
		b.MustAddMethod("main", b.Stmts(
			b.Finish("", b.Stmts(b.Call("", "leaf"), b.Call("", "edited"))),
		))
		return b.MustProgram()
	}
	base, edited := build(false), build(true)
	prevSol := deltaSys(base, ContextSensitive).Solve(Options{Worklist: true})
	sys := deltaSys(edited, ContextSensitive)
	got, info := sys.SolveDelta(prevSol, dirtyByHash(base, edited))
	if info.Full {
		t.Fatal("delta fell back to a full solve")
	}
	leaf, _ := edited.MethodIndex("leaf")
	for _, mi := range info.Closure {
		if mi == leaf {
			t.Fatalf("closure %v includes the untouched leaf method", info.Closure)
		}
	}
	if info.MethodsReused == 0 {
		t.Fatal("no methods reused")
	}
	if !got.ValuationEqual(sys.Solve(Options{Worklist: true})) {
		t.Fatal("delta valuation differs from scratch")
	}
}

// TestSolveDeltaPhaseShift: an edit that only touches main can change
// an untouched helper's clock phases — here a second call site at a
// different phase joins the helper's entry phase to ⊤, un-pruning
// pairs the previous solve dropped. Reusing the helper's stale pruned
// values would be unsound; the phase-agreement check must pull it into
// the dirty closure and reproduce the scratch solution bit for bit.
func TestSolveDeltaPhaseShift(t *testing.T) {
	const helper = `
void work() {
  WC: clocked async {
    WA: a[0] = 1;
    WN: next;
    WB: a[1] = 2;
  }
  WD: a[2] = 3;
  WM: next;
  WE: a[3] = 4;
}
`
	base := parser.MustParse("array 8;\n" + helper + `
void main() {
  F1: work();
}
`)
	edited := parser.MustParse("array 8;\n" + helper + `
void main() {
  F1: work();
  MN: next;
  F2: work();
}
`)

	// Vacuity guard: the phase shift really changes the helper's pairs.
	// At a single phase-0 call site WB (phase 1) and WD (phase 0) are
	// serialized by the barrier; with the entry phase joined to ⊤ the
	// pair must come back.
	baseM := deltaSys(base, ContextSensitive).Solve(Options{}).MainM()
	wb, _ := base.LabelByName("WB")
	wd, _ := base.LabelByName("WD")
	if baseM.Has(int(wb), int(wd)) {
		t.Fatal("base solve did not prune the cross-phase pair (WB, WD)")
	}
	editM := deltaSys(edited, ContextSensitive).Solve(Options{}).MainM()
	wb2, _ := edited.LabelByName("WB")
	wd2, _ := edited.LabelByName("WD")
	if !editM.Has(int(wb2), int(wd2)) {
		t.Fatal("edited scratch solve should keep (WB, WD): helper entry phase is ⊤")
	}

	for _, mode := range []Mode{ContextSensitive, ContextInsensitive} {
		prevSol := deltaSys(base, mode).Solve(Options{Worklist: true})
		sys := deltaSys(edited, mode)
		got, info := sys.SolveDelta(prevSol, dirtyByHash(base, edited))
		want := sys.Solve(Options{Worklist: true})
		if !got.ValuationEqual(want) {
			t.Fatalf("%v: delta valuation differs after phase-shifting edit (full=%v, closure=%v)",
				mode, info.Full, info.Closure)
		}
		work, _ := edited.MethodIndex("work")
		inClosure := false
		for _, mi := range info.Closure {
			if mi == work {
				inClosure = true
			}
		}
		if !info.Full && !inClosure {
			t.Fatalf("%v: helper with shifted phases was reused (closure=%v)", mode, info.Closure)
		}
	}
}

// TestSolveDeltaFallbacks: a missing or incompatible previous solution
// degrades to a full solve, never to a wrong answer.
func TestSolveDeltaFallbacks(t *testing.T) {
	p := progen.Generate(3, progen.Default())
	sys := deltaSys(p, ContextSensitive)
	sol, info := sys.SolveDelta(nil, nil)
	if !info.Full {
		t.Error("nil previous solution should force a full solve")
	}
	if !sol.ValuationEqual(sys.Solve(Options{Worklist: true})) {
		t.Error("fallback solution differs from scratch")
	}

	// Mode mismatch: a CI solution cannot seed a CS delta.
	ciSol := deltaSys(p, ContextInsensitive).Solve(Options{Worklist: true})
	_, info = sys.SolveDelta(ciSol, nil)
	if !info.Full {
		t.Error("mode mismatch should force a full solve")
	}
}
