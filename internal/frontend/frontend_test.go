package frontend

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fx10/internal/condensed"
)

func TestLookup(t *testing.T) {
	for _, lang := range []string{"x10", "go", "golang", " Go ", "X10"} {
		f, err := Lookup(lang)
		if err != nil {
			t.Errorf("Lookup(%q): %v", lang, err)
			continue
		}
		if f.Name() != "x10" && f.Name() != "go" {
			t.Errorf("Lookup(%q) = %q", lang, f.Name())
		}
	}
	_, err := Lookup("rust")
	var ue *UnknownLanguageError
	if !errors.As(err, &ue) {
		t.Fatalf("Lookup(rust) = %v, want *UnknownLanguageError", err)
	}
	if len(ue.Known) == 0 || !strings.Contains(ue.Error(), "go") {
		t.Fatalf("error does not list known languages: %v", ue)
	}
}

func TestNames(t *testing.T) {
	names := Names()
	want := []string{"go", "x10"}
	if len(names) != len(want) {
		t.Fatalf("Names() = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names() = %v, want %v (sorted)", names, want)
		}
	}
}

func TestDetect(t *testing.T) {
	cases := []struct {
		path, want string
	}{
		{"prog.x10", "x10"},
		{"dir/main.go", "go"},
	}
	for _, tc := range cases {
		f, err := Detect(tc.path, "")
		if err != nil {
			t.Errorf("Detect(%q): %v", tc.path, err)
			continue
		}
		if f.Name() != tc.want {
			t.Errorf("Detect(%q) = %q, want %q", tc.path, f.Name(), tc.want)
		}
	}
	for _, path := range []string{"-", "", "prog.txt", "prog.fx10"} {
		_, err := Detect(path, "whatever")
		var ae *AmbiguousInputError
		if !errors.As(err, &ae) {
			t.Errorf("Detect(%q) = %v, want *AmbiguousInputError", path, err)
		}
	}
}

func TestLowerParseErrorCarriesLang(t *testing.T) {
	_, _, err := Lower("go", "", "not go")
	var pe *ParseError
	if !errors.As(err, &pe) || pe.Lang != "go" {
		t.Fatalf("Lower(go, bad) = %v, want *ParseError{Lang: go}", err)
	}
	_, _, err = Lower("", "bad.x10", "void broken() { async {")
	if !errors.As(err, &pe) || pe.Lang != "x10" {
		t.Fatalf("Lower(detected x10, bad) = %v, want *ParseError{Lang: x10}", err)
	}
}

func TestStatsCoverage(t *testing.T) {
	if c := (Stats{}).Coverage(); c != 1 {
		t.Fatalf("empty coverage = %v, want 1", c)
	}
	s := Stats{Stmts: 4, Dropped: []Diagnostic{{Construct: "select"}}}
	if c := s.Coverage(); c != 0.75 {
		t.Fatalf("coverage = %v, want 0.75", c)
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Line: 3, Construct: "library call", Detail: "fmt.Println"}
	if got := d.String(); got != "line 3: library call fmt.Println" {
		t.Fatalf("String() = %q", got)
	}
	if got := (Diagnostic{Construct: "select"}).String(); got != "select" {
		t.Fatalf("String() = %q", got)
	}
}

// TestContractOnTrickyCorpus is the front-end contract test over the
// shared tricky corpus (testdata/tricky): every file must detect by
// extension, lower without error through the registry, survive the
// condensed→core lowering, and report honest stats (Stmts > 0,
// coverage in [0, 1]).
func TestContractOnTrickyCorpus(t *testing.T) {
	dir := "../../testdata/tricky"
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range entries {
		path := filepath.Join(dir, e.Name())
		t.Run(e.Name(), func(t *testing.T) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			u, st, err := Lower("", path, string(data))
			if err != nil {
				t.Fatalf("Lower: %v", err)
			}
			if st.Stmts <= 0 {
				t.Fatalf("stats: %+v", st)
			}
			if c := st.Coverage(); c < 0 || c > 1 {
				t.Fatalf("coverage out of range: %v", c)
			}
			p, err := condensed.Lower(u)
			if err != nil {
				t.Fatalf("condensed.Lower: %v", err)
			}
			if p.Main() == nil {
				t.Fatal("lowered program has no main")
			}
		})
		n++
	}
	if n < 4 {
		t.Fatalf("corpus has only %d files", n)
	}
}
