// Package frontend is the language boundary of the analysis
// pipeline: every source language that can be lowered to the paper's
// condensed form (Figure 7) registers a Frontend here, and every
// consumer — the CLIs, the daemon, the fuzzer, the benchmarks — goes
// through Lookup/Detect instead of importing a parser directly.
//
// A Frontend owns exactly one job: turn source text into a
// *condensed.Unit plus lowering statistics. What the front end cannot
// express in the calculus it must drop *conservatively* — lowering an
// unknown construct to skip (never inventing an ordering edge such as
// finish) keeps the downstream MHP analysis sound, in the spirit of
// Might & Van Horn's conservative summaries for constructs outside
// the modeled language. Each such drop is reported as a Diagnostic so
// callers can measure lowering coverage.
package frontend

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"fx10/internal/condensed"
)

// Diagnostic records one source construct the front end could not
// express in the condensed form and therefore lowered conservatively
// (to skip, or dropped entirely when it is pure bookkeeping).
type Diagnostic struct {
	Line      int    `json:"line,omitempty"` // 1-based source line, 0 if unknown
	Construct string `json:"construct"`      // e.g. "channel send", "library call"
	Detail    string `json:"detail,omitempty"`
}

func (d Diagnostic) String() string {
	s := d.Construct
	if d.Detail != "" {
		s += " " + d.Detail
	}
	if d.Line > 0 {
		s = fmt.Sprintf("line %d: %s", d.Line, s)
	}
	return s
}

// Stats describes one lowering: how much source went in, how many
// statements the front end saw, and which constructs it dropped.
// Coverage (1 - len(Dropped)/Stmts) is the front end's honesty
// metric: a unit lowered with coverage 1.0 is modeled exactly; every
// dropped construct widens the static answer but never narrows it.
type Stats struct {
	LOC     int          // non-blank source lines
	Stmts   int          // statements the front end visited
	Dropped []Diagnostic // conservatively-lowered constructs
}

// Coverage is the fraction of visited statements lowered faithfully.
func (s Stats) Coverage() float64 {
	if s.Stmts == 0 {
		return 1
	}
	return 1 - float64(len(s.Dropped))/float64(s.Stmts)
}

// Frontend lowers one source language to the condensed form.
type Frontend interface {
	// Name is the language key used by -lang flags and the
	// server's "language" field (e.g. "x10", "go").
	Name() string
	// Detect reports whether this front end claims the input,
	// judging by path (extension) and, if needed, source text.
	Detect(path, src string) bool
	// Lower parses src and produces a condensed unit. Parse
	// failures are returned wrapped in *ParseError by Lookup'd
	// callers via the registry adapters.
	Lower(src string) (*condensed.Unit, Stats, error)
}

// ParseError wraps a front end's parse failure so CLI exit-code
// policy (parse → 2) can classify it without knowing the language.
type ParseError struct {
	Lang string
	Err  error
}

func (e *ParseError) Error() string { return fmt.Sprintf("%s: %v", e.Lang, e.Err) }
func (e *ParseError) Unwrap() error { return e.Err }

// UnknownLanguageError is returned by Lookup for an unregistered
// language name. CLIs map it to exit 2 (input error).
type UnknownLanguageError struct {
	Lang  string
	Known []string
}

func (e *UnknownLanguageError) Error() string {
	return fmt.Sprintf("unknown language %q (known: %s)", e.Lang, strings.Join(e.Known, ", "))
}

// AmbiguousInputError is returned by Detect when zero or more than
// one front end claims the input — typically stdin with no extension.
// CLIs map it to exit 2 and tell the user to pass -lang.
type AmbiguousInputError struct {
	Path   string
	Claims []string // names of claiming front ends; empty if none
}

func (e *AmbiguousInputError) Error() string {
	if len(e.Claims) == 0 {
		return fmt.Sprintf("cannot detect a front end for %q; pass -lang (%s)", e.Path, strings.Join(Names(), ", "))
	}
	return fmt.Sprintf("input %q matches several front ends (%s); pass -lang to disambiguate",
		e.Path, strings.Join(e.Claims, ", "))
}

var (
	mu       sync.RWMutex
	registry = map[string]Frontend{}
	aliases  = map[string]string{}
)

// Register adds a front end under its Name. Extra aliases (e.g.
// "fx10" for the x10 front end) may be registered with RegisterAlias.
// Register panics on duplicates: front ends are wired at init time
// and a collision is a programming error.
func Register(f Frontend) {
	mu.Lock()
	defer mu.Unlock()
	name := f.Name()
	if _, dup := registry[name]; dup {
		panic("frontend: duplicate registration of " + name)
	}
	registry[name] = f
}

// RegisterAlias makes alias resolve to the front end named canonical.
func RegisterAlias(alias, canonical string) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := registry[canonical]; !ok {
		panic("frontend: alias " + alias + " for unregistered " + canonical)
	}
	aliases[alias] = canonical
}

// Lookup resolves a language name (or alias) to its front end.
func Lookup(lang string) (Frontend, error) {
	mu.RLock()
	defer mu.RUnlock()
	name := strings.ToLower(strings.TrimSpace(lang))
	if canon, ok := aliases[name]; ok {
		name = canon
	}
	if f, ok := registry[name]; ok {
		return f, nil
	}
	return nil, &UnknownLanguageError{Lang: lang, Known: namesLocked()}
}

// Names returns the registered canonical front-end names, sorted.
func Names() []string {
	mu.RLock()
	defer mu.RUnlock()
	return namesLocked()
}

func namesLocked() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Detect picks the unique front end claiming (path, src). If none or
// several claim it, the error is an *AmbiguousInputError (exit 2 in
// the CLIs, with a hint to pass -lang).
func Detect(path, src string) (Frontend, error) {
	mu.RLock()
	defer mu.RUnlock()
	var claims []Frontend
	for _, name := range namesLocked() {
		if f := registry[name]; f.Detect(path, src) {
			claims = append(claims, f)
		}
	}
	if len(claims) == 1 {
		return claims[0], nil
	}
	names := make([]string, len(claims))
	for i, f := range claims {
		names[i] = f.Name()
	}
	return nil, &AmbiguousInputError{Path: path, Claims: names}
}

// Lower is the one-call convenience: resolve lang (or detect from
// path when lang is empty) and lower src. Parse failures come back
// as *ParseError so callers can classify them uniformly.
func Lower(lang, path, src string) (*condensed.Unit, Stats, error) {
	var f Frontend
	var err error
	if lang != "" {
		f, err = Lookup(lang)
	} else {
		f, err = Detect(path, src)
	}
	if err != nil {
		return nil, Stats{}, err
	}
	u, stats, err := f.Lower(src)
	if err != nil {
		return nil, Stats{}, &ParseError{Lang: f.Name(), Err: err}
	}
	return u, stats, nil
}
