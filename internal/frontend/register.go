package frontend

import (
	"strings"

	"fx10/internal/condensed"
	"fx10/internal/gofront"
	"fx10/internal/x10"
)

// The built-in front ends register here, at the boundary, so the
// language packages themselves stay free of registry knowledge (and
// of each other).
func init() {
	Register(x10Front{})
	Register(goFront{})
	RegisterAlias("golang", "go")
}

// x10Front adapts internal/x10 (the X10-subset parser) to the
// boundary. Library calls — calls to methods not defined in the unit
// — are resolved to skip, the paper implementation's behavior, and
// reported as dropped constructs.
type x10Front struct{}

func (x10Front) Name() string { return "x10" }

func (x10Front) Detect(path, _ string) bool { return strings.HasSuffix(path, ".x10") }

func (x10Front) Lower(src string) (*condensed.Unit, Stats, error) {
	u, st, err := x10.Parse(src)
	if err != nil {
		return nil, Stats{}, err
	}
	c := u.NodeCounts()
	stats := Stats{
		LOC: st.LOC,
		// Statements are the materialized nodes: everything but the
		// implicit End terminators and the Method nodes themselves.
		Stmts: c.Total - c.Of(condensed.End) - c.Of(condensed.Method),
	}
	for _, name := range x10.ResolveCallsNamed(u) {
		stats.Dropped = append(stats.Dropped, Diagnostic{Construct: "library call", Detail: name})
	}
	return u, stats, nil
}

// goFront adapts internal/gofront (the restricted-Go front end).
type goFront struct{}

func (goFront) Name() string { return "go" }

func (goFront) Detect(path, _ string) bool { return strings.HasSuffix(path, ".go") }

func (goFront) Lower(src string) (*condensed.Unit, Stats, error) {
	u, st, err := gofront.Lower(src)
	if err != nil {
		return nil, Stats{}, err
	}
	stats := Stats{LOC: st.LOC, Stmts: st.Stmts}
	for _, d := range st.Dropped {
		stats.Dropped = append(stats.Dropped, Diagnostic{Line: d.Line, Construct: d.Construct, Detail: d.Detail})
	}
	return u, stats, nil
}
