// Package difffuzz is the differential soundness fuzzer: it drives
// randomly generated FX10 programs (internal/progen) through three
// independent implementations of the may-happen-in-parallel question
// and checks that their answers form the lattice the paper's theorems
// promise:
//
//		observed ⊆ exact ⊆ static
//
//	  - observed: label pairs actually seen executing in parallel by the
//	    instrumented goroutine runtime (internal/runtime with
//	    Options.RecordParallel) under randomized schedules — a lower
//	    bound on the exact relation by construction;
//	  - exact: the exhaustive-interleaving relation of internal/explore,
//	    the ground truth MHP(p) of Theorem 2 (budget-bounded, so itself
//	    a lower bound when exploration is incomplete);
//	  - static: the type-inference relation M of the analysis engine,
//	    which Theorems 2–3 prove is a sound over-approximation.
//
// The static relation is computed under every registered solver
// strategy and the results must be bit-identical — the strategies
// implement one specification and any divergence is a solver bug.
//
// The gap static \ exact is the analysis' imprecision; Run reports it
// per program in a Figure-7-style summary table (FormatReport).
//
// On any violation a delta-debugging minimizer (Minimize) shrinks the
// offending program to a minimal reproducer, which WriteFailure
// persists under testdata/fuzz-failures/ for regression replay.
package difffuzz

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"sync"

	"fx10/internal/clocks"
	"fx10/internal/constraints"
	"fx10/internal/engine"
	"fx10/internal/explore"
	"fx10/internal/intset"
	"fx10/internal/parser"
	"fx10/internal/progen"
	"fx10/internal/syntax"

	fxruntime "fx10/internal/runtime"
)

// StaticFunc computes the static MHP relation of p under a named
// solver strategy. The default (EngineStatic) runs the production
// analysis engine; tests substitute deliberately broken
// implementations (UnsoundStatic) to prove the harness catches them.
type StaticFunc func(p *syntax.Program, strategy string) (*intset.PairSet, error)

// EngineStatic returns the production StaticFunc: one cache-free
// engine per strategy, created lazily and shared across calls.
func EngineStatic() StaticFunc {
	var mu sync.Mutex
	engines := map[string]*engine.Engine{}
	return func(p *syntax.Program, strategy string) (*intset.PairSet, error) {
		mu.Lock()
		e := engines[strategy]
		if e == nil {
			var err error
			// Caching is off: the fuzzer analyzes each program once
			// per strategy, and the minimizer must re-analyze every
			// shrunk candidate for real.
			e, err = engine.New(engine.Config{Strategy: strategy, CacheSize: -1})
			if err != nil {
				mu.Unlock()
				return nil, err
			}
			engines[strategy] = e
		}
		mu.Unlock()
		res, err := e.Analyze(engine.Job{Name: "difffuzz", Program: p, Mode: constraints.ContextSensitive})
		if err != nil {
			return nil, err
		}
		return res.M, nil
	}
}

// UnsoundStatic wraps base with a deliberate soundness bug: every
// pair involving the lowest label present in the result is dropped.
// The mutation self-test uses it to verify the harness detects the
// resulting exact ⊄ static violation and that the minimizer shrinks
// the witness program.
func UnsoundStatic(base StaticFunc) StaticFunc {
	return func(p *syntax.Program, strategy string) (*intset.PairSet, error) {
		m, err := base(p, strategy)
		if err != nil {
			return nil, err
		}
		drop := -1
		m.Each(func(i, j int) {
			if drop == -1 || i < drop {
				drop = i
			}
			if j < drop {
				drop = j
			}
		})
		if drop == -1 {
			return m, nil
		}
		out := intset.NewPairs(m.Universe())
		m.Each(func(i, j int) {
			if i != drop && j != drop {
				out.Add(i, j)
			}
		})
		return out, nil
	}
}

// Kind classifies a violation.
type Kind string

// The violation kinds, from most to least alarming.
const (
	// KindExactNotStatic: the exhaustive explorer found a pair the
	// static analysis misses — a Theorem 2/3 soundness bug.
	KindExactNotStatic Kind = "exact-not-in-static"
	// KindObservedNotStatic: the real runtime observed a pair the
	// static analysis misses — also a soundness bug, witnessed by an
	// actual execution.
	KindObservedNotStatic Kind = "observed-not-in-static"
	// KindObservedNotExact: the runtime observed a pair the explorer
	// proves impossible — an instrumentation or semantics bug. Only
	// checkable when exploration completed.
	KindObservedNotExact Kind = "observed-not-in-exact"
	// KindStrategyDivergence: two solver strategies disagree.
	KindStrategyDivergence Kind = "strategy-divergence"
	// KindDeltaDivergence: incremental re-analysis (engine.AnalyzeDelta
	// after a single-method mutation) differs from solving the mutated
	// program from scratch — a delta-invalidation bug.
	KindDeltaDivergence Kind = "delta-divergence"
	// KindProgress: the explorer visited a state violating Theorem 1
	// (a well-typed non-√ tree with no enabled step).
	KindProgress Kind = "progress-violation"
	// KindClockDeadlock: the clocked explorer found a deadlocked
	// interleaving. The clocked generator's rules make the corpus
	// deadlock-free by construction, so this is a generator or
	// semantics bug.
	KindClockDeadlock Kind = "clock-deadlock"
	// KindClockError: an interleaving hit a dynamic clock-use error
	// (next on an unregistered activity), which progen and
	// syntax.CheckClockUse rule out statically.
	KindClockError Kind = "clock-use-error"
	// KindError: an analysis or runtime call failed outright
	// (including recovered panics).
	KindError Kind = "error"
)

// Violation is one detected disagreement.
type Violation struct {
	Kind Kind
	// Seed is the progen seed that generated Program.
	Seed int64
	// Detail is a human-readable witness, e.g. the first offending
	// label pair.
	Detail string
	// Program is the generated program that exposed the violation.
	Program *syntax.Program
	// Minimized is the delta-debugged reproducer (nil unless
	// Config.Minimize was set and minimization made progress).
	Minimized *syntax.Program
	// File is where the reproducer was written (empty if no
	// FailureDir was configured).
	File string
}

func (v *Violation) String() string {
	return fmt.Sprintf("[%s] seed=%d: %s", v.Kind, v.Seed, v.Detail)
}

// ProgramStat is the per-program record of one differential check.
type ProgramStat struct {
	BaseSeed int64 // Config.Seeds entry this program came from
	Seed     int64 // derived progen seed
	Instrs   int   // instruction count
	States   int   // states visited by the explorer
	Complete bool  // explorer finished within budget
	Exact    int   // unordered exact pairs
	Static   int   // unordered static pairs
	Observed int   // unordered observed pairs (union over runs)
	// Precision is static − exact in unordered pairs: the analysis'
	// imprecision on this program. Only meaningful when Complete.
	Precision int
}

// Report is the outcome of a fuzzing sweep.
type Report struct {
	Programs   int
	Complete   int // programs whose exploration finished
	Strategies []string
	Stats      []ProgramStat
	Violations []*Violation
}

// Config configures Run. The zero value is filled with usable
// defaults; only Seeds is required.
type Config struct {
	// Seeds are the base seeds; each expands to N derived program
	// seeds.
	Seeds []int64
	// N is the number of programs per base seed (default 100).
	N int
	// Gen shapes the generated programs. The zero value selects
	// progen.Finite() (or progen.ClockedFinite() when Clocked is set),
	// whose programs always terminate and have finite state spaces.
	Gen progen.Config
	// Clocked selects the clocked corpus: the default Gen becomes
	// progen.ClockedFinite(). Independently of this flag, any program
	// that uses clocks is checked against the barrier-aware exact
	// relation (clocks.Explore) and observed pairs come from the
	// clocked reference interpreter — the clock-erased relations are
	// strict supersets and would misreport the analysis' phase pruning
	// as a soundness bug.
	Clocked bool
	// MaxStates bounds the exhaustive exploration per program
	// (default 200_000). Exceeding it is not a violation: the exact
	// relation is then a lower bound and the observed ⊆ exact check
	// is skipped.
	MaxStates int
	// Runs is the number of recorded runtime executions per program
	// (default 3), each under a different schedule perturbation.
	Runs int
	// MaxSteps is the per-execution instruction budget (default
	// 100_000).
	MaxSteps int64
	// Parallel bounds worker concurrency (default GOMAXPROCS).
	Parallel int
	// Strategies are the solver strategies to cross-check (default:
	// all registered, i.e. engine.Strategies()).
	Strategies []string
	// Static computes the static relation (default EngineStatic()).
	Static StaticFunc
	// Frontends enables the cross-front-end oracle: each (unclocked)
	// program is rendered as X10 and as Go source, lowered through
	// both front ends, and the per-strategy MHP reports must be
	// bit-identical; the runtime observer additionally checks
	// observed ⊆ static on the Go-lowered program. See CheckFrontends.
	Frontends bool
	// Incremental enables the incremental oracle: each program is
	// mutated in one seeded-random method and re-analyzed both
	// incrementally (engine.AnalyzeDelta) and from scratch under every
	// strategy and both modes; any valuation difference is a
	// KindDeltaDivergence violation.
	Incremental bool
	// Minimize enables delta-debugging of violating programs.
	Minimize bool
	// MinimizeBudget bounds candidate evaluations per minimization
	// (default 2000).
	MinimizeBudget int
	// FailureDir, when non-empty, receives one .fx10 reproducer file
	// per violation.
	FailureDir string
}

func (cfg Config) withDefaults() Config {
	if cfg.N <= 0 {
		cfg.N = 100
	}
	if (cfg.Gen == progen.Config{}) {
		if cfg.Clocked {
			cfg.Gen = progen.ClockedFinite()
		} else {
			cfg.Gen = progen.Finite()
		}
	}
	if cfg.MaxStates <= 0 {
		cfg.MaxStates = 200_000
	}
	if cfg.Runs <= 0 {
		cfg.Runs = 3
	}
	if cfg.MaxSteps <= 0 {
		cfg.MaxSteps = 100_000
	}
	if cfg.Parallel <= 0 {
		cfg.Parallel = runtime.GOMAXPROCS(0)
	}
	if len(cfg.Strategies) == 0 {
		cfg.Strategies = engine.Strategies()
	}
	if cfg.Static == nil {
		cfg.Static = EngineStatic()
	}
	if cfg.MinimizeBudget <= 0 {
		cfg.MinimizeBudget = 2000
	}
	return cfg
}

// Run executes the differential sweep: len(Seeds)×N generated
// programs, each checked on a worker pool. Violations are minimized
// (if configured) and written to FailureDir (if configured) after the
// sweep. The error is non-nil only for harness-level failures (e.g. an
// unwritable FailureDir); detected violations are reported in the
// Report, not as an error.
func Run(cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()

	type job struct {
		base, seed int64
	}
	var jobs []job
	for _, base := range cfg.Seeds {
		rng := rand.New(rand.NewSource(base))
		for i := 0; i < cfg.N; i++ {
			jobs = append(jobs, job{base: base, seed: rng.Int63()})
		}
	}

	type outcome struct {
		stat ProgramStat
		vs   []*Violation
	}
	results := make([]outcome, len(jobs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, cfg.Parallel)
	for idx := range jobs {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			j := jobs[idx]
			p := normalize(progen.Generate(j.seed, cfg.Gen))
			stat, vs := checkProgram(cfg, p, j.seed)
			stat.BaseSeed = j.base
			results[idx] = outcome{stat: stat, vs: vs}
		}(idx)
	}
	wg.Wait()

	rep := &Report{Strategies: cfg.Strategies}
	for _, out := range results {
		rep.Programs++
		if out.stat.Complete {
			rep.Complete++
		}
		rep.Stats = append(rep.Stats, out.stat)
		rep.Violations = append(rep.Violations, out.vs...)
	}

	for _, v := range rep.Violations {
		if cfg.Minimize && v.Kind != KindError {
			v.Minimized = Minimize(v.Program, cfg.reproduces(v.Kind, v.Seed), cfg.MinimizeBudget)
		}
		if cfg.FailureDir != "" {
			file, err := WriteFailure(cfg.FailureDir, v)
			if err != nil {
				return rep, err
			}
			v.File = file
		}
	}
	return rep, nil
}

// reproduces builds the minimizer predicate: does this candidate
// program still exhibit a violation of the same kind?
func (cfg Config) reproduces(kind Kind, seed int64) func(*syntax.Program) bool {
	cfg = cfg.withDefaults()
	return func(p *syntax.Program) bool {
		_, vs := checkProgram(cfg, p, seed)
		for _, v := range vs {
			if v.Kind == kind {
				return true
			}
		}
		return false
	}
}

// checkProgram runs the full differential check on one program:
// static under every strategy, exhaustive exploration, recorded
// runtime executions, then the lattice assertions.
func checkProgram(cfg Config, p *syntax.Program, seed int64) (stat ProgramStat, vs []*Violation) {
	stat.Seed = seed
	p.EachInstr(func(int, syntax.Instr) { stat.Instrs++ })
	fail := func(kind Kind, format string, args ...any) {
		vs = append(vs, &Violation{Kind: kind, Seed: seed, Detail: fmt.Sprintf(format, args...), Program: p})
	}
	defer func() {
		if r := recover(); r != nil {
			fail(KindError, "panic during differential check: %v", r)
		}
	}()

	// Static relation under every strategy; all must agree bitwise.
	statics := make([]*intset.PairSet, len(cfg.Strategies))
	for i, s := range cfg.Strategies {
		m, err := cfg.Static(p, s)
		if err != nil {
			fail(KindError, "static analysis (%s): %v", s, err)
			return stat, vs
		}
		statics[i] = m
	}
	static := statics[0]
	for i := 1; i < len(statics); i++ {
		if !statics[i].Equal(static) {
			fail(KindStrategyDivergence, "strategy %q: %d ordered pairs vs %q: %d (first diff %s)",
				cfg.Strategies[i], statics[i].Len(), cfg.Strategies[0], static.Len(),
				firstDiff(statics[i], static))
		}
	}
	stat.Static = unordered(static)

	// Incremental oracle: a seeded single-method mutation must
	// re-analyze to the same valuation incrementally as from scratch.
	if cfg.Incremental {
		vs = append(vs, checkIncremental(cfg, p, seed)...)
	}

	// Cross-front-end oracle: X10 and Go renderings of the program
	// must analyze bit-identically through their front ends.
	if cfg.Frontends {
		vs = append(vs, CheckFrontends(p, seed, cfg.Strategies)...)
	}

	// Exact relation by exhaustive interleaving search — under the
	// full barrier semantics for clocked programs (the erased relation
	// is a strict superset and would misreport the analysis' phase
	// pruning as a soundness bug).
	clocked := p.UsesClocks()
	var exactM *intset.PairSet
	var complete bool
	if clocked {
		res := clocks.Explore(p, nil, cfg.MaxStates)
		stat.States = res.States
		stat.Complete = res.Complete
		exactM, complete = res.MHP, res.Complete
		// Deadlock states and clock errors are local facts about
		// visited states: real even when exploration is truncated.
		if res.ClockErrors > 0 {
			fail(KindClockError, "%d interleavings hit a dynamic clock-use error among %d states",
				res.ClockErrors, res.States)
		}
		if res.Deadlocks > 0 {
			fail(KindClockDeadlock, "%d deadlocked interleavings among %d states", res.Deadlocks, res.States)
		}
	} else {
		res := explore.MHP(p, nil, cfg.MaxStates)
		stat.States = res.States
		stat.Complete = res.Complete
		exactM, complete = res.MHP, res.Complete
		if res.ProgressViolations > 0 {
			fail(KindProgress, "%d stuck states among %d visited", res.ProgressViolations, res.States)
		}
	}
	stat.Exact = unordered(exactM)
	// Even a truncated exploration only visits reachable states, so
	// every exact pair must be in the static relation regardless of
	// Complete (Theorem 2's containment direction).
	if !exactM.SubsetOf(static) {
		i, j, _ := firstMissing(exactM, static)
		fail(KindExactNotStatic, "exact pair (%s, %s) missing from static M (exact %d ⊄ static %d unordered pairs)",
			p.LabelName(syntax.Label(i)), p.LabelName(syntax.Label(j)), stat.Exact, stat.Static)
	}
	if complete {
		stat.Precision = stat.Static - stat.Exact
	}

	// Observed relation: union over randomized executions — the
	// clocked reference interpreter for clocked programs, the recorded
	// goroutine runtime (which erases clocks) otherwise. For the
	// goroutine runtime, alternate the goroutine bound to also
	// exercise the inline-degrade path.
	observed := intset.NewPairs(p.NumLabels())
	for run := 0; run < cfg.Runs; run++ {
		if clocked {
			res, err := clocks.Run(p, nil, seed+int64(run)*7919, int(cfg.MaxSteps))
			if err != nil && !errors.Is(err, clocks.ErrFuel) {
				fail(KindError, "clocked interpreter run %d: %v", run, err)
				return stat, vs
			}
			observed.UnionWith(res.Pairs)
			continue
		}
		opts := fxruntime.Options{
			RecordParallel: true,
			Seed:           seed + int64(run)*7919,
			MaxSteps:       cfg.MaxSteps,
		}
		if run%2 == 1 {
			opts.MaxGoroutines = 2
		}
		res, err := fxruntime.Run(p, nil, opts)
		if err != nil && !errors.Is(err, fxruntime.ErrFuelExhausted) {
			fail(KindError, "runtime run %d: %v", run, err)
			return stat, vs
		}
		observed.UnionWith(res.Observed)
	}
	stat.Observed = unordered(observed)

	if !observed.SubsetOf(static) {
		i, j, _ := firstMissing(observed, static)
		fail(KindObservedNotStatic, "observed pair (%s, %s) missing from static M",
			p.LabelName(syntax.Label(i)), p.LabelName(syntax.Label(j)))
	}
	if complete && !observed.SubsetOf(exactM) {
		i, j, _ := firstMissing(observed, exactM)
		fail(KindObservedNotExact, "observed pair (%s, %s) not in the complete exact relation",
			p.LabelName(syntax.Label(i)), p.LabelName(syntax.Label(j)))
	}
	return stat, vs
}

// checkIncremental is the incremental oracle: mutate one
// seeded-random method of p, then assert for every strategy and both
// analysis modes that engine.AnalyzeDelta over the base result equals
// a from-scratch analysis of the mutant bit for bit. The mutation is
// deterministic in (p, seed), so violations replay through the
// minimizer.
func checkIncremental(cfg Config, p *syntax.Program, seed int64) (vs []*Violation) {
	fail := func(kind Kind, format string, args ...any) {
		vs = append(vs, &Violation{Kind: kind, Seed: seed, Detail: fmt.Sprintf(format, args...), Program: p})
	}
	rng := rand.New(rand.NewSource(seed ^ 0x1e7a))
	mi := rng.Intn(len(p.Methods))
	edited := progen.MutateMethod(p, mi, rng.Int63())
	for _, s := range cfg.Strategies {
		for _, mode := range []constraints.Mode{constraints.ContextSensitive, constraints.ContextInsensitive} {
			// Cache off: the delta and scratch paths must both solve
			// for real.
			e, err := engine.New(engine.Config{Strategy: s, CacheSize: -1})
			if err != nil {
				fail(KindError, "incremental oracle (%s): %v", s, err)
				return vs
			}
			base, err := e.Analyze(engine.Job{Name: "difffuzz-base", Program: p, Mode: mode})
			if err != nil {
				fail(KindError, "incremental oracle base (%s, %v): %v", s, mode, err)
				continue
			}
			delta, err := e.AnalyzeDelta(base, edited)
			if err != nil {
				fail(KindError, "incremental oracle delta (%s, %v): %v", s, mode, err)
				continue
			}
			scratch, err := e.Analyze(engine.Job{Name: "difffuzz-scratch", Program: edited, Mode: mode})
			if err != nil {
				fail(KindError, "incremental oracle scratch (%s, %v): %v", s, mode, err)
				continue
			}
			if !delta.Sol.ValuationEqual(scratch.Sol) || !delta.M.Equal(scratch.M) {
				fail(KindDeltaDivergence,
					"strategy %q, mode %v: delta re-analysis after mutating method %q differs from scratch (first M diff %s)",
					s, mode, p.Methods[mi].Name, firstDiff(delta.M, scratch.M))
			}
		}
	}
	return vs
}

// normalize reprints and reparses p, so its label numbering matches
// what reloading a persisted reproducer produces (parser order:
// container labels before their bodies). Violations detected on a
// normalized program therefore replay identically from a .fx10 file.
func normalize(p *syntax.Program) *syntax.Program {
	q, err := parser.Parse(syntax.Print(p))
	if err != nil {
		return p
	}
	return q
}

// unordered counts the unordered pairs of a symmetric set.
func unordered(ps *intset.PairSet) int {
	n := 0
	ps.Each(func(i, j int) {
		if i <= j {
			n++
		}
	})
	return n
}

// firstMissing returns the first ordered pair of sub not in super.
func firstMissing(sub, super *intset.PairSet) (int, int, bool) {
	fi, fj, found := -1, -1, false
	sub.Each(func(i, j int) {
		if !found && !super.Has(i, j) {
			fi, fj, found = i, j, true
		}
	})
	return fi, fj, found
}

// firstDiff renders the first ordered pair on which a and b disagree.
func firstDiff(a, b *intset.PairSet) string {
	if i, j, ok := firstMissing(a, b); ok {
		return fmt.Sprintf("(%d,%d) only in former", i, j)
	}
	if i, j, ok := firstMissing(b, a); ok {
		return fmt.Sprintf("(%d,%d) only in latter", i, j)
	}
	return "none"
}

// FormatReport renders the sweep in the style of the paper's Figure 7
// table: one row per base seed with aggregate precision statistics,
// then a precision histogram and any violations.
func FormatReport(r *Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "differential fuzz: %d programs, %d explored completely, strategies: %s\n\n",
		r.Programs, r.Complete, strings.Join(r.Strategies, " "))

	type agg struct {
		programs, complete, states      int
		exact, static, observed, precis int
		maxPrecis                       int
	}
	perSeed := map[int64]*agg{}
	var order []int64
	for _, s := range r.Stats {
		a := perSeed[s.BaseSeed]
		if a == nil {
			a = &agg{}
			perSeed[s.BaseSeed] = a
			order = append(order, s.BaseSeed)
		}
		a.programs++
		a.states += s.States
		a.exact += s.Exact
		a.static += s.Static
		a.observed += s.Observed
		if s.Complete {
			a.complete++
			a.precis += s.Precision
			if s.Precision > a.maxPrecis {
				a.maxPrecis = s.Precision
			}
		}
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	fmt.Fprintf(&b, "%10s %6s %9s %9s %8s %8s %9s %10s %8s\n",
		"seed", "progs", "complete", "states", "exact", "static", "observed", "precision", "maxprec")
	for _, seed := range order {
		a := perSeed[seed]
		fmt.Fprintf(&b, "%10d %6d %9d %9d %8d %8d %9d %10d %8d\n",
			seed, a.programs, a.complete, a.states, a.exact, a.static, a.observed, a.precis, a.maxPrecis)
	}

	// Precision histogram over completely explored programs: how far
	// above ground truth the static analysis sits.
	buckets := []struct {
		name   string
		lo, hi int
		count  int
	}{
		{name: "exact (0)", lo: 0, hi: 0},
		{name: "1-2", lo: 1, hi: 2},
		{name: "3-5", lo: 3, hi: 5},
		{name: "6-10", lo: 6, hi: 10},
		{name: ">10", lo: 11, hi: 1 << 30},
	}
	for _, s := range r.Stats {
		if !s.Complete {
			continue
		}
		for i := range buckets {
			if s.Precision >= buckets[i].lo && s.Precision <= buckets[i].hi {
				buckets[i].count++
				break
			}
		}
	}
	b.WriteString("\nprecision (static − exact, unordered pairs) over completely explored programs:\n")
	for _, bk := range buckets {
		fmt.Fprintf(&b, "  %-10s %d\n", bk.name, bk.count)
	}

	if len(r.Violations) == 0 {
		b.WriteString("\nviolations: none — observed ⊆ exact ⊆ static held and all strategies agreed\n")
	} else {
		fmt.Fprintf(&b, "\nviolations: %d\n", len(r.Violations))
		for _, v := range r.Violations {
			fmt.Fprintf(&b, "  %s\n", v)
			if v.File != "" {
				fmt.Fprintf(&b, "    reproducer: %s\n", v.File)
			}
		}
	}
	return b.String()
}
