package difffuzz

import (
	"fx10/internal/parser"
	"fx10/internal/syntax"
)

// Minimize shrinks p while pred keeps holding, ddmin-style: each
// round generates candidate reductions (drop a method, delete an
// instruction, splice out a nesting level, inline a call, simplify an
// assignment, shrink the array), accepts the first candidate that
// still satisfies pred, and restarts from it. It stops at a local
// minimum or after budget pred evaluations, returning the smallest
// program found (p itself if nothing smaller reproduces).
//
// pred must hold on p; candidates that fail to build (e.g. by
// breaking call resolution) are skipped without consuming budget.
func Minimize(p *syntax.Program, pred func(*syntax.Program) bool, budget int) *syntax.Program {
	cur := fromProgram(p)
	best := p
	used := 0
	improved := true
	for improved && used < budget {
		improved = false
		for _, cand := range candidates(cur) {
			if used >= budget {
				break
			}
			cp, err := cand.toProgram()
			if err != nil {
				continue
			}
			used++
			if pred(cp) {
				cur, best = cand, cp
				improved = true
				break
			}
		}
	}
	return best
}

// CountInstrs returns the total number of instructions in p,
// including all nested bodies.
func CountInstrs(p *syntax.Program) int {
	n := 0
	p.EachInstr(func(int, syntax.Instr) { n++ })
	return n
}

// The minimizer works on a mutable mirror of the AST: syntax.Stmt
// spines are immutable and share labels, so shrinking edits are
// applied to this IR and a fresh Program (with fresh labels) is built
// per candidate.

type mInstr struct {
	kind    syntax.Kind
	d       int         // assign/while array index
	rhs     syntax.Expr // assign right-hand side
	callee  string      // call target
	place   int         // async place (Section 8 extension)
	clocked bool        // clocked async (Section 8 extension)
	body    []*mInstr   // while/async/finish body
}

type mMethod struct {
	name string
	body []*mInstr
}

type mProg struct {
	arrayLen int
	methods  []*mMethod
}

func fromProgram(p *syntax.Program) *mProg {
	m := &mProg{arrayLen: p.ArrayLen}
	for _, meth := range p.Methods {
		m.methods = append(m.methods, &mMethod{name: meth.Name, body: fromStmt(meth.Body)})
	}
	return m
}

func fromStmt(s *syntax.Stmt) []*mInstr {
	var out []*mInstr
	for cur := s; cur != nil; cur = cur.Next {
		mi := &mInstr{kind: cur.Instr.Kind()}
		switch i := cur.Instr.(type) {
		case *syntax.Assign:
			mi.d, mi.rhs = i.D, i.Rhs
		case *syntax.While:
			mi.d = i.D
			mi.body = fromStmt(i.Body)
		case *syntax.Async:
			mi.place, mi.clocked = i.Place, i.Clocked
			mi.body = fromStmt(i.Body)
		case *syntax.Finish:
			mi.body = fromStmt(i.Body)
		case *syntax.Call:
			mi.callee = i.Name
		}
		out = append(out, mi)
	}
	return out
}

func cloneSeq(seq []*mInstr) []*mInstr {
	out := make([]*mInstr, 0, len(seq))
	for _, in := range seq {
		c := *in
		c.body = cloneSeq(in.body)
		out = append(out, &c)
	}
	return out
}

func (m *mProg) clone() *mProg {
	c := &mProg{arrayLen: m.arrayLen}
	for _, meth := range m.methods {
		c.methods = append(c.methods, &mMethod{name: meth.name, body: cloneSeq(meth.body)})
	}
	return c
}

// count returns the number of instructions in pre-order, the
// numbering applyAt's index k refers to.
func (m *mProg) count() int {
	var n int
	var walk func(seq []*mInstr)
	walk = func(seq []*mInstr) {
		for _, in := range seq {
			n++
			walk(in.body)
		}
	}
	for _, meth := range m.methods {
		walk(meth.body)
	}
	return n
}

// toProgram rebuilds a syntax.Program. Empty sequences (produced by
// deletions) become a single skip, keeping statements non-empty as
// the grammar requires.
func (m *mProg) toProgram() (*syntax.Program, error) {
	b := syntax.NewBuilder(m.arrayLen)
	var build func(seq []*mInstr) *syntax.Stmt
	build = func(seq []*mInstr) *syntax.Stmt {
		if len(seq) == 0 {
			return b.Stmts(b.Skip(""))
		}
		instrs := make([]syntax.Instr, 0, len(seq))
		for _, in := range seq {
			switch in.kind {
			case syntax.KindSkip:
				instrs = append(instrs, b.Skip(""))
			case syntax.KindAssign:
				instrs = append(instrs, b.Assign("", in.d, in.rhs))
			case syntax.KindWhile:
				instrs = append(instrs, b.While("", in.d, build(in.body)))
			case syntax.KindAsync:
				switch {
				case in.clocked:
					instrs = append(instrs, b.ClockedAsync("", build(in.body)))
				case in.place != 0:
					instrs = append(instrs, b.AsyncAt("", in.place, build(in.body)))
				default:
					instrs = append(instrs, b.Async("", build(in.body)))
				}
			case syntax.KindFinish:
				instrs = append(instrs, b.Finish("", build(in.body)))
			case syntax.KindCall:
				instrs = append(instrs, b.Call("", in.callee))
			case syntax.KindNext:
				instrs = append(instrs, b.Next(""))
			}
		}
		return b.Stmts(instrs...)
	}
	for _, meth := range m.methods {
		if err := b.AddMethod(meth.name, build(meth.body)); err != nil {
			return nil, err
		}
	}
	p, err := b.Program()
	if err != nil {
		return nil, err
	}
	// Normalize through a print → reparse round trip: the builder
	// numbers nested-body labels before their container, the parser
	// numbers the container first. Reproducers are persisted as
	// source text, so canonicalizing to parser numbering makes a
	// reloaded .fx10 file label-identical to the program the
	// violation was minimized against.
	return parser.Parse(syntax.Print(p))
}

// An editOp rewrites the instruction at one pre-order position: it
// returns the replacement sequence (possibly empty) and whether it
// applies to this instruction at all.
type editOp func(m *mProg, in *mInstr) ([]*mInstr, bool)

// opDelete removes the instruction (and its whole body).
func opDelete(_ *mProg, _ *mInstr) ([]*mInstr, bool) {
	return nil, true
}

// opUnnest splices a while/async/finish body into the enclosing
// sequence, removing one nesting level.
func opUnnest(_ *mProg, in *mInstr) ([]*mInstr, bool) {
	if in.body == nil {
		return nil, false
	}
	return in.body, true
}

// opInline replaces a call with a copy of the callee's body.
func opInline(m *mProg, in *mInstr) ([]*mInstr, bool) {
	if in.kind != syntax.KindCall {
		return nil, false
	}
	for _, meth := range m.methods {
		if meth.name == in.callee {
			return cloneSeq(meth.body), true
		}
	}
	return nil, false
}

// opZeroRhs simplifies an assignment's right-hand side to the
// constant 0.
func opZeroRhs(_ *mProg, in *mInstr) ([]*mInstr, bool) {
	if in.kind != syntax.KindAssign {
		return nil, false
	}
	if c, ok := in.rhs.(syntax.Const); ok && c.C == 0 {
		return nil, false
	}
	repl := *in
	repl.rhs = syntax.Const{C: 0}
	return []*mInstr{&repl}, true
}

// applyAt clones m and applies op to the instruction at pre-order
// index k. It returns nil when op does not apply there.
func (m *mProg) applyAt(k int, op editOp) *mProg {
	c := m.clone()
	ctr := 0
	applied := false
	var walk func(seq []*mInstr) []*mInstr
	walk = func(seq []*mInstr) []*mInstr {
		out := make([]*mInstr, 0, len(seq))
		for _, in := range seq {
			mine := ctr
			ctr++
			if mine == k {
				if rep, ok := op(c, in); ok {
					applied = true
					out = append(out, rep...)
					continue
				}
				out = append(out, in)
				continue
			}
			in.body = walk(in.body)
			out = append(out, in)
		}
		return out
	}
	for _, meth := range c.methods {
		meth.body = walk(meth.body)
	}
	if !applied {
		return nil
	}
	return c
}

// dropMethod removes method mi and deletes every call to it.
func (m *mProg) dropMethod(mi int) *mProg {
	c := m.clone()
	name := c.methods[mi].name
	c.methods = append(c.methods[:mi], c.methods[mi+1:]...)
	var strip func(seq []*mInstr) []*mInstr
	strip = func(seq []*mInstr) []*mInstr {
		out := make([]*mInstr, 0, len(seq))
		for _, in := range seq {
			if in.kind == syntax.KindCall && in.callee == name {
				continue
			}
			in.body = strip(in.body)
			out = append(out, in)
		}
		return out
	}
	for _, meth := range c.methods {
		meth.body = strip(meth.body)
	}
	return c
}

// shrinkArray reduces the array length by one, remapping every index
// into the smaller range.
func (m *mProg) shrinkArray() *mProg {
	c := m.clone()
	c.arrayLen--
	var remap func(seq []*mInstr)
	remap = func(seq []*mInstr) {
		for _, in := range seq {
			in.d %= c.arrayLen
			if p, ok := in.rhs.(syntax.Plus); ok {
				in.rhs = syntax.Plus{D: p.D % c.arrayLen}
			}
			remap(in.body)
		}
	}
	for _, meth := range c.methods {
		remap(meth.body)
	}
	return c
}

// candidates generates one round of reductions, biggest first: whole
// methods, then per-instruction deletions, unnestings, call inlinings
// and assignment simplifications, then the array shrink.
func candidates(m *mProg) []*mProg {
	var out []*mProg
	for mi := range m.methods {
		if m.methods[mi].name != "main" {
			out = append(out, m.dropMethod(mi))
		}
	}
	n := m.count()
	for _, op := range []editOp{opDelete, opUnnest, opInline, opZeroRhs} {
		for k := 0; k < n; k++ {
			if c := m.applyAt(k, op); c != nil {
				out = append(out, c)
			}
		}
	}
	if m.arrayLen > 1 {
		out = append(out, m.shrinkArray())
	}
	return out
}
