package difffuzz

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"fx10/internal/parser"
	"fx10/internal/syntax"
)

// WriteFailure persists a violation's reproducer (the minimized
// program when available, the original otherwise) as a commented
// .fx10 file in dir, creating dir if needed. The header comments
// record the violation's kind, seed and witness; the parser ignores
// them, so the file replays directly. It returns the written path.
func WriteFailure(dir string, v *Violation) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	p, provenance := v.Program, "original program"
	if v.Minimized != nil {
		p, provenance = v.Minimized, "minimized reproducer"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "// difffuzz %s\n", provenance)
	fmt.Fprintf(&b, "// kind:   %s\n", v.Kind)
	fmt.Fprintf(&b, "// seed:   %d\n", v.Seed)
	fmt.Fprintf(&b, "// detail: %s\n", strings.ReplaceAll(v.Detail, "\n", " "))
	b.WriteString("// replayed by internal/difffuzz TestFailureCorpusReplays.\n\n")
	b.WriteString(syntax.Print(p))
	path := filepath.Join(dir, fmt.Sprintf("%s-seed%d.fx10", v.Kind, v.Seed))
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// LoadCorpus parses every .fx10 file in dir, keyed by filename. A
// missing directory is an empty corpus, not an error.
func LoadCorpus(dir string) (map[string]*syntax.Program, error) {
	entries, err := os.ReadDir(dir)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	out := map[string]*syntax.Program{}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".fx10") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, err
		}
		p, err := parser.Parse(string(data))
		if err != nil {
			return nil, fmt.Errorf("difffuzz: corpus file %s: %w", e.Name(), err)
		}
		out[e.Name()] = p
	}
	return out, nil
}
