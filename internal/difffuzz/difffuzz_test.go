package difffuzz

import (
	"path/filepath"
	"strings"
	"testing"

	"fx10/internal/engine"
	"fx10/internal/intset"
	"fx10/internal/progen"
	"fx10/internal/syntax"
)

// TestSweepClean is the core differential property: on a sweep of
// generated programs, observed ⊆ exact ⊆ static holds, all solver
// strategies agree bitwise, and no progress violations occur.
func TestSweepClean(t *testing.T) {
	cfg := Config{Seeds: []int64{1}, N: 60, Runs: 2, MaxStates: 100_000, Incremental: true}
	if testing.Short() {
		cfg.N = 15
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Programs != cfg.N {
		t.Fatalf("programs = %d, want %d", rep.Programs, cfg.N)
	}
	for _, v := range rep.Violations {
		t.Errorf("violation: %s", v)
	}
	if rep.Complete == 0 {
		t.Error("no program explored completely; state budget too low for the generator config")
	}
	// Sanity on the stats: a finite-config sweep must see some real
	// parallelism end to end.
	var exact, static, observed int
	for _, s := range rep.Stats {
		exact += s.Exact
		static += s.Static
		observed += s.Observed
		if s.Complete && s.Precision < 0 {
			t.Errorf("seed %d: negative precision %d (static %d < exact %d)", s.Seed, s.Precision, s.Static, s.Exact)
		}
	}
	if observed == 0 || exact == 0 || static == 0 {
		t.Errorf("degenerate sweep: observed=%d exact=%d static=%d", observed, exact, static)
	}
	out := FormatReport(rep)
	for _, frag := range []string{"violations: none", "precision", "seed"} {
		if !strings.Contains(out, frag) {
			t.Errorf("report missing %q:\n%s", frag, out)
		}
	}
}

// TestSweepCleanClocked runs the differential property on the clocked
// corpus: observed (clocked interpreter) ⊆ exact (barrier-aware
// explorer) ⊆ static (phase-aware analysis), with no deadlocks or
// dynamic clock-use errors — the generator promises a clean corpus —
// and bit-identical answers across strategies and delta re-analysis.
func TestSweepCleanClocked(t *testing.T) {
	cfg := Config{Seeds: []int64{11}, N: 60, Runs: 2, MaxStates: 100_000, Clocked: true, Incremental: true}
	if testing.Short() {
		cfg.N = 15
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		t.Errorf("violation: %s\n%s", v, syntax.Print(v.Program))
	}
	if rep.Complete == 0 {
		t.Error("no program explored completely; state budget too low for the generator config")
	}
	var exact, static, observed int
	for _, s := range rep.Stats {
		exact += s.Exact
		static += s.Static
		observed += s.Observed
		if s.Complete && s.Precision < 0 {
			t.Errorf("seed %d: negative precision %d (static %d < exact %d)", s.Seed, s.Precision, s.Static, s.Exact)
		}
	}
	if observed == 0 || exact == 0 || static == 0 {
		t.Errorf("degenerate sweep: observed=%d exact=%d static=%d", observed, exact, static)
	}
}

// TestMutationSelfTest proves the harness catches soundness bugs: an
// engine wrapper that drops pairs from M must be detected, and the
// minimizer must shrink a witness to at most 10 instructions.
func TestMutationSelfTest(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Seeds:      []int64{7},
		N:          40,
		Runs:       2,
		MaxStates:  100_000,
		Static:     UnsoundStatic(EngineStatic()),
		Minimize:   true,
		FailureDir: dir,
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var caught *Violation
	for _, v := range rep.Violations {
		// Prefer an exact-not-in-static witness: its reproduction is
		// deterministic (no schedule randomness), so the replay check
		// below cannot flake.
		if v.Kind == KindExactNotStatic {
			caught = v
			break
		}
		if caught == nil && v.Kind == KindObservedNotStatic {
			caught = v
		}
	}
	if caught == nil {
		t.Fatalf("unsound static analysis not caught in %d programs; violations: %v", rep.Programs, rep.Violations)
	}
	if caught.Minimized == nil {
		t.Fatal("violation was not minimized")
	}
	if n := CountInstrs(caught.Minimized); n > 10 {
		t.Errorf("minimized reproducer has %d instructions, want ≤ 10:\n%s", n, syntax.Print(caught.Minimized))
	}
	if caught.File == "" {
		t.Fatal("no reproducer file written")
	}
	corpus, err := LoadCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(corpus) == 0 {
		t.Fatal("written corpus did not load")
	}
	// The caught violation's written reproducer must reload
	// label-identically and still trip the mutated analysis.
	reloaded, ok := corpus[filepath.Base(caught.File)]
	if !ok {
		t.Fatalf("reproducer %s not in loaded corpus", caught.File)
	}
	if caught.Kind == KindExactNotStatic && !cfg.reproduces(caught.Kind, caught.Seed)(reloaded) {
		t.Errorf("reloaded reproducer no longer reproduces:\n%s", syntax.Print(reloaded))
	}
}

// TestStrategyDivergenceCaught checks the cross-strategy oracle: a
// static function that answers differently per strategy must be
// flagged.
func TestStrategyDivergenceCaught(t *testing.T) {
	base := EngineStatic()
	// The second strategy's answer gains a bogus self-pair on label 0,
	// so it over-approximates (no soundness violation) yet differs
	// bitwise from the first strategy.
	skew := func(p *syntax.Program, strategy string) (*intset.PairSet, error) {
		m, err := base(p, strategy)
		if err != nil {
			return nil, err
		}
		if strategy == engine.Strategies()[1] {
			m = m.Clone()
			m.Add(0, 0)
		}
		return m, nil
	}
	rep, err := Run(Config{Seeds: []int64{3}, N: 5, Runs: 1, MaxStates: 50_000, Static: skew})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range rep.Violations {
		if v.Kind == KindStrategyDivergence {
			found = true
		}
	}
	if !found {
		t.Fatalf("divergent strategies not flagged; violations: %v", rep.Violations)
	}
}

// TestMinimizeTrivialPredicate drives the minimizer with a purely
// structural predicate: the result must still satisfy it and be far
// smaller than the input.
func TestMinimizeTrivialPredicate(t *testing.T) {
	var p *syntax.Program
	for seed := int64(0); ; seed++ {
		p = progen.Generate(seed, progen.Finite())
		if len(p.AsyncLabels()) > 0 && CountInstrs(p) >= 6 {
			break
		}
	}
	pred := func(q *syntax.Program) bool { return len(q.AsyncLabels()) > 0 }
	m := Minimize(p, pred, 1000)
	if !pred(m) {
		t.Fatal("minimized program lost the property")
	}
	if n := CountInstrs(m); n > 3 {
		t.Errorf("minimized to %d instructions, want ≤ 3 (async + body skip + padding):\n%s", n, syntax.Print(m))
	}
	if err := syntax.Validate(m); err != nil {
		t.Fatalf("minimized program invalid: %v", err)
	}
}

// TestIRRoundTrip: the minimizer's mutable IR must rebuild programs
// losslessly (modulo label names).
func TestIRRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		p := progen.Generate(seed, progen.Default())
		q, err := fromProgram(p).toProgram()
		if err != nil {
			t.Fatalf("seed %d: rebuild failed: %v", seed, err)
		}
		if got, want := CountInstrs(q), CountInstrs(p); got != want {
			t.Fatalf("seed %d: instruction count %d != %d", seed, got, want)
		}
		if got, want := len(q.Methods), len(p.Methods); got != want {
			t.Fatalf("seed %d: method count %d != %d", seed, got, want)
		}
		if q.ArrayLen != p.ArrayLen {
			t.Fatalf("seed %d: array length %d != %d", seed, q.ArrayLen, p.ArrayLen)
		}
	}
}

// TestFailureCorpusReplays re-checks every committed reproducer with
// the real engine: the lattice must hold on each (the corpus contains
// witnesses of deliberately broken analyses, which the production
// analysis must handle cleanly).
func TestFailureCorpusReplays(t *testing.T) {
	corpus, err := LoadCorpus("../../testdata/fuzz-failures")
	if err != nil {
		t.Fatal(err)
	}
	if len(corpus) == 0 {
		t.Skip("no committed fuzz failures")
	}
	cfg := Config{Runs: 2, MaxStates: 200_000}.withDefaults()
	for name, p := range corpus {
		_, vs := checkProgram(cfg, p, 0)
		for _, v := range vs {
			t.Errorf("%s: real engine violates on committed reproducer: %s", name, v)
		}
	}
}

// TestIncrementalOracleFullCalculus runs the incremental oracle on
// full-calculus programs (loops, recursion-free call chains) where the
// Finite-config sweep of TestSweepClean cannot reach: every seeded
// single-method mutation must re-analyze identically under every
// strategy and both modes.
func TestIncrementalOracleFullCalculus(t *testing.T) {
	cfg := Config{Strategies: engine.Strategies()}.withDefaults()
	for seed := int64(200); seed < 220; seed++ {
		p := normalize(progen.Generate(seed, progen.Default()))
		for _, v := range checkIncremental(cfg, p, seed) {
			t.Errorf("seed %d: %s", seed, v)
		}
	}
}
