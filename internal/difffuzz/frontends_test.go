package difffuzz

import (
	"math/rand"
	"testing"

	"fx10/internal/progen"
)

// TestCrossFrontendOracle is acceptance criterion 3 of the front-end
// boundary: ≥ 200 generated programs, rendered both as X10 and as Go
// and lowered through both front ends, must yield bit-identical MHP
// reports under every registered solver strategy, and the runtime
// observer must stay within the static relation on the Go-lowered
// programs.
func TestCrossFrontendOracle(t *testing.T) {
	n := 200
	if testing.Short() {
		n = 40
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < n; i++ {
		seed := rng.Int63()
		p := normalize(progen.Generate(seed, progen.Finite()))
		for _, v := range CheckFrontends(p, seed, nil) {
			t.Fatalf("program %d: %v", i, v)
		}
	}
}

// TestCrossFrontendOracleLoops re-runs the oracle on the full-calculus
// corpus (while loops enabled), where the Go rendering exercises `for`
// and the runtime runs are fuel-bounded.
func TestCrossFrontendOracleLoops(t *testing.T) {
	n := 60
	if testing.Short() {
		n = 15
	}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < n; i++ {
		seed := rng.Int63()
		p := normalize(progen.Generate(seed, progen.Default()))
		for _, v := range CheckFrontends(p, seed, nil) {
			t.Fatalf("program %d: %v", i, v)
		}
	}
}

// TestCrossFrontendSkipsClocked: clocked programs have no Go
// rendering; the oracle must skip them rather than report an error.
func TestCrossFrontendSkipsClocked(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 10; i++ {
		seed := rng.Int63()
		p := normalize(progen.Generate(seed, progen.ClockedFinite()))
		if !p.UsesClocks() {
			continue
		}
		if vs := CheckFrontends(p, seed, nil); len(vs) != 0 {
			t.Fatalf("clocked program %d: expected skip, got %v", i, vs[0])
		}
	}
}

// TestRunWithFrontendOracle wires the oracle through the Run
// config, the path `fx10 fuzz -frontends` uses.
func TestRunWithFrontendOracle(t *testing.T) {
	rep, err := Run(Config{Seeds: []int64{5}, N: 10, Frontends: true, Runs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 0 {
		t.Fatalf("violations: %v", rep.Violations[0])
	}
}
