package difffuzz

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"sync"

	"fx10/internal/condensed"
	"fx10/internal/constraints"
	"fx10/internal/engine"
	"fx10/internal/frontend"
	"fx10/internal/gofront"
	"fx10/internal/intset"
	"fx10/internal/mhp"
	"fx10/internal/syntax"
	"fx10/internal/x10"

	fxruntime "fx10/internal/runtime"
)

// KindFrontendDivergence: the same condensed unit, rendered as X10
// source and as Go source and pushed through the respective front
// ends, produced different MHP reports — a front-end (or renderer)
// bug: the boundary's contract is that the analysis cannot tell which
// language the program arrived in.
const KindFrontendDivergence Kind = "frontend-divergence"

// CheckFrontends is the cross-front-end oracle: convert a generated
// program to condensed form, render it both as X10-subset source
// (x10.Render) and as restricted-Go source (gofront.Render), lower
// both through the front-end registry, and assert that every solver
// strategy produces bit-identical report JSON for the two. The
// goroutine runtime observer then executes the Go-lowered program and
// its observed pairs must be contained in the static relation
// (observed ⊆ static on real-Go-derived programs).
//
// Clocked programs are skipped — clock barriers have no rendering in
// the Go subset — as are place-switching asyncs (progen never
// generates places).
func CheckFrontends(p *syntax.Program, seed int64, strategies []string) (vs []*Violation) {
	if len(strategies) == 0 {
		strategies = engine.Strategies()
	}
	fail := func(kind Kind, format string, args ...any) {
		vs = append(vs, &Violation{Kind: kind, Seed: seed, Detail: fmt.Sprintf(format, args...), Program: p})
	}
	defer func() {
		if r := recover(); r != nil {
			fail(KindError, "panic during front-end oracle: %v", r)
		}
	}()

	if p.UsesClocks() {
		return nil
	}
	u, err := condensed.FromProgram(p)
	if err != nil {
		fail(KindError, "condensed.FromProgram: %v", err)
		return vs
	}
	xsrc := x10.Render(u)
	gsrc, err := gofront.Render(u)
	if err != nil {
		fail(KindError, "gofront.Render: %v", err)
		return vs
	}

	xprog, err := frontendProgram("x10", xsrc)
	if err != nil {
		fail(KindError, "x10 front end rejected its own rendering: %v", err)
		return vs
	}
	gprog, err := frontendProgram("go", gsrc)
	if err != nil {
		fail(KindError, "go front end rejected its own rendering: %v", err)
		return vs
	}

	var gM *intset.PairSet
	for _, s := range strategies {
		xrep, _, err := frontendReport(xprog, s)
		if err != nil {
			fail(KindError, "front-end oracle x10 analysis (%s): %v", s, err)
			return vs
		}
		grep, m, err := frontendReport(gprog, s)
		if err != nil {
			fail(KindError, "front-end oracle go analysis (%s): %v", s, err)
			return vs
		}
		gM = m
		if !bytes.Equal(xrep, grep) {
			fail(KindFrontendDivergence,
				"strategy %q: x10-rendered report (%d bytes) != go-rendered report (%d bytes), first diff at byte %d",
				s, len(xrep), len(grep), firstByteDiff(xrep, grep))
		}
	}

	// Runtime observer on the Go-lowered program: every pair an actual
	// execution exhibits must be in the static answer.
	observed := intset.NewPairs(gprog.NumLabels())
	for run := 0; run < 2; run++ {
		opts := fxruntime.Options{
			RecordParallel: true,
			Seed:           seed + int64(run)*7919,
			MaxSteps:       100_000,
		}
		res, err := fxruntime.Run(gprog, nil, opts)
		if err != nil && !errors.Is(err, fxruntime.ErrFuelExhausted) {
			fail(KindError, "front-end oracle runtime run %d: %v", run, err)
			return vs
		}
		observed.UnionWith(res.Observed)
	}
	if gM != nil && !observed.SubsetOf(gM) {
		i, j, _ := firstMissing(observed, gM)
		fail(KindObservedNotStatic,
			"go-lowered program: observed pair (%s, %s) missing from static M",
			gprog.LabelName(syntax.Label(i)), gprog.LabelName(syntax.Label(j)))
	}
	return vs
}

// frontendProgram lowers source through the named front end to a core
// FX10 program, exactly as the CLIs and the daemon do.
func frontendProgram(lang, src string) (*syntax.Program, error) {
	u, _, err := frontend.Lower(lang, "", src)
	if err != nil {
		return nil, err
	}
	return condensed.Lower(u)
}

// Front-end oracle engines: one cache-free engine per strategy,
// shared across programs (mirrors EngineStatic, but keeps the full
// result so report bytes can be compared).
var (
	feMu      sync.Mutex
	feEngines = map[string]*engine.Engine{}
)

func frontendReport(p *syntax.Program, strategy string) ([]byte, *intset.PairSet, error) {
	feMu.Lock()
	e := feEngines[strategy]
	if e == nil {
		var err error
		e, err = engine.New(engine.Config{Strategy: strategy, CacheSize: -1})
		if err != nil {
			feMu.Unlock()
			return nil, nil, err
		}
		feEngines[strategy] = e
	}
	feMu.Unlock()
	res, err := e.Analyze(engine.Job{Name: "difffuzz-frontend", Program: p, Mode: constraints.ContextSensitive})
	if err != nil {
		return nil, nil, err
	}
	rep, err := json.Marshal(mhp.FromEngine(res).Report())
	if err != nil {
		return nil, nil, err
	}
	return rep, res.M, nil
}

func firstByteDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}
