package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"fx10/internal/constraints"
	"fx10/internal/engine"
	"fx10/internal/progen"
	"fx10/internal/syntax"
	"fx10/internal/workloads"
)

// The incremental bench is the edit-one-method sweep behind the
// README's incremental-analysis table: for every method of every
// corpus benchmark, append one skip to that method, re-analyze
// incrementally (engine.AnalyzeDelta) and from scratch, and compare.
// It reports how much of the program the delta path re-solved and the
// wall-time ratio, and verifies on every edit that the two paths
// produce identical valuations. Written as BENCH_incremental.json so
// regressions are diffable across commits.

// IncrementalRow is one benchmark's edit sweep.
type IncrementalRow struct {
	Benchmark string `json:"benchmark"`
	// Methods is the program's method count; Edits the number of
	// single-method edits swept (one per method).
	Methods int `json:"methods"`
	Edits   int `json:"edits"`
	// AvgMethodsResolved / MaxMethodsResolved summarize the dirty
	// closure sizes across the sweep.
	AvgMethodsResolved float64 `json:"avg_methods_resolved"`
	MaxMethodsResolved int     `json:"max_methods_resolved"`
	// StrictSubsetEdits counts edits whose delta re-solved strictly
	// fewer methods than the program has (i.e. reuse actually
	// happened).
	StrictSubsetEdits int `json:"strict_subset_edits"`
	// AvgConstraintsReevaluated is the mean constraint-evaluation count
	// of the delta solves.
	AvgConstraintsReevaluated float64 `json:"avg_constraints_reevaluated"`
	// ScratchNsPerOp / DeltaNsPerOp are best-of-reps mean wall times of
	// one from-scratch re-analysis vs one AnalyzeDelta, averaged over
	// the edit sweep; Speedup is their ratio.
	ScratchNsPerOp int64   `json:"scratch_ns_per_op"`
	DeltaNsPerOp   int64   `json:"delta_ns_per_op"`
	Speedup        float64 `json:"speedup"`
	// Identical reports that every edit's delta result matched the
	// from-scratch result bit for bit (valuations and M).
	Identical bool `json:"identical"`
}

// IncrementalBench is the full sweep plus the environment it ran in.
type IncrementalBench struct {
	Go       string           `json:"go"`
	GOOS     string           `json:"goos"`
	GOARCH   string           `json:"goarch"`
	Strategy string           `json:"strategy"`
	Reps     int              `json:"reps"`
	Rows     []IncrementalRow `json:"rows"`
}

// RunIncremental sweeps every corpus benchmark (context-sensitive, as
// in Figure 8) with the given solver strategy; empty selects the
// default. Caching is off in both engines so the timings measure the
// delta solver itself, not the program cache.
func RunIncremental(reps int, strategy string) (IncrementalBench, error) {
	if reps < 1 {
		reps = 1
	}
	bench := IncrementalBench{
		Go:     runtime.Version(),
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
		Reps:   reps,
	}
	e, err := engine.New(engine.Config{Strategy: strategy, CacheSize: -1})
	if err != nil {
		return bench, err
	}
	bench.Strategy = e.Strategy().Name()
	for _, wl := range workloads.All() {
		row, err := measureIncremental(e, wl.Name, wl.Program(), reps)
		if err != nil {
			return bench, err
		}
		bench.Rows = append(bench.Rows, row)
	}
	return bench, nil
}

// measureIncremental runs one benchmark's edit sweep.
func measureIncremental(e *engine.Engine, name string, p *syntax.Program, reps int) (IncrementalRow, error) {
	base, err := e.Analyze(engine.Job{Name: name, Program: p, Mode: constraints.ContextSensitive})
	if err != nil {
		return IncrementalRow{}, err
	}
	edits := make([]*syntax.Program, len(p.Methods))
	for mi := range p.Methods {
		edits[mi] = progen.AppendSkip(p, mi)
	}
	row := IncrementalRow{
		Benchmark: name,
		Methods:   len(p.Methods),
		Edits:     len(edits),
		Identical: true,
	}

	// Correctness + closure statistics pass.
	for _, ed := range edits {
		dres, err := e.AnalyzeDelta(base, ed)
		if err != nil {
			return row, err
		}
		sres, err := e.Analyze(engine.Job{Name: name, Program: ed, Mode: constraints.ContextSensitive})
		if err != nil {
			return row, err
		}
		if !dres.Sol.ValuationEqual(sres.Sol) || !dres.M.Equal(sres.M) {
			row.Identical = false
		}
		ds := dres.Stats.Delta
		row.AvgMethodsResolved += float64(ds.MethodsResolved)
		row.AvgConstraintsReevaluated += float64(ds.ConstraintsReevaluated)
		if ds.MethodsResolved > row.MaxMethodsResolved {
			row.MaxMethodsResolved = ds.MethodsResolved
		}
		if !ds.Full && ds.MethodsResolved < ds.MethodsTotal {
			row.StrictSubsetEdits++
		}
	}
	row.AvgMethodsResolved /= float64(len(edits))
	row.AvgConstraintsReevaluated /= float64(len(edits))

	// Timing passes: one op = one edited-program re-analysis, swept
	// over all edits; best of reps, inner loop sized so each rep runs
	// ≥ ~2ms (go-test style).
	deltaOp := func() error {
		for _, ed := range edits {
			if _, err := e.AnalyzeDelta(base, ed); err != nil {
				return err
			}
		}
		return nil
	}
	scratchOp := func() error {
		for _, ed := range edits {
			if _, err := e.Analyze(engine.Job{Name: name, Program: ed, Mode: constraints.ContextSensitive}); err != nil {
				return err
			}
		}
		return nil
	}
	dNs, err := bestSweep(deltaOp, len(edits), reps)
	if err != nil {
		return row, err
	}
	sNs, err := bestSweep(scratchOp, len(edits), reps)
	if err != nil {
		return row, err
	}
	row.DeltaNsPerOp, row.ScratchNsPerOp = dNs, sNs
	if dNs > 0 {
		row.Speedup = float64(sNs) / float64(dNs)
	}
	return row, nil
}

// bestSweep times op (a sweep of n edits) go-test style and returns
// the best-of-reps per-edit nanoseconds. Each rep's inner loop is
// sized to run ≥ ~10ms so single-shot scheduler noise cannot decide
// the comparison between two sweeps of a few hundred microseconds.
func bestSweep(op func() error, n, reps int) (int64, error) {
	t0 := time.Now()
	if err := op(); err != nil {
		return 0, err
	}
	warm := time.Since(t0)
	iters := 1
	if warm > 0 {
		iters = int(10 * time.Millisecond / warm)
	}
	if iters < 1 {
		iters = 1
	}
	if iters > 256 {
		iters = 256
	}
	best := time.Duration(0)
	for rep := 0; rep < reps; rep++ {
		t0 := time.Now()
		for i := 0; i < iters; i++ {
			if err := op(); err != nil {
				return 0, err
			}
		}
		if d := time.Since(t0); rep == 0 || d < best {
			best = d
		}
	}
	return best.Nanoseconds() / int64(iters) / int64(n), nil
}

// FormatIncremental renders the sweep as an aligned table, one row per
// benchmark.
func FormatIncremental(bench IncrementalBench) string {
	var b strings.Builder
	tw := newTable(&b, "benchmark", "methods", "resolved(avg/max)", "subset", "scratch ns/op", "delta ns/op", "speedup", "identical")
	for _, r := range bench.Rows {
		tw.row(r.Benchmark,
			fmt.Sprint(r.Methods),
			fmt.Sprintf("%.1f/%d", r.AvgMethodsResolved, r.MaxMethodsResolved),
			fmt.Sprintf("%d/%d", r.StrictSubsetEdits, r.Edits),
			fmt.Sprint(r.ScratchNsPerOp),
			fmt.Sprint(r.DeltaNsPerOp),
			fmt.Sprintf("%.2fx", r.Speedup),
			fmt.Sprint(r.Identical))
	}
	tw.flush()
	fmt.Fprintf(&b, "(%s %s/%s, strategy %s, best of %d reps; one op = re-analysis after appending a skip to one method)\n",
		bench.Go, bench.GOOS, bench.GOARCH, bench.Strategy, bench.Reps)
	return b.String()
}

// WriteIncrementalJSON writes the sweep machine-readably (the
// committed BENCH_incremental.json).
func WriteIncrementalJSON(bench IncrementalBench, path string) error {
	data, err := json.MarshalIndent(bench, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
