package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestRunSolverBench checks the sweep's shape and its two structural
// guarantees: every (benchmark, strategy) cell is present, and the
// topo solver never evaluates more constraints than the worklist
// solver on the same benchmark (each constraint is evaluated at most
// once after SCC condensation).
func TestRunSolverBench(t *testing.T) {
	bench, err := RunSolverBench(1)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(bench.Rows), 13*len(SolverBenchStrategies); got != want {
		t.Fatalf("got %d rows, want %d", got, want)
	}
	evals := map[[2]string]int64{}
	for _, r := range bench.Rows {
		if r.NsPerOp <= 0 {
			t.Errorf("%s/%s: non-positive ns/op %d", r.Benchmark, r.Strategy, r.NsPerOp)
		}
		switch r.Strategy {
		case "phased", "monolithic":
			if r.Passes == 0 {
				t.Errorf("%s/%s: pass-based strategy reports 0 passes", r.Benchmark, r.Strategy)
			}
		case "worklist", "topo":
			if r.Evaluations == 0 {
				t.Errorf("%s/%s: evaluation-counting strategy reports 0 evaluations", r.Benchmark, r.Strategy)
			}
		}
		evals[[2]string{r.Benchmark, r.Strategy}] = r.Evaluations
	}
	for k, topo := range evals {
		if k[1] != "topo" {
			continue
		}
		if wl := evals[[2]string{k[0], "worklist"}]; topo > wl {
			t.Errorf("%s: topo evaluations %d > worklist %d", k[0], topo, wl)
		}
	}

	path := filepath.Join(t.TempDir(), "bench.json")
	if err := WriteSolverBenchJSON(bench, path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back SolverBench
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if len(back.Rows) != len(bench.Rows) {
		t.Fatalf("round-trip lost rows: %d != %d", len(back.Rows), len(bench.Rows))
	}
}
