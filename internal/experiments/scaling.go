package experiments

import (
	"fmt"
	"math"
	"strings"

	"fx10/internal/engine"
	"fx10/internal/syntax"
)

// The scaling study backs the paper's Section 5.2 complexity
// discussion: the solver is O(n^6) in the worst case, but the
// observed behaviour on benchmark-shaped programs is far tamer. Three
// size-parameterized families probe it:
//
//   - chain(n): a depth-n call chain, one async per method — method
//     summaries propagate the full chain;
//   - wide(n): n consecutive asyncs in one method — the MHP relation
//     itself is Θ(n²) pairs, a lower bound for any solver;
//   - loops(n): n loop asyncs in separate finish-wrapped phases — the
//     benchmark-shaped common case with small pair sets.

// ScalingRow is one measurement.
type ScalingRow struct {
	Family string
	Size   int
	Labels int
	Pairs  int // ordered pairs in main's solved m
	TimeMS float64
}

// ChainProgram builds the chain family.
func ChainProgram(n int) *syntax.Program {
	b := syntax.NewBuilder(2)
	for i := n - 1; i >= 0; i-- {
		instrs := []syntax.Instr{
			b.Async("", b.Stmts(b.Skip(""))),
		}
		if i+1 < n {
			instrs = append(instrs, b.Call("", fmt.Sprintf("f%d", i+1)))
		}
		instrs = append(instrs, b.Skip(""))
		b.MustAddMethod(fmt.Sprintf("f%d", i), b.Stmts(instrs...))
	}
	b.MustAddMethod("main", b.Stmts(b.Call("", "f0"), b.Skip("")))
	return b.MustProgram()
}

// WideProgram builds the wide family.
func WideProgram(n int) *syntax.Program {
	b := syntax.NewBuilder(2)
	instrs := make([]syntax.Instr, 0, n+1)
	for i := 0; i < n; i++ {
		instrs = append(instrs, b.Async("", b.Stmts(b.Skip(""))))
	}
	instrs = append(instrs, b.Skip(""))
	b.MustAddMethod("main", b.Stmts(instrs...))
	return b.MustProgram()
}

// LoopsProgram builds the benchmark-shaped family.
func LoopsProgram(n int) *syntax.Program {
	b := syntax.NewBuilder(2)
	instrs := make([]syntax.Instr, 0, n)
	for i := 0; i < n; i++ {
		loop := b.While("", 0, b.Stmts(
			b.Async("", b.Stmts(b.Skip(""))),
		))
		instrs = append(instrs, b.Finish("", b.Stmts(loop)))
	}
	b.MustAddMethod("main", b.Stmts(instrs...))
	return b.MustProgram()
}

// measure runs the full inference pipeline on one program through
// the engine (timing the analysis stages only).
func measure(family string, size int, p *syntax.Program) (ScalingRow, error) {
	res, err := figEngine.Analyze(engine.Job{
		Name:    fmt.Sprintf("%s(%d)", family, size),
		Program: p,
	})
	if err != nil {
		return ScalingRow{}, fmt.Errorf("experiments: analyze %s(%d): %w", family, size, err)
	}
	return ScalingRow{
		Family: family,
		Size:   size,
		Labels: p.NumLabels(),
		Pairs:  res.M.Len(),
		TimeMS: float64(res.Stats.PipelineDuration().Microseconds()) / 1000.0,
	}, nil
}

// Scaling measures all three families at the given sizes.
func Scaling(sizes []int) ([]ScalingRow, error) {
	var rows []ScalingRow
	families := []struct {
		name  string
		build func(int) *syntax.Program
	}{
		{"chain", ChainProgram},
		{"wide", WideProgram},
		{"loops", LoopsProgram},
	}
	for _, f := range families {
		for _, n := range sizes {
			row, err := measure(f.name, n, f.build(n))
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// DefaultScalingSizes is what cmd/mhpbench sweeps. The adversarial
// families grow polynomially (chain(400) alone takes minutes), so the
// default sweep stops at 200 and the study is opt-in
// (-figure scaling) rather than part of -figure all.
var DefaultScalingSizes = []int{25, 50, 100, 200}

// FormatScaling renders the rows with per-step growth exponents
// (log(time ratio)/log(size ratio) between consecutive sizes of one
// family): the empirical counterpart of the O(n^6) worst-case bound.
func FormatScaling(rows []ScalingRow) string {
	var b strings.Builder
	tw := newTable(&b, "family", "n", "labels", "pairs", "time(ms)", "growth-exp")
	var prev *ScalingRow
	for i := range rows {
		r := rows[i]
		exp := "-"
		if prev != nil && prev.Family == r.Family && prev.TimeMS > 0 && r.TimeMS > 0 {
			e := math.Log(r.TimeMS/prev.TimeMS) / math.Log(float64(r.Size)/float64(prev.Size))
			exp = fmt.Sprintf("%.2f", e)
		}
		tw.row(r.Family, fmt.Sprint(r.Size), fmt.Sprint(r.Labels), fmt.Sprint(r.Pairs),
			fmt.Sprintf("%.2f", r.TimeMS), exp)
		prev = &rows[i]
	}
	tw.flush()
	b.WriteString("(growth-exp ≈ d means time ~ n^d on that step; the paper's worst case is d = 6)\n")
	return b.String()
}
