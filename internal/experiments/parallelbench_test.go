package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestRunParallelBenchAgreement shrinks the sweep and checks its
// internal consistency: every strategy row of a size reports the same
// main-M pair count, topo and ptopo report identical evaluation
// counts, and the ptopo-vs-topo verification inside the bench passes.
func TestRunParallelBenchAgreement(t *testing.T) {
	oldSizes, oldWorkers := ParallelBenchSizes, ParallelBenchWorkers
	ParallelBenchSizes, ParallelBenchWorkers = []int{800}, []int{1, 2}
	defer func() { ParallelBenchSizes, ParallelBenchWorkers = oldSizes, oldWorkers }()

	bench, err := RunParallelBench(1)
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 + len(ParallelBenchWorkers); len(bench.Rows) != want {
		t.Fatalf("got %d rows, want %d", len(bench.Rows), want)
	}
	var topoEvals int64
	pairs := bench.Rows[0].MainPairs
	for _, r := range bench.Rows {
		if r.MainPairs != pairs {
			t.Errorf("%s/%d: main pairs %d != %d", r.Strategy, r.Workers, r.MainPairs, pairs)
		}
		if r.NsPerOp <= 0 {
			t.Errorf("%s/%d: non-positive ns/op", r.Strategy, r.Workers)
		}
		if r.Strategy == "topo" {
			topoEvals = r.Evaluations
		}
	}
	for _, r := range bench.Rows {
		if r.Strategy == "ptopo" && r.Evaluations != topoEvals {
			t.Errorf("ptopo/%d evaluations %d != topo %d", r.Workers, r.Evaluations, topoEvals)
		}
	}
	if FormatParallelBench(bench) == "" {
		t.Error("empty formatted table")
	}

	path := filepath.Join(t.TempDir(), "bench.json")
	if err := WriteParallelBenchJSON(bench, path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back ParallelBench
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Rows) != len(bench.Rows) || back.NumCPU != bench.NumCPU {
		t.Fatal("JSON round-trip lost rows or environment")
	}
}

// TestParallelCrossover pins the crossover scan on synthetic rows:
// it must pick the smallest winning width at the largest size, and
// report ok=false when ptopo never wins.
func TestParallelCrossover(t *testing.T) {
	rows := []ParallelBenchRow{
		{Size: 100, Strategy: "topo", NsPerOp: 50},
		{Size: 100, Strategy: "ptopo", Workers: 2, NsPerOp: 10},
		{Size: 200, Strategy: "topo", NsPerOp: 100},
		{Size: 200, Strategy: "ptopo", Workers: 1, NsPerOp: 120},
		{Size: 200, Strategy: "ptopo", Workers: 2, NsPerOp: 80},
		{Size: 200, Strategy: "ptopo", Workers: 4, NsPerOp: 40},
	}
	workers, speedup, ok := ParallelCrossover(ParallelBench{Rows: rows})
	if !ok || workers != 2 || speedup != 100.0/80 {
		t.Fatalf("got (%d, %v, %v), want (2, 1.25, true)", workers, speedup, ok)
	}
	if _, _, ok := ParallelCrossover(ParallelBench{Rows: rows[2:4]}); ok {
		t.Fatal("crossover reported where ptopo never wins")
	}
	if _, _, ok := ParallelCrossover(ParallelBench{}); ok {
		t.Fatal("crossover reported on empty bench")
	}
}
