package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"fx10/internal/constraints"
	"fx10/internal/engine"
	"fx10/internal/labels"
	"fx10/internal/workloads"
)

// The solver bench is the head-to-head comparison of the registered
// solving strategies on the paper's 13-benchmark corpus: same
// generated constraint system, four ways to reach the unique least
// solution. It backs the README's performance table and is written as
// BENCH_solver.json so perf regressions are diffable across commits.

// SolverBenchStrategies are the strategies the bench sweeps, in
// presentation order.
var SolverBenchStrategies = []string{"phased", "monolithic", "worklist", "topo"}

// SolverBenchRow is one (benchmark, strategy) measurement.
type SolverBenchRow struct {
	Benchmark string `json:"benchmark"`
	Strategy  string `json:"strategy"`
	// NsPerOp is the best-of-reps wall time of one Solve.
	NsPerOp int64 `json:"ns_per_op"`
	// Evaluations is Solution.Evaluations (constraint evaluations;
	// zero for the pass-based strategies, which count passes instead).
	Evaluations int64 `json:"evaluations"`
	// Passes is IterL1+IterL2 (zero for the evaluation-counting
	// strategies).
	Passes int `json:"passes"`
	// AllocsPerOp and BytesPerOp are heap allocation counts and bytes
	// per Solve (runtime Mallocs/TotalAlloc deltas over a measured
	// loop).
	AllocsPerOp int64 `json:"allocs_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
}

// SolverBench is the full sweep plus the environment it ran in.
type SolverBench struct {
	Go     string           `json:"go"`
	GOOS   string           `json:"goos"`
	GOARCH string           `json:"goarch"`
	Reps   int              `json:"reps"`
	Rows   []SolverBenchRow `json:"rows"`
}

// RunSolverBench measures every registered strategy on every
// benchmark (context-sensitive, as in Figure 8). Each (benchmark,
// strategy) cell is timed reps times over an adaptively sized
// inner loop and the fastest rep wins, go-test style.
func RunSolverBench(reps int) (SolverBench, error) {
	if reps < 1 {
		reps = 1
	}
	bench := SolverBench{
		Go:     runtime.Version(),
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
		Reps:   reps,
	}
	for _, wl := range workloads.All() {
		sys := constraints.Generate(labels.Compute(wl.Program()), constraints.ContextSensitive)
		for _, name := range SolverBenchStrategies {
			strat, err := engine.Lookup(name)
			if err != nil {
				return bench, err
			}
			bench.Rows = append(bench.Rows, measureSolver(wl.Name, strat, sys, reps))
		}
	}
	return bench, nil
}

// measureSolver times one (benchmark, strategy) cell.
func measureSolver(benchmark string, strat engine.Strategy, sys *constraints.System, reps int) SolverBenchRow {
	// Warm-up solve; its (deterministic) counters fill the row.
	warm := strat.Solve(sys)
	row := SolverBenchRow{
		Benchmark:   benchmark,
		Strategy:    strat.Name(),
		Evaluations: warm.Evaluations,
		Passes:      warm.IterL1 + warm.IterL2,
	}

	// Size the inner loop so each rep runs ≥ ~2ms: single solves on
	// the small benchmarks are microseconds, below timer noise.
	iters := 1
	if d := warm.Duration; d > 0 {
		iters = int(2 * time.Millisecond / d)
	}
	if iters < 1 {
		iters = 1
	}
	if iters > 512 {
		iters = 512
	}

	best := time.Duration(0)
	for rep := 0; rep < reps; rep++ {
		t0 := time.Now()
		for i := 0; i < iters; i++ {
			strat.Solve(sys)
		}
		if d := time.Since(t0); rep == 0 || d < best {
			best = d
		}
	}
	row.NsPerOp = best.Nanoseconds() / int64(iters)

	// Allocation profile, measured over its own loop so the timing
	// reps above stay unperturbed by ReadMemStats.
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	for i := 0; i < iters; i++ {
		strat.Solve(sys)
	}
	runtime.ReadMemStats(&ms1)
	row.AllocsPerOp = int64(ms1.Mallocs-ms0.Mallocs) / int64(iters)
	row.BytesPerOp = int64(ms1.TotalAlloc-ms0.TotalAlloc) / int64(iters)
	return row
}

// FormatSolverBench renders the sweep as an aligned table, one row
// per (benchmark, strategy).
func FormatSolverBench(bench SolverBench) string {
	var b strings.Builder
	tw := newTable(&b, "benchmark", "strategy", "ns/op", "evals", "passes", "allocs/op", "B/op")
	for _, r := range bench.Rows {
		tw.row(r.Benchmark, r.Strategy,
			fmt.Sprint(r.NsPerOp),
			fmt.Sprint(r.Evaluations),
			fmt.Sprint(r.Passes),
			fmt.Sprint(r.AllocsPerOp),
			fmt.Sprint(r.BytesPerOp))
	}
	tw.flush()
	fmt.Fprintf(&b, "(%s %s/%s, best of %d reps; evals for worklist/topo, passes for phased/monolithic)\n",
		bench.Go, bench.GOOS, bench.GOARCH, bench.Reps)
	return b.String()
}

// WriteSolverBenchJSON writes the sweep machine-readably (the
// committed BENCH_solver.json).
func WriteSolverBenchJSON(bench SolverBench, path string) error {
	data, err := json.MarshalIndent(bench, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
