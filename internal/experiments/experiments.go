// Package experiments regenerates every table and figure of the
// paper's evaluation:
//
//	Figure 5 — the constraint system of the Section 2.1 example;
//	Figure 6 — static measurements of the 13 benchmarks;
//	Figure 7 — condensed node counts;
//	Figure 8 — type-inference time/space/iterations and async-body
//	           pair counts (context-sensitive);
//	Figure 9 — context-sensitive vs context-insensitive on mg and
//	           plasma;
//
// plus the Section 2.1/2.2 worked examples. Each figure is returned
// as structured rows carrying both the measured values and the
// paper's published values, and rendered as an aligned text table.
// cmd/mhpbench drives this package; EXPERIMENTS.md records one run.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"fx10/internal/condensed"
	"fx10/internal/constraints"
	"fx10/internal/engine"
	"fx10/internal/fixtures"
	"fx10/internal/labels"
	"fx10/internal/mhp"
	"fx10/internal/parser"
	"fx10/internal/syntax"
	"fx10/internal/workloads"
)

// figEngine runs every figure pipeline. Caching is off: each row's
// time column must be a real measurement, not a cache lookup (the
// corpus runner builds its own engines the same way).
var figEngine = engine.MustNew(engine.Config{CacheSize: -1})

// Figure5 renders the generated constraint system for the Section 2.1
// example program, the reproduction of the paper's Figure 5.
func Figure5() string {
	p := fixtures.Example21()
	sys := constraints.Generate(labels.Compute(p), constraints.ContextSensitive)
	return sys.String()
}

// ExampleResult reports a worked example's analysis output as
// human-readable label pairs.
type ExampleResult struct {
	Name string
	// Pairs are the inferred unordered MHP pairs, sorted, as
	// "(A,B)" display names.
	Pairs []string
	// Expected are the paper's reported pairs in the same format.
	Expected []string
	// Match is whether they agree exactly.
	Match bool
}

// runExample analyzes one fixture program and compares with the
// paper's expected pairs.
func runExample(name, src string, expect [][2]string) (ExampleResult, error) {
	p, err := parser.Parse(src)
	if err != nil {
		return ExampleResult{}, fmt.Errorf("experiments: parse %s: %w", name, err)
	}
	r, err := mhp.Analyze(p, constraints.ContextSensitive)
	if err != nil {
		return ExampleResult{}, fmt.Errorf("experiments: analyze %s: %w", name, err)
	}
	var got []string
	r.M.Each(func(i, j int) {
		if i <= j {
			got = append(got, pairName(p, i, j))
		}
	})
	sort.Strings(got)
	var want []string
	for _, e := range expect {
		l1, _ := p.LabelByName(e[0])
		l2, _ := p.LabelByName(e[1])
		a, b := int(l1), int(l2)
		if a > b {
			a, b = b, a
		}
		want = append(want, pairName(p, a, b))
	}
	sort.Strings(want)
	return ExampleResult{
		Name:     name,
		Pairs:    got,
		Expected: want,
		Match:    strings.Join(got, " ") == strings.Join(want, " "),
	}, nil
}

func pairName(p *syntax.Program, i, j int) string {
	return "(" + p.LabelName(syntax.Label(i)) + "," + p.LabelName(syntax.Label(j)) + ")"
}

// Example21 reproduces the Section 2.1 analysis.
func Example21() (ExampleResult, error) {
	return runExample("example-2.1", fixtures.Example21Source, fixtures.Example21MHP)
}

// Example22 reproduces the Section 2.2 analysis.
func Example22() (ExampleResult, error) {
	return runExample("example-2.2", fixtures.Example22Source, fixtures.Example22MHP)
}

// Fig6Row is one measured-vs-paper row of Figure 6.
type Fig6Row struct {
	Name  string
	Paper workloads.PaperRow

	LOC        int
	AsyncTotal int
	AsyncLoop  int
	AsyncPlace int
	Slabels    int
	Level1     int
	Level2     int
}

// Figure6 computes the static measurements for all 13 benchmarks.
func Figure6() []Fig6Row {
	var rows []Fig6Row
	for _, b := range workloads.All() {
		s := b.Unit().AsyncStats()
		sys := constraints.Generate(labels.Compute(b.Program()), constraints.ContextSensitive)
		sl, l1, l2 := sys.Counts()
		rows = append(rows, Fig6Row{
			Name: b.Name, Paper: b.Paper,
			LOC: b.LOC(), AsyncTotal: s.Total, AsyncLoop: s.Loop, AsyncPlace: s.PlaceSwitch,
			Slabels: sl, Level1: l1, Level2: l2,
		})
	}
	return rows
}

// FormatFigure6 renders the rows, measured/paper.
func FormatFigure6(rows []Fig6Row) string {
	var b strings.Builder
	tw := newTable(&b, "benchmark", "LOC", "#async", "loop", "place", "Slabels", "level-1", "level-2")
	for _, r := range rows {
		tw.row(r.Name,
			mp(r.LOC, r.Paper.LOC),
			mp(r.AsyncTotal, r.Paper.AsyncTotal),
			mp(r.AsyncLoop, r.Paper.AsyncLoop),
			mp(r.AsyncPlace, r.Paper.AsyncPlace),
			mp(r.Slabels, r.Paper.SlabelsCons),
			mp(r.Level1, r.Paper.Level1Cons),
			mp(r.Level2, r.Paper.Level2Cons),
		)
	}
	tw.flush()
	return b.String()
}

// Fig7Row is one measured-vs-paper row of Figure 7.
type Fig7Row struct {
	Name   string
	Paper  workloads.NodeRow
	Counts condensed.Counts
}

// Figure7 computes the condensed node counts.
func Figure7() []Fig7Row {
	var rows []Fig7Row
	for _, b := range workloads.All() {
		rows = append(rows, Fig7Row{Name: b.Name, Paper: b.Paper.Nodes, Counts: b.Unit().NodeCounts()})
	}
	return rows
}

// FormatFigure7 renders the rows.
func FormatFigure7(rows []Fig7Row) string {
	var b strings.Builder
	tw := newTable(&b, "benchmark", "total", "end", "async", "call", "finish", "if", "loop", "method", "return", "skip", "switch")
	for _, r := range rows {
		c := r.Counts
		p := r.Paper
		tw.row(r.Name,
			mp(c.Total, p.Total),
			mp(c.Of(condensed.End), p.End),
			mp(c.Of(condensed.Async), p.Async),
			mp(c.Of(condensed.Call), p.Call),
			mp(c.Of(condensed.Finish), p.Finish),
			mp(c.Of(condensed.If), p.If),
			mp(c.Of(condensed.Loop), p.Loop),
			mp(c.Of(condensed.Method), p.Method),
			mp(c.Of(condensed.Return), p.Return),
			mp(c.Of(condensed.Skip), p.Skip),
			mp(c.Of(condensed.Switch), p.Switch),
		)
	}
	tw.flush()
	return b.String()
}

// Fig8Row is one measured-vs-paper row of Figure 8 (or one analysis
// row of Figure 9).
type Fig8Row struct {
	Name  string
	Mode  constraints.Mode
	Paper workloads.PaperRow

	TimeMS      float64
	SpaceMB     float64
	IterSlabels int
	IterL1      int
	IterL2      int
	Pairs       mhp.PairCounts
}

// analyzeBenchmark runs the full inference pipeline on a benchmark in
// the given mode through the engine, timing the analysis stages
// (Slabels fixpoint + constraint generation + solving), as the
// paper's Figure 8 does.
func analyzeBenchmark(b *workloads.Benchmark, mode constraints.Mode) (Fig8Row, error) {
	res, err := figEngine.Analyze(engine.Job{Name: b.Name, Program: b.Program(), Mode: mode})
	if err != nil {
		return Fig8Row{}, fmt.Errorf("experiments: analyze %s: %w", b.Name, err)
	}
	return fig8RowFrom(b, mode, res), nil
}

// fig8RowFrom converts one engine result to its figure row; the
// corpus runner reuses it on pool results.
func fig8RowFrom(b *workloads.Benchmark, mode constraints.Mode, res *engine.Result) Fig8Row {
	pairs := mhp.CountPairs(mhp.FromEngine(res).AsyncBodyPairs())
	return Fig8Row{
		Name: b.Name, Mode: mode, Paper: b.Paper,
		TimeMS:      float64(res.Stats.PipelineDuration().Microseconds()) / 1000.0,
		SpaceMB:     float64(res.Stats.FootprintBytes) / (1 << 20),
		IterSlabels: res.Stats.IterSlabels,
		IterL1:      res.Stats.IterL1,
		IterL2:      res.Stats.IterL2,
		Pairs:       pairs,
	}
}

// Figure8 runs the context-sensitive inference on all benchmarks.
func Figure8() ([]Fig8Row, error) {
	var rows []Fig8Row
	for _, b := range workloads.All() {
		row, err := analyzeBenchmark(b, constraints.ContextSensitive)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatFigure8 renders the rows.
func FormatFigure8(rows []Fig8Row) string {
	var b strings.Builder
	tw := newTable(&b, "benchmark", "time(ms)", "space(MB)", "itSlab", "itL1", "itL2", "pairs", "self", "same", "diff")
	for _, r := range rows {
		tw.row(r.Name,
			fmt.Sprintf("%.1f/%d", r.TimeMS, r.Paper.TimeMS),
			fmt.Sprintf("%.1f/%d", r.SpaceMB, r.Paper.SpaceMB),
			mp(r.IterSlabels, r.Paper.IterSlab),
			mp(r.IterL1, r.Paper.IterL1),
			mp(r.IterL2, r.Paper.IterL2),
			mp(r.Pairs.Total, r.Paper.PairsTotal),
			mp(r.Pairs.Self, r.Paper.PairsSelf),
			mp(r.Pairs.Same, r.Paper.PairsSame),
			mp(r.Pairs.Diff, r.Paper.PairsDiff),
		)
	}
	tw.flush()
	b.WriteString("(measured/paper; paper numbers are from a 2010 dual-Xeon testbed)\n")
	return b.String()
}

// Figure9 runs both analyses on mg and plasma.
func Figure9() ([]Fig8Row, error) {
	var rows []Fig8Row
	for _, name := range []string{"mg", "plasma"} {
		b, err := workloads.Get(name)
		if err != nil {
			return nil, err
		}
		for _, mode := range []constraints.Mode{constraints.ContextSensitive, constraints.ContextInsensitive} {
			row, err := analyzeBenchmark(b, mode)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// FormatFigure9 renders the rows.
func FormatFigure9(rows []Fig8Row) string {
	var b strings.Builder
	tw := newTable(&b, "benchmark", "analysis", "time(ms)", "space(MB)", "itL1", "pairs", "self", "same", "diff")
	for _, r := range rows {
		pt, ps, pm, pd := r.Paper.PairsTotal, r.Paper.PairsSelf, r.Paper.PairsSame, r.Paper.PairsDiff
		ptime, pspace, pl1 := r.Paper.TimeMS, r.Paper.SpaceMB, r.Paper.IterL1
		if r.Mode == constraints.ContextInsensitive && r.Paper.CI != nil {
			ci := r.Paper.CI
			pt, ps, pm, pd = ci.PairsTotal, ci.PairsSelf, ci.PairsSame, ci.PairsDiff
			ptime, pspace, pl1 = ci.TimeMS, ci.SpaceMB, ci.IterL1
		}
		tw.row(r.Name, r.Mode.String(),
			fmt.Sprintf("%.1f/%d", r.TimeMS, ptime),
			fmt.Sprintf("%.1f/%d", r.SpaceMB, pspace),
			mp(r.IterL1, pl1),
			mp(r.Pairs.Total, pt),
			mp(r.Pairs.Self, ps),
			mp(r.Pairs.Same, pm),
			mp(r.Pairs.Diff, pd),
		)
	}
	tw.flush()
	b.WriteString("(measured/paper)\n")
	return b.String()
}

// mp formats "measured/paper".
func mp(measured, paper int) string { return fmt.Sprintf("%d/%d", measured, paper) }

// table is a minimal aligned-column writer.
type table struct {
	out     *strings.Builder
	headers []string
	rows    [][]string
}

func newTable(out *strings.Builder, headers ...string) *table {
	return &table{out: out, headers: headers}
}

func (t *table) row(cells ...string) {
	if len(cells) != len(t.headers) {
		panic(fmt.Sprintf("experiments: row has %d cells, want %d", len(cells), len(t.headers)))
	}
	t.rows = append(t.rows, cells)
}

func (t *table) flush() {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				t.out.WriteString("  ")
			}
			fmt.Fprintf(t.out, "%-*s", widths[i], c)
		}
		t.out.WriteByte('\n')
	}
	line(t.headers)
	for _, r := range t.rows {
		line(r)
	}
}
