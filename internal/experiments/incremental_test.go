package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"fx10/internal/engine"
	"fx10/internal/workloads"
)

// TestMeasureIncremental runs the edit sweep on two small corpus
// benchmarks and checks the row invariants: the delta results are
// identical to scratch, some reuse happens, and the closure counters
// are consistent. The full 13-benchmark sweep runs via
// `mhpbench -figure incremental` (committed as BENCH_incremental.json).
func TestMeasureIncremental(t *testing.T) {
	e, err := engine.New(engine.Config{CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"mapreduce", "series"} {
		wl, err := workloads.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		row, err := measureIncremental(e, name, wl.Program(), 1)
		if err != nil {
			t.Fatal(err)
		}
		if !row.Identical {
			t.Errorf("%s: delta results differ from scratch", name)
		}
		if row.Edits != row.Methods {
			t.Errorf("%s: swept %d edits for %d methods", name, row.Edits, row.Methods)
		}
		if row.StrictSubsetEdits == 0 {
			t.Errorf("%s: no edit re-solved a strict subset of methods", name)
		}
		if row.MaxMethodsResolved > row.Methods {
			t.Errorf("%s: resolved %d methods of %d", name, row.MaxMethodsResolved, row.Methods)
		}
		if row.AvgMethodsResolved <= 0 || row.DeltaNsPerOp <= 0 || row.ScratchNsPerOp <= 0 {
			t.Errorf("%s: degenerate row %+v", name, row)
		}
	}
}

// TestWriteIncrementalJSON round-trips the JSON artifact.
func TestWriteIncrementalJSON(t *testing.T) {
	bench := IncrementalBench{
		Go: "go-test", GOOS: "linux", GOARCH: "amd64", Strategy: "phased", Reps: 1,
		Rows: []IncrementalRow{{Benchmark: "x", Methods: 3, Edits: 3, Identical: true}},
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := WriteIncrementalJSON(bench, path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back IncrementalBench
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Rows) != 1 || back.Rows[0].Benchmark != "x" {
		t.Fatalf("round-trip mangled rows: %+v", back.Rows)
	}
	if out := FormatIncremental(bench); out == "" {
		t.Fatal("empty table")
	}
}
