package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"fx10/internal/constraints"
	"fx10/internal/labels"
	"fx10/internal/progen"
	"fx10/internal/syntax"
)

// The parallel bench measures where concurrent propagation pays:
// labels-vs-wallclock scaling of the worklist, topo and ptopo
// strategies on the progen huge tier, with ptopo swept across pool
// widths. It is the evidence behind the ROADMAP claim that observed
// cost stays far from the paper's O(n^6) bound at six-figure label
// counts, and it locates the topo→ptopo crossover. Written as the
// committed BENCH_parallel.json.
//
// Scale discipline: the bench talks to the constraints layer
// directly (Generate + Solve + PairLen) rather than through
// engine.Analyze — densifying main's pair set or materializing a
// types.Env at 100k labels would cost gigabytes for numbers the
// figure does not use.

// ParallelBenchSizes are the huge-tier label targets swept.
var ParallelBenchSizes = []int{5000, 20000, 50000, 100000}

// ParallelBenchWorkers are the ptopo pool widths swept.
var ParallelBenchWorkers = []int{1, 2, 4, 8}

// ParallelBenchSeed fixes the generated programs.
const ParallelBenchSeed = 1

// ParallelBenchRow is one (size, strategy, workers) measurement.
type ParallelBenchRow struct {
	// Size is the configured label target; Labels and Methods are
	// what the generator actually produced for it.
	Size    int `json:"size"`
	Labels  int `json:"labels"`
	Methods int `json:"methods"`
	// Strategy is worklist, topo, or ptopo; Workers is the pool
	// width (0 for the sequential strategies).
	Strategy string `json:"strategy"`
	Workers  int    `json:"workers"`
	// NsPerOp is the best-of-reps wall time of one Solve.
	NsPerOp int64 `json:"ns_per_op"`
	// Evaluations is Solution.Evaluations; identical for topo and
	// ptopo by construction.
	Evaluations int64 `json:"evaluations"`
	// MainPairs is the ordered-pair count of main's M variable —
	// the result every strategy must agree on.
	MainPairs int `json:"main_pairs"`
}

// ParallelBench is the full sweep plus the hardware it ran on — the
// crossover is hardware-dependent, so the figure is meaningless
// without NumCPU/GOMAXPROCS alongside it.
type ParallelBench struct {
	Go         string             `json:"go"`
	GOOS       string             `json:"goos"`
	GOARCH     string             `json:"goarch"`
	NumCPU     int                `json:"num_cpu"`
	GOMAXPROCS int                `json:"gomaxprocs"`
	Seed       int64              `json:"seed"`
	Reps       int                `json:"reps"`
	Rows       []ParallelBenchRow `json:"rows"`
}

// RunParallelBench generates one huge-tier program per size and races
// worklist, topo and ptopo-at-each-width on its constraint system.
// Every ptopo solution is verified bit-identical to topo's before its
// time is recorded: a fast wrong answer must never enter the figure.
func RunParallelBench(reps int) (ParallelBench, error) {
	if reps < 1 {
		reps = 1
	}
	bench := ParallelBench{
		Go:         runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Seed:       ParallelBenchSeed,
		Reps:       reps,
	}
	for _, size := range ParallelBenchSizes {
		p := progen.GenerateHuge(ParallelBenchSeed, progen.Huge(size))
		sys := constraints.Generate(labels.Compute(p), constraints.ContextInsensitive)
		mainM := sys.MethodM[sys.P.MainIndex]
		meta := ParallelBenchRow{Size: size, Labels: p.NumLabels(), Methods: len(p.Methods)}

		topoRef, topoRow := measureParallelCell(sys, constraints.Options{Topo: true}, reps, meta, "topo", 0, mainM)
		wlRow := func() ParallelBenchRow {
			_, r := measureParallelCell(sys, constraints.Options{Worklist: true}, reps, meta, "worklist", 0, mainM)
			return r
		}()
		bench.Rows = append(bench.Rows, wlRow, topoRow)
		for _, workers := range ParallelBenchWorkers {
			opts := constraints.Options{Parallel: true, Workers: workers}
			sol, row := measureParallelCell(sys, opts, reps, meta, "ptopo", workers, mainM)
			if !topoRef.ValuationEqual(sol) {
				return bench, fmt.Errorf("parallel bench: ptopo (%d workers) diverges from topo at %d labels on %s",
					workers, meta.Labels, syntax.Print(p)[:120])
			}
			bench.Rows = append(bench.Rows, row)
		}
	}
	return bench, nil
}

// measureParallelCell solves once for the (deterministic) counters
// and verification solution, then times reps further solves and keeps
// the fastest.
func measureParallelCell(sys *constraints.System, opts constraints.Options, reps int, meta ParallelBenchRow, strategy string, workers int, mainM constraints.PairVar) (*constraints.Solution, ParallelBenchRow) {
	warm := sys.Solve(opts)
	row := meta
	row.Strategy = strategy
	row.Workers = workers
	row.Evaluations = warm.Evaluations
	row.MainPairs = warm.PairLen(mainM)
	best := warm.Duration
	for rep := 0; rep < reps; rep++ {
		t0 := time.Now()
		sys.Solve(opts)
		if d := time.Since(t0); d < best {
			best = d
		}
	}
	row.NsPerOp = best.Nanoseconds()
	return warm, row
}

// ParallelCrossover scans the sweep's largest size for the smallest
// pool width at which ptopo beats sequential topo, returning the
// speedup there. ok is false when no width wins — the honest result
// on a single-core host, where the scheduler's overhead has no
// parallelism to pay for it.
func ParallelCrossover(bench ParallelBench) (workers int, speedup float64, ok bool) {
	maxSize := 0
	for _, r := range bench.Rows {
		if r.Size > maxSize {
			maxSize = r.Size
		}
	}
	var topoNs int64
	for _, r := range bench.Rows {
		if r.Size == maxSize && r.Strategy == "topo" {
			topoNs = r.NsPerOp
		}
	}
	if topoNs == 0 {
		return 0, 0, false
	}
	for _, r := range bench.Rows {
		if r.Size == maxSize && r.Strategy == "ptopo" && r.NsPerOp < topoNs {
			return r.Workers, float64(topoNs) / float64(r.NsPerOp), true
		}
	}
	return 0, 0, false
}

// FormatParallelBench renders the sweep as an aligned table plus the
// crossover verdict.
func FormatParallelBench(bench ParallelBench) string {
	var b strings.Builder
	tw := newTable(&b, "labels", "methods", "strategy", "workers", "ms/op", "evals", "main pairs")
	for _, r := range bench.Rows {
		w := "-"
		if r.Workers > 0 {
			w = fmt.Sprint(r.Workers)
		}
		tw.row(fmt.Sprint(r.Labels), fmt.Sprint(r.Methods), r.Strategy, w,
			fmt.Sprintf("%.1f", float64(r.NsPerOp)/1e6),
			fmt.Sprint(r.Evaluations),
			fmt.Sprint(r.MainPairs))
	}
	tw.flush()
	fmt.Fprintf(&b, "(%s %s/%s, %d CPUs, GOMAXPROCS=%d, best of %d+1 reps)\n",
		bench.Go, bench.GOOS, bench.GOARCH, bench.NumCPU, bench.GOMAXPROCS, bench.Reps)
	if workers, speedup, ok := ParallelCrossover(bench); ok {
		fmt.Fprintf(&b, "crossover: ptopo beats topo from %d workers (%.2fx at the largest size)\n", workers, speedup)
	} else {
		fmt.Fprintf(&b, "crossover: none on this host — with %d CPUs the pool has no parallelism to sell\n", bench.NumCPU)
	}
	return b.String()
}

// WriteParallelBenchJSON writes the sweep machine-readably (the
// committed BENCH_parallel.json).
func WriteParallelBenchJSON(bench ParallelBench, path string) error {
	data, err := json.MarshalIndent(bench, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
