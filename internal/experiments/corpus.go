package experiments

import (
	"fmt"
	"strings"
	"time"

	"fx10/internal/constraints"
	"fx10/internal/engine"
	"fx10/internal/workloads"
)

// The corpus run is the engine's headline scenario: the paper's
// whole evaluation — all 13 benchmarks — analyzed as one sweep on the
// bounded worker pool, with the sequential run kept as both the
// baseline for the wall-clock speedup and the oracle the parallel
// results must match bit for bit.

// CorpusRun reports one parallel-vs-sequential sweep.
type CorpusRun struct {
	// Workers is the parallel pool width.
	Workers int
	// Sequential and Parallel are the wall-clock times of the two
	// sweeps.
	Sequential, Parallel time.Duration
	// Speedup is Sequential/Parallel.
	Speedup float64
	// Identical reports whether every parallel result's solved
	// valuation, M relation and pair classification equal the
	// sequential ones (the Figure 6/8 tables would be identical).
	Identical bool
	// Rows is the Figure 8 table computed from the parallel sweep.
	Rows []Fig8Row
}

// Corpus analyzes the 13-benchmark corpus sequentially and then on a
// workers-wide pool, checks the results are identical, and reports
// both wall-clock times. Programs are parsed and lowered up front so
// both sweeps time pure analysis.
func Corpus(workers int) (CorpusRun, error) {
	benchmarks := workloads.All()
	jobs := make([]engine.Job, len(benchmarks))
	for i, b := range benchmarks {
		jobs[i] = engine.Job{Name: b.Name, Program: b.Program(), Mode: constraints.ContextSensitive}
	}

	seqEngine := engine.MustNew(engine.Config{Workers: 1, CacheSize: -1})
	t0 := time.Now()
	seq := seqEngine.AnalyzeCorpus(jobs)
	seqDur := time.Since(t0)

	parEngine := engine.MustNew(engine.Config{Workers: workers, CacheSize: -1})
	t0 = time.Now()
	par := parEngine.AnalyzeCorpus(jobs)
	parDur := time.Since(t0)

	run := CorpusRun{
		Workers:    parEngine.Workers(),
		Sequential: seqDur,
		Parallel:   parDur,
		Identical:  true,
	}
	if parDur > 0 {
		run.Speedup = float64(seqDur) / float64(parDur)
	}
	for i, b := range benchmarks {
		if seq[i].Err != nil {
			return run, fmt.Errorf("sequential %s: %w", b.Name, seq[i].Err)
		}
		if par[i].Err != nil {
			return run, fmt.Errorf("parallel %s: %w", b.Name, par[i].Err)
		}
		if !seq[i].Result.Sol.ValuationEqual(par[i].Result.Sol) ||
			!seq[i].Result.M.Equal(par[i].Result.M) {
			run.Identical = false
		}
		row := fig8RowFrom(b, constraints.ContextSensitive, par[i].Result)
		seqRow := fig8RowFrom(b, constraints.ContextSensitive, seq[i].Result)
		if row.Pairs != seqRow.Pairs {
			run.Identical = false
		}
		run.Rows = append(run.Rows, row)
	}
	return run, nil
}

// FormatCorpus renders a corpus run.
func FormatCorpus(run CorpusRun) string {
	var b strings.Builder
	fmt.Fprintf(&b, "benchmarks: %d   workers: %d\n", len(run.Rows), run.Workers)
	fmt.Fprintf(&b, "sequential: %.1fms   parallel: %.1fms   speedup: %.2fx\n",
		float64(run.Sequential.Microseconds())/1000.0,
		float64(run.Parallel.Microseconds())/1000.0,
		run.Speedup)
	fmt.Fprintf(&b, "parallel results identical to sequential: %v\n", run.Identical)
	return b.String()
}
