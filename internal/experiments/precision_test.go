package experiments

import (
	"strings"
	"testing"
)

// TestTheoremPrecision is the benchmark-scale Theorem 2 containment
// check: the exact MHP relation found by budget-bounded exploration
// must be inside the static M on all 13 workloads. TheoremPrecision
// itself errors on any containment violation.
func TestTheoremPrecision(t *testing.T) {
	budget := 5000
	if testing.Short() {
		budget = 500
	}
	rows, err := TheoremPrecision(budget)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 13 {
		t.Fatalf("rows = %d, want 13", len(rows))
	}
	for _, r := range rows {
		if r.States == 0 {
			t.Errorf("%s: explorer visited no states", r.Name)
		}
		if r.Gap < 0 {
			t.Errorf("%s: negative gap %d (static %d < exact %d)", r.Name, r.Gap, r.Static, r.Exact)
		}
		if r.Static == 0 {
			t.Errorf("%s: static relation empty", r.Name)
		}
	}
	out := FormatPrecision(rows)
	for _, frag := range []string{"benchmark", "gap", "Theorem 2"} {
		if !strings.Contains(out, frag) {
			t.Errorf("format missing %q:\n%s", frag, out)
		}
	}
}
