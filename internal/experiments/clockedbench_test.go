package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The clocked bench is the PR's headline claim in executable form:
// the phase refinement strictly shrinks the analysis result on a
// majority of the clocked corpus and never grows it.
func TestClockedBench(t *testing.T) {
	n := 20
	if testing.Short() {
		n = 5
	}
	bench, err := RunClockedBench(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	if bench.Programs != n+1 {
		t.Fatalf("measured %d programs, want %d (corpus + phased example)", bench.Programs, n+1)
	}
	for _, r := range bench.Rows {
		if r.AwarePairs > r.BlindPairs {
			t.Errorf("%s: aware %d > blind %d — refinement added pairs", r.Name, r.AwarePairs, r.BlindPairs)
		}
		if r.Pruned != r.BlindPairs-r.AwarePairs {
			t.Errorf("%s: pruned %d != blind %d - aware %d", r.Name, r.Pruned, r.BlindPairs, r.AwarePairs)
		}
	}
	// The split-phase example's barriers serialize the cross-phase
	// reads; it must prune.
	if bench.Rows[0].Name != "phased" || bench.Rows[0].Pruned == 0 {
		t.Errorf("phased example row %+v pruned nothing", bench.Rows[0])
	}
	// The acceptance bar: strictly fewer pairs on ≥ half the corpus.
	if 2*bench.StrictlyFewer < bench.Programs {
		t.Errorf("clock-aware strictly fewer on only %d/%d programs, want ≥ half",
			bench.StrictlyFewer, bench.Programs)
	}

	out := FormatClockedBench(bench)
	for _, frag := range []string{"phased", "pruned", "strictly fewer"} {
		if !strings.Contains(out, frag) {
			t.Errorf("formatted bench missing %q:\n%s", frag, out)
		}
	}

	path := filepath.Join(t.TempDir(), "bench.json")
	if err := WriteClockedBenchJSON(bench, path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back ClockedBench
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("written JSON does not parse back: %v", err)
	}
	if back.Programs != bench.Programs || len(back.Rows) != len(bench.Rows) {
		t.Error("JSON round trip lost rows")
	}
}
