package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"fx10/internal/constraints"
	"fx10/internal/engine"
	"fx10/internal/workloads"
)

// The store bench measures what the persistent summary store
// (internal/sumstore) costs and buys at process start. One op is a
// cold start: construct a fresh engine and analyze one workload —
// the unit of work a restarted daemon pays per program. Three
// configurations per workload:
//
//   - cold:  no store configured (the pre-store baseline);
//   - empty: a store on an empty directory (open + write-through
//     overhead on the critical path);
//   - warm:  a store pre-populated by a previous engine (recovery,
//     read-side probes, and the warm hits a restarted daemon sees).
//
// The bench also measures cached-query throughput (repeat analyzes
// served by the program cache) with and without a store, which the
// store must leave untouched: a program-cache hit never reaches the
// summary tier. Written as BENCH_store.json so regressions are
// diffable across commits.

// StoreRow is one workload's cold-start measurements.
type StoreRow struct {
	Benchmark string `json:"benchmark"`
	// ColdNsPerOp / EmptyNsPerOp / WarmNsPerOp are best-of-reps times
	// of one fresh-engine analyze without a store, with an empty
	// store, and with a warm store.
	ColdNsPerOp  int64 `json:"cold_ns_per_op"`
	EmptyNsPerOp int64 `json:"empty_ns_per_op"`
	WarmNsPerOp  int64 `json:"warm_ns_per_op"`
	// WarmStoreHits counts disk-tier hits during the warm cold start
	// (the restarted daemon's warm-start signal; 0 would mean the
	// store did nothing).
	WarmStoreHits uint64 `json:"warm_store_hits"`
	// CachedNsPerOp / CachedStoreNsPerOp are repeat-analyze times
	// (program-cache hits) without and with a store; the store must
	// not change this path.
	CachedNsPerOp      int64 `json:"cached_ns_per_op"`
	CachedStoreNsPerOp int64 `json:"cached_store_ns_per_op"`
}

// StoreBench is the full sweep plus environment and store totals.
type StoreBench struct {
	Go     string `json:"go"`
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
	Reps   int    `json:"reps"`
	// Records / LogBytes describe the populated store the warm runs
	// opened.
	Records  int        `json:"records"`
	LogBytes int64      `json:"log_bytes"`
	Rows     []StoreRow `json:"rows"`
}

// RunStoreBench populates a store from the 13-workload corpus, then
// sweeps per-workload cold starts in the three configurations.
func RunStoreBench(reps int) (StoreBench, error) {
	if reps < 1 {
		reps = 1
	}
	bench := StoreBench{
		Go:     runtime.Version(),
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
		Reps:   reps,
	}
	warmDir, err := os.MkdirTemp("", "fx10-storebench-*")
	if err != nil {
		return bench, err
	}
	defer os.RemoveAll(warmDir)

	// Populate: one engine analyzes the whole corpus, then closes
	// (sync + snapshot) — the state a daemon leaves behind at SIGTERM.
	seed, err := engine.New(engine.Config{SummaryStorePath: warmDir})
	if err != nil {
		return bench, err
	}
	for _, wl := range workloads.All() {
		if _, err := seed.Analyze(engine.Job{Name: wl.Name, Program: wl.Program(), Mode: constraints.ContextSensitive}); err != nil {
			return bench, err
		}
	}
	if st, ok := seed.SummaryStoreStats(); ok {
		bench.Records = st.Records
		bench.LogBytes = st.LogBytes
	}
	if err := seed.Close(); err != nil {
		return bench, err
	}

	for _, wl := range workloads.All() {
		row, err := measureStore(wl, warmDir, reps)
		if err != nil {
			return bench, err
		}
		bench.Rows = append(bench.Rows, row)
	}
	return bench, nil
}

func measureStore(wl *workloads.Benchmark, warmDir string, reps int) (StoreRow, error) {
	row := StoreRow{Benchmark: wl.Name}
	p := wl.Program()
	job := engine.Job{Name: wl.Name, Program: p, Mode: constraints.ContextSensitive}

	// coldStart times one fresh-engine analyze; dirFor supplies the
	// store directory per rep ("" = no store) so the empty-store case
	// can use a throwaway directory each rep.
	coldStart := func(dirFor func() (string, func(), error), wantHits bool) (int64, error) {
		best := time.Duration(0)
		for rep := 0; rep < reps; rep++ {
			dir, cleanup, err := dirFor()
			if err != nil {
				return 0, err
			}
			t0 := time.Now()
			e, err := engine.New(engine.Config{SummaryStorePath: dir})
			if err != nil {
				return 0, err
			}
			if _, err := e.Analyze(job); err != nil {
				return 0, err
			}
			d := time.Since(t0)
			if rep == 0 && wantHits {
				if st, ok := e.SummaryStoreStats(); ok {
					row.WarmStoreHits = st.Hits
				}
			}
			_ = e.Close()
			if cleanup != nil {
				cleanup()
			}
			if rep == 0 || d < best {
				best = d
			}
		}
		return best.Nanoseconds(), nil
	}
	noStore := func() (string, func(), error) { return "", nil, nil }
	emptyStore := func() (string, func(), error) {
		tmp, err := os.MkdirTemp("", "fx10-storebench-empty-*")
		if err != nil {
			return "", nil, err
		}
		return tmp, func() { os.RemoveAll(tmp) }, nil
	}
	warmStore := func() (string, func(), error) { return warmDir, nil, nil }

	var err error
	if row.ColdNsPerOp, err = coldStart(noStore, false); err != nil {
		return row, err
	}
	if row.EmptyNsPerOp, err = coldStart(emptyStore, false); err != nil {
		return row, err
	}
	if row.WarmNsPerOp, err = coldStart(warmStore, true); err != nil {
		return row, err
	}

	// Cached-query throughput: repeat analyzes on a live engine are
	// program-cache hits; the store must not appear on this path.
	cached := func(dir string) (int64, error) {
		e, err := engine.New(engine.Config{SummaryStorePath: dir})
		if err != nil {
			return 0, err
		}
		defer e.Close()
		if _, err := e.Analyze(job); err != nil {
			return 0, err
		}
		const iters = 64
		best := time.Duration(0)
		for rep := 0; rep < reps; rep++ {
			t0 := time.Now()
			for i := 0; i < iters; i++ {
				if _, err := e.Analyze(job); err != nil {
					return 0, err
				}
			}
			if d := time.Since(t0); rep == 0 || d < best {
				best = d
			}
		}
		return best.Nanoseconds() / iters, nil
	}
	if row.CachedNsPerOp, err = cached(""); err != nil {
		return row, err
	}
	if row.CachedStoreNsPerOp, err = cached(warmDir); err != nil {
		return row, err
	}
	return row, nil
}

// FormatStoreBench renders the sweep as an aligned table.
func FormatStoreBench(bench StoreBench) string {
	var b strings.Builder
	tw := newTable(&b, "benchmark", "cold ns/op", "empty-store ns/op", "warm-store ns/op", "warm hits", "cached ns/op", "cached+store ns/op")
	for _, r := range bench.Rows {
		tw.row(r.Benchmark,
			fmt.Sprint(r.ColdNsPerOp),
			fmt.Sprint(r.EmptyNsPerOp),
			fmt.Sprint(r.WarmNsPerOp),
			fmt.Sprint(r.WarmStoreHits),
			fmt.Sprint(r.CachedNsPerOp),
			fmt.Sprint(r.CachedStoreNsPerOp))
	}
	tw.flush()
	fmt.Fprintf(&b, "(%s %s/%s, best of %d reps; one op = fresh engine + one analyze; warm store holds %d summaries in %d log bytes)\n",
		bench.Go, bench.GOOS, bench.GOARCH, bench.Reps, bench.Records, bench.LogBytes)
	return b.String()
}

// WriteStoreBenchJSON writes the sweep machine-readably (the
// committed BENCH_store.json).
func WriteStoreBenchJSON(bench StoreBench, path string) error {
	data, err := json.MarshalIndent(bench, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
