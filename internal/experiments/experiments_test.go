package experiments

import (
	"strings"
	"testing"

	"fx10/internal/constraints"
	"fx10/internal/syntax"
)

func TestFigure5ContainsPaperConstraints(t *testing.T) {
	out := Figure5()
	for _, frag := range []string{
		"r_S13 = {S2} ∪ r_S1",
		"m_S6 = Lcross(S6, r_S6) ∪ m_S11 ∪ m_S7",
		"m_S12 = Lcross(S12, r_S12)",
	} {
		if !strings.Contains(out, frag) {
			t.Fatalf("Figure 5 output missing %q:\n%s", frag, out)
		}
	}
}

func TestExamplesMatchPaper(t *testing.T) {
	for _, run := range []func() (ExampleResult, error){Example21, Example22} {
		ex, err := run()
		if err != nil {
			t.Fatal(err)
		}
		if !ex.Match {
			t.Fatalf("%s: inferred %v, paper expects %v", ex.Name, ex.Pairs, ex.Expected)
		}
	}
}

func TestFigure6Rows(t *testing.T) {
	rows := Figure6()
	if len(rows) != 13 {
		t.Fatalf("rows = %d, want 13", len(rows))
	}
	for _, r := range rows {
		if r.AsyncTotal != r.Paper.AsyncTotal {
			t.Errorf("%s: async total %d != paper %d", r.Name, r.AsyncTotal, r.Paper.AsyncTotal)
		}
		if r.Slabels == 0 || r.Level1 == 0 || r.Level2 == 0 {
			t.Errorf("%s: zero constraint counts", r.Name)
		}
		// The paper's structural invariant: level-2 constraints are
		// one per statement plus one per method; Slabels is one per
		// statement.
		if r.Level2 <= r.Slabels {
			t.Errorf("%s: level-2 (%d) should exceed Slabels (%d)", r.Name, r.Level2, r.Slabels)
		}
	}
	out := FormatFigure6(rows)
	if !strings.Contains(out, "plasma") || !strings.Contains(out, "benchmark") {
		t.Fatalf("format output malformed:\n%s", out)
	}
}

func TestFigure7Rows(t *testing.T) {
	rows := Figure7()
	if len(rows) != 13 {
		t.Fatalf("rows = %d", len(rows))
	}
	out := FormatFigure7(rows)
	if !strings.Contains(out, "switch") {
		t.Fatalf("format output missing header:\n%s", out)
	}
}

func TestFigure8And9(t *testing.T) {
	if testing.Short() {
		t.Skip("full inference over all benchmarks")
	}
	rows, err := Figure8()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 13 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.TimeMS < 0 || r.SpaceMB <= 0 {
			t.Errorf("%s: missing metrics %+v", r.Name, r)
		}
		if r.IterSlabels < 2 || r.IterL1 < 2 || r.IterL2 < 2 {
			t.Errorf("%s: implausible iteration counts", r.Name)
		}
	}
	out := FormatFigure8(rows)
	if !strings.Contains(out, "self") {
		t.Fatalf("figure 8 format malformed")
	}

	rows9, err := Figure9()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows9) != 4 {
		t.Fatalf("figure 9 rows = %d, want 4", len(rows9))
	}
	// The headline result: context-insensitive analysis is slower and
	// produces more pairs on both large benchmarks.
	for i := 0; i < 4; i += 2 {
		cs, ci := rows9[i], rows9[i+1]
		if cs.Mode != constraints.ContextSensitive || ci.Mode != constraints.ContextInsensitive {
			t.Fatalf("row order wrong")
		}
		if ci.Pairs.Total <= cs.Pairs.Total {
			t.Errorf("%s: CI pairs (%d) not above CS (%d)", cs.Name, ci.Pairs.Total, cs.Pairs.Total)
		}
		if ci.Pairs.Diff <= cs.Pairs.Diff {
			t.Errorf("%s: CI diff pairs (%d) not above CS (%d)", cs.Name, ci.Pairs.Diff, cs.Pairs.Diff)
		}
		if ci.IterL1 <= cs.IterL1 {
			t.Errorf("%s: CI level-1 iterations (%d) not above CS (%d)", cs.Name, ci.IterL1, cs.IterL1)
		}
	}
	out9 := FormatFigure9(rows9)
	if !strings.Contains(out9, "context-insensitive") {
		t.Fatalf("figure 9 format malformed")
	}
}

func TestCorpusParallelIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("two full corpus sweeps")
	}
	run, err := Corpus(4)
	if err != nil {
		t.Fatal(err)
	}
	if !run.Identical {
		t.Fatal("parallel corpus results differ from sequential")
	}
	if len(run.Rows) != 13 {
		t.Fatalf("rows = %d, want 13", len(run.Rows))
	}
	// The parallel rows are the Figure 8 table: pair counts must
	// match the sequential figure exactly.
	fig8, err := Figure8()
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range run.Rows {
		if r.Pairs != fig8[i].Pairs {
			t.Errorf("%s: corpus pairs %+v != figure 8 pairs %+v", r.Name, r.Pairs, fig8[i].Pairs)
		}
	}
	if run.Workers != 4 {
		t.Errorf("workers = %d, want 4", run.Workers)
	}
	out := FormatCorpus(run)
	for _, frag := range []string{"speedup", "identical to sequential: true", "workers: 4"} {
		if !strings.Contains(out, frag) {
			t.Errorf("corpus output missing %q:\n%s", frag, out)
		}
	}
}

func TestTablePanicsOnBadRow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("short row did not panic")
		}
	}()
	var b strings.Builder
	tw := newTable(&b, "a", "b")
	tw.row("only one")
}

func TestScaling(t *testing.T) {
	rows, err := Scaling([]int{10, 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	for _, r := range rows {
		if r.Labels == 0 {
			t.Fatalf("%s/%d: no labels", r.Family, r.Size)
		}
	}
	// wide(n) has Θ(n²) pairs: going 10 → 20 should roughly
	// quadruple them.
	var w10, w20 int
	for _, r := range rows {
		if r.Family == "wide" && r.Size == 10 {
			w10 = r.Pairs
		}
		if r.Family == "wide" && r.Size == 20 {
			w20 = r.Pairs
		}
	}
	if w20 < 3*w10 {
		t.Fatalf("wide pairs did not grow quadratically: %d → %d", w10, w20)
	}
	out := FormatScaling(rows)
	if !strings.Contains(out, "growth-exp") || !strings.Contains(out, "chain") {
		t.Fatalf("format malformed:\n%s", out)
	}
}

func TestScalingProgramsValid(t *testing.T) {
	for _, n := range []int{1, 5, 50} {
		for name, p := range map[string]func(int) *syntax.Program{
			"chain": ChainProgram, "wide": WideProgram, "loops": LoopsProgram,
		} {
			if err := syntax.Validate(p(n)); err != nil {
				t.Fatalf("%s(%d): %v", name, n, err)
			}
		}
	}
}
