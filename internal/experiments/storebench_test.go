package experiments

import (
	"strings"
	"testing"

	"fx10/internal/workloads"
)

func TestRunStoreBench(t *testing.T) {
	bench, err := RunStoreBench(1)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(bench.Rows), len(workloads.All()); got != want {
		t.Fatalf("rows = %d, want %d", got, want)
	}
	if bench.Records == 0 || bench.LogBytes == 0 {
		t.Fatalf("populated store is empty: records=%d logBytes=%d", bench.Records, bench.LogBytes)
	}
	anyHits := false
	for _, r := range bench.Rows {
		if r.ColdNsPerOp <= 0 || r.EmptyNsPerOp <= 0 || r.WarmNsPerOp <= 0 {
			t.Fatalf("%s: non-positive cold-start timing: %+v", r.Benchmark, r)
		}
		if r.CachedNsPerOp <= 0 || r.CachedStoreNsPerOp <= 0 {
			t.Fatalf("%s: non-positive cached timing: %+v", r.Benchmark, r)
		}
		if r.WarmStoreHits > 0 {
			anyHits = true
		}
	}
	if !anyHits {
		t.Fatal("no workload warm-started from the store")
	}
	out := FormatStoreBench(bench)
	if !strings.Contains(out, "warm hits") || !strings.Contains(out, bench.Rows[0].Benchmark) {
		t.Fatalf("format output incomplete:\n%s", out)
	}
}
