package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"fx10/internal/constraints"
	"fx10/internal/labels"
	"fx10/internal/parser"
	"fx10/internal/progen"
	"fx10/internal/syntax"
)

// The clocked bench quantifies what the phase refinement buys: the
// same constraint system solved clock-blind (phase facts stripped)
// and clock-aware (phase-ordered pairs pruned during solving), over
// the canonical split-phase example plus a generated clocked corpus.
// The interesting columns are the pair counts — clock-aware must
// never exceed clock-blind, and strictly undercuts it on programs
// whose barriers actually serialize anything — with solve times
// showing the refinement is close to free. It backs the README's
// clocked section and is written as BENCH_clocked.json so precision
// regressions are diffable across commits.

// clockedBenchSeed derives the generated corpus; fixed so the
// committed figure is reproducible.
const clockedBenchSeed = 20100109 // PPoPP'10 week, why not

// phasedSource is the canonical split-phase example (also at
// testdata/phased.fx10), inlined so the bench runs from any working
// directory.
const phasedSource = `
array 8;
void main() {
  L: clocked async {
    WL: a[0] = 1;
    NL: next;
    RL: a[2] = a[1] + 1;
  }
  R: clocked async {
    WR: a[1] = 1;
    NR: next;
    RR: a[3] = a[0] + 1;
  }
  N: next;
  D: a[4] = a[2] + 1;
}
`

// ClockedBenchRow is one program's blind-vs-aware measurement.
type ClockedBenchRow struct {
	Name   string `json:"name"`
	Labels int    `json:"labels"`
	// BlindPairs and AwarePairs are unordered main-M pair counts
	// without and with the phase refinement; Pruned is their
	// difference (the pairs the barriers prove ordered).
	BlindPairs int `json:"blind_pairs"`
	AwarePairs int `json:"aware_pairs"`
	Pruned     int `json:"pruned"`
	// BlindNs and AwareNs are best-of-reps solve times.
	BlindNs int64 `json:"blind_ns_per_op"`
	AwareNs int64 `json:"aware_ns_per_op"`
}

// ClockedBench is the full sweep plus the environment it ran in.
type ClockedBench struct {
	Go     string `json:"go"`
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
	Reps   int    `json:"reps"`
	// Programs counts clocked programs measured; StrictlyFewer counts
	// those where clock-aware < clock-blind.
	Programs      int               `json:"programs"`
	StrictlyFewer int               `json:"strictly_fewer"`
	Rows          []ClockedBenchRow `json:"rows"`
}

// RunClockedBench measures n generated clocked programs (plus the
// split-phase example) blind and aware, context-sensitively.
func RunClockedBench(n, reps int) (ClockedBench, error) {
	if reps < 1 {
		reps = 1
	}
	bench := ClockedBench{
		Go:     runtime.Version(),
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
		Reps:   reps,
	}

	phased, err := parser.Parse(phasedSource)
	if err != nil {
		return bench, err
	}
	type prog struct {
		name string
		p    *syntax.Program
	}
	progs := []prog{{name: "phased", p: phased}}
	// Walk seeds until n clocked programs are collected. The generator
	// flips clock constructs on probabilistically, so seeds that come
	// out clock-free are skipped — as are ones whose only clock use is
	// a bare next with no clocked children (a barrier with a single
	// registrant is degenerate: it synchronizes nothing).
	for seed := int64(clockedBenchSeed); len(progs) < n+1; seed++ {
		p := progen.Generate(seed, progen.ClockedFinite())
		if !spawnsClocked(p) {
			continue
		}
		progs = append(progs, prog{name: fmt.Sprintf("gen-%d", seed-clockedBenchSeed), p: p})
	}

	for _, pr := range progs {
		row, err := measureClocked(pr.name, pr.p, reps)
		if err != nil {
			return bench, err
		}
		bench.Programs++
		if row.AwarePairs < row.BlindPairs {
			bench.StrictlyFewer++
		}
		bench.Rows = append(bench.Rows, row)
	}
	return bench, nil
}

// spawnsClocked reports whether p contains at least one clocked async.
func spawnsClocked(p *syntax.Program) bool {
	for _, a := range p.AsyncLabels() {
		if as, ok := p.Labels[a].Instr.(*syntax.Async); ok && as.Clocked {
			return true
		}
	}
	return false
}

// measureClocked solves one program's system twice — phase facts
// stripped and intact — and reports pair counts and solve times.
func measureClocked(name string, p *syntax.Program, reps int) (ClockedBenchRow, error) {
	in := labels.Compute(p)
	aware := constraints.Generate(in, constraints.ContextSensitive)
	blind := constraints.Generate(in, constraints.ContextSensitive)
	blind.Phases, blind.PhaseCode = nil, nil

	awareSol := aware.Solve(constraints.Options{})
	blindSol := blind.Solve(constraints.Options{})

	row := ClockedBenchRow{
		Name:       name,
		Labels:     p.NumLabels(),
		AwarePairs: countUnordered(awareSol),
		BlindPairs: countUnordered(blindSol),
	}
	row.Pruned = row.BlindPairs - row.AwarePairs
	if row.Pruned < 0 {
		return row, fmt.Errorf("clocked bench: %s: clock-aware has MORE pairs than clock-blind (%d > %d)",
			name, row.AwarePairs, row.BlindPairs)
	}
	row.AwareNs = timeSolve(aware, reps)
	row.BlindNs = timeSolve(blind, reps)
	return row, nil
}

func countUnordered(sol *constraints.Solution) int {
	n := 0
	sol.MainM().Each(func(i, j int) {
		if i <= j {
			n++
		}
	})
	return n
}

// timeSolve is the best-of-reps solve time over an adaptively sized
// inner loop, as in measureSolver.
func timeSolve(sys *constraints.System, reps int) int64 {
	warm := sys.Solve(constraints.Options{})
	iters := 1
	if d := warm.Duration; d > 0 {
		iters = int(2 * time.Millisecond / d)
	}
	if iters < 1 {
		iters = 1
	}
	if iters > 512 {
		iters = 512
	}
	best := time.Duration(0)
	for rep := 0; rep < reps; rep++ {
		t0 := time.Now()
		for i := 0; i < iters; i++ {
			sys.Solve(constraints.Options{})
		}
		if d := time.Since(t0); rep == 0 || d < best {
			best = d
		}
	}
	return best.Nanoseconds() / int64(iters)
}

// FormatClockedBench renders the sweep as an aligned table.
func FormatClockedBench(bench ClockedBench) string {
	var b strings.Builder
	tw := newTable(&b, "program", "labels", "blind", "aware", "pruned", "blind ns/op", "aware ns/op")
	for _, r := range bench.Rows {
		tw.row(r.Name,
			fmt.Sprint(r.Labels),
			fmt.Sprint(r.BlindPairs),
			fmt.Sprint(r.AwarePairs),
			fmt.Sprint(r.Pruned),
			fmt.Sprint(r.BlindNs),
			fmt.Sprint(r.AwareNs))
	}
	tw.flush()
	fmt.Fprintf(&b, "clock-aware strictly fewer pairs on %d/%d clocked programs\n",
		bench.StrictlyFewer, bench.Programs)
	fmt.Fprintf(&b, "(%s %s/%s, best of %d reps; pairs are unordered main-M counts)\n",
		bench.Go, bench.GOOS, bench.GOARCH, bench.Reps)
	return b.String()
}

// WriteClockedBenchJSON writes the sweep machine-readably (the
// committed BENCH_clocked.json).
func WriteClockedBenchJSON(bench ClockedBench, path string) error {
	data, err := json.MarshalIndent(bench, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
