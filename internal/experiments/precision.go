package experiments

import (
	"fmt"
	"strings"

	"fx10/internal/engine"
	"fx10/internal/explore"
	"fx10/internal/intset"
	"fx10/internal/syntax"
	"fx10/internal/workloads"
)

// The precision study is the benchmark-scale counterpart of the
// differential fuzzer (internal/difffuzz): it cross-checks the exact
// MHP relation, computed by budget-bounded exhaustive interleaving
// search, against the static relation M on the 13 workload
// benchmarks. Theorem 2's containment direction — every exact pair
// is in M — must hold even when the state budget truncates the
// search, because a truncated search still only visits reachable
// states. The gap M \ exact is the analysis' imprecision; on
// truncated benchmarks it is only an upper bound on the true gap.

// DefaultPrecisionBudget is the per-benchmark state budget
// cmd/mhpbench uses. The benchmarks contain while loops, so most
// state spaces are effectively unbounded and the budget truncates
// them; the containment check is valid regardless (see above).
const DefaultPrecisionBudget = 20_000

// PrecisionRow is one benchmark's exact-vs-static comparison.
type PrecisionRow struct {
	Name     string
	States   int  // states visited across both explorations
	Complete bool // both explorations finished within budget
	Exact    int  // unordered exact pairs (lower bound when !Complete)
	Static   int  // unordered pairs in M
	Gap      int  // Static − Exact
}

// TheoremPrecision runs the cross-check under the given state budget
// per benchmark. It fails hard if any benchmark violates the
// containment exact ⊆ static, which would falsify Theorem 2.
func TheoremPrecision(maxStates int) ([]PrecisionRow, error) {
	var rows []PrecisionRow
	for _, b := range workloads.All() {
		p := b.Program()
		res, err := figEngine.Analyze(engine.Job{Name: b.Name, Program: p})
		if err != nil {
			return nil, fmt.Errorf("experiments: analyze %s: %w", b.Name, err)
		}
		// Two explorations, both sound lower bounds on the exact
		// relation (M is data-independent, so Theorem 2 covers any
		// initial array): the zero array — the paper's initial
		// configuration, which typically completes but leaves
		// while-loop bodies dead (guards test a[d] != 0) — and the
		// all-ones array, which arms the loops (often unbounded; the
		// state budget truncates). The reported exact set is their
		// union.
		ones := make([]int64, p.ArrayLen)
		for i := range ones {
			ones[i] = 1
		}
		zero := explore.MHP(p, nil, maxStates)
		armed := explore.MHP(p, ones, maxStates)
		for _, exact := range []explore.Result{zero, armed} {
			if !exact.MHP.SubsetOf(res.M) {
				witness := "?"
				exact.MHP.Each(func(i, j int) {
					if witness == "?" && !res.M.Has(i, j) {
						witness = fmt.Sprintf("(%s, %s)", p.LabelName(syntax.Label(i)), p.LabelName(syntax.Label(j)))
					}
				})
				return nil, fmt.Errorf("experiments: %s: exact pair %s missing from static M — Theorem 2 containment violated", b.Name, witness)
			}
		}
		union := zero.MHP.Clone()
		union.UnionWith(armed.MHP)
		rows = append(rows, PrecisionRow{
			Name:     b.Name,
			States:   zero.States + armed.States,
			Complete: zero.Complete && armed.Complete,
			Exact:    unorderedPairs(union),
			Static:   unorderedPairs(res.M),
			Gap:      unorderedPairs(res.M) - unorderedPairs(union),
		})
	}
	return rows, nil
}

// unorderedPairs counts the unordered pairs of a symmetric set.
func unorderedPairs(ps *intset.PairSet) int {
	n := 0
	ps.Each(func(i, j int) {
		if i <= j {
			n++
		}
	})
	return n
}

// FormatPrecision renders the study as a table.
func FormatPrecision(rows []PrecisionRow) string {
	var b strings.Builder
	tw := newTable(&b, "benchmark", "states", "complete", "exact", "static", "gap")
	for _, r := range rows {
		tw.row(r.Name, fmt.Sprint(r.States), fmt.Sprint(r.Complete),
			fmt.Sprint(r.Exact), fmt.Sprint(r.Static), fmt.Sprint(r.Gap))
	}
	tw.flush()
	b.WriteString("(exact ⊆ static held on every benchmark — Theorem 2's containment direction;\n" +
		" on incomplete explorations the exact column is a lower bound, so gap is an upper bound)\n")
	return b.String()
}
