package experiments

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"fx10/internal/condensed"
	"fx10/internal/constraints"
	"fx10/internal/gofront"
	"fx10/internal/intset"
	"fx10/internal/mhp"

	fxruntime "fx10/internal/runtime"
)

// The gofront study measures what the real-Go front end preserves on
// the committed corpus (testdata/goprograms): per program, how much
// of the source lowers faithfully (coverage = 1 − dropped/stmts, per
// Might & Van Horn's skip-lowering), the condensed structure it
// yields (finish/async nodes, labels), and the MHP pair counts in
// both modes. The observed column replays each program through the
// instrumented runtime over several seeds and counts the pairs
// actually seen — by the soundness argument of DESIGN.md §12 it must
// be ≤ the static count, and the sweep fails if it is not. Written as
// BENCH_gofront.json so front-end regressions (coverage drops, pair
// blow-ups) are diffable across commits.

// GofrontRow is one corpus program's measurements.
type GofrontRow struct {
	File string `json:"file"`
	// LOC / Stmts / Dropped describe the lowering: source lines,
	// statements considered, and statements skip-lowered with a
	// diagnostic. Coverage = 1 − Dropped/Stmts.
	LOC      int     `json:"loc"`
	Stmts    int     `json:"stmts"`
	Dropped  int     `json:"dropped"`
	Coverage float64 `json:"coverage"`
	// Finishes / Asyncs / Labels describe the condensed unit the
	// front end produced.
	Finishes int `json:"finishes"`
	Asyncs   int `json:"asyncs"`
	Labels   int `json:"labels"`
	// CSPairs / CIPairs are unordered main-M pair counts in the
	// context-sensitive and context-insensitive modes.
	CSPairs int `json:"cs_pairs"`
	CIPairs int `json:"ci_pairs"`
	// ObservedPairs counts the distinct unordered pairs the
	// instrumented runtime actually witnessed across the seeds; it is
	// ≤ CSPairs by soundness (enforced, not assumed).
	ObservedPairs int `json:"observed_pairs"`
}

// GofrontBench is the full sweep plus environment.
type GofrontBench struct {
	Go     string       `json:"go"`
	GOOS   string       `json:"goos"`
	GOARCH string       `json:"goarch"`
	Seeds  int          `json:"seeds"`
	Rows   []GofrontRow `json:"rows"`
}

// RunGofrontBench sweeps every .go file under dir through the Go
// front end, the analysis in both modes, and the instrumented
// runtime. It fails if any observed pair escapes the static relation
// — the bench doubles as a soundness check on the committed corpus.
func RunGofrontBench(dir string, seeds int) (GofrontBench, error) {
	if seeds < 1 {
		seeds = 1
	}
	bench := GofrontBench{
		Go:     runtime.Version(),
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
		Seeds:  seeds,
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return bench, fmt.Errorf("gofront bench: %w", err)
	}
	var names []string
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".go" {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return bench, fmt.Errorf("gofront bench: no .go files under %s", dir)
	}
	for _, name := range names {
		row, err := measureGofront(filepath.Join(dir, name), seeds)
		if err != nil {
			return bench, err
		}
		row.File = name
		bench.Rows = append(bench.Rows, row)
	}
	return bench, nil
}

func measureGofront(path string, seeds int) (GofrontRow, error) {
	var row GofrontRow
	src, err := os.ReadFile(path)
	if err != nil {
		return row, err
	}
	u, st, err := gofront.Lower(string(src))
	if err != nil {
		return row, fmt.Errorf("gofront bench: %s: %w", path, err)
	}
	row.LOC, row.Stmts, row.Dropped = st.LOC, st.Stmts, len(st.Dropped)
	row.Coverage = st.Coverage()
	counts := u.NodeCounts()
	row.Finishes = counts.Of(condensed.Finish)
	row.Asyncs = counts.Of(condensed.Async)

	p, err := condensed.Lower(u)
	if err != nil {
		return row, fmt.Errorf("gofront bench: %s: %w", path, err)
	}
	row.Labels = p.NumLabels()

	cs, err := mhp.Analyze(p, constraints.ContextSensitive)
	if err != nil {
		return row, err
	}
	ci, err := mhp.Analyze(p, constraints.ContextInsensitive)
	if err != nil {
		return row, err
	}
	row.CSPairs = unorderedPairs(cs.M)
	row.CIPairs = unorderedPairs(ci.M)

	observed := intset.NewPairs(p.NumLabels())
	for seed := 0; seed < seeds; seed++ {
		out, err := fxruntime.Run(p, nil, fxruntime.Options{
			RecordParallel: true,
			Seed:           int64(seed),
			MaxSteps:       200_000,
		})
		if err != nil && !errors.Is(err, fxruntime.ErrFuelExhausted) {
			return row, fmt.Errorf("gofront bench: %s seed %d: %w", path, seed, err)
		}
		observed.UnionWith(out.Observed)
	}
	if !observed.SubsetOf(cs.M) {
		return row, fmt.Errorf("gofront bench: %s: observed pairs escape static M (front end unsound)", path)
	}
	row.ObservedPairs = unorderedPairs(observed)
	return row, nil
}

// FormatGofrontBench renders the sweep as an aligned table.
func FormatGofrontBench(bench GofrontBench) string {
	var b strings.Builder
	tw := newTable(&b, "program", "loc", "stmts", "dropped", "coverage", "finish", "async", "labels", "CS pairs", "CI pairs", "observed")
	for _, r := range bench.Rows {
		tw.row(r.File,
			fmt.Sprint(r.LOC),
			fmt.Sprint(r.Stmts),
			fmt.Sprint(r.Dropped),
			fmt.Sprintf("%.2f", r.Coverage),
			fmt.Sprint(r.Finishes),
			fmt.Sprint(r.Asyncs),
			fmt.Sprint(r.Labels),
			fmt.Sprint(r.CSPairs),
			fmt.Sprint(r.CIPairs),
			fmt.Sprint(r.ObservedPairs))
	}
	tw.flush()
	fmt.Fprintf(&b, "(%s %s/%s; pairs are unordered main-M counts; observed ⊆ CS checked over %d runtime seeds)\n",
		bench.Go, bench.GOOS, bench.GOARCH, bench.Seeds)
	return b.String()
}

// WriteGofrontBenchJSON writes the sweep machine-readably (the
// committed BENCH_gofront.json).
func WriteGofrontBenchJSON(bench GofrontBench, path string) error {
	data, err := json.MarshalIndent(bench, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
