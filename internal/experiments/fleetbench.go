package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fx10/internal/constraints"
	"fx10/internal/engine"
	"fx10/internal/fleet"
	"fx10/internal/labels"
	"fx10/internal/progen"
	"fx10/internal/server"
	"fx10/internal/shard"
	"fx10/internal/syntax"
	"fx10/internal/workloads"
)

// The fleet bench measures the two layers ISSUE 10 adds. The fleet
// rows drive an in-process replica set (real servers behind real
// loopback listeners, the consistent-hash router in front) with
// query-heavy traffic at 1, 2 and 4 replicas — the scaling signal for
// a read-mostly analysis service whose responses are replica-
// independent. The shard rows compare the sharded solver against
// sequential topo per workload, with the shard plan's structure
// (shards, merge rounds) alongside the times so cost regressions are
// attributable. Written as BENCH_fleet.json so regressions are
// diffable across commits.

// FleetRow is one replica-count throughput measurement.
type FleetRow struct {
	Replicas    int     `json:"replicas"`
	Clients     int     `json:"clients"`
	Requests    int64   `json:"requests"`
	DurationSec float64 `json:"duration_sec"`
	ReqPerSec   float64 `json:"req_per_sec"`
}

// ShardCostRow is one workload's shard-vs-topo solve comparison.
type ShardCostRow struct {
	Benchmark     string `json:"benchmark"`
	TopoNsPerOp   int64  `json:"topo_ns_per_op"`
	ShardNsPerOp  int64  `json:"shard_ns_per_op"`
	Shards        int    `json:"shards"`
	MergeRoundsL1 int    `json:"merge_rounds_l1"`
	MergeRoundsL2 int    `json:"merge_rounds_l2"`
}

// FleetBench is the full sweep plus environment.
type FleetBench struct {
	Go        string         `json:"go"`
	GOOS      string         `json:"goos"`
	GOARCH    string         `json:"goarch"`
	Reps      int            `json:"reps"`
	Fleet     []FleetRow     `json:"fleet"`
	ShardCost []ShardCostRow `json:"shard_cost"`
}

// RunFleetBench measures routed throughput at 1/2/4 replicas and the
// per-workload shard-vs-topo solve cost (best of reps).
func RunFleetBench(reps int) (FleetBench, error) {
	if reps < 1 {
		reps = 1
	}
	bench := FleetBench{
		Go:     runtime.Version(),
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
		Reps:   reps,
	}
	for _, n := range []int{1, 2, 4} {
		row, err := measureFleet(n)
		if err != nil {
			return bench, err
		}
		bench.Fleet = append(bench.Fleet, row)
	}
	rows, err := measureShardCost(reps)
	if err != nil {
		return bench, err
	}
	bench.ShardCost = rows
	return bench, nil
}

// measureFleet drives one replica set through the router for a fixed
// window of query-heavy traffic.
func measureFleet(replicas int) (FleetRow, error) {
	const (
		clients = 8
		window  = 2 * time.Second
	)
	row := FleetRow{Replicas: replicas, Clients: clients, DurationSec: window.Seconds()}

	type replica struct {
		srv  *server.Server
		http *http.Server
		url  string
	}
	var reps []replica
	defer func() {
		for _, r := range reps {
			_ = r.http.Close()
			r.srv.Close()
		}
	}()
	var bases []string
	for i := 0; i < replicas; i++ {
		srv, err := server.New(server.Config{})
		if err != nil {
			return row, err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			srv.Close()
			return row, err
		}
		hs := &http.Server{Handler: srv.Handler()}
		go func() { _ = hs.Serve(ln) }()
		url := "http://" + ln.Addr().String()
		reps = append(reps, replica{srv: srv, http: hs, url: url})
		bases = append(bases, url)
	}
	rt, err := fleet.NewRouter(fleet.RouterConfig{Backends: bases})
	if err != nil {
		return row, err
	}
	defer rt.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return row, err
	}
	front := &http.Server{Handler: rt.Handler()}
	go func() { _ = front.Serve(ln) }()
	defer front.Close()
	frontURL := "http://" + ln.Addr().String()

	client := &http.Client{Timeout: 30 * time.Second}
	// Warm every replica directly so the measured window is pure
	// routed cache-hit traffic, not first-solve noise.
	type target struct {
		hash   string
		labels []string
	}
	var targets []target
	for _, wl := range workloads.All() {
		p := wl.Program()
		src := syntax.Print(p)
		var hash string
		for _, base := range bases {
			var resp struct {
				ProgramHash string `json:"programHash"`
			}
			if err := postFleetJSON(client, base+"/v1/analyze", map[string]string{"source": src}, &resp); err != nil {
				return row, fmt.Errorf("warm %s: %w", wl.Name, err)
			}
			hash = resp.ProgramHash
		}
		names := make([]string, len(p.Labels))
		for l := range p.Labels {
			names[l] = p.Labels[l].Name
		}
		targets = append(targets, target{hash: hash, labels: names})
	}

	var total atomic.Int64
	deadline := time.Now().Add(window)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			i := c
			for time.Now().Before(deadline) {
				t := targets[i%len(targets)]
				a := t.labels[i%len(t.labels)]
				b := t.labels[(i+1)%len(t.labels)]
				err := postFleetJSON(client, frontURL+"/v1/query", map[string]string{
					"programHash": t.hash, "a": a, "b": b,
				}, nil)
				if err == nil {
					total.Add(1)
				}
				i++
			}
		}(c)
	}
	wg.Wait()
	row.Requests = total.Load()
	row.ReqPerSec = float64(row.Requests) / window.Seconds()
	return row, nil
}

// measureShardCost times fresh-engine solves per workload under topo
// and shard, capturing the shard plan's structure from the run. The
// paper workloads are few-method (their plans collapse to one shard),
// so huge-tier generated programs follow: many methods, real fan-out,
// the shape the sharded solver exists for. Shard solutions are
// verified bit-identical to topo before their times are recorded.
func measureShardCost(reps int) ([]ShardCostRow, error) {
	var rows []ShardCostRow
	for _, wl := range workloads.All() {
		row := ShardCostRow{Benchmark: wl.Name}
		job := engine.Job{Name: wl.Name, Program: wl.Program(), Mode: constraints.ContextSensitive}
		solve := func(strategy string) (int64, *constraints.ShardStats, error) {
			best := time.Duration(0)
			var shard *constraints.ShardStats
			for rep := 0; rep < reps; rep++ {
				e, err := engine.New(engine.Config{Strategy: strategy})
				if err != nil {
					return 0, nil, err
				}
				t0 := time.Now()
				res, err := e.Analyze(job)
				if err != nil {
					return 0, nil, err
				}
				if d := time.Since(t0); best == 0 || d < best {
					best = d
				}
				if res.Stats.Shard != nil {
					shard = res.Stats.Shard
				}
			}
			return best.Nanoseconds(), shard, nil
		}
		topoNs, _, err := solve("topo")
		if err != nil {
			return nil, err
		}
		shardNs, st, err := solve("shard")
		if err != nil {
			return nil, err
		}
		row.TopoNsPerOp = topoNs
		row.ShardNsPerOp = shardNs
		if st != nil {
			row.Shards = st.Shards
			row.MergeRoundsL1 = st.MergeRoundsL1
			row.MergeRoundsL2 = st.MergeRoundsL2
		}
		rows = append(rows, row)
	}

	// Fixed shard count for the huge rows: the plan (and so the
	// recorded merge-round structure) stays identical across machines;
	// only the times vary with the host.
	const hugeShards = 8
	for _, size := range []int{10000, 40000} {
		p := progen.GenerateHuge(1, progen.Huge(size))
		sys := constraints.Generate(labels.Compute(p), constraints.ContextInsensitive)
		row := ShardCostRow{Benchmark: fmt.Sprintf("huge-%d", size)}

		var topoRef *constraints.Solution
		best := time.Duration(0)
		for rep := 0; rep < reps; rep++ {
			t0 := time.Now()
			sol := sys.Solve(constraints.Options{Topo: true})
			if d := time.Since(t0); best == 0 || d < best {
				best = d
			}
			topoRef = sol
		}
		row.TopoNsPerOp = best.Nanoseconds()

		best = 0
		for rep := 0; rep < reps; rep++ {
			t0 := time.Now()
			sol := shard.Solve(sys, shard.Config{Shards: hugeShards})
			if d := time.Since(t0); best == 0 || d < best {
				best = d
			}
			if !topoRef.ValuationEqual(sol) {
				return nil, fmt.Errorf("fleet bench: shard diverges from topo on huge-%d", size)
			}
			if st := sol.Shard; st != nil {
				row.Shards = st.Shards
				row.MergeRoundsL1 = st.MergeRoundsL1
				row.MergeRoundsL2 = st.MergeRoundsL2
			}
		}
		row.ShardNsPerOp = best.Nanoseconds()
		rows = append(rows, row)
	}
	return rows, nil
}

func postFleetJSON(client *http.Client, url string, body any, out any) error {
	buf, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("%s: status %d: %s", url, resp.StatusCode, data)
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	return nil
}

// FormatFleetBench renders both sweeps as aligned tables.
func FormatFleetBench(bench FleetBench) string {
	var b strings.Builder
	tw := newTable(&b, "replicas", "clients", "requests", "req/s")
	for _, r := range bench.Fleet {
		tw.row(fmt.Sprint(r.Replicas), fmt.Sprint(r.Clients), fmt.Sprint(r.Requests), fmt.Sprintf("%.0f", r.ReqPerSec))
	}
	tw.flush()
	b.WriteString("\n")
	tw = newTable(&b, "benchmark", "topo ns/op", "shard ns/op", "shards", "L1 rounds", "L2 rounds")
	for _, r := range bench.ShardCost {
		tw.row(r.Benchmark,
			fmt.Sprint(r.TopoNsPerOp),
			fmt.Sprint(r.ShardNsPerOp),
			fmt.Sprint(r.Shards),
			fmt.Sprint(r.MergeRoundsL1),
			fmt.Sprint(r.MergeRoundsL2))
	}
	tw.flush()
	return b.String()
}

// WriteFleetBenchJSON writes the sweep for committing as
// BENCH_fleet.json.
func WriteFleetBenchJSON(bench FleetBench, path string) error {
	data, err := json.MarshalIndent(bench, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
