// Package lemmas provides random generators for the structures the
// paper's appendix quantifies over — label sets, statements, and
// execution trees — so that the lemmas of Appendix B can be checked
// as executable properties. The checks themselves live in this
// package's test suite; think of it as a lightweight mechanization of
// the paper's proof artifacts: every helper-function law of Lemma 7
// and the typing lemmas 12–15 are exercised against randomized
// inputs, and the inductive theorems (preservation, soundness) are
// exercised along executions in internal/progen.
package lemmas

import (
	"math/rand"

	"fx10/internal/intset"
	"fx10/internal/syntax"
	"fx10/internal/tree"
)

// RandomSet returns a random label set over the program's universe.
func RandomSet(rng *rand.Rand, p *syntax.Program) *intset.Set {
	n := p.NumLabels()
	s := intset.New(n)
	for i := 0; i < rng.Intn(n+1); i++ {
		s.Add(rng.Intn(n))
	}
	return s
}

// stmts collects every statement suffix of the program: each method
// body, every tail position, and every nested body. These are exactly
// the statements that occur during execution, modulo Seq compositions
// (which RandomStmt adds).
func stmts(p *syntax.Program) []*syntax.Stmt {
	var out []*syntax.Stmt
	var walk func(s *syntax.Stmt)
	walk = func(s *syntax.Stmt) {
		for cur := s; cur != nil; cur = cur.Next {
			out = append(out, cur)
			if b := syntax.Body(cur.Instr); b != nil {
				walk(b)
			}
		}
	}
	for _, m := range p.Methods {
		walk(m.Body)
	}
	return out
}

// RandomStmt returns a random statement: a suffix of the program, or
// a Seq composition of two such suffixes (as the while and call rules
// produce at run time).
func RandomStmt(rng *rand.Rand, p *syntax.Program) *syntax.Stmt {
	all := stmts(p)
	s := all[rng.Intn(len(all))]
	if rng.Intn(3) == 0 {
		s = syntax.Seq(s, all[rng.Intn(len(all))])
	}
	return s
}

// RandomTree returns a random execution tree of bounded depth whose
// leaves are random statements of the program.
func RandomTree(rng *rand.Rand, p *syntax.Program, depth int) tree.Tree {
	if depth <= 0 || rng.Intn(4) == 0 {
		if rng.Intn(4) == 0 {
			return tree.Done
		}
		return tree.NewLeaf(RandomStmt(rng, p))
	}
	l := RandomTree(rng, p, depth-1)
	r := RandomTree(rng, p, depth-1)
	if rng.Intn(2) == 0 {
		return &tree.Fin{L: l, R: r}
	}
	return &tree.Par{L: l, R: r}
}
