package lemmas

import (
	"math/rand"
	"testing"

	"fx10/internal/intset"
	"fx10/internal/labels"
	"fx10/internal/machine"
	"fx10/internal/progen"
	"fx10/internal/syntax"
	"fx10/internal/tree"
	"fx10/internal/types"
)

// fixture bundles a random program with its analysis artifacts.
type fixture struct {
	p   *syntax.Program
	in  *labels.Info
	c   *types.Checker
	env types.Env
	rng *rand.Rand
}

// fixtures builds several random full-calculus programs.
func fixtures(t *testing.T, count int) []*fixture {
	t.Helper()
	var out []*fixture
	for seed := int64(0); seed < int64(count); seed++ {
		p := progen.Generate(seed, progen.Default())
		in := labels.Compute(p)
		c := types.NewChecker(in)
		out = append(out, &fixture{
			p: p, in: in, c: c, env: c.Infer().Env,
			rng: rand.New(rand.NewSource(seed * 31)),
		})
	}
	return out
}

// symcross is the reference definition, equation (37).
func symcross(n int, a, b *intset.Set) *intset.PairSet {
	out := intset.NewPairs(n)
	out.CrossSym(a, b)
	return out
}

// Lemma 7.1: symcross(A, B) = symcross(B, A).
func TestLemma7_1(t *testing.T) {
	for _, f := range fixtures(t, 5) {
		n := f.p.NumLabels()
		for i := 0; i < 20; i++ {
			a, b := RandomSet(f.rng, f.p), RandomSet(f.rng, f.p)
			if !symcross(n, a, b).Equal(symcross(n, b, a)) {
				t.Fatalf("symcross not commutative")
			}
		}
	}
}

// Lemma 7.2: A′ ⊆ A ∧ B′ ⊆ B ⇒ symcross(A′, B′) ⊆ symcross(A, B).
func TestLemma7_2(t *testing.T) {
	for _, f := range fixtures(t, 5) {
		n := f.p.NumLabels()
		for i := 0; i < 20; i++ {
			a, b := RandomSet(f.rng, f.p), RandomSet(f.rng, f.p)
			aSub, bSub := a.Clone(), b.Clone()
			aSub.IntersectWith(RandomSet(f.rng, f.p))
			bSub.IntersectWith(RandomSet(f.rng, f.p))
			if !symcross(n, aSub, bSub).SubsetOf(symcross(n, a, b)) {
				t.Fatalf("symcross not monotone")
			}
		}
	}
}

// Lemma 7.3: symcross(A,C) ∪ symcross(B,C) = symcross(A ∪ B, C).
func TestLemma7_3(t *testing.T) {
	for _, f := range fixtures(t, 5) {
		n := f.p.NumLabels()
		for i := 0; i < 20; i++ {
			a, b, c := RandomSet(f.rng, f.p), RandomSet(f.rng, f.p), RandomSet(f.rng, f.p)
			lhs := symcross(n, a, c)
			lhs.UnionWith(symcross(n, b, c))
			ab := a.Clone()
			ab.UnionWith(b)
			if !lhs.Equal(symcross(n, ab, c)) {
				t.Fatalf("symcross does not distribute over union")
			}
		}
	}
}

// Lemmas 7.4 and 7.5: Lcross and Scross distribute over set union.
func TestLemma7_4And7_5(t *testing.T) {
	for _, f := range fixtures(t, 5) {
		n := f.p.NumLabels()
		for i := 0; i < 20; i++ {
			a, b := RandomSet(f.rng, f.p), RandomSet(f.rng, f.p)
			l := syntax.Label(f.rng.Intn(n))
			ab := a.Clone()
			ab.UnionWith(b)

			union := intset.NewPairs(n)
			f.in.AddLcross(union, l, a)
			f.in.AddLcross(union, l, b)
			joint := intset.NewPairs(n)
			f.in.AddLcross(joint, l, ab)
			if !union.Equal(joint) {
				t.Fatalf("Lcross does not distribute over union")
			}

			s := RandomStmt(f.rng, f.p)
			union2 := intset.NewPairs(n)
			f.in.AddScross(union2, s, a)
			f.in.AddScross(union2, s, b)
			joint2 := intset.NewPairs(n)
			f.in.AddScross(joint2, s, ab)
			if !union2.Equal(joint2) {
				t.Fatalf("Scross does not distribute over union")
			}
		}
	}
}

// Lemma 7.6: Scross(s1, Slabels(s2)) = Scross(s2, Slabels(s1)).
func TestLemma7_6(t *testing.T) {
	for _, f := range fixtures(t, 5) {
		n := f.p.NumLabels()
		for i := 0; i < 20; i++ {
			s1, s2 := RandomStmt(f.rng, f.p), RandomStmt(f.rng, f.p)
			a := intset.NewPairs(n)
			f.in.AddScross(a, s1, f.in.Slabels(s2))
			b := intset.NewPairs(n)
			f.in.AddScross(b, s2, f.in.Slabels(s1))
			if !a.Equal(b) {
				t.Fatalf("Scross swap law violated")
			}
		}
	}
}

// Lemmas 7.7–7.10: Tcross distributes over union, swaps through
// Tlabels, is empty on √, and is monotone in R.
func TestLemma7_7Through7_10(t *testing.T) {
	for _, f := range fixtures(t, 5) {
		n := f.p.NumLabels()
		for i := 0; i < 15; i++ {
			t1 := RandomTree(f.rng, f.p, 3)
			t2 := RandomTree(f.rng, f.p, 3)
			a, b := RandomSet(f.rng, f.p), RandomSet(f.rng, f.p)

			// 7.7 distribution.
			ab := a.Clone()
			ab.UnionWith(b)
			union := intset.NewPairs(n)
			f.in.AddTcross(union, t1, a)
			f.in.AddTcross(union, t1, b)
			joint := intset.NewPairs(n)
			f.in.AddTcross(joint, t1, ab)
			if !union.Equal(joint) {
				t.Fatalf("7.7: Tcross does not distribute")
			}

			// 7.8 swap.
			x := intset.NewPairs(n)
			f.in.AddTcross(x, t1, f.in.Tlabels(t2))
			y := intset.NewPairs(n)
			f.in.AddTcross(y, t2, f.in.Tlabels(t1))
			if !x.Equal(y) {
				t.Fatalf("7.8: Tcross swap law violated")
			}

			// 7.9 √.
			z := intset.NewPairs(n)
			f.in.AddTcross(z, tree.Done, a)
			if !z.Empty() {
				t.Fatalf("7.9: Tcross(√) not empty")
			}

			// 7.10 monotone.
			sub := a.Clone()
			sub.IntersectWith(b)
			small := intset.NewPairs(n)
			f.in.AddTcross(small, t1, sub)
			big := intset.NewPairs(n)
			f.in.AddTcross(big, t1, a)
			if !small.SubsetOf(big) {
				t.Fatalf("7.10: Tcross not monotone")
			}
		}
	}
}

// Lemma 7.11: Slabels(s_a . s_b) = Slabels(s_a) ∪ Slabels(s_b).
func TestLemma7_11(t *testing.T) {
	for _, f := range fixtures(t, 5) {
		for i := 0; i < 20; i++ {
			sa, sb := RandomStmt(f.rng, f.p), RandomStmt(f.rng, f.p)
			want := f.in.Slabels(sa).Clone()
			want.UnionWith(f.in.Slabels(sb))
			if !f.in.Slabels(syntax.Seq(sa, sb)).Equal(want) {
				t.Fatalf("7.11 violated")
			}
		}
	}
}

// Lemmas 7.12 and 7.13: first-label sets are contained in the full
// label sets.
func TestLemma7_12And7_13(t *testing.T) {
	for _, f := range fixtures(t, 5) {
		for i := 0; i < 20; i++ {
			s := RandomStmt(f.rng, f.p)
			if !f.in.FSlabels(s).SubsetOf(f.in.Slabels(s)) {
				t.Fatalf("7.12 violated")
			}
			tr := RandomTree(f.rng, f.p, 3)
			if !f.in.FTlabels(tr).SubsetOf(f.in.Tlabels(tr)) {
				t.Fatalf("7.13 violated")
			}
		}
	}
}

// Lemma 7.14: symcross(FTlabels(T1), FTlabels(T2)) ⊆
// Tcross(T1, Tlabels(T2)).
func TestLemma7_14(t *testing.T) {
	for _, f := range fixtures(t, 5) {
		n := f.p.NumLabels()
		for i := 0; i < 20; i++ {
			t1 := RandomTree(f.rng, f.p, 3)
			t2 := RandomTree(f.rng, f.p, 3)
			lhs := symcross(n, f.in.FTlabels(t1), f.in.FTlabels(t2))
			rhs := intset.NewPairs(n)
			f.in.AddTcross(rhs, t1, f.in.Tlabels(t2))
			if !lhs.SubsetOf(rhs) {
				t.Fatalf("7.14 violated")
			}
		}
	}
}

// Lemma 7.15: a step never grows Tlabels. Random trees here include
// shapes no execution reaches, which is a stronger check than tracing.
func TestLemma7_15(t *testing.T) {
	for _, f := range fixtures(t, 5) {
		for i := 0; i < 15; i++ {
			tr := RandomTree(f.rng, f.p, 3)
			before := f.in.Tlabels(tr)
			st := machine.State{A: make(machine.Array, f.p.ArrayLen), T: tr}
			for _, succ := range machine.Successors(f.p, st) {
				if !f.in.Tlabels(succ.T).SubsetOf(before) {
					t.Fatalf("7.15: Tlabels grew across a step")
				}
			}
		}
	}
}

// Lemmas 7.16/7.17 specialize 7.11 + 7.3 to statements with a known
// head; checking the general Scross decomposition covers them.
func TestLemma7_16And7_17(t *testing.T) {
	for _, f := range fixtures(t, 5) {
		n := f.p.NumLabels()
		for i := 0; i < 20; i++ {
			s := RandomStmt(f.rng, f.p)
			r := RandomSet(f.rng, f.p)
			// Scross(s, R) = Lcross(head, R) ∪ Scross(tail/bodies, R):
			// decompose via Slabels(s) = {head} ∪ rest.
			full := intset.NewPairs(n)
			f.in.AddScross(full, s, r)
			head := s.Instr.Label()
			rest := f.in.Slabels(s).Clone()
			rest.Remove(int(head))
			dec := intset.NewPairs(n)
			f.in.AddLcross(dec, head, r)
			dec.CrossSym(rest, r)
			if !dec.Equal(full) {
				t.Fatalf("7.16/7.17 decomposition violated")
			}
		}
	}
}

// Lemma 7.18: Tcross(⟨s⟩, R) = Scross(s, R).
func TestLemma7_18(t *testing.T) {
	for _, f := range fixtures(t, 5) {
		n := f.p.NumLabels()
		for i := 0; i < 20; i++ {
			s := RandomStmt(f.rng, f.p)
			r := RandomSet(f.rng, f.p)
			a := intset.NewPairs(n)
			f.in.AddTcross(a, tree.NewLeaf(s), r)
			b := intset.NewPairs(n)
			f.in.AddScross(b, s, r)
			if !a.Equal(b) {
				t.Fatalf("7.18 violated")
			}
		}
	}
}

// Lemma 7.19: Tcross decomposes over subtree label unions.
func TestLemma7_19(t *testing.T) {
	for _, f := range fixtures(t, 5) {
		n := f.p.NumLabels()
		for i := 0; i < 15; i++ {
			t1 := RandomTree(f.rng, f.p, 2)
			t2 := RandomTree(f.rng, f.p, 2)
			r := RandomSet(f.rng, f.p)
			for _, parent := range []tree.Tree{&tree.Fin{L: t1, R: t2}, &tree.Par{L: t1, R: t2}} {
				whole := intset.NewPairs(n)
				f.in.AddTcross(whole, parent, r)
				parts := intset.NewPairs(n)
				f.in.AddTcross(parts, t1, r)
				f.in.AddTcross(parts, t2, r)
				if !whole.Equal(parts) {
					t.Fatalf("7.19 violated")
				}
			}
		}
	}
}

// Lemma 13 (principal typing for trees): p,E,R ⊢ T : M iff
// M = Tcross(T, R) ∪ M′ where p,E,∅ ⊢ T : M′.
func TestLemma13(t *testing.T) {
	for _, f := range fixtures(t, 5) {
		n := f.p.NumLabels()
		empty := intset.New(n)
		for i := 0; i < 15; i++ {
			tr := RandomTree(f.rng, f.p, 3)
			r := RandomSet(f.rng, f.p)
			got := f.c.JudgeTree(f.env, r, tr)
			want := f.c.JudgeTree(f.env, empty, tr)
			f.in.AddTcross(want, tr, r)
			if !got.Equal(want) {
				t.Fatalf("Lemma 13 violated")
			}
		}
	}
}

// Lemma 14 (sequencing admissibility): if p,E,R ⊢ s_a : M_a, O_a and
// p,E,O_a ⊢ s_b : M_b, O_b then p,E,R ⊢ s_a.s_b : M_a ∪ M_b, O_b.
func TestLemma14(t *testing.T) {
	for _, f := range fixtures(t, 5) {
		for i := 0; i < 20; i++ {
			sa, sb := RandomStmt(f.rng, f.p), RandomStmt(f.rng, f.p)
			r := RandomSet(f.rng, f.p)
			ma, oa := f.c.JudgeStmt(f.env, r, sa)
			mb, ob := f.c.JudgeStmt(f.env, oa, sb)
			m, o := f.c.JudgeStmt(f.env, r, syntax.Seq(sa, sb))
			want := ma.Clone()
			want.UnionWith(mb)
			if !m.Equal(want) || !o.Equal(ob) {
				t.Fatalf("Lemma 14 violated")
			}
		}
	}
}

// Lemma 15: R′ ⊆ R ⇒ M′ ⊆ M for tree typing.
func TestLemma15(t *testing.T) {
	for _, f := range fixtures(t, 5) {
		for i := 0; i < 15; i++ {
			tr := RandomTree(f.rng, f.p, 3)
			r := RandomSet(f.rng, f.p)
			rSub := r.Clone()
			rSub.IntersectWith(RandomSet(f.rng, f.p))
			small := f.c.JudgeTree(f.env, rSub, tr)
			big := f.c.JudgeTree(f.env, r, tr)
			if !small.SubsetOf(big) {
				t.Fatalf("Lemma 15 violated")
			}
		}
	}
}

// Deadlock freedom (Theorem 1) on arbitrary random trees, not just
// reachable ones: the induction in Appendix A is over all trees.
func TestTheorem1OnRandomTrees(t *testing.T) {
	for _, f := range fixtures(t, 5) {
		for i := 0; i < 30; i++ {
			tr := RandomTree(f.rng, f.p, 4)
			st := machine.State{A: make(machine.Array, f.p.ArrayLen), T: tr}
			if !machine.Progress(f.p, st) {
				t.Fatalf("progress violated on random tree %s", tree.String(f.p, tr))
			}
		}
	}
}
