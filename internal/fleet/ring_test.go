package fleet

import (
	"fmt"
	"testing"
)

func ringBackends(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://10.0.0.%d:8710", i+1)
	}
	return out
}

func ringKeys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("p|%064x|cs", i)
	}
	return out
}

// TestRingDeterministicAcrossConstruction pins the restart invariant:
// the ring is a pure function of the backend address strings, so two
// rings built from the same addresses — in any order — route every
// key identically. This is what lets a restarted (or duplicated)
// router keep hitting the same replica caches.
func TestRingDeterministicAcrossConstruction(t *testing.T) {
	backends := ringBackends(5)
	a, err := NewRing(backends, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Reversed input order and duplicates must not matter.
	rev := append([]string{backends[3]}, backends...)
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	b, err := NewRing(rev, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range ringKeys(2000) {
		if a.Lookup(key) != b.Lookup(key) {
			t.Fatalf("key %q routes differently across identical rings", key)
		}
	}
}

// TestRingDistribution bounds key skew: with vnodes smoothing, every
// backend's share of 20k keys stays within 2× of fair in both
// directions — the load-spread property the fleet's linear-scaling
// target depends on.
func TestRingDistribution(t *testing.T) {
	for _, n := range []int{2, 3, 4, 8} {
		r, err := NewRing(ringBackends(n), 0)
		if err != nil {
			t.Fatal(err)
		}
		counts := map[string]int{}
		const total = 20000
		for _, key := range ringKeys(total) {
			counts[r.Lookup(key)]++
		}
		if len(counts) != n {
			t.Fatalf("n=%d: only %d backends received keys", n, len(counts))
		}
		fair := total / n
		for b, c := range counts {
			if c < fair/2 || c > fair*2 {
				t.Errorf("n=%d: backend %s got %d keys (fair %d)", n, b, c, fair)
			}
		}
	}
}

// TestRingMinimalMovement checks consistent hashing's defining
// property: removing one of n backends remaps only the removed
// backend's keys (everything else stays put), and adding one moves at
// most ~2/n of the keyspace.
func TestRingMinimalMovement(t *testing.T) {
	backends := ringBackends(4)
	full, err := NewRing(backends, 0)
	if err != nil {
		t.Fatal(err)
	}
	reduced, err := NewRing(backends[:3], 0)
	if err != nil {
		t.Fatal(err)
	}
	keys := ringKeys(10000)

	removed := backends[3]
	moved := 0
	for _, key := range keys {
		was, is := full.Lookup(key), reduced.Lookup(key)
		if was == removed {
			continue // had to move
		}
		if was != is {
			moved++
		}
	}
	if moved != 0 {
		t.Errorf("removal moved %d keys that were not on the removed backend", moved)
	}

	grown, err := NewRing(append(backends, "http://10.0.0.9:8710"), 0)
	if err != nil {
		t.Fatal(err)
	}
	moved = 0
	for _, key := range keys {
		if full.Lookup(key) != grown.Lookup(key) {
			moved++
		}
	}
	if max := 2 * len(keys) / 5; moved > max {
		t.Errorf("adding a 5th backend moved %d of %d keys (max %d)", moved, len(keys), max)
	}
	if moved == 0 {
		t.Errorf("adding a backend moved no keys at all")
	}
}

// TestRingLookupNFailoverOrder checks that LookupN yields distinct
// backends, starts at the primary, and that its order equals "remove
// the primary and look up again" — the property that makes failover
// equivalent to ring membership change.
func TestRingLookupNFailoverOrder(t *testing.T) {
	backends := ringBackends(4)
	r, err := NewRing(backends, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range ringKeys(300) {
		order := r.LookupN(key, len(backends))
		if len(order) != len(backends) {
			t.Fatalf("LookupN returned %d backends, want %d", len(order), len(backends))
		}
		seen := map[string]bool{}
		for _, b := range order {
			if seen[b] {
				t.Fatalf("LookupN repeated backend %s", b)
			}
			seen[b] = true
		}
		if order[0] != r.Lookup(key) {
			t.Fatalf("LookupN does not start at the primary")
		}
		// Failover target == owner after removing the primary.
		var without []string
		for _, b := range backends {
			if b != order[0] {
				without = append(without, b)
			}
		}
		rr, err := NewRing(without, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got := rr.Lookup(key); got != order[1] {
			t.Fatalf("failover order %v disagrees with ring-minus-primary owner %s", order[:2], got)
		}
	}
}

// TestRingRejectsEmpty pins the constructor's error cases.
func TestRingRejectsEmpty(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Fatal("empty backend list accepted")
	}
	if _, err := NewRing([]string{""}, 0); err == nil {
		t.Fatal("empty backend address accepted")
	}
}
