package fleet

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"fx10/internal/parser"
)

// RouterConfig configures a fleet front door.
type RouterConfig struct {
	// Backends are the fx10d replica base URLs
	// ("http://127.0.0.1:8711"). At least one is required.
	Backends []string
	// Vnodes is the per-backend virtual-node count; ≤ 0 selects
	// DefaultVnodes.
	Vnodes int
	// HealthEvery is the health-sweep period (default 1s);
	// HealthTimeout bounds one /healthz probe (default 1s).
	HealthEvery   time.Duration
	HealthTimeout time.Duration
	// MaxBodyBytes bounds a routed request body (default 8 MiB — the
	// router must accept anything a backend would, and backends cap
	// source at 1 MiB with batch fan-in above that).
	MaxBodyBytes int64
	// Client overrides the forwarding HTTP client (tests).
	Client *http.Client
}

// Router is the fleet front door: an http.Handler that routes every
// /v1/* request to a replica by content key, fails over in ring order
// when the owner is down, and serves its own /healthz and /metrics.
//
// Routing invariants (DESIGN.md §13): (1) same key → same backend, on
// every router instance, across restarts; (2) a response's bytes never
// depend on which backend served it — replicas are bit-identical by
// the solvers' unique-least-fixpoint guarantee — so failover is
// invisible to clients; (3) only /v1/delta routing is stateful
// (session affinity), and even there a failover costs one full
// re-analyze, not correctness.
type Router struct {
	ring    *Ring
	client  *http.Client
	mux     *http.ServeMux
	maxBody int64

	healthEvery   time.Duration
	healthTimeout time.Duration

	mu      sync.Mutex
	healthy map[string]bool

	metrics *RouterMetrics

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewRouter builds a router and runs one synchronous health sweep, so
// a freshly started router already knows which replicas are up; the
// periodic sweep continues in the background until Close.
func NewRouter(cfg RouterConfig) (*Router, error) {
	ring, err := NewRing(cfg.Backends, cfg.Vnodes)
	if err != nil {
		return nil, err
	}
	if cfg.HealthEvery <= 0 {
		cfg.HealthEvery = time.Second
	}
	if cfg.HealthTimeout <= 0 {
		cfg.HealthTimeout = time.Second
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 8 << 20
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}
	rt := &Router{
		ring:          ring,
		client:        client,
		maxBody:       cfg.MaxBodyBytes,
		healthEvery:   cfg.HealthEvery,
		healthTimeout: cfg.HealthTimeout,
		healthy:       make(map[string]bool, len(ring.backends)),
		stop:          make(chan struct{}),
		done:          make(chan struct{}),
	}
	rt.metrics = newRouterMetrics(ring.Backends(), rt.healthySnapshot)
	rt.sweep()
	rt.mux = http.NewServeMux()
	rt.mux.HandleFunc("/v1/", rt.handleProxy)
	rt.mux.HandleFunc("/healthz", rt.handleHealthz)
	rt.mux.Handle("/metrics", rt.metrics)
	go rt.loop()
	return rt, nil
}

// Handler returns the router's root handler.
func (rt *Router) Handler() http.Handler { return rt.mux }

// Metrics returns the router's metrics registry.
func (rt *Router) Metrics() *RouterMetrics { return rt.metrics }

// Ring returns the routing ring (for tests and tooling).
func (rt *Router) Ring() *Ring { return rt.ring }

// Close stops the health loop.
func (rt *Router) Close() {
	rt.stopOnce.Do(func() { close(rt.stop) })
	<-rt.done
}

func (rt *Router) loop() {
	defer close(rt.done)
	t := time.NewTicker(rt.healthEvery)
	defer t.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-t.C:
			rt.sweep()
		}
	}
}

// sweep probes every backend's /healthz once. A backend is healthy iff
// it answers 200 within the timeout — a draining daemon answers 503
// and is routed around before it stops accepting work.
func (rt *Router) sweep() {
	results := make(map[string]bool, len(rt.ring.backends))
	var wg sync.WaitGroup
	var resMu sync.Mutex
	for _, b := range rt.ring.Backends() {
		wg.Add(1)
		go func(b string) {
			defer wg.Done()
			ok := rt.probe(b)
			resMu.Lock()
			results[b] = ok
			resMu.Unlock()
		}(b)
	}
	wg.Wait()
	rt.mu.Lock()
	for b, ok := range results {
		rt.healthy[b] = ok
	}
	rt.mu.Unlock()
}

func (rt *Router) probe(backend string) bool {
	ctx, cancel := context.WithTimeout(context.Background(), rt.healthTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, backend+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

func (rt *Router) markUnhealthy(backend string) {
	rt.mu.Lock()
	rt.healthy[backend] = false
	rt.mu.Unlock()
}

func (rt *Router) isHealthy(backend string) bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.healthy[backend]
}

func (rt *Router) healthySnapshot() (healthy, down []string) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	for _, b := range rt.ring.backends {
		if rt.healthy[b] {
			healthy = append(healthy, b)
		} else {
			down = append(down, b)
		}
	}
	return healthy, down
}

// handleHealthz: the fleet is up iff at least one replica is.
func (rt *Router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	healthy, _ := rt.healthySnapshot()
	status := http.StatusOK
	state := "ok"
	if len(healthy) == 0 {
		status = http.StatusServiceUnavailable
		state = "down"
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	fmt.Fprintf(w, "{\n  \"status\": %q,\n  \"healthyBackends\": %d\n}\n", state, len(healthy))
}

// handleProxy routes one /v1/* request: extract the content key, walk
// the ring's failover order preferring healthy backends, forward the
// buffered body, relay the first non-failover response.
func (rt *Router) handleProxy(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeRouterError(w, http.StatusMethodNotAllowed, "bad_request", "use POST")
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, rt.maxBody+1))
	if err != nil {
		writeRouterError(w, 499, "canceled", "body read failed")
		return
	}
	if int64(len(body)) > rt.maxBody {
		writeRouterError(w, http.StatusRequestEntityTooLarge, "bad_request", "request body too large")
		return
	}
	key := RouteKey(r.URL.Path, body)
	rt.metrics.keyed.Add(r.URL.Path, 1)

	// Failover order: the full ring walk, healthy backends first
	// within it. A request is only lost when every replica fails.
	order := rt.ring.LookupN(key, len(rt.ring.backends))
	candidates := make([]string, 0, len(order))
	for _, b := range order {
		if rt.isHealthy(b) {
			candidates = append(candidates, b)
		}
	}
	sawUnhealthy := len(candidates) < len(order)
	for _, b := range order {
		if !rt.isHealthy(b) {
			candidates = append(candidates, b)
		}
	}

	var lastErr error
	for i, b := range candidates {
		if i > 0 {
			rt.metrics.failovers.Add(1)
		}
		resp, err := rt.forward(r, b, body)
		if err != nil {
			// Transport failure: the replica is gone (or going); mark
			// it down now rather than waiting for the next sweep.
			rt.markUnhealthy(b)
			lastErr = err
			continue
		}
		if retriableStatus(resp.status) && i < len(candidates)-1 {
			// 502/503/504: the replica answered but cannot serve
			// (draining, dying proxy); any other replica returns the
			// identical bytes, so retry is safe and invisible.
			lastErr = fmt.Errorf("%s: status %d", b, resp.status)
			continue
		}
		rt.metrics.routed.Add(b, 1)
		if sawUnhealthy || i > 0 {
			rt.metrics.reroutes.Add(1)
		}
		w.Header().Set("Content-Type", resp.contentType)
		w.WriteHeader(resp.status)
		w.Write(resp.body)
		return
	}
	rt.metrics.unrouted.Add(1)
	msg := "no healthy backend"
	if lastErr != nil {
		msg = fmt.Sprintf("no backend could serve the request: %v", lastErr)
	}
	writeRouterError(w, http.StatusBadGateway, "unavailable", msg)
}

type proxiedResponse struct {
	status      int
	contentType string
	body        []byte
}

func (rt *Router) forward(r *http.Request, backend string, body []byte) (*proxiedResponse, error) {
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost, backend+r.URL.Path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := rt.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return &proxiedResponse{
		status:      resp.StatusCode,
		contentType: resp.Header.Get("Content-Type"),
		body:        respBody,
	}, nil
}

func retriableStatus(code int) bool {
	return code == http.StatusBadGateway || code == http.StatusServiceUnavailable || code == http.StatusGatewayTimeout
}

func writeRouterError(w http.ResponseWriter, status int, kind, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	fmt.Fprintf(w, "{\n  \"error\": {\n    \"kind\": %q,\n    \"message\": %q\n  }\n}\n", kind, msg)
}

// RouteKey derives the consistent-hash key for one request from its
// path and body. The key is content-derived — (Program.Hash, mode,
// language) — so renamed-but-identical FX10 sources, an /v1/analyze
// and the /v1/query for its result, and every retry of one request
// all land on the same replica's caches. Malformed bodies still get a
// deterministic key (the raw bytes); the owning backend rejects them
// identically to any other backend.
func RouteKey(path string, body []byte) string {
	switch path {
	case "/v1/analyze":
		var req struct {
			Source   string `json:"source"`
			Language string `json:"language"`
			Mode     string `json:"mode"`
		}
		if json.Unmarshal(body, &req) != nil {
			return "raw|" + rawHash(body)
		}
		return "p|" + programKey(req.Source, req.Language) + "|" + normMode(req.Mode)
	case "/v1/query":
		var req struct {
			ProgramHash string `json:"programHash"`
			Mode        string `json:"mode"`
		}
		if json.Unmarshal(body, &req) != nil {
			return "raw|" + rawHash(body)
		}
		return "p|" + strings.ToLower(req.ProgramHash) + "|" + normMode(req.Mode)
	case "/v1/delta":
		// Sessions are per-daemon state: route by session identity,
		// not content, so every edit of a session reaches the daemon
		// holding its base.
		var req struct {
			Session  string `json:"session"`
			Language string `json:"language"`
			Mode     string `json:"mode"`
		}
		if json.Unmarshal(body, &req) != nil {
			return "raw|" + rawHash(body)
		}
		return "s|" + req.Session + "|" + normMode(req.Mode) + "|" + normLang(req.Language)
	case "/v1/batch":
		var req struct {
			Programs []struct {
				Source   string `json:"source"`
				Language string `json:"language"`
			} `json:"programs"`
			Mode     string `json:"mode"`
			Language string `json:"language"`
		}
		if json.Unmarshal(body, &req) != nil {
			return "raw|" + rawHash(body)
		}
		h := sha256.New()
		for _, p := range req.Programs {
			lang := p.Language
			if lang == "" {
				lang = req.Language
			}
			fmt.Fprintf(h, "%s\x00%s\x00", normLang(lang), p.Source)
		}
		return "b|" + hex.EncodeToString(h.Sum(nil)) + "|" + normMode(req.Mode)
	default:
		return "raw|" + path + "|" + rawHash(body)
	}
}

// programKey is the program's content identity: for core FX10 the
// parsed Program.Hash (identical for α-renamed sources, and equal to
// the programHash later /v1/query requests carry); for other
// languages a hash of the language and raw source — cheaper than
// lowering at the router, still deterministic.
func programKey(source, language string) string {
	lang := normLang(language)
	if lang == "fx10" {
		if p, err := parser.Parse(source); err == nil {
			h := p.Hash()
			return hex.EncodeToString(h[:])
		}
	}
	return lang + ":" + rawHash([]byte(source))
}

func rawHash(b []byte) string {
	h := sha256.Sum256(b)
	return hex.EncodeToString(h[:])
}

func normMode(m string) string {
	switch m {
	case "ci", "insensitive", "context-insensitive":
		return "ci"
	default:
		return "cs"
	}
}

func normLang(l string) string {
	l = strings.ToLower(strings.TrimSpace(l))
	if l == "" {
		return "fx10"
	}
	return l
}

// RouterMetrics is the router's expvar registry, one "fleet" section
// in the same conventions as the daemon's /metrics.
type RouterMetrics struct {
	vars      *expvar.Map
	routed    *expvar.Map // responses served, per backend
	keyed     *expvar.Map // requests keyed, per endpoint path
	failovers *expvar.Int // candidate attempts after the first
	reroutes  *expvar.Int // requests served by a non-primary or with the ring degraded
	unrouted  *expvar.Int // requests no backend could serve
}

func newRouterMetrics(backends []string, health func() (healthy, down []string)) *RouterMetrics {
	m := &RouterMetrics{
		vars:      new(expvar.Map).Init(),
		routed:    new(expvar.Map).Init(),
		keyed:     new(expvar.Map).Init(),
		failovers: new(expvar.Int),
		reroutes:  new(expvar.Int),
		unrouted:  new(expvar.Int),
	}
	fleetMap := new(expvar.Map).Init()
	fleetMap.Set("backends", expvar.Func(func() any { return backends }))
	fleetMap.Set("healthy", expvar.Func(func() any {
		h, _ := health()
		if h == nil {
			h = []string{}
		}
		return h
	}))
	fleetMap.Set("down", expvar.Func(func() any {
		_, d := health()
		if d == nil {
			d = []string{}
		}
		return d
	}))
	fleetMap.Set("routedRequests", m.routed)
	fleetMap.Set("keyedRequests", m.keyed)
	fleetMap.Set("failovers", m.failovers)
	fleetMap.Set("reroutes", m.reroutes)
	fleetMap.Set("unrouted", m.unrouted)
	m.vars.Set("fleet", fleetMap)
	return m
}

// Expvar returns the registry's root map.
func (m *RouterMetrics) Expvar() *expvar.Map { return m.vars }

// ServeHTTP renders the registry as one JSON object.
func (m *RouterMetrics) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, m.vars.String())
}
