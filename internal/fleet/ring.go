// Package fleet turns N fx10d replicas into one analysis service: a
// consistent-hash ring routes each request's content key
// (Program.Hash, mode, language) to a replica, health checks evict
// dead replicas, and failover retries the next ring position. Because
// every replica computes bit-identical reports (the solvers' unique
// least fixpoint) and the content-addressed summary store can be
// shared between processes (sumstore.OpenShared), routing is purely a
// cache-locality optimization: ANY replica can serve ANY request
// correctly, so failover never changes a response byte. See DESIGN.md
// §13 for the routing invariants.
package fleet

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Ring is an immutable consistent-hash ring over backend addresses.
// Construction is deterministic in the address strings alone — no
// process state, timestamps or map order — so independently started
// routers (or one restarted) route identically, and adding or
// removing one backend moves only ~1/N of the keyspace.
type Ring struct {
	backends []string
	points   []ringPoint // sorted by hash
	vnodes   int
}

type ringPoint struct {
	hash    uint64
	backend int32 // index into backends
}

// DefaultVnodes is the per-backend virtual-node count: enough for the
// keyspace share of N real backends to concentrate within a few
// percent of 1/N, cheap enough that ring construction is trivial.
const DefaultVnodes = 64

// NewRing builds a ring over the given backends (deduplicated,
// sorted). vnodes ≤ 0 selects DefaultVnodes.
func NewRing(backends []string, vnodes int) (*Ring, error) {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	seen := map[string]bool{}
	var uniq []string
	for _, b := range backends {
		if b == "" {
			return nil, fmt.Errorf("fleet: empty backend address")
		}
		if !seen[b] {
			seen[b] = true
			uniq = append(uniq, b)
		}
	}
	if len(uniq) == 0 {
		return nil, fmt.Errorf("fleet: no backends")
	}
	sort.Strings(uniq)
	r := &Ring{backends: uniq, vnodes: vnodes}
	r.points = make([]ringPoint, 0, len(uniq)*vnodes)
	for bi, b := range uniq {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:    hashString(fmt.Sprintf("%s#%d", b, v)),
				backend: int32(bi),
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].backend < r.points[j].backend
	})
	return r, nil
}

// Backends returns the ring's backend addresses, sorted.
func (r *Ring) Backends() []string {
	out := make([]string, len(r.backends))
	copy(out, r.backends)
	return out
}

// Lookup returns the backend owning key: the first ring point at or
// clockwise after the key's hash.
func (r *Ring) Lookup(key string) string {
	return r.backends[r.points[r.search(key)].backend]
}

// LookupN returns up to n distinct backends in ring order starting at
// the key's owner — the failover order: if the owner is down, the
// next distinct backend clockwise takes over, exactly as if the owner
// had been removed from the ring.
func (r *Ring) LookupN(key string, n int) []string {
	if n > len(r.backends) {
		n = len(r.backends)
	}
	out := make([]string, 0, n)
	seen := make([]bool, len(r.backends))
	for i, start := 0, r.search(key); len(out) < n && i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.backend] {
			seen[p.backend] = true
			out = append(out, r.backends[p.backend])
		}
	}
	return out
}

func (r *Ring) search(key string) int {
	h := hashString(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// hashString is FNV-64a with a splitmix64 avalanche finalizer. Ring
// point labels ("backend#vnode") and route keys are short, similar
// strings; raw FNV leaves their hashes correlated in the high bits,
// which skews arc lengths badly. The finalizer restores a uniform
// spread while keeping the function a pure, stable property of the
// string — the determinism the restart invariant needs.
func hashString(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
