package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"fx10/internal/server"
)

// fleetBackend is one real fx10d server behind an httptest listener,
// with a request counter so tests can see who served what.
type fleetBackend struct {
	ts     *httptest.Server
	served atomic.Int64
}

func startBackends(t *testing.T, n int) []*fleetBackend {
	t.Helper()
	out := make([]*fleetBackend, n)
	for i := range out {
		s, err := server.New(server.Config{})
		if err != nil {
			t.Fatalf("server.New: %v", err)
		}
		b := &fleetBackend{}
		h := s.Handler()
		b.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path != "/healthz" {
				b.served.Add(1)
			}
			h.ServeHTTP(w, r)
		}))
		t.Cleanup(func() { b.ts.Close(); s.Close() })
		out[i] = b
	}
	return out
}

func backendURLs(backends []*fleetBackend) []string {
	urls := make([]string, len(backends))
	for i, b := range backends {
		urls[i] = b.ts.URL
	}
	return urls
}

func startRouter(t *testing.T, backends []*fleetBackend) (*Router, *httptest.Server) {
	t.Helper()
	rt, err := NewRouter(RouterConfig{
		Backends:    backendURLs(backends),
		HealthEvery: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(func() { ts.Close(); rt.Close() })
	return rt, ts
}

func postBody(t *testing.T, url string, body []byte) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

func analyzeBody(t *testing.T, source string) []byte {
	t.Helper()
	buf, err := json.Marshal(map[string]string{"source": source})
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

const routerTestSource = `
array 4;
void m1() { A: a[0] = 1; B: async { C: a[1] = 2; } }
void main() { F: finish { G: async { H: m1(); } } I: a[2] = 3; }
`

// reportBytes extracts the report object from an analyze response.
// Replicas agree on the report bit-for-bit; envelope fields like
// solveMs and cached are legitimately per-request.
func reportBytes(t *testing.T, data []byte) []byte {
	t.Helper()
	var resp struct {
		Report json.RawMessage `json:"report"`
	}
	if err := json.Unmarshal(data, &resp); err != nil {
		t.Fatalf("analyze response is not JSON: %v\n%s", err, data)
	}
	if len(resp.Report) == 0 {
		t.Fatalf("analyze response has no report:\n%s", data)
	}
	return resp.Report
}

// TestRouterHashAffinity: repeated requests for the same program all
// land on the ring owner — one backend serves everything, the others
// see no /v1 traffic.
func TestRouterHashAffinity(t *testing.T) {
	backends := startBackends(t, 3)
	_, ts := startRouter(t, backends)

	body := analyzeBody(t, routerTestSource)
	var first []byte
	for i := 0; i < 6; i++ {
		status, data := postBody(t, ts.URL+"/v1/analyze", body)
		if status != http.StatusOK {
			t.Fatalf("analyze via router: status %d: %s", status, data)
		}
		if rep := reportBytes(t, data); first == nil {
			first = rep
		} else if !bytes.Equal(first, rep) {
			t.Fatalf("router returned different report bytes for the same request")
		}
	}
	hot := 0
	for _, b := range backends {
		if n := b.served.Load(); n > 0 {
			hot++
			if n != 6 {
				t.Errorf("owning backend served %d of 6 requests", n)
			}
		}
	}
	if hot != 1 {
		t.Errorf("%d backends served traffic, want exactly 1 (hash affinity)", hot)
	}
}

// TestRouterResponsesBitIdentical: the same analyze request posted
// directly to every replica yields byte-identical responses — the
// property that makes the router's failover invisible.
func TestRouterResponsesBitIdentical(t *testing.T) {
	backends := startBackends(t, 3)
	body := analyzeBody(t, routerTestSource)
	var first []byte
	for i, b := range backends {
		status, data := postBody(t, b.ts.URL+"/v1/analyze", body)
		if status != http.StatusOK {
			t.Fatalf("backend %d: status %d: %s", i, status, data)
		}
		if rep := reportBytes(t, data); first == nil {
			first = rep
		} else if !bytes.Equal(first, rep) {
			t.Fatalf("backend %d report differs from backend 0:\n%s\n---\n%s", i, first, rep)
		}
	}
}

// TestRouterFailover: kill the backend that owns a key; the router
// routes around it (same response bytes, reroutes counted) and its
// /healthz stays ok while any replica survives.
func TestRouterFailover(t *testing.T) {
	backends := startBackends(t, 3)
	rt, ts := startRouter(t, backends)

	body := analyzeBody(t, routerTestSource)
	status, preKill := postBody(t, ts.URL+"/v1/analyze", body)
	if status != http.StatusOK {
		t.Fatalf("pre-kill analyze: status %d: %s", status, preKill)
	}
	want := reportBytes(t, preKill)

	owner := rt.Ring().Lookup(RouteKey("/v1/analyze", body))
	for _, b := range backends {
		if b.ts.URL == owner {
			b.ts.Close()
		}
	}

	status, postKill := postBody(t, ts.URL+"/v1/analyze", body)
	if status != http.StatusOK {
		t.Fatalf("post-kill analyze: status %d: %s", status, postKill)
	}
	if got := reportBytes(t, postKill); !bytes.Equal(want, got) {
		t.Fatalf("failover changed report bytes:\n%s\n---\n%s", want, got)
	}
	if rt.isHealthy(owner) {
		t.Errorf("dead owner %s still marked healthy after transport failure", owner)
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("router /healthz = %d with 2 of 3 replicas alive", resp.StatusCode)
	}
}

// TestRouterMetricsSection: the router's /metrics carries the "fleet"
// section with backends, health partition and per-backend routing
// counts.
func TestRouterMetricsSection(t *testing.T) {
	backends := startBackends(t, 2)
	_, ts := startRouter(t, backends)

	postBody(t, ts.URL+"/v1/analyze", analyzeBody(t, routerTestSource))

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	var m struct {
		Fleet *struct {
			Backends []string         `json:"backends"`
			Healthy  []string         `json:"healthy"`
			Routed   map[string]int64 `json:"routedRequests"`
			Keyed    map[string]int64 `json:"keyedRequests"`
		} `json:"fleet"`
	}
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("router /metrics is not JSON: %v\n%s", err, data)
	}
	if m.Fleet == nil {
		t.Fatalf("router /metrics missing fleet section\n%s", data)
	}
	if len(m.Fleet.Backends) != 2 || len(m.Fleet.Healthy) != 2 {
		t.Errorf("fleet section backends/healthy = %v / %v, want 2 each", m.Fleet.Backends, m.Fleet.Healthy)
	}
	var routed int64
	for _, n := range m.Fleet.Routed {
		routed += n
	}
	if routed != 1 || m.Fleet.Keyed["/v1/analyze"] != 1 {
		t.Errorf("fleet counters routed=%d keyed=%v, want 1 routed and 1 keyed analyze", routed, m.Fleet.Keyed)
	}
}

// TestRouteKeyContentIdentity pins the key derivation: reformatted
// FX10 sources share a key (parsed Program.Hash is over the canonical
// print, not the raw bytes), the analyze key aligns with the query
// key for the program's hash, modes separate keys, and malformed
// bodies still key deterministically.
func TestRouteKeyContentIdentity(t *testing.T) {
	reformatted := `array 4;
void m1() {
  A: a[0] = 1;
  B: async {
    C: a[1] = 2;
  }
}
void main() {
  F: finish {
    G: async { H: m1(); }
  }
  I: a[2] = 3;
}`
	kA := RouteKey("/v1/analyze", analyzeBody(t, routerTestSource))
	kB := RouteKey("/v1/analyze", analyzeBody(t, reformatted))
	if kA != kB {
		t.Errorf("reformatted source routes differently:\n%s\n%s", kA, kB)
	}

	// The analyze key embeds the program hash /v1/query carries.
	backends := startBackends(t, 1)
	status, data := postBody(t, backends[0].ts.URL+"/v1/analyze", analyzeBody(t, routerTestSource))
	if status != http.StatusOK {
		t.Fatalf("analyze: status %d: %s", status, data)
	}
	var resp struct {
		ProgramHash string `json:"programHash"`
	}
	if err := json.Unmarshal(data, &resp); err != nil || resp.ProgramHash == "" {
		t.Fatalf("analyze response has no programHash: %v\n%s", err, data)
	}
	qBody := []byte(fmt.Sprintf(`{"programHash":%q,"a":"A","b":"B"}`, resp.ProgramHash))
	if kQ := RouteKey("/v1/query", qBody); kQ != kA {
		t.Errorf("query key %q does not align with analyze key %q", kQ, kA)
	}

	ciBody := []byte(fmt.Sprintf(`{"source":%q,"mode":"ci"}`, routerTestSource))
	if RouteKey("/v1/analyze", ciBody) == kA {
		t.Errorf("ci and cs modes share a route key")
	}

	raw := []byte(`{not json`)
	if RouteKey("/v1/analyze", raw) != RouteKey("/v1/analyze", raw) {
		t.Errorf("malformed body keys are not deterministic")
	}
}
