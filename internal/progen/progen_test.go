package progen

import (
	"testing"

	"fx10/internal/constraints"
	"fx10/internal/explore"
	"fx10/internal/intset"
	"fx10/internal/labels"
	"fx10/internal/machine"
	"fx10/internal/parser"
	"fx10/internal/runtime"
	"fx10/internal/syntax"
	"fx10/internal/types"
)

func TestGeneratedProgramsValidate(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		p := Generate(seed, Default())
		if err := syntax.Validate(p); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := syntax.Print(Generate(7, Default()))
	b := syntax.Print(Generate(7, Default()))
	if a != b {
		t.Fatalf("generation not deterministic in seed")
	}
}

func TestGeneratedProgramsRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		p := Generate(seed, Default())
		printed := syntax.Print(p)
		q, err := parser.Parse(printed)
		if err != nil {
			t.Fatalf("seed %d: reparse failed: %v\n%s", seed, err, printed)
		}
		if syntax.Print(q) != printed {
			t.Fatalf("seed %d: print/parse not a fixpoint", seed)
		}
	}
}

// Theorem 1 on random programs: every state along random traces
// satisfies progress.
func TestDeadlockFreedomRandomPrograms(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		p := Generate(seed, Default())
		for s := int64(0); s < 3; s++ {
			states := machine.Trace(p, machine.Initial(p, nil), machine.NewRandom(s), 300)
			for i, st := range states {
				if !machine.Progress(p, st) {
					t.Fatalf("seed %d/%d: state %d violates progress", seed, s, i)
				}
			}
		}
	}
}

// Theorems 2–3 on random finite programs: the exact exploration MHP
// is contained in the analysis result.
func TestSoundnessRandomFinitePrograms(t *testing.T) {
	complete := 0
	for seed := int64(0); seed < 60; seed++ {
		p := Generate(seed, Finite())
		in := labels.Compute(p)
		sys := constraints.Generate(in, constraints.ContextSensitive)
		m := sys.Solve(constraints.Options{}).MainM()
		res := explore.MHPWithInfo(in, p, nil, 200_000)
		if res.ProgressViolations != 0 {
			t.Fatalf("seed %d: progress violations", seed)
		}
		if !res.MHP.SubsetOf(m) {
			t.Fatalf("seed %d: soundness violated\nexact: %v\ninferred: %v\nprogram:\n%s",
				seed, res.MHP, m, syntax.Print(p))
		}
		if res.Complete {
			complete++
		}
	}
	if complete < 40 {
		t.Fatalf("only %d/60 explorations completed; shrink the generator config", complete)
	}
}

// Theorem 4 on random programs: the constraint solution type-checks
// and equals direct type inference.
func TestEquivalenceRandomPrograms(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		p := Generate(seed, Default())
		in := labels.Compute(p)
		sol := constraints.Generate(in, constraints.ContextSensitive).Solve(constraints.Options{})
		env := sol.Env()
		c := types.NewChecker(in)
		if err := c.Check(env); err != nil {
			t.Fatalf("seed %d: solved env fails Check: %v\n%s", seed, err, syntax.Print(p))
		}
		if !env.Equal(c.Infer().Env) {
			t.Fatalf("seed %d: solver and type inference disagree\n%s", seed, syntax.Print(p))
		}
	}
}

// The context-sensitive result is always a subset of the context-
// insensitive one.
func TestCSSubsetCIRandomPrograms(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		p := Generate(seed, Default())
		in := labels.Compute(p)
		cs := constraints.Generate(in, constraints.ContextSensitive).Solve(constraints.Options{}).MainM()
		ci := constraints.Generate(in, constraints.ContextInsensitive).Solve(constraints.Options{}).MainM()
		if !cs.SubsetOf(ci) {
			t.Fatalf("seed %d: CS ⊄ CI\n%s", seed, syntax.Print(p))
		}
	}
}

// Monolithic and phased solving agree on random programs.
func TestSolverModesAgreeRandomPrograms(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		p := Generate(seed, Default())
		in := labels.Compute(p)
		sys := constraints.Generate(in, constraints.ContextSensitive)
		a := sys.Solve(constraints.Options{})
		b := sys.Solve(constraints.Options{Monolithic: true})
		for mi := range p.Methods {
			if !a.MethodSummary(mi).Equal(b.MethodSummary(mi)) {
				t.Fatalf("seed %d: solver modes disagree on method %d", seed, mi)
			}
		}
	}
}

// Preservation (Lemma 16): along any execution, the tree's typed M
// set never grows.
func TestPreservationRandomPrograms(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		p := Generate(seed, Default())
		in := labels.Compute(p)
		c := types.NewChecker(in)
		env := c.Infer().Env
		empty := intset.New(p.NumLabels())
		states := machine.Trace(p, machine.Initial(p, nil), machine.NewRandom(seed), 150)
		prev := c.JudgeTree(env, empty, states[0].T)
		for i := 1; i < len(states); i++ {
			cur := c.JudgeTree(env, empty, states[i].T)
			if !cur.SubsetOf(prev) {
				t.Fatalf("seed %d: preservation violated at step %d\n%s", seed, i, syntax.Print(p))
			}
			prev = cur
		}
	}
}

// Lemma 17 along traces: parallel(T) ⊆ typed M of T.
func TestParallelApproximationRandomPrograms(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		p := Generate(seed, Default())
		in := labels.Compute(p)
		c := types.NewChecker(in)
		env := c.Infer().Env
		empty := intset.New(p.NumLabels())
		states := machine.Trace(p, machine.Initial(p, nil), machine.NewRandom(seed+1000), 150)
		for i, st := range states {
			par := in.Parallel(st.T)
			m := c.JudgeTree(env, empty, st.T)
			if !par.SubsetOf(m) {
				t.Fatalf("seed %d: parallel ⊄ M at step %d", seed, i)
			}
		}
	}
}

// Lemma 7.15 along traces: Tlabels never grows under steps.
func TestTlabelsShrinkRandomPrograms(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		p := Generate(seed, Default())
		in := labels.Compute(p)
		states := machine.Trace(p, machine.Initial(p, nil), machine.NewRandom(seed), 150)
		prev := in.Tlabels(states[0].T)
		for i := 1; i < len(states); i++ {
			cur := in.Tlabels(states[i].T)
			if !cur.SubsetOf(prev) {
				t.Fatalf("seed %d: Tlabels grew at step %d", seed, i)
			}
			prev = cur
		}
	}
}

// Differential: the goroutine runtime's final array on finite
// programs is reachable in the formal semantics.
func TestRuntimeDifferentialRandomFinitePrograms(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		p := Generate(seed, Finite())
		finals, complete := explore.ReachableFinals(p, nil, 200_000)
		if !complete {
			continue
		}
		for trial := 0; trial < 5; trial++ {
			res, err := runtime.Run(p, nil, runtime.Options{})
			if err != nil {
				t.Fatalf("seed %d: runtime error: %v", seed, err)
			}
			key := machine.Array(res.Array).Key()
			if _, ok := finals[key]; !ok {
				t.Fatalf("seed %d: runtime final %v not reachable formally\n%s",
					seed, res.Array, syntax.Print(p))
			}
		}
	}
}

// The worklist solver agrees with the pass-based solver on random
// programs, in both analysis modes.
func TestWorklistSolverRandomPrograms(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		p := Generate(seed, Default())
		in := labels.Compute(p)
		for _, mode := range []constraints.Mode{constraints.ContextSensitive, constraints.ContextInsensitive} {
			sys := constraints.Generate(in, mode)
			a := sys.Solve(constraints.Options{})
			b := sys.Solve(constraints.Options{Worklist: true})
			for mi := range p.Methods {
				if !a.MethodSummary(mi).Equal(b.MethodSummary(mi)) {
					t.Fatalf("seed %d mode %v: worklist disagrees on method %d", seed, mode, mi)
				}
			}
		}
	}
}
