package progen

import (
	"testing"

	"fx10/internal/clocks"
	"fx10/internal/constraints"
	"fx10/internal/labels"
	"fx10/internal/parser"
	"fx10/internal/syntax"
)

// The clocked generator's whole point is a corpus that is (a) actually
// clocked often enough to exercise the phase analysis and (b) free of
// clocked-finish deadlocks and dynamic clock-use errors by
// construction, so the differential fuzzer can treat any deadlock or
// clock error as a bug rather than corpus noise.

func TestClockedGeneratedProgramsValidate(t *testing.T) {
	clocked := 0
	for seed := int64(0); seed < 100; seed++ {
		p := Generate(seed, ClockedFinite())
		if err := syntax.Validate(p); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := syntax.CheckClockUse(p); err != nil {
			t.Fatalf("seed %d: clock-use check failed: %v\n%s", seed, err, syntax.Print(p))
		}
		if p.UsesClocks() {
			clocked++
		}
	}
	if clocked < 30 {
		t.Fatalf("only %d/100 generated programs use clocks; generator too timid", clocked)
	}
}

func TestClockedGeneratedProgramsRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		p := Generate(seed, ClockedFinite())
		printed := syntax.Print(p)
		q, err := parser.Parse(printed)
		if err != nil {
			t.Fatalf("seed %d: reparse failed: %v\n%s", seed, err, printed)
		}
		if syntax.Print(q) != printed {
			t.Fatalf("seed %d: print/parse not a fixpoint", seed)
		}
	}
}

// Every generated clocked program terminates cleanly under the full
// barrier semantics: no interleaving deadlocks and no dynamic
// clock-use errors (exhaustive check on the finite corpus).
func TestClockedGeneratedProgramsDeadlockFree(t *testing.T) {
	complete := 0
	for seed := int64(0); seed < 60; seed++ {
		p := Generate(seed, ClockedFinite())
		res := clocks.Explore(p, nil, 200_000)
		if res.ClockErrors != 0 {
			t.Fatalf("seed %d: %d dynamic clock-use errors\n%s", seed, res.ClockErrors, syntax.Print(p))
		}
		if res.Deadlocks != 0 {
			t.Fatalf("seed %d: %d deadlocked interleavings\n%s", seed, res.Deadlocks, syntax.Print(p))
		}
		if res.Complete {
			complete++
			if !res.Terminated {
				t.Fatalf("seed %d: finite program has no terminating interleaving\n%s", seed, syntax.Print(p))
			}
		}
	}
	if complete < 40 {
		t.Fatalf("only %d/60 explorations completed; shrink the generator config", complete)
	}
}

// Soundness on the clocked corpus: the exact clocked relation is
// contained in the phase-aware static result, and randomized
// interpreter runs only observe pairs the explorer found.
func TestClockedSoundnessRandomPrograms(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		p := Generate(seed, ClockedFinite())
		res := clocks.Explore(p, nil, 200_000)
		if !res.Complete {
			continue
		}
		in := labels.Compute(p)
		m := constraints.Generate(in, constraints.ContextSensitive).Solve(constraints.Options{}).MainM()
		if !res.MHP.SubsetOf(m) {
			t.Fatalf("seed %d: soundness violated\nexact: %v\ninferred: %v\nprogram:\n%s",
				seed, res.MHP, m, syntax.Print(p))
		}
		for s := int64(0); s < 3; s++ {
			r, err := clocks.Run(p, nil, s, 100_000)
			if err != nil {
				t.Fatalf("seed %d/%d: interpreter error: %v\n%s", seed, s, err, syntax.Print(p))
			}
			if !r.Pairs.SubsetOf(res.MHP) {
				t.Fatalf("seed %d/%d: observed pairs not ⊆ exact relation", seed, s)
			}
		}
	}
}
