// Package progen generates random well-formed FX10 programs for
// property-based testing: the theorems of the paper (deadlock
// freedom, soundness, equivalence, preservation) are checked against
// many generated programs rather than only hand-written examples.
//
// Two shapes are offered:
//
//   - Finite programs (Config.Whiles == false) contain no loops and
//     only forward calls, so every execution terminates and the
//     reachable state space is finite — suitable for exhaustive
//     exploration.
//   - Full programs may contain while loops (generated with a
//     guard-clearing final assignment so the common schedules
//     terminate, though parallelism can still re-arm a guard) — only
//     fuel-bounded execution is used on these.
//
// Generation is deterministic in the seed.
package progen

import (
	"fmt"
	"math/rand"

	"fx10/internal/syntax"
)

// Config bounds the generated program.
type Config struct {
	// ArrayLen is the shared array length (≥ 1).
	ArrayLen int
	// Methods is the number of helper methods besides main (≥ 0).
	Methods int
	// MaxDepth bounds nesting of async/finish/while bodies.
	MaxDepth int
	// MaxSeq bounds the length of each statement sequence (≥ 1).
	MaxSeq int
	// Whiles enables while loops (see the package comment).
	Whiles bool
	// Asyncs, Finishes, Calls individually toggle those instruction
	// kinds (all true gives the full calculus).
	Asyncs, Finishes, Calls bool
	// Clocks enables clocked asyncs and next barriers, under rules
	// that keep every generated program deadlock-free and free of
	// dynamic clock-use errors: clock constructs appear only in main's
	// method (helpers stay clock-free), never inside a finish body (a
	// registered activity join-blocked over a parked clocked child is
	// the classic clocked-finish deadlock), and next only where the
	// executing activity is registered (main's own thread or a clocked
	// async body, but not an unclocked async body).
	Clocks bool
}

// Default returns a small full-calculus configuration.
func Default() Config {
	return Config{
		ArrayLen: 4, Methods: 2, MaxDepth: 3, MaxSeq: 3,
		Whiles: true, Asyncs: true, Finishes: true, Calls: true,
	}
}

// Finite returns a configuration whose programs always terminate and
// have finite state spaces (no loops, forward calls only), small
// enough for exhaustive exploration.
func Finite() Config {
	return Config{
		ArrayLen: 3, Methods: 2, MaxDepth: 2, MaxSeq: 2,
		Whiles: false, Asyncs: true, Finishes: true, Calls: true,
	}
}

// ClockedFinite returns a Finite-style configuration with clocked
// asyncs and next barriers enabled — finite state spaces (the clocked
// explorer is exhaustive on these) and deadlock-free by construction.
func ClockedFinite() Config {
	cfg := Finite()
	cfg.Clocks = true
	return cfg
}

// Generate builds a random program from the config and seed.
func Generate(seed int64, cfg Config) *syntax.Program {
	if cfg.ArrayLen < 1 {
		cfg.ArrayLen = 1
	}
	if cfg.MaxSeq < 1 {
		cfg.MaxSeq = 1
	}
	g := &gen{
		rng: rand.New(rand.NewSource(seed)),
		cfg: cfg,
		b:   syntax.NewBuilder(cfg.ArrayLen),
	}
	// Helper methods first; method i may only call methods j > i, so
	// call chains are acyclic and finite-mode programs terminate.
	names := make([]string, cfg.Methods)
	for i := range names {
		names[i] = fmt.Sprintf("f%d", i)
	}
	for i := cfg.Methods - 1; i >= 0; i-- {
		g.callable = names[i+1:]
		// Helpers are always clock-free: a next in a helper would be a
		// dynamic clock-use error whenever the caller is unregistered.
		body := g.stmt(cfg.MaxDepth, clockCtx{})
		g.b.MustAddMethod(names[i], body)
	}
	g.callable = names
	main := g.stmt(cfg.MaxDepth, clockCtx{mayClock: cfg.Clocks, registered: true})
	if cfg.Clocks {
		// Anchor main with a trailing result write, as real clocked
		// kernels end with a read-back. Analytically it pins a label at
		// a known phase after every spawn, so any split-phase async
		// body overlapping it yields cross-phase pairs — the shape the
		// phase-aware analysis exists to prune.
		main = syntax.Seq(main, g.b.Stmts(g.b.Assign("", g.idx(), g.expr())))
	}
	g.b.MustAddMethod("main", main)
	return g.b.MustProgram()
}

// clockCtx tracks where clock constructs are allowed while descending
// into nested bodies. mayClock is true only inside main's method and
// outside any finish body; registered is true while the generated code
// runs on a clock-registered activity (main's own thread, or a clocked
// async body), which is where next is legal.
type clockCtx struct {
	mayClock   bool
	registered bool
}

type gen struct {
	rng      *rand.Rand
	cfg      Config
	b        *syntax.Builder
	callable []string
}

// stmt generates a non-empty statement sequence.
func (g *gen) stmt(depth int, cc clockCtx) *syntax.Stmt {
	n := 1 + g.rng.Intn(g.cfg.MaxSeq)
	instrs := make([]syntax.Instr, 0, n)
	for i := 0; i < n; i++ {
		instrs = append(instrs, g.instr(depth, cc)...)
	}
	return g.b.Stmts(instrs...)
}

// instr generates one instruction (or a small idiom of several, for
// while loops).
func (g *gen) instr(depth int, cc clockCtx) []syntax.Instr {
	kinds := []string{"skip", "assign"}
	if depth > 0 {
		if g.cfg.Asyncs {
			kinds = append(kinds, "async", "async")
		}
		if g.cfg.Finishes {
			kinds = append(kinds, "finish")
		}
		if g.cfg.Whiles {
			kinds = append(kinds, "while")
		}
		if cc.mayClock {
			kinds = append(kinds, "clockedasync", "clockedasync")
		}
	}
	if cc.mayClock && cc.registered {
		kinds = append(kinds, "next")
	}
	if g.cfg.Calls && len(g.callable) > 0 {
		kinds = append(kinds, "call")
	}
	switch kinds[g.rng.Intn(len(kinds))] {
	case "skip":
		return []syntax.Instr{g.b.Skip("")}
	case "assign":
		return []syntax.Instr{g.b.Assign("", g.idx(), g.expr())}
	case "async":
		// An unclocked async body runs unregistered: no next inside,
		// though clocked grandchildren may re-register.
		return []syntax.Instr{g.b.Async("", g.stmt(depth-1, clockCtx{mayClock: cc.mayClock}))}
	case "clockedasync":
		// The body is registered regardless of the spawner. Mostly
		// generate the split-phase idiom — the body straddles an
		// internal barrier, landing its labels on distinct phases (the
		// shape whose cross-phase pairs the analysis can prune); the
		// rest stay barrier-free for coverage of plain clocked spawns.
		inner := clockCtx{mayClock: cc.mayClock, registered: true}
		body := g.stmt(depth-1, inner)
		if g.rng.Intn(6) != 0 {
			body = syntax.Seq(body, syntax.Seq(g.b.Stmts(g.b.Next("")), g.stmt(depth-1, inner)))
		}
		return []syntax.Instr{g.b.ClockedAsync("", body)}
	case "next":
		return []syntax.Instr{g.b.Next("")}
	case "finish":
		// No clock constructs under a finish: a registered activity
		// join-blocked while a clocked child parks would deadlock.
		return []syntax.Instr{g.b.Finish("", g.stmt(depth-1, clockCtx{registered: cc.registered}))}
	case "while":
		// Idiom: arm the guard, loop with a body that clears it last.
		d := g.idx()
		body := syntax.Seq(g.stmt(depth-1, cc), g.b.Stmts(g.b.Assign("", d, syntax.Const{C: 0})))
		return []syntax.Instr{
			g.b.Assign("", d, syntax.Const{C: 1}),
			g.b.While("", d, body),
		}
	case "call":
		return []syntax.Instr{g.b.Call("", g.callable[g.rng.Intn(len(g.callable))])}
	}
	return []syntax.Instr{g.b.Skip("")}
}

func (g *gen) idx() int { return g.rng.Intn(g.cfg.ArrayLen) }

func (g *gen) expr() syntax.Expr {
	if g.rng.Intn(2) == 0 {
		return syntax.Const{C: int64(g.rng.Intn(2))}
	}
	return syntax.Plus{D: g.idx()}
}
