// Package progen generates random well-formed FX10 programs for
// property-based testing: the theorems of the paper (deadlock
// freedom, soundness, equivalence, preservation) are checked against
// many generated programs rather than only hand-written examples.
//
// Two shapes are offered:
//
//   - Finite programs (Config.Whiles == false) contain no loops and
//     only forward calls, so every execution terminates and the
//     reachable state space is finite — suitable for exhaustive
//     exploration.
//   - Full programs may contain while loops (generated with a
//     guard-clearing final assignment so the common schedules
//     terminate, though parallelism can still re-arm a guard) — only
//     fuel-bounded execution is used on these.
//
// Generation is deterministic in the seed.
package progen

import (
	"fmt"
	"math/rand"

	"fx10/internal/syntax"
)

// Config bounds the generated program.
type Config struct {
	// ArrayLen is the shared array length (≥ 1).
	ArrayLen int
	// Methods is the number of helper methods besides main (≥ 0).
	Methods int
	// MaxDepth bounds nesting of async/finish/while bodies.
	MaxDepth int
	// MaxSeq bounds the length of each statement sequence (≥ 1).
	MaxSeq int
	// Whiles enables while loops (see the package comment).
	Whiles bool
	// Asyncs, Finishes, Calls individually toggle those instruction
	// kinds (all true gives the full calculus).
	Asyncs, Finishes, Calls bool
}

// Default returns a small full-calculus configuration.
func Default() Config {
	return Config{
		ArrayLen: 4, Methods: 2, MaxDepth: 3, MaxSeq: 3,
		Whiles: true, Asyncs: true, Finishes: true, Calls: true,
	}
}

// Finite returns a configuration whose programs always terminate and
// have finite state spaces (no loops, forward calls only), small
// enough for exhaustive exploration.
func Finite() Config {
	return Config{
		ArrayLen: 3, Methods: 2, MaxDepth: 2, MaxSeq: 2,
		Whiles: false, Asyncs: true, Finishes: true, Calls: true,
	}
}

// Generate builds a random program from the config and seed.
func Generate(seed int64, cfg Config) *syntax.Program {
	if cfg.ArrayLen < 1 {
		cfg.ArrayLen = 1
	}
	if cfg.MaxSeq < 1 {
		cfg.MaxSeq = 1
	}
	g := &gen{
		rng: rand.New(rand.NewSource(seed)),
		cfg: cfg,
		b:   syntax.NewBuilder(cfg.ArrayLen),
	}
	// Helper methods first; method i may only call methods j > i, so
	// call chains are acyclic and finite-mode programs terminate.
	names := make([]string, cfg.Methods)
	for i := range names {
		names[i] = fmt.Sprintf("f%d", i)
	}
	for i := cfg.Methods - 1; i >= 0; i-- {
		g.callable = names[i+1:]
		body := g.stmt(cfg.MaxDepth)
		g.b.MustAddMethod(names[i], body)
	}
	g.callable = names
	g.b.MustAddMethod("main", g.stmt(cfg.MaxDepth))
	return g.b.MustProgram()
}

type gen struct {
	rng      *rand.Rand
	cfg      Config
	b        *syntax.Builder
	callable []string
}

// stmt generates a non-empty statement sequence.
func (g *gen) stmt(depth int) *syntax.Stmt {
	n := 1 + g.rng.Intn(g.cfg.MaxSeq)
	instrs := make([]syntax.Instr, 0, n)
	for i := 0; i < n; i++ {
		instrs = append(instrs, g.instr(depth)...)
	}
	return g.b.Stmts(instrs...)
}

// instr generates one instruction (or a small idiom of several, for
// while loops).
func (g *gen) instr(depth int) []syntax.Instr {
	kinds := []string{"skip", "assign"}
	if depth > 0 {
		if g.cfg.Asyncs {
			kinds = append(kinds, "async", "async")
		}
		if g.cfg.Finishes {
			kinds = append(kinds, "finish")
		}
		if g.cfg.Whiles {
			kinds = append(kinds, "while")
		}
	}
	if g.cfg.Calls && len(g.callable) > 0 {
		kinds = append(kinds, "call")
	}
	switch kinds[g.rng.Intn(len(kinds))] {
	case "skip":
		return []syntax.Instr{g.b.Skip("")}
	case "assign":
		return []syntax.Instr{g.b.Assign("", g.idx(), g.expr())}
	case "async":
		return []syntax.Instr{g.b.Async("", g.stmt(depth-1))}
	case "finish":
		return []syntax.Instr{g.b.Finish("", g.stmt(depth-1))}
	case "while":
		// Idiom: arm the guard, loop with a body that clears it last.
		d := g.idx()
		body := syntax.Seq(g.stmt(depth-1), g.b.Stmts(g.b.Assign("", d, syntax.Const{C: 0})))
		return []syntax.Instr{
			g.b.Assign("", d, syntax.Const{C: 1}),
			g.b.While("", d, body),
		}
	case "call":
		return []syntax.Instr{g.b.Call("", g.callable[g.rng.Intn(len(g.callable))])}
	}
	return []syntax.Instr{g.b.Skip("")}
}

func (g *gen) idx() int { return g.rng.Intn(g.cfg.ArrayLen) }

func (g *gen) expr() syntax.Expr {
	if g.rng.Intn(2) == 0 {
		return syntax.Const{C: int64(g.rng.Intn(2))}
	}
	return syntax.Plus{D: g.idx()}
}
