package progen

import (
	"fmt"
	"math/rand"

	"fx10/internal/syntax"
)

// HugeConfig shapes the "huge" scale tier: programs of a hundred
// thousand or more labels, built from a deep call tree of structured
// methods rather than the random nesting of Config. Where Generate
// exercises the analysis's breadth (every construct, adversarial
// nesting), GenerateHuge exercises its scale: the constraint graph's
// condensation becomes a wide, deep DAG — independent call subtrees —
// which is exactly the shape a parallel solver needs to show a
// speedup, while the finish discipline below keeps pair counts and
// escape sets bounded so solving stays memory-feasible at 100k+
// labels.
type HugeConfig struct {
	// Labels is the target label count. The generated program meets
	// or exceeds it (the per-method shape quantizes the total).
	Labels int
	// Branch is the call-tree fan-out: method i calls methods
	// Branch·i+1 … Branch·i+Branch (heap indexing, so the call graph
	// is a forward-edge tree plus Extra chords — acyclic by
	// construction). Smaller Branch gives deeper chains.
	Branch int
	// Groups is the number of finish{async…} groups per method body;
	// GroupWidth asyncs per group run in parallel, each with
	// GroupBody assignments. The enclosing finish keeps the group's
	// pairs local: pair bags grow linearly in method count, not
	// quadratically in program size.
	Groups, GroupWidth, GroupBody int
	// Escape is the number of asyncs spawned outside any finish —
	// they outlive the method, populating its O set. Callers wrap
	// calls in finish, so escapees stop one level up instead of
	// accumulating along the whole call chain.
	Escape int
	// Extra is the number of additional random forward calls per
	// method, adding DAG chords so the condensation is not a pure
	// tree.
	Extra int
	// ArrayLen is the shared array length (≥ 1).
	ArrayLen int
}

// Huge returns the default huge-tier shape for a target label count.
func Huge(labels int) HugeConfig {
	return HugeConfig{
		Labels: labels,
		Branch: 4, Groups: 2, GroupWidth: 3, GroupBody: 3,
		Escape: 1, Extra: 1, ArrayLen: 8,
	}
}

// GenerateHuge builds a huge-tier program, deterministic in the seed.
func GenerateHuge(seed int64, cfg HugeConfig) *syntax.Program {
	if cfg.ArrayLen < 1 {
		cfg.ArrayLen = 1
	}
	if cfg.Branch < 1 {
		cfg.Branch = 1
	}
	if cfg.Labels < 1 {
		cfg.Labels = 1
	}
	rng := rand.New(rand.NewSource(seed))
	b := syntax.NewBuilder(cfg.ArrayLen)
	idx := func() int { return rng.Intn(cfg.ArrayLen) }
	expr := func() syntax.Expr {
		if rng.Intn(2) == 0 {
			return syntax.Const{C: int64(rng.Intn(2))}
		}
		return syntax.Plus{D: idx()}
	}

	// Average labels per method: each group is 1 finish + GroupWidth
	// asyncs of GroupBody assigns each; each escapee is async+assign;
	// amortized over the tree each method has about 1+Extra callees
	// (the tree has k-1 child edges over k methods), each finish+call;
	// plus the trailing assign.
	perMethod := cfg.Groups*(1+cfg.GroupWidth*(1+cfg.GroupBody)) +
		cfg.Escape*2 + (1+cfg.Extra)*2 + 1
	if perMethod < 1 {
		perMethod = 1
	}
	k := (cfg.Labels + perMethod - 1) / perMethod
	if k < 1 {
		k = 1
	}

	names := make([]string, k)
	for i := range names {
		names[i] = fmt.Sprintf("f%d", i)
	}
	// Deepest-index first, like Generate: every call targets an
	// already-added method.
	for i := k - 1; i >= 0; i-- {
		var instrs []syntax.Instr
		for g := 0; g < cfg.Groups; g++ {
			asyncs := make([]syntax.Instr, 0, cfg.GroupWidth)
			for a := 0; a < cfg.GroupWidth; a++ {
				body := make([]syntax.Instr, 0, cfg.GroupBody)
				for s := 0; s < cfg.GroupBody; s++ {
					body = append(body, b.Assign("", idx(), expr()))
				}
				asyncs = append(asyncs, b.Async("", b.Stmts(body...)))
			}
			instrs = append(instrs, b.Finish("", b.Stmts(asyncs...)))
		}
		for c := cfg.Branch*i + 1; c <= cfg.Branch*i+cfg.Branch && c < k; c++ {
			instrs = append(instrs, b.Finish("", b.Stmts(b.Call("", names[c]))))
		}
		for e := 0; e < cfg.Extra && i+1 < k; e++ {
			j := i + 1 + rng.Intn(k-i-1)
			instrs = append(instrs, b.Finish("", b.Stmts(b.Call("", names[j]))))
		}
		// Escapees are spawned after the calls: they overlap only the
		// method's trailing statement (plus whatever the caller runs
		// before its bounding finish joins), not the entire callee
		// subtree — keeping the pair count linear in program size
		// while still populating every method's O set.
		for e := 0; e < cfg.Escape; e++ {
			instrs = append(instrs, b.Async("", b.Stmts(b.Assign("", idx(), expr()))))
		}
		instrs = append(instrs, b.Assign("", idx(), expr()))
		b.MustAddMethod(names[i], b.Stmts(instrs...))
	}
	b.MustAddMethod("main", b.Stmts(b.Call("", names[0]), b.Assign("", idx(), expr())))
	return b.MustProgram()
}
