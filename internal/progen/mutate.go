package progen

import (
	"fmt"
	"math/rand"

	"fx10/internal/syntax"
)

// This file provides single-method program edits for the incremental
// analysis: Clone rebuilds a program unchanged, AppendSkip makes the
// smallest possible edit to one method, and MutateMethod applies a
// seeded random edit. All three leave every other method structurally
// identical (same instruction kinds, operands and label display
// names), which is what engine.AnalyzeDelta keys on — the rebuilt
// program has fresh label indices, but method content hashes are
// index-invariant by design.

// rebuild reconstructs p with a fresh builder, letting edit produce
// the top-level instruction list of method mi (edit nil clones every
// method unchanged). The edit callback is responsible for cloning —
// instructions it leaves out are never allocated on the builder.
func rebuild(p *syntax.Program, mi int, edit func(b *syntax.Builder, nm *namer, body *syntax.Stmt) []syntax.Instr) *syntax.Program {
	b := syntax.NewBuilder(p.ArrayLen)
	nm := newNamer(p)
	for i, m := range p.Methods {
		var instrs []syntax.Instr
		if i == mi && edit != nil {
			instrs = edit(b, nm, m.Body)
		} else {
			instrs = cloneList(b, p, m.Body, -1)
		}
		b.MustAddMethod(m.Name, b.Stmts(instrs...))
	}
	return b.MustProgram()
}

// Clone rebuilds p from scratch: a structurally identical program with
// fresh label indices. Useful for testing index-invariance of content
// hashes.
func Clone(p *syntax.Program) *syntax.Program {
	return rebuild(p, -1, nil)
}

// AppendSkip returns a copy of p whose method mi has one skip appended
// to its top-level sequence — the minimal single-method edit.
func AppendSkip(p *syntax.Program, mi int) *syntax.Program {
	return rebuild(p, mi, func(b *syntax.Builder, nm *namer, body *syntax.Stmt) []syntax.Instr {
		return append(cloneList(b, p, body, -1), b.Skip(nm.fresh()))
	})
}

// MutateMethod returns a copy of p with one seeded random edit applied
// to method mi: append a skip, prepend an assignment, wrap the body in
// finish or async, or drop the last top-level instruction. The result
// is always a valid program; generation is deterministic in the seed.
func MutateMethod(p *syntax.Program, mi int, seed int64) *syntax.Program {
	rng := rand.New(rand.NewSource(seed))
	return rebuild(p, mi, func(b *syntax.Builder, nm *namer, body *syntax.Stmt) []syntax.Instr {
		switch rng.Intn(5) {
		case 0:
			return append(cloneList(b, p, body, -1), b.Skip(nm.fresh()))
		case 1:
			idx := 0
			if p.ArrayLen > 1 {
				idx = rng.Intn(p.ArrayLen)
			}
			first := b.Assign(nm.fresh(), idx, syntax.Const{C: 0})
			return append([]syntax.Instr{first}, cloneList(b, p, body, -1)...)
		case 2:
			return []syntax.Instr{b.Finish(nm.fresh(), b.Stmts(cloneList(b, p, body, -1)...))}
		case 3:
			return []syntax.Instr{b.Async(nm.fresh(), b.Stmts(cloneList(b, p, body, -1)...))}
		default:
			n := 0
			for cur := body; cur != nil; cur = cur.Next {
				n++
			}
			if n > 1 {
				return cloneList(b, p, body, n-1)
			}
			return append(cloneList(b, p, body, -1), b.Skip(nm.fresh()))
		}
	})
}

// cloneList re-creates the first limit instructions of s (recursively;
// limit < 0 clones the whole sequence) on b, preserving label display
// names, operands and nesting.
func cloneList(b *syntax.Builder, p *syntax.Program, s *syntax.Stmt, limit int) []syntax.Instr {
	var instrs []syntax.Instr
	for cur := s; cur != nil && (limit < 0 || len(instrs) < limit); cur = cur.Next {
		name := p.Labels[cur.Instr.Label()].Name
		switch i := cur.Instr.(type) {
		case *syntax.Skip:
			instrs = append(instrs, b.Skip(name))
		case *syntax.Next:
			instrs = append(instrs, b.Next(name))
		case *syntax.Assign:
			instrs = append(instrs, b.Assign(name, i.D, i.Rhs))
		case *syntax.While:
			body := b.Stmts(cloneList(b, p, i.Body, -1)...)
			instrs = append(instrs, b.While(name, i.D, body))
		case *syntax.Async:
			body := b.Stmts(cloneList(b, p, i.Body, -1)...)
			a := b.Async(name, body).(*syntax.Async)
			a.Place = i.Place
			a.Clocked = i.Clocked
			instrs = append(instrs, a)
		case *syntax.Finish:
			body := b.Stmts(cloneList(b, p, i.Body, -1)...)
			instrs = append(instrs, b.Finish(name, body))
		case *syntax.Call:
			instrs = append(instrs, b.Call(name, i.Name))
		default:
			panic(fmt.Sprintf("progen: unknown instruction %T", cur.Instr))
		}
	}
	return instrs
}

// namer hands out label display names not used anywhere in the source
// program (Validate requires globally unique names).
type namer struct {
	used map[string]bool
	n    int
}

func newNamer(p *syntax.Program) *namer {
	nm := &namer{used: make(map[string]bool, len(p.Labels))}
	for _, li := range p.Labels {
		nm.used[li.Name] = true
	}
	return nm
}

func (nm *namer) fresh() string {
	for {
		name := fmt.Sprintf("e%d", nm.n)
		nm.n++
		if !nm.used[name] {
			nm.used[name] = true
			return name
		}
	}
}
