package progen

import (
	"testing"

	"fx10/internal/parser"
	"fx10/internal/syntax"
)

func TestGenerateHugeValidatesAndMeetsTarget(t *testing.T) {
	for _, target := range []int{1, 500, 5000} {
		for seed := int64(0); seed < 3; seed++ {
			p := GenerateHuge(seed, Huge(target))
			if err := syntax.Validate(p); err != nil {
				t.Fatalf("target %d seed %d: %v", target, seed, err)
			}
			if n := p.NumLabels(); n < target {
				t.Errorf("target %d seed %d: only %d labels", target, seed, n)
			}
		}
	}
}

func TestGenerateHugeDeterministic(t *testing.T) {
	a := syntax.Print(GenerateHuge(7, Huge(2000)))
	b := syntax.Print(GenerateHuge(7, Huge(2000)))
	if a != b {
		t.Fatal("huge generation not deterministic in seed")
	}
	if a == syntax.Print(GenerateHuge(8, Huge(2000))) {
		t.Fatal("distinct seeds produced identical programs")
	}
}

func TestGenerateHugeRoundTrip(t *testing.T) {
	p := GenerateHuge(3, Huge(1500))
	printed := syntax.Print(p)
	q, err := parser.Parse(printed)
	if err != nil {
		t.Fatalf("reparse failed: %v", err)
	}
	if syntax.Print(q) != printed {
		t.Fatal("print/parse not a fixpoint on huge tier")
	}
}

// TestGenerateHugeShape pins the structural claims the scale tier
// makes: a deep acyclic call tree (every call is forward, depth grows
// with size) and per-method async groups.
func TestGenerateHugeShape(t *testing.T) {
	cfg := Huge(3000)
	p := GenerateHuge(1, cfg)
	if len(p.Methods) < 50 {
		t.Fatalf("expected a wide method tree, got %d methods", len(p.Methods))
	}
	// Heap indexing gives depth ≈ log_Branch(methods); the chain
	// f0 → f1 → f5 → … follows first children down the tree.
	depth := 0
	for i := 0; i < len(p.Methods)-1; i = cfg.Branch*i + 1 {
		depth++
	}
	if depth < 3 {
		t.Fatalf("call tree too shallow: depth %d over %d methods", depth, len(p.Methods))
	}
}
