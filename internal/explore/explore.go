// Package explore computes the exact may-happen-in-parallel relation
// of small FX10 programs by exhaustive state-space exploration:
//
//	MHP(p) = ∪ { parallel(T) | (p, A₀, ⟨s₀⟩) →* (p, A, T) }
//
// which is the ground truth the type system conservatively
// approximates (Theorem 3). Exploration enumerates every interleaving
// with state deduplication, so it is exponential and only feasible
// for small programs — exactly its role in the paper's Section 6,
// where exact information is what false positives are counted
// against.
package explore

import (
	"fx10/internal/intset"
	"fx10/internal/labels"
	"fx10/internal/machine"
	"fx10/internal/syntax"
	"fx10/internal/tree"
)

// Result is the outcome of an exploration.
type Result struct {
	// MHP is the union of parallel(T) over all visited states.
	MHP *intset.PairSet
	// States is the number of distinct states visited.
	States int
	// Steps is the number of transitions examined.
	Steps int
	// Complete reports whether the full reachable state space was
	// visited. When false (budget exhausted), MHP is a lower bound on
	// the exact relation.
	Complete bool
	// Terminated reports whether some visited state had T = √.
	Terminated bool
	// ProgressViolations counts visited states that violate Theorem 1
	// (always 0 unless the machine is broken); kept as a cheap,
	// always-on oracle.
	ProgressViolations int
}

// MHP explores the state space of p from the initial array a0 (nil
// means all zeros), visiting at most maxStates distinct states.
func MHP(p *syntax.Program, a0 []int64, maxStates int) Result {
	return MHPWithInfo(labels.Compute(p), p, a0, maxStates)
}

// MHPWithInfo is MHP with a caller-provided Slabels fixpoint, so
// callers that already computed one (e.g. the analysis pipeline)
// can share it.
func MHPWithInfo(in *labels.Info, p *syntax.Program, a0 []int64, maxStates int) Result {
	res := Result{MHP: intset.NewPairs(p.NumLabels())}
	start := machine.Initial(p, a0)

	type keyed struct {
		st  machine.State
		key string
	}
	stateKey := func(st machine.State) string {
		return st.A.Key() + "|" + tree.Key(st.T)
	}

	seen := map[string]bool{}
	frontier := []keyed{{st: start, key: stateKey(start)}}
	seen[frontier[0].key] = true

	for len(frontier) > 0 {
		cur := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		res.States++

		res.MHP.UnionWith(in.Parallel(cur.st.T))
		if cur.st.T.Done() {
			res.Terminated = true
		}

		succ := machine.Successors(p, cur.st)
		if len(succ) == 0 && !cur.st.T.Done() {
			res.ProgressViolations++
		}
		res.Steps += len(succ)
		for _, s := range succ {
			k := stateKey(s)
			if seen[k] {
				continue
			}
			if res.States+len(frontier) >= maxStates {
				res.Complete = false
				return res
			}
			seen[k] = true
			frontier = append(frontier, keyed{st: s, key: k})
		}
	}
	res.Complete = true
	return res
}

// ReachableFinals explores the state space like MHP and returns the
// distinct final arrays of every terminated execution (keyed by their
// canonical string). Useful for checking schedule-dependence of
// results (data races) and for differential testing against the
// goroutine runtime. The bool result reports completeness.
func ReachableFinals(p *syntax.Program, a0 []int64, maxStates int) (map[string]machine.Array, bool) {
	finals := map[string]machine.Array{}
	start := machine.Initial(p, a0)
	stateKey := func(st machine.State) string {
		return st.A.Key() + "|" + tree.Key(st.T)
	}
	seen := map[string]bool{stateKey(start): true}
	frontier := []machine.State{start}
	visited := 0
	for len(frontier) > 0 {
		cur := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		visited++
		if cur.T.Done() {
			finals[cur.A.Key()] = cur.A
			continue
		}
		for _, s := range machine.Successors(p, cur) {
			k := stateKey(s)
			if seen[k] {
				continue
			}
			if visited+len(frontier) >= maxStates {
				return finals, false
			}
			seen[k] = true
			frontier = append(frontier, s)
		}
	}
	return finals, true
}
