package explore_test

import (
	"fmt"

	"fx10/internal/explore"
	"fx10/internal/parser"
)

// ExampleReachableFinals enumerates every final state of a racy
// program: the read may or may not see the async's write.
func ExampleReachableFinals() {
	p := parser.MustParse(`
array 2;
void main() {
  async { a[0] = 10; }
  a[1] = a[0] + 1;
}
`)
	finals, complete := explore.ReachableFinals(p, nil, 100_000)
	fmt.Println("complete:", complete)
	fmt.Println("distinct finals:", len(finals))
	// Output:
	// complete: true
	// distinct finals: 2
}

// ExampleMHP computes the exact may-happen-in-parallel relation by
// exhaustive interleaving search.
func ExampleMHP() {
	p := parser.MustParse(`
array 2;
void main() {
  A: async { S: skip; }
  T: skip;
}
`)
	res := explore.MHP(p, nil, 100_000)
	s, _ := p.LabelByName("S")
	t, _ := p.LabelByName("T")
	fmt.Println("complete:", res.Complete)
	fmt.Println("S ∥ T:", res.MHP.Has(int(s), int(t)))
	// Output:
	// complete: true
	// S ∥ T: true
}
