package explore

import (
	"testing"

	"fx10/internal/constraints"
	"fx10/internal/fixtures"
	"fx10/internal/intset"
	"fx10/internal/labels"
	"fx10/internal/parser"
	"fx10/internal/syntax"
)

func expected(t *testing.T, p *syntax.Program, pairs [][2]string) *intset.PairSet {
	t.Helper()
	out := intset.NewPairs(p.NumLabels())
	for _, pr := range pairs {
		l1, ok1 := p.LabelByName(pr[0])
		l2, ok2 := p.LabelByName(pr[1])
		if !ok1 || !ok2 {
			t.Fatalf("labels %v missing", pr)
		}
		out.AddSym(int(l1), int(l2))
	}
	return out
}

// For both paper examples the analysis is exact ("best possible"), so
// exhaustive exploration must produce exactly the same MHP relation.
func TestGroundTruthMatchesPaperExamples(t *testing.T) {
	cases := []struct {
		name, src string
		pairs     [][2]string
	}{
		{"example21", fixtures.Example21Source, fixtures.Example21MHP},
		{"example22", fixtures.Example22Source, fixtures.Example22MHP},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := parser.MustParse(tc.src)
			res := MHP(p, nil, 1_000_000)
			if !res.Complete {
				t.Fatalf("exploration incomplete after %d states", res.States)
			}
			if !res.Terminated {
				t.Fatalf("no terminating execution found")
			}
			if res.ProgressViolations != 0 {
				t.Fatalf("%d progress violations", res.ProgressViolations)
			}
			want := expected(t, p, tc.pairs)
			if !res.MHP.Equal(want) {
				t.Fatalf("exact MHP = %v, want %v", res.MHP, want)
			}
		})
	}
}

// Theorem 3 end to end: the exact relation is contained in the
// analysis result, on programs where the analysis is conservative.
func TestSoundnessWithConservativeLoop(t *testing.T) {
	// The paper's Section 8 false-positive pattern: the loop never
	// executes (guard is 0), so dynamically S1 and S2 never overlap,
	// but the analysis reports (S1, S2).
	p := parser.MustParse(`
array 2;
void main() {
  W: while (a[0] != 0) {
    B1: async { S1: skip; }
  }
  B2: async { S2: skip; }
}
`)
	res := MHP(p, nil, 1_000_000)
	if !res.Complete {
		t.Fatalf("exploration incomplete")
	}
	sys := constraints.Generate(labels.Compute(p), constraints.ContextSensitive)
	m := sys.Solve(constraints.Options{}).MainM()
	if !res.MHP.SubsetOf(m) {
		t.Fatalf("soundness violated: exact %v ⊄ inferred %v", res.MHP, m)
	}
	s1, _ := p.LabelByName("S1")
	s2, _ := p.LabelByName("S2")
	if res.MHP.Has(int(s1), int(s2)) {
		t.Fatalf("dead loop body executed dynamically?")
	}
	if !m.Has(int(s1), int(s2)) {
		t.Fatalf("analysis missing the expected conservative (S1,S2) pair")
	}
}

// A method with an async, called twice without an intervening finish:
// the two spawned bodies share one async label, so the self pair
// (S1, S1) is dynamically real — as is the overlap with the later
// async. (A loop-spawned self pair behaves identically but has an
// unbounded reachable state space, so the bounded two-call shape is
// what the explorer can verify exhaustively.)
func TestCallTwiceDynamicSelfPair(t *testing.T) {
	p := parser.MustParse(`
array 2;
void m() { B1: async { S1: skip; } }
void main() {
  m();
  m();
  B2: async { S2: skip; }
}
`)
	res := MHP(p, nil, 1_000_000)
	if !res.Complete {
		t.Fatalf("exploration incomplete after %d states", res.States)
	}
	s1, _ := p.LabelByName("S1")
	s2, _ := p.LabelByName("S2")
	if !res.MHP.Has(int(s1), int(s2)) {
		t.Fatalf("(S1,S2) not found dynamically: %v", res.MHP)
	}
	if !res.MHP.Has(int(s1), int(s1)) {
		t.Fatalf("(S1,S1) self pair not found dynamically")
	}
	// Soundness against the analysis on the same program.
	sys := constraints.Generate(labels.Compute(p), constraints.ContextSensitive)
	m := sys.Solve(constraints.Options{}).MainM()
	if !res.MHP.SubsetOf(m) {
		t.Fatalf("soundness violated")
	}
}

func TestBudgetExhaustion(t *testing.T) {
	p := parser.MustParse(fixtures.Example21Source)
	res := MHP(p, nil, 5)
	if res.Complete {
		t.Fatalf("tiny budget reported complete")
	}
	if res.States == 0 || res.States > 5 {
		t.Fatalf("states = %d, want within budget", res.States)
	}
}

func TestReachableFinalsRace(t *testing.T) {
	p := parser.MustParse(`
array 2;
void main() {
  async { a[0] = 10; }
  a[1] = a[0] + 1;
}
`)
	finals, complete := ReachableFinals(p, nil, 1_000_000)
	if !complete {
		t.Fatalf("incomplete")
	}
	if len(finals) != 2 {
		t.Fatalf("racy program should have 2 distinct finals, got %d: %v", len(finals), finals)
	}
}

func TestReachableFinalsDeterministicWithFinish(t *testing.T) {
	p := parser.MustParse(`
array 2;
void main() {
  finish {
    async { a[0] = 10; }
  }
  a[1] = a[0] + 1;
}
`)
	finals, complete := ReachableFinals(p, nil, 1_000_000)
	if !complete {
		t.Fatalf("incomplete")
	}
	if len(finals) != 1 {
		t.Fatalf("finish-synchronized program should have 1 final, got %d: %v", len(finals), finals)
	}
	for _, a := range finals {
		if a[0] != 10 || a[1] != 11 {
			t.Fatalf("final = %v", a)
		}
	}
}

func TestInitialArrayRespected(t *testing.T) {
	p := parser.MustParse(`
array 2;
void main() {
  while (a[0] != 0) {
    a[1] = 1;
    a[0] = 0;
  }
}
`)
	finals, _ := ReachableFinals(p, []int64{1, 0}, 100000)
	if len(finals) != 1 {
		t.Fatalf("finals = %v", finals)
	}
	for _, a := range finals {
		if a[1] != 1 {
			t.Fatalf("loop body did not run with a0=1: %v", a)
		}
	}
}
