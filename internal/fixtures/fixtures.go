// Package fixtures holds the paper's worked example programs in
// concrete FX10 syntax, shared by tests, examples and benchmarks
// across the repository.
package fixtures

import (
	"fx10/internal/parser"
	"fx10/internal/syntax"
)

// Example21Source is the program of Section 2.1 (the intraprocedural
// example adapted from Agarwal et al., PPoPP 2007, Figure 4),
// reconstructed from the constraint system the paper lists in
// Figure 5: the statement-level constraint variables there pin down
// the program shape (S0 and S13 are finishes, S1, S6 and S7 are
// asyncs with bodies S13…, S11 and S12 respectively).
//
// The paper's expected analysis output for this program:
//
//	S2 may happen in parallel with S5, S6, S7, S8, S11, S12 and the
//	inner finish S13; S11 may happen in parallel with S12; S7 may
//	happen in parallel with S11 — and nothing else.
const Example21Source = `
array 4;

void main() {
  S0: finish {
    S1: async {
      S13: finish {
        S5: skip;
        S6: async { S11: skip; }
        S7: async { S12: skip; }
      }
      S8: skip;
    }
    S2: skip;
  }
  S3: skip;
}
`

// Example21MHP lists the paper's expected may-happen-in-parallel
// label pairs for Example21Source (unordered; the analysis result is
// their symmetric closure and nothing more).
var Example21MHP = [][2]string{
	{"S2", "S5"}, {"S2", "S6"}, {"S2", "S7"}, {"S2", "S8"},
	{"S2", "S11"}, {"S2", "S12"}, {"S2", "S13"},
	{"S11", "S12"}, {"S7", "S11"},
}

// Example22Source is the program of Section 2.2 (the modular
// interprocedural example). A3/A4/A5 label the async instructions
// whose bodies are S3/S4/S5, and C1/C2 label the two calls to f.
const Example22Source = `
array 4;

void f() {
  A5: async { S5: skip; }
}

void main() {
  S1: finish {
    A3: async { S3: skip; }
    C1: f();
  }
  S2: finish {
    C2: f();
    A4: async { S4: skip; }
  }
}
`

// Example22MHP lists the paper's expected may-happen-in-parallel
// label pairs for Example22Source: "S5 may happen in parallel with
// each of S3, async S4, and S4, and S3 may also happen in parallel
// with the first call f() and with async S5" — and nothing else. In
// particular (S3, S4) must NOT be present (that pair is the false
// positive the context-insensitive analysis produces).
var Example22MHP = [][2]string{
	{"S5", "S3"}, {"S5", "A4"}, {"S5", "S4"},
	{"S3", "C1"}, {"S3", "A5"},
}

// Example21 parses Example21Source.
func Example21() *syntax.Program { return parser.MustParse(Example21Source) }

// Example22 parses Example22Source.
func Example22() *syntax.Program { return parser.MustParse(Example22Source) }
