package gofront

import (
	"fmt"
	"strings"

	"fx10/internal/condensed"
)

// Render pretty-prints a condensed unit as restricted-subset Go
// source that Lower maps back to an equivalent unit: same kinds, same
// nesting, same callees, so the lowered FX10 programs (and hence the
// MHP reports) are bit-identical. It is the Go side of the
// cross-front-end oracle (internal/difffuzz).
//
// The finish encoding is `var wgN sync.WaitGroup` … `wgN.Wait()`
// with every async in the span spawned via `wgN.Go(func(){…})`, so
// the re-lowering's joined check proves every spawn tracked. Asyncs
// outside any finish render as plain `go func(){…}()`.
//
// Clock barriers (advance), clocked asyncs and place-switching asyncs
// have no Go equivalent in the subset; Render returns an error for
// units containing them.
func Render(u *condensed.Unit) (string, error) {
	r := &renderer{}
	var body strings.Builder
	for i, m := range u.Methods {
		if i > 0 {
			body.WriteByte('\n')
		}
		fmt.Fprintf(&body, "func %s() {\n", m.Name)
		if err := r.block(&body, m.Body, 1, ""); err != nil {
			return "", fmt.Errorf("go: render %s: %w", m.Name, err)
		}
		body.WriteString("}\n")
	}
	var out strings.Builder
	out.WriteString("package main\n\n")
	if r.usedSync {
		out.WriteString("import \"sync\"\n\n")
	}
	out.WriteString(body.String())
	return out.String(), nil
}

type renderer struct {
	wgCount  int // file-unique WaitGroup names wg0, wg1, …
	usedSync bool
}

// block renders a node list at the given indent depth; wg is the
// innermost enclosing finish's WaitGroup name, "" outside any finish.
func (r *renderer) block(b *strings.Builder, block []*condensed.Node, depth int, wg string) error {
	ind := strings.Repeat("\t", depth)
	for _, n := range block {
		switch n.Kind {
		case condensed.End:
			// Implicit; never materialized.
		case condensed.Skip:
			b.WriteString(ind + "_ = 0\n")
		case condensed.Return:
			b.WriteString(ind + "return\n")
		case condensed.Advance:
			return fmt.Errorf("advance (clock barrier) is not expressible in the Go subset")
		case condensed.Call:
			fmt.Fprintf(b, "%s%s()\n", ind, n.Callee)
		case condensed.Async:
			if n.Clocked {
				return fmt.Errorf("clocked async is not expressible in the Go subset")
			}
			if n.Place != 0 {
				return fmt.Errorf("place-switching async is not expressible in the Go subset")
			}
			if wg == "" {
				b.WriteString(ind + "go func() {\n")
				if err := r.block(b, n.Body, depth+1, wg); err != nil {
					return err
				}
				b.WriteString(ind + "}()\n")
			} else {
				fmt.Fprintf(b, "%s%s.Go(func() {\n", ind, wg)
				if err := r.block(b, n.Body, depth+1, wg); err != nil {
					return err
				}
				b.WriteString(ind + "})\n")
			}
		case condensed.Finish:
			r.usedSync = true
			name := fmt.Sprintf("wg%d", r.wgCount)
			r.wgCount++
			fmt.Fprintf(b, "%svar %s sync.WaitGroup\n", ind, name)
			if err := r.block(b, n.Body, depth, name); err != nil {
				return err
			}
			fmt.Fprintf(b, "%s%s.Wait()\n", ind, name)
		case condensed.Loop:
			b.WriteString(ind + "for {\n")
			if err := r.block(b, n.Body, depth+1, wg); err != nil {
				return err
			}
			b.WriteString(ind + "}\n")
		case condensed.If:
			b.WriteString(ind + "if true {\n")
			if err := r.block(b, n.Body, depth+1, wg); err != nil {
				return err
			}
			if n.Else != nil {
				b.WriteString(ind + "} else {\n")
				if err := r.block(b, n.Else, depth+1, wg); err != nil {
					return err
				}
			}
			b.WriteString(ind + "}\n")
		case condensed.Switch:
			b.WriteString(ind + "switch 0 {\n")
			for i, cs := range n.Cases {
				fmt.Fprintf(b, "%scase %d:\n", ind, i)
				if err := r.block(b, cs, depth+1, wg); err != nil {
					return err
				}
			}
			b.WriteString(ind + "}\n")
		default:
			return fmt.Errorf("unknown node kind %v", n.Kind)
		}
	}
	return nil
}
