package gofront

import (
	"strings"
	"testing"

	"fx10/internal/condensed"
)

func lower(t *testing.T, src string) (*condensed.Unit, Stats) {
	t.Helper()
	u, st, err := Lower(src)
	if err != nil {
		t.Fatalf("Lower: %v", err)
	}
	return u, st
}

func method(t *testing.T, u *condensed.Unit, name string) *condensed.MethodDecl {
	t.Helper()
	for _, m := range u.Methods {
		if m.Name == name {
			return m
		}
	}
	t.Fatalf("no method %q", name)
	return nil
}

func kinds(nodes []*condensed.Node) []condensed.Kind {
	ks := make([]condensed.Kind, len(nodes))
	for i, n := range nodes {
		ks[i] = n.Kind
	}
	return ks
}

func hasDiag(st Stats, construct string) bool {
	for _, d := range st.Dropped {
		if strings.Contains(d.Construct, construct) {
			return true
		}
	}
	return false
}

func TestWaitGroupFanOut(t *testing.T) {
	u, st := lower(t, `package main

import "sync"

func work() {}

func main() {
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
	}
	wg.Wait()
}
`)
	main := method(t, u, "main")
	if len(main.Body) != 1 || main.Body[0].Kind != condensed.Finish {
		t.Fatalf("main = %v, want one finish", kinds(main.Body))
	}
	fin := main.Body[0]
	if len(fin.Body) != 1 || fin.Body[0].Kind != condensed.Loop {
		t.Fatalf("finish body = %v, want one loop", kinds(fin.Body))
	}
	loop := fin.Body[0]
	// wg.Add(1) is bookkeeping (no node); the go stmt is the async.
	if len(loop.Body) != 1 || loop.Body[0].Kind != condensed.Async {
		t.Fatalf("loop body = %v, want one async", kinds(loop.Body))
	}
	async := loop.Body[0]
	// defer wg.Done() is bookkeeping; work() is a call.
	if len(async.Body) != 1 || async.Body[0].Kind != condensed.Call || async.Body[0].Callee != "work" {
		t.Fatalf("async body = %v, want call work", kinds(async.Body))
	}
	if len(st.Dropped) != 0 {
		t.Fatalf("dropped %v, want none (coverage %v)", st.Dropped, st.Coverage())
	}
	if st.Coverage() != 1 {
		t.Fatalf("coverage %v, want 1", st.Coverage())
	}
}

func TestErrgroup(t *testing.T) {
	u, st := lower(t, `package main

import "golang.org/x/sync/errgroup"

func fetch() {}

func main() {
	var g errgroup.Group
	g.Go(func() {
		fetch()
	})
	g.Go(fetch)
	g.Wait()
}
`)
	main := method(t, u, "main")
	if len(main.Body) != 1 || main.Body[0].Kind != condensed.Finish {
		t.Fatalf("main = %v, want one finish", kinds(main.Body))
	}
	fin := main.Body[0]
	if len(fin.Body) != 2 || fin.Body[0].Kind != condensed.Async || fin.Body[1].Kind != condensed.Async {
		t.Fatalf("finish body = %v, want two asyncs", kinds(fin.Body))
	}
	// g.Go(fetch): fetch is declared and spawn-free, the call edge is kept.
	if got := fin.Body[1].Body; len(got) != 1 || got[0].Kind != condensed.Call || got[0].Callee != "fetch" {
		t.Fatalf("g.Go(fetch) body = %v, want call fetch", kinds(got))
	}
	if len(st.Dropped) != 0 {
		t.Fatalf("dropped %v, want none", st.Dropped)
	}
}

func TestWaitGroupGoMethod(t *testing.T) {
	// Go 1.25's sync.WaitGroup.Go tracks the spawn by construction.
	u, _ := lower(t, `package main

import "sync"

func work() {}

func main() {
	var wg sync.WaitGroup
	wg.Go(func() { work() })
	wg.Wait()
}
`)
	main := method(t, u, "main")
	if len(main.Body) != 1 || main.Body[0].Kind != condensed.Finish {
		t.Fatalf("main = %v, want one finish", kinds(main.Body))
	}
}

func TestUntrackedGoroutineNoFinish(t *testing.T) {
	// The bare `go work()` inside the span may outlive Wait: emitting a
	// finish would unsoundly prune pairs, so the span lowers scope-less
	// with a diagnostic.
	u, st := lower(t, `package main

import "sync"

func work() {}

func main() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	go work()
	wg.Wait()
}
`)
	main := method(t, u, "main")
	for _, n := range main.Body {
		if n.Kind == condensed.Finish {
			t.Fatalf("finish emitted over a span with an untracked goroutine: %v", kinds(main.Body))
		}
	}
	if !hasDiag(st, "untracked goroutine") {
		t.Fatalf("missing untracked-goroutine diagnostic: %v", st.Dropped)
	}
}

func TestGoroutineWithoutDoneNoFinish(t *testing.T) {
	_, st := lower(t, `package main

import "sync"

func main() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { _ = 0 }()
	wg.Wait()
}
`)
	if !hasDiag(st, "untracked goroutine") {
		t.Fatalf("a spawn without Done must degrade the span: %v", st.Dropped)
	}
}

func TestGroupGoOpaqueWhenCalleeSpawns(t *testing.T) {
	// wg.Go(f) waits for f itself, but a goroutine spawned inside f
	// escapes the Wait: the call edge must be dropped (opaque body),
	// while the finish itself stays (f's own exit is tracked).
	u, st := lower(t, `package main

import "sync"

func leaky() {
	go func() { _ = 0 }()
}

func main() {
	var wg sync.WaitGroup
	wg.Go(leaky)
	wg.Wait()
}
`)
	main := method(t, u, "main")
	if len(main.Body) != 1 || main.Body[0].Kind != condensed.Finish {
		t.Fatalf("main = %v, want one finish", kinds(main.Body))
	}
	async := main.Body[0].Body[0]
	if async.Kind != condensed.Async || len(async.Body) != 1 || async.Body[0].Kind != condensed.Skip {
		t.Fatalf("wg.Go(leaky) must lower opaquely, got %v", kinds(async.Body))
	}
	if !hasDiag(st, "opaque function value") {
		t.Fatalf("missing opaque-callee diagnostic: %v", st.Dropped)
	}
}

func TestNestedGroups(t *testing.T) {
	u, _ := lower(t, `package main

import "sync"

func main() {
	var outer sync.WaitGroup
	outer.Go(func() {
		var inner sync.WaitGroup
		inner.Go(func() { _ = 0 })
		inner.Wait()
	})
	outer.Wait()
}
`)
	main := method(t, u, "main")
	if len(main.Body) != 1 || main.Body[0].Kind != condensed.Finish {
		t.Fatalf("main = %v, want outer finish", kinds(main.Body))
	}
	async := main.Body[0].Body[0]
	if async.Kind != condensed.Async || len(async.Body) != 1 || async.Body[0].Kind != condensed.Finish {
		t.Fatalf("inner span must lower to a nested finish, got %v", kinds(async.Body))
	}
}

func TestWaitGroupWithoutWait(t *testing.T) {
	_, st := lower(t, `package main

import "sync"

func main() {
	var wg sync.WaitGroup
	wg.Add(1)
}
`)
	if !hasDiag(st, "without a same-block Wait") {
		t.Fatalf("missing no-Wait diagnostic: %v", st.Dropped)
	}
}

func TestSpawnForms(t *testing.T) {
	u, st := lower(t, `package main

func work() {}

func main() {
	go work()
	go func() { work() }()
	go undeclared()
	fns := []func(){work}
	go fns[0]()
}
`)
	main := method(t, u, "main")
	// The assignment lowers to a skip; the four spawns to asyncs.
	var asyncs []*condensed.Node
	for _, n := range main.Body {
		if n.Kind == condensed.Async {
			asyncs = append(asyncs, n)
		}
	}
	if len(asyncs) != 4 {
		t.Fatalf("asyncs = %d, want 4 (%v)", len(asyncs), kinds(main.Body))
	}
	if b := asyncs[0].Body; len(b) != 1 || b[0].Kind != condensed.Call || b[0].Callee != "work" {
		t.Fatalf("go work() body = %v", kinds(b))
	}
	// Opaque spawns carry a skip body (conservative summary).
	for i, a := range asyncs[2:] {
		if len(a.Body) != 1 || a.Body[0].Kind != condensed.Skip {
			t.Fatalf("opaque spawn %d body = %v, want skip", i, kinds(a.Body))
		}
	}
	if !hasDiag(st, "undeclared") || !hasDiag(st, "function value") {
		t.Fatalf("missing opaque-spawn diagnostics: %v", st.Dropped)
	}
}

func TestControlFlowAndDrops(t *testing.T) {
	u, st := lower(t, `package main

func main() {
	ch := make(chan int)
	if true {
		ch <- 1
	} else {
		<-ch
	}
	select {
	case v := <-ch:
		_ = v
	default:
	}
	switch 0 {
	case 0:
		return
	}
	for range [2]int{} {
		_ = 0
	}
}
`)
	main := method(t, u, "main")
	var sawIf, sawSwitch, sawLoop int
	for _, n := range main.Body {
		switch n.Kind {
		case condensed.If:
			sawIf++
		case condensed.Switch:
			sawSwitch++
		case condensed.Loop:
			sawLoop++
		}
	}
	if sawIf != 1 || sawSwitch != 2 || sawLoop != 1 {
		t.Fatalf("if=%d switch=%d loop=%d, want 1/2/1 (%v)", sawIf, sawSwitch, sawLoop, kinds(main.Body))
	}
	for _, c := range []string{"channel send", "select"} {
		if !hasDiag(st, c) {
			t.Fatalf("missing %q diagnostic: %v", c, st.Dropped)
		}
	}
	if st.Coverage() >= 1 {
		t.Fatalf("coverage %v, want < 1 with drops", st.Coverage())
	}
}

func TestErrors(t *testing.T) {
	if _, _, err := Lower("package main\n"); err == nil {
		t.Fatal("empty package accepted")
	}
	if _, _, err := Lower("package main\nfunc helper() {}\n"); err == nil {
		t.Fatal("package without main accepted")
	}
	if _, _, err := Lower("not go at all"); err == nil {
		t.Fatal("unparsable source accepted")
	}
}

func TestReceiverMethodsDiagnosed(t *testing.T) {
	_, st := lower(t, `package main

type T struct{}

func (T) M() {}

func main() {}
`)
	if !hasDiag(st, "method with receiver") {
		t.Fatalf("missing receiver-method diagnostic: %v", st.Dropped)
	}
}

func TestSpawnFree(t *testing.T) {
	src := `package main

import "sync"

func leaf() {}
func callsLeaf() { leaf() }
func spawns() { go leaf() }
func callsSpawns() { spawns() }
func cycleA() { cycleB() }
func cycleB() { cycleA() }

func main() {
	var wg sync.WaitGroup
	wg.Go(callsLeaf)
	wg.Go(cycleA)
	wg.Go(callsSpawns)
	wg.Wait()
}
`
	u, st := lower(t, src)
	fin := method(t, u, "main").Body[0]
	if fin.Kind != condensed.Finish || len(fin.Body) != 3 {
		t.Fatalf("main = %v", kinds(method(t, u, "main").Body))
	}
	// callsLeaf and the spawn-free cycle keep their call edges.
	for i, want := range []string{"callsLeaf", "cycleA"} {
		b := fin.Body[i].Body
		if len(b) != 1 || b[0].Kind != condensed.Call || b[0].Callee != want {
			t.Fatalf("wg.Go(%s) body = %v", want, kinds(b))
		}
	}
	// callsSpawns transitively spawns: opaque.
	if b := fin.Body[2].Body; len(b) != 1 || b[0].Kind != condensed.Skip {
		t.Fatalf("wg.Go(callsSpawns) body = %v, want skip", kinds(b))
	}
	if !hasDiag(st, "opaque function value") {
		t.Fatalf("missing diagnostic for spawning callee: %v", st.Dropped)
	}
}
