// Package gofront is the real-Go front end: it lowers a restricted
// Go subset onto the paper's condensed form using the stdlib
// go/parser and go/ast, so the MHP analysis can run on real-shaped
// goroutine programs instead of only the X10 corpus.
//
// The substitution table (see DESIGN.md "Front ends"):
//
//   - `go func(){…}()` and `go f()` (f a top-level func) → async;
//   - `var wg sync.WaitGroup` … `wg.Wait()` in the same block →
//     finish over the statements in between, but only when every
//     goroutine transitively spawned in that span provably registers
//     with wg (`defer wg.Done()` / trailing `wg.Done()`), so the
//     join edge claimed by finish really exists; `var g
//     errgroup.Group` … `g.Wait()` with `g.Go(func(){…})` spawns is
//     recognized the same way (errgroup tracks its own counter);
//   - `wg.Add(n)`, `wg.Done()`, `defer wg.Done()` for an active
//     group are bookkeeping of the encoding and lower to nothing;
//   - top-level `func f() {…}` → method, `f()` statements → call;
//   - for/range → loop, if/else → if, switch/type-switch/select →
//     switch, return → return;
//   - everything else — channel operations, locks, calls through
//     values, library calls — lowers to skip and is recorded in
//     Stats.Dropped, the conservative-summary fallback of Might &
//     Van Horn: constructs outside the modeled subset carry no
//     labels of this unit, so widening them to skip never removes a
//     may-happen-in-parallel pair, it only forgoes precision.
//
// The one trap is the other direction: claiming a finish that Go
// does not guarantee would *prune* pairs unsoundly. That is why a
// WaitGroup span with any untracked goroutine (a bare `go` without
// `Done`, a spawn through a function value) degrades to no finish at
// all, with a diagnostic, rather than to a finish with holes.
package gofront

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"strings"

	"fx10/internal/condensed"
)

// Diagnostic records one construct lowered conservatively.
type Diagnostic struct {
	Line      int    // 1-based source line
	Construct string // e.g. "channel send", "library call"
	Detail    string // e.g. the callee name
}

func (d Diagnostic) String() string {
	s := d.Construct
	if d.Detail != "" {
		s += " " + d.Detail
	}
	if d.Line > 0 {
		s = fmt.Sprintf("line %d: %s", d.Line, s)
	}
	return s
}

// Stats summarizes one lowering.
type Stats struct {
	LOC     int // non-blank source lines
	Stmts   int // statements visited
	Dropped []Diagnostic
}

// Coverage is the fraction of visited statements lowered faithfully.
func (s Stats) Coverage() float64 {
	if s.Stmts == 0 {
		return 1
	}
	return 1 - float64(len(s.Dropped))/float64(s.Stmts)
}

const (
	kindWaitGroup = "WaitGroup"
	kindErrGroup  = "errgroup"
)

// Lower parses Go source and lowers it to a condensed unit.
func Lower(src string) (*condensed.Unit, Stats, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "input.go", src, parser.SkipObjectResolution)
	if err != nil {
		return nil, Stats{}, fmt.Errorf("go: %w", err)
	}
	l := &lowerer{fset: fset, declared: map[string]bool{}, bodies: map[string]*ast.FuncDecl{}}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Recv == nil && fd.Body != nil {
			l.declared[fd.Name.Name] = true
			l.bodies[fd.Name.Name] = fd
		}
	}
	unit := &condensed.Unit{}
	for _, d := range f.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok {
			continue // imports, types, package vars: data, not control
		}
		switch {
		case fd.Recv != nil:
			l.drop(fd, "method with receiver", fd.Name.Name)
		case fd.Body == nil:
			l.drop(fd, "function without body", fd.Name.Name)
		default:
			unit.Methods = append(unit.Methods, &condensed.MethodDecl{
				Name: fd.Name.Name,
				Body: l.block(fd.Body.List),
			})
		}
	}
	if len(unit.Methods) == 0 {
		return nil, Stats{}, fmt.Errorf("go: no lowerable top-level functions")
	}
	if !l.declared["main"] {
		return nil, Stats{}, fmt.Errorf("go: no main function (the analysis entry point)")
	}
	l.stats.LOC = countLOC(src)
	return unit, l.stats, nil
}

func countLOC(src string) int {
	n := 0
	for _, line := range strings.Split(src, "\n") {
		if strings.TrimSpace(line) != "" {
			n++
		}
	}
	return n
}

// group is one active WaitGroup/errgroup finish scope.
type group struct {
	name string
	kind string // kindWaitGroup or kindErrGroup
}

type lowerer struct {
	fset     *token.FileSet
	declared map[string]bool          // top-level funcs lowerable as methods
	bodies   map[string]*ast.FuncDecl // their declarations, for spawn-freedom checks
	groups   []group                  // active finish scopes, innermost last
	stats    Stats
}

func (l *lowerer) drop(n ast.Node, construct, detail string) {
	line := 0
	if n != nil {
		line = l.fset.Position(n.Pos()).Line
	}
	l.stats.Dropped = append(l.stats.Dropped, Diagnostic{Line: line, Construct: construct, Detail: detail})
}

// active returns the innermost active group with the given variable
// name, or nil.
func (l *lowerer) active(name string) *group {
	for i := len(l.groups) - 1; i >= 0; i-- {
		if l.groups[i].name == name {
			return &l.groups[i]
		}
	}
	return nil
}

// block lowers a statement list, recognizing `var wg sync.WaitGroup`
// … `wg.Wait()` spans (and the errgroup analogue) as finish.
func (l *lowerer) block(stmts []ast.Stmt) []*condensed.Node {
	var out []*condensed.Node
	for i := 0; i < len(stmts); i++ {
		s := stmts[i]
		if name, kind, ok := syncGroupDecl(s); ok {
			l.stats.Stmts++ // the declaration
			j := findWait(stmts, i+1, name)
			if j < 0 {
				l.drop(s, kind+" without a same-block Wait", name)
				continue
			}
			if !l.joined(stmts[i+1:j], name, kind) {
				// A goroutine in the span may outlive Wait; a finish
				// here would prune pairs that can really happen.
				l.drop(s, kind+" span with an untracked goroutine", name)
				continue
			}
			l.groups = append(l.groups, group{name: name, kind: kind})
			body := l.block(stmts[i+1 : j])
			l.groups = l.groups[:len(l.groups)-1]
			l.stats.Stmts++ // the Wait
			out = append(out, &condensed.Node{Kind: condensed.Finish, Body: body})
			i = j
			continue
		}
		out = append(out, l.stmt(s)...)
	}
	return out
}

// stmt lowers one statement to zero or more condensed nodes.
func (l *lowerer) stmt(s ast.Stmt) []*condensed.Node {
	l.stats.Stmts++
	switch s := s.(type) {
	case *ast.GoStmt:
		return []*condensed.Node{l.spawn(s, s.Call)}
	case *ast.ExprStmt:
		return l.exprStmt(s)
	case *ast.ReturnStmt:
		return []*condensed.Node{{Kind: condensed.Return}}
	case *ast.ForStmt:
		return []*condensed.Node{{Kind: condensed.Loop, Body: l.block(s.Body.List)}}
	case *ast.RangeStmt:
		return []*condensed.Node{{Kind: condensed.Loop, Body: l.block(s.Body.List)}}
	case *ast.IfStmt:
		node := &condensed.Node{Kind: condensed.If, Body: l.block(s.Body.List)}
		switch e := s.Else.(type) {
		case *ast.BlockStmt:
			node.Else = l.block(e.List)
		case *ast.IfStmt:
			node.Else = l.stmt(e)
		}
		return []*condensed.Node{node}
	case *ast.SwitchStmt:
		return []*condensed.Node{l.switchNode(s.Body)}
	case *ast.TypeSwitchStmt:
		return []*condensed.Node{l.switchNode(s.Body)}
	case *ast.SelectStmt:
		// Branches are kept (each comm clause is a case); the blocking
		// channel rendezvous itself is ordering we drop conservatively.
		l.drop(s, "select", "")
		return []*condensed.Node{l.switchNode(s.Body)}
	case *ast.BlockStmt:
		return l.block(s.List)
	case *ast.LabeledStmt:
		return l.stmt(s.Stmt)
	case *ast.DeferStmt:
		if recv, sel, ok := selectorCall(s.Call); ok && sel == "Done" && l.active(recv) != nil {
			return nil // finish-encoding bookkeeping
		}
		l.drop(s, "defer", "")
		return skipNode()
	case *ast.SendStmt:
		l.drop(s, "channel send", "")
		return skipNode()
	case *ast.AssignStmt:
		l.assignDiag(s)
		return skipNode()
	case *ast.IncDecStmt, *ast.DeclStmt, *ast.EmptyStmt:
		return skipNode() // value-level: compute statements are skips
	case *ast.BranchStmt:
		if s.Tok == token.GOTO {
			l.drop(s, "goto", "")
		}
		// break/continue: intra-loop control flow the value-insensitive
		// analysis already over-approximates.
		return skipNode()
	default:
		l.drop(s, fmt.Sprintf("%T", s), "")
		return skipNode()
	}
}

// assignDiag flags the parts of an assignment that hide constructs we
// drop: channel receives and calls in expression position (whose
// callee's asyncs we will not see at this call site).
func (l *lowerer) assignDiag(s *ast.AssignStmt) {
	for _, rhs := range s.Rhs {
		switch e := rhs.(type) {
		case *ast.UnaryExpr:
			if e.Op == token.ARROW {
				l.drop(s, "channel receive", "")
			}
		case *ast.CallExpr:
			if id, ok := e.Fun.(*ast.Ident); ok && l.declared[id.Name] {
				l.drop(s, "call in expression position", id.Name)
			}
		}
	}
}

// spawn lowers a `go` statement (or an errgroup Go argument) to an
// async node.
func (l *lowerer) spawn(s ast.Node, call *ast.CallExpr) *condensed.Node {
	switch fun := call.Fun.(type) {
	case *ast.FuncLit:
		return &condensed.Node{Kind: condensed.Async, Body: l.block(fun.Body.List)}
	case *ast.Ident:
		if l.declared[fun.Name] {
			return &condensed.Node{Kind: condensed.Async, Body: []*condensed.Node{{Kind: condensed.Call, Callee: fun.Name}}}
		}
		l.drop(s, "spawn of an undeclared function", fun.Name)
	default:
		l.drop(s, "spawn through a function value", "")
	}
	// The callee is opaque: its code carries no labels of this unit,
	// so a skip body is the sound conservative summary.
	return &condensed.Node{Kind: condensed.Async, Body: []*condensed.Node{{Kind: condensed.Skip}}}
}

func (l *lowerer) exprStmt(s *ast.ExprStmt) []*condensed.Node {
	call, ok := s.X.(*ast.CallExpr)
	if !ok {
		return skipNode() // a bare expression: compute
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if l.declared[fun.Name] {
			return []*condensed.Node{{Kind: condensed.Call, Callee: fun.Name}}
		}
		l.drop(s, "library call", fun.Name)
		return skipNode()
	case *ast.SelectorExpr:
		if recv, ok := fun.X.(*ast.Ident); ok {
			if g := l.active(recv.Name); g != nil {
				switch fun.Sel.Name {
				case "Add", "Done":
					return nil // finish-encoding bookkeeping
				case "Go":
					// errgroup.Group.Go, and sync.WaitGroup.Go (Go
					// 1.25+): a spawn the group tracks by construction.
					return []*condensed.Node{l.groupGo(s, call)}
				case "Wait":
					// A Wait the scope scan did not consume (a second
					// Wait, or one inside a nested block): a join we
					// cannot prove structured.
					l.drop(s, "unstructured Wait", recv.Name)
					return skipNode()
				}
			}
			l.drop(s, "library call", recv.Name+"."+fun.Sel.Name)
			return skipNode()
		}
		l.drop(s, "library call", fun.Sel.Name)
		return skipNode()
	default:
		l.drop(s, "indirect call", "")
		return skipNode()
	}
}

// groupGo lowers `g.Go(fn)` for an active group g (errgroup.Group,
// or sync.WaitGroup on Go 1.25+): a spawn whose join the group
// tracks by construction.
func (l *lowerer) groupGo(s ast.Stmt, call *ast.CallExpr) *condensed.Node {
	if len(call.Args) == 1 {
		switch arg := call.Args[0].(type) {
		case *ast.FuncLit:
			return &condensed.Node{Kind: condensed.Async, Body: l.block(arg.Body.List)}
		case *ast.Ident:
			// g.Go(f) for a declared f: the group tracks f's own exit
			// by construction, but a goroutine spawned *inside* f would
			// escape the Wait, so the call edge is kept only when f is
			// transitively spawn-free.
			if l.declared[arg.Name] && l.spawnFree(arg.Name, map[string]bool{}) {
				return &condensed.Node{Kind: condensed.Async, Body: []*condensed.Node{{Kind: condensed.Call, Callee: arg.Name}}}
			}
		}
	}
	l.drop(s, "Go with an opaque function value", "")
	return &condensed.Node{Kind: condensed.Async, Body: []*condensed.Node{{Kind: condensed.Skip}}}
}

// spawnFree reports whether the named declared function, and every
// declared function it calls, transitively contains no goroutine
// spawn (`go` statement or a .Go method call). Spawn-free callees can
// keep their call edge inside a finish span: nothing in them can
// outlive the group's Wait.
func (l *lowerer) spawnFree(name string, visited map[string]bool) bool {
	if visited[name] {
		return true // a cycle introduces no spawn by itself
	}
	visited[name] = true
	fd := l.bodies[name]
	if fd == nil {
		return false
	}
	free := true
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if !free {
			return false
		}
		switch n := n.(type) {
		case *ast.GoStmt:
			free = false
		case *ast.CallExpr:
			switch fun := n.Fun.(type) {
			case *ast.Ident:
				if l.declared[fun.Name] && !l.spawnFree(fun.Name, visited) {
					free = false
				}
			case *ast.SelectorExpr:
				if fun.Sel.Name == "Go" {
					free = false
				}
			}
		}
		return free
	})
	return free
}

func (l *lowerer) switchNode(body *ast.BlockStmt) *condensed.Node {
	node := &condensed.Node{Kind: condensed.Switch}
	for _, c := range body.List {
		switch c := c.(type) {
		case *ast.CaseClause:
			node.Cases = append(node.Cases, l.block(c.Body))
		case *ast.CommClause:
			node.Cases = append(node.Cases, l.block(c.Body))
		}
	}
	return node
}

func skipNode() []*condensed.Node {
	return []*condensed.Node{{Kind: condensed.Skip}}
}

// joined reports whether every goroutine transitively spawned in the
// span is provably awaited by the group g before its Wait: tracked
// `go func(){… g.Done() / defer g.Done() …}()` spawns, errgroup
// `g.Go(func(){…})` spawns, or spawns inside a nested well-formed
// group span of their own. Anything else — a bare go, a spawn
// through a value, a named-function spawn whose body we do not
// inspect — may outlive Wait, so the caller must not emit a finish.
func (l *lowerer) joined(stmts []ast.Stmt, name, kind string) bool {
	for i := 0; i < len(stmts); i++ {
		s := stmts[i]
		if inner, innerKind, ok := syncGroupDecl(s); ok {
			if j := findWait(stmts, i+1, inner); j >= 0 && l.joined(stmts[i+1:j], inner, innerKind) {
				i = j // a well-formed sub-span joins everything inside it
				continue
			}
			continue // inert declaration; spawns inside are checked below
		}
		if !l.joinedStmt(s, name, kind) {
			return false
		}
	}
	return true
}

func (l *lowerer) joinedStmt(s ast.Stmt, name, kind string) bool {
	switch s := s.(type) {
	case *ast.GoStmt:
		if kind != kindWaitGroup {
			return false // errgroup has no Done: a bare go escapes Wait
		}
		lit, ok := s.Call.Fun.(*ast.FuncLit)
		if !ok {
			return false // go f(): cannot prove f registers with the group
		}
		return hasDoneFor(lit.Body.List, name) && l.joined(lit.Body.List, name, kind)
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if recv, sel, ok := selectorCall(call); ok && recv == name && sel == "Go" {
				// g.Go registers the spawn with the group by
				// construction; its body's own spawns must still join.
				if len(call.Args) == 1 {
					if lit, ok := call.Args[0].(*ast.FuncLit); ok {
						return l.joined(lit.Body.List, name, kind)
					}
				}
				// g.Go(f): f's own exit is tracked. groupGo keeps the
				// call edge only for spawn-free f and otherwise lowers
				// f opaquely (no unit labels inside the span), so
				// neither case can hide an unjoined labeled statement.
				return true
			}
		}
		return true
	case *ast.BlockStmt:
		return l.joined(s.List, name, kind)
	case *ast.IfStmt:
		if !l.joined(s.Body.List, name, kind) {
			return false
		}
		if s.Else != nil {
			return l.joinedStmt(s.Else, name, kind)
		}
		return true
	case *ast.ForStmt:
		return l.joined(s.Body.List, name, kind)
	case *ast.RangeStmt:
		return l.joined(s.Body.List, name, kind)
	case *ast.SwitchStmt:
		return l.joined(s.Body.List, name, kind)
	case *ast.TypeSwitchStmt:
		return l.joined(s.Body.List, name, kind)
	case *ast.SelectStmt:
		return l.joined(s.Body.List, name, kind)
	case *ast.CaseClause:
		return l.joined(s.Body, name, kind)
	case *ast.CommClause:
		return l.joined(s.Body, name, kind)
	case *ast.LabeledStmt:
		return l.joinedStmt(s.Stmt, name, kind)
	default:
		return true // no nested statements, no spawn
	}
}

// hasDoneFor reports whether a goroutine body registers its exit with
// the group: `defer name.Done()` anywhere at the top level, or a
// trailing `name.Done()` statement.
func hasDoneFor(stmts []ast.Stmt, name string) bool {
	for _, s := range stmts {
		if d, ok := s.(*ast.DeferStmt); ok {
			if recv, sel, ok := selectorCall(d.Call); ok && recv == name && sel == "Done" {
				return true
			}
		}
	}
	if len(stmts) > 0 {
		if e, ok := stmts[len(stmts)-1].(*ast.ExprStmt); ok {
			if call, ok := e.X.(*ast.CallExpr); ok {
				if recv, sel, ok := selectorCall(call); ok && recv == name && sel == "Done" {
					return true
				}
			}
		}
	}
	return false
}

// syncGroupDecl matches `var wg sync.WaitGroup` / `var g
// errgroup.Group` (single name, no initializer).
func syncGroupDecl(s ast.Stmt) (name, kind string, ok bool) {
	ds, isDecl := s.(*ast.DeclStmt)
	if !isDecl {
		return "", "", false
	}
	gd, isGen := ds.Decl.(*ast.GenDecl)
	if !isGen || gd.Tok != token.VAR || len(gd.Specs) != 1 {
		return "", "", false
	}
	vs, isVal := gd.Specs[0].(*ast.ValueSpec)
	if !isVal || len(vs.Names) != 1 || len(vs.Values) != 0 {
		return "", "", false
	}
	sel, isSel := vs.Type.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	pkg, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	switch {
	case pkg.Name == "sync" && sel.Sel.Name == "WaitGroup":
		return vs.Names[0].Name, kindWaitGroup, true
	case pkg.Name == "errgroup" && sel.Sel.Name == "Group":
		return vs.Names[0].Name, kindErrGroup, true
	}
	return "", "", false
}

// findWait returns the index ≥ from of the first same-block
// `name.Wait()` statement (bare or in a single-value assignment like
// `err := g.Wait()`), or -1.
func findWait(stmts []ast.Stmt, from int, name string) int {
	for j := from; j < len(stmts); j++ {
		switch s := stmts[j].(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if recv, sel, ok := selectorCall(call); ok && recv == name && sel == "Wait" {
					return j
				}
			}
		case *ast.AssignStmt:
			if len(s.Rhs) == 1 {
				if call, ok := s.Rhs[0].(*ast.CallExpr); ok {
					if recv, sel, ok := selectorCall(call); ok && recv == name && sel == "Wait" {
						return j
					}
				}
			}
		}
	}
	return -1
}

// selectorCall matches a call of the form recv.sel(...) with recv a
// plain identifier.
func selectorCall(call *ast.CallExpr) (recv, sel string, ok bool) {
	f, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	id, isIdent := f.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	return id.Name, f.Sel.Name, true
}
