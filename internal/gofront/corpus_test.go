package gofront

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"fx10/internal/condensed"
	"fx10/internal/constraints"
	"fx10/internal/intset"
	"fx10/internal/mhp"
	"fx10/internal/syntax"

	fxruntime "fx10/internal/runtime"
)

// TestGoProgramsCorpus is the committed-corpus acceptance check: every
// file under testdata/goprograms lowers through the front end, the
// static analysis runs, and the runtime observer's pairs are contained
// in the static relation (observed ⊆ static) across several seeds.
// CI runs this under -race.
func TestGoProgramsCorpus(t *testing.T) {
	dir := "../../testdata/goprograms"
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range entries {
		if filepath.Ext(e.Name()) != ".go" {
			continue
		}
		n++
		t.Run(e.Name(), func(t *testing.T) {
			data, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			u, st, err := Lower(string(data))
			if err != nil {
				t.Fatalf("Lower: %v", err)
			}
			if c := st.Coverage(); c < 0 || c > 1 {
				t.Fatalf("coverage out of range: %v", c)
			}
			p, err := condensed.Lower(u)
			if err != nil {
				t.Fatalf("condensed.Lower: %v", err)
			}
			res := mhp.MustAnalyze(p, constraints.ContextSensitive)

			observed := intset.NewPairs(p.NumLabels())
			for seed := int64(0); seed < 4; seed++ {
				out, err := fxruntime.Run(p, nil, fxruntime.Options{
					RecordParallel: true,
					Seed:           seed,
					MaxSteps:       200_000,
				})
				if err != nil && !errors.Is(err, fxruntime.ErrFuelExhausted) {
					t.Fatalf("seed %d: %v", seed, err)
				}
				observed.UnionWith(out.Observed)
			}
			if !observed.SubsetOf(res.M) {
				bad := ""
				observed.Each(func(i, j int) {
					if bad == "" && !res.M.Has(i, j) {
						bad = "(" + p.LabelName(syntax.Label(i)) + ", " + p.LabelName(syntax.Label(j)) + ")"
					}
				})
				t.Fatalf("observed pair %s missing from static M", bad)
			}
		})
	}
	if n < 10 {
		t.Fatalf("corpus has only %d Go files, want ≥ 10", n)
	}
}

// TestGoProgramsCorpusExpectations pins per-file structural facts so
// a regressing front end cannot silently trivialize the corpus.
func TestGoProgramsCorpusExpectations(t *testing.T) {
	dir := "../../testdata/goprograms"
	want := map[string]struct {
		finishes, asyncs int
		diagnostic       string // "" = must be drop-free
	}{
		"fanout.go":       {finishes: 1, asyncs: 1},
		"workerpool.go":   {finishes: 1, asyncs: 1, diagnostic: "channel send"},
		"nested.go":       {finishes: 2, asyncs: 2},
		"errgroup.go":     {finishes: 1, asyncs: 2},
		"mixed.go":        {finishes: 1, asyncs: 2},
		"leaky.go":        {finishes: 0, asyncs: 2, diagnostic: "untracked goroutine"},
		"fanin.go":        {finishes: 1, asyncs: 1, diagnostic: "channel send"},
		"earlyreturn.go":  {finishes: 1, asyncs: 2},
		"deepspans.go":    {finishes: 2, asyncs: 2},
		"untrackedmix.go": {finishes: 0, asyncs: 3, diagnostic: "untracked goroutine"},
	}
	for name, w := range want {
		t.Run(name, func(t *testing.T) {
			data, err := os.ReadFile(filepath.Join(dir, name))
			if err != nil {
				t.Fatal(err)
			}
			u, st, err := Lower(string(data))
			if err != nil {
				t.Fatalf("Lower: %v", err)
			}
			c := u.NodeCounts()
			if c.Of(condensed.Finish) != w.finishes || c.Of(condensed.Async) != w.asyncs {
				t.Fatalf("finish/async = %d/%d, want %d/%d",
					c.Of(condensed.Finish), c.Of(condensed.Async), w.finishes, w.asyncs)
			}
			if w.diagnostic == "" {
				if len(st.Dropped) != 0 {
					t.Fatalf("unexpected drops: %v", st.Dropped)
				}
			} else if !hasDiag(st, w.diagnostic) {
				t.Fatalf("missing %q diagnostic: %v", w.diagnostic, st.Dropped)
			}
		})
	}
}
