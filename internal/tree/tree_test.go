package tree

import (
	"strings"
	"testing"

	"fx10/internal/syntax"
)

func prog(t *testing.T) (*syntax.Program, *syntax.Stmt, *syntax.Stmt) {
	t.Helper()
	b := syntax.NewBuilder(2)
	s1 := b.Stmts(b.Skip("X"), b.Skip("Y"))
	s2 := b.Stmts(b.Skip("Z"))
	b.MustAddMethod("main", syntax.Seq(s1, s2))
	p, err := b.Program()
	if err != nil {
		t.Fatalf("Program: %v", err)
	}
	return p, s1, s2
}

func TestDone(t *testing.T) {
	if !Done.Done() {
		t.Fatalf("Done.Done() = false")
	}
	_, s1, _ := prog(t)
	for _, tr := range []Tree{NewLeaf(s1), &Fin{L: Done, R: Done}, &Par{L: Done, R: Done}} {
		if tr.Done() {
			t.Fatalf("%T should not be done", tr)
		}
	}
}

func TestSizeAndLeaves(t *testing.T) {
	_, s1, s2 := prog(t)
	tr := &Fin{L: &Par{L: NewLeaf(s1), R: Done}, R: NewLeaf(s2)}
	if got := Size(tr); got != 5 {
		t.Fatalf("Size = %d, want 5", got)
	}
	lv := Leaves(tr)
	if len(lv) != 2 || lv[0].S != s1 || lv[1].S != s2 {
		t.Fatalf("Leaves wrong: %v", lv)
	}
}

func TestString(t *testing.T) {
	p, s1, s2 := prog(t)
	tr := &Par{L: &Fin{L: NewLeaf(s1), R: Done}, R: NewLeaf(s2)}
	got := String(p, tr)
	want := "((<X Y> >> OK) || <Z>)"
	if got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}

func TestStringPlace(t *testing.T) {
	p, s1, _ := prog(t)
	got := String(p, &Leaf{S: s1, Place: 3})
	if !strings.Contains(got, "@3") {
		t.Fatalf("String of placed leaf = %q, want @3 marker", got)
	}
}

func TestKeyDistinguishes(t *testing.T) {
	_, s1, s2 := prog(t)
	cases := []Tree{
		Done,
		NewLeaf(s1),
		NewLeaf(s2),
		&Leaf{S: s1, Place: 1},
		&Fin{L: NewLeaf(s1), R: NewLeaf(s2)},
		&Fin{L: NewLeaf(s2), R: NewLeaf(s1)},
		&Par{L: NewLeaf(s1), R: NewLeaf(s2)},
		&Par{L: NewLeaf(s2), R: NewLeaf(s1)},
		&Par{L: Done, R: NewLeaf(s1)},
	}
	seen := map[string]int{}
	for i, tr := range cases {
		k := Key(tr)
		if j, dup := seen[k]; dup {
			t.Fatalf("trees %d and %d share key %q", i, j, k)
		}
		seen[k] = i
	}
}

func TestKeyEqualForEqualTrees(t *testing.T) {
	_, s1, s2 := prog(t)
	a := &Par{L: NewLeaf(s1), R: &Fin{L: Done, R: NewLeaf(s2)}}
	b := &Par{L: NewLeaf(s1), R: &Fin{L: Done, R: NewLeaf(s2)}}
	if Key(a) != Key(b) {
		t.Fatalf("structurally equal trees have different keys")
	}
}

func TestKeySeqSpineSensitive(t *testing.T) {
	// Keys must reflect the full instruction spine, not just the head:
	// ⟨X Y⟩ and ⟨X⟩ differ.
	b := syntax.NewBuilder(2)
	x := b.Skip("x")
	y := b.Skip("y")
	long := b.Stmts(x, y)
	short := b.Stmts(x)
	_ = y
	if Key(NewLeaf(long)) == Key(NewLeaf(short)) {
		t.Fatalf("keys ignore statement tails")
	}
}
