// Package tree defines the execution trees of the FX10 operational
// semantics:
//
//	T ::= √ | ⟨s⟩ | T1 ▷ T2 | T1 ∥ T2
//
// √ (Done) is a completed computation; ⟨s⟩ (a Leaf) is a statement
// running; T1 ▷ T2 (Fin) requires T1 to complete before T2 may
// proceed, and is introduced by finish; T1 ∥ T2 (Par) interleaves its
// subtrees and is introduced by async.
//
// Trees are immutable values; the machine produces new trees sharing
// unchanged subtrees.
package tree

import (
	"fmt"
	"strings"

	"fx10/internal/syntax"
)

// Tree is an FX10 execution tree.
type Tree interface {
	isTree()
	// Done reports whether the tree is √ (no subcomputation remains).
	// Only the Done node itself is "done"; a tree like √ ∥ √ still
	// needs steps to collapse, matching the paper's semantics.
	Done() bool
}

// DoneT is √, the completed computation.
type DoneT struct{}

// Leaf is ⟨s⟩: the statement s running. Place is the place the
// activity runs at in the Section 8 places extension (0 for core
// FX10, where all code runs at the same place).
type Leaf struct {
	S     *syntax.Stmt
	Place int
}

// Fin is T1 ▷ T2: T1 must complete execution before T2 proceeds.
type Fin struct {
	L, R Tree
}

// Par is T1 ∥ T2: interleaved parallel execution of T1 and T2.
type Par struct {
	L, R Tree
}

func (DoneT) isTree() {}
func (*Leaf) isTree() {}
func (*Fin) isTree()  {}
func (*Par) isTree()  {}

func (DoneT) Done() bool { return true }
func (*Leaf) Done() bool { return false }
func (*Fin) Done() bool  { return false }
func (*Par) Done() bool  { return false }

// Done is the canonical √ value.
var Done Tree = DoneT{}

// NewLeaf returns ⟨s⟩ at place 0.
func NewLeaf(s *syntax.Stmt) Tree { return &Leaf{S: s} }

// Size returns the number of nodes in the tree.
func Size(t Tree) int {
	switch t := t.(type) {
	case DoneT:
		return 1
	case *Leaf:
		return 1
	case *Fin:
		return 1 + Size(t.L) + Size(t.R)
	case *Par:
		return 1 + Size(t.L) + Size(t.R)
	}
	panic(fmt.Sprintf("tree: unknown tree %T", t))
}

// Leaves returns the ⟨s⟩ leaves of the tree in left-to-right order.
func Leaves(t Tree) []*Leaf {
	var out []*Leaf
	var walk func(Tree)
	walk = func(t Tree) {
		switch t := t.(type) {
		case *Leaf:
			out = append(out, t)
		case *Fin:
			walk(t.L)
			walk(t.R)
		case *Par:
			walk(t.L)
			walk(t.R)
		}
	}
	walk(t)
	return out
}

// String renders the tree with ∥ and ▷ spelled "||" and ">>", leaves
// as "<first-label…>" and √ as "OK".
func String(p *syntax.Program, t Tree) string {
	var b strings.Builder
	writeTree(&b, p, t)
	return b.String()
}

func writeTree(b *strings.Builder, p *syntax.Program, t Tree) {
	switch t := t.(type) {
	case DoneT:
		b.WriteString("OK")
	case *Leaf:
		b.WriteByte('<')
		first := true
		t.S.Each(func(i syntax.Instr) {
			if !first {
				b.WriteByte(' ')
			}
			first = false
			b.WriteString(p.LabelName(i.Label()))
		})
		if t.Place != 0 {
			fmt.Fprintf(b, "@%d", t.Place)
		}
		b.WriteByte('>')
	case *Fin:
		b.WriteByte('(')
		writeTree(b, p, t.L)
		b.WriteString(" >> ")
		writeTree(b, p, t.R)
		b.WriteByte(')')
	case *Par:
		b.WriteByte('(')
		writeTree(b, p, t.L)
		b.WriteString(" || ")
		writeTree(b, p, t.R)
		b.WriteByte(')')
	}
}

// Key returns a canonical string identity for the tree, used by the
// exhaustive explorer to deduplicate states. Two trees have equal keys
// iff they are structurally identical with identical statement spines
// (instruction labels in sequence).
func Key(t Tree) string {
	var b strings.Builder
	writeKey(&b, t)
	return b.String()
}

func writeKey(b *strings.Builder, t Tree) {
	switch t := t.(type) {
	case DoneT:
		b.WriteByte('D')
	case *Leaf:
		b.WriteByte('<')
		for cur := t.S; cur != nil; cur = cur.Next {
			fmt.Fprintf(b, "%d,", int(cur.Instr.Label()))
		}
		if t.Place != 0 {
			fmt.Fprintf(b, "@%d", t.Place)
		}
		b.WriteByte('>')
	case *Fin:
		b.WriteByte('F')
		b.WriteByte('(')
		writeKey(b, t.L)
		b.WriteByte(',')
		writeKey(b, t.R)
		b.WriteByte(')')
	case *Par:
		b.WriteByte('P')
		b.WriteByte('(')
		writeKey(b, t.L)
		b.WriteByte(',')
		writeKey(b, t.R)
		b.WriteByte(')')
	}
}
