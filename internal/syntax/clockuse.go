package syntax

import "fmt"

// Static clock-use checking (Section 8 clocks extension). Validate
// deliberately does not enforce this: a next inside an unclocked
// async is a well-formed program with defined dynamic semantics (the
// interpreter raises ErrUnclockedNext, X10's ClockUseException
// analogue), and tests exercise exactly that. The front-door tools
// (fx10, fx10d) call CheckClockUse so users get a static diagnosis
// instead of a runtime error or a silently clock-blind analysis.

// ClockUseError reports a barrier instruction that can never execute
// legally: its innermost enclosing async is unclocked, so the
// activity running it is guaranteed to be unregistered.
type ClockUseError struct {
	// Label is the display name of the offending next/advance.
	Label string
	// Async is the display name of the enclosing unclocked async.
	Async string
	// Method is the containing method's name.
	Method string
}

func (e *ClockUseError) Error() string {
	return fmt.Sprintf("syntax: %s in method %q: next/advance inside unclocked async %s — the activity is never registered on the clock (use \"clocked async\")",
		e.Label, e.Method, e.Async)
}

// CheckClockUse rejects barrier instructions whose innermost
// enclosing async is unclocked. Such a next/advance always faults
// dynamically. A next with no enclosing async (main-activity code,
// including helper methods) is fine: the main activity is registered,
// and a helper may be called from a clocked context.
func CheckClockUse(p *Program) error {
	for l := range p.Labels {
		info := &p.Labels[l]
		if info.Kind != KindNext || info.AsyncBody == NoLabel {
			continue
		}
		enc := &p.Labels[info.AsyncBody]
		if a, ok := enc.Instr.(*Async); ok && !a.Clocked {
			return &ClockUseError{
				Label:  info.Name,
				Async:  enc.Name,
				Method: p.Methods[info.Method].Name,
			}
		}
	}
	return nil
}

// UsesClocks reports whether the program contains any Section 8 clock
// construct (a next barrier or a clocked async). Clock-free programs
// skip the phase analysis entirely.
func (p *Program) UsesClocks() bool {
	for l := range p.Labels {
		switch i := p.Labels[l].Instr.(type) {
		case *Next:
			return true
		case *Async:
			if i.Clocked {
				return true
			}
		}
	}
	return false
}
