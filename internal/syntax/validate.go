package syntax

import "fmt"

// Validate checks the structural well-formedness of a program:
//
//   - the array length n is positive (the paper requires a non-empty
//     array) and every array index d satisfies 0 ≤ d < n;
//   - a method named "main" exists (the paper's f_0);
//   - every method body is a non-empty statement, as are all nested
//     while/async/finish bodies;
//   - every call's resolved method index is in range;
//   - every label is used by exactly one instruction and its metadata
//     is consistent.
func Validate(p *Program) error {
	if p.ArrayLen <= 0 {
		return fmt.Errorf("syntax: array length %d, want > 0", p.ArrayLen)
	}
	if len(p.Methods) == 0 {
		return fmt.Errorf("syntax: program has no methods")
	}
	if p.MainIndex < 0 || p.MainIndex >= len(p.Methods) {
		return fmt.Errorf("syntax: program has no main method")
	}
	if p.Methods[p.MainIndex].Name != "main" {
		return fmt.Errorf("syntax: MainIndex names %q, want \"main\"", p.Methods[p.MainIndex].Name)
	}
	names := make(map[string]bool, len(p.Labels))
	for l := range p.Labels {
		n := p.Labels[l].Name
		if names[n] {
			return fmt.Errorf("syntax: duplicate label name %q", n)
		}
		names[n] = true
	}
	seen := make([]bool, len(p.Labels))
	for mi, m := range p.Methods {
		if m.Body == nil {
			return fmt.Errorf("syntax: method %q has empty body", m.Name)
		}
		if err := validateStmt(p, m.Body, mi, seen); err != nil {
			return fmt.Errorf("syntax: method %q: %w", m.Name, err)
		}
	}
	for l, s := range seen {
		if !s {
			return fmt.Errorf("syntax: label %s is not attached to any instruction", p.Labels[l].Name)
		}
	}
	return nil
}

func validateStmt(p *Program, s *Stmt, method int, seen []bool) error {
	for cur := s; cur != nil; cur = cur.Next {
		i := cur.Instr
		if i == nil {
			return fmt.Errorf("nil instruction in sequence")
		}
		l := i.Label()
		if l < 0 || int(l) >= len(p.Labels) {
			return fmt.Errorf("label %d out of range", int(l))
		}
		if seen[l] {
			return fmt.Errorf("label %s attached to two instructions", p.Labels[l].Name)
		}
		seen[l] = true
		info := p.Labels[l]
		if info.Kind != i.Kind() {
			return fmt.Errorf("label %s registered as %v but used on %v", info.Name, info.Kind, i.Kind())
		}
		if info.Method != method {
			return fmt.Errorf("label %s annotated with method %d but appears in method %d", info.Name, info.Method, method)
		}
		switch i := i.(type) {
		case *Assign:
			if err := checkIndex(p, i.D); err != nil {
				return err
			}
			switch e := i.Rhs.(type) {
			case Const:
			case Plus:
				if err := checkIndex(p, e.D); err != nil {
					return err
				}
			default:
				return fmt.Errorf("label %s: unknown expression %T", info.Name, i.Rhs)
			}
		case *While:
			if err := checkIndex(p, i.D); err != nil {
				return err
			}
			if i.Body == nil {
				return fmt.Errorf("label %s: empty while body", info.Name)
			}
			if err := validateStmt(p, i.Body, method, seen); err != nil {
				return err
			}
		case *Async:
			if i.Body == nil {
				return fmt.Errorf("label %s: empty async body", info.Name)
			}
			if i.Place < 0 {
				return fmt.Errorf("label %s: negative place %d", info.Name, i.Place)
			}
			if err := validateStmt(p, i.Body, method, seen); err != nil {
				return err
			}
		case *Finish:
			if i.Body == nil {
				return fmt.Errorf("label %s: empty finish body", info.Name)
			}
			if err := validateStmt(p, i.Body, method, seen); err != nil {
				return err
			}
		case *Call:
			if i.Method < 0 || i.Method >= len(p.Methods) {
				return fmt.Errorf("label %s: unresolved call to %q", info.Name, i.Name)
			}
			if p.Methods[i.Method].Name != i.Name {
				return fmt.Errorf("label %s: call resolved to %q, want %q", info.Name, p.Methods[i.Method].Name, i.Name)
			}
		}
	}
	return nil
}

func checkIndex(p *Program, d int) error {
	if d < 0 || d >= p.ArrayLen {
		return fmt.Errorf("array index %d outside [0,%d)", d, p.ArrayLen)
	}
	return nil
}
