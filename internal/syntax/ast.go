// Package syntax defines the abstract syntax of Featherweight X10
// (FX10) exactly as in Figure 1 of Lee and Palsberg (PPoPP 2010):
//
//	Program:     p ::= void f_i() { s_i },  i ∈ 1..u
//	Statement:   s ::= i | i s
//	Instruction: i ::= skip^l | a[d] =^l e; | while^l (a[d] != 0) s
//	               | async^l s | finish^l s | f_i()^l
//	Expression:  e ::= c | a[d] + 1
//
// A program owns a dense label table: every instruction carries a
// Label, an index into Program.Labels. Statement labels drive the
// may-happen-in-parallel analysis; they have no effect on execution.
//
// The package also provides the sequencing operator s1 . s2 used by
// the operational semantics of while loops and method calls (Seq), a
// builder for programmatic construction, a validator, and a
// pretty-printer whose output re-parses with internal/parser.
package syntax

import "fmt"

// Label identifies an instruction within a Program. Labels are dense:
// valid labels of a program p are 0 … p.NumLabels()-1.
type Label int

// NoLabel is the sentinel for "no label assigned yet".
const NoLabel Label = -1

// Kind enumerates the instruction forms of FX10.
type Kind int

// The instruction kinds, in the order of Figure 1. KindNext is the
// clock extension (Section 8 future work); core FX10 programs never
// contain it.
const (
	KindSkip Kind = iota
	KindAssign
	KindWhile
	KindAsync
	KindFinish
	KindCall
	KindNext
)

var kindNames = [...]string{"skip", "assign", "while", "async", "finish", "call", "next"}

func (k Kind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return kindNames[k]
}

// Expr is an FX10 expression: either Const (an integer constant c) or
// Plus (an array lookup plus one, a[d]+1).
type Expr interface {
	isExpr()
	String() string
}

// Const is the integer constant expression c.
type Const struct {
	C int64
}

func (Const) isExpr()          {}
func (e Const) String() string { return fmt.Sprintf("%d", e.C) }

// Plus is the expression a[d] + 1.
type Plus struct {
	D int // array index d
}

func (Plus) isExpr()          {}
func (e Plus) String() string { return fmt.Sprintf("a[%d] + 1", e.D) }

// Instr is one labeled FX10 instruction.
type Instr interface {
	// Label returns the instruction's label.
	Label() Label
	// Kind returns the instruction's syntactic form.
	Kind() Kind
	isInstr()
}

// Skip is skip^l.
type Skip struct {
	L Label
}

// Assign is a[d] =^l e;.
type Assign struct {
	L   Label
	D   int // destination index d
	Rhs Expr
}

// While is while^l (a[d] != 0) s.
type While struct {
	L    Label
	D    int   // guard index d
	Body *Stmt // loop body s (non-empty)
}

// Async is async^l s. Place is the Section 8 places extension: the
// place the body runs at, relative to the spawning activity's place
// (0 = same place). Clocked marks the Section 8 clocks extension: a
// clocked async's activity is registered on the program's single
// implicit clock and participates in next barriers. Core FX10
// programs always use Place 0 and Clocked false.
type Async struct {
	L       Label
	Body    *Stmt // async body s (non-empty)
	Place   int
	Clocked bool
}

// Finish is finish^l s.
type Finish struct {
	L    Label
	Body *Stmt // finish body s (non-empty)
}

// Call is f_i()^l. Name is the callee's source name; Method is its
// index in Program.Methods, resolved by Builder.Program or the parser.
type Call struct {
	L      Label
	Name   string
	Method int
}

// Next is next^l, the clock-barrier instruction of the Section 8
// clocks extension: the executing activity waits until every live
// activity registered on the implicit clock has reached a next (or
// terminated). The core pipeline treats it by clock erasure (as a
// skip), which is sound for may-happen-in-parallel information;
// internal/clocks gives it the real barrier semantics.
type Next struct {
	L Label
}

func (i *Skip) Label() Label   { return i.L }
func (i *Assign) Label() Label { return i.L }
func (i *While) Label() Label  { return i.L }
func (i *Async) Label() Label  { return i.L }
func (i *Finish) Label() Label { return i.L }
func (i *Call) Label() Label   { return i.L }
func (i *Next) Label() Label   { return i.L }

func (i *Skip) Kind() Kind   { return KindSkip }
func (i *Assign) Kind() Kind { return KindAssign }
func (i *While) Kind() Kind  { return KindWhile }
func (i *Async) Kind() Kind  { return KindAsync }
func (i *Finish) Kind() Kind { return KindFinish }
func (i *Call) Kind() Kind   { return KindCall }
func (i *Next) Kind() Kind   { return KindNext }

func (*Skip) isInstr()   {}
func (*Assign) isInstr() {}
func (*While) isInstr()  {}
func (*Async) isInstr()  {}
func (*Finish) isInstr() {}
func (*Call) isInstr()   {}
func (*Next) isInstr()   {}

// Body returns the nested statement of a while/async/finish
// instruction, or nil for the other kinds.
func Body(i Instr) *Stmt {
	switch i := i.(type) {
	case *While:
		return i.Body
	case *Async:
		return i.Body
	case *Finish:
		return i.Body
	}
	return nil
}

// Stmt is a non-empty sequence of instructions, s ::= i | i s,
// represented as a singly linked list. Next is nil exactly when this
// is the final instruction of the sequence.
//
// Stmt spines may be shared and must be treated as immutable after
// construction; Seq copies spines rather than splicing them.
type Stmt struct {
	Instr Instr
	Next  *Stmt
}

// Seq implements the paper's sequencing operator s1 . s2:
//
//	skip^l . s2     ≡ skip^l s2
//	(i s1) . s2     ≡ i (s1 . s2)
//
// More generally for our list representation, it appends s2 after the
// last instruction of s1, copying s1's spine so that neither input is
// mutated. Instructions (and hence labels) are shared, which is what
// the semantics requires: the unrolled loop body retains its labels.
func Seq(s1, s2 *Stmt) *Stmt {
	if s1 == nil {
		return s2
	}
	if s2 == nil {
		return s1
	}
	head := &Stmt{Instr: s1.Instr}
	tail := head
	for cur := s1.Next; cur != nil; cur = cur.Next {
		n := &Stmt{Instr: cur.Instr}
		tail.Next = n
		tail = n
	}
	tail.Next = s2
	return head
}

// Len returns the number of instructions in the top-level sequence
// (not counting nested bodies).
func (s *Stmt) Len() int {
	n := 0
	for cur := s; cur != nil; cur = cur.Next {
		n++
	}
	return n
}

// Each calls f for every instruction in the top-level sequence.
func (s *Stmt) Each(f func(Instr)) {
	for cur := s; cur != nil; cur = cur.Next {
		f(cur.Instr)
	}
}

// EachDeep calls f for every instruction in the sequence and,
// recursively, in all nested while/async/finish bodies, in source
// order.
func (s *Stmt) EachDeep(f func(Instr)) {
	for cur := s; cur != nil; cur = cur.Next {
		f(cur.Instr)
		if b := Body(cur.Instr); b != nil {
			b.EachDeep(f)
		}
	}
}

// Method is one FX10 method: void Name() { Body }.
type Method struct {
	Name string
	Body *Stmt
}

// LabelInfo is the program's metadata for one label.
type LabelInfo struct {
	Name   string // display name, e.g. "S1" or auto-generated "L7"
	Kind   Kind   // the labeled instruction's form
	Method int    // index of the enclosing method, -1 until finalized
	Instr  Instr  // the labeled instruction
	// AsyncBody is the label of the innermost enclosing async
	// instruction if this instruction is (transitively) inside an
	// async body within the same method, else NoLabel. Used to
	// classify pairs of async bodies (Figure 8).
	AsyncBody Label
}

// Program is a complete FX10 program.
type Program struct {
	// Methods holds the program's methods. The entry point f_0 is the
	// method named "main"; its index is MainIndex.
	Methods []*Method
	// MainIndex is the index of the main method in Methods.
	MainIndex int
	// ArrayLen is n, the length of the shared array a. Valid indices
	// d are 0 … n-1.
	ArrayLen int
	// Labels is the dense label table; Labels[l] describes label l.
	Labels []LabelInfo

	byName map[string]int

	// hashes memoizes the program and per-method content hashes (see
	// hash.go). Programs are immutable once validated, so the lazy
	// computation is safe under concurrent readers.
	hashes hashMemo
}

// NumLabels returns the number of labels in the program.
func (p *Program) NumLabels() int { return len(p.Labels) }

// Main returns the main method (the paper's f_0).
func (p *Program) Main() *Method { return p.Methods[p.MainIndex] }

// MethodIndex returns the index of the named method and whether it
// exists.
func (p *Program) MethodIndex(name string) (int, bool) {
	i, ok := p.byName[name]
	return i, ok
}

// LabelName returns the display name for label l.
func (p *Program) LabelName(l Label) string {
	if l < 0 || int(l) >= len(p.Labels) {
		return fmt.Sprintf("L?%d", int(l))
	}
	return p.Labels[l].Name
}

// LabelByName returns the label with the given display name, if any.
func (p *Program) LabelByName(name string) (Label, bool) {
	for l := range p.Labels {
		if p.Labels[l].Name == name {
			return Label(l), true
		}
	}
	return NoLabel, false
}

// AsyncLabels returns the labels of all async instructions, in label
// order.
func (p *Program) AsyncLabels() []Label {
	var out []Label
	for l := range p.Labels {
		if p.Labels[l].Kind == KindAsync {
			out = append(out, Label(l))
		}
	}
	return out
}

// EachInstr calls f for every instruction of every method, in method
// then source order.
func (p *Program) EachInstr(f func(methodIndex int, i Instr)) {
	for mi, m := range p.Methods {
		mi := mi
		m.Body.EachDeep(func(i Instr) { f(mi, i) })
	}
}
