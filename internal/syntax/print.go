package syntax

import (
	"fmt"
	"strings"
)

// Print renders the program in the concrete syntax accepted by
// internal/parser, with every label written explicitly so the result
// round-trips (modulo auto-generated label names, which are preserved
// verbatim).
func Print(p *Program) string {
	var b strings.Builder
	fmt.Fprintf(&b, "array %d;\n\n", p.ArrayLen)
	for mi, m := range p.Methods {
		if mi > 0 {
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "void %s() {\n", m.Name)
		printStmt(&b, p, m.Body, 1)
		b.WriteString("}\n")
	}
	return b.String()
}

// PrintStmt renders one statement in concrete syntax at the given
// indent depth. Useful for diagnostics and tree display.
func PrintStmt(p *Program, s *Stmt) string {
	var b strings.Builder
	printStmt(&b, p, s, 0)
	return b.String()
}

func printStmt(b *strings.Builder, p *Program, s *Stmt, depth int) {
	for cur := s; cur != nil; cur = cur.Next {
		printInstr(b, p, cur.Instr, depth)
	}
}

func printInstr(b *strings.Builder, p *Program, i Instr, depth int) {
	ind := strings.Repeat("  ", depth)
	lbl := p.LabelName(i.Label())
	switch i := i.(type) {
	case *Skip:
		fmt.Fprintf(b, "%s%s: skip;\n", ind, lbl)
	case *Assign:
		fmt.Fprintf(b, "%s%s: a[%d] = %s;\n", ind, lbl, i.D, i.Rhs)
	case *While:
		fmt.Fprintf(b, "%s%s: while (a[%d] != 0) {\n", ind, lbl, i.D)
		printStmt(b, p, i.Body, depth+1)
		fmt.Fprintf(b, "%s}\n", ind)
	case *Async:
		kw := "async"
		if i.Clocked {
			kw = "clocked async"
		}
		if i.Place != 0 {
			fmt.Fprintf(b, "%s%s: %s at (%d) {\n", ind, lbl, kw, i.Place)
		} else {
			fmt.Fprintf(b, "%s%s: %s {\n", ind, lbl, kw)
		}
		printStmt(b, p, i.Body, depth+1)
		fmt.Fprintf(b, "%s}\n", ind)
	case *Finish:
		fmt.Fprintf(b, "%s%s: finish {\n", ind, lbl)
		printStmt(b, p, i.Body, depth+1)
		fmt.Fprintf(b, "%s}\n", ind)
	case *Call:
		fmt.Fprintf(b, "%s%s: %s();\n", ind, lbl, i.Name)
	case *Next:
		fmt.Fprintf(b, "%s%s: next;\n", ind, lbl)
	default:
		fmt.Fprintf(b, "%s%s: ???;\n", ind, lbl)
	}
}

// InstrString renders a single instruction on one line (bodies
// elided), for diagnostics.
func InstrString(p *Program, i Instr) string {
	lbl := p.LabelName(i.Label())
	switch i := i.(type) {
	case *Skip:
		return fmt.Sprintf("%s: skip", lbl)
	case *Assign:
		return fmt.Sprintf("%s: a[%d] = %s", lbl, i.D, i.Rhs)
	case *While:
		return fmt.Sprintf("%s: while (a[%d] != 0) {…}", lbl, i.D)
	case *Async:
		return fmt.Sprintf("%s: async {…}", lbl)
	case *Finish:
		return fmt.Sprintf("%s: finish {…}", lbl)
	case *Call:
		return fmt.Sprintf("%s: %s()", lbl, i.Name)
	case *Next:
		return fmt.Sprintf("%s: next", lbl)
	}
	return lbl + ": ???"
}
