package syntax

import (
	"strings"
	"testing"
)

// buildExample22 constructs the Section 2.2 example:
//
//	void f() { async S5 }
//	void main() {
//	  S1: finish { async S3  f() }
//	  S2: finish { f()  async S4 }
//	}
func buildExample22(t *testing.T) *Program {
	t.Helper()
	b := NewBuilder(4)
	b.MustAddMethod("f", b.Stmts(
		b.Async("A5", b.Stmts(b.Skip("S5"))),
	))
	b.MustAddMethod("main", b.Stmts(
		b.Finish("S1", b.Stmts(
			b.Async("A3", b.Stmts(b.Skip("S3"))),
			b.Call("C1", "f"),
		)),
		b.Finish("S2", b.Stmts(
			b.Call("C2", "f"),
			b.Async("A4", b.Stmts(b.Skip("S4"))),
		)),
	))
	p, err := b.Program()
	if err != nil {
		t.Fatalf("Program: %v", err)
	}
	return p
}

func TestBuilderExample22(t *testing.T) {
	p := buildExample22(t)
	if got := len(p.Methods); got != 2 {
		t.Fatalf("methods = %d, want 2", got)
	}
	if p.Main().Name != "main" {
		t.Fatalf("main method = %q", p.Main().Name)
	}
	if p.NumLabels() != 10 {
		t.Fatalf("labels = %d, want 10", p.NumLabels())
	}
	fi, ok := p.MethodIndex("f")
	if !ok {
		t.Fatalf("method f missing")
	}
	// The call C1 must resolve to f.
	var call *Call
	p.Main().Body.EachDeep(func(i Instr) {
		if c, isCall := i.(*Call); isCall && p.LabelName(c.L) == "C1" {
			call = c
		}
	})
	if call == nil || call.Method != fi {
		t.Fatalf("call C1 unresolved: %+v", call)
	}
}

func TestLabelMetadata(t *testing.T) {
	p := buildExample22(t)
	s5, ok := p.LabelByName("S5")
	if !ok {
		t.Fatalf("label S5 missing")
	}
	a5, _ := p.LabelByName("A5")
	info := p.Labels[s5]
	fi, _ := p.MethodIndex("f")
	if info.Method != fi {
		t.Fatalf("S5 method = %d, want %d (f)", info.Method, fi)
	}
	if info.AsyncBody != a5 {
		t.Fatalf("S5 async body = %v, want %v", info.AsyncBody, a5)
	}
	s1, _ := p.LabelByName("S1")
	if p.Labels[s1].AsyncBody != NoLabel {
		t.Fatalf("S1 should not be inside an async body")
	}
	if p.Labels[s1].Kind != KindFinish {
		t.Fatalf("S1 kind = %v, want finish", p.Labels[s1].Kind)
	}
	// A nested statement inside an async inside a while stays attached
	// to the async.
	b := NewBuilder(2)
	b.MustAddMethod("main", b.Stmts(
		b.Async("A", b.Stmts(
			b.While("W", 0, b.Stmts(b.Skip("I"))),
		)),
	))
	q := b.MustProgram()
	iL, _ := q.LabelByName("I")
	aL, _ := q.LabelByName("A")
	if q.Labels[iL].AsyncBody != aL {
		t.Fatalf("I async body = %v, want %v", q.Labels[iL].AsyncBody, aL)
	}
}

func TestAsyncLabels(t *testing.T) {
	p := buildExample22(t)
	asyncs := p.AsyncLabels()
	if len(asyncs) != 3 {
		t.Fatalf("async labels = %d, want 3", len(asyncs))
	}
	names := map[string]bool{}
	for _, l := range asyncs {
		names[p.LabelName(l)] = true
	}
	for _, want := range []string{"A3", "A4", "A5"} {
		if !names[want] {
			t.Fatalf("async label %s missing (have %v)", want, names)
		}
	}
}

func TestSeqSemantics(t *testing.T) {
	b := NewBuilder(2)
	i1 := b.Skip("X")
	i2 := b.Skip("Y")
	i3 := b.Skip("Z")
	s1 := b.Stmts(i1, i2)
	s2 := b.Stmts(i3)
	seq := Seq(s1, s2)
	if seq.Len() != 3 {
		t.Fatalf("Seq len = %d, want 3", seq.Len())
	}
	var got []Label
	seq.Each(func(i Instr) { got = append(got, i.Label()) })
	want := []Label{i1.Label(), i2.Label(), i3.Label()}
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("Seq order = %v, want %v", got, want)
		}
	}
	// s1's spine must be unchanged.
	if s1.Len() != 2 || s1.Next.Next != nil {
		t.Fatalf("Seq mutated its first operand")
	}
	// Instructions are shared.
	if seq.Instr != i1 || seq.Next.Instr != i2 || seq.Next.Next.Instr != i3 {
		t.Fatalf("Seq must share instructions")
	}
	// The second operand's spine is shared (tail position).
	if seq.Next.Next != s2 {
		t.Fatalf("Seq must reuse the second operand's spine")
	}
	if Seq(nil, s2) != s2 || Seq(s1, nil) != s1 {
		t.Fatalf("Seq with nil operand should return the other")
	}
}

func TestSeqAssociativeLabels(t *testing.T) {
	b := NewBuilder(2)
	mk := func(n string) *Stmt { return b.Stmts(b.Skip(n)) }
	sa, sb, sc := mk("a"), mk("b"), mk("c")
	left := Seq(Seq(sa, sb), sc)
	right := Seq(sa, Seq(sb, sc))
	var l1, l2 []Label
	left.Each(func(i Instr) { l1 = append(l1, i.Label()) })
	right.Each(func(i Instr) { l2 = append(l2, i.Label()) })
	if len(l1) != 3 || len(l2) != 3 {
		t.Fatalf("lengths %d, %d", len(l1), len(l2))
	}
	for k := range l1 {
		if l1[k] != l2[k] {
			t.Fatalf("Seq not associative on labels: %v vs %v", l1, l2)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	// Undefined callee.
	b := NewBuilder(2)
	b.MustAddMethod("main", b.Stmts(b.Call("", "nope")))
	if _, err := b.Program(); err == nil || !strings.Contains(err.Error(), "undefined method") {
		t.Fatalf("undefined callee not rejected: %v", err)
	}
	// No main.
	b2 := NewBuilder(2)
	b2.MustAddMethod("f", b2.Stmts(b2.Skip("")))
	if _, err := b2.Program(); err == nil || !strings.Contains(err.Error(), "main") {
		t.Fatalf("missing main not rejected: %v", err)
	}
	// Bad array index.
	b3 := NewBuilder(2)
	b3.MustAddMethod("main", b3.Stmts(b3.Assign("", 5, Const{C: 1})))
	if _, err := b3.Program(); err == nil || !strings.Contains(err.Error(), "array index") {
		t.Fatalf("bad index not rejected: %v", err)
	}
	// Bad index inside expression.
	b4 := NewBuilder(2)
	b4.MustAddMethod("main", b4.Stmts(b4.Assign("", 0, Plus{D: 9})))
	if _, err := b4.Program(); err == nil || !strings.Contains(err.Error(), "array index") {
		t.Fatalf("bad expr index not rejected: %v", err)
	}
	// Duplicate method.
	b5 := NewBuilder(2)
	b5.MustAddMethod("main", b5.Stmts(b5.Skip("")))
	if err := b5.AddMethod("main", b5.Stmts(b5.Skip(""))); err == nil {
		t.Fatalf("duplicate method not rejected")
	}
	// Instruction reused in two positions.
	b6 := NewBuilder(2)
	i := b6.Skip("dup")
	b6.MustAddMethod("main", b6.Stmts(i, i))
	if _, err := b6.Program(); err == nil {
		t.Fatalf("reused instruction not rejected")
	}
	// Zero-length array.
	b7 := NewBuilder(0)
	b7.MustAddMethod("main", b7.Stmts(b7.Skip("")))
	if _, err := b7.Program(); err == nil || !strings.Contains(err.Error(), "array length") {
		t.Fatalf("zero array not rejected: %v", err)
	}
}

func TestEmptyStmtsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("Stmts() did not panic")
		}
	}()
	NewBuilder(1).Stmts()
}

func TestPrintContainsStructure(t *testing.T) {
	p := buildExample22(t)
	out := Print(p)
	for _, frag := range []string{
		"array 4;",
		"void f() {",
		"void main() {",
		"S1: finish {",
		"A3: async {",
		"C1: f();",
		"S2: finish {",
		"A4: async {",
	} {
		if !strings.Contains(out, frag) {
			t.Fatalf("Print output missing %q:\n%s", frag, out)
		}
	}
}

func TestInstrString(t *testing.T) {
	p := buildExample22(t)
	var texts []string
	p.EachInstr(func(_ int, i Instr) { texts = append(texts, InstrString(p, i)) })
	joined := strings.Join(texts, "\n")
	for _, frag := range []string{"S5: skip", "A5: async {…}", "C1: f()", "S1: finish {…}"} {
		if !strings.Contains(joined, frag) {
			t.Fatalf("InstrString output missing %q in:\n%s", frag, joined)
		}
	}
}

func TestEachDeepOrder(t *testing.T) {
	p := buildExample22(t)
	var names []string
	p.Main().Body.EachDeep(func(i Instr) { names = append(names, p.LabelName(i.Label())) })
	want := []string{"S1", "A3", "S3", "C1", "S2", "C2", "A4", "S4"}
	if len(names) != len(want) {
		t.Fatalf("EachDeep = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("EachDeep = %v, want %v", names, want)
		}
	}
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindSkip: "skip", KindAssign: "assign", KindWhile: "while",
		KindAsync: "async", KindFinish: "finish", KindCall: "call",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Fatalf("Kind(%d).String() = %q, want %q", int(k), k.String(), want)
		}
	}
	if !strings.Contains(Kind(42).String(), "42") {
		t.Fatalf("unknown kind string: %q", Kind(42).String())
	}
}

func TestExprString(t *testing.T) {
	if got := (Const{C: 7}).String(); got != "7" {
		t.Fatalf("Const.String = %q", got)
	}
	if got := (Plus{D: 3}).String(); got != "a[3] + 1" {
		t.Fatalf("Plus.String = %q", got)
	}
}

func TestBodyHelper(t *testing.T) {
	b := NewBuilder(2)
	sk := b.Skip("")
	as := b.Async("", b.Stmts(b.Skip("")))
	if Body(sk) != nil {
		t.Fatalf("Body(skip) should be nil")
	}
	if Body(as) == nil {
		t.Fatalf("Body(async) should be non-nil")
	}
	_ = b // builder not finalized on purpose
}
