package syntax

import (
	"strings"
	"testing"
)

// The clock/place extension surface of the builder and printer.
func TestClockedAndPlacedConstruction(t *testing.T) {
	b := NewBuilder(2)
	b.MustAddMethod("main", b.Stmts(
		b.ClockedAsync("C", b.Stmts(
			b.Assign("W", 0, Const{C: 1}),
			b.Next("N"),
			b.Assign("R", 1, Plus{D: 0}),
		)),
		b.AsyncAt("P", 3, b.Stmts(b.Skip("S"))),
		b.Next("NM"),
	))
	p := b.MustProgram()

	c, _ := p.LabelByName("C")
	a := p.Labels[c].Instr.(*Async)
	if !a.Clocked || a.Place != 0 {
		t.Fatalf("clocked async fields wrong: %+v", a)
	}
	pl, _ := p.LabelByName("P")
	if got := p.Labels[pl].Instr.(*Async); got.Place != 3 || got.Clocked {
		t.Fatalf("placed async fields wrong: %+v", got)
	}
	n, _ := p.LabelByName("N")
	if p.Labels[n].Kind != KindNext {
		t.Fatalf("next kind = %v", p.Labels[n].Kind)
	}
	if KindNext.String() != "next" {
		t.Fatalf("KindNext string = %q", KindNext.String())
	}

	out := Print(p)
	for _, frag := range []string{
		"C: clocked async {",
		"P: async at (3) {",
		"NM: next;",
		"N: next;",
	} {
		if !strings.Contains(out, frag) {
			t.Fatalf("Print missing %q:\n%s", frag, out)
		}
	}

	// One-line forms.
	var lines []string
	p.EachInstr(func(_ int, i Instr) { lines = append(lines, InstrString(p, i)) })
	joined := strings.Join(lines, "\n")
	for _, frag := range []string{"N: next", "W: a[0] = 1", "R: a[1] = a[0] + 1", "C: async {…}", "P: async {…}"} {
		if !strings.Contains(joined, frag) {
			t.Fatalf("InstrString missing %q in:\n%s", frag, joined)
		}
	}

	// PrintStmt renders a bare statement.
	if got := PrintStmt(p, p.Main().Body); !strings.Contains(got, "clocked async") {
		t.Fatalf("PrintStmt output: %s", got)
	}
}

func TestLabelNameOutOfRange(t *testing.T) {
	b := NewBuilder(1)
	b.MustAddMethod("main", b.Stmts(b.Skip("")))
	p := b.MustProgram()
	if got := p.LabelName(Label(-1)); !strings.Contains(got, "?") {
		t.Fatalf("LabelName(-1) = %q", got)
	}
	if got := p.LabelName(Label(99)); !strings.Contains(got, "?") {
		t.Fatalf("LabelName(99) = %q", got)
	}
	if _, ok := p.LabelByName("nope"); ok {
		t.Fatalf("LabelByName found a ghost")
	}
}

func TestMustAddMethodPanicsOnDuplicate(t *testing.T) {
	b := NewBuilder(1)
	b.MustAddMethod("main", b.Stmts(b.Skip("")))
	defer func() {
		if recover() == nil {
			t.Fatalf("duplicate MustAddMethod did not panic")
		}
	}()
	b.MustAddMethod("main", b.Stmts(b.Skip("")))
}

func TestMustProgramPanicsOnInvalid(t *testing.T) {
	b := NewBuilder(1)
	b.MustAddMethod("notmain", b.Stmts(b.Skip("")))
	defer func() {
		if recover() == nil {
			t.Fatalf("MustProgram did not panic without main")
		}
	}()
	b.MustProgram()
}

// Validation of extension-specific failure modes.
func TestValidateExtensionErrors(t *testing.T) {
	// Negative place.
	b := NewBuilder(1)
	b.MustAddMethod("main", b.Stmts(b.AsyncAt("", -2, b.Stmts(b.Skip("")))))
	if _, err := b.Program(); err == nil || !strings.Contains(err.Error(), "place") {
		t.Fatalf("negative place not rejected: %v", err)
	}

	// MainIndex naming mismatch crafted directly.
	b2 := NewBuilder(1)
	b2.MustAddMethod("main", b2.Stmts(b2.Skip("")))
	p := b2.MustProgram()
	p.Methods[0].Name = "renamed"
	if err := Validate(p); err == nil {
		t.Fatalf("renamed main not rejected")
	}

	// Label kind mismatch crafted directly.
	b3 := NewBuilder(1)
	b3.MustAddMethod("main", b3.Stmts(b3.Skip("K")))
	q := b3.MustProgram()
	q.Labels[0].Kind = KindAsync
	if err := Validate(q); err == nil {
		t.Fatalf("kind mismatch not rejected")
	}

	// Nil instruction in a spine.
	b4 := NewBuilder(1)
	b4.MustAddMethod("main", b4.Stmts(b4.Skip("")))
	r := b4.MustProgram()
	r.Methods[0].Body.Instr = nil
	if err := Validate(r); err == nil {
		t.Fatalf("nil instruction not rejected")
	}

	// Nil method body.
	b5 := NewBuilder(1)
	b5.MustAddMethod("main", b5.Stmts(b5.Skip("")))
	s := b5.MustProgram()
	s.Methods[0].Body = nil
	if err := Validate(s); err == nil {
		t.Fatalf("nil body not rejected")
	}

	// No methods at all.
	if err := Validate(&Program{ArrayLen: 1}); err == nil {
		t.Fatalf("empty program not rejected")
	}
}

func TestValidateNestedBodyErrors(t *testing.T) {
	// Empty while body crafted directly.
	b := NewBuilder(1)
	b.MustAddMethod("main", b.Stmts(b.While("W", 0, b.Stmts(b.Skip("I")))))
	p := b.MustProgram()
	w, _ := p.LabelByName("W")
	p.Labels[w].Instr.(*While).Body = nil
	p.Methods[0].Body.Instr.(*While).Body = nil
	if err := Validate(p); err == nil {
		t.Fatalf("empty while body not rejected")
	}

	// Unused label: drop an instruction from the spine.
	b2 := NewBuilder(1)
	b2.MustAddMethod("main", b2.Stmts(b2.Skip("A"), b2.Skip("B")))
	q := b2.MustProgram()
	q.Methods[0].Body.Next = nil // B's label is now orphaned
	if err := Validate(q); err == nil || !strings.Contains(err.Error(), "not attached") {
		t.Fatalf("orphan label not rejected: %v", err)
	}
}
