package syntax_test

import (
	"testing"

	"fx10/internal/parser"
	"fx10/internal/progen"
	"fx10/internal/syntax"
)

// twoMethodProgram builds
//
//	void f() { async skip }
//	void main() { <main body variant> }
//
// where variant selects one of two different main bodies — f is
// byte-identical across variants.
func twoMethodProgram(t *testing.T, variant int) *syntax.Program {
	t.Helper()
	b := syntax.NewBuilder(4)
	b.MustAddMethod("f", b.Stmts(
		b.Async("", b.Stmts(b.Skip(""))),
	))
	if variant == 0 {
		b.MustAddMethod("main", b.Stmts(
			b.Finish("", b.Stmts(b.Call("", "f"))),
		))
	} else {
		b.MustAddMethod("main", b.Stmts(
			b.Call("", "f"),
			b.Skip(""),
			b.Skip(""),
		))
	}
	return b.MustProgram()
}

// TestMethodHashIgnoresUnrelatedEdits: editing main must not change
// f's content hash (f does not call main), while main's own hash must
// change.
func TestMethodHashIgnoresUnrelatedEdits(t *testing.T) {
	p0 := twoMethodProgram(t, 0)
	p1 := twoMethodProgram(t, 1)
	f0, _ := p0.MethodIndex("f")
	f1, _ := p1.MethodIndex("f")
	if p0.MethodHash(f0) != p1.MethodHash(f1) {
		t.Error("f's hash changed under an unrelated main edit")
	}
	if p0.MethodHash(p0.MainIndex) == p1.MethodHash(p1.MainIndex) {
		t.Error("main's hash did not change under a main edit")
	}
}

// TestMethodHashCoversCallees: a method's hash covers its whole
// call-graph subtree, so editing a callee changes the caller's hash
// too (that is what makes hash-equality imply summary-equality).
func TestMethodHashCoversCallees(t *testing.T) {
	build := func(calleeAsync bool) *syntax.Program {
		b := syntax.NewBuilder(4)
		if calleeAsync {
			b.MustAddMethod("g", b.Stmts(b.Async("", b.Stmts(b.Skip("")))))
		} else {
			b.MustAddMethod("g", b.Stmts(b.Skip("")))
		}
		b.MustAddMethod("main", b.Stmts(b.Call("", "g")))
		return b.MustProgram()
	}
	pa, pb := build(true), build(false)
	if pa.MethodHash(pa.MainIndex) == pb.MethodHash(pb.MainIndex) {
		t.Error("caller hash unchanged although its callee's body differs")
	}
}

// TestMethodHashIndexAndNameInvariance: rebuilding a program from
// scratch (fresh label indices) and reprinting/reparsing it (different
// index assignment order, same display names) must preserve every
// method's hash.
func TestMethodHashIndexAndNameInvariance(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		p := progen.Generate(seed, progen.Default())
		clone := progen.Clone(p)
		reparsed, err := parser.Parse(syntax.Print(p))
		if err != nil {
			t.Fatalf("seed %d: reparse: %v", seed, err)
		}
		for mi, m := range p.Methods {
			ci, ok := clone.MethodIndex(m.Name)
			if !ok {
				t.Fatalf("seed %d: clone lost method %q", seed, m.Name)
			}
			if p.MethodHash(mi) != clone.MethodHash(ci) {
				t.Errorf("seed %d: method %q hash differs after clone", seed, m.Name)
			}
			ri, ok := reparsed.MethodIndex(m.Name)
			if !ok {
				t.Fatalf("seed %d: reparse lost method %q", seed, m.Name)
			}
			if p.MethodHash(mi) != reparsed.MethodHash(ri) {
				t.Errorf("seed %d: method %q hash differs after print→reparse", seed, m.Name)
			}
		}
	}
}

// TestMethodInterning: content-identical methods of different programs
// resolve to the same canonical form pointer (the process-global
// intern table), and different contents to different pointers.
func TestMethodInterning(t *testing.T) {
	p0 := twoMethodProgram(t, 0)
	p1 := twoMethodProgram(t, 1)
	f0, _ := p0.MethodIndex("f")
	f1, _ := p1.MethodIndex("f")
	if p0.MethodCanon(f0) != p1.MethodCanon(f1) {
		t.Error("identical methods interned to different canonical forms")
	}
	if p0.MethodCanon(p0.MainIndex) == p1.MethodCanon(p1.MainIndex) {
		t.Error("different methods interned to the same canonical form")
	}
	canon := p0.MethodCanon(f0)
	if canon.NumLabels != len(p0.MethodSubtreeLabels(f0)) {
		t.Errorf("canonical NumLabels %d != subtree label count %d",
			canon.NumLabels, len(p0.MethodSubtreeLabels(f0)))
	}
}

// TestMethodHashClockedDistinctions: the canonical encoding must
// separate the clock constructs the phase analysis keys on — an
// unclocked async vs a clocked one over the same body, and an advance
// (next) at different positions relative to a spawn. Conflating any of
// these would let the summary cache and delta solver reuse values
// across programs with different phase structure.
func TestMethodHashClockedDistinctions(t *testing.T) {
	parse := func(src string) *syntax.Program {
		p, err := parser.Parse(src)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		return p
	}
	variants := map[string]*syntax.Program{
		"plain async": parse(`
array 2;
void main() { A: async { W: a[0] = 1; } D: a[1] = 1; }`),
		"clocked async": parse(`
array 2;
void main() { A: clocked async { W: a[0] = 1; } D: a[1] = 1; }`),
		"advance before spawn": parse(`
array 2;
void main() { N: advance; A: clocked async { W: a[0] = 1; } D: a[1] = 1; }`),
		"advance after spawn": parse(`
array 2;
void main() { A: clocked async { W: a[0] = 1; } N: advance; D: a[1] = 1; }`),
		"advance inside body": parse(`
array 2;
void main() { A: clocked async { N: advance; W: a[0] = 1; } D: a[1] = 1; }`),
	}
	hashes := map[syntax.ProgramHash]string{}
	for name, p := range variants {
		h := p.MethodHash(p.MainIndex)
		if prev, dup := hashes[h]; dup {
			t.Errorf("%q and %q share a method hash despite different clock structure", prev, name)
		}
		hashes[h] = name
	}
}

// TestMethodHashClockedRenumberingInvariance: clocked constructs keep
// the hash invariants the clock-free calculus has — rebuilding with
// fresh label indices and reprinting/reparsing preserve every method
// hash, and content-identical clocked methods intern to one canonical
// form.
func TestMethodHashClockedRenumberingInvariance(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		p := progen.Generate(seed, progen.ClockedFinite())
		clone := progen.Clone(p)
		reparsed, err := parser.Parse(syntax.Print(p))
		if err != nil {
			t.Fatalf("seed %d: reparse: %v", seed, err)
		}
		for mi, m := range p.Methods {
			ci, ok := clone.MethodIndex(m.Name)
			if !ok {
				t.Fatalf("seed %d: clone lost method %q", seed, m.Name)
			}
			if p.MethodHash(mi) != clone.MethodHash(ci) {
				t.Errorf("seed %d: clocked method %q hash differs after clone", seed, m.Name)
			}
			if p.MethodCanon(mi) != clone.MethodCanon(ci) {
				t.Errorf("seed %d: clocked method %q canonical form not shared with clone", seed, m.Name)
			}
			ri, ok := reparsed.MethodIndex(m.Name)
			if !ok {
				t.Fatalf("seed %d: reparse lost method %q", seed, m.Name)
			}
			if p.MethodHash(mi) != reparsed.MethodHash(ri) {
				t.Errorf("seed %d: clocked method %q hash differs after print→reparse", seed, m.Name)
			}
		}
	}
}

// TestProgramHashMemoized: Program.Hash is stable across calls and
// distinguishes different programs.
func TestProgramHashMemoized(t *testing.T) {
	p0 := twoMethodProgram(t, 0)
	p1 := twoMethodProgram(t, 1)
	if p0.Hash() != p0.Hash() {
		t.Error("Hash not stable across calls")
	}
	if p0.Hash() == p1.Hash() {
		t.Error("different programs share a program hash")
	}
	if progen.Clone(p0).Hash() != p0.Hash() {
		t.Error("structurally identical clone has a different program hash")
	}
}

// TestPrintReparseRoundTrip is the printer/parser round-trip property
// over a seeded progen corpus: reparsing a printed program must
// reproduce the same text, the same method set, and the same
// per-method content hashes. Label indices are allowed to differ (the
// parser numbers containers before bodies; the generator does not) —
// the display names and structure are what round-trips.
func TestPrintReparseRoundTrip(t *testing.T) {
	configs := []progen.Config{progen.Default(), progen.Finite()}
	for seed := int64(0); seed < 100; seed++ {
		p := progen.Generate(seed, configs[seed%2])
		text := syntax.Print(p)
		q, err := parser.Parse(text)
		if err != nil {
			t.Fatalf("seed %d: reparse failed: %v\n%s", seed, err, text)
		}
		if got := syntax.Print(q); got != text {
			t.Fatalf("seed %d: print→reparse→print not a fixpoint\nfirst:\n%s\nsecond:\n%s", seed, text, got)
		}
		if len(q.Methods) != len(p.Methods) {
			t.Fatalf("seed %d: method count %d → %d", seed, len(p.Methods), len(q.Methods))
		}
		names := map[string]bool{}
		for _, li := range p.Labels {
			names[li.Name] = true
		}
		for _, li := range q.Labels {
			if !names[li.Name] {
				t.Fatalf("seed %d: reparse invented label name %q", seed, li.Name)
			}
			delete(names, li.Name)
		}
		for name := range names {
			t.Fatalf("seed %d: reparse lost label name %q", seed, name)
		}
		for mi, m := range p.Methods {
			qi, ok := q.MethodIndex(m.Name)
			if !ok {
				t.Fatalf("seed %d: reparse lost method %q", seed, m.Name)
			}
			if p.MethodHash(mi) != q.MethodHash(qi) {
				t.Fatalf("seed %d: method %q content hash changed across round-trip", seed, m.Name)
			}
		}
	}
}
