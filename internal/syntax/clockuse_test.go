package syntax

import (
	"errors"
	"testing"
)

func clockProgram(t *testing.T, build func(b *Builder) *Stmt) *Program {
	t.Helper()
	b := NewBuilder(4)
	b.MustAddMethod("main", build(b))
	p, err := b.Program()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCheckClockUseRejectsUnclockedAsync(t *testing.T) {
	p := clockProgram(t, func(b *Builder) *Stmt {
		return b.Stmts(
			b.Async("A", b.Stmts(b.Next("N"))),
			b.Next("M"),
		)
	})
	err := CheckClockUse(p)
	var ce *ClockUseError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *ClockUseError", err)
	}
	if ce.Label != "N" || ce.Async != "A" || ce.Method != "main" {
		t.Errorf("error fields = %+v", ce)
	}
}

func TestCheckClockUseAccepts(t *testing.T) {
	cases := []struct {
		name  string
		build func(b *Builder) *Stmt
	}{
		{"next in main activity", func(b *Builder) *Stmt {
			return b.Stmts(b.Next("N"))
		}},
		{"next in clocked async", func(b *Builder) *Stmt {
			return b.Stmts(b.ClockedAsync("C", b.Stmts(b.Next("N"))), b.Next("M"))
		}},
		// The child of a clocked async is registered regardless of its
		// spawner, so clocked-inside-unclocked is legal.
		{"clocked async nested in unclocked async", func(b *Builder) *Stmt {
			return b.Stmts(
				b.Async("A", b.Stmts(
					b.ClockedAsync("C", b.Stmts(b.Next("N"))),
				)),
				b.Next("M"),
			)
		}},
		{"next under finish in clocked async", func(b *Builder) *Stmt {
			return b.Stmts(
				b.ClockedAsync("C", b.Stmts(
					b.Finish("F", b.Stmts(b.Skip(""))),
					b.Next("N"),
				)),
				b.Next("M"),
			)
		}},
	}
	for _, tc := range cases {
		p := clockProgram(t, tc.build)
		if err := CheckClockUse(p); err != nil {
			t.Errorf("%s: CheckClockUse = %v, want nil", tc.name, err)
		}
	}
}

// Validate stays permissive: a next inside an unclocked async is
// structurally well-formed (the interpreter tests rely on building
// it), only CheckClockUse flags it.
func TestValidateDoesNotEnforceClockUse(t *testing.T) {
	p := clockProgram(t, func(b *Builder) *Stmt {
		return b.Stmts(b.Async("A", b.Stmts(b.Next("N"))))
	})
	if err := Validate(p); err != nil {
		t.Fatalf("Validate = %v, want nil", err)
	}
}

func TestUsesClocks(t *testing.T) {
	cases := []struct {
		name  string
		build func(b *Builder) *Stmt
		want  bool
	}{
		{"plain", func(b *Builder) *Stmt {
			return b.Stmts(b.Async("A", b.Stmts(b.Skip(""))), b.Skip(""))
		}, false},
		{"next", func(b *Builder) *Stmt {
			return b.Stmts(b.Next("N"))
		}, true},
		{"clocked async only", func(b *Builder) *Stmt {
			return b.Stmts(b.ClockedAsync("C", b.Stmts(b.Skip(""))))
		}, true},
	}
	for _, tc := range cases {
		p := clockProgram(t, tc.build)
		if got := p.UsesClocks(); got != tc.want {
			t.Errorf("%s: UsesClocks = %v, want %v", tc.name, got, tc.want)
		}
	}
}
