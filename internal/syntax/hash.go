package syntax

import (
	"crypto/sha256"
	"encoding/binary"
	"sync"
)

// Content hashing: the incremental pipeline (internal/engine's
// AnalyzeDelta, internal/constraints' SolveDelta) needs to decide
// which methods of an edited program still mean what they meant in a
// base program. Labels cannot answer that — they are dense
// program-global indices, so inserting one instruction shifts the
// labels of every later method. Instead each method gets a content
// hash over a canonical encoding of its call-graph subtree:
//
//   - instruction structure (kinds, array indices, expressions,
//     places, clockedness) in pre-order, with labels numbered
//     method-subtree-locally in traversal order, so the hash is
//     invariant under global relabeling, label renaming, and edits to
//     unrelated methods;
//   - call sites encode the ordinal of the callee within the subtree
//     traversal (not its name), and callee bodies are encoded
//     breadth-first after the referencing body, so the hash covers
//     the full transitive callee content and recursion terminates
//     (a revisited method contributes only its ordinal).
//
// Two methods with equal hashes therefore have structurally
// isomorphic subtrees, and the context-sensitive analysis — whose
// per-method results depend only on the method's subtree — assigns
// them identical values up to the label renumbering given by
// MethodSubtreeLabels. That is the invariant both cache tiers and the
// delta solver rest on.

// ProgramHash is a content hash (sha256).
type ProgramHash = [sha256.Size]byte

// hashMemo holds the lazily computed content hashes of a Program.
// Programs are immutable once built (builder/parser construct, then
// Validate), so computing once under sync.Once is safe for the
// concurrent readers the engine cache fans out to.
type hashMemo struct {
	progOnce sync.Once
	prog     ProgramHash

	methodOnce sync.Once
	methods    []ProgramHash
	canon      []*CanonicalMethod
}

// Hash returns the program's content hash: sha256 of the canonical
// printed form (which round-trips through the parser). It is computed
// once and memoized, so cache keying does not re-walk the AST on
// every lookup.
func (p *Program) Hash() ProgramHash {
	p.hashes.progOnce.Do(func() {
		p.hashes.prog = sha256.Sum256([]byte(Print(p)))
	})
	return p.hashes.prog
}

// MethodHash returns the content hash of method mi's call-graph
// subtree (see the package comment above). Hashes for all methods are
// computed on first use and memoized.
func (p *Program) MethodHash(mi int) ProgramHash {
	p.computeMethodHashes()
	return p.hashes.methods[mi]
}

// MethodHashes returns the content hashes of every method, indexed
// like Methods. The returned slice is shared; do not mutate.
func (p *Program) MethodHashes() []ProgramHash {
	p.computeMethodHashes()
	return p.hashes.methods
}

// CanonicalMethod is the interned canonical form of a method subtree:
// programs with content-identical methods share one CanonicalMethod
// value (pointer equality ⇔ content equality). NumLabels is the
// number of instructions in the subtree — the size of the canonical
// label universe MethodSubtreeLabels enumerates.
type CanonicalMethod struct {
	Hash      ProgramHash
	Encoding  []byte // canonical subtree encoding the hash is over
	NumLabels int    // instructions (= labels) in the subtree
	Methods   int    // methods in the subtree, including the root
}

// internTable maps method content hashes to their shared canonical
// form, across all programs in the process.
var internTable sync.Map // ProgramHash → *CanonicalMethod

// MethodCanon returns the interned canonical form of method mi.
// Identical methods — within one program or across programs — return
// the same pointer.
func (p *Program) MethodCanon(mi int) *CanonicalMethod {
	p.computeMethodHashes()
	return p.hashes.canon[mi]
}

func (p *Program) computeMethodHashes() {
	p.hashes.methodOnce.Do(func() {
		hs := make([]ProgramHash, len(p.Methods))
		cs := make([]*CanonicalMethod, len(p.Methods))
		for mi := range p.Methods {
			enc, nLabels, nMethods := p.encodeSubtree(mi, nil)
			cm := &CanonicalMethod{
				Hash:      sha256.Sum256(enc),
				Encoding:  enc,
				NumLabels: nLabels,
				Methods:   nMethods,
			}
			if shared, loaded := internTable.LoadOrStore(cm.Hash, cm); loaded {
				cm = shared.(*CanonicalMethod)
			}
			hs[mi] = cm.Hash
			cs[mi] = cm
		}
		p.hashes.methods = hs
		p.hashes.canon = cs
	})
}

// MethodSubtreeLabels enumerates the labels of method mi's call-graph
// subtree in canonical order: methods breadth-first from mi in order
// of first reference, each body in pre-order. Position k in the
// result is canonical label k of the subtree — the numbering the
// canonical encoding (and hence the hash) is written in, which is how
// engine-level summary caching translates between content-identical
// methods of different programs.
func (p *Program) MethodSubtreeLabels(mi int) []Label {
	var out []Label
	p.encodeSubtree(mi, &out)
	return out
}

// encodeSubtree produces the canonical encoding of method mi's
// subtree and, when labels is non-nil, appends the subtree's labels
// in canonical order.
func (p *Program) encodeSubtree(mi int, labels *[]Label) (enc []byte, nLabels, nMethods int) {
	ord := map[int]int{mi: 0}
	queue := []int{mi}
	var buf []byte
	for qi := 0; qi < len(queue); qi++ {
		m := p.Methods[queue[qi]]
		buf = encodeStmt(buf, m.Body, ord, &queue, labels, &nLabels)
		buf = append(buf, '|')
	}
	return buf, nLabels, len(queue)
}

func encodeStmt(buf []byte, s *Stmt, ord map[int]int, queue *[]int, labels *[]Label, nLabels *int) []byte {
	for cur := s; cur != nil; cur = cur.Next {
		if labels != nil {
			*labels = append(*labels, cur.Instr.Label())
		}
		*nLabels++
		switch i := cur.Instr.(type) {
		case *Skip:
			buf = append(buf, 'K')
		case *Next:
			buf = append(buf, 'N')
		case *Assign:
			buf = append(buf, 'A')
			buf = binary.AppendUvarint(buf, uint64(i.D))
			switch e := i.Rhs.(type) {
			case Const:
				buf = append(buf, '#')
				buf = binary.AppendVarint(buf, e.C)
			case Plus:
				buf = append(buf, '+')
				buf = binary.AppendUvarint(buf, uint64(e.D))
			}
		case *While:
			buf = append(buf, 'W')
			buf = binary.AppendUvarint(buf, uint64(i.D))
			buf = append(buf, '(')
			buf = encodeStmt(buf, i.Body, ord, queue, labels, nLabels)
			buf = append(buf, ')')
		case *Async:
			buf = append(buf, 'Y')
			buf = binary.AppendVarint(buf, int64(i.Place))
			if i.Clocked {
				buf = append(buf, 'c')
			}
			buf = append(buf, '(')
			buf = encodeStmt(buf, i.Body, ord, queue, labels, nLabels)
			buf = append(buf, ')')
		case *Finish:
			buf = append(buf, 'F')
			buf = append(buf, '(')
			buf = encodeStmt(buf, i.Body, ord, queue, labels, nLabels)
			buf = append(buf, ')')
		case *Call:
			o, ok := ord[i.Method]
			if !ok {
				o = len(ord)
				ord[i.Method] = o
				*queue = append(*queue, i.Method)
			}
			buf = append(buf, 'C')
			buf = binary.AppendUvarint(buf, uint64(o))
		}
	}
	return buf
}
