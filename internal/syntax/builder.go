package syntax

import "fmt"

// Builder constructs Programs programmatically, allocating labels as
// instructions are created. It is used by the parser, the random
// program generator, the X10 front end's lowering, and tests.
//
// Typical use:
//
//	b := syntax.NewBuilder(8)
//	body := b.Stmts(
//		b.Finish("S1", b.Stmts(
//			b.Async("S3", b.Stmts(b.Skip(""))),
//			b.Call("", "f"),
//		)),
//		b.Skip("S2"),
//	)
//	b.AddMethod("main", body)
//	b.AddMethod("f", ...)
//	p, err := b.Program()
type Builder struct {
	arrayLen int
	labels   []LabelInfo
	methods  []*Method
	byName   map[string]int
	auto     int
}

// NewBuilder returns a builder for a program whose array has the given
// length (the paper's n > 0).
func NewBuilder(arrayLen int) *Builder {
	return &Builder{arrayLen: arrayLen, byName: map[string]int{}}
}

// newLabel allocates a label. An empty name gets an auto-generated
// display name "L<k>".
func (b *Builder) newLabel(name string, kind Kind) Label {
	if name == "" {
		name = fmt.Sprintf("L%d", b.auto)
		b.auto++
	}
	l := Label(len(b.labels))
	b.labels = append(b.labels, LabelInfo{Name: name, Kind: kind, Method: -1, AsyncBody: NoLabel})
	return l
}

func (b *Builder) setInstr(l Label, i Instr) Instr {
	b.labels[l].Instr = i
	return i
}

// Skip creates skip^l. A empty name auto-generates one.
func (b *Builder) Skip(name string) Instr {
	l := b.newLabel(name, KindSkip)
	return b.setInstr(l, &Skip{L: l})
}

// Assign creates a[d] =^l e;.
func (b *Builder) Assign(name string, d int, e Expr) Instr {
	l := b.newLabel(name, KindAssign)
	return b.setInstr(l, &Assign{L: l, D: d, Rhs: e})
}

// While creates while^l (a[d] != 0) body.
func (b *Builder) While(name string, d int, body *Stmt) Instr {
	l := b.newLabel(name, KindWhile)
	return b.setInstr(l, &While{L: l, D: d, Body: body})
}

// Async creates async^l body at the spawning place.
func (b *Builder) Async(name string, body *Stmt) Instr {
	l := b.newLabel(name, KindAsync)
	return b.setInstr(l, &Async{L: l, Body: body})
}

// AsyncAt creates async^l body at the given relative place (the
// Section 8 places extension).
func (b *Builder) AsyncAt(name string, place int, body *Stmt) Instr {
	l := b.newLabel(name, KindAsync)
	return b.setInstr(l, &Async{L: l, Body: body, Place: place})
}

// ClockedAsync creates clocked async^l body: the spawned activity is
// registered on the implicit clock (Section 8 clocks extension).
func (b *Builder) ClockedAsync(name string, body *Stmt) Instr {
	l := b.newLabel(name, KindAsync)
	return b.setInstr(l, &Async{L: l, Body: body, Clocked: true})
}

// Next creates next^l, the clock barrier (Section 8 clocks
// extension).
func (b *Builder) Next(name string) Instr {
	l := b.newLabel(name, KindNext)
	return b.setInstr(l, &Next{L: l})
}

// Finish creates finish^l body.
func (b *Builder) Finish(name string, body *Stmt) Instr {
	l := b.newLabel(name, KindFinish)
	return b.setInstr(l, &Finish{L: l, Body: body})
}

// Call creates callee()^l. The callee is resolved by name when
// Program is called, so forward and mutually recursive references are
// fine.
func (b *Builder) Call(name, callee string) Instr {
	l := b.newLabel(name, KindCall)
	return b.setInstr(l, &Call{L: l, Name: callee, Method: -1})
}

// Stmts chains instructions into a statement sequence. It panics on an
// empty argument list: FX10 statements are non-empty.
func (b *Builder) Stmts(instrs ...Instr) *Stmt {
	if len(instrs) == 0 {
		panic("syntax: empty statement sequence")
	}
	var head, tail *Stmt
	for _, i := range instrs {
		n := &Stmt{Instr: i}
		if head == nil {
			head = n
		} else {
			tail.Next = n
		}
		tail = n
	}
	return head
}

// AddMethod registers a method. Method bodies may reference methods
// added later.
func (b *Builder) AddMethod(name string, body *Stmt) error {
	if _, dup := b.byName[name]; dup {
		return fmt.Errorf("syntax: duplicate method %q", name)
	}
	b.byName[name] = len(b.methods)
	b.methods = append(b.methods, &Method{Name: name, Body: body})
	return nil
}

// MustAddMethod is AddMethod that panics on error, for tests and
// generators.
func (b *Builder) MustAddMethod(name string, body *Stmt) {
	if err := b.AddMethod(name, body); err != nil {
		panic(err)
	}
}

// Program finalizes the builder: it resolves call targets, assigns
// enclosing-method and enclosing-async metadata to every label, and
// validates the result. The builder must not be reused afterwards.
func (b *Builder) Program() (*Program, error) {
	p := &Program{
		Methods:   b.methods,
		MainIndex: -1,
		ArrayLen:  b.arrayLen,
		Labels:    b.labels,
		byName:    b.byName,
	}
	if i, ok := b.byName["main"]; ok {
		p.MainIndex = i
	}
	// Resolve calls and annotate labels.
	for mi, m := range p.Methods {
		if err := b.annotate(p, m.Body, mi, NoLabel); err != nil {
			return nil, fmt.Errorf("in method %q: %w", m.Name, err)
		}
	}
	if err := Validate(p); err != nil {
		return nil, err
	}
	return p, nil
}

// MustProgram is Program that panics on error.
func (b *Builder) MustProgram() *Program {
	p, err := b.Program()
	if err != nil {
		panic(err)
	}
	return p
}

func (b *Builder) annotate(p *Program, s *Stmt, method int, asyncBody Label) error {
	for cur := s; cur != nil; cur = cur.Next {
		l := cur.Instr.Label()
		if l < 0 || int(l) >= len(p.Labels) {
			return fmt.Errorf("instruction with foreign label %d", int(l))
		}
		info := &p.Labels[l]
		if info.Method != -1 {
			return fmt.Errorf("label %s used by more than one instruction position", info.Name)
		}
		info.Method = method
		info.AsyncBody = asyncBody
		switch i := cur.Instr.(type) {
		case *Call:
			t, ok := p.byName[i.Name]
			if !ok {
				return fmt.Errorf("call to undefined method %q", i.Name)
			}
			i.Method = t
		case *Async:
			if err := b.annotate(p, i.Body, method, l); err != nil {
				return err
			}
		case *While:
			if err := b.annotate(p, i.Body, method, asyncBody); err != nil {
				return err
			}
		case *Finish:
			if err := b.annotate(p, i.Body, method, asyncBody); err != nil {
				return err
			}
		}
	}
	return nil
}
