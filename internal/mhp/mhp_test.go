package mhp

import (
	"bytes"
	"encoding/json"
	"testing"

	"fx10/internal/constraints"
	"fx10/internal/fixtures"
	"fx10/internal/parser"
	"fx10/internal/progen"
	"fx10/internal/syntax"
)

func label(t *testing.T, p *syntax.Program, name string) syntax.Label {
	t.Helper()
	l, ok := p.LabelByName(name)
	if !ok {
		t.Fatalf("label %s missing", name)
	}
	return l
}

func TestAnalyzeExample22Queries(t *testing.T) {
	p := fixtures.Example22()
	r := MustAnalyze(p, constraints.ContextSensitive)
	s3 := label(t, p, "S3")
	s4 := label(t, p, "S4")
	s5 := label(t, p, "S5")
	if !r.MayHappenInParallel(s5, s3) || !r.MayHappenInParallel(s3, s5) {
		t.Fatalf("missing (S5,S3)")
	}
	if r.MayHappenInParallel(s3, s4) {
		t.Fatalf("spurious (S3,S4)")
	}
	with := r.ParallelWith(s5)
	if len(with) != 3 { // S3, A4, S4
		t.Fatalf("ParallelWith(S5) = %v, want 3 labels", with)
	}
}

func TestAsyncBodyPairsExample22(t *testing.T) {
	p := fixtures.Example22()
	r := MustAnalyze(p, constraints.ContextSensitive)
	pairs := r.AsyncBodyPairs()
	// Expected async-body pairs: (A3,A5) via S3↔S5 — different
	// methods; (A4,A5) via S4/A4↔S5 — different methods.
	if len(pairs) != 2 {
		t.Fatalf("pairs = %v, want 2", pairs)
	}
	counts := CountPairs(pairs)
	if counts.Total != 2 || counts.Diff != 2 || counts.Self != 0 || counts.Same != 0 {
		t.Fatalf("counts = %+v", counts)
	}
	for _, pr := range pairs {
		if pr.A > pr.B {
			t.Fatalf("pair not ordered: %v", pr)
		}
	}
}

func TestAsyncBodyCategorySelfAndSame(t *testing.T) {
	p := parser.MustParse(`
array 2;
void main() {
  W: while (a[0] != 0) {
    B1: async { S1: skip; }
    B2: async { S2: skip; }
  }
}
`)
	r := MustAnalyze(p, constraints.ContextSensitive)
	counts := CountPairs(r.AsyncBodyPairs())
	// (B1,B1) and (B2,B2) self via loop; (B1,B2) same-method.
	if counts.Self != 2 || counts.Same != 1 || counts.Diff != 0 || counts.Total != 3 {
		t.Fatalf("counts = %+v, pairs = %v", counts, r.AsyncBodyPairs())
	}
}

func TestAsyncBodyCategoryDiff(t *testing.T) {
	// The paper's "same → diff" refactoring: moving the loop async
	// into a called method turns a same pair into a diff pair.
	p := parser.MustParse(`
array 2;
void spawn() { B1: async { S1: skip; } }
void main() {
  W: while (a[0] != 0) {
    spawn();
    B2: async { S2: skip; }
  }
}
`)
	r := MustAnalyze(p, constraints.ContextSensitive)
	counts := CountPairs(r.AsyncBodyPairs())
	if counts.Diff != 1 || counts.Self != 2 || counts.Same != 0 {
		t.Fatalf("counts = %+v, pairs = %v", counts, r.AsyncBodyPairs())
	}
}

func TestFinishSuppressesAsyncPairs(t *testing.T) {
	p := parser.MustParse(`
array 2;
void main() {
  W: while (a[0] != 0) {
    F: finish {
      B1: async { S1: skip; }
    }
  }
}
`)
	r := MustAnalyze(p, constraints.ContextSensitive)
	if got := r.AsyncBodyPairs(); len(got) != 0 {
		t.Fatalf("finish-wrapped loop async should yield no pairs, got %v", got)
	}
}

func TestRaceCandidates(t *testing.T) {
	p := parser.MustParse(`
array 4;
void main() {
  B1: async { W1: a[0] = 1; }
  B2: async { W2: a[0] = 2; }
  R1: a[1] = a[0] + 1;
  S:  a[2] = 3;
}
`)
	r := MustAnalyze(p, constraints.ContextSensitive)
	races := r.RaceCandidates()
	type key struct {
		a, b  string
		idx   int
		write bool
	}
	got := map[key]bool{}
	for _, rc := range races {
		got[key{p.LabelName(rc.L1), p.LabelName(rc.L2), rc.Index, rc.WriteWrite}] = true
	}
	if !got[key{"W1", "W2", 0, true}] {
		t.Fatalf("missing W1/W2 write-write race on a[0]: %v", races)
	}
	if !got[key{"W1", "R1", 0, false}] || !got[key{"W2", "R1", 0, false}] {
		t.Fatalf("missing write-read races on a[0]: %v", races)
	}
	// No race on index 2 (S doesn't pair with itself and no one else
	// touches a[2]) and none involving only reads.
	for k := range got {
		if k.idx == 2 {
			t.Fatalf("spurious race on a[2]: %v", races)
		}
	}
}

func TestRaceCandidatesSynchronizedByFinish(t *testing.T) {
	p := parser.MustParse(`
array 2;
void main() {
  F: finish {
    B1: async { W1: a[0] = 1; }
  }
  R1: a[1] = a[0] + 1;
}
`)
	r := MustAnalyze(p, constraints.ContextSensitive)
	if races := r.RaceCandidates(); len(races) != 0 {
		t.Fatalf("finish-synchronized program reported races: %v", races)
	}
}

func TestWhileGuardParticipatesInRaces(t *testing.T) {
	p := parser.MustParse(`
array 2;
void main() {
  B: async { W1: a[0] = 0; }
  L: while (a[0] != 0) { skip; }
}
`)
	r := MustAnalyze(p, constraints.ContextSensitive)
	races := r.RaceCandidates()
	found := false
	for _, rc := range races {
		if p.LabelName(rc.L1) == "W1" && p.LabelName(rc.L2) == "L" && rc.Index == 0 && !rc.WriteWrite {
			found = true
		}
		if p.LabelName(rc.L2) == "W1" && p.LabelName(rc.L1) == "L" && rc.Index == 0 && !rc.WriteWrite {
			found = true
		}
	}
	if !found {
		t.Fatalf("guard read race not reported: %v", races)
	}
}

func TestCheckFalsePositivesCleanProgram(t *testing.T) {
	p := fixtures.Example22()
	r := MustAnalyze(p, constraints.ContextSensitive)
	rep := r.CheckFalsePositives(nil, 1_000_000)
	if !rep.Complete {
		t.Fatalf("exploration incomplete")
	}
	if !rep.SoundnessHolds {
		t.Fatalf("soundness violated")
	}
	if len(rep.FalsePositives) != 0 {
		t.Fatalf("false positives on example 2.2: %v", rep.FalsePositives)
	}
	if len(rep.ExactPairs) != len(rep.InferredPairs) {
		t.Fatalf("exact %v vs inferred %v", rep.ExactPairs, rep.InferredPairs)
	}
}

func TestCheckFalsePositivesDeadLoop(t *testing.T) {
	// The paper's Section 8 pattern: a never-executed loop makes the
	// analysis report a pair that never happens.
	p := parser.MustParse(`
array 2;
void main() {
  W: while (a[0] != 0) {
    B1: async { S1: skip; }
  }
  B2: async { S2: skip; }
}
`)
	r := MustAnalyze(p, constraints.ContextSensitive)
	rep := r.CheckFalsePositives(nil, 1_000_000)
	if !rep.Complete || !rep.SoundnessHolds {
		t.Fatalf("exploration incomplete or unsound")
	}
	// Both (B1,B1) — the two-iteration assumption — and (B1,B2) are
	// false positives here.
	want := map[[2]string]bool{{"B1", "B1"}: false, {"B1", "B2"}: false}
	for _, fp := range rep.FalsePositives {
		k := [2]string{p.LabelName(fp.A), p.LabelName(fp.B)}
		if _, ok := want[k]; !ok {
			t.Fatalf("unexpected false positive %v", k)
		}
		want[k] = true
	}
	for k, seen := range want {
		if !seen {
			t.Fatalf("expected false positive %v not reported (got %v)", k, rep.FalsePositives)
		}
	}
}

func TestContextInsensitiveMoreAsyncPairs(t *testing.T) {
	p := fixtures.Example22()
	cs := MustAnalyze(p, constraints.ContextSensitive)
	ci := MustAnalyze(p, constraints.ContextInsensitive)
	if len(ci.AsyncBodyPairs()) < len(cs.AsyncBodyPairs()) {
		t.Fatalf("CI reported fewer async pairs than CS")
	}
	// On this example CI adds the (A3,A4) pair through the S3/S4
	// false positive.
	a3 := label(t, p, "A3")
	a4 := label(t, p, "A4")
	foundCI := false
	for _, pr := range ci.AsyncBodyPairs() {
		if pr.A == a3 && pr.B == a4 {
			foundCI = true
		}
	}
	if !foundCI {
		t.Fatalf("CI missing (A3,A4): %v", ci.AsyncBodyPairs())
	}
	for _, pr := range cs.AsyncBodyPairs() {
		if pr.A == a3 && pr.B == a4 {
			t.Fatalf("CS has spurious (A3,A4)")
		}
	}
}

func TestCategoryString(t *testing.T) {
	if Self.String() != "self" || Same.String() != "same" || Diff.String() != "diff" {
		t.Fatalf("category strings wrong")
	}
	if Category(9).String() != "?" {
		t.Fatalf("unknown category string")
	}
}

func TestReportJSON(t *testing.T) {
	p := fixtures.Example22()
	r := MustAnalyze(p, constraints.ContextSensitive)
	rep := r.Report()
	if rep.Mode != "context-sensitive" || rep.Methods != 2 || rep.Labels != p.NumLabels() {
		t.Fatalf("header wrong: %+v", rep)
	}
	if len(rep.Pairs) != 5 {
		t.Fatalf("pairs = %d, want 5", len(rep.Pairs))
	}
	if rep.PairCounts.Total != 2 || len(rep.AsyncPairs) != 2 {
		t.Fatalf("async pairs wrong: %+v", rep.PairCounts)
	}
	var fSummary *SummaryJ
	for i := range rep.Summaries {
		if rep.Summaries[i].Method == "f" {
			fSummary = &rep.Summaries[i]
		}
	}
	if fSummary == nil || len(fSummary.Outlives) != 1 || fSummary.Outlives[0] != "S5" {
		t.Fatalf("f summary wrong: %+v", fSummary)
	}

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var decoded Report
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if decoded.Constraints.Slabels == 0 || decoded.Iterations.Level1 == 0 {
		t.Fatalf("decoded metrics empty: %+v", decoded)
	}
}

func TestReportWithoutCachedEnv(t *testing.T) {
	p := fixtures.Example22()
	full := MustAnalyze(p, constraints.ContextSensitive)
	bare := &Result{Program: full.Program, Info: full.Info, Sys: full.Sys, Sol: full.Sol, M: full.M}
	rep := bare.Report()
	if len(rep.Summaries) != 2 {
		t.Fatalf("summaries = %d", len(rep.Summaries))
	}
}

// TestAnalyzeDelta: the mhp-level incremental wrapper must match a
// from-scratch analysis of the edited program and report reuse.
func TestAnalyzeDelta(t *testing.T) {
	p := fixtures.Example22()
	base := MustAnalyze(p, constraints.ContextSensitive)
	fi, _ := p.MethodIndex("f")
	edited := progen.AppendSkip(p, fi)
	delta, stats, err := AnalyzeDelta(base, edited)
	if err != nil {
		t.Fatal(err)
	}
	scratch := MustAnalyze(edited, constraints.ContextSensitive)
	if !delta.M.Equal(scratch.M) {
		t.Fatal("incremental M differs from scratch")
	}
	if !delta.Sol.ValuationEqual(scratch.Sol) {
		t.Fatal("incremental valuation differs from scratch")
	}
	if stats.MethodsTotal != len(edited.Methods) || stats.MethodsReused+stats.MethodsResolved != stats.MethodsTotal {
		t.Fatalf("inconsistent delta stats %+v", stats)
	}
}

// TestCheckFalsePositivesClocked: on a clocked program the exact
// relation comes from the barrier-aware explorer, so the phase-pruned
// analysis must still be sound — the erased explorer would have
// flagged every pruned pair as a soundness violation.
func TestCheckFalsePositivesClocked(t *testing.T) {
	p := parser.MustParse(`
array 8;
void main() {
  L: clocked async {
    WL: a[0] = 1;
    NL: next;
    RL: a[2] = a[1] + 1;
  }
  R: clocked async {
    WR: a[1] = 1;
    NR: next;
    RR: a[3] = a[0] + 1;
  }
  N: next;
  D: a[4] = a[2] + 1;
}
`)
	r := MustAnalyze(p, constraints.ContextSensitive)
	rep := r.CheckFalsePositives(nil, 1_000_000)
	if !rep.Complete {
		t.Fatal("exploration incomplete")
	}
	if !rep.SoundnessHolds {
		t.Error("phase-pruned analysis flagged unsound against the clocked exact relation")
	}
	// The pruning is visible in the relation itself: the cross-phase
	// pair (WL, RR) must be absent from the analysis result.
	wl, _ := p.LabelByName("WL")
	rr, _ := p.LabelByName("RR")
	if r.M.Has(int(wl), int(rr)) {
		t.Error("cross-phase pair (WL, RR) survived the phase pruning")
	}
}
