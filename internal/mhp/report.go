package mhp

import (
	"encoding/hex"
	"encoding/json"
	"io"
	"sort"

	"fx10/internal/syntax"
)

// Report is the machine-readable form of an analysis Result, with
// labels rendered as their display names. It is what
// `fx10 mhp -json` emits and what the analysis service
// (internal/server) returns from /v1/analyze, so downstream tools
// (editors, race triage dashboards) can consume either transport.
//
// The encoding is deterministic: label pairs are sorted by label
// index (A ≤ B within a pair), method summaries follow program
// declaration order, and race candidates are sorted by (L1, L2,
// index). Byte-for-byte stability across runs and solver strategies
// is a contract — golden-file tests and the server's response cache
// both rely on it.
type Report struct {
	ProgramHash string       `json:"programHash"`
	Mode        string       `json:"mode"`
	Methods     int          `json:"methods"`
	Labels      int          `json:"labels"`
	Constraints Constraints  `json:"constraints"`
	Iterations  Iterations   `json:"iterations"`
	Pairs       []LabelPair  `json:"mhpPairs"`
	AsyncPairs  []AsyncPairJ `json:"asyncBodyPairs"`
	PairCounts  PairCounts   `json:"asyncBodyPairCounts"`
	Races       []RaceJ      `json:"raceCandidates"`
	Summaries   []SummaryJ   `json:"methodSummaries"`
	// Clocks is present iff the program uses the Section 8 clock
	// extension (a next/advance or a clocked async): the inferred
	// per-label phases and how many pairs the barrier pruned. Absent
	// for clock-free programs, whose report bytes are unchanged.
	Clocks *ClocksJ `json:"clocks,omitempty"`
}

// ClocksJ reports the static clock-phase analysis: every label's
// abstract phase and the count of unordered label pairs the
// phase-aware solvers pruned from the MHP relation (pairs a
// clock-blind analysis would report).
type ClocksJ struct {
	Phases      []LabelPhaseJ `json:"labelPhases"`
	PrunedPairs int           `json:"prunedPairs"`
}

// LabelPhaseJ is one label's inferred clock phase: a concrete phase
// number, or -1 when the phase is statically unknown (⊤).
type LabelPhaseJ struct {
	Label string `json:"label"`
	Phase int    `json:"phase"`
}

// Constraints reports the Figure 6 constraint counts.
type Constraints struct {
	Slabels int `json:"slabels"`
	Level1  int `json:"level1"`
	Level2  int `json:"level2"`
}

// Iterations reports the solver pass counts.
type Iterations struct {
	Slabels int `json:"slabels"`
	Level1  int `json:"level1"`
	Level2  int `json:"level2"`
}

// LabelPair is one unordered MHP pair (A ≤ B in label order).
type LabelPair struct {
	A string `json:"a"`
	B string `json:"b"`
}

// AsyncPairJ is one async-body pair with its Figure 8 category.
type AsyncPairJ struct {
	A        string `json:"a"`
	B        string `json:"b"`
	Category string `json:"category"`
}

// RaceJ is one race candidate.
type RaceJ struct {
	A          string `json:"a"`
	B          string `json:"b"`
	Index      int    `json:"index"`
	WriteWrite bool   `json:"writeWrite"`
}

// SummaryJ is one method summary (M size and the O label set).
type SummaryJ struct {
	Method   string   `json:"method"`
	MPairs   int      `json:"mPairs"`
	Outlives []string `json:"outlives"`
}

// Report builds the serializable report.
func (r *Result) Report() Report {
	p := r.Program
	name := func(l syntax.Label) string { return p.LabelName(l) }

	hash := p.Hash()
	rep := Report{
		ProgramHash: hex.EncodeToString(hash[:]),
		Mode:        r.Sys.Mode.String(),
		Methods:     len(p.Methods),
		Labels:      p.NumLabels(),
		Iterations: Iterations{
			Slabels: r.Sol.IterSlabels,
			Level1:  r.Sol.IterL1,
			Level2:  r.Sol.IterL2,
		},
	}
	rep.Constraints.Slabels, rep.Constraints.Level1, rep.Constraints.Level2 = r.Sys.Counts()

	// Collect, then sort by label index: Each already iterates rows
	// ascending, but the sort makes byte-stability independent of the
	// pair-set representation.
	var raw [][2]int
	r.M.Each(func(i, j int) {
		if i <= j {
			raw = append(raw, [2]int{i, j})
		}
	})
	sort.Slice(raw, func(a, b int) bool {
		if raw[a][0] != raw[b][0] {
			return raw[a][0] < raw[b][0]
		}
		return raw[a][1] < raw[b][1]
	})
	for _, pr := range raw {
		rep.Pairs = append(rep.Pairs, LabelPair{A: name(syntax.Label(pr[0])), B: name(syntax.Label(pr[1]))})
	}

	asyncPairs := r.AsyncBodyPairs()
	rep.PairCounts = CountPairs(asyncPairs)
	for _, ap := range asyncPairs {
		rep.AsyncPairs = append(rep.AsyncPairs, AsyncPairJ{
			A: name(ap.A), B: name(ap.B), Category: ap.Category.String(),
		})
	}

	for _, rc := range r.RaceCandidates() {
		rep.Races = append(rep.Races, RaceJ{
			A: name(rc.L1), B: name(rc.L2), Index: rc.Index, WriteWrite: rc.WriteWrite,
		})
	}

	if codes := r.Sys.PhaseCode; codes != nil {
		cl := &ClocksJ{}
		for l, c := range codes {
			cl.Phases = append(cl.Phases, LabelPhaseJ{Label: name(syntax.Label(l)), Phase: int(c)})
		}
		r.Sol.ClockPrunedMainPairs().Each(func(i, j int) {
			if i <= j {
				cl.PrunedPairs++
			}
		})
		rep.Clocks = cl
	}

	env := r.Env
	if env == nil { // Result built without the cached environment
		env = r.Sol.Env()
	}
	for mi, m := range p.Methods {
		s := SummaryJ{Method: m.Name, MPairs: env[mi].M.Len()}
		env[mi].O.Each(func(e int) {
			s.Outlives = append(s.Outlives, name(syntax.Label(e)))
		})
		rep.Summaries = append(rep.Summaries, s)
	}
	return rep
}

// WriteJSON writes the report as indented JSON.
func (r *Result) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Report())
}
