// Package mhp is the front door of the may-happen-in-parallel
// analysis: it wires together the Slabels fixpoint, constraint
// generation and solving, and exposes the results the paper reports —
// label-pair queries, the async-body pair classification of Figure 8
// (self / same / diff), race candidates (the analysis's motivating
// client), and false-positive counting against the exact relation.
package mhp

import (
	"sort"

	"fx10/internal/clocks"
	"fx10/internal/constraints"
	"fx10/internal/engine"
	"fx10/internal/explore"
	"fx10/internal/intset"
	"fx10/internal/labels"
	"fx10/internal/syntax"
	"fx10/internal/types"
)

// Result is a completed analysis of one program.
type Result struct {
	Program *syntax.Program
	Info    *labels.Info
	Sys     *constraints.System
	Sol     *constraints.Solution
	// Env is the inferred type environment E with ⊢ p : E.
	Env types.Env
	// M is E(main).M: by Theorem 3, MHP(p) ⊆ M.
	M *intset.PairSet
}

// analyzeEngine serves Analyze. Caching is off: Analyze's contract
// is one fresh pipeline run per call (benchmarks iterate it to
// measure solving); callers that want corpus pooling or cached
// re-analysis use internal/engine directly.
var analyzeEngine = engine.MustNew(engine.Config{CacheSize: -1})

// Analyze runs the full pipeline on p in the given mode. It is a
// thin compatibility wrapper over internal/engine with the default
// (phased) strategy. Pipeline failures are returned, not panicked:
// library callers decide how to surface them.
func Analyze(p *syntax.Program, mode constraints.Mode) (*Result, error) {
	res, err := analyzeEngine.Analyze(engine.Job{Program: p, Mode: mode})
	if err != nil {
		return nil, err
	}
	return FromEngine(res), nil
}

// MustAnalyze is Analyze, panicking on error — for tests, examples
// and benchmarks wired with known-good programs.
func MustAnalyze(p *syntax.Program, mode constraints.Mode) *Result {
	r, err := Analyze(p, mode)
	if err != nil {
		panic(err)
	}
	return r
}

// AnalyzeDelta re-analyzes edited incrementally against base: methods
// whose content hash is unchanged keep their solved values and only
// the dirty call-graph closure is re-solved. The returned Result is
// identical to Analyze(edited, mode) — the least solution is unique —
// and the DeltaStats reports what was reused. The mode is taken from
// the base result's system.
func AnalyzeDelta(base *Result, edited *syntax.Program) (*Result, engine.DeltaStats, error) {
	eres := &engine.Result{
		Program: base.Program,
		Info:    base.Info,
		Sys:     base.Sys,
		Sol:     base.Sol,
		Env:     base.Env,
		M:       base.M,
	}
	res, err := analyzeEngine.AnalyzeDelta(eres, edited)
	if err != nil {
		return nil, engine.DeltaStats{}, err
	}
	var ds engine.DeltaStats
	if res.Stats.Delta != nil {
		ds = *res.Stats.Delta
	}
	return FromEngine(res), ds, nil
}

// FromEngine adapts an engine result to the mhp report API.
func FromEngine(res *engine.Result) *Result {
	return &Result{
		Program: res.Program,
		Info:    res.Info,
		Sys:     res.Sys,
		Sol:     res.Sol,
		Env:     res.Env,
		M:       res.M,
	}
}

// MayHappenInParallel reports whether the analysis says the
// instructions labeled l1 and l2 may happen in parallel.
func (r *Result) MayHappenInParallel(l1, l2 syntax.Label) bool {
	return r.M.Has(int(l1), int(l2))
}

// ParallelWith returns the labels the analysis pairs with l, in label
// order.
func (r *Result) ParallelWith(l syntax.Label) []syntax.Label {
	var out []syntax.Label
	r.M.Row(int(l)).Each(func(e int) { out = append(out, syntax.Label(e)) })
	return out
}

// Category classifies an async-body pair as in Figure 8.
type Category int

const (
	// Self: an async body may happen in parallel with itself
	// (typically an async in a loop without an enclosing finish).
	Self Category = iota
	// Same: two different async bodies in the same method.
	Same
	// Diff: two async bodies in different methods.
	Diff
)

func (c Category) String() string {
	switch c {
	case Self:
		return "self"
	case Same:
		return "same"
	case Diff:
		return "diff"
	}
	return "?"
}

// AsyncPair is one pair of async bodies that may happen in parallel.
// A and B are the labels of the async instructions (A ≤ B).
type AsyncPair struct {
	A, B     syntax.Label
	Category Category
}

// AsyncBodyPairs returns the pairs of async bodies that may happen in
// parallel according to M: bodies A and B pair iff some label of A's
// body may happen in parallel with some label of B's body. Pairs are
// returned in (A, B) label order.
func (r *Result) AsyncBodyPairs() []AsyncPair {
	return asyncBodyPairs(r.Program, r.Info, r.M)
}

// lexicalLabels collects the labels syntactically inside s — unlike
// Slabels it does not follow method calls, so two asyncs calling the
// same helper do not share body labels. This is the body notion the
// pair counts of Figure 8 are about: a pair of async *bodies*.
func lexicalLabels(n int, s *syntax.Stmt) *intset.Set {
	out := intset.New(n)
	s.EachDeep(func(i syntax.Instr) { out.Add(int(i.Label())) })
	return out
}

// asyncBodyPairs is the shared classification core, also used against
// ground-truth relations.
func asyncBodyPairs(p *syntax.Program, in *labels.Info, m *intset.PairSet) []AsyncPair {
	asyncs := p.AsyncLabels()
	bodies := make([]*intset.Set, len(asyncs))
	for i, a := range asyncs {
		bodies[i] = lexicalLabels(p.NumLabels(), syntax.Body(p.Labels[a].Instr))
	}
	var out []AsyncPair
	for i, a := range asyncs {
		for j := i; j < len(asyncs); j++ {
			b := asyncs[j]
			if !crossIntersects(m, bodies[i], bodies[j]) {
				continue
			}
			cat := Diff
			switch {
			case i == j:
				cat = Self
			case p.Labels[a].Method == p.Labels[b].Method:
				cat = Same
			}
			out = append(out, AsyncPair{A: a, B: b, Category: cat})
		}
	}
	return out
}

// crossIntersects reports whether m contains any pair from a × b.
func crossIntersects(m *intset.PairSet, a, b *intset.Set) bool {
	found := false
	a.Each(func(i int) {
		if !found && m.RowIntersects(i, b) {
			found = true
		}
	})
	return found
}

// PairCounts is the Figure 8 pair-count row.
type PairCounts struct {
	Total, Self, Same, Diff int
}

// CountPairs tallies async-body pairs by category.
func CountPairs(pairs []AsyncPair) PairCounts {
	c := PairCounts{Total: len(pairs)}
	for _, p := range pairs {
		switch p.Category {
		case Self:
			c.Self++
		case Same:
			c.Same++
		case Diff:
			c.Diff++
		}
	}
	return c
}

// RaceCandidate is a potential data race: two instructions that may
// happen in parallel and access the same array index, at least one of
// them writing.
type RaceCandidate struct {
	L1, L2     syntax.Label
	Index      int
	WriteWrite bool // both sides write
}

// access describes one instruction's array accesses.
type access struct {
	label  syntax.Label
	reads  []int
	writes []int
}

// RaceCandidates reports the potential data races implied by M, in
// deterministic order. This is the "basis for race detectors" client
// the paper motivates: MHP ∧ same index ∧ a write.
func (r *Result) RaceCandidates() []RaceCandidate {
	var accs []access
	r.Program.EachInstr(func(_ int, i syntax.Instr) {
		switch i := i.(type) {
		case *syntax.Assign:
			a := access{label: i.L, writes: []int{i.D}}
			if plus, ok := i.Rhs.(syntax.Plus); ok {
				a.reads = append(a.reads, plus.D)
			}
			accs = append(accs, a)
		case *syntax.While:
			accs = append(accs, access{label: i.L, reads: []int{i.D}})
		}
	})
	var out []RaceCandidate
	for i := range accs {
		for j := i; j < len(accs); j++ {
			a, b := accs[i], accs[j]
			if !r.M.Has(int(a.label), int(b.label)) {
				continue
			}
			for _, idx := range raceIndices(a, b) {
				out = append(out, RaceCandidate{
					L1: a.label, L2: b.label, Index: idx.index, WriteWrite: idx.ww,
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].L1 != out[j].L1 {
			return out[i].L1 < out[j].L1
		}
		if out[i].L2 != out[j].L2 {
			return out[i].L2 < out[j].L2
		}
		return out[i].Index < out[j].Index
	})
	return out
}

type raceIdx struct {
	index int
	ww    bool
}

// raceIndices returns the indices where a and b conflict (write/write
// or write/read in either direction), deduplicated.
func raceIndices(a, b access) []raceIdx {
	seen := map[int]raceIdx{}
	for _, wa := range a.writes {
		for _, wb := range b.writes {
			if wa == wb {
				seen[wa] = raceIdx{index: wa, ww: true}
			}
		}
		for _, rb := range b.reads {
			if wa == rb {
				if _, ok := seen[wa]; !ok {
					seen[wa] = raceIdx{index: wa}
				}
			}
		}
	}
	for _, wb := range b.writes {
		for _, ra := range a.reads {
			if wb == ra {
				if _, ok := seen[wb]; !ok {
					seen[wb] = raceIdx{index: wb}
				}
			}
		}
	}
	var out []raceIdx
	for _, v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].index < out[j].index })
	return out
}

// FalsePositiveReport compares the analysis against the exact
// relation computed by exhaustive exploration (Section 6's
// methodology).
type FalsePositiveReport struct {
	// Complete is false if exploration ran out of budget; the counts
	// are then upper bounds on precision, not exact.
	Complete bool
	// ExactPairs / InferredPairs are the async-body pair counts under
	// the exact and inferred relations.
	ExactPairs    []AsyncPair
	InferredPairs []AsyncPair
	// FalsePositives are inferred async-body pairs absent from the
	// exact relation.
	FalsePositives []AsyncPair
	// SoundnessHolds reports exact ⊆ inferred on raw label pairs
	// (Theorem 3); false would indicate an implementation bug.
	SoundnessHolds bool
}

// CheckFalsePositives explores up to maxStates states and classifies
// the inferred async-body pairs against the exact relation. Clocked
// programs are explored under the real barrier semantics
// (clocks.Explore): the analysis prunes phase-ordered pairs, so the
// erased exact relation — a strict superset of the clocked one — would
// wrongly flag the pruning as a soundness violation.
func (r *Result) CheckFalsePositives(a0 []int64, maxStates int) FalsePositiveReport {
	var exactM *intset.PairSet
	var complete bool
	if r.Program.UsesClocks() {
		res := clocks.Explore(r.Program, a0, maxStates)
		exactM, complete = res.MHP, res.Complete
	} else {
		res := explore.MHPWithInfo(r.Info, r.Program, a0, maxStates)
		exactM, complete = res.MHP, res.Complete
	}
	rep := FalsePositiveReport{
		Complete:       complete,
		ExactPairs:     asyncBodyPairs(r.Program, r.Info, exactM),
		InferredPairs:  r.AsyncBodyPairs(),
		SoundnessHolds: !complete || exactM.SubsetOf(r.M),
	}
	exact := map[[2]syntax.Label]bool{}
	for _, pr := range rep.ExactPairs {
		exact[[2]syntax.Label{pr.A, pr.B}] = true
	}
	for _, pr := range rep.InferredPairs {
		if !exact[[2]syntax.Label{pr.A, pr.B}] {
			rep.FalsePositives = append(rep.FalsePositives, pr)
		}
	}
	return rep
}
