package mhp_test

import (
	"fmt"
	"sort"

	"fx10/internal/constraints"
	"fx10/internal/mhp"
	"fx10/internal/parser"
	"fx10/internal/syntax"
)

// ExampleAnalyze runs the may-happen-in-parallel analysis on a small
// fork-join program and prints the pairs and race candidates.
func ExampleAnalyze() {
	p := parser.MustParse(`
array 4;
void main() {
  B1: async { W1: a[0] = 1; }
  B2: async { W2: a[0] = 2; }
  R: a[1] = a[0] + 1;
}
`)
	r := mhp.MustAnalyze(p, constraints.ContextSensitive)

	var pairs []string
	r.M.Each(func(i, j int) {
		if i <= j {
			pairs = append(pairs, fmt.Sprintf("(%s,%s)",
				p.LabelName(syntax.Label(i)), p.LabelName(syntax.Label(j))))
		}
	})
	sort.Strings(pairs)
	fmt.Println("pairs:", pairs)

	for _, rc := range r.RaceCandidates() {
		kind := "write/read"
		if rc.WriteWrite {
			kind = "write/write"
		}
		fmt.Printf("race on a[%d]: %s vs %s (%s)\n",
			rc.Index, p.LabelName(rc.L1), p.LabelName(rc.L2), kind)
	}
	// Output:
	// pairs: [(W1,B2) (W1,R) (W1,W2) (W2,R)]
	// race on a[0]: W1 vs W2 (write/write)
	// race on a[0]: W1 vs R (write/read)
	// race on a[0]: W2 vs R (write/read)
}
