package mhp_test

import (
	"fmt"
	"sort"

	"fx10/internal/clocks"
	"fx10/internal/condensed"
	"fx10/internal/frontend"
	"fx10/internal/constraints"
	"fx10/internal/mhp"
	"fx10/internal/parser"
	"fx10/internal/syntax"
)

// ExampleAnalyze runs the may-happen-in-parallel analysis on a small
// fork-join program and prints the pairs and race candidates.
func ExampleAnalyze() {
	p := parser.MustParse(`
array 4;
void main() {
  B1: async { W1: a[0] = 1; }
  B2: async { W2: a[0] = 2; }
  R: a[1] = a[0] + 1;
}
`)
	r := mhp.MustAnalyze(p, constraints.ContextSensitive)

	var pairs []string
	r.M.Each(func(i, j int) {
		if i <= j {
			pairs = append(pairs, fmt.Sprintf("(%s,%s)",
				p.LabelName(syntax.Label(i)), p.LabelName(syntax.Label(j))))
		}
	})
	sort.Strings(pairs)
	fmt.Println("pairs:", pairs)

	for _, rc := range r.RaceCandidates() {
		kind := "write/read"
		if rc.WriteWrite {
			kind = "write/write"
		}
		fmt.Printf("race on a[%d]: %s vs %s (%s)\n",
			rc.Index, p.LabelName(rc.L1), p.LabelName(rc.L2), kind)
	}
	// Output:
	// pairs: [(W1,B2) (W1,R) (W1,W2) (W2,R)]
	// race on a[0]: W1 vs W2 (write/write)
	// race on a[0]: W1 vs R (write/read)
	// race on a[0]: W2 vs R (write/read)
}

// ExampleAnalyze_clocked pairs the clock-aware static verdict with an
// actual run under the barrier semantics: the analysis says the
// phase-0 write and the phase-1 read cannot overlap, and the
// interpreter's observed-parallel pairs agree.
func ExampleAnalyze_clocked() {
	p := parser.MustParse(`
array 4;
void main() {
  C: clocked async {
    W: a[0] = 1;
    NC: next;
    R: a[1] = a[0] + 1;
  }
  N: next;
  D: a[2] = a[0] + 1;
}
`)
	r := mhp.MustAnalyze(p, constraints.ContextSensitive)
	w, _ := p.LabelByName("W")
	d, _ := p.LabelByName("D")
	fmt.Println("static: W ∥ D possible:", r.MayHappenInParallel(w, d))

	res, err := clocks.Run(p, nil, 7, 10_000)
	if err != nil {
		panic(err)
	}
	fmt.Println("observed: W ∥ D seen:", res.Pairs.Has(int(w), int(d)))
	fmt.Println("a[2]:", res.Array[2])
	// Output:
	// static: W ∥ D possible: false
	// observed: W ∥ D seen: false
	// a[2]: 2
}

// ExampleAnalyze_go lowers an ordinary Go program through the
// front-end registry — `go` becomes async, the WaitGroup span becomes
// finish — and analyzes the result exactly like core FX10: the
// condensed form is language-agnostic past the boundary.
func ExampleAnalyze_go() {
	u, stats, err := frontend.Lower("go", "main.go", `
package main

import "sync"

func work() {}
func tally() {}

func main() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	work()
	wg.Wait()
	tally()
}
`)
	if err != nil {
		panic(err)
	}
	p, err := condensed.Lower(u)
	if err != nil {
		panic(err)
	}
	r := mhp.MustAnalyze(p, constraints.ContextSensitive)

	fmt.Printf("coverage: %.2f\n", stats.Coverage())
	var pairs []string
	r.M.Each(func(i, j int) {
		if i <= j {
			pairs = append(pairs, fmt.Sprintf("(%s,%s)",
				p.LabelName(syntax.Label(i)), p.LabelName(syntax.Label(j))))
		}
	})
	sort.Strings(pairs)
	fmt.Println("pairs:", pairs)
	// Output:
	// coverage: 1.00
	// pairs: [(L0,L0) (L0,L2) (L0,L4) (L2,L4)]
}
