package mhp

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"fx10/internal/constraints"
	"fx10/internal/engine"
	"fx10/internal/parser"
)

// The JSON report must be byte-stable: identical across repeated runs
// of the same analysis (the committed golden files pin the exact
// bytes), and identical across solver strategies once the
// strategy-specific iteration counters are masked out (Theorems 5–6:
// every strategy computes the same least solution). The clocked
// program additionally pins the phase section and the pruned-pair
// count, which are reconstructed post hoc from the least solution and
// so must not vary by strategy either.
func TestReportJSONGolden(t *testing.T) {
	cases := []struct {
		name, source, golden string
	}{
		{"fanout", "fanout.fx10", "fanout_report.golden.json"},
		{"phased", "phased.fx10", "phased_report.golden.json"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			src, err := os.ReadFile(filepath.Join("..", "..", "testdata", tc.source))
			if err != nil {
				t.Fatal(err)
			}
			p, err := parser.Parse(string(src))
			if err != nil {
				t.Fatal(err)
			}

			render := func(strategy string) []byte {
				e, err := engine.New(engine.Config{Strategy: strategy, CacheSize: -1})
				if err != nil {
					t.Fatal(err)
				}
				res, err := e.Analyze(engine.Job{Name: tc.name, Program: p, Mode: constraints.ContextSensitive})
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				if err := FromEngine(res).WriteJSON(&buf); err != nil {
					t.Fatal(err)
				}
				return buf.Bytes()
			}

			first := render("")
			for run := 0; run < 3; run++ {
				if again := render(""); !bytes.Equal(first, again) {
					t.Fatalf("run %d: report JSON not byte-stable", run)
				}
			}

			golden := filepath.Join("testdata", tc.golden)
			if os.Getenv("UPDATE_GOLDEN") != "" {
				if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, first, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (run with UPDATE_GOLDEN=1 to regenerate)", err)
			}
			if !bytes.Equal(first, want) {
				t.Errorf("report JSON drifted from golden file %s:\n got: %s\nwant: %s", golden, first, want)
			}

			// Cross-strategy: only the iteration counters may differ.
			maskIters := func(strategy string) Report {
				e, err := engine.New(engine.Config{Strategy: strategy, CacheSize: -1})
				if err != nil {
					t.Fatal(err)
				}
				res, err := e.Analyze(engine.Job{Name: tc.name, Program: p, Mode: constraints.ContextSensitive})
				if err != nil {
					t.Fatal(err)
				}
				rep := FromEngine(res).Report()
				rep.Iterations = Iterations{}
				return rep
			}
			base := jsonMarshal(t, maskIters(""))
			for _, strategy := range engine.Strategies() {
				got := jsonMarshal(t, maskIters(strategy))
				if !bytes.Equal(base, got) {
					t.Errorf("strategy %s: masked report differs:\n got: %s\nwant: %s", strategy, got, base)
				}
			}
		})
	}
}

// TestReportClocksSection pins the semantics of the clocks section:
// present exactly for clock-using programs, phases in label order,
// and the pruned-pair count consistent with a clock-blind solve.
func TestReportClocksSection(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("..", "..", "testdata", "phased.fx10"))
	if err != nil {
		t.Fatal(err)
	}
	p := parser.MustParse(string(src))
	rep := MustAnalyze(p, constraints.ContextSensitive).Report()
	if rep.Clocks == nil {
		t.Fatal("clocked program report has no clocks section")
	}
	if len(rep.Clocks.Phases) != p.NumLabels() {
		t.Fatalf("clocks section has %d phases, want one per label (%d)",
			len(rep.Clocks.Phases), p.NumLabels())
	}
	if rep.Clocks.PrunedPairs == 0 {
		t.Error("split-phase program pruned no pairs")
	}
	// The two workers' cross-phase reads are serialized by the barrier:
	// phase(WL)=0, phase(RL)=1 must appear among the inferred phases.
	byName := map[string]int{}
	for _, ph := range rep.Clocks.Phases {
		byName[ph.Label] = ph.Phase
	}
	if byName["WL"] != 0 || byName["RL"] != 1 {
		t.Errorf("phases WL=%d RL=%d, want 0 and 1", byName["WL"], byName["RL"])
	}

	clean := MustAnalyze(parser.MustParse("array 2;\nvoid main() { A: async { B: a[0] = 1; } C: a[1] = 2; }"),
		constraints.ContextSensitive).Report()
	if clean.Clocks != nil {
		t.Error("clock-free program report has a clocks section")
	}
}

func jsonMarshal(t *testing.T, rep Report) []byte {
	t.Helper()
	out, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return out
}
