package mhp

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"fx10/internal/constraints"
	"fx10/internal/engine"
	"fx10/internal/parser"
)

// The JSON report must be byte-stable: identical across repeated runs
// of the same analysis (the committed golden file pins the exact
// bytes), and identical across solver strategies once the
// strategy-specific iteration counters are masked out (Theorems 5–6:
// every strategy computes the same least solution).
func TestReportJSONGolden(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("..", "..", "testdata", "fanout.fx10"))
	if err != nil {
		t.Fatal(err)
	}
	p, err := parser.Parse(string(src))
	if err != nil {
		t.Fatal(err)
	}

	render := func(strategy string) []byte {
		e, err := engine.New(engine.Config{Strategy: strategy, CacheSize: -1})
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Analyze(engine.Job{Name: "fanout", Program: p, Mode: constraints.ContextSensitive})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := FromEngine(res).WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	first := render("")
	for run := 0; run < 3; run++ {
		if again := render(""); !bytes.Equal(first, again) {
			t.Fatalf("run %d: report JSON not byte-stable", run)
		}
	}

	golden := filepath.Join("testdata", "fanout_report.golden.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, first, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with UPDATE_GOLDEN=1 to regenerate)", err)
	}
	if !bytes.Equal(first, want) {
		t.Errorf("report JSON drifted from golden file %s:\n got: %s\nwant: %s", golden, first, want)
	}

	// Cross-strategy: only the iteration counters may differ.
	maskIters := func(strategy string) Report {
		e, err := engine.New(engine.Config{Strategy: strategy, CacheSize: -1})
		if err != nil {
			t.Fatal(err)
		}
		res, err := e.Analyze(engine.Job{Name: "fanout", Program: p, Mode: constraints.ContextSensitive})
		if err != nil {
			t.Fatal(err)
		}
		rep := FromEngine(res).Report()
		rep.Iterations = Iterations{}
		return rep
	}
	base := jsonMarshal(t, maskIters(""))
	for _, strategy := range engine.Strategies() {
		got := jsonMarshal(t, maskIters(strategy))
		if !bytes.Equal(base, got) {
			t.Errorf("strategy %s: masked report differs:\n got: %s\nwant: %s", strategy, got, base)
		}
	}
}

func jsonMarshal(t *testing.T, rep Report) []byte {
	t.Helper()
	out, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return out
}
