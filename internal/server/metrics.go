package server

import (
	"expvar"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"fx10/internal/constraints"
	"fx10/internal/engine"
	"fx10/internal/sumstore"
)

// Metrics is the server's expvar-backed registry. Every variable is
// an expvar.Var collected in one expvar.Map, so the same data is
// servable at /metrics (the map renders itself as JSON), publishable
// under /debug/vars by the daemon, and scrapeable programmatically.
// The map is intentionally NOT published to the process-global expvar
// namespace here — expvar.Publish panics on duplicate names, and
// tests run many servers per process; the daemon publishes its one
// server's map itself.
type Metrics struct {
	vars *expvar.Map

	// requests counts accepted requests per endpoint; responses
	// counts responses per status code.
	requests  *expvar.Map
	responses *expvar.Map

	queueDepth *expvar.Int // requests waiting for a worker slot
	inflight   *expvar.Int // requests holding a worker slot
	sessions   *expvar.Int // live delta sessions

	coalesced *expvar.Int // requests served by joining another's solve
	solves    *expvar.Int // engine solves actually started
	overload  *expvar.Int // requests rejected 429 at admission
	canceled  *expvar.Int // requests abandoned by client or deadline

	batches       *expvar.Int // /v1/batch requests admitted
	batchPrograms *expvar.Int // programs carried by those batches

	queueWait    *Histogram // time from admission to worker slot
	solveLatency *Histogram // engine time per non-coalesced solve
	reqLatency   *Histogram // end-to-end handler time, all endpoints

	// Sharded-solve section ("shard"), fed only by solves the shard
	// strategy performed; all-zero under every other strategy.
	shardSolves   *expvar.Int // solves that ran sharded
	shardRoundsL1 *expvar.Int // cumulative level-1 merge rounds
	shardRoundsL2 *expvar.Int // cumulative level-2 merge rounds
	shardLast     *expvar.Int // shard count of the most recent sharded solve
	shardSolveLat *Histogram  // per-shard solve time (summed shard ns / shards) per solve
}

// newMetrics builds the registry. cacheStats feeds the "cache"
// section; storeStats feeds "summaryStore" (reporting enabled=false
// when no persistent store is configured).
func newMetrics(cacheStats func() engine.CacheStats, storeStats func() (sumstore.Stats, bool)) *Metrics {
	m := &Metrics{
		vars:          new(expvar.Map).Init(),
		requests:      new(expvar.Map).Init(),
		responses:     new(expvar.Map).Init(),
		queueDepth:    new(expvar.Int),
		inflight:      new(expvar.Int),
		sessions:      new(expvar.Int),
		coalesced:     new(expvar.Int),
		solves:        new(expvar.Int),
		overload:      new(expvar.Int),
		canceled:      new(expvar.Int),
		batches:       new(expvar.Int),
		batchPrograms: new(expvar.Int),
		queueWait:     NewHistogram(),
		solveLatency:  NewHistogram(),
		reqLatency:    NewHistogram(),
		shardSolves:   new(expvar.Int),
		shardRoundsL1: new(expvar.Int),
		shardRoundsL2: new(expvar.Int),
		shardLast:     new(expvar.Int),
		shardSolveLat: NewHistogram(),
	}
	start := time.Now()
	m.vars.Set("requests", m.requests)
	m.vars.Set("responses", m.responses)
	m.vars.Set("queueDepth", m.queueDepth)
	m.vars.Set("inflight", m.inflight)
	m.vars.Set("sessions", m.sessions)
	m.vars.Set("coalesced", m.coalesced)
	m.vars.Set("solves", m.solves)
	m.vars.Set("overload", m.overload)
	m.vars.Set("canceled", m.canceled)
	m.vars.Set("batches", m.batches)
	m.vars.Set("batchPrograms", m.batchPrograms)
	m.vars.Set("queueWaitMs", m.queueWait)
	m.vars.Set("solveLatencyMs", m.solveLatency)
	m.vars.Set("requestLatencyMs", m.reqLatency)
	m.vars.Set("uptimeSeconds", expvar.Func(func() any {
		return int64(time.Since(start).Seconds())
	}))
	m.vars.Set("goroutines", expvar.Func(func() any {
		return runtime.NumGoroutine()
	}))
	m.vars.Set("cache", expvar.Func(func() any {
		cs := cacheStats()
		return map[string]any{
			"programHits":    cs.Hits,
			"programMisses":  cs.Misses,
			"programHitRate": rate(cs.Hits, cs.Misses),
			"summaryHits":    cs.SummaryHits,
			"summaryMisses":  cs.SummaryMisses,
			"summaryHitRate": rate(cs.SummaryHits, cs.SummaryMisses),
			// Clocked-program probes: excluded from the tier by design,
			// counted separately so they do not depress the hit rate.
			"summarySkipped": cs.SummarySkipped,
		}
	}))
	shardMap := new(expvar.Map).Init()
	shardMap.Set("solves", m.shardSolves)
	shardMap.Set("mergeRoundsL1", m.shardRoundsL1)
	shardMap.Set("mergeRoundsL2", m.shardRoundsL2)
	shardMap.Set("lastShards", m.shardLast)
	shardMap.Set("perShardSolveMs", m.shardSolveLat)
	m.vars.Set("shard", shardMap)
	m.vars.Set("summaryStore", expvar.Func(func() any {
		ss, enabled := storeStats()
		if !enabled {
			return map[string]any{"enabled": false}
		}
		return map[string]any{
			"enabled":          true,
			"records":          ss.Records,
			"logBytes":         ss.LogBytes,
			"hits":             ss.Hits,
			"misses":           ss.Misses,
			"hitRate":          rate(ss.Hits, ss.Misses),
			"puts":             ss.Puts,
			"dupPuts":          ss.DupPuts,
			"bytesWritten":     ss.BytesWritten,
			"bytesRead":        ss.BytesRead,
			"indexLoaded":      ss.IndexLoaded,
			"recoveredRecords": ss.RecoveredRecords,
			"truncatedBytes":   ss.TruncatedBytes,
			"invalidations":    ss.Invalidations,
			"writeErrors":      ss.WriteErrors,
			"readErrors":       ss.ReadErrors,
		}
	}))
	return m
}

// observeShard folds one sharded solve's structure into the "shard"
// section; a nil st (any non-shard strategy) is a no-op.
func (m *Metrics) observeShard(st *constraints.ShardStats) {
	if st == nil {
		return
	}
	m.shardSolves.Add(1)
	m.shardRoundsL1.Add(int64(st.MergeRoundsL1))
	m.shardRoundsL2.Add(int64(st.MergeRoundsL2))
	m.shardLast.Set(int64(st.Shards))
	if st.Shards > 0 {
		m.shardSolveLat.Observe(time.Duration(st.ShardSolveNs / int64(st.Shards)))
	}
}

func rate(hits, misses uint64) float64 {
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}

// Expvar returns the registry's root map, for publishing under
// /debug/vars.
func (m *Metrics) Expvar() *expvar.Map { return m.vars }

// ServeHTTP renders the registry as one JSON object.
func (m *Metrics) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintln(w, m.vars.String())
}

// Histogram is a fixed-bucket latency histogram implementing
// expvar.Var. Buckets are powers of two in microseconds (1µs …
// ~137s), wide enough for a cache-hit query and a cold mg solve
// alike. All mutation is atomic; String renders counts plus
// interpolated p50/p95/p99 — the live view the daemon's /metrics
// serves, while loadgen computes exact client-side quantiles from raw
// samples.
type Histogram struct {
	buckets [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sumNs   atomic.Uint64
}

const histBuckets = 28 // bucket i covers (2^(i-1), 2^i] microseconds

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	us := d.Microseconds()
	b := 0
	for us > 1 && b < histBuckets-1 {
		us >>= 1
		b++
	}
	h.buckets[b].Add(1)
	h.count.Add(1)
	h.sumNs.Add(uint64(d.Nanoseconds()))
}

// Quantile estimates the q-quantile (0 < q < 1) in milliseconds by
// linear interpolation inside the holding bucket.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := q * float64(total)
	var cum float64
	for b := 0; b < histBuckets; b++ {
		n := float64(h.buckets[b].Load())
		if cum+n >= target && n > 0 {
			lo, hi := bucketBoundsUs(b)
			frac := (target - cum) / n
			return (lo + frac*(hi-lo)) / 1000 // µs → ms
		}
		cum += n
	}
	_, hi := bucketBoundsUs(histBuckets - 1)
	return hi / 1000
}

func bucketBoundsUs(b int) (lo, hi float64) {
	if b == 0 {
		return 0, 1
	}
	return float64(uint64(1) << (b - 1)), float64(uint64(1) << b)
}

// String implements expvar.Var: count, mean and estimated quantiles
// in milliseconds.
func (h *Histogram) String() string {
	count := h.count.Load()
	mean := 0.0
	if count > 0 {
		mean = float64(h.sumNs.Load()) / float64(count) / 1e6
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, `{"count":%d,"meanMs":%.3f,"p50Ms":%.3f,"p95Ms":%.3f,"p99Ms":%.3f}`,
		count, mean, h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99))
	return sb.String()
}
