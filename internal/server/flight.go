package server

import (
	"context"
	"sync"
	"time"

	"fx10/internal/constraints"
	"fx10/internal/engine"
	"fx10/internal/syntax"
)

// Singleflight coalescing: concurrent requests for the same
// (program hash, mode) share one engine solve. Unlike the classic
// singleflight, the solve does not run on any requester's context —
// requesters come and go while it runs — but on a flight context that
// is cancelled only when EVERY interested requester has gone away.
// One impatient client among ten identical requests costs nothing;
// ten impatient clients cancel the solve mid-fixpoint (the engine
// checkpoints every constraints.CancelStride evaluations) and the
// worker is back within milliseconds.

type flightKey struct {
	hash syntax.ProgramHash
	mode constraints.Mode
}

type flight struct {
	done    chan struct{} // closed when res/err are final
	res     *engine.Result
	err     error
	waiters int // guarded by flights.mu
	cancel  context.CancelFunc
}

type flights struct {
	mu   sync.Mutex
	m    map[flightKey]*flight
	base context.Context // server lifetime: drain cancels all flights
	// solveTimeout bounds each flight independently of its waiters.
	solveTimeout time.Duration
}

func newFlights(base context.Context, solveTimeout time.Duration) *flights {
	return &flights{m: make(map[flightKey]*flight), base: base, solveTimeout: solveTimeout}
}

// join registers as a waiter on the live flight for key, if any.
// Callers use this before paying for admission: a duplicate request
// adds no work, so it should not occupy a worker slot or queue
// position. The caller must follow up with wait (which handles the
// waiter accounting on departure).
func (g *flights) join(key flightKey) (*flight, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	f, ok := g.m[key]
	if ok {
		f.waiters++
	}
	return f, ok
}

// do returns the shared result for key, starting solve if no flight
// is in progress. joined reports whether an existing flight was
// coalesced into. ctx only governs this caller's wait: its
// cancellation abandons the wait (and, if it was the last waiter,
// the flight) without disturbing other requesters.
func (g *flights) do(ctx context.Context, key flightKey, solve func(context.Context) (*engine.Result, error)) (res *engine.Result, err error, joined bool) {
	g.mu.Lock()
	if f, ok := g.m[key]; ok {
		f.waiters++
		g.mu.Unlock()
		res, err = g.wait(ctx, f)
		return res, err, true
	}

	fctx, cancel := context.WithTimeout(g.base, g.solveTimeout)
	f := &flight{done: make(chan struct{}), waiters: 1, cancel: cancel}
	g.m[key] = f
	g.mu.Unlock()

	go func() {
		defer cancel()
		r, e := solve(fctx)
		g.mu.Lock()
		delete(g.m, key) // late arrivals start a fresh flight
		g.mu.Unlock()
		f.res, f.err = r, e
		close(f.done)
	}()

	res, err = g.wait(ctx, f)
	return res, err, false
}

// wait blocks until the flight lands or ctx is done. A departing
// waiter that was the last one standing cancels the flight: nobody
// wants the answer anymore.
func (g *flights) wait(ctx context.Context, f *flight) (*engine.Result, error) {
	select {
	case <-f.done:
		return f.res, f.err
	case <-ctx.Done():
		g.mu.Lock()
		f.waiters--
		if f.waiters == 0 {
			f.cancel()
		}
		g.mu.Unlock()
		return nil, ctx.Err()
	}
}
