package server

import (
	"encoding/json"
	"net/http"
	"testing"
)

const goSource = `package main

import "sync"

func work() {}

func main() {
	var wg sync.WaitGroup
	wg.Go(func() {
		work()
	})
	work()
	wg.Wait()
}
`

const x10Source = `
void main() {
  finish {
    async { compute(); }
    compute();
  }
}
void compute() { return; }
`

// TestAnalyzeLanguages: /v1/analyze accepts any registered front end
// via the language field, and aliases resolve to the same program.
func TestAnalyzeLanguages(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	hashes := map[string]string{}
	for _, tc := range []struct{ lang, src string }{
		{"go", goSource},
		{"golang", goSource}, // alias: same front end, same hash
		{"x10", x10Source},
		{"fx10", "void main() { A: async { S: skip; } T: skip; }"},
		{"", "void main() { A: async { S: skip; } T: skip; }"},
	} {
		status, data, _ := postJSON(t, ts.Client(), ts.URL+"/v1/analyze",
			AnalyzeRequest{Source: tc.src, Language: tc.lang})
		if status != http.StatusOK {
			t.Fatalf("language %q: status %d: %s", tc.lang, status, data)
		}
		resp := decodeAnalyze(t, data)
		if len(resp.Report.Pairs) == 0 {
			t.Fatalf("language %q: no MHP pairs: %s", tc.lang, data)
		}
		hashes[tc.lang] = resp.ProgramHash
	}
	if hashes["go"] != hashes["golang"] {
		t.Fatalf("alias hash mismatch: go=%s golang=%s", hashes["go"], hashes["golang"])
	}
}

// TestAnalyzeLanguageErrors: unknown languages are 400s (the request
// is malformed); bad source under a known language is a 422 of kind
// "parse", like bad core FX10.
func TestAnalyzeLanguageErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	status, data, _ := postJSON(t, ts.Client(), ts.URL+"/v1/analyze",
		AnalyzeRequest{Source: "fn main() {}", Language: "rust"})
	if status != http.StatusBadRequest {
		t.Fatalf("unknown language: status %d, want 400: %s", status, data)
	}
	var er ErrorResponse
	if err := json.Unmarshal(data, &er); err != nil || er.Error.Kind != "bad_request" {
		t.Fatalf("unknown language error = %s", data)
	}

	status, data, _ = postJSON(t, ts.Client(), ts.URL+"/v1/analyze",
		AnalyzeRequest{Source: "void main() { skip; }", Language: "go"})
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("x10 source as go: status %d, want 422: %s", status, data)
	}
	if err := json.Unmarshal(data, &er); err != nil || er.Error.Kind != "parse" {
		t.Fatalf("go parse error = %s", data)
	}

	// Valid Go that the front end cannot analyze (no main) is still the
	// client's input: 422.
	status, data, _ = postJSON(t, ts.Client(), ts.URL+"/v1/analyze",
		AnalyzeRequest{Source: "package main\nfunc helper() {}\n", Language: "go"})
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("go without main: status %d, want 422: %s", status, data)
	}
}

// TestBatchMixedLanguages: one batch can carry programs of different
// front ends, with per-program overrides of the batch default.
func TestBatchMixedLanguages(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, data, _ := postJSON(t, ts.Client(), ts.URL+"/v1/batch", BatchRequest{
		Language: "x10",
		Programs: []BatchProgram{
			{Name: "x10-default", Source: x10Source},
			{Name: "go-override", Source: goSource, Language: "go"},
			{Name: "core-override", Source: "void main() { A: async { S: skip; } T: skip; }", Language: "fx10"},
			{Name: "bad-go", Source: "void nope() {}", Language: "go"},
		},
	})
	if status != http.StatusOK {
		t.Fatalf("batch: status %d: %s", status, data)
	}
	var br BatchResponse
	if err := json.Unmarshal(data, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != 4 {
		t.Fatalf("results = %d, want 4", len(br.Results))
	}
	for i := 0; i < 3; i++ {
		if br.Results[i].Analysis == nil || br.Results[i].Error != nil {
			t.Fatalf("slot %d (%s): %+v", i, br.Results[i].Name, br.Results[i].Error)
		}
	}
	if br.Results[3].Error == nil || br.Results[3].Error.Kind != "parse" {
		t.Fatalf("bad-go slot: %+v", br.Results[3])
	}
}

// TestDeltaSessionLanguageMismatch: a session is (id, mode, language);
// reusing the id under another front end is a 400 and leaves the
// session intact, exactly like a mode mismatch.
func TestDeltaSessionLanguageMismatch(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	status, data, _ := postJSON(t, ts.Client(), ts.URL+"/v1/delta",
		DeltaRequest{Session: "goed", Source: goSource, Language: "go"})
	if status != http.StatusOK {
		t.Fatalf("first delta: status %d: %s", status, data)
	}

	status, data, _ = postJSON(t, ts.Client(), ts.URL+"/v1/delta",
		DeltaRequest{Session: "goed", Source: "void main() { A: skip; }"})
	if status != http.StatusBadRequest {
		t.Fatalf("language mismatch: status %d, want 400: %s", status, data)
	}

	// The alias is the same front end — not a mismatch — and the
	// session advances incrementally.
	status, data, _ = postJSON(t, ts.Client(), ts.URL+"/v1/delta",
		DeltaRequest{Session: "goed", Source: goSource, Language: "golang"})
	if status != http.StatusOK {
		t.Fatalf("alias delta: status %d: %s", status, data)
	}
	var dr DeltaResponse
	if err := json.Unmarshal(data, &dr); err != nil {
		t.Fatal(err)
	}
	if dr.Delta == nil {
		t.Fatal("session did not advance under the alias")
	}
}
