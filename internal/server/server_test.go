package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fx10/internal/constraints"
	"fx10/internal/engine"
	"fx10/internal/mhp"
	"fx10/internal/progen"
	"fx10/internal/syntax"
	"fx10/internal/workloads"
)

// slowStrategy is a registered-once test strategy whose Solve first
// calls the current slowHook (set per test), then delegates to the
// default phased solver. Tests that install a hook must not run in
// parallel with each other.
type slowStrategy struct{}

var (
	slowSolves   atomic.Int64
	slowHookMu   sync.Mutex
	slowHookFn   func()
	registerOnce sync.Once
)

func (slowStrategy) Name() string { return "testslow" }

func (slowStrategy) Solve(sys *constraints.System) *constraints.Solution {
	slowSolves.Add(1)
	slowHookMu.Lock()
	fn := slowHookFn
	slowHookMu.Unlock()
	if fn != nil {
		fn()
	}
	return sys.Solve(constraints.Options{})
}

func setSlowHook(t *testing.T, fn func()) {
	t.Helper()
	slowHookMu.Lock()
	slowHookFn = fn
	slowHookMu.Unlock()
	t.Cleanup(func() {
		slowHookMu.Lock()
		slowHookFn = nil
		slowHookMu.Unlock()
	})
}

func registerSlow(t *testing.T) {
	registerOnce.Do(func() {
		if err := engine.Register(slowStrategy{}); err != nil {
			t.Fatalf("register testslow: %v", err)
		}
	})
}

// newTestServer builds a Server plus an httptest front end.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postJSON(t *testing.T, client *http.Client, url string, body any) (int, []byte, http.Header) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, data, resp.Header
}

func decodeAnalyze(t *testing.T, data []byte) AnalyzeResponse {
	t.Helper()
	var resp AnalyzeResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		t.Fatalf("decode analyze response: %v\n%s", err, data)
	}
	return resp
}

// reportJSON is the byte-stable comparison key: the report rendered
// by a direct engine run.
func reportJSON(t *testing.T, eng *engine.Engine, p *syntax.Program, mode constraints.Mode) []byte {
	t.Helper()
	res, err := eng.AnalyzeCtx(context.Background(), engine.Job{Program: p, Mode: mode})
	if err != nil {
		t.Fatalf("direct analyze: %v", err)
	}
	return marshalReport(t, res)
}

func marshalReport(t *testing.T, res *engine.Result) []byte {
	t.Helper()
	data, err := json.Marshal(mhp.FromEngine(res).Report())
	if err != nil {
		t.Fatalf("marshal report: %v", err)
	}
	return data
}

// maskedReportJSON compares MHP content only: iteration counters
// legitimately differ between an incremental and a full solve.
func maskedReportJSON(t *testing.T, rep mhp.Report) []byte {
	t.Helper()
	rep.Iterations = mhp.Iterations{}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("marshal report: %v", err)
	}
	return data
}

func directMaskedReport(t *testing.T, eng *engine.Engine, p *syntax.Program, mode constraints.Mode) []byte {
	t.Helper()
	res, err := eng.AnalyzeCtx(context.Background(), engine.Job{Program: p, Mode: mode})
	if err != nil {
		t.Fatalf("direct analyze: %v", err)
	}
	return maskedReportJSON(t, mhp.FromEngine(res).Report())
}

func TestAnalyzeMatchesEngine(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	direct, err := engine.New(engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"series", "stream", "crypt"} {
		b, err := workloads.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		src := syntax.Print(b.Program())
		for _, mode := range []string{"cs", "ci"} {
			status, data, _ := postJSON(t, ts.Client(), ts.URL+"/v1/analyze", AnalyzeRequest{Source: src, Mode: mode})
			if status != http.StatusOK {
				t.Fatalf("%s/%s: status %d: %s", name, mode, status, data)
			}
			resp := decodeAnalyze(t, data)
			got, err := json.Marshal(resp.Report)
			if err != nil {
				t.Fatal(err)
			}
			m := constraints.ContextSensitive
			if mode == "ci" {
				m = constraints.ContextInsensitive
			}
			want := reportJSON(t, direct, b.Program(), m)
			if !bytes.Equal(got, want) {
				t.Errorf("%s/%s: served report differs from direct engine run\nserved: %s\ndirect: %s", name, mode, got, want)
			}
		}
	}
}

func TestAnalyzeCacheHitIsByteIdentical(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	src := syntax.Print(mustWorkload(t, "crypt").Program())
	_, first, _ := postJSON(t, ts.Client(), ts.URL+"/v1/analyze", AnalyzeRequest{Source: src})
	_, second, _ := postJSON(t, ts.Client(), ts.URL+"/v1/analyze", AnalyzeRequest{Source: src})
	r1, r2 := decodeAnalyze(t, first), decodeAnalyze(t, second)
	if !r2.Cached {
		t.Error("second identical analyze not served from cache")
	}
	j1, _ := json.Marshal(r1.Report)
	j2, _ := json.Marshal(r2.Report)
	if !bytes.Equal(j1, j2) {
		t.Errorf("cache hit changed the report bytes:\n%s\n%s", j1, j2)
	}
}

func TestQueryVerdicts(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	b := mustWorkload(t, "crypt")
	p := b.Program()
	status, data, _ := postJSON(t, ts.Client(), ts.URL+"/v1/analyze", AnalyzeRequest{Source: syntax.Print(p)})
	if status != http.StatusOK {
		t.Fatalf("analyze: %d: %s", status, data)
	}
	hash := decodeAnalyze(t, data).ProgramHash

	direct, err := engine.New(engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := direct.AnalyzeCtx(context.Background(), engine.Job{Program: p})
	if err != nil {
		t.Fatal(err)
	}
	for i := range p.Labels {
		for j := range p.Labels {
			req := QueryRequest{ProgramHash: hash, A: p.Labels[i].Name, B: p.Labels[j].Name}
			status, data, _ := postJSON(t, ts.Client(), ts.URL+"/v1/query", req)
			if status != http.StatusOK {
				t.Fatalf("query %s,%s: %d: %s", req.A, req.B, status, data)
			}
			var resp QueryResponse
			if err := json.Unmarshal(data, &resp); err != nil {
				t.Fatal(err)
			}
			if want := res.M.Has(i, j); resp.MHP != want {
				t.Errorf("query(%s, %s) = %v, engine says %v", req.A, req.B, resp.MHP, want)
			}
		}
	}
}

func TestErrorKinds(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name   string
		url    string
		body   any
		status int
		kind   string
	}{
		{"parse", "/v1/analyze", AnalyzeRequest{Source: "not fx10"}, http.StatusUnprocessableEntity, "parse"},
		{"bad mode", "/v1/analyze", AnalyzeRequest{Source: "array 1;\nvoid main() { skip; }", Mode: "nope"}, http.StatusBadRequest, "bad_request"},
		{"unknown hash", "/v1/query", QueryRequest{ProgramHash: "00112233445566778899aabbccddeeff00112233445566778899aabbccddeeff", A: "x", B: "y"}, http.StatusNotFound, "not_found"},
		{"bad hash", "/v1/query", QueryRequest{ProgramHash: "zz", A: "x", B: "y"}, http.StatusBadRequest, "bad_request"},
		{"empty session", "/v1/delta", DeltaRequest{Source: "array 1;\nvoid main() { skip; }"}, http.StatusBadRequest, "bad_request"},
	}
	for _, tc := range cases {
		status, data, _ := postJSON(t, ts.Client(), ts.URL+tc.url, tc.body)
		if status != tc.status {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, status, tc.status, data)
			continue
		}
		var er ErrorResponse
		if err := json.Unmarshal(data, &er); err != nil {
			t.Errorf("%s: non-JSON error body %s", tc.name, data)
			continue
		}
		if er.Error.Kind != tc.kind {
			t.Errorf("%s: kind %q, want %q", tc.name, er.Error.Kind, tc.kind)
		}
	}
}

// TestCoalescing: N concurrent analyzes of the same program perform
// exactly one solve; the rest join the flight.
func TestCoalescing(t *testing.T) {
	registerSlow(t)
	setSlowHook(t, func() { time.Sleep(300 * time.Millisecond) })
	slowSolves.Store(0)

	// Cache disabled so coalescing (not the cache) must dedupe.
	_, ts := newTestServer(t, Config{Strategy: "testslow", Workers: 4, CacheSize: -1})
	src := syntax.Print(mustWorkload(t, "series").Program())

	const n = 8
	var wg sync.WaitGroup
	var coalesced, solved atomic.Int64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			status, data, _ := postJSON(t, ts.Client(), ts.URL+"/v1/analyze", AnalyzeRequest{Source: src})
			if status != http.StatusOK {
				t.Errorf("status %d: %s", status, data)
				return
			}
			if decodeAnalyze(t, data).Coalesced {
				coalesced.Add(1)
			} else {
				solved.Add(1)
			}
		}()
	}
	wg.Wait()

	if got := slowSolves.Load(); got != 1 {
		t.Errorf("%d concurrent identical requests performed %d solves, want exactly 1", n, got)
	}
	if solved.Load() != 1 || coalesced.Load() != n-1 {
		t.Errorf("leader/joiner split %d/%d, want 1/%d", solved.Load(), coalesced.Load(), n-1)
	}
}

// TestOverload: with one worker wedged and the queue full, additional
// requests are rejected 429 with a Retry-After hint.
func TestOverload(t *testing.T) {
	registerSlow(t)
	release := make(chan struct{})
	var releaseOnce sync.Once
	releaseAll := func() { releaseOnce.Do(func() { close(release) }) }
	setSlowHook(t, func() { <-release })
	defer releaseAll()

	_, ts := newTestServer(t, Config{Strategy: "testslow", Workers: 1, QueueDepth: 1, CacheSize: -1})

	// Distinct programs: no coalescing, each needs its own solve.
	srcs := make([]string, 6)
	for i := range srcs {
		srcs[i] = syntax.Print(progen.Generate(int64(i+1), progen.Default()))
	}

	results := make(chan int, len(srcs))
	var wg sync.WaitGroup
	var retryAfterSeen atomic.Bool
	for _, src := range srcs {
		wg.Add(1)
		go func(src string) {
			defer wg.Done()
			status, _, hdr := postJSON(t, ts.Client(), ts.URL+"/v1/analyze", AnalyzeRequest{Source: src})
			if status == http.StatusTooManyRequests {
				if ra, err := strconv.Atoi(hdr.Get("Retry-After")); err == nil && ra >= 1 {
					retryAfterSeen.Store(true)
				}
			}
			results <- status
		}(src)
		// Stagger slightly so occupancy is deterministic: first
		// request takes the worker, second queues, the rest overflow.
		time.Sleep(30 * time.Millisecond)
	}

	// Wait for the 429s; the two admitted requests are still blocked.
	deadline := time.After(5 * time.Second)
	rejected := 0
	for rejected < len(srcs)-2 {
		select {
		case status := <-results:
			if status != http.StatusTooManyRequests {
				t.Fatalf("unexpected early status %d (want only 429s before release)", status)
			}
			rejected++
		case <-deadline:
			t.Fatalf("timed out with %d rejections, want %d", rejected, len(srcs)-2)
		}
	}
	if !retryAfterSeen.Load() {
		t.Error("429 responses lacked a usable Retry-After header")
	}

	releaseAll()
	wg.Wait()
	close(results)
	ok := 0
	for status := range results {
		if status == http.StatusOK {
			ok++
		}
	}
	if ok != 2 {
		t.Errorf("admitted requests: %d OK, want 2", ok)
	}
}

// TestCancelMidSolve: a request whose deadline fires mid-solve comes
// back promptly with 504 and does not poison the cache.
func TestCancelMidSolve(t *testing.T) {
	registerSlow(t)
	release := make(chan struct{})
	var releaseOnce sync.Once
	releaseAll := func() { releaseOnce.Do(func() { close(release) }) }
	setSlowHook(t, func() { <-release })
	defer releaseAll()

	s, ts := newTestServer(t, Config{Strategy: "testslow", Workers: 2, RequestTimeout: 100 * time.Millisecond})
	src := syntax.Print(mustWorkload(t, "series").Program())

	start := time.Now()
	status, data, _ := postJSON(t, ts.Client(), ts.URL+"/v1/analyze", AnalyzeRequest{Source: src})
	elapsed := time.Since(start)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", status, data)
	}
	if elapsed > 2*time.Second {
		t.Errorf("timeout response took %v, want ≈100ms", elapsed)
	}

	// Unblock and re-request without the wedge: must be a fresh,
	// correct, uncached solve (the cancelled one must not have been
	// cached).
	releaseAll()
	setSlowHook(t, nil)
	// The doomed flight needs a moment to clear the flight table; a
	// request that lands before that joins it and inherits its
	// cancellation, so retry briefly.
	deadline := time.Now().Add(2 * time.Second)
	for {
		status, data, _ = postJSON(t, ts.Client(), ts.URL+"/v1/analyze", AnalyzeRequest{Source: src})
		if status == http.StatusOK || time.Now().After(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if status != http.StatusOK {
		t.Fatalf("post-cancel analyze: %d: %s", status, data)
	}
	resp := decodeAnalyze(t, data)
	if resp.Cached {
		t.Error("cancelled solve poisoned the result cache")
	}
	got, _ := json.Marshal(resp.Report)
	want := reportJSON(t, s.Engine(), mustWorkload(t, "series").Program(), constraints.ContextSensitive)
	if !bytes.Equal(got, want) {
		t.Error("post-cancel report differs from direct engine run")
	}
}

func TestDeltaSession(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	p := mustWorkload(t, "stream").Program()

	status, data, _ := postJSON(t, ts.Client(), ts.URL+"/v1/delta", DeltaRequest{Session: "s1", Source: syntax.Print(p)})
	if status != http.StatusOK {
		t.Fatalf("first delta: %d: %s", status, data)
	}
	var first DeltaResponse
	if err := json.Unmarshal(data, &first); err != nil {
		t.Fatal(err)
	}
	if first.Delta != nil {
		t.Error("first request of a session reported delta stats, want full analyze")
	}

	direct, err := engine.New(engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	cur := p
	for i := 0; i < 3; i++ {
		cur = progen.MutateMethod(cur, i%len(cur.Methods), int64(100+i))
		status, data, _ := postJSON(t, ts.Client(), ts.URL+"/v1/delta", DeltaRequest{Session: "s1", Source: syntax.Print(cur)})
		if status != http.StatusOK {
			t.Fatalf("delta %d: %d: %s", i, status, data)
		}
		var resp DeltaResponse
		if err := json.Unmarshal(data, &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Delta == nil {
			t.Errorf("delta %d: no delta stats on an incremental request", i)
		}
		got := maskedReportJSON(t, resp.Report)
		want := directMaskedReport(t, direct, cur, constraints.ContextSensitive)
		if !bytes.Equal(got, want) {
			t.Errorf("delta %d: incremental report differs from full analyze", i)
		}
	}
}

func TestDrain(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz before drain: %d", resp.StatusCode)
	}

	s.Drain()
	resp, err = ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz after drain: %d, want 503", resp.StatusCode)
	}
	src := syntax.Print(mustWorkload(t, "series").Program())
	status, data, _ := postJSON(t, ts.Client(), ts.URL+"/v1/analyze", AnalyzeRequest{Source: src})
	if status != http.StatusServiceUnavailable {
		t.Errorf("analyze while draining: %d, want 503 (%s)", status, data)
	}
}

// TestHammer is the -race integration test: one server, many clients
// mixing analyze, query and delta, every analysis response checked
// bit-identical against a direct engine run.
func TestHammer(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4, QueueDepth: 64})

	names := []string{"series", "stream", "crypt"}
	type ref struct {
		src    string
		hash   string
		labels []string
		m      map[[2]string]bool
		report []byte
	}
	direct, err := engine.New(engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	refs := make([]ref, len(names))
	for i, name := range names {
		p := mustWorkload(t, name).Program()
		res, err := direct.AnalyzeCtx(context.Background(), engine.Job{Program: p})
		if err != nil {
			t.Fatal(err)
		}
		r := ref{src: syntax.Print(p), m: map[[2]string]bool{}, report: marshalReport(t, res)}
		hash := p.Hash()
		r.hash = fmt.Sprintf("%x", hash[:])
		for li := range p.Labels {
			r.labels = append(r.labels, p.Labels[li].Name)
			for lj := range p.Labels {
				r.m[[2]string{p.Labels[li].Name, p.Labels[lj].Name}] = res.M.Has(li, lj)
			}
		}
		refs[i] = r
	}

	// Warm the query index: a client may query a program before any
	// other client has analyzed it otherwise.
	for _, r := range refs {
		status, data, _ := postJSON(t, ts.Client(), ts.URL+"/v1/analyze", AnalyzeRequest{Source: r.src})
		if status != http.StatusOK {
			t.Fatalf("warmup analyze: %d: %s", status, data)
		}
	}

	const clients = 8
	const iters = 40
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			sess := "hammer-" + strconv.Itoa(c)
			sessProg := progen.Clone(mustWorkload(t, names[c%len(names)]).Program())
			for i := 0; i < iters; i++ {
				r := refs[(c+i)%len(refs)]
				switch i % 3 {
				case 0: // analyze, bit-identical report
					status, data, _ := postJSON(t, ts.Client(), ts.URL+"/v1/analyze", AnalyzeRequest{Source: r.src})
					if status == http.StatusTooManyRequests {
						continue
					}
					if status != http.StatusOK {
						t.Errorf("client %d: analyze status %d", c, status)
						continue
					}
					got, _ := json.Marshal(decodeAnalyze(t, data).Report)
					if !bytes.Equal(got, r.report) {
						t.Errorf("client %d: analyze report differs from direct engine run", c)
					}
				case 1: // query, verdict identical
					a := r.labels[i%len(r.labels)]
					b := r.labels[(i*7)%len(r.labels)]
					status, data, _ := postJSON(t, ts.Client(), ts.URL+"/v1/query", QueryRequest{ProgramHash: r.hash, A: a, B: b})
					if status != http.StatusOK {
						t.Errorf("client %d: query status %d: %s", c, status, data)
						continue
					}
					var resp QueryResponse
					if err := json.Unmarshal(data, &resp); err != nil {
						t.Error(err)
						continue
					}
					if resp.MHP != r.m[[2]string{a, b}] {
						t.Errorf("client %d: query(%s,%s) = %v, want %v", c, a, b, resp.MHP, r.m[[2]string{a, b}])
					}
				case 2: // delta, report matches a fresh full analyze
					sessProg = progen.MutateMethod(sessProg, i%len(sessProg.Methods), int64(c*1000+i))
					status, data, _ := postJSON(t, ts.Client(), ts.URL+"/v1/delta", DeltaRequest{Session: sess, Source: syntax.Print(sessProg)})
					if status == http.StatusTooManyRequests {
						continue
					}
					if status != http.StatusOK {
						t.Errorf("client %d: delta status %d: %s", c, status, data)
						continue
					}
					var resp DeltaResponse
					if err := json.Unmarshal(data, &resp); err != nil {
						t.Error(err)
						continue
					}
					got := maskedReportJSON(t, resp.Report)
					if !bytes.Equal(got, directMaskedReport(t, direct, sessProg, constraints.ContextSensitive)) {
						t.Errorf("client %d: delta report differs from direct engine run", c)
					}
				}
			}
		}(c)
	}
	wg.Wait()
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	src := syntax.Print(mustWorkload(t, "series").Program())
	postJSON(t, ts.Client(), ts.URL+"/v1/analyze", AnalyzeRequest{Source: src})
	postJSON(t, ts.Client(), ts.URL+"/v1/analyze", AnalyzeRequest{Source: src})

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("/metrics is not JSON: %v\n%s", err, data)
	}
	for _, key := range []string{"requests", "responses", "solves", "cache", "requestLatencyMs", "uptimeSeconds"} {
		if _, ok := m[key]; !ok {
			t.Errorf("/metrics missing %q\n%s", key, data)
		}
	}
}

// TestMetricsShardSection: under the shard strategy the "shard"
// section counts solves and merge rounds, and — because the sharded
// solver's plan and merge schedule are deterministic — two servers
// given the same workload report identical merge-round totals. Under
// any other strategy the section stays all-zero.
func TestMetricsShardSection(t *testing.T) {
	type shardSection struct {
		Solves        int64 `json:"solves"`
		MergeRoundsL1 int64 `json:"mergeRoundsL1"`
		MergeRoundsL2 int64 `json:"mergeRoundsL2"`
		LastShards    int64 `json:"lastShards"`
	}
	scrape := func(t *testing.T, ts *httptest.Server) shardSection {
		t.Helper()
		resp, err := ts.Client().Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		var m struct {
			Shard *shardSection `json:"shard"`
		}
		if err := json.Unmarshal(data, &m); err != nil {
			t.Fatalf("/metrics is not JSON: %v\n%s", err, data)
		}
		if m.Shard == nil {
			t.Fatalf("/metrics missing shard section\n%s", data)
		}
		return *m.Shard
	}
	srcs := []string{
		syntax.Print(mustWorkload(t, "series").Program()),
		syntax.Print(mustWorkload(t, "crypt").Program()),
	}
	run := func(t *testing.T) shardSection {
		t.Helper()
		_, ts := newTestServer(t, Config{Strategy: "shard"})
		for _, src := range srcs {
			status, data, _ := postJSON(t, ts.Client(), ts.URL+"/v1/analyze", AnalyzeRequest{Source: src})
			if status != http.StatusOK {
				t.Fatalf("analyze status %d: %s", status, data)
			}
		}
		return scrape(t, ts)
	}
	a := run(t)
	if a.Solves != int64(len(srcs)) {
		t.Errorf("shard.solves = %d, want %d", a.Solves, len(srcs))
	}
	if a.MergeRoundsL1 < a.Solves || a.MergeRoundsL2 < a.Solves {
		t.Errorf("merge rounds below one per solve: %+v", a)
	}
	if a.LastShards < 1 {
		t.Errorf("lastShards = %d, want ≥ 1", a.LastShards)
	}
	// Golden stability: an identical server over the identical
	// workload reports the identical section.
	if b := run(t); a != b {
		t.Errorf("shard section not deterministic:\n  first  %+v\n  second %+v", a, b)
	}

	// A non-shard strategy leaves the section untouched.
	_, ts := newTestServer(t, Config{Strategy: "topo"})
	postJSON(t, ts.Client(), ts.URL+"/v1/analyze", AnalyzeRequest{Source: srcs[0]})
	if z := scrape(t, ts); z != (shardSection{}) {
		t.Errorf("shard section non-zero under topo strategy: %+v", z)
	}
}

func mustWorkload(t *testing.T, name string) *workloads.Benchmark {
	t.Helper()
	b, err := workloads.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestAnalyzeClockedProgram: a clocked program's report carries the
// clocks section (per-label phases, pruned-pair count) through the
// wire format, and clock misuse — a barrier inside an unclocked
// async — is rejected at the front door like a parse error.
func TestAnalyzeClockedProgram(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	const src = `
array 8;
void main() {
  L: clocked async { W: a[0] = 1; N: next; R: a[1] = a[0] + 1; }
  M: next;
  D: a[2] = a[1] + 1;
}
`
	status, data, _ := postJSON(t, ts.Client(), ts.URL+"/v1/analyze", AnalyzeRequest{Source: src})
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, data)
	}
	resp := decodeAnalyze(t, data)
	if resp.Report.Clocks == nil {
		t.Fatal("clocked analyze response has no clocks section")
	}
	if len(resp.Report.Clocks.Phases) == 0 {
		t.Error("clocks section has no label phases")
	}

	const bad = `
array 2;
void main() {
  A: async { N: next; }
}
`
	status, data, _ = postJSON(t, ts.Client(), ts.URL+"/v1/analyze", AnalyzeRequest{Source: bad})
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("clock misuse: status %d, want 422: %s", status, data)
	}
}
