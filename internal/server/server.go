// Package server is the MHP analysis service: the engine of
// internal/engine behind an HTTP/JSON API, shaped for the ROADMAP's
// always-on deployment rather than one-shot CLI runs.
//
// Request path:
//
//		admission → coalesce → solve → cache
//
//	  - admission: a bounded worker pool with an explicit wait queue;
//	    a full queue is answered 429 + Retry-After immediately.
//	  - coalesce: concurrent requests for the same (program hash, mode)
//	    join one in-flight solve (flight.go); the solve is cancelled
//	    only when every interested request has gone away. Duplicates of
//	    an already-running solve join it before admission — they add no
//	    work, so they never occupy a slot or queue position.
//	  - solve: engine.AnalyzeSafe on a per-flight context — client
//	    disconnects and deadlines cancel mid-fixpoint via the solver's
//	    cancellation checkpoints, and panics on malformed programs are
//	    contained per request.
//	  - cache: the engine's two-tier cache makes repeat analyses hits;
//	    the server-side query index additionally serves /v1/query
//	    without touching the engine at all.
//
// Endpoints: POST /v1/analyze, POST /v1/batch, POST /v1/query,
// POST /v1/delta, GET /healthz, GET /metrics. See api.go for wire
// types and DESIGN.md §8 for the architecture discussion.
//
// With Config.SummaryStorePath set, the engine additionally persists
// method summaries to a crash-safe on-disk store (internal/sumstore):
// a restarted server warm-starts its summary tier from disk, visible
// as summaryStore hits in /metrics.
package server

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"fx10/internal/condensed"
	"fx10/internal/constraints"
	"fx10/internal/engine"
	"fx10/internal/frontend"
	"fx10/internal/mhp"
	"fx10/internal/parser"
	"fx10/internal/syntax"
)

// Config configures a Server. The zero value is a usable default.
type Config struct {
	// Workers bounds concurrent solves; ≤ 0 selects GOMAXPROCS.
	Workers int
	// QueueDepth bounds requests waiting for a worker before 429s
	// start; ≤ 0 selects 4 × Workers.
	QueueDepth int
	// Strategy names the engine solver strategy ("" = default).
	Strategy string
	// SolverWorkers bounds the solver-internal pool when Strategy is
	// parallel (e.g. ptopo); ≤ 0 keeps the strategy default. Distinct
	// from Workers, which bounds concurrent solves across requests.
	SolverWorkers int
	// CacheSize / SummaryCacheSize size the engine's cache tiers
	// (0 = engine defaults).
	CacheSize        int
	SummaryCacheSize int
	// SolveTimeout caps one engine solve regardless of waiters
	// (default 30s).
	SolveTimeout time.Duration
	// RequestTimeout is the per-request deadline (default 10s); it
	// cancels mid-solve through the flight mechanism when the request
	// is the only one interested.
	RequestTimeout time.Duration
	// MaxSourceBytes bounds request bodies (default 1 MiB).
	MaxSourceBytes int64
	// MaxSessions bounds live delta sessions (default 128).
	MaxSessions int
	// MaxIndexed bounds the /v1/query index (default 1024 programs).
	MaxIndexed int
	// MaxBatchPrograms bounds the programs accepted per /v1/batch
	// request (default 64).
	MaxBatchPrograms int
	// SummaryStorePath, when non-empty, enables the engine's
	// persistent summary store in that directory: method summaries
	// survive restarts and are shared across processes pointed at the
	// same path.
	SummaryStorePath string
	// SummaryStoreShared opens the store in multi-process mode so a
	// fleet of daemons can share one store directory (see
	// engine.Config.SummaryStoreShared).
	SummaryStoreShared bool
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.SolveTimeout <= 0 {
		c.SolveTimeout = 30 * time.Second
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.MaxSourceBytes <= 0 {
		c.MaxSourceBytes = 1 << 20
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 128
	}
	if c.MaxIndexed <= 0 {
		c.MaxIndexed = 1024
	}
	if c.MaxBatchPrograms <= 0 {
		c.MaxBatchPrograms = 64
	}
	return c
}

// Server is the analysis service. Create with New, serve its
// Handler, and stop with Drain + Close.
type Server struct {
	cfg      Config
	eng      *engine.Engine
	adm      *admission
	flights  *flights
	sessions *sessionStore
	index    *queryIndex
	metrics  *Metrics
	mux      *http.ServeMux

	baseCtx    context.Context
	baseCancel context.CancelFunc
	draining   atomic.Bool

	// solveEWMA tracks a smoothed solve time in nanoseconds for the
	// Retry-After hint.
	solveEWMA atomic.Int64
}

// New builds a Server (resolving the strategy name) ready to serve.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	eng, err := engine.New(engine.Config{
		Strategy:           cfg.Strategy,
		Workers:            cfg.Workers,
		SolverWorkers:      cfg.SolverWorkers,
		CacheSize:          cfg.CacheSize,
		SummaryCacheSize:   cfg.SummaryCacheSize,
		SummaryStorePath:   cfg.SummaryStorePath,
		SummaryStoreShared: cfg.SummaryStoreShared,
	})
	if err != nil {
		return nil, err
	}
	base, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		eng:        eng,
		adm:        newAdmission(cfg.Workers, cfg.QueueDepth),
		flights:    newFlights(base, cfg.SolveTimeout),
		sessions:   newSessionStore(cfg.MaxSessions),
		index:      newQueryIndex(cfg.MaxIndexed),
		baseCtx:    base,
		baseCancel: cancel,
	}
	s.metrics = newMetrics(eng.CacheStats, eng.SummaryStoreStats)
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/analyze", s.instrument("analyze", s.handleAnalyze))
	mux.HandleFunc("/v1/batch", s.instrument("batch", s.handleBatch))
	mux.HandleFunc("/v1/query", s.instrument("query", s.handleQuery))
	mux.HandleFunc("/v1/delta", s.instrument("delta", s.handleDelta))
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.Handle("/metrics", s.metrics)
	s.mux = mux
	return s, nil
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics exposes the registry (for publishing under /debug/vars).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Engine exposes the underlying engine (loadgen's selfserve mode and
// tests compare against direct engine calls).
func (s *Server) Engine() *engine.Engine { return s.eng }

// Drain flips the server into draining mode: /healthz reports
// draining (so load balancers stop routing here) and new analysis
// requests are refused with 503, while requests already admitted run
// to completion. Use before shutting the HTTP listener down.
func (s *Server) Drain() { s.draining.Store(true) }

// Close cancels every in-flight solve and closes the engine (which
// syncs and snapshots the persistent summary store when one is
// configured). Call after the HTTP server has stopped accepting
// connections.
func (s *Server) Close() {
	s.baseCancel()
	_ = s.eng.Close()
}

// instrument wraps a handler with request/response counting and
// end-to-end latency observation.
func (s *Server) instrument(name string, h func(http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.metrics.requests.Add(name, 1)
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r)
		s.metrics.responses.Add(strconv.Itoa(sw.status()), 1)
		s.metrics.reqLatency.Observe(time.Since(start))
	}
}

// statusWriter records the response code for metrics.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) status() int {
	if w.code == 0 {
		return http.StatusOK
	}
	return w.code
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, HealthResponse{Status: "draining"})
		return
	}
	writeJSON(w, http.StatusOK, HealthResponse{Status: "ok"})
}

// handleAnalyze: parse → admission → coalesced solve → report.
func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	var req AnalyzeRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	mode, ok := parseModeStr(req.Mode)
	if !ok {
		s.writeError(w, http.StatusBadRequest, "bad_request", fmt.Sprintf("unknown mode %q (want cs or ci)", req.Mode))
		return
	}
	p, _, perr := parseSourceLang(req.Source, req.Language)
	if perr != nil {
		s.writeHandlerError(w, perr)
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()

	res, coalesced, herr := s.analyze(ctx, p, mode, r.URL.Path)
	if herr != nil {
		s.writeHandlerError(w, herr)
		return
	}
	writeJSON(w, http.StatusOK, s.analyzeResponse(res, coalesced))
}

// handlerError pairs an HTTP status with an ErrorDetail.
type handlerError struct {
	status int
	kind   string
	msg    string
	retry  time.Duration // nonzero adds Retry-After
}

func (e *handlerError) Error() string { return e.msg }

// analyze runs the shared admission → coalesce → solve path and
// indexes the result for /v1/query.
func (s *Server) analyze(ctx context.Context, p *syntax.Program, mode constraints.Mode, what string) (*engine.Result, bool, *handlerError) {
	if s.draining.Load() {
		return nil, false, &handlerError{status: http.StatusServiceUnavailable, kind: "draining", msg: "server is draining"}
	}
	key := flightKey{hash: p.Hash(), mode: mode}

	// Duplicates of an in-flight solve coalesce before admission:
	// they add no work, so they must not occupy a worker slot or
	// queue position (8 identical requests on a 4-worker server are
	// one solve, not two).
	if f, ok := s.flights.join(key); ok {
		s.metrics.coalesced.Add(1)
		res, err := s.flights.wait(ctx, f)
		if err != nil {
			return nil, true, s.solveError(err)
		}
		s.index.put(key, &indexed{program: res.Program, m: res.M})
		return res, true, nil
	}

	enqueued := time.Now()
	if err := s.adm.acquire(ctx); err != nil {
		if errors.Is(err, errOverloaded) {
			s.metrics.overload.Add(1)
			return nil, false, &handlerError{
				status: http.StatusTooManyRequests, kind: "overloaded",
				msg:   "admission queue full",
				retry: s.adm.retryAfter(time.Duration(s.solveEWMA.Load())),
			}
		}
		s.metrics.canceled.Add(1)
		return nil, false, ctxError(err)
	}
	s.metrics.queueWait.Observe(time.Since(enqueued))
	s.metrics.queueDepth.Set(s.adm.depth())
	s.metrics.inflight.Add(1)
	defer func() {
		s.metrics.inflight.Add(-1)
		s.adm.release()
		s.metrics.queueDepth.Set(s.adm.depth())
	}()

	return s.solveOne(ctx, key, p, mode, what)
}

// solveError maps engine failures onto HTTP statuses.
func (s *Server) solveError(err error) *handlerError {
	var ae *engine.AnalysisError
	switch {
	case errors.As(err, &ae):
		return &handlerError{status: http.StatusInternalServerError, kind: "analysis", msg: err.Error()}
	case errors.Is(err, context.DeadlineExceeded):
		s.metrics.canceled.Add(1)
		return &handlerError{status: http.StatusGatewayTimeout, kind: "timeout", msg: "analysis exceeded its deadline"}
	case errors.Is(err, context.Canceled):
		s.metrics.canceled.Add(1)
		return &handlerError{status: statusClientClosedRequest, kind: "canceled", msg: "request canceled"}
	default:
		return &handlerError{status: http.StatusInternalServerError, kind: "analysis", msg: err.Error()}
	}
}

func ctxError(err error) *handlerError {
	if errors.Is(err, context.DeadlineExceeded) {
		return &handlerError{status: http.StatusGatewayTimeout, kind: "timeout", msg: "timed out waiting for a worker"}
	}
	return &handlerError{status: statusClientClosedRequest, kind: "canceled", msg: "request canceled while queued"}
}

// statusClientClosedRequest is nginx's conventional code for a client
// that went away; there is no exact standard status.
const statusClientClosedRequest = 499

// observeSolve feeds the Retry-After EWMA (α = 1/8).
func (s *Server) observeSolve(d time.Duration) {
	for {
		old := s.solveEWMA.Load()
		var next int64
		if old == 0 {
			next = int64(d)
		} else {
			next = old + (int64(d)-old)/8
		}
		if s.solveEWMA.CompareAndSwap(old, next) {
			return
		}
	}
}

func (s *Server) analyzeResponse(res *engine.Result, coalesced bool) AnalyzeResponse {
	rep := mhp.FromEngine(res).Report()
	solveMs := float64(res.Stats.Solve.Nanoseconds()) / 1e6
	if res.Stats.CacheHit {
		solveMs = 0
	}
	return AnalyzeResponse{
		ProgramHash: rep.ProgramHash,
		Cached:      res.Stats.CacheHit,
		Coalesced:   coalesced,
		SolveMs:     solveMs,
		Report:      rep,
	}
}

// handleQuery serves MHP verdicts from the query index: no parsing,
// no solving, no admission — the cheap path the cache exists for.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	mode, ok := parseModeStr(req.Mode)
	if !ok {
		s.writeError(w, http.StatusBadRequest, "bad_request", fmt.Sprintf("unknown mode %q (want cs or ci)", req.Mode))
		return
	}
	var hash syntax.ProgramHash
	raw, err := hex.DecodeString(req.ProgramHash)
	if err != nil || len(raw) != len(hash) {
		s.writeError(w, http.StatusBadRequest, "bad_request", "programHash must be 64 hex characters")
		return
	}
	copy(hash[:], raw)
	entry, ok := s.index.get(flightKey{hash: hash, mode: mode})
	if !ok {
		s.writeError(w, http.StatusNotFound, "not_found", "unknown program hash; POST /v1/analyze first")
		return
	}
	la, okA := entry.program.LabelByName(req.A)
	lb, okB := entry.program.LabelByName(req.B)
	if !okA || !okB {
		s.writeError(w, http.StatusBadRequest, "bad_request", fmt.Sprintf("unknown label %q or %q", req.A, req.B))
		return
	}
	writeJSON(w, http.StatusOK, QueryResponse{
		ProgramHash: req.ProgramHash,
		A:           req.A,
		B:           req.B,
		MHP:         entry.m.Has(int(la), int(lb)),
	})
}

// handleDelta: session-scoped incremental analysis.
func (s *Server) handleDelta(w http.ResponseWriter, r *http.Request) {
	var req DeltaRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	if req.Session == "" {
		s.writeError(w, http.StatusBadRequest, "bad_request", "session must be non-empty")
		return
	}
	mode, ok := parseModeStr(req.Mode)
	if !ok {
		s.writeError(w, http.StatusBadRequest, "bad_request", fmt.Sprintf("unknown mode %q (want cs or ci)", req.Mode))
		return
	}
	p, lang, perr := parseSourceLang(req.Source, req.Language)
	if perr != nil {
		s.writeHandlerError(w, perr)
		return
	}
	if s.draining.Load() {
		s.writeError(w, http.StatusServiceUnavailable, "draining", "server is draining")
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()

	sess, created, evicted, ok := s.sessions.get(req.Session, mode, lang)
	if !ok {
		// The session exists under another mode or front end: its base
		// result is a solution of that configuration's constraint
		// system, unusable as a delta base here. Rejecting (rather than
		// silently reusing the session's) keeps the request
		// authoritative.
		s.writeError(w, http.StatusBadRequest, "bad_request", "mode or language differs from the session's")
		return
	}
	_ = created
	s.metrics.sessions.Set(int64(s.sessions.len()))
	_ = evicted

	// Serialize edits within the session; the base advances edit by
	// edit. The lock is held across the solve on purpose: delta
	// against a moving base is undefined.
	sess.mu.Lock()
	defer sess.mu.Unlock()

	if sess.base == nil {
		res, coalesced, herr := s.analyze(ctx, p, mode, "session:"+req.Session)
		if herr != nil {
			s.writeHandlerError(w, herr)
			return
		}
		sess.base = res
		writeJSON(w, http.StatusOK, DeltaResponse{AnalyzeResponse: s.analyzeResponse(res, coalesced)})
		return
	}

	// Incremental path: admission still applies (a delta is a solve,
	// just a smaller one), but coalescing does not — the session's
	// base is private state.
	enqueued := time.Now()
	if err := s.adm.acquire(ctx); err != nil {
		if errors.Is(err, errOverloaded) {
			s.metrics.overload.Add(1)
			s.writeHandlerError(w, &handlerError{
				status: http.StatusTooManyRequests, kind: "overloaded",
				msg:   "admission queue full",
				retry: s.adm.retryAfter(time.Duration(s.solveEWMA.Load())),
			})
			return
		}
		s.metrics.canceled.Add(1)
		s.writeHandlerError(w, ctxError(err))
		return
	}
	s.metrics.queueWait.Observe(time.Since(enqueued))
	s.metrics.inflight.Add(1)
	defer func() {
		s.metrics.inflight.Add(-1)
		s.adm.release()
	}()

	s.metrics.solves.Add(1)
	t0 := time.Now()
	res, err := s.eng.AnalyzeDeltaSafe(ctx, sess.base, p)
	if err != nil {
		s.writeHandlerError(w, s.solveError(err))
		return
	}
	d := time.Since(t0)
	s.metrics.solveLatency.Observe(d)
	s.observeSolve(d)
	s.metrics.observeShard(res.Stats.Shard)

	sess.base = res
	key := flightKey{hash: p.Hash(), mode: mode}
	s.index.put(key, &indexed{program: res.Program, m: res.M})
	writeJSON(w, http.StatusOK, DeltaResponse{
		AnalyzeResponse: s.analyzeResponse(res, false),
		Delta:           deltaStatsFrom(res.Stats.Delta),
	})
}

// readJSON decodes a POST body with limits, writing the error
// response itself on failure.
func (s *Server) readJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, "bad_request", "use POST")
		return false
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, s.cfg.MaxSourceBytes+1))
	if err != nil {
		s.writeError(w, statusClientClosedRequest, "canceled", "body read failed")
		return false
	}
	if int64(len(body)) > s.cfg.MaxSourceBytes {
		s.writeError(w, http.StatusRequestEntityTooLarge, "bad_request", "request body too large")
		return false
	}
	if err := json.Unmarshal(body, dst); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad_request", "invalid JSON: "+err.Error())
		return false
	}
	return true
}

// parseSourceLang routes request source to a parser by language: ""
// or "fx10" is core FX10 (parsed directly, preserving label names);
// anything else resolves through the front-end registry and lowers
// via the condensed form. The returned lang is canonical ("fx10",
// "x10", "go", …) and keys delta sessions. An unknown language is a
// 400 — the request itself is malformed — while source that fails to
// parse or lower under a known language is a 422 of kind "parse",
// exactly like bad core FX10.
func parseSourceLang(source, language string) (*syntax.Program, string, *handlerError) {
	lang := strings.ToLower(strings.TrimSpace(language))
	var p *syntax.Program
	if lang == "" || lang == "fx10" {
		lang = "fx10"
		var err error
		p, err = parser.Parse(source)
		if err != nil {
			return nil, lang, &handlerError{status: http.StatusUnprocessableEntity, kind: "parse", msg: err.Error()}
		}
	} else {
		f, err := frontend.Lookup(lang)
		if err != nil {
			return nil, lang, &handlerError{status: http.StatusBadRequest, kind: "bad_request", msg: err.Error()}
		}
		lang = f.Name()
		u, _, err := f.Lower(source)
		if err != nil {
			return nil, lang, &handlerError{status: http.StatusUnprocessableEntity, kind: "parse", msg: fmt.Sprintf("%s: %v", lang, err)}
		}
		p, err = condensed.Lower(u)
		if err != nil {
			// The source parsed but describes a malformed unit
			// (duplicate methods, no entry point): still the client's
			// input, still 422.
			return nil, lang, &handlerError{status: http.StatusUnprocessableEntity, kind: "parse", msg: err.Error()}
		}
	}
	if err := syntax.CheckClockUse(p); err != nil {
		// Clock misuse (next/advance in an unclocked async) is a
		// static input error, same class as a parse failure.
		return nil, lang, &handlerError{status: http.StatusUnprocessableEntity, kind: "parse", msg: err.Error()}
	}
	return p, lang, nil
}

func parseModeStr(s string) (constraints.Mode, bool) {
	switch s {
	case "", "cs", "sensitive", "context-sensitive":
		return constraints.ContextSensitive, true
	case "ci", "insensitive", "context-insensitive":
		return constraints.ContextInsensitive, true
	}
	return 0, false
}

func (s *Server) writeHandlerError(w http.ResponseWriter, e *handlerError) {
	if e.retry > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(int((e.retry+time.Second-1)/time.Second)))
	}
	s.writeError(w, e.status, e.kind, e.msg)
}

func (s *Server) writeError(w http.ResponseWriter, status int, kind, msg string) {
	writeJSON(w, status, ErrorResponse{Error: ErrorDetail{Kind: kind, Message: msg}})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
