package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"fx10/internal/constraints"
	"fx10/internal/syntax"
	"fx10/internal/workloads"
)

// TestDeltaSessionModeMismatch: a session is (id, mode); reusing the
// id under the other mode is a 400, and the original session keeps
// working afterwards.
func TestDeltaSessionModeMismatch(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	src := "void main() { A: async { S: skip; } T: skip; }"

	status, data, _ := postJSON(t, ts.Client(), ts.URL+"/v1/delta",
		DeltaRequest{Session: "ed1", Source: src, Mode: "cs"})
	if status != http.StatusOK {
		t.Fatalf("first delta: status %d: %s", status, data)
	}

	status, data, _ = postJSON(t, ts.Client(), ts.URL+"/v1/delta",
		DeltaRequest{Session: "ed1", Source: src, Mode: "ci"})
	if status != http.StatusBadRequest {
		t.Fatalf("mode mismatch: status %d, want 400: %s", status, data)
	}
	var er ErrorResponse
	if err := json.Unmarshal(data, &er); err != nil || er.Error.Kind != "bad_request" {
		t.Fatalf("mode mismatch error = %s", data)
	}

	// The rejected request must not have corrupted or replaced the
	// session: the original mode continues incrementally.
	edited := "void main() { A: async { S: skip; } T: skip; U: skip; }"
	status, data, _ = postJSON(t, ts.Client(), ts.URL+"/v1/delta",
		DeltaRequest{Session: "ed1", Source: edited, Mode: "cs"})
	if status != http.StatusOK {
		t.Fatalf("delta after mismatch: status %d: %s", status, data)
	}
	var dr DeltaResponse
	if err := json.Unmarshal(data, &dr); err != nil {
		t.Fatal(err)
	}
	if dr.Delta == nil {
		t.Fatal("session lost its base after a rejected mode-mismatch request")
	}
}

// TestDeltaSessionSameModeReuses: the happy path the mismatch check
// must not break — same id, same mode, session advances.
func TestDeltaSessionSameModeReuses(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	src := "void main() { A: async { S: skip; } T: skip; }"
	for i, source := range []string{src, src} {
		status, data, _ := postJSON(t, ts.Client(), ts.URL+"/v1/delta",
			DeltaRequest{Session: "ed2", Source: source, Mode: "cs"})
		if status != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, status, data)
		}
		var dr DeltaResponse
		if err := json.Unmarshal(data, &dr); err != nil {
			t.Fatal(err)
		}
		if i == 0 && dr.Delta != nil {
			t.Fatal("first request of a session should be a full analyze")
		}
		if i == 1 && dr.Delta == nil {
			t.Fatal("second request did not reuse the session")
		}
	}
}

// TestSessionStoreCapClamped: capacities ≤ 0 must not evict the
// just-inserted element.
func TestSessionStoreCapClamped(t *testing.T) {
	for _, capacity := range []int{0, -5} {
		st := newSessionStore(capacity)
		s1, created, _, ok := st.get("a", constraints.ContextSensitive, "fx10")
		if !ok || !created || s1 == nil {
			t.Fatalf("cap %d: insert failed", capacity)
		}
		s2, created, _, ok := st.get("a", constraints.ContextSensitive, "fx10")
		if !ok || created || s2 != s1 {
			t.Fatalf("cap %d: just-inserted session evicted", capacity)
		}
		if st.len() != 1 {
			t.Fatalf("cap %d: len = %d, want 1", capacity, st.len())
		}
	}
}

// TestQueryIndexCapClamped: same clamp for the query index.
func TestQueryIndexCapClamped(t *testing.T) {
	for _, capacity := range []int{0, -1} {
		qi := newQueryIndex(capacity)
		key := flightKey{mode: constraints.ContextSensitive}
		qi.put(key, &indexed{})
		if _, ok := qi.get(key); !ok {
			t.Fatalf("cap %d: just-inserted entry evicted", capacity)
		}
	}
}

// TestServerRestartWarmStore is the restart scenario end to end at
// the package level: server 1 populates the summary store, a second
// server on the same directory warm-starts — its first analyzes
// record store hits — and its reports are byte-identical.
func TestServerRestartWarmStore(t *testing.T) {
	dir := t.TempDir()
	names := []string{"series", "stream", "crypt", "mapreduce"}

	want := make(map[string][]byte)
	s1, ts1 := newTestServer(t, Config{SummaryStorePath: dir})
	for _, n := range names {
		b, err := workloads.Get(n)
		if err != nil {
			t.Fatal(err)
		}
		status, data, _ := postJSON(t, ts1.Client(), ts1.URL+"/v1/analyze",
			AnalyzeRequest{Source: syntax.Print(b.Program())})
		if status != http.StatusOK {
			t.Fatalf("%s: status %d: %s", n, status, data)
		}
		resp := decodeAnalyze(t, data)
		rep, err := json.Marshal(resp.Report)
		if err != nil {
			t.Fatal(err)
		}
		want[n] = rep
	}
	// Simulate the shutdown path fx10d takes: Drain then Close (which
	// syncs and snapshots the store via the engine).
	s1.Drain()
	ts1.Close()
	s1.Close()

	s2, ts2 := newTestServer(t, Config{SummaryStorePath: dir})
	for _, n := range names {
		b, _ := workloads.Get(n)
		status, data, _ := postJSON(t, ts2.Client(), ts2.URL+"/v1/analyze",
			AnalyzeRequest{Source: syntax.Print(b.Program())})
		if status != http.StatusOK {
			t.Fatalf("restarted %s: status %d: %s", n, status, data)
		}
		resp := decodeAnalyze(t, data)
		rep, err := json.Marshal(resp.Report)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(rep, want[n]) {
			t.Fatalf("%s: post-restart report differs", n)
		}
	}
	stats, enabled := s2.Engine().SummaryStoreStats()
	if !enabled {
		t.Fatal("restarted server has no summary store")
	}
	if stats.Hits == 0 {
		t.Fatalf("restarted server recorded no warm store hits: %+v", stats)
	}

	// And /metrics reports the store section.
	resp, err := ts2.Client().Get(ts2.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m struct {
		SummaryStore struct {
			Enabled bool   `json:"enabled"`
			Hits    uint64 `json:"hits"`
			Records int    `json:"records"`
		} `json:"summaryStore"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if !m.SummaryStore.Enabled || m.SummaryStore.Hits == 0 || m.SummaryStore.Records == 0 {
		t.Fatalf("metrics summaryStore = %+v", m.SummaryStore)
	}
}

// TestServerStoreDisabledMetrics: without a store path the metrics
// section reports enabled=false (and nothing crashes).
func TestServerStoreDisabledMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m struct {
		SummaryStore struct {
			Enabled bool `json:"enabled"`
		} `json:"summaryStore"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.SummaryStore.Enabled {
		t.Fatal("store reported enabled without a path")
	}
}
