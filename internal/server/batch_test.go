package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"fx10/internal/constraints"
	"fx10/internal/engine"
	"fx10/internal/syntax"
	"fx10/internal/workloads"
)

func decodeBatch(t *testing.T, data []byte) BatchResponse {
	t.Helper()
	var resp BatchResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		t.Fatalf("decode batch response: %v\n%s", err, data)
	}
	return resp
}

// TestBatchMatchesAnalyze: each slot of a batch carries the same
// byte-stable report a direct engine run produces, in input order,
// names echoed.
func TestBatchMatchesAnalyze(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	direct, err := engine.New(engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"series", "stream", "crypt"}
	var req BatchRequest
	for _, n := range names {
		b, err := workloads.Get(n)
		if err != nil {
			t.Fatal(err)
		}
		req.Programs = append(req.Programs, BatchProgram{Name: n, Source: syntax.Print(b.Program())})
	}
	status, data, _ := postJSON(t, ts.Client(), ts.URL+"/v1/batch", req)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, data)
	}
	resp := decodeBatch(t, data)
	if len(resp.Results) != len(names) {
		t.Fatalf("got %d results, want %d", len(resp.Results), len(names))
	}
	for i, n := range names {
		r := resp.Results[i]
		if r.Name != n {
			t.Fatalf("slot %d name = %q, want %q", i, r.Name, n)
		}
		if r.Error != nil || r.Analysis == nil {
			t.Fatalf("slot %d: error=%v analysis=%v", i, r.Error, r.Analysis)
		}
		b, _ := workloads.Get(n)
		want := reportJSON(t, direct, b.Program(), constraints.ContextSensitive)
		got, err := json.Marshal(r.Analysis.Report)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: batch report differs from direct engine report", n)
		}
	}
}

// TestBatchParseErrorsPerSlot: a broken program fails its slot, not
// the batch.
func TestBatchParseErrorsPerSlot(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := BatchRequest{Programs: []BatchProgram{
		{Name: "good", Source: "void main() { skip; }"},
		{Name: "bad", Source: "void main() { $$$ }"},
		{Name: "clockmisuse", Source: "void main() { async { next; } }"},
	}}
	status, data, _ := postJSON(t, ts.Client(), ts.URL+"/v1/batch", req)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, data)
	}
	resp := decodeBatch(t, data)
	if resp.Results[0].Error != nil || resp.Results[0].Analysis == nil {
		t.Fatalf("good slot failed: %+v", resp.Results[0])
	}
	for _, i := range []int{1, 2} {
		r := resp.Results[i]
		if r.Error == nil || r.Error.Kind != "parse" || r.Analysis != nil {
			t.Fatalf("slot %d (%s): want parse error, got %+v", i, r.Name, r)
		}
	}
}

// TestBatchDedupsIdenticalPrograms: N copies of one program are one
// engine solve; every slot still gets the full report.
func TestBatchDedupsIdenticalPrograms(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	src := "void main() { A: async { S: skip; } T: skip; }"
	req := BatchRequest{Programs: []BatchProgram{
		{Source: src}, {Source: src}, {Source: src}, {Source: src},
	}}
	status, data, _ := postJSON(t, ts.Client(), ts.URL+"/v1/batch", req)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, data)
	}
	resp := decodeBatch(t, data)
	first, err := json.Marshal(resp.Results[0].Analysis.Report)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range resp.Results {
		if r.Analysis == nil {
			t.Fatalf("slot %d missing analysis", i)
		}
		got, _ := json.Marshal(r.Analysis.Report)
		if !bytes.Equal(got, first) {
			t.Fatalf("slot %d report differs within dedup group", i)
		}
	}
	if got := s.metrics.solves.Value(); got != 1 {
		t.Fatalf("engine solves = %d, want 1 (in-batch dedup)", got)
	}
	if got := s.metrics.batchPrograms.Value(); got != 4 {
		t.Fatalf("batchPrograms = %d, want 4", got)
	}
}

// TestBatchRejectsOversizeAndEmpty: request-level validation.
func TestBatchRejectsOversizeAndEmpty(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBatchPrograms: 2})
	status, data, _ := postJSON(t, ts.Client(), ts.URL+"/v1/batch", BatchRequest{})
	if status != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d: %s", status, data)
	}
	req := BatchRequest{Programs: []BatchProgram{
		{Source: "void main() { skip; }"},
		{Source: "void main() { skip; skip; }"},
		{Source: "void main() { skip; skip; skip; }"},
	}}
	status, data, _ = postJSON(t, ts.Client(), ts.URL+"/v1/batch", req)
	if status != http.StatusBadRequest {
		t.Fatalf("oversize batch: status %d: %s", status, data)
	}
	var er ErrorResponse
	if err := json.Unmarshal(data, &er); err != nil || er.Error.Kind != "bad_request" {
		t.Fatalf("oversize batch error = %s", data)
	}
}

// TestBatchAllParseErrorsSkipsAdmission: a batch with no valid
// program returns without ever taking an admission slot.
func TestBatchAllParseErrorsSkipsAdmission(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	req := BatchRequest{Programs: []BatchProgram{{Source: "!!"}, {Source: "void"}}}
	status, data, _ := postJSON(t, ts.Client(), ts.URL+"/v1/batch", req)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, data)
	}
	resp := decodeBatch(t, data)
	for i, r := range resp.Results {
		if r.Error == nil {
			t.Fatalf("slot %d: expected parse error", i)
		}
	}
	if got := s.metrics.batches.Value(); got != 0 {
		t.Fatalf("batches = %d, want 0 (no admission)", got)
	}
}
