package server

import (
	"fx10/internal/engine"
	"fx10/internal/mhp"
)

// Wire types of the HTTP/JSON API. Every response body is
// deterministic for a given program state — mhp.Report is byte-stable
// by contract — so responses can be compared, cached and golden-filed.

// AnalyzeRequest is the body of POST /v1/analyze.
type AnalyzeRequest struct {
	// Source is the FX10 program text.
	Source string `json:"source"`
	// Mode is "cs" (default) or "ci".
	Mode string `json:"mode,omitempty"`
}

// AnalyzeResponse is the body of a successful /v1/analyze (and the
// report part of /v1/delta).
type AnalyzeResponse struct {
	// ProgramHash identifies the analyzed program for /v1/query and
	// equals report.programHash.
	ProgramHash string `json:"programHash"`
	// Cached is true when the engine served the solve from its
	// program cache; Coalesced when this request joined another
	// in-flight solve of the same program.
	Cached    bool `json:"cached"`
	Coalesced bool `json:"coalesced"`
	// SolveMs is the engine's solve-stage wall time for the run that
	// produced the result (zero on a cache hit).
	SolveMs float64 `json:"solveMs"`
	// Report is the full MHP report.
	Report mhp.Report `json:"report"`
}

// QueryRequest is the body of POST /v1/query: a may-happen-in-
// parallel question about a previously analyzed program.
type QueryRequest struct {
	ProgramHash string `json:"programHash"`
	Mode        string `json:"mode,omitempty"`
	// A and B are label display names (as reported in mhpPairs).
	A string `json:"a"`
	B string `json:"b"`
}

// QueryResponse is the verdict.
type QueryResponse struct {
	ProgramHash string `json:"programHash"`
	A           string `json:"a"`
	B           string `json:"b"`
	// MHP is Theorem 3's verdict: false means the two labels can
	// never run in parallel; true means the analysis cannot rule it
	// out.
	MHP bool `json:"mhp"`
}

// DeltaRequest is the body of POST /v1/delta: the full edited source
// of a session's program. The first request of a session pays a full
// analyze; later requests re-solve only the dirty method closure
// against the session's previous version.
type DeltaRequest struct {
	// Session names the editing session; any non-empty string.
	Session string `json:"session"`
	Source  string `json:"source"`
	// Mode must be consistent within a session ("cs" default).
	Mode string `json:"mode,omitempty"`
}

// DeltaResponse is AnalyzeResponse plus what the incremental path
// reused.
type DeltaResponse struct {
	AnalyzeResponse
	// Delta is nil on the session's first (full) analyze.
	Delta *DeltaStats `json:"delta,omitempty"`
}

// DeltaStats mirrors engine.DeltaStats on the wire.
type DeltaStats struct {
	MethodsTotal    int      `json:"methodsTotal"`
	MethodsReused   int      `json:"methodsReused"`
	MethodsResolved int      `json:"methodsResolved"`
	DirtyMethods    []string `json:"dirtyMethods,omitempty"`
	Full            bool     `json:"full,omitempty"`
}

func deltaStatsFrom(ds *engine.DeltaStats) *DeltaStats {
	if ds == nil {
		return nil
	}
	return &DeltaStats{
		MethodsTotal:    ds.MethodsTotal,
		MethodsReused:   ds.MethodsReused,
		MethodsResolved: ds.MethodsResolved,
		DirtyMethods:    ds.DirtyMethods,
		Full:            ds.Full,
	}
}

// ErrorResponse is every non-2xx body.
type ErrorResponse struct {
	Error ErrorDetail `json:"error"`
}

// ErrorDetail carries a machine-routable kind alongside the message.
// Kinds: "parse" (bad FX10 source), "analysis" (the pipeline failed
// on valid-looking input), "overloaded" (admission queue full; honour
// Retry-After), "timeout" (deadline hit mid-solve), "bad_request",
// "not_found", "draining".
type ErrorDetail struct {
	Kind    string `json:"kind"`
	Message string `json:"message"`
}

// HealthResponse is the body of GET /healthz.
type HealthResponse struct {
	Status string `json:"status"` // "ok" or "draining"
}
