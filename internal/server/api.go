package server

import (
	"fx10/internal/engine"
	"fx10/internal/mhp"
)

// Wire types of the HTTP/JSON API. Every response body is
// deterministic for a given program state — mhp.Report is byte-stable
// by contract — so responses can be compared, cached and golden-filed.

// AnalyzeRequest is the body of POST /v1/analyze.
type AnalyzeRequest struct {
	// Source is the program text.
	Source string `json:"source"`
	// Language names the source language: "" or "fx10" for core FX10,
	// or any front end registered in internal/frontend ("x10", "go").
	// Non-core sources are lowered through the front-end boundary
	// before analysis.
	Language string `json:"language,omitempty"`
	// Mode is "cs" (default) or "ci".
	Mode string `json:"mode,omitempty"`
}

// AnalyzeResponse is the body of a successful /v1/analyze (and the
// report part of /v1/delta).
type AnalyzeResponse struct {
	// ProgramHash identifies the analyzed program for /v1/query and
	// equals report.programHash.
	ProgramHash string `json:"programHash"`
	// Cached is true when the engine served the solve from its
	// program cache; Coalesced when this request joined another
	// in-flight solve of the same program.
	Cached    bool `json:"cached"`
	Coalesced bool `json:"coalesced"`
	// SolveMs is the engine's solve-stage wall time for the run that
	// produced the result (zero on a cache hit).
	SolveMs float64 `json:"solveMs"`
	// Report is the full MHP report.
	Report mhp.Report `json:"report"`
}

// BatchRequest is the body of POST /v1/batch: N programs analyzed
// under ONE admission slot. A corpus submission (a CI run, an editor
// workspace scan) is one unit of work to the admission queue, not N
// competing requests — so a 64-program batch cannot starve
// interactive /v1/analyze traffic the way 64 parallel posts would.
// Within the batch, content-identical programs are solved once, and
// each program still coalesces with any concurrent solve of the same
// (hash, mode) flight.
type BatchRequest struct {
	// Programs are analyzed in order; results come back in the same
	// order. Bounded by Config.MaxBatchPrograms (default 64).
	Programs []BatchProgram `json:"programs"`
	// Mode applies to the whole batch: "cs" (default) or "ci".
	Mode string `json:"mode,omitempty"`
	// Language is the batch-wide default source language (see
	// AnalyzeRequest.Language); individual programs may override it.
	Language string `json:"language,omitempty"`
}

// BatchProgram is one program of a batch.
type BatchProgram struct {
	// Name is echoed back in the result slot (optional).
	Name   string `json:"name,omitempty"`
	Source string `json:"source"`
	// Language overrides the batch-wide language for this program.
	Language string `json:"language,omitempty"`
}

// BatchResponse is the body of a successful /v1/batch. The request
// succeeds as a whole even when individual programs fail to parse:
// per-program errors live in their result slots.
type BatchResponse struct {
	// Results[i] corresponds to Programs[i].
	Results []BatchResult `json:"results"`
}

// BatchResult is one program's outcome: exactly one of Error and
// Analysis is set.
type BatchResult struct {
	Name string `json:"name,omitempty"`
	// Error reports a per-program failure ("parse" kind for bad
	// source) without failing the batch.
	Error *ErrorDetail `json:"error,omitempty"`
	// Analysis is the same shape /v1/analyze returns.
	Analysis *AnalyzeResponse `json:"analysis,omitempty"`
}

// QueryRequest is the body of POST /v1/query: a may-happen-in-
// parallel question about a previously analyzed program.
type QueryRequest struct {
	ProgramHash string `json:"programHash"`
	Mode        string `json:"mode,omitempty"`
	// A and B are label display names (as reported in mhpPairs).
	A string `json:"a"`
	B string `json:"b"`
}

// QueryResponse is the verdict.
type QueryResponse struct {
	ProgramHash string `json:"programHash"`
	A           string `json:"a"`
	B           string `json:"b"`
	// MHP is Theorem 3's verdict: false means the two labels can
	// never run in parallel; true means the analysis cannot rule it
	// out.
	MHP bool `json:"mhp"`
}

// DeltaRequest is the body of POST /v1/delta: the full edited source
// of a session's program. The first request of a session pays a full
// analyze; later requests re-solve only the dirty method closure
// against the session's previous version.
type DeltaRequest struct {
	// Session names the editing session; any non-empty string.
	Session string `json:"session"`
	Source  string `json:"source"`
	// Language names the source language (see AnalyzeRequest.Language)
	// and must be consistent within a session: a delta base lowered
	// from one front end is not a valid base for another.
	Language string `json:"language,omitempty"`
	// Mode must be consistent within a session ("cs" default).
	Mode string `json:"mode,omitempty"`
}

// DeltaResponse is AnalyzeResponse plus what the incremental path
// reused.
type DeltaResponse struct {
	AnalyzeResponse
	// Delta is nil on the session's first (full) analyze.
	Delta *DeltaStats `json:"delta,omitempty"`
}

// DeltaStats mirrors engine.DeltaStats on the wire.
type DeltaStats struct {
	MethodsTotal    int      `json:"methodsTotal"`
	MethodsReused   int      `json:"methodsReused"`
	MethodsResolved int      `json:"methodsResolved"`
	DirtyMethods    []string `json:"dirtyMethods,omitempty"`
	Full            bool     `json:"full,omitempty"`
}

func deltaStatsFrom(ds *engine.DeltaStats) *DeltaStats {
	if ds == nil {
		return nil
	}
	return &DeltaStats{
		MethodsTotal:    ds.MethodsTotal,
		MethodsReused:   ds.MethodsReused,
		MethodsResolved: ds.MethodsResolved,
		DirtyMethods:    ds.DirtyMethods,
		Full:            ds.Full,
	}
}

// ErrorResponse is every non-2xx body.
type ErrorResponse struct {
	Error ErrorDetail `json:"error"`
}

// ErrorDetail carries a machine-routable kind alongside the message.
// Kinds: "parse" (bad FX10 source), "analysis" (the pipeline failed
// on valid-looking input), "overloaded" (admission queue full; honour
// Retry-After), "timeout" (deadline hit mid-solve), "bad_request",
// "not_found", "draining".
type ErrorDetail struct {
	Kind    string `json:"kind"`
	Message string `json:"message"`
}

// HealthResponse is the body of GET /healthz.
type HealthResponse struct {
	Status string `json:"status"` // "ok" or "draining"
}
