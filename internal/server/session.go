package server

import (
	"container/list"
	"sync"

	"fx10/internal/constraints"
	"fx10/internal/engine"
	"fx10/internal/intset"
	"fx10/internal/syntax"
)

// Delta sessions: /v1/delta is an editor-shaped protocol. A session
// holds the last analyzed version of one program; each request sends
// the full edited source and the server re-solves only the dirty
// method closure against the session's base (engine.AnalyzeDelta),
// then advances the base. Edits within one session are serialized by
// the session mutex — an editor sends keystroke-ordered revisions —
// while different sessions proceed in parallel. The store is a
// bounded LRU: an evicted session is not an error, just a cold start
// (the next delta request becomes a full analyze).

type session struct {
	mu   sync.Mutex
	mode constraints.Mode
	lang string         // canonical front-end name ("fx10", "x10", "go")
	base *engine.Result // nil until the first analyze completes
}

type sessionStore struct {
	mu    sync.Mutex
	cap   int
	m     map[string]*list.Element
	order *list.List // front = most recently used; values are sessionEntry
}

type sessionEntry struct {
	id string
	s  *session
}

func newSessionStore(capacity int) *sessionStore {
	if capacity < 1 {
		// A zero or negative capacity would evict each session the
		// moment it is inserted — a store that silently forgets
		// everything. Clamp to the smallest store that can function.
		capacity = 1
	}
	return &sessionStore{
		cap:   capacity,
		m:     make(map[string]*list.Element),
		order: list.New(),
	}
}

// get returns the session for id, creating it with the given mode and
// language on first use. A session is keyed by (id, mode, lang) in
// effect: requesting an existing id under a different mode or front
// end returns ok=false — the base result held by the session was
// solved for its configuration's lowered program, so serving it to a
// request of another configuration would mix two different analyses
// (a delta against a base lowered by another front end is undefined).
// created reports a fresh session; evicted is the number of sessions
// dropped to make room. The checks happen under the store lock, so a
// caller never observes a session whose configuration it did not
// agree to.
func (st *sessionStore) get(id string, mode constraints.Mode, lang string) (s *session, created bool, evicted int, ok bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if e, exists := st.m[id]; exists {
		s = e.Value.(sessionEntry).s
		if s.mode != mode || s.lang != lang {
			return nil, false, 0, false
		}
		st.order.MoveToFront(e)
		return s, false, 0, true
	}
	s = &session{mode: mode, lang: lang}
	st.m[id] = st.order.PushFront(sessionEntry{id: id, s: s})
	for len(st.m) > st.cap {
		oldest := st.order.Back()
		st.order.Remove(oldest)
		delete(st.m, oldest.Value.(sessionEntry).id)
		evicted++
	}
	return s, true, evicted, true
}

// len is the number of live sessions.
func (st *sessionStore) len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.m)
}

// queryIndex maps analyzed program hashes to the immutable data
// /v1/query needs: the MHP pair set and the label-name table. Entries
// are added by analyze and delta responses and the index is a bounded
// LRU; /v1/query on an evicted (or never-seen) hash is a 404 telling
// the client to analyze first.
type queryIndex struct {
	mu    sync.Mutex
	cap   int
	m     map[flightKey]*list.Element
	order *list.List // values are indexEntry
}

type indexEntry struct {
	key flightKey
	val *indexed
}

// indexed is one analyzed program, read-only after construction.
type indexed struct {
	program *syntax.Program
	m       *intset.PairSet
}

func newQueryIndex(capacity int) *queryIndex {
	if capacity < 1 {
		capacity = 1 // see newSessionStore: cap 0 would evict on insert
	}
	return &queryIndex{
		cap:   capacity,
		m:     make(map[flightKey]*list.Element),
		order: list.New(),
	}
}

func (qi *queryIndex) put(key flightKey, val *indexed) {
	qi.mu.Lock()
	defer qi.mu.Unlock()
	if e, ok := qi.m[key]; ok {
		qi.order.MoveToFront(e)
		return
	}
	qi.m[key] = qi.order.PushFront(indexEntry{key: key, val: val})
	for len(qi.m) > qi.cap {
		oldest := qi.order.Back()
		qi.order.Remove(oldest)
		delete(qi.m, oldest.Value.(indexEntry).key)
	}
}

func (qi *queryIndex) get(key flightKey) (*indexed, bool) {
	qi.mu.Lock()
	defer qi.mu.Unlock()
	e, ok := qi.m[key]
	if !ok {
		return nil, false
	}
	qi.order.MoveToFront(e)
	return e.Value.(indexEntry).val, true
}
