package server

import (
	"context"
	"fmt"
	"net/http"
	"time"

	"fx10/internal/constraints"
	"fx10/internal/engine"
	"fx10/internal/syntax"
)

// handleBatch analyzes N programs under one admission slot.
//
// Shape of the work: parse everything first (parse failures fill
// their result slots and never touch admission), dedup
// content-identical programs within the batch, then — holding a
// single worker slot — solve each distinct program through the same
// flight mechanism /v1/analyze uses, so a batch member still
// coalesces with concurrent interactive requests for the same
// program. Solves run sequentially within the batch: the batch owns
// one slot, so it gets one worker's worth of throughput, which is
// exactly the starvation-resistance the endpoint exists for.
//
// Results are deterministic and input-ordered. Engine results are
// deterministic per program, so a batch response is byte-stable for a
// given corpus regardless of in-batch dedup or cross-request
// coalescing.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	mode, ok := parseModeStr(req.Mode)
	if !ok {
		s.writeError(w, http.StatusBadRequest, "bad_request", fmt.Sprintf("unknown mode %q (want cs or ci)", req.Mode))
		return
	}
	if len(req.Programs) == 0 {
		s.writeError(w, http.StatusBadRequest, "bad_request", "programs must be non-empty")
		return
	}
	if len(req.Programs) > s.cfg.MaxBatchPrograms {
		s.writeError(w, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("batch of %d programs exceeds the limit of %d", len(req.Programs), s.cfg.MaxBatchPrograms))
		return
	}
	if s.draining.Load() {
		s.writeError(w, http.StatusServiceUnavailable, "draining", "server is draining")
		return
	}

	// Parse phase: static input errors are per-slot results, not
	// request failures — a corpus with one broken file still gets the
	// other N-1 reports. Each program parses under its own language
	// (falling back to the batch-wide one), so a mixed X10/Go corpus
	// is one batch.
	results := make([]BatchResult, len(req.Programs))
	parsed := make([]*syntax.Program, len(req.Programs))
	anyValid := false
	for i, bp := range req.Programs {
		results[i].Name = bp.Name
		lang := bp.Language
		if lang == "" {
			lang = req.Language
		}
		p, _, perr := parseSourceLang(bp.Source, lang)
		if perr != nil {
			results[i].Error = &ErrorDetail{Kind: perr.kind, Message: perr.msg}
			continue
		}
		parsed[i] = p
		anyValid = true
	}
	if !anyValid {
		// Nothing to solve; skip admission entirely.
		writeJSON(w, http.StatusOK, BatchResponse{Results: results})
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()

	enqueued := time.Now()
	if err := s.adm.acquire(ctx); err != nil {
		if err == errOverloaded {
			s.metrics.overload.Add(1)
			s.writeHandlerError(w, &handlerError{
				status: http.StatusTooManyRequests, kind: "overloaded",
				msg:   "admission queue full",
				retry: s.adm.retryAfter(time.Duration(s.solveEWMA.Load())),
			})
			return
		}
		s.metrics.canceled.Add(1)
		s.writeHandlerError(w, ctxError(err))
		return
	}
	s.metrics.queueWait.Observe(time.Since(enqueued))
	s.metrics.queueDepth.Set(s.adm.depth())
	s.metrics.inflight.Add(1)
	defer func() {
		s.metrics.inflight.Add(-1)
		s.adm.release()
		s.metrics.queueDepth.Set(s.adm.depth())
	}()

	s.metrics.batches.Add(1)
	s.metrics.batchPrograms.Add(int64(len(req.Programs)))

	// Solve phase, one admission slot for the whole loop. In-batch
	// dedup: the first occurrence of a (hash, mode) solves; later
	// occurrences reuse its result slot-for-slot.
	type outcome struct {
		res  *engine.Result
		herr *handlerError
	}
	done := make(map[flightKey]outcome)
	for i, p := range parsed {
		if p == nil {
			continue // parse error already recorded
		}
		key := flightKey{hash: p.Hash(), mode: mode}
		out, seen := done[key]
		if !seen {
			res, _, herr := s.solveOne(ctx, key, p, mode, fmt.Sprintf("batch[%d]", i))
			out = outcome{res: res, herr: herr}
			done[key] = out
		}
		if out.herr != nil {
			results[i].Error = &ErrorDetail{Kind: out.herr.kind, Message: out.herr.msg}
			continue
		}
		resp := s.analyzeResponse(out.res, false)
		results[i].Analysis = &resp
	}
	writeJSON(w, http.StatusOK, BatchResponse{Results: results})
}

// solveOne runs one program through the flight mechanism, assuming
// the caller already holds an admission slot.
func (s *Server) solveOne(ctx context.Context, key flightKey, p *syntax.Program, mode constraints.Mode, what string) (*engine.Result, bool, *handlerError) {
	res, err, joined := s.flights.do(ctx, key, func(fctx context.Context) (*engine.Result, error) {
		s.metrics.solves.Add(1)
		t0 := time.Now()
		r, err := s.eng.AnalyzeSafe(fctx, engine.Job{Name: what, Program: p, Mode: mode})
		if err == nil {
			d := time.Since(t0)
			s.metrics.solveLatency.Observe(d)
			s.observeSolve(d)
			s.metrics.observeShard(r.Stats.Shard)
		}
		return r, err
	})
	if joined {
		s.metrics.coalesced.Add(1)
	}
	if err != nil {
		return nil, joined, s.solveError(err)
	}
	s.index.put(key, &indexed{program: res.Program, m: res.M})
	return res, joined, nil
}
