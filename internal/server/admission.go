package server

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// Admission control: a bounded worker pool with an explicit wait
// queue in front of it. A request first tries to take a worker slot;
// if none is free it queues, and if the queue is already at capacity
// it is rejected immediately — the server answers 429 with a
// Retry-After hint instead of letting latency collapse under a
// standing backlog. Rejecting at admission keeps the failure mode
// cheap: an overloaded server spends its cycles on the requests it
// has already accepted.

// errOverloaded is returned by acquire when the wait queue is full.
var errOverloaded = errors.New("server: overloaded, admission queue full")

type admission struct {
	slots    chan struct{} // capacity = worker count
	queueCap int64
	queued   atomic.Int64
}

func newAdmission(workers, queueDepth int) *admission {
	return &admission{
		slots:    make(chan struct{}, workers),
		queueCap: int64(queueDepth),
	}
}

// acquire takes a worker slot, queueing for at most the queue
// capacity's worth of company. It returns errOverloaded when the
// queue is full and ctx.Err() when the caller gives up while
// queued. On success the caller must release().
func (a *admission) acquire(ctx context.Context) error {
	select {
	case a.slots <- struct{}{}:
		return nil
	default:
	}
	if a.queued.Add(1) > a.queueCap {
		a.queued.Add(-1)
		return errOverloaded
	}
	defer a.queued.Add(-1)
	select {
	case a.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (a *admission) release() { <-a.slots }

// depth is the number of requests currently waiting for a slot.
func (a *admission) depth() int64 { return a.queued.Load() }

// retryAfter estimates how long a rejected client should back off:
// one full queue drain at one (typical) solve per worker per interval.
// Clamped to at least a second so clients do not hammer.
func (a *admission) retryAfter(typicalSolve time.Duration) time.Duration {
	workers := cap(a.slots)
	if workers == 0 {
		workers = 1
	}
	if typicalSolve <= 0 {
		typicalSolve = 50 * time.Millisecond
	}
	d := typicalSolve * time.Duration((a.queueCap+int64(workers)-1)/int64(workers))
	if d < time.Second {
		d = time.Second
	}
	return d
}
