package places

import (
	"testing"

	"fx10/internal/constraints"
	"fx10/internal/labels"
	"fx10/internal/machine"
	"fx10/internal/parser"
	"fx10/internal/syntax"
	"fx10/internal/tree"
)

const placedSrc = `
array 4;
void remote() {
  RW: a[1] = 1;
}
void main() {
  A1: async at (1) { S1: skip; C1: remote(); }
  A2: async at (2) { S2: skip; }
  A3: async { S3: skip; }
  H:  skip;
}
`

func label(t *testing.T, p *syntax.Program, name string) syntax.Label {
	t.Helper()
	l, ok := p.LabelByName(name)
	if !ok {
		t.Fatalf("label %s missing", name)
	}
	return l
}

func TestComputePlaceSets(t *testing.T) {
	p := parser.MustParse(placedSrc)
	pi := Compute(p)
	if pi.NumPlaces != 3 {
		t.Fatalf("NumPlaces = %d, want 3", pi.NumPlaces)
	}
	cases := map[string][]int{
		"S1": {1}, "S2": {2}, "S3": {0}, "H": {0},
		"A1": {0}, "A2": {0}, "A3": {0}, // the async instructions run at the spawner's place
		"C1": {1}, "RW": {1}, // the call and the callee run at place 1
	}
	for name, want := range cases {
		l := label(t, p, name)
		got := pi.Places(l).Sorted()
		if len(got) != len(want) {
			t.Fatalf("%s places = %v, want %v", name, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s places = %v, want %v", name, got, want)
			}
		}
	}
}

func TestMethodCalledFromTwoPlaces(t *testing.T) {
	p := parser.MustParse(`
void shared() { W: skip; }
void main() {
  async at (1) { shared(); }
  async at (2) { shared(); }
}
`)
	pi := Compute(p)
	w := label(t, p, "W")
	got := pi.Places(w).Sorted()
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("W places = %v, want [1 2]", got)
	}
	mi, _ := p.MethodIndex("shared")
	if pi.MethodPlaces(mi).Len() != 2 {
		t.Fatalf("shared method places = %v", pi.MethodPlaces(mi))
	}
}

func TestNestedAsyncInheritsPlace(t *testing.T) {
	p := parser.MustParse(`
void main() {
  async at (2) {
    async { I: skip; }
  }
}
`)
	pi := Compute(p)
	i := label(t, p, "I")
	if got := pi.Places(i).Sorted(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("I places = %v, want [2]", got)
	}
}

func TestRefineDropsCrossPlacePairs(t *testing.T) {
	p := parser.MustParse(placedSrc)
	in := labels.Compute(p)
	m := constraints.Generate(in, constraints.ContextSensitive).Solve(constraints.Options{}).MainM()
	pi := Compute(p)
	refined := pi.Refine(m)

	s1 := label(t, p, "S1")
	s2 := label(t, p, "S2")
	s3 := label(t, p, "S3")
	h := label(t, p, "H")

	// All three async bodies may happen in parallel pairwise…
	for _, pr := range [][2]syntax.Label{{s1, s2}, {s1, s3}, {s2, s3}} {
		if !m.Has(int(pr[0]), int(pr[1])) {
			t.Fatalf("M missing (%s,%s)", p.LabelName(pr[0]), p.LabelName(pr[1]))
		}
	}
	// …but at distinct places, so the refinement drops them all.
	for _, pr := range [][2]syntax.Label{{s1, s2}, {s1, s3}, {s2, s3}} {
		if refined.Has(int(pr[0]), int(pr[1])) {
			t.Fatalf("refined M kept cross-place (%s,%s)", p.LabelName(pr[0]), p.LabelName(pr[1]))
		}
	}
	// Same-place pairs survive: S3 and H both run at place 0.
	if m.Has(int(s3), int(h)) && !refined.Has(int(s3), int(h)) {
		t.Fatalf("refined M dropped same-place (S3,H)")
	}
	// The refinement is a subset.
	if !refined.SubsetOf(m) {
		t.Fatalf("refined M not a subset")
	}
}

// Soundness of the refinement: along executions, the dynamic
// same-place parallel pairs are contained in the refined M.
func TestSameplaceParallelSoundness(t *testing.T) {
	p := parser.MustParse(placedSrc)
	in := labels.Compute(p)
	m := constraints.Generate(in, constraints.ContextSensitive).Solve(constraints.Options{}).MainM()
	refined := Compute(p).Refine(m)

	for seed := int64(0); seed < 30; seed++ {
		states := machine.Trace(p, machine.Initial(p, nil), machine.NewRandom(seed), 300)
		for i, st := range states {
			sp := SameplaceParallel(p, st.T)
			if !sp.SubsetOf(refined) {
				t.Fatalf("seed %d state %d: dynamic same-place pairs %v ⊄ refined %v",
					seed, i, sp, refined)
			}
			// And the same-place pairs are a subset of all parallel
			// pairs.
			if !sp.SubsetOf(in.Parallel(st.T)) {
				t.Fatalf("seed %d state %d: same-place pairs not ⊆ parallel", seed, i)
			}
		}
	}
}

// With no place annotations, Refine is the identity on M restricted
// to reachable labels (every label runs at place 0).
func TestRefineIdentityWithoutPlaces(t *testing.T) {
	p := parser.MustParse(`
void main() {
  async { S1: skip; }
  S2: skip;
}
`)
	in := labels.Compute(p)
	m := constraints.Generate(in, constraints.ContextSensitive).Solve(constraints.Options{}).MainM()
	pi := Compute(p)
	if pi.NumPlaces != 1 {
		t.Fatalf("NumPlaces = %d", pi.NumPlaces)
	}
	if !pi.Refine(m).Equal(m) {
		t.Fatalf("refinement changed M without places")
	}
}

// SameplaceParallel on a hand-built tree: two leaves under ∥ at the
// same place pair; at different places they do not; the right side of
// ▷ never pairs.
func TestSameplaceParallelTree(t *testing.T) {
	p := parser.MustParse(`void main() { X: skip; Y: skip; }`)
	x := p.Main().Body
	y := p.Main().Body.Next
	mk := func(px, py int) tree.Tree {
		return &tree.Par{L: &tree.Leaf{S: x, Place: px}, R: &tree.Leaf{S: y, Place: py}}
	}
	if same := SameplaceParallel(p, mk(1, 1)); same.Len() != 2 {
		t.Fatalf("same-place pair missing: %v", same)
	}
	if diff := SameplaceParallel(p, mk(1, 2)); !diff.Empty() {
		t.Fatalf("cross-place pair reported: %v", diff)
	}
	fin := &tree.Fin{L: &tree.Leaf{S: x, Place: 1}, R: &tree.Leaf{S: y, Place: 1}}
	if got := SameplaceParallel(p, fin); !got.Empty() {
		t.Fatalf("▷ right side paired: %v", got)
	}
}
