// Package places implements the future-work extension sketched in
// Section 8 of the paper: executing trees ⟨s⟩^q carry the place q the
// statement runs at, and the may-happen-in-parallel question is
// refined to "may two statements happen in parallel *at the same
// place*".
//
// Statically, each label is assigned the set of places its enclosing
// activity may run at: main starts at place 0, a plain async inherits
// its spawner's place, and async at (q) switches to place q. Method
// place sets are a fixpoint over the call graph (a method called from
// several places may run at all of them). The refinement then keeps
// only the MHP pairs whose place sets intersect.
//
// Dynamically, the machine's leaves already carry places (see
// internal/machine); SameplaceParallel is the place-refined analogue
// of the paper's parallel(T), used as the ground truth in tests.
package places

import (
	"fx10/internal/intset"
	"fx10/internal/syntax"
	"fx10/internal/tree"
)

// Info holds the computed place sets for one program.
type Info struct {
	p *syntax.Program
	// NumPlaces is one more than the largest place annotation (place
	// 0 always exists).
	NumPlaces int
	// labelPlaces[l] is the set of places label l may execute at.
	labelPlaces []*intset.Set
	// methodPlaces[mi] is the set of places method mi may be invoked
	// at.
	methodPlaces []*intset.Set
}

// Compute builds the place sets by fixpoint over the call graph.
func Compute(p *syntax.Program) *Info {
	numPlaces := 1
	p.EachInstr(func(_ int, i syntax.Instr) {
		if a, ok := i.(*syntax.Async); ok && a.Place+1 > numPlaces {
			numPlaces = a.Place + 1
		}
	})
	pi := &Info{
		p:            p,
		NumPlaces:    numPlaces,
		labelPlaces:  make([]*intset.Set, p.NumLabels()),
		methodPlaces: make([]*intset.Set, len(p.Methods)),
	}
	for l := range pi.labelPlaces {
		pi.labelPlaces[l] = intset.New(numPlaces)
	}
	for m := range pi.methodPlaces {
		pi.methodPlaces[m] = intset.New(numPlaces)
	}
	pi.methodPlaces[p.MainIndex].Add(0)

	for {
		changed := false
		for mi, m := range p.Methods {
			if pi.walk(m.Body, pi.methodPlaces[mi]) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return pi
}

// walk propagates the place set ps through the statement, updating
// label and method place sets; it reports whether anything grew.
func (pi *Info) walk(s *syntax.Stmt, ps *intset.Set) bool {
	changed := false
	for cur := s; cur != nil; cur = cur.Next {
		i := cur.Instr
		if pi.labelPlaces[i.Label()].UnionWith(ps) {
			changed = true
		}
		switch i := i.(type) {
		case *syntax.While:
			if pi.walk(i.Body, ps) {
				changed = true
			}
		case *syntax.Finish:
			if pi.walk(i.Body, ps) {
				changed = true
			}
		case *syntax.Async:
			bodyPS := ps
			if i.Place != 0 {
				bodyPS = intset.Of(pi.NumPlaces, i.Place)
			}
			if pi.walk(i.Body, bodyPS) {
				changed = true
			}
		case *syntax.Call:
			if pi.methodPlaces[i.Method].UnionWith(ps) {
				changed = true
			}
		}
	}
	return changed
}

// Places returns the place set of a label (shared; do not mutate).
func (pi *Info) Places(l syntax.Label) *intset.Set { return pi.labelPlaces[l] }

// MethodPlaces returns the place set of a method (shared; do not
// mutate).
func (pi *Info) MethodPlaces(mi int) *intset.Set { return pi.methodPlaces[mi] }

// MayShare reports whether two labels may execute at a common place.
func (pi *Info) MayShare(l1, l2 syntax.Label) bool {
	s := pi.labelPlaces[l1].Clone()
	s.IntersectWith(pi.labelPlaces[l2])
	return !s.Empty()
}

// Refine filters an MHP pair set down to the pairs that may happen in
// parallel at the same place. The result is sound for the same-place
// question because the dynamic place of an instruction is always in
// its static place set.
func (pi *Info) Refine(m *intset.PairSet) *intset.PairSet {
	out := intset.NewPairs(pi.p.NumLabels())
	m.Each(func(i, j int) {
		if pi.MayShare(syntax.Label(i), syntax.Label(j)) {
			out.Add(i, j)
		}
	})
	return out
}

// SameplaceParallel is the place-refined parallel(T): pairs of labels
// of statements that can both step now, in ∥-related positions, at
// the same place. It is the dynamic ground truth for Refine.
func SameplaceParallel(p *syntax.Program, t tree.Tree) *intset.PairSet {
	out := intset.NewPairs(p.NumLabels())
	collectSameplace(t, out)
	return out
}

// enabled returns the (first label, place) of every leaf that may
// step next: the right side of ▷ is not enabled.
func enabled(t tree.Tree) [][2]int {
	switch t := t.(type) {
	case *tree.Leaf:
		return [][2]int{{int(t.S.Instr.Label()), t.Place}}
	case *tree.Fin:
		return enabled(t.L)
	case *tree.Par:
		return append(enabled(t.L), enabled(t.R)...)
	}
	return nil
}

func collectSameplace(t tree.Tree, dst *intset.PairSet) {
	switch t := t.(type) {
	case *tree.Fin:
		collectSameplace(t.L, dst)
	case *tree.Par:
		collectSameplace(t.L, dst)
		collectSameplace(t.R, dst)
		for _, a := range enabled(t.L) {
			for _, b := range enabled(t.R) {
				if a[1] == b[1] {
					dst.AddSym(a[0], b[0])
				}
			}
		}
	}
}
