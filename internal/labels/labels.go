// Package labels implements the helper functions of Figure 3 of the
// paper: Slabels, Tlabels, FSlabels, FTlabels, symcross, Lcross,
// Scross, Tcross and parallel.
//
// Slabels is the ⊆-least solution of equations (15)–(21). Because a
// method call's Slabels includes the callee body's Slabels (equation
// (21)) and methods may be mutually recursive, Slabels is computed as
// a least fixpoint over per-method label sets; statement-level sets
// are then derived (and memoized) on demand.
package labels

import (
	"sync"

	"fx10/internal/intset"
	"fx10/internal/syntax"
	"fx10/internal/tree"
)

// Info holds the computed Slabels fixpoint for one program and serves
// all helper-function queries. The sets returned by its methods are
// owned by Info and must not be mutated by callers; clone before
// modifying.
type Info struct {
	p *syntax.Program
	// method[i] is Slabels_p(s_i) for the body s_i of method i.
	method []*intset.Set
	// Iterations is the number of fixpoint passes it took to
	// stabilize the per-method sets (≥ 1; the final no-change pass is
	// counted, matching how the paper's solver reports iterations).
	Iterations int
	// memoMu guards memo: one Info may be shared by concurrent
	// readers (internal/engine hands cached analyses to many
	// goroutines), and Slabels fills the memo lazily.
	memoMu sync.Mutex
	memo   map[*syntax.Stmt]*intset.Set
}

// Compute builds the Slabels fixpoint for p.
func Compute(p *syntax.Program) *Info {
	in := &Info{
		p:      p,
		method: make([]*intset.Set, len(p.Methods)),
		memo:   make(map[*syntax.Stmt]*intset.Set),
	}
	n := p.NumLabels()
	for i := range in.method {
		in.method[i] = intset.New(n)
	}
	// Least fixpoint: method sets start empty and grow monotonically.
	for {
		in.Iterations++
		changed := false
		for i, m := range p.Methods {
			next := intset.New(n)
			in.addSlabels(next, m.Body)
			if in.method[i].UnionWith(next) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return in
}

// Program returns the program the info was computed for.
func (in *Info) Program() *syntax.Program { return in.p }

// NumLabels returns the label universe size.
func (in *Info) NumLabels() int { return in.p.NumLabels() }

// addSlabels adds Slabels_p(s) to dst using the current per-method
// approximations (equations (15)–(21)).
func (in *Info) addSlabels(dst *intset.Set, s *syntax.Stmt) {
	for cur := s; cur != nil; cur = cur.Next {
		i := cur.Instr
		dst.Add(int(i.Label()))
		switch i := i.(type) {
		case *syntax.While:
			in.addSlabels(dst, i.Body)
		case *syntax.Async:
			in.addSlabels(dst, i.Body)
		case *syntax.Finish:
			in.addSlabels(dst, i.Body)
		case *syntax.Call:
			dst.UnionWith(in.method[i.Method])
		}
	}
}

// MethodLabels returns Slabels of method mi's body. The result is
// shared; do not mutate.
func (in *Info) MethodLabels(mi int) *intset.Set { return in.method[mi] }

// Slabels returns Slabels_p(s): the labels of statements that may be
// executed during execution of s (equations (15)–(21)). The result is
// memoized and shared; do not mutate.
func (in *Info) Slabels(s *syntax.Stmt) *intset.Set {
	in.memoMu.Lock()
	defer in.memoMu.Unlock()
	if got, ok := in.memo[s]; ok {
		return got
	}
	out := intset.New(in.p.NumLabels())
	in.addSlabels(out, s)
	in.memo[s] = out
	return out
}

// Tlabels returns Tlabels_p(T) (equations (22)–(25)): the labels of
// statements that may execute during the execution of the tree T. The
// caller owns the result.
func (in *Info) Tlabels(t tree.Tree) *intset.Set {
	out := intset.New(in.p.NumLabels())
	in.addTlabels(out, t)
	return out
}

func (in *Info) addTlabels(dst *intset.Set, t tree.Tree) {
	switch t := t.(type) {
	case tree.DoneT:
	case *tree.Leaf:
		dst.UnionWith(in.Slabels(t.S))
	case *tree.Fin:
		in.addTlabels(dst, t.L)
		in.addTlabels(dst, t.R)
	case *tree.Par:
		in.addTlabels(dst, t.L)
		in.addTlabels(dst, t.R)
	}
}

// FSlabels returns FSlabels(s) (equations (26)–(32)): the singleton
// set holding the label of s's first instruction. The caller owns the
// result.
func (in *Info) FSlabels(s *syntax.Stmt) *intset.Set {
	out := intset.New(in.p.NumLabels())
	out.Add(int(s.Instr.Label()))
	return out
}

// FTlabels returns FTlabels(T) (equations (33)–(36)): the labels of
// statements that can execute next in T. The caller owns the result.
func (in *Info) FTlabels(t tree.Tree) *intset.Set {
	out := intset.New(in.p.NumLabels())
	in.addFTlabels(out, t)
	return out
}

func (in *Info) addFTlabels(dst *intset.Set, t tree.Tree) {
	switch t := t.(type) {
	case tree.DoneT:
	case *tree.Leaf:
		dst.Add(int(t.S.Instr.Label()))
	case *tree.Fin:
		in.addFTlabels(dst, t.L) // only the left side may step
	case *tree.Par:
		in.addFTlabels(dst, t.L)
		in.addFTlabels(dst, t.R)
	}
}

// Symcross returns symcross(A, B) = (A × B) ∪ (B × A) as a fresh pair
// set (equation (37)).
func (in *Info) Symcross(a, b *intset.Set) *intset.PairSet {
	out := intset.NewPairs(in.p.NumLabels())
	out.CrossSym(a, b)
	return out
}

// AddLcross adds Lcross(l, A) = symcross({l}, A) to dst (equation
// (38)) and reports whether dst changed.
func (in *Info) AddLcross(dst *intset.PairSet, l syntax.Label, a *intset.Set) bool {
	single := intset.Of(in.p.NumLabels(), int(l))
	return dst.CrossSym(single, a)
}

// AddScross adds Scross_p(s, A) = symcross(Slabels_p(s), A) to dst
// (equation (39)) and reports whether dst changed.
func (in *Info) AddScross(dst *intset.PairSet, s *syntax.Stmt, a *intset.Set) bool {
	return dst.CrossSym(in.Slabels(s), a)
}

// AddTcross adds Tcross_p(T, A) = symcross(Tlabels_p(T), A) to dst
// (equation (40)) and reports whether dst changed.
func (in *Info) AddTcross(dst *intset.PairSet, t tree.Tree, a *intset.Set) bool {
	return dst.CrossSym(in.Tlabels(t), a)
}

// Parallel returns parallel(T) (equations (41)–(44)): the pairs of
// labels of statements that are executing in parallel right now, i.e.
// both can take a step. The caller owns the result.
func (in *Info) Parallel(t tree.Tree) *intset.PairSet {
	out := intset.NewPairs(in.p.NumLabels())
	in.addParallel(out, t)
	return out
}

func (in *Info) addParallel(dst *intset.PairSet, t tree.Tree) {
	switch t := t.(type) {
	case tree.DoneT:
	case *tree.Leaf:
	case *tree.Fin:
		in.addParallel(dst, t.L) // parallel(T1 ▷ T2) = parallel(T1)
	case *tree.Par:
		in.addParallel(dst, t.L)
		in.addParallel(dst, t.R)
		dst.CrossSym(in.FTlabels(t.L), in.FTlabels(t.R))
	}
}
