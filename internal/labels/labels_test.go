package labels

import (
	"testing"

	"fx10/internal/fixtures"
	"fx10/internal/intset"
	"fx10/internal/parser"
	"fx10/internal/syntax"
	"fx10/internal/tree"
)

// names converts a label set to a set of display names for readable
// comparisons.
func names(p *syntax.Program, s *intset.Set) map[string]bool {
	out := map[string]bool{}
	s.Each(func(e int) { out[p.LabelName(syntax.Label(e))] = true })
	return out
}

func wantNames(t *testing.T, p *syntax.Program, got *intset.Set, want ...string) {
	t.Helper()
	g := names(p, got)
	if len(g) != len(want) {
		t.Fatalf("got %v, want %v", g, want)
	}
	for _, w := range want {
		if !g[w] {
			t.Fatalf("got %v, want %v", g, want)
		}
	}
}

func TestSlabelsExample22(t *testing.T) {
	p := fixtures.Example22()
	in := Compute(p)
	fi, _ := p.MethodIndex("f")
	wantNames(t, p, in.MethodLabels(fi), "A5", "S5")
	mi, _ := p.MethodIndex("main")
	wantNames(t, p, in.MethodLabels(mi),
		"S1", "S2", "A3", "S3", "A4", "S4", "A5", "S5", "C1", "C2")
	if in.Iterations < 2 {
		t.Fatalf("Iterations = %d, want at least 2 (one growth + one stable pass)", in.Iterations)
	}
}

func TestSlabelsRecursion(t *testing.T) {
	p := parser.MustParse(`
void main() { M: even(); }
void even() { E: odd(); }
void odd()  { O: even(); }
`)
	in := Compute(p)
	ei, _ := p.MethodIndex("even")
	oi, _ := p.MethodIndex("odd")
	mi, _ := p.MethodIndex("main")
	// Mutually recursive methods see each other's labels; the
	// fixpoint must terminate.
	wantNames(t, p, in.MethodLabels(ei), "E", "O")
	wantNames(t, p, in.MethodLabels(oi), "E", "O")
	wantNames(t, p, in.MethodLabels(mi), "M", "E", "O")
}

func TestSlabelsStatement(t *testing.T) {
	p := fixtures.Example21()
	in := Compute(p)
	// Slabels of the async S1's body: the inner finish and everything
	// in it, plus S8.
	var body *syntax.Stmt
	p.Main().Body.EachDeep(func(i syntax.Instr) {
		if a, ok := i.(*syntax.Async); ok && p.LabelName(a.L) == "S1" {
			body = a.Body
		}
	})
	if body == nil {
		t.Fatalf("async S1 not found")
	}
	wantNames(t, p, in.Slabels(body), "S13", "S5", "S6", "S7", "S8", "S11", "S12")
	// Memoization returns the identical set.
	if in.Slabels(body) != in.Slabels(body) {
		t.Fatalf("Slabels not memoized")
	}
}

// Lemma 7.11: Slabels(s1 . s2) = Slabels(s1) ∪ Slabels(s2).
func TestSlabelsSeqLemma(t *testing.T) {
	p := fixtures.Example22()
	in := Compute(p)
	s1 := p.Main().Body     // main body
	s2 := p.Methods[0].Body // f body (methods[0] is f)
	if p.Methods[0].Name != "f" {
		s2 = p.Methods[1].Body
	}
	seq := syntax.Seq(s1, s2)
	want := in.Slabels(s1).Clone()
	want.UnionWith(in.Slabels(s2))
	if !in.Slabels(seq).Equal(want) {
		t.Fatalf("Slabels(s1.s2) = %v, want %v", in.Slabels(seq), want)
	}
}

func TestFSlabels(t *testing.T) {
	p := fixtures.Example22()
	in := Compute(p)
	wantNames(t, p, in.FSlabels(p.Main().Body), "S1")
}

// Lemma 7.12: FSlabels(s) ⊆ Slabels(s).
func TestFSlabelsSubsetSlabels(t *testing.T) {
	p := fixtures.Example21()
	in := Compute(p)
	for _, m := range p.Methods {
		if !in.FSlabels(m.Body).SubsetOf(in.Slabels(m.Body)) {
			t.Fatalf("FSlabels ⊄ Slabels for method %s", m.Name)
		}
	}
}

func TestTlabelsAndFTlabels(t *testing.T) {
	p := fixtures.Example22()
	in := Compute(p)
	fBody := p.Methods[0].Body
	if p.Methods[0].Name != "f" {
		fBody = p.Methods[1].Body
	}
	mainBody := p.Main().Body

	lf := tree.NewLeaf(fBody)
	lm := tree.NewLeaf(mainBody)

	// Tlabels(⟨s⟩) = Slabels(s); Tlabels(√) = ∅.
	if !in.Tlabels(lf).Equal(in.Slabels(fBody)) {
		t.Fatalf("Tlabels(leaf) != Slabels")
	}
	if !in.Tlabels(tree.Done).Empty() {
		t.Fatalf("Tlabels(√) not empty")
	}

	par := &tree.Par{L: lf, R: lm}
	fin := &tree.Fin{L: lf, R: lm}

	// Tlabels distributes over ∥ and ▷.
	both := in.Tlabels(lf)
	both.UnionWith(in.Tlabels(lm))
	if !in.Tlabels(par).Equal(both) || !in.Tlabels(fin).Equal(both) {
		t.Fatalf("Tlabels over ∥/▷ wrong")
	}

	// FTlabels: ∥ takes both sides, ▷ only the left.
	wantNames(t, p, in.FTlabels(par), "A5", "S1")
	wantNames(t, p, in.FTlabels(fin), "A5")
	if !in.FTlabels(tree.Done).Empty() {
		t.Fatalf("FTlabels(√) not empty")
	}

	// Lemma 7.13: FTlabels(T) ⊆ Tlabels(T).
	for _, tr := range []tree.Tree{lf, lm, par, fin, tree.Done} {
		if !in.FTlabels(tr).SubsetOf(in.Tlabels(tr)) {
			t.Fatalf("FTlabels ⊄ Tlabels for %s", tree.String(p, tr))
		}
	}
}

func TestParallel(t *testing.T) {
	p := fixtures.Example22()
	in := Compute(p)
	fBody := p.Methods[0].Body
	if p.Methods[0].Name != "f" {
		fBody = p.Methods[1].Body
	}
	mainBody := p.Main().Body
	lf, lm := tree.NewLeaf(fBody), tree.NewLeaf(mainBody)

	// parallel(√) = parallel(⟨s⟩) = ∅.
	if !in.Parallel(tree.Done).Empty() || !in.Parallel(lf).Empty() {
		t.Fatalf("parallel of √ or leaf not empty")
	}

	// parallel(T1 ∥ T2) includes symcross of the first labels.
	par := &tree.Par{L: lf, R: lm}
	pp := in.Parallel(par)
	a5, _ := p.LabelByName("A5")
	s1, _ := p.LabelByName("S1")
	if !pp.Has(int(a5), int(s1)) || !pp.Has(int(s1), int(a5)) {
		t.Fatalf("parallel(∥) missing (A5,S1): %v", pp)
	}
	if pp.Len() != 2 {
		t.Fatalf("parallel(∥) = %v, want exactly the (A5,S1) pair", pp)
	}

	// parallel(T1 ▷ T2) = parallel(T1): the right side contributes
	// nothing until the left completes.
	fin := &tree.Fin{L: par, R: lm}
	if !in.Parallel(fin).Equal(pp) {
		t.Fatalf("parallel(▷) != parallel(left)")
	}

	// Nested: ((a ∥ b) ∥ c) pairs everything pointwise.
	par3 := &tree.Par{L: par, R: tree.NewLeaf(fBody)}
	p3 := in.Parallel(par3)
	if !p3.Has(int(a5), int(a5)) {
		t.Fatalf("parallel missing self-pair for two copies of f: %v", p3)
	}
}

func TestCrossHelpers(t *testing.T) {
	p := fixtures.Example22()
	in := Compute(p)
	n := p.NumLabels()
	a5, _ := p.LabelByName("A5")
	s5, _ := p.LabelByName("S5")
	s1, _ := p.LabelByName("S1")

	// Symcross.
	sc := in.Symcross(intset.Of(n, int(a5)), intset.Of(n, int(s1)))
	if !sc.Has(int(a5), int(s1)) || !sc.Has(int(s1), int(a5)) || sc.Len() != 2 {
		t.Fatalf("Symcross wrong: %v", sc)
	}

	// AddLcross.
	dst := intset.NewPairs(n)
	if !in.AddLcross(dst, a5, intset.Of(n, int(s1))) {
		t.Fatalf("AddLcross reported no change")
	}
	if !dst.Has(int(a5), int(s1)) {
		t.Fatalf("AddLcross missing pair")
	}

	// AddScross uses Slabels of the statement.
	fBody := p.Methods[0].Body
	if p.Methods[0].Name != "f" {
		fBody = p.Methods[1].Body
	}
	dst2 := intset.NewPairs(n)
	in.AddScross(dst2, fBody, intset.Of(n, int(s1)))
	if !dst2.Has(int(a5), int(s1)) || !dst2.Has(int(s5), int(s1)) {
		t.Fatalf("AddScross missing pairs: %v", dst2)
	}

	// AddTcross over a tree leaf equals AddScross (Lemma 7.18).
	dst3 := intset.NewPairs(n)
	in.AddTcross(dst3, tree.NewLeaf(fBody), intset.Of(n, int(s1)))
	if !dst3.Equal(dst2) {
		t.Fatalf("Tcross(⟨s⟩) != Scross(s)")
	}
}

func TestWhileBodySlabels(t *testing.T) {
	p := parser.MustParse(`
void main() {
  W: while (a[0] != 0) {
    B: async { I: skip; }
  }
  T: skip;
}
`)
	in := Compute(p)
	mi, _ := p.MethodIndex("main")
	wantNames(t, p, in.MethodLabels(mi), "W", "B", "I", "T")
}
