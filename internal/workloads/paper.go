package workloads

// PaperRow records the published per-benchmark numbers from the
// paper's Figures 6, 7, 8 and 9, used by internal/experiments to
// print paper-vs-measured comparisons.
type PaperRow struct {
	// Figure 6.
	LOC         int
	AsyncTotal  int
	AsyncLoop   int
	AsyncPlace  int
	SlabelsCons int
	Level1Cons  int
	Level2Cons  int
	// Figure 7.
	Nodes NodeRow
	// Figure 8 (context-sensitive analysis).
	TimeMS     int
	SpaceMB    int
	IterSlab   int
	IterL1     int
	IterL2     int
	PairsTotal int
	PairsSelf  int
	PairsSame  int
	PairsDiff  int
	// Figure 9 (context-insensitive comparison; only reported for mg
	// and plasma).
	CI *PaperCIRow
}

// NodeRow is a Figure 7 row.
type NodeRow struct {
	Total, End, Async, Call, Finish, If, Loop, Method, Return, Skip, Switch int
}

// PaperCIRow is a Figure 9 context-insensitive row.
type PaperCIRow struct {
	TimeMS     int
	SpaceMB    int
	IterSlab   int
	IterL1     int
	IterL2     int
	PairsTotal int
	PairsSelf  int
	PairsSame  int
	PairsDiff  int
}

// paperRows transcribes Figures 6–9 of the paper.
var paperRows = map[string]PaperRow{
	"stream": {
		LOC: 70, AsyncTotal: 4, AsyncLoop: 3, AsyncPlace: 1,
		SlabelsCons: 103, Level1Cons: 232, Level2Cons: 103,
		Nodes:  NodeRow{Total: 126, End: 23, Async: 4, Call: 5, Finish: 4, If: 3, Loop: 10, Method: 20, Return: 21, Skip: 36},
		TimeMS: 153, SpaceMB: 5, IterSlab: 3, IterL1: 2, IterL2: 2,
		PairsTotal: 5, PairsSelf: 4, PairsSame: 1, PairsDiff: 0,
	},
	"fragstream": {
		LOC: 73, AsyncTotal: 4, AsyncLoop: 3, AsyncPlace: 1,
		SlabelsCons: 103, Level1Cons: 232, Level2Cons: 103,
		Nodes:  NodeRow{Total: 126, End: 23, Async: 4, Call: 5, Finish: 4, If: 3, Loop: 10, Method: 20, Return: 21, Skip: 36},
		TimeMS: 158, SpaceMB: 5, IterSlab: 3, IterL1: 2, IterL2: 2,
		PairsTotal: 5, PairsSelf: 4, PairsSame: 1, PairsDiff: 0,
	},
	"sor": {
		LOC: 185, AsyncTotal: 7, AsyncLoop: 2, AsyncPlace: 5,
		SlabelsCons: 132, Level1Cons: 298, Level2Cons: 132,
		Nodes:  NodeRow{Total: 161, End: 29, Async: 7, Call: 21, Finish: 5, If: 1, Loop: 7, Method: 24, Return: 16, Skip: 51},
		TimeMS: 219, SpaceMB: 6, IterSlab: 5, IterL1: 2, IterL2: 3,
		PairsTotal: 13, PairsSelf: 6, PairsSame: 3, PairsDiff: 4,
	},
	"series": {
		LOC: 290, AsyncTotal: 3, AsyncLoop: 1, AsyncPlace: 2,
		SlabelsCons: 90, Level1Cons: 224, Level2Cons: 90,
		Nodes:  NodeRow{Total: 119, End: 29, Async: 3, Call: 17, Finish: 2, If: 3, Loop: 7, Method: 14, Return: 7, Skip: 36, Switch: 1},
		TimeMS: 230, SpaceMB: 9, IterSlab: 4, IterL1: 2, IterL2: 4,
		PairsTotal: 1, PairsSelf: 1, PairsSame: 0, PairsDiff: 0,
	},
	"sparsemm": {
		LOC: 366, AsyncTotal: 4, AsyncLoop: 1, AsyncPlace: 3,
		SlabelsCons: 173, Level1Cons: 370, Level2Cons: 173,
		Nodes:  NodeRow{Total: 201, End: 28, Async: 4, Call: 25, Finish: 3, If: 0, Loop: 16, Method: 32, Return: 27, Skip: 66},
		TimeMS: 225, SpaceMB: 8, IterSlab: 4, IterL1: 2, IterL2: 3,
		PairsTotal: 3, PairsSelf: 2, PairsSame: 1, PairsDiff: 0,
	},
	"crypt": {
		LOC: 562, AsyncTotal: 2, AsyncLoop: 2, AsyncPlace: 0,
		SlabelsCons: 149, Level1Cons: 326, Level2Cons: 149,
		Nodes:  NodeRow{Total: 175, End: 26, Async: 2, Call: 25, Finish: 2, If: 5, Loop: 9, Method: 24, Return: 21, Skip: 61},
		TimeMS: 218, SpaceMB: 8, IterSlab: 4, IterL1: 2, IterL2: 2,
		PairsTotal: 2, PairsSelf: 2, PairsSame: 0, PairsDiff: 0,
	},
	"moldyn": {
		LOC: 699, AsyncTotal: 14, AsyncLoop: 6, AsyncPlace: 8,
		SlabelsCons: 241, Level1Cons: 596, Level2Cons: 241,
		Nodes:  NodeRow{Total: 316, End: 75, Async: 14, Call: 25, Finish: 14, If: 2, Loop: 29, Method: 36, Return: 22, Skip: 99},
		TimeMS: 420, SpaceMB: 24, IterSlab: 5, IterL1: 2, IterL2: 3,
		PairsTotal: 59, PairsSelf: 14, PairsSame: 36, PairsDiff: 9,
	},
	"linpack": {
		LOC: 781, AsyncTotal: 8, AsyncLoop: 3, AsyncPlace: 5,
		SlabelsCons: 225, Level1Cons: 547, Level2Cons: 225,
		Nodes:  NodeRow{Total: 286, End: 61, Async: 8, Call: 42, Finish: 6, If: 10, Loop: 19, Method: 25, Return: 17, Skip: 98},
		TimeMS: 331, SpaceMB: 13, IterSlab: 4, IterL1: 3, IterL2: 3,
		PairsTotal: 10, PairsSelf: 6, PairsSame: 1, PairsDiff: 3,
	},
	"raytracer": {
		LOC: 1205, AsyncTotal: 13, AsyncLoop: 2, AsyncPlace: 11,
		SlabelsCons: 478, Level1Cons: 1045, Level2Cons: 478,
		Nodes:  NodeRow{Total: 555, End: 77, Async: 13, Call: 132, Finish: 9, If: 16, Loop: 8, Method: 65, Return: 50, Skip: 185},
		TimeMS: 3105, SpaceMB: 173, IterSlab: 5, IterL1: 2, IterL2: 4,
		PairsTotal: 49, PairsSelf: 13, PairsSame: 24, PairsDiff: 12,
	},
	"montecarlo": {
		LOC: 3153, AsyncTotal: 3, AsyncLoop: 1, AsyncPlace: 2,
		SlabelsCons: 345, Level1Cons: 727, Level2Cons: 345,
		Nodes:  NodeRow{Total: 405, End: 60, Async: 3, Call: 80, Finish: 3, If: 2, Loop: 6, Method: 83, Return: 39, Skip: 129},
		TimeMS: 1403, SpaceMB: 132, IterSlab: 6, IterL1: 2, IterL2: 4,
		PairsTotal: 4, PairsSelf: 3, PairsSame: 1, PairsDiff: 0,
	},
	"mg": {
		LOC: 1858, AsyncTotal: 57, AsyncLoop: 37, AsyncPlace: 20,
		SlabelsCons: 1028, Level1Cons: 2518, Level2Cons: 1028,
		Nodes:  NodeRow{Total: 1320, End: 292, Async: 57, Call: 248, Finish: 52, If: 40, Loop: 68, Method: 122, Return: 87, Skip: 354},
		TimeMS: 5197, SpaceMB: 196, IterSlab: 6, IterL1: 3, IterL2: 5,
		PairsTotal: 272, PairsSelf: 51, PairsSame: 17, PairsDiff: 204,
		CI: &PaperCIRow{
			TimeMS: 25935, SpaceMB: 350, IterSlab: 6, IterL1: 17, IterL2: 5,
			PairsTotal: 681, PairsSelf: 52, PairsSame: 23, PairsDiff: 606,
		},
	},
	"mapreduce": {
		LOC: 53, AsyncTotal: 3, AsyncLoop: 1, AsyncPlace: 2,
		SlabelsCons: 40, Level1Cons: 96, Level2Cons: 40,
		Nodes:  NodeRow{Total: 52, End: 12, Async: 3, Call: 5, Finish: 2, If: 0, Loop: 3, Method: 8, Return: 4, Skip: 15},
		TimeMS: 96, SpaceMB: 3, IterSlab: 3, IterL1: 2, IterL2: 3,
		PairsTotal: 1, PairsSelf: 1, PairsSame: 0, PairsDiff: 0,
	},
	"plasma": {
		LOC: 4623, AsyncTotal: 151, AsyncLoop: 120, AsyncPlace: 31,
		SlabelsCons: 2596, Level1Cons: 6230, Level2Cons: 2596,
		Nodes:  NodeRow{Total: 3200, End: 604, Async: 151, Call: 505, Finish: 84, If: 93, Loop: 231, Method: 170, Return: 221, Skip: 1140, Switch: 1},
		TimeMS: 16476, SpaceMB: 257, IterSlab: 6, IterL1: 2, IterL2: 6,
		PairsTotal: 258, PairsSelf: 134, PairsSame: 120, PairsDiff: 4,
		CI: &PaperCIRow{
			TimeMS: 167828, SpaceMB: 1429, IterSlab: 6, IterL1: 14, IterL2: 6,
			PairsTotal: 2281, PairsSelf: 136, PairsSame: 126, PairsDiff: 2019,
		},
	},
}
