// Package workloads reconstructs the paper's 13 benchmarks (Figure 6:
// HPC challenge stream/fragstream; Java Grande sor, series, sparsemm,
// crypt, moldyn, linpack, raytracer, montecarlo; NAS mg; the authors'
// mapreduce and plasma) as synthetic X10-subset programs.
//
// The original sources are not available, so each benchmark is
// synthesized to match the paper's structural signature — see
// DESIGN.md's substitution table. Matched exactly: the async counts
// and their loop/place-switching split (Figure 6). Matched
// approximately: LOC, node-kind profile (Figure 7), and constraint
// counts. Matched qualitatively: the pair-category distribution of
// Figure 8 and — decisive for Figure 9 — the call topology: mg has
// helper methods containing asyncs called from many loop-async sites
// with other asyncs live (its context-sensitive diff pairs, which
// call-site merging multiplies), and plasma has many loop bodies that
// spawn, call one shared kernel, and spawn again — context-sensitively
// isolated, but merged into a quadratic blowup by the
// context-insensitive analysis (the paper's 4 → 2019 diff jump).
package workloads

import (
	"fmt"
	"strings"
)

// spec parameterizes one synthesized benchmark.
type spec struct {
	Name string

	// FieldLines emits class-level data declarations: LOC without
	// condensed nodes (montecarlo's large constant tables).
	FieldLines int

	// SoloLoops: methods with one un-finished foreach each (a self
	// pair each).
	SoloLoops int
	// SameGroups/SameGroupSize: methods with several un-finished
	// foreachs in sequence: C(size,2) same-method pairs each.
	SameGroups    int
	SameGroupSize int
	// MergeCallers: methods of the shape
	//
	//	for (…) { async {…}  sharedKernel();  async {…} }
	//
	// The first async is live at the call, so the context-
	// insensitive rᵢ merge lets every caller's first async reach
	// every other caller's second async: ~N² diff pairs, versus none
	// context-sensitively (plasma's Figure 9 driver). Each consumes
	// two loop asyncs.
	MergeCallers int
	// AsyncHelpers: helper methods containing AsyncHelperLoops
	// un-finished foreachs each. HelperCallerSites: methods of shape
	//
	//	foreach (…) { async {…}  helper(); helper'(); … }
	//
	// whose live asyncs genuinely co-execute with the helpers'
	// asyncs: context-sensitive diff pairs (mg's driver), which the
	// context-insensitive analysis multiplies by pairing each site's
	// asyncs with every helper, called or not. Each site consumes
	// two loop asyncs; each helper consumes AsyncHelperLoops.
	AsyncHelpers       int
	AsyncHelperLoops   int
	HelperCallerSites  int
	HelperCallsPerSite int

	// PlaceIso: finish { async (p) { … } } blocks, one method each —
	// isolated place-switching asyncs with no pairs.
	PlaceIso int
	// PlaceHelpersInFor: place-async helper methods called from one
	// plain for loop — the asyncs are classified place-switching but
	// self-pair via the loop and diff-pair with each other.
	PlaceHelpersInFor int
	// PlaceGroupSize: one method containing PlaceGroupSize co-live
	// place asyncs — C(size,2) same-method pairs. With
	// PlaceGroupInFor the method is called from a plain for loop,
	// adding a self pair per async.
	PlaceGroupSize  int
	PlaceGroupInFor bool

	// Filler structure, distributed over filler methods.
	FillerMethods int
	ComputePer    int // compute statements per method body
	PlainLoops    int
	Ifs           int
	Switches      int
}

// loopAsyncs returns the number of loop-classified asyncs the spec
// will synthesize.
func (s spec) loopAsyncs() int {
	return s.SoloLoops + s.SameGroups*s.SameGroupSize + 2*s.MergeCallers +
		s.AsyncHelpers*s.AsyncHelperLoops + 2*s.HelperCallerSites
}

// placeAsyncs returns the number of place-switching asyncs.
func (s spec) placeAsyncs() int {
	return s.PlaceIso + s.PlaceHelpersInFor + s.PlaceGroupSize
}

// w is a tiny indented source writer.
type w struct {
	sb  strings.Builder
	ind int
}

func (x *w) line(format string, args ...any) {
	x.sb.WriteString(strings.Repeat("  ", x.ind))
	fmt.Fprintf(&x.sb, format, args...)
	x.sb.WriteByte('\n')
}

func (x *w) block(header string, body func()) {
	x.line("%s {", header)
	x.ind++
	body()
	x.ind--
	x.line("}")
}

// compute emits n condensed-to-skip statements.
func (x *w) compute(n int) {
	for i := 0; i < n; i++ {
		x.line("acc = acc + data[i%d];", i)
	}
}

// phase records a method main calls, and whether its asyncs must be
// joined (finish-wrapped at the call) before the next phase.
type phase struct {
	name   string
	spawns bool
}

// build synthesizes the benchmark's X10-subset source.
func build(s spec) string {
	x := &w{}
	var phases []phase
	method := func(name string, spawns bool, body func()) {
		phases = append(phases, phase{name: name, spawns: spawns})
		x.block("static void "+name+"()", body)
	}
	helper := func(name string, body func()) { // not called from main
		x.block("static void "+name+"()", body)
	}

	x.line("// %s: synthesized reconstruction (see workloads package comment).", s.Name)
	x.block("public class "+s.Name, func() {
		for i := 0; i < s.FieldLines; i++ {
			x.line("static int table%d = %d;", i, 7919*(i+1)%65521)
		}

		// Shared helpers first (callees of the structured callers).
		if s.MergeCallers > 0 {
			helper("sharedKernel", func() {
				x.compute(s.ComputePer)
				x.line("return;")
			})
		}
		for h := 0; h < s.AsyncHelpers; h++ {
			h := h
			helper(fmt.Sprintf("asyncHelper%d", h), func() {
				for l := 0; l < s.AsyncHelperLoops; l++ {
					x.block("foreach (point p : dist)", func() { x.compute(2) })
				}
				x.compute(s.ComputePer / 2)
				x.line("return;")
			})
		}
		for h := 0; h < s.PlaceHelpersInFor; h++ {
			h := h
			helper(fmt.Sprintf("placeHelper%d", h), func() {
				x.block("async (there)", func() { x.compute(2) })
				x.line("return;")
			})
		}

		// Structured phase methods.
		for i := 0; i < s.SoloLoops; i++ {
			i := i
			method(fmt.Sprintf("soloLoop%d", i), true, func() {
				x.compute(s.ComputePer / 2)
				x.block("foreach (point p : dist)", func() { x.compute(3) })
				x.compute(s.ComputePer / 2)
			})
		}
		for g := 0; g < s.SameGroups; g++ {
			g := g
			method(fmt.Sprintf("parallelPhases%d", g), true, func() {
				for k := 0; k < s.SameGroupSize; k++ {
					x.block("foreach (point p : dist)", func() { x.compute(2) })
				}
			})
		}
		for c := 0; c < s.MergeCallers; c++ {
			c := c
			method(fmt.Sprintf("tile%d", c), true, func() {
				x.block("for (int i = 0; i < n; i++)", func() {
					x.block("async", func() { x.compute(1) })
					x.line("sharedKernel();")
					x.block("async", func() { x.compute(1) })
				})
			})
		}
		for c := 0; c < s.HelperCallerSites; c++ {
			c := c
			method(fmt.Sprintf("level%d", c), true, func() {
				x.block("foreach (point p : dist)", func() {
					x.block("async", func() { x.compute(1) })
					for k := 0; k < s.HelperCallsPerSite; k++ {
						x.line("asyncHelper%d();", (c+k)%s.AsyncHelpers)
					}
				})
			})
		}
		if s.PlaceGroupSize > 0 {
			if s.PlaceGroupInFor {
				helper("spawnGroup", func() {
					for k := 0; k < s.PlaceGroupSize; k++ {
						x.block("async (there)", func() { x.compute(2) })
					}
					x.line("return;")
				})
				method("groupSweep", true, func() {
					x.block("for (int i = 0; i < n; i++)", func() {
						x.line("spawnGroup();")
					})
				})
			} else {
				method("groupSpawn", true, func() {
					for k := 0; k < s.PlaceGroupSize; k++ {
						x.block("async (there)", func() { x.compute(2) })
					}
				})
			}
		}
		for i := 0; i < s.PlaceIso; i++ {
			i := i
			method(fmt.Sprintf("exchange%d", i), false, func() {
				x.block("finish", func() {
					x.block("async (there)", func() { x.compute(2) })
				})
				x.compute(s.ComputePer / 2)
			})
		}
		if s.PlaceHelpersInFor > 0 {
			method("distribute", true, func() {
				x.block("for (int i = 0; i < n; i++)", func() {
					for h := 0; h < s.PlaceHelpersInFor; h++ {
						x.line("placeHelper%d();", h)
					}
				})
			})
		}

		// Filler methods: sequential compute, plain loops, ifs,
		// switches, distributed round-robin.
		loops, ifs, switches := s.PlainLoops, s.Ifs, s.Switches
		for i := 0; i < s.FillerMethods; i++ {
			i := i
			method(fmt.Sprintf("step%d", i), false, func() {
				x.compute(s.ComputePer)
				if loops > 0 {
					loops--
					x.block("for (int i = 0; i < n; i++)", func() { x.compute(2) })
				}
				if ifs > 0 {
					ifs--
					x.block("if (acc > 0)", func() { x.compute(1) })
					x.line("else { acc = 0; }")
				}
				if switches > 0 {
					switches--
					x.block("switch (mode)", func() {
						x.line("case 0: acc = 1; break;")
						x.line("case 1: acc = 2; break;")
						x.line("default: break;")
					})
				}
				x.line("return;")
			})
		}

		// main drives the phases in order, joining each spawning
		// phase before the next starts (as the real benchmarks'
		// top-level timing harnesses do).
		x.block("public static void main(String[] args)", func() {
			for _, ph := range phases {
				if ph.spawns {
					x.line("finish { %s(); }", ph.name)
				} else {
					x.line("%s();", ph.name)
				}
			}
			x.line("return;")
		})
	})
	return x.sb.String()
}
