package workloads

import (
	"fmt"
	"sync"

	"fx10/internal/condensed"
	"fx10/internal/syntax"
	"fx10/internal/x10"
)

// Benchmark is one synthesized benchmark, parsed and lowered lazily
// and memoized (mg and plasma are large).
type Benchmark struct {
	Name string
	// Paper holds the published numbers this benchmark reconstructs.
	Paper PaperRow

	once    sync.Once
	source  string
	unit    *condensed.Unit
	stats   x10.Stats
	program *syntax.Program
}

func (b *Benchmark) load() {
	b.once.Do(func() {
		b.source = build(specFor(b.Name))
		b.unit, b.stats = x10.MustParse(b.source)
		if n := x10.ResolveCalls(b.unit); n != 0 {
			panic(fmt.Sprintf("workloads: %s has %d unresolved calls", b.Name, n))
		}
		b.program = condensed.MustLower(b.unit)
	})
}

// Source returns the synthesized X10-subset source text.
func (b *Benchmark) Source() string { b.load(); return b.source }

// Unit returns the condensed form.
func (b *Benchmark) Unit() *condensed.Unit { b.load(); return b.unit }

// LOC returns the source's non-blank line count.
func (b *Benchmark) LOC() int { b.load(); return b.stats.LOC }

// Program returns the lowered core FX10 program the analysis runs on.
func (b *Benchmark) Program() *syntax.Program { b.load(); return b.program }

func specFor(name string) spec {
	for _, s := range specs {
		if s.Name == name {
			return s
		}
	}
	panic("workloads: unknown benchmark " + name)
}

var (
	allOnce sync.Once
	all     []*Benchmark
)

// All returns the 13 benchmarks in the paper's Figure 6 order.
func All() []*Benchmark {
	allOnce.Do(func() {
		for _, s := range specs {
			all = append(all, &Benchmark{Name: s.Name, Paper: paperRows[s.Name]})
		}
	})
	return all
}

// Get returns one benchmark by name.
func Get(name string) (*Benchmark, error) {
	for _, b := range All() {
		if b.Name == name {
			return b, nil
		}
	}
	return nil, fmt.Errorf("workloads: unknown benchmark %q", name)
}

// Names returns the benchmark names in order.
func Names() []string {
	out := make([]string, 0, len(specs))
	for _, s := range specs {
		out = append(out, s.Name)
	}
	return out
}
