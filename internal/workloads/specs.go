package workloads

// specs defines the 13 synthesized benchmarks. Async counts replicate
// Figure 6 exactly (see TestAsyncCountsMatchFigure6); the remaining
// knobs are tuned so node and constraint counts land near the paper's
// and the pair-category structure of Figures 8–9 is preserved. The
// comments give the paper's Figure 6 row: LOC, asyncs
// (total = loop + place-switching).
var specs = []spec{
	{
		// stream: 70 LOC, 4 asyncs = 3 loop + 1 place; 20 methods,
		// 103 Slabels constraints; pairs 5 = 4 self + 1 same.
		Name:              "stream",
		SoloLoops:         1,
		SameGroups:        1,
		SameGroupSize:     2,
		PlaceHelpersInFor: 1,
		FillerMethods:     14,
		ComputePer:        3,
		PlainLoops:        8,
		Ifs:               3,
	},
	{
		// fragstream: 73 LOC, structurally identical to stream in
		// every reported count (the fragmented-access variant).
		Name:              "fragstream",
		FieldLines:        3,
		SoloLoops:         1,
		SameGroups:        1,
		SameGroupSize:     2,
		PlaceHelpersInFor: 1,
		FillerMethods:     14,
		ComputePer:        3,
		PlainLoops:        8,
		Ifs:               3,
	},
	{
		// sor: 185 LOC, 7 asyncs = 2 loop + 5 place; 24 methods,
		// 132 Slabels; pairs 13 = 6 self + 3 same + 4 diff.
		Name:              "sor",
		FieldLines:        20,
		SameGroups:        1,
		SameGroupSize:     2,
		PlaceGroupSize:    2,
		PlaceGroupInFor:   true,
		PlaceHelpersInFor: 3,
		FillerMethods:     14,
		ComputePer:        3,
		PlainLoops:        4,
		Ifs:               1,
	},
	{
		// series: 290 LOC, 3 asyncs = 1 loop + 2 place; 14 methods,
		// 90 Slabels; pairs 1 = 1 self.
		Name:          "series",
		FieldLines:    120,
		SoloLoops:     1,
		PlaceIso:      2,
		FillerMethods: 9,
		ComputePer:    4,
		PlainLoops:    6,
		Ifs:           3,
		Switches:      1,
	},
	{
		// sparsemm: 366 LOC, 4 asyncs = 1 loop + 3 place; 32 methods,
		// 173 Slabels; pairs 3 = 2 self + 1 same.
		Name:           "sparsemm",
		FieldLines:     100,
		SoloLoops:      1,
		PlaceGroupSize: 2,
		PlaceIso:       1,
		FillerMethods:  26,
		ComputePer:     3,
		PlainLoops:     14,
	},
	{
		// crypt: 562 LOC, 2 asyncs = 2 loop; 24 methods, 149 Slabels;
		// pairs 2 = 2 self.
		Name:          "crypt",
		FieldLines:    300,
		SoloLoops:     2,
		FillerMethods: 20,
		ComputePer:    4,
		PlainLoops:    7,
		Ifs:           5,
	},
	{
		// moldyn: 699 LOC, 14 asyncs = 6 loop + 8 place; 36 methods,
		// 241 Slabels; pairs 59 = 14 self + 36 same + 9 diff.
		Name:               "moldyn",
		FieldLines:         250,
		SameGroups:         1,
		SameGroupSize:      2,
		AsyncHelpers:       1,
		AsyncHelperLoops:   2,
		HelperCallerSites:  1,
		HelperCallsPerSite: 1,
		PlaceGroupSize:     7,
		PlaceGroupInFor:    true,
		PlaceIso:           1,
		FillerMethods:      21,
		ComputePer:         4,
		PlainLoops:         22,
		Ifs:                2,
	},
	{
		// linpack: 781 LOC, 8 asyncs = 3 loop + 5 place; 25 methods,
		// 225 Slabels; pairs 10 = 6 self + 1 same + 3 diff.
		Name:              "linpack",
		FieldLines:        350,
		SoloLoops:         1,
		SameGroups:        1,
		SameGroupSize:     2,
		PlaceHelpersInFor: 3,
		PlaceIso:          2,
		FillerMethods:     16,
		ComputePer:        6,
		PlainLoops:        14,
		Ifs:               10,
	},
	{
		// raytracer: 1205 LOC, 13 asyncs = 2 loop + 11 place; 65
		// methods, 478 Slabels; pairs 49 = 13 self + 24 same +
		// 12 diff.
		Name:              "raytracer",
		FieldLines:        400,
		SameGroups:        1,
		SameGroupSize:     2,
		PlaceGroupSize:    7,
		PlaceGroupInFor:   true,
		PlaceHelpersInFor: 4,
		FillerMethods:     53,
		ComputePer:        4,
		PlainLoops:        6,
		Ifs:               16,
	},
	{
		// montecarlo: 3153 LOC, 3 asyncs = 1 loop + 2 place; 83
		// methods, 345 Slabels; pairs 4 = 3 self + 1 same. Most of
		// montecarlo's bulk is data and sequential code: hence the
		// large field-line count and small per-method bodies.
		Name:            "montecarlo",
		FieldLines:      2400,
		SoloLoops:       1,
		PlaceGroupSize:  2,
		PlaceGroupInFor: true,
		FillerMethods:   77,
		ComputePer:      2,
		PlainLoops:      5,
		Ifs:             2,
	},
	{
		// mg: 1858 LOC, 57 asyncs = 37 loop + 20 place; 122 methods,
		// 1028 Slabels; pairs 272 = 51 self + 17 same + 204 diff
		// (681 context-insensitively). The diff pairs come from
		// helper methods with asyncs called from many loops.
		Name:               "mg",
		FieldLines:         300,
		SoloLoops:          1,
		AsyncHelpers:       8,
		AsyncHelperLoops:   2,
		HelperCallerSites:  10,
		HelperCallsPerSite: 3,
		PlaceHelpersInFor:  8,
		PlaceIso:           12,
		FillerMethods:      75,
		ComputePer:         5,
		PlainLoops:         28,
		Ifs:                40,
	},
	{
		// mapreduce: 53 LOC, 3 asyncs = 1 loop + 2 place; 8 methods,
		// 40 Slabels; pairs 1 = 1 self.
		Name:          "mapreduce",
		SoloLoops:     1,
		PlaceIso:      2,
		FillerMethods: 3,
		ComputePer:    3,
		PlainLoops:    1,
	},
	{
		// plasma: 4623 LOC, 151 asyncs = 120 loop + 31 place; 170
		// methods, 2596 Slabels; pairs 258 = 134 self + 120 same +
		// 4 diff — but 2281 with 2019 diff context-insensitively:
		// the merge-caller tiles sharing one kernel drive the blowup.
		Name:              "plasma",
		FieldLines:        1700,
		SoloLoops:         16,
		SameGroups:        5,
		SameGroupSize:     6,
		MergeCallers:      37,
		PlaceHelpersInFor: 2,
		PlaceIso:          29,
		FillerMethods:     60,
		ComputePer:        12,
		PlainLoops:        50,
		Ifs:               90,
		Switches:          1,
	},
}
