package workloads

import (
	"testing"

	"fx10/internal/constraints"
	"fx10/internal/mhp"
	"fx10/internal/syntax"
)

// The async counts — the semantic heart of Figure 6 — must replicate
// the paper exactly for all 13 benchmarks.
func TestAsyncCountsMatchFigure6(t *testing.T) {
	for _, b := range All() {
		s := b.Unit().AsyncStats()
		if s.Total != b.Paper.AsyncTotal {
			t.Errorf("%s: total asyncs = %d, paper %d", b.Name, s.Total, b.Paper.AsyncTotal)
		}
		if s.Loop != b.Paper.AsyncLoop {
			t.Errorf("%s: loop asyncs = %d, paper %d", b.Name, s.Loop, b.Paper.AsyncLoop)
		}
		if s.PlaceSwitch != b.Paper.AsyncPlace {
			t.Errorf("%s: place asyncs = %d, paper %d", b.Name, s.PlaceSwitch, b.Paper.AsyncPlace)
		}
		if s.Plain != 0 {
			t.Errorf("%s: %d unclassified asyncs (paper totals are loop+place)", b.Name, s.Plain)
		}
	}
}

// The spec bookkeeping must agree with what the synthesizer actually
// produces.
func TestSpecBookkeeping(t *testing.T) {
	for _, s := range specs {
		b, err := Get(s.Name)
		if err != nil {
			t.Fatal(err)
		}
		got := b.Unit().AsyncStats()
		if got.Loop != s.loopAsyncs() || got.PlaceSwitch != s.placeAsyncs() {
			t.Errorf("%s: spec predicts %d/%d asyncs, synthesizer produced %d/%d",
				s.Name, s.loopAsyncs(), s.placeAsyncs(), got.Loop, got.PlaceSwitch)
		}
	}
}

// Structural counts must land near the paper's (they cannot be exact:
// the original sources are unavailable).
func TestStructuralCountsNearPaper(t *testing.T) {
	within := func(got, want int, tol float64) bool {
		lo := float64(want) * (1 - tol)
		hi := float64(want) * (1 + tol)
		return float64(got) >= lo && float64(got) <= hi
	}
	for _, b := range All() {
		c := b.Unit().NodeCounts()
		if !within(c.Total, b.Paper.Nodes.Total, 0.60) {
			t.Errorf("%s: nodes = %d, paper %d (>60%% off)", b.Name, c.Total, b.Paper.Nodes.Total)
		}
		if !within(b.LOC(), b.Paper.LOC, 2.7) {
			t.Errorf("%s: LOC = %d, paper %d", b.Name, b.LOC(), b.Paper.LOC)
		}
	}
}

func TestProgramsValidateAndAnalyze(t *testing.T) {
	for _, b := range All() {
		p := b.Program()
		if err := syntax.Validate(p); err != nil {
			t.Fatalf("%s: invalid lowered program: %v", b.Name, err)
		}
		r := mhp.MustAnalyze(p, constraints.ContextSensitive)
		if r.M == nil {
			t.Fatalf("%s: no analysis result", b.Name)
		}
	}
}

// The paper: "For the 11 smallest benchmarks … we got the exact same
// results" from the context-insensitive analysis; only mg and plasma
// differ.
func TestCIOnlyDiffersOnMgAndPlasma(t *testing.T) {
	if testing.Short() {
		t.Skip("analyzes all benchmarks twice")
	}
	for _, b := range All() {
		cs := mhp.CountPairs(mhp.MustAnalyze(b.Program(), constraints.ContextSensitive).AsyncBodyPairs())
		ci := mhp.CountPairs(mhp.MustAnalyze(b.Program(), constraints.ContextInsensitive).AsyncBodyPairs())
		bigTwo := b.Name == "mg" || b.Name == "plasma"
		if bigTwo {
			if ci.Total <= cs.Total {
				t.Errorf("%s: expected CI blowup, CS %d vs CI %d", b.Name, cs.Total, ci.Total)
			}
			if ci.Diff <= cs.Diff {
				t.Errorf("%s: expected CI diff blowup, CS %d vs CI %d", b.Name, cs.Diff, ci.Diff)
			}
		} else if cs != ci {
			t.Errorf("%s: CI should equal CS on small benchmarks: CS %+v, CI %+v", b.Name, cs, ci)
		}
	}
}

// Figure 8's qualitative pair structure.
func TestPairStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("analyzes all benchmarks")
	}
	counts := map[string]mhp.PairCounts{}
	for _, b := range All() {
		counts[b.Name] = mhp.CountPairs(mhp.MustAnalyze(b.Program(), constraints.ContextSensitive).AsyncBodyPairs())
	}
	// Every benchmark has at least one self pair (loop asyncs are the
	// dominant X10 idiom).
	for name, c := range counts {
		if c.Self == 0 {
			t.Errorf("%s: no self pairs", name)
		}
	}
	// mg's pairs are dominated by cross-method (diff) pairs.
	if c := counts["mg"]; c.Diff < c.Self || c.Diff < c.Same {
		t.Errorf("mg: diff pairs should dominate: %+v", c)
	}
	// plasma's are dominated by self and same pairs, with few diff.
	if c := counts["plasma"]; c.Diff > 10 || c.Same < 50 || c.Self < 50 {
		t.Errorf("plasma: unexpected pair structure: %+v", c)
	}
	// linpack reproduces its Figure 8 row exactly.
	if c := counts["linpack"]; c.Total != 10 || c.Self != 6 || c.Same != 1 || c.Diff != 3 {
		t.Errorf("linpack: pairs = %+v, paper 10/6/1/3", c)
	}
	// stream reproduces its row exactly.
	if c := counts["stream"]; c.Total != 5 || c.Self != 4 || c.Same != 1 || c.Diff != 0 {
		t.Errorf("stream: pairs = %+v, paper 5/4/1/0", c)
	}
}

func TestGetAndNames(t *testing.T) {
	names := Names()
	if len(names) != 13 {
		t.Fatalf("names = %v", names)
	}
	if names[0] != "stream" || names[12] != "plasma" {
		t.Fatalf("order wrong: %v", names)
	}
	if _, err := Get("plasma"); err != nil {
		t.Fatalf("Get(plasma): %v", err)
	}
	if _, err := Get("nope"); err == nil {
		t.Fatalf("Get(nope) should fail")
	}
}

func TestSourcesAreDeterministic(t *testing.T) {
	a := build(specFor("stream"))
	b := build(specFor("stream"))
	if a != b {
		t.Fatalf("synthesis not deterministic")
	}
}

func TestPaperRowsComplete(t *testing.T) {
	for _, s := range specs {
		row, ok := paperRows[s.Name]
		if !ok {
			t.Fatalf("no paper row for %s", s.Name)
		}
		if row.AsyncTotal != row.AsyncLoop+row.AsyncPlace {
			t.Fatalf("%s: paper async split inconsistent", s.Name)
		}
		nodeSum := row.Nodes.End + row.Nodes.Async + row.Nodes.Call + row.Nodes.Finish +
			row.Nodes.If + row.Nodes.Loop + row.Nodes.Method + row.Nodes.Return +
			row.Nodes.Skip + row.Nodes.Switch
		if nodeSum != row.Nodes.Total {
			t.Fatalf("%s: paper Figure 7 row sums to %d, total %d", s.Name, nodeSum, row.Nodes.Total)
		}
	}
	if paperRows["mg"].CI == nil || paperRows["plasma"].CI == nil {
		t.Fatalf("Figure 9 rows missing")
	}
	if paperRows["stream"].CI != nil {
		t.Fatalf("stream should have no Figure 9 row")
	}
}
