package engine

import (
	"os"
	"path/filepath"
	"testing"

	"fx10/internal/constraints"
	"fx10/internal/parser"
	"fx10/internal/syntax"
	"fx10/internal/workloads"
)

func chopFile(t *testing.T, path string, n int64) {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() <= n {
		t.Fatalf("log too small to chop %d bytes", n)
	}
	if err := os.Truncate(path, fi.Size()-n); err != nil {
		t.Fatal(err)
	}
}

func removeFile(t *testing.T, path string) {
	t.Helper()
	if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
		t.Fatal(err)
	}
}

// resultEqual is bitwise equality of the analysis products callers
// consume: the main M set and every method summary.
func resultEqual(a, b *Result) bool {
	if !a.M.Equal(b.M) {
		return false
	}
	return a.Env.Equal(b.Env)
}

// TestStoreDoesNotChangeReports: with the disk tier enabled, disabled,
// and warm, every workload's analysis products are bit-identical.
func TestStoreDoesNotChangeReports(t *testing.T) {
	dir := t.TempDir()
	plain := MustNew(Config{CacheSize: 8})
	stored := MustNew(Config{CacheSize: 8, SummaryStorePath: dir})
	defer stored.Close()

	for _, b := range workloads.All() {
		p := b.Program()
		for _, mode := range []constraints.Mode{constraints.ContextSensitive, constraints.ContextInsensitive} {
			want, err := plain.Analyze(Job{Name: b.Name, Program: p, Mode: mode})
			if err != nil {
				t.Fatal(err)
			}
			got, err := stored.Analyze(Job{Name: b.Name, Program: p, Mode: mode})
			if err != nil {
				t.Fatal(err)
			}
			if !resultEqual(want, got) {
				t.Fatalf("%s (mode %v): store-enabled analysis differs", b.Name, mode)
			}
		}
	}

	// Warm restart: a fresh engine over the populated store must again
	// be bit-identical.
	warm := MustNew(Config{CacheSize: 8, SummaryStorePath: dir})
	defer warm.Close()
	for _, b := range workloads.All() {
		p := b.Program()
		want, err := plain.Analyze(Job{Name: b.Name, Program: p, Mode: constraints.ContextSensitive})
		if err != nil {
			t.Fatal(err)
		}
		got, err := warm.Analyze(Job{Name: b.Name, Program: p, Mode: constraints.ContextSensitive})
		if err != nil {
			t.Fatal(err)
		}
		if !resultEqual(want, got) {
			t.Fatalf("%s: warm-store analysis differs", b.Name)
		}
	}
	if stats, ok := warm.SummaryStoreStats(); !ok || stats.Hits == 0 {
		t.Fatalf("warm engine recorded no store hits: %+v", stats)
	}
}

// TestStoreWarmStartSeedsSecondEngine is the cross-process shape of
// the restart scenario, in-process: engine 1 persists summaries,
// engine 2 (fresh memory tiers, same directory) serves CachedSummary
// from disk with values bit-identical to what solving computes.
func TestStoreWarmStartSeedsSecondEngine(t *testing.T) {
	dir := t.TempDir()
	src := `
void help() {
  L1: finish {
    L2: async { L3: skip; L4: skip; }
  }
  L5: async { L6: skip; }
}
void main() {
  L7: help();
  L8: async { L9: help(); }
}`
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}

	e1 := MustNew(Config{CacheSize: 8, SummaryStorePath: dir})
	res1, err := e1.Analyze(Job{Program: p, Mode: constraints.ContextSensitive})
	if err != nil {
		t.Fatal(err)
	}
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}

	// A second, memory-cold engine: CachedSummary must hit via disk
	// before this engine has analyzed anything.
	e2 := MustNew(Config{CacheSize: 8, SummaryStorePath: dir})
	defer e2.Close()
	p2, err := parser.Parse(src) // distinct Program value, same content
	if err != nil {
		t.Fatal(err)
	}
	hi, _ := p2.MethodIndex("help")
	got, ok := e2.CachedSummary(p2, hi)
	if !ok {
		t.Fatal("second engine missed a summary the first persisted")
	}
	want := res1.Sol.MethodSummary(hi)
	if !got.O.Equal(want.O) || !got.M.Equal(want.M) {
		t.Fatal("disk-tier summary differs from the solved one")
	}
	if cs := e2.CacheStats(); cs.SummaryHits == 0 {
		t.Error("disk-tier hit not counted as a summary hit")
	}
	// And a full analysis on the second engine matches the first's.
	res2, err := e2.Analyze(Job{Program: p2, Mode: constraints.ContextSensitive})
	if err != nil {
		t.Fatal(err)
	}
	if !resultEqual(res1, res2) {
		t.Fatal("store-seeded engine computed a different result")
	}
}

// TestStoreSurvivesCrashMidWrite: truncating the segment log
// mid-record (a simulated crash) must leave a store a fresh engine
// can open and analyze through with bit-identical results.
func TestStoreSurvivesCrashMidWrite(t *testing.T) {
	dir := t.TempDir()
	e1 := MustNew(Config{CacheSize: 8, SummaryStorePath: dir})
	var want []*Result
	for _, b := range workloads.All()[:4] {
		r, err := e1.Analyze(Job{Name: b.Name, Program: b.Program(), Mode: constraints.ContextSensitive})
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, r)
	}
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the log's tail: chop 13 bytes off the end (mid-record) and
	// delete the index snapshot so recovery exercises the scan path.
	log := filepath.Join(dir, "segment.log")
	chopFile(t, log, 13)
	removeFile(t, filepath.Join(dir, "index"))

	e2 := MustNew(Config{CacheSize: 8, SummaryStorePath: dir})
	defer e2.Close()
	if stats, ok := e2.SummaryStoreStats(); !ok || stats.TruncatedBytes == 0 {
		t.Fatalf("torn tail not detected: %+v", stats)
	}
	for i, b := range workloads.All()[:4] {
		got, err := e2.Analyze(Job{Name: b.Name, Program: b.Program(), Mode: constraints.ContextSensitive})
		if err != nil {
			t.Fatal(err)
		}
		if !resultEqual(want[i], got) {
			t.Fatalf("%s: post-crash analysis differs", b.Name)
		}
	}
}

// TestClockedProgramsNeverTouchTheStore: the clocked exclusion carries
// over to disk verbatim — analyzing a clocked program neither reads
// nor writes the disk tier, and the probe counts as skipped.
func TestClockedProgramsNeverTouchTheStore(t *testing.T) {
	dir := t.TempDir()
	e := MustNew(Config{CacheSize: 8, SummaryStorePath: dir})
	defer e.Close()

	src := `
void main() {
  L1: finish {
    L2: clocked async { L3: skip; L4: next; L5: skip; }
    L6: next;
    L7: skip;
  }
}`
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if !p.UsesClocks() {
		t.Fatal("test program should be clocked")
	}
	if _, err := e.Analyze(Job{Program: p, Mode: constraints.ContextSensitive}); err != nil {
		t.Fatal(err)
	}
	if _, ok := e.CachedSummary(p, p.MainIndex); ok {
		t.Error("clocked program served from the summary tier")
	}
	stats, ok := e.SummaryStoreStats()
	if !ok {
		t.Fatal("store not configured")
	}
	if stats.Puts != 0 || stats.Hits != 0 || stats.Misses != 0 {
		t.Errorf("clocked analysis touched the disk tier: %+v", stats)
	}
	if cs := e.CacheStats(); cs.SummarySkipped == 0 {
		t.Error("clocked probe not counted as skipped")
	}
	if cs := e.CacheStats(); cs.SummaryMisses != 0 {
		t.Errorf("clocked probe counted as %d misses", e.CacheStats().SummaryMisses)
	}
}

// TestSummarySkippedDoesNotInflateHitRate: over a mixed corpus the
// skip counter absorbs the clocked probes; hits+misses only reflect
// programs the tier actually serves.
func TestSummarySkippedDoesNotInflateHitRate(t *testing.T) {
	e := MustNew(Config{CacheSize: 8})
	clocked := `
void main() {
  L1: finish {
    L2: clocked async { L3: next; }
    L4: next;
  }
}`
	plain := `
void main() {
  L1: async { L2: skip; }
  L3: skip;
}`
	pc, err := parser.Parse(clocked)
	if err != nil {
		t.Fatal(err)
	}
	pp, err := parser.Parse(plain)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []*syntax.Program{pc, pp} {
		if _, err := e.Analyze(Job{Program: p, Mode: constraints.ContextSensitive}); err != nil {
			t.Fatal(err)
		}
	}
	e.CachedSummary(pc, pc.MainIndex) // skipped
	e.CachedSummary(pp, pp.MainIndex) // hit
	cs := e.CacheStats()
	if cs.SummarySkipped != 1 {
		t.Errorf("SummarySkipped = %d, want 1", cs.SummarySkipped)
	}
	if cs.SummaryHits != 1 || cs.SummaryMisses != 0 {
		t.Errorf("hits/misses = %d/%d, want 1/0", cs.SummaryHits, cs.SummaryMisses)
	}
}
