package engine

import (
	"container/list"
	"crypto/sha256"
	"fmt"
	"sync"

	"fx10/internal/constraints"
	"fx10/internal/syntax"
)

// cacheKey identifies an analysis up to result equality: two requests
// with the same key are guaranteed the same solution, because the
// program text determines the constraint system and (Theorem 5) the
// system determines its least solution. The key is the program's
// content hash (sha256 of the printed form — canonical and
// independent of which *syntax.Program pointer the caller holds,
// memoized on the Program so repeated lookups don't re-walk the AST)
// plus the mode and the strategy name (strategies agree on valuations
// but report different metrics, which Stats exposes, so they must not
// share entries).
type cacheKey struct {
	program  [sha256.Size]byte
	mode     constraints.Mode
	strategy string
}

func keyFor(p *syntax.Program, mode constraints.Mode, strategy string) cacheKey {
	return cacheKey{
		program:  p.Hash(),
		mode:     mode,
		strategy: strategy,
	}
}

func (k cacheKey) String() string {
	return fmt.Sprintf("%x/%v/%s", k.program[:6], k.mode, k.strategy)
}

// cached is the expensive, immutable core of one analysis. The
// cheap derived views (Env, MainM) are re-extracted per request so
// every Result owns its mutable parts.
type cached struct {
	core  pipelineCore
	stats Stats // stage durations and counters of the populating run
}

// resultCache is a mutex-guarded LRU keyed by cacheKey. The corpus
// pool hits it from many goroutines; a plain map with a lock is
// enough because entries are large (a solved system) and lookups are
// rare relative to solving.
type resultCache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recently used; values are cacheKey
	entries map[cacheKey]*cacheEntry
}

type cacheEntry struct {
	val  cached
	elem *list.Element
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{
		cap:     capacity,
		order:   list.New(),
		entries: make(map[cacheKey]*cacheEntry),
	}
}

func (c *resultCache) get(k cacheKey) (cached, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[k]
	if !ok {
		return cached{}, false
	}
	c.order.MoveToFront(e.elem)
	return e.val, true
}

func (c *resultCache) put(k cacheKey, v cached) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[k]; ok {
		// Concurrent workers may solve the same program twice; the
		// solutions are identical (Theorem 5), keep the first.
		c.order.MoveToFront(e.elem)
		return
	}
	c.entries[k] = &cacheEntry{val: v, elem: c.order.PushFront(k)}
	for len(c.entries) > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(cacheKey))
	}
}

func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
