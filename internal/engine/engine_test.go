package engine

import (
	"strings"
	"testing"

	"fx10/internal/constraints"
	"fx10/internal/fixtures"
	"fx10/internal/parser"
	"fx10/internal/progen"
	"fx10/internal/syntax"
)

func TestRegistryBuiltins(t *testing.T) {
	got := strings.Join(Strategies(), " ")
	for _, name := range []string{"phased", "monolithic", "worklist", "topo", "ptopo"} {
		if !strings.Contains(got, name) {
			t.Errorf("registry missing %q (have %s)", name, got)
		}
		if _, err := Lookup(name); err != nil {
			t.Errorf("Lookup(%q): %v", name, err)
		}
	}
	if _, err := Lookup(""); err != nil {
		t.Errorf("empty name should resolve to default: %v", err)
	}
	if _, err := Lookup("no-such-solver"); err == nil {
		t.Error("Lookup of unknown strategy succeeded")
	}
	if err := Register(FromOptions("phased", constraints.Options{})); err == nil {
		t.Error("duplicate Register succeeded")
	}
	if err := Register(FromOptions("", constraints.Options{})); err == nil {
		t.Error("empty-name Register succeeded")
	}
}

func TestNewRejectsUnknownStrategy(t *testing.T) {
	if _, err := New(Config{Strategy: "no-such-solver"}); err == nil {
		t.Fatal("New with unknown strategy succeeded")
	}
}

// TestAnalyzeMatchesDirectPipeline pins the engine to the hand-wired
// chain it replaces.
func TestAnalyzeMatchesDirectPipeline(t *testing.T) {
	p := fixtures.Example21()
	eng := MustNew(Config{})
	res, err := eng.Analyze(Job{Name: "example-2.1", Program: p})
	if err != nil {
		t.Fatal(err)
	}
	direct := constraints.Generate(res.Info, constraints.ContextSensitive).Solve(constraints.Options{})
	if !res.M.Equal(direct.MainM()) {
		t.Error("engine M differs from direct pipeline M")
	}
	if res.Stats.Strategy != "phased" || res.Stats.CacheHit {
		t.Errorf("unexpected stats: %+v", res.Stats)
	}
	if res.Stats.IterL1 == 0 || res.Stats.IterL2 == 0 || res.Stats.IterSlabels == 0 {
		t.Errorf("missing solver counters: %+v", res.Stats)
	}
	if res.Stats.PipelineDuration() <= 0 {
		t.Error("no pipeline duration recorded")
	}
}

// TestCacheHitIdenticalResult checks the content-hash cache: a
// second analysis of a content-identical (but distinct) program value
// is served from cache and yields identical results.
func TestCacheHitIdenticalResult(t *testing.T) {
	eng := MustNew(Config{CacheSize: 8})
	p1 := parser.MustParse(fixtures.Example22Source)
	p2 := parser.MustParse(fixtures.Example22Source)

	r1, err := eng.Analyze(Job{Program: p1})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Stats.CacheHit {
		t.Fatal("first analysis reported a cache hit")
	}
	r2, err := eng.Analyze(Job{Program: p2})
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Stats.CacheHit {
		t.Fatal("second analysis missed the cache")
	}
	if !r1.M.Equal(r2.M) {
		t.Error("cached M differs")
	}
	if len(r1.Env) != len(r2.Env) {
		t.Fatalf("env sizes differ: %d vs %d", len(r1.Env), len(r2.Env))
	}
	for i := range r1.Env {
		if !r1.Env[i].M.Equal(r2.Env[i].M) || !r1.Env[i].O.Equal(r2.Env[i].O) {
			t.Errorf("cached summary %d differs", i)
		}
	}
	if !r1.Sol.ValuationEqual(r2.Sol) {
		t.Error("cached valuation differs")
	}
	// The derived views must be freshly owned per request, not
	// aliases into the cache: mutating one result must not leak into
	// the next hit.
	r2.M.Add(0, 0)
	r3, err := eng.Analyze(Job{Program: p1})
	if err != nil {
		t.Fatal(err)
	}
	if !r3.Stats.CacheHit {
		t.Fatal("third analysis missed the cache")
	}
	if !r3.M.Equal(r1.M) {
		t.Error("mutation of a served M leaked into the cache")
	}
	if cs := eng.CacheStats(); cs.Hits != 2 || cs.Misses != 1 {
		t.Errorf("cache stats = %+v, want 2 hits / 1 miss", cs)
	}
}

// TestCacheKeying: different modes and different strategies must not
// share cache entries.
func TestCacheKeying(t *testing.T) {
	p := fixtures.Example22()
	eng := MustNew(Config{CacheSize: 8})
	cs, err := eng.Analyze(Job{Program: p, Mode: constraints.ContextSensitive})
	if err != nil {
		t.Fatal(err)
	}
	ci, err := eng.Analyze(Job{Program: p, Mode: constraints.ContextInsensitive})
	if err != nil {
		t.Fatal(err)
	}
	if ci.Stats.CacheHit {
		t.Error("context-insensitive analysis served from context-sensitive entry")
	}
	// The Section 2.2 example is precisely the one where the two
	// modes disagree, so a keying bug is observable.
	if cs.M.Equal(ci.M) {
		t.Error("modes produced equal M on the context-sensitivity example; keying test is vacuous")
	}

	wl := MustNew(Config{Strategy: "worklist", CacheSize: 8})
	wr, err := wl.Analyze(Job{Program: p})
	if err != nil {
		t.Fatal(err)
	}
	if wr.Stats.CacheHit || wr.Stats.Strategy != "worklist" {
		t.Errorf("fresh engine reported stats %+v", wr.Stats)
	}
}

func TestCacheEviction(t *testing.T) {
	eng := MustNew(Config{CacheSize: 2})
	progs := []*syntax.Program{
		progen.Generate(1, progen.Finite()),
		progen.Generate(2, progen.Finite()),
		progen.Generate(3, progen.Finite()),
	}
	for _, p := range progs {
		if _, err := eng.Analyze(Job{Program: p}); err != nil {
			t.Fatal(err)
		}
	}
	if n := eng.cache.len(); n != 2 {
		t.Fatalf("cache holds %d entries, want 2", n)
	}
	// progs[0] is the evicted one: re-analyzing it must miss.
	if _, err := eng.Analyze(Job{Program: progs[0]}); err != nil {
		t.Fatal(err)
	}
	if cs := eng.CacheStats(); cs.Hits != 0 {
		t.Errorf("expected no hits after eviction, got %+v", cs)
	}
}

func TestCacheDisabled(t *testing.T) {
	eng := MustNew(Config{CacheSize: -1})
	p := fixtures.Example21()
	for i := 0; i < 2; i++ {
		r, err := eng.Analyze(Job{Program: p})
		if err != nil {
			t.Fatal(err)
		}
		if r.Stats.CacheHit {
			t.Fatal("cache hit with caching disabled")
		}
	}
	if cs := eng.CacheStats(); cs.Hits != 0 || cs.Misses != 0 {
		t.Errorf("disabled cache recorded traffic: %+v", cs)
	}
}

// TestAnalyzeParsesSource covers the parse stage.
func TestAnalyzeParsesSource(t *testing.T) {
	eng := MustNew(Config{})
	res, err := eng.Analyze(Job{Name: "inline", Source: fixtures.Example21Source})
	if err != nil {
		t.Fatal(err)
	}
	if res.M.Empty() {
		t.Error("no MHP pairs inferred for the Section 2.1 example")
	}
	if _, err := eng.Analyze(Job{Name: "bad", Source: "void main( {"}); err == nil {
		t.Error("parse error not reported")
	}
}

// panicStrategy panics on every solve — a stand-in for a malformed
// program tripping an invariant deep in the pipeline.
type panicStrategy struct{}

func (panicStrategy) Name() string { return "test-panic" }
func (panicStrategy) Solve(*constraints.System) *constraints.Solution {
	panic("solver invariant violated")
}

// TestCorpusPanicIsolation: one bad program must not kill the sweep.
func TestCorpusPanicIsolation(t *testing.T) {
	MustRegister(panicStrategy{})
	eng := MustNew(Config{Strategy: "test-panic", Workers: 4})
	jobs := []Job{
		{Name: "p1", Program: fixtures.Example21()},
		{Name: "p2", Program: fixtures.Example22()},
		{Name: "bad-parse", Source: "void main( {"},
	}
	results := eng.AnalyzeCorpus(jobs)
	if len(results) != len(jobs) {
		t.Fatalf("got %d results, want %d", len(results), len(jobs))
	}
	for i, cr := range results {
		if cr.Err == nil {
			t.Errorf("job %d (%s): expected an error", i, cr.Job.Name)
		}
		if cr.Result != nil {
			t.Errorf("job %d (%s): result alongside error", i, cr.Job.Name)
		}
	}
	if !strings.Contains(results[0].Err.Error(), "panic analyzing p1") {
		t.Errorf("panic error lacks job name: %v", results[0].Err)
	}
	if strings.Contains(results[2].Err.Error(), "panic") {
		t.Errorf("parse failure misreported as panic: %v", results[2].Err)
	}
}

// TestCorpusParallelMatchesSequential: the pool must be a pure
// scheduling change — same results in the same (input) order.
func TestCorpusParallelMatchesSequential(t *testing.T) {
	var jobs []Job
	for seed := int64(0); seed < 20; seed++ {
		jobs = append(jobs, Job{Program: progen.Generate(seed, progen.Default())})
	}
	seq := MustNew(Config{Workers: 1, CacheSize: -1}).AnalyzeCorpus(jobs)
	par := MustNew(Config{Workers: 8, CacheSize: -1}).AnalyzeCorpus(jobs)
	for i := range jobs {
		if seq[i].Err != nil || par[i].Err != nil {
			t.Fatalf("job %d failed: seq=%v par=%v", i, seq[i].Err, par[i].Err)
		}
		if !seq[i].Result.M.Equal(par[i].Result.M) {
			t.Errorf("job %d: parallel M differs from sequential", i)
		}
		if !seq[i].Result.Sol.ValuationEqual(par[i].Result.Sol) {
			t.Errorf("job %d: parallel valuation differs from sequential", i)
		}
	}
}

// TestCorpusSharedCache: identical programs in one sweep are served
// from cache after the first solve, and hits equal misses absent.
func TestCorpusSharedCache(t *testing.T) {
	p := progen.Generate(42, progen.Default())
	jobs := make([]Job, 6)
	for i := range jobs {
		// Distinct parses of the same printed program: content-equal,
		// pointer-distinct.
		jobs[i] = Job{Program: parser.MustParse(syntax.Print(p))}
	}
	eng := MustNew(Config{Workers: 1, CacheSize: 8})
	results := eng.AnalyzeCorpus(jobs)
	for i, cr := range results {
		if cr.Err != nil {
			t.Fatalf("job %d: %v", i, cr.Err)
		}
		if !results[0].Result.M.Equal(cr.Result.M) {
			t.Errorf("job %d: cached M differs", i)
		}
		if wantHit := i > 0; cr.Result.Stats.CacheHit != wantHit {
			t.Errorf("job %d: CacheHit = %v, want %v", i, cr.Result.Stats.CacheHit, wantHit)
		}
	}
	if cs := eng.CacheStats(); cs.Hits != 5 || cs.Misses != 1 {
		t.Errorf("cache stats = %+v, want 5 hits / 1 miss", cs)
	}
}
