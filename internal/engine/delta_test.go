package engine

import (
	"testing"

	"fx10/internal/constraints"
	"fx10/internal/progen"
	"fx10/internal/syntax"
)

// deltaStrategies are the built-in strategies every incremental result
// is checked under.
var deltaStrategies = []string{"phased", "monolithic", "worklist", "topo", "ptopo"}

// TestAnalyzeDeltaEquivalenceCorpus is the acceptance sweep for the
// incremental pipeline: 200 seeded (program, single-method edit)
// pairs, each analyzed under all four strategies, with AnalyzeDelta
// required to match a from-scratch analysis bit for bit — valuation,
// M, and Env. Context-sensitive throughout (the summary-bearing mode);
// TestAnalyzeDeltaContextInsensitive covers CI.
func TestAnalyzeDeltaEquivalenceCorpus(t *testing.T) {
	pairs := 0
	for seed := int64(0); seed < 50; seed++ {
		cfg := progen.Default()
		if seed%2 == 1 {
			cfg = progen.Finite()
		}
		p := progen.Generate(seed, cfg)
		for k := 0; k < 4; k++ {
			mi := (int(seed) + k) % len(p.Methods)
			edited := progen.MutateMethod(p, mi, seed*4+int64(k))
			pairs++
			for _, strat := range deltaStrategies {
				e := MustNew(Config{Strategy: strat, CacheSize: -1})
				base, err := e.Analyze(Job{Program: p, Mode: constraints.ContextSensitive})
				if err != nil {
					t.Fatal(err)
				}
				delta, err := e.AnalyzeDelta(base, edited)
				if err != nil {
					t.Fatalf("seed %d edit %d (%s): %v", seed, k, strat, err)
				}
				scratch, err := e.Analyze(Job{Program: edited, Mode: constraints.ContextSensitive})
				if err != nil {
					t.Fatal(err)
				}
				if !delta.Sol.ValuationEqual(scratch.Sol) {
					t.Fatalf("seed %d edit %d (%s): delta valuation differs from scratch\n%s",
						seed, k, strat, syntax.Print(edited))
				}
				if !delta.M.Equal(scratch.M) {
					t.Fatalf("seed %d edit %d (%s): delta M differs from scratch", seed, k, strat)
				}
				if !delta.Env.Equal(scratch.Env) {
					t.Fatalf("seed %d edit %d (%s): delta Env differs from scratch", seed, k, strat)
				}
				ds := delta.Stats.Delta
				if ds == nil {
					t.Fatalf("seed %d edit %d (%s): no DeltaStats", seed, k, strat)
				}
				if ds.MethodsTotal != len(edited.Methods) ||
					ds.MethodsReused+ds.MethodsResolved != ds.MethodsTotal {
					t.Fatalf("seed %d edit %d (%s): inconsistent DeltaStats %+v", seed, k, strat, *ds)
				}
				if !ds.Full && len(ds.DirtyMethods) == 0 {
					t.Fatalf("seed %d edit %d (%s): edit produced no dirty methods", seed, k, strat)
				}
			}
		}
	}
	if pairs != 200 {
		t.Fatalf("swept %d (program, edit) pairs, want 200", pairs)
	}
}

// TestAnalyzeDeltaContextInsensitive covers the CI closure rule
// (weak components over the union of old and new call graphs).
func TestAnalyzeDeltaContextInsensitive(t *testing.T) {
	e := MustNew(Config{CacheSize: -1})
	for seed := int64(0); seed < 25; seed++ {
		p := progen.Generate(seed, progen.Default())
		base, err := e.Analyze(Job{Program: p, Mode: constraints.ContextInsensitive})
		if err != nil {
			t.Fatal(err)
		}
		for mi := range p.Methods {
			edited := progen.MutateMethod(p, mi, seed*17+int64(mi))
			delta, err := e.AnalyzeDelta(base, edited)
			if err != nil {
				t.Fatal(err)
			}
			scratch, err := e.Analyze(Job{Program: edited, Mode: constraints.ContextInsensitive})
			if err != nil {
				t.Fatal(err)
			}
			if !delta.Sol.ValuationEqual(scratch.Sol) || !delta.M.Equal(scratch.M) {
				t.Fatalf("seed %d method %d: CI delta differs from scratch\n%s",
					seed, mi, syntax.Print(edited))
			}
		}
	}
}

// TestAnalyzeDeltaReusesMethods: on a fan-out program, editing one
// leaf must leave the sibling methods seeded, not re-solved.
func TestAnalyzeDeltaReusesMethods(t *testing.T) {
	build := func(extra bool) *syntax.Program {
		b := syntax.NewBuilder(4)
		b.MustAddMethod("left", b.Stmts(b.Async("", b.Stmts(b.Skip("")))))
		instrs := []syntax.Instr{b.Async("", b.Stmts(b.Skip("")))}
		if extra {
			instrs = append(instrs, b.Skip(""))
		}
		b.MustAddMethod("right", b.Stmts(instrs...))
		b.MustAddMethod("main", b.Stmts(
			b.Finish("", b.Stmts(b.Call("", "left"), b.Call("", "right"))),
		))
		return b.MustProgram()
	}
	e := MustNew(Config{CacheSize: -1})
	base, err := e.Analyze(Job{Program: build(false), Mode: constraints.ContextSensitive})
	if err != nil {
		t.Fatal(err)
	}
	delta, err := e.AnalyzeDelta(base, build(true))
	if err != nil {
		t.Fatal(err)
	}
	ds := delta.Stats.Delta
	if ds.Full {
		t.Fatal("delta fell back to full solve")
	}
	if ds.MethodsReused == 0 {
		t.Fatalf("no methods reused: %+v", *ds)
	}
	// The content hash covers a method's whole call-graph subtree, so
	// the edit dirties "right" and its caller "main" — but never the
	// untouched sibling "left".
	dirty := map[string]bool{}
	for _, name := range ds.DirtyMethods {
		dirty[name] = true
	}
	if !dirty["right"] || dirty["left"] {
		t.Fatalf("dirty methods = %v, want right (and possibly main) but never left", ds.DirtyMethods)
	}
}

// TestAnalyzeDeltaCacheHit: when the edited program is already in the
// program cache, AnalyzeDelta serves it with zero re-solving.
func TestAnalyzeDeltaCacheHit(t *testing.T) {
	e := MustNew(Config{CacheSize: 8})
	p := progen.Generate(1, progen.Default())
	edited := progen.AppendSkip(p, 0)
	base, err := e.Analyze(Job{Program: p, Mode: constraints.ContextSensitive})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Analyze(Job{Program: edited, Mode: constraints.ContextSensitive}); err != nil {
		t.Fatal(err)
	}
	delta, err := e.AnalyzeDelta(base, edited)
	if err != nil {
		t.Fatal(err)
	}
	if !delta.Stats.CacheHit {
		t.Fatal("expected a program-cache hit")
	}
	ds := delta.Stats.Delta
	if ds == nil || ds.MethodsReused != ds.MethodsTotal || ds.MethodsResolved != 0 {
		t.Fatalf("cache-hit DeltaStats = %+v, want everything reused", ds)
	}
}

// TestAnalyzeDeltaErrors: incomplete bases are rejected.
func TestAnalyzeDeltaErrors(t *testing.T) {
	e := MustNew(Config{CacheSize: -1})
	p := progen.Generate(2, progen.Default())
	if _, err := e.AnalyzeDelta(nil, p); err == nil {
		t.Error("nil base accepted")
	}
	base, err := e.Analyze(Job{Program: p, Mode: constraints.ContextSensitive})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.AnalyzeDelta(base, nil); err == nil {
		t.Error("nil edited program accepted")
	}
}

// TestSummaryCacheCrossProgram: a method shared verbatim between two
// different programs is summarized once — the second program's
// analysis finds it in the summary tier, translated into its own label
// space and equal to what solving computes.
func TestSummaryCacheCrossProgram(t *testing.T) {
	shared := func(b *syntax.Builder) {
		b.MustAddMethod("shared", b.Stmts(
			b.Finish("", b.Stmts(b.Async("", b.Stmts(b.Skip(""), b.Skip(""))))),
			b.Async("", b.Stmts(b.Skip(""))),
		))
	}
	b1 := syntax.NewBuilder(4)
	shared(b1)
	b1.MustAddMethod("main", b1.Stmts(b1.Call("", "shared")))
	p1 := b1.MustProgram()

	b2 := syntax.NewBuilder(4)
	shared(b2)
	b2.MustAddMethod("main", b2.Stmts(
		b2.Skip(""),
		b2.Async("", b2.Stmts(b2.Call("", "shared"))),
	))
	p2 := b2.MustProgram()

	e := MustNew(Config{CacheSize: 8})
	if _, err := e.Analyze(Job{Program: p1, Mode: constraints.ContextSensitive}); err != nil {
		t.Fatal(err)
	}
	s2, _ := p2.MethodIndex("shared")
	if p1Idx, _ := p1.MethodIndex("shared"); p1.MethodHash(p1Idx) != p2.MethodHash(s2) {
		t.Fatal("shared methods do not share a content hash")
	}
	got, ok := e.CachedSummary(p2, s2)
	if !ok {
		t.Fatal("summary tier miss for a content-identical method")
	}
	res2, err := e.Analyze(Job{Program: p2, Mode: constraints.ContextSensitive})
	if err != nil {
		t.Fatal(err)
	}
	want := res2.Sol.MethodSummary(s2)
	if !got.O.Equal(want.O) || !got.M.Equal(want.M) {
		t.Fatalf("cross-program summary differs from solved summary:\ngot  O=%v\nwant O=%v", got.O, want.O)
	}
	if stats := e.CacheStats(); stats.SummaryHits == 0 {
		t.Error("no summary-tier hits recorded")
	}
}
