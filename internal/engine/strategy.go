package engine

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"fx10/internal/constraints"
	"fx10/internal/shard"
)

// Strategy is one way of computing the least solution of a generated
// constraint system. Theorems 5–6 guarantee every strategy reaches
// the same solution; strategies differ only in how they iterate (and
// therefore in time, space and the metrics they report). Strategies
// must be safe for concurrent use: the engine calls Solve from many
// worker goroutines.
type Strategy interface {
	// Name is the registry key ("phased", "monolithic", …).
	Name() string
	// Solve computes the least solution of sys.
	Solve(sys *constraints.System) *constraints.Solution
}

// ContextStrategy is a Strategy that supports cooperative
// cancellation. The engine prefers SolveContext whenever the request
// context can actually be cancelled; strategies without it still work
// but run to completion once started. All five built-in strategies
// implement it (the constraints solvers poll the context every
// constraints.CancelStride evaluations).
type ContextStrategy interface {
	Strategy
	// SolveContext computes the least solution of sys, aborting with
	// ctx.Err() if ctx is cancelled mid-solve. A partial solution is
	// never returned.
	SolveContext(ctx context.Context, sys *constraints.System) (*constraints.Solution, error)
}

// solveWith runs strat on sys honouring ctx where the strategy can:
// a cancellable context routes through SolveContext; a strategy
// without one is bracketed by upfront and after-the-fact polls.
func solveWith(ctx context.Context, strat Strategy, sys *constraints.System) (*constraints.Solution, error) {
	if ctx.Done() == nil {
		return strat.Solve(sys), nil
	}
	if cs, ok := strat.(ContextStrategy); ok {
		return cs.SolveContext(ctx, sys)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sol := strat.Solve(sys)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return sol, nil
}

// DefaultStrategy is the strategy an Engine uses when its Config
// names none: the paper's three-phase solver (Section 5.3).
const DefaultStrategy = "phased"

// WorkerTunable is a Strategy whose solve can use a bounded worker
// pool. WithWorkers returns a strategy with the pool width pinned;
// the name is unchanged, because worker count never affects results —
// only wall clock — so cached results stay valid across widths.
// Strategies without internal parallelism return themselves.
type WorkerTunable interface {
	Strategy
	WithWorkers(n int) Strategy
}

// optionsStrategy adapts a fixed constraints.Options to the Strategy
// interface — all five built-in strategies are spellings of it. The
// adapter holds a normalized Options, so the flag conflicts are
// unrepresentable for engine callers.
type optionsStrategy struct {
	name string
	opts constraints.Options
}

func (s optionsStrategy) Name() string { return s.name }

func (s optionsStrategy) Solve(sys *constraints.System) *constraints.Solution {
	return sys.Solve(s.opts)
}

func (s optionsStrategy) SolveContext(ctx context.Context, sys *constraints.System) (*constraints.Solution, error) {
	return sys.SolveCtx(ctx, s.opts)
}

// WithWorkers pins the solver pool width. Only the parallel strategy
// has one; the sequential spellings return themselves unchanged.
func (s optionsStrategy) WithWorkers(n int) Strategy {
	if !s.opts.Parallel || n <= 0 {
		return s
	}
	s.opts.Workers = n
	return s
}

// FromOptions wraps a constraints.Options as a named Strategy,
// normalizing it first. Useful for registering ad-hoc variants in
// tests and experiments.
func FromOptions(name string, opts constraints.Options) Strategy {
	return optionsStrategy{name: name, opts: opts.Normalize()}
}

// shardStrategy adapts the place-sharded solver (internal/shard) to
// the registry. It lives here rather than in internal/shard because
// WithWorkers must return an engine.Strategy and the shard package
// must not import the engine (the engine imports it to register this).
type shardStrategy struct {
	cfg shard.Config
}

func (s shardStrategy) Name() string { return "shard" }

func (s shardStrategy) Solve(sys *constraints.System) *constraints.Solution {
	return shard.Solve(sys, s.cfg)
}

func (s shardStrategy) SolveContext(ctx context.Context, sys *constraints.System) (*constraints.Solution, error) {
	return shard.SolveCtx(ctx, sys, s.cfg)
}

// WithWorkers pins both the concurrency bound and the shard count:
// one shard per worker keeps every worker busy without oversplitting
// (neither affects results, see shard.Config).
func (s shardStrategy) WithWorkers(n int) Strategy {
	if n <= 0 {
		return s
	}
	s.cfg.Workers = n
	s.cfg.Shards = n
	return s
}

var (
	registryMu sync.RWMutex
	registry   = map[string]Strategy{}
)

func init() {
	MustRegister(FromOptions("phased", constraints.Options{}))
	MustRegister(FromOptions("monolithic", constraints.Options{Monolithic: true}))
	MustRegister(FromOptions("worklist", constraints.Options{Worklist: true}))
	MustRegister(FromOptions("topo", constraints.Options{Topo: true}))
	MustRegister(FromOptions("ptopo", constraints.Options{Parallel: true}))
	MustRegister(shardStrategy{})
}

// Register adds a strategy to the registry. It fails on an empty name
// or a name already taken: strategies are identities (they key the
// result cache), so silent replacement would corrupt cached results.
func Register(s Strategy) error {
	name := s.Name()
	if name == "" {
		return fmt.Errorf("engine: strategy has empty name")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		return fmt.Errorf("engine: strategy %q already registered", name)
	}
	registry[name] = s
	return nil
}

// MustRegister is Register, panicking on error — for init-time
// wiring.
func MustRegister(s Strategy) {
	if err := Register(s); err != nil {
		panic(err)
	}
}

// UnknownStrategyError is returned by Lookup for an unregistered
// name. It is a distinct type so command-line front ends can map it
// to a usage exit code; Known lists the registered names, sorted.
type UnknownStrategyError struct {
	Name  string
	Known []string
}

func (e *UnknownStrategyError) Error() string {
	return fmt.Sprintf("engine: unknown strategy %q (have %v)", e.Name, e.Known)
}

// Lookup resolves a strategy name; the empty name resolves to
// DefaultStrategy.
func Lookup(name string) (Strategy, error) {
	if name == "" {
		name = DefaultStrategy
	}
	registryMu.RLock()
	defer registryMu.RUnlock()
	s, ok := registry[name]
	if !ok {
		return nil, &UnknownStrategyError{Name: name, Known: strategyNamesLocked()}
	}
	return s, nil
}

// Strategies returns the registered strategy names, sorted.
func Strategies() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	return strategyNamesLocked()
}

func strategyNamesLocked() []string {
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
