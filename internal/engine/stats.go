package engine

import (
	"time"

	"fx10/internal/constraints"
)

// Stats records per-stage metrics for one analysis: where the time
// went, how hard the solver worked, and whether the cache served the
// result. On a cache hit the solver-stage numbers (Labels, Generate,
// Solve, iteration counts, AllocBytes) are those of the original run
// that populated the cache; Parse, Report and Total are always those
// of the current request.
type Stats struct {
	// Strategy is the solver strategy that produced the solution.
	Strategy string
	// CacheHit reports whether the labels/constraints/solve stages
	// were served from the engine's result cache.
	CacheHit bool

	// Stage durations.
	Parse    time.Duration // source → AST (zero when a Program was supplied)
	Labels   time.Duration // Slabels fixpoint
	Generate time.Duration // constraint generation
	Solve    time.Duration // least-solution computation
	Report   time.Duration // summary extraction (Env, MainM)
	// Total is the end-to-end wall time of this request, including
	// cache lookups.
	Total time.Duration

	// Solver work counters (see constraints.Solution).
	IterSlabels int
	IterL1      int
	IterL2      int
	Evaluations int64
	// AllocBytes is the heap allocated during the solve stage.
	AllocBytes uint64
	// FootprintBytes estimates the memory retained by the solved
	// valuation.
	FootprintBytes int

	// Delta is set only on results produced by AnalyzeDelta.
	Delta *DeltaStats

	// Shard is set only on results produced by the "shard" strategy:
	// partition shape and merge-round counts of the sharded solve.
	Shard *constraints.ShardStats
}

// DeltaStats reports what an incremental analysis reused.
type DeltaStats struct {
	// MethodsTotal is the edited program's method count;
	// MethodsReused were seeded from the base result, MethodsResolved
	// (the dirty closure) were re-solved.
	MethodsTotal    int
	MethodsReused   int
	MethodsResolved int
	// DirtyMethods names the methods whose content hash differed from
	// the base (before closure), sorted.
	DirtyMethods []string
	// ConstraintsReevaluated counts constraint evaluations performed
	// by the delta solve.
	ConstraintsReevaluated int64
	// Full is true when the delta path fell back to a full re-solve.
	Full bool
	// SummaryHits and SummaryMisses count re-solved methods whose
	// final summary was (respectively was not) already present in the
	// engine's method-summary cache tier — cross-program sharing at
	// work. Zero when the tier is disabled.
	SummaryHits, SummaryMisses int
}

// PipelineDuration is the analysis-only time (labels + generation +
// solving) — the quantity the paper's Figure 8 reports, excluding
// parsing and result extraction.
func (s Stats) PipelineDuration() time.Duration {
	return s.Labels + s.Generate + s.Solve
}

// CacheStats aggregates an engine's cache traffic: the program tier
// (Hits/Misses) and the method-summary tier (SummaryHits/
// SummaryMisses). SummarySkipped counts summary probes for clocked
// programs, which the tier excludes by design — neither hits nor
// misses, so a mixed corpus does not overstate the hit rate.
type CacheStats struct {
	Hits, Misses               uint64
	SummaryHits, SummaryMisses uint64
	SummarySkipped             uint64
}
