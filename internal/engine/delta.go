package engine

import (
	"context"
	"fmt"
	"sort"
	"time"

	"fx10/internal/constraints"
	"fx10/internal/labels"
	"fx10/internal/syntax"
)

// AnalyzeDelta analyzes edited incrementally against base, a result
// for a previous version of the program (same mode, same engine
// strategy family of guarantees): methods whose content hash matches
// their same-named method in the base program keep their solved
// values (translated to the edited program's labels), and only the
// dirty closure is re-solved (constraints.SolveDelta). The returned
// Result is bitwise-identical to Analyze(edited) — Theorems 5–6 give
// the least solution's uniqueness, and the engine's equivalence tests
// plus difffuzz's incremental oracle check the implementation — with
// Stats.Delta reporting what was reused.
//
// The program cache still participates: a cache hit for the edited
// program is served directly (everything reused), and a delta-solved
// result populates the cache for future requests.
func (e *Engine) AnalyzeDelta(base *Result, edited *syntax.Program) (*Result, error) {
	return e.AnalyzeDeltaCtx(context.Background(), base, edited)
}

// AnalyzeDeltaCtx is AnalyzeDelta with cooperative cancellation (the
// same contract as AnalyzeCtx: cancellation caches nothing and
// returns ctx's error).
func (e *Engine) AnalyzeDeltaCtx(ctx context.Context, base *Result, edited *syntax.Program) (*Result, error) {
	if base == nil || base.Sys == nil || base.Sol == nil || base.Program == nil {
		return nil, fmt.Errorf("engine: AnalyzeDelta needs a complete base result")
	}
	if edited == nil {
		return nil, fmt.Errorf("engine: AnalyzeDelta needs an edited program")
	}
	mode := base.Sys.Mode
	start := time.Now()

	var key cacheKey
	if e.cache != nil {
		key = keyFor(edited, mode, e.strategy.Name())
	}
	if c, ok := e.cacheGet(key); ok {
		stats := c.stats
		stats.CacheHit = true
		stats.Delta = &DeltaStats{
			MethodsTotal:  len(edited.Methods),
			MethodsReused: len(edited.Methods),
		}
		t0 := time.Now()
		res := &Result{
			Program: c.core.program,
			Info:    c.core.info,
			Sys:     c.core.sys,
			Sol:     c.core.sol,
			Env:     c.core.sol.Env(),
			M:       c.core.sol.MainM(),
		}
		stats.Report = time.Since(t0)
		stats.Total = time.Since(start)
		res.Stats = stats
		return res, nil
	}

	// Diff method content hashes against the base, by name. The hash
	// covers a method's whole call-graph subtree, so transitive
	// callers of an edited method are dirty here already; SolveDelta
	// recomputes the closure anyway for callers that present it with
	// body-only dirt.
	baseHash := make(map[string]syntax.ProgramHash, len(base.Program.Methods))
	for mi, m := range base.Program.Methods {
		baseHash[m.Name] = base.Program.MethodHash(mi)
	}
	var dirty []constraints.MethodID
	var dirtyNames []string
	for mi, m := range edited.Methods {
		if h, ok := baseHash[m.Name]; !ok || h != edited.MethodHash(mi) {
			dirty = append(dirty, mi)
			dirtyNames = append(dirtyNames, m.Name)
		}
	}
	sort.Strings(dirtyNames)

	stats := Stats{Strategy: e.strategy.Name()}

	t0 := time.Now()
	info := labels.Compute(edited)
	stats.Labels = time.Since(t0)

	if err := ctx.Err(); err != nil {
		return nil, err
	}

	t0 = time.Now()
	sys := constraints.Generate(info, mode)
	stats.Generate = time.Since(t0)

	t0 = time.Now()
	sol, dinfo, err := sys.SolveDeltaCtx(ctx, base.Sol, dirty)
	if err != nil {
		return nil, err
	}
	stats.Solve = time.Since(t0)

	stats.IterSlabels = sol.IterSlabels
	stats.IterL1 = sol.IterL1
	stats.IterL2 = sol.IterL2
	stats.Evaluations = sol.Evaluations
	stats.AllocBytes = sol.AllocBytes
	stats.FootprintBytes = sol.FootprintBytes

	delta := &DeltaStats{
		MethodsTotal:           len(edited.Methods),
		MethodsReused:          dinfo.MethodsReused,
		MethodsResolved:        dinfo.MethodsResolved,
		DirtyMethods:           dirtyNames,
		ConstraintsReevaluated: dinfo.ConstraintsReevaluated,
		Full:                   dinfo.Full,
	}
	// Probe the summary tier (memory or disk) for the re-solved
	// methods before storing this run's summaries: a hit means some
	// already-analyzed program — in this process or, via the
	// persistent store, a previous one — had a content-identical
	// method (cross-program sharing).
	if e.summaries != nil && mode == constraints.ContextSensitive && !edited.UsesClocks() {
		for _, mi := range dinfo.Closure {
			if e.summaryKnown(edited.MethodHash(mi)) {
				delta.SummaryHits++
			} else {
				delta.SummaryMisses++
			}
		}
	}
	stats.Delta = delta

	core := pipelineCore{program: edited, info: info, sys: sys, sol: sol}
	// The delta result is bitwise-identical to a from-scratch solve,
	// so it can serve future cache lookups for the edited program.
	e.cachePut(key, cached{core: core, stats: stats})
	e.storeSummaries(edited, sol, mode)

	t0 = time.Now()
	res := &Result{
		Program: core.program,
		Info:    core.info,
		Sys:     core.sys,
		Sol:     core.sol,
		Env:     core.sol.Env(),
		M:       core.sol.MainM(),
	}
	stats.Report = time.Since(t0)
	stats.Total = time.Since(start)
	res.Stats = stats
	return res, nil
}

// AnalyzeDeltaSafe is AnalyzeDeltaCtx behind a recover barrier,
// converting pipeline panics into *AnalysisError — the delta
// counterpart of AnalyzeSafe.
func (e *Engine) AnalyzeDeltaSafe(ctx context.Context, base *Result, edited *syntax.Program) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, &AnalysisError{Name: "<delta>", Value: r}
		}
	}()
	return e.AnalyzeDeltaCtx(ctx, base, edited)
}
