package engine

import (
	"context"
	"errors"
	"testing"

	"fx10/internal/constraints"
	"fx10/internal/fixtures"
	"fx10/internal/workloads"
)

// AnalyzeCtx with a live context must match Analyze exactly and
// populate the cache as usual.
func TestAnalyzeCtxMatchesAnalyze(t *testing.T) {
	eng := MustNew(Config{})
	p := fixtures.Example21()
	want, err := eng.Analyze(Job{Name: "ex21", Program: p})
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.AnalyzeCtx(context.Background(), Job{Name: "ex21", Program: p})
	if err != nil {
		t.Fatal(err)
	}
	if !got.M.Equal(want.M) {
		t.Fatal("AnalyzeCtx diverges from Analyze")
	}
	if !got.Stats.CacheHit {
		t.Fatal("second identical request missed the cache")
	}
}

// A cancelled context aborts the solve, returns the context error,
// and leaves the cache unpoisoned: the same program analyzed again
// with a live context must still miss (nothing partial was stored)
// and then succeed with the correct result.
func TestAnalyzeCtxCancelDoesNotPoisonCache(t *testing.T) {
	eng := MustNew(Config{})
	mg, err := workloads.Get("mg")
	if err != nil {
		t.Fatal(err)
	}
	p := mg.Program()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.AnalyzeCtx(ctx, Job{Name: "mg", Program: p}); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if hits := eng.CacheStats().Hits; hits != 0 {
		t.Fatalf("cache hits after cancelled miss: %d", hits)
	}

	res, err := eng.AnalyzeCtx(context.Background(), Job{Name: "mg", Program: p})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.CacheHit {
		t.Fatal("cancelled request left a cache entry behind")
	}
	direct := constraints.Generate(res.Info, constraints.ContextSensitive).Solve(constraints.Options{})
	if !res.M.Equal(direct.MainM()) {
		t.Fatal("post-cancellation result differs from a direct solve")
	}
}

// AnalyzeDeltaCtx honours cancellation without touching the base
// result or the cache.
func TestAnalyzeDeltaCtxCancel(t *testing.T) {
	eng := MustNew(Config{})
	base, err := eng.Analyze(Job{Name: "ex22", Program: fixtures.Example22()})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.AnalyzeDeltaCtx(ctx, base, fixtures.Example21()); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	// The base must still serve a correct delta afterwards.
	res, err := eng.AnalyzeDeltaCtx(context.Background(), base, fixtures.Example21())
	if err != nil {
		t.Fatal(err)
	}
	scratch, err := eng.Analyze(Job{Program: fixtures.Example21()})
	if err != nil {
		t.Fatal(err)
	}
	if !res.M.Equal(scratch.M) {
		t.Fatal("delta after cancellation diverges from scratch")
	}
}

// AnalyzeSafe converts pipeline panics into *AnalysisError and passes
// parse errors through untouched.
func TestAnalyzeSafeClassifiesErrors(t *testing.T) {
	eng := MustNew(Config{})
	if _, err := eng.AnalyzeSafe(context.Background(), Job{Name: "bad", Source: "void main( {"}); err == nil {
		t.Fatal("expected parse error")
	} else {
		var ae *AnalysisError
		if errors.As(err, &ae) {
			t.Fatalf("parse failure misclassified as analysis error: %v", err)
		}
	}
}
