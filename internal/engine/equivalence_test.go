package engine

import (
	"fmt"
	"testing"

	"fx10/internal/constraints"
	"fx10/internal/labels"
	"fx10/internal/progen"
	"fx10/internal/syntax"
)

// TestStrategyEquivalenceProgenCorpus is the executable form of the
// paper's Theorems 5–6: the constraint system has a unique least
// solution, so every solving strategy — phased (the Section 5.3
// three-phase optimization), monolithic (the unoptimized joint
// fixpoint), worklist (change-driven re-evaluation) and topo
// (SCC-condensed topological propagation) — must assign bit-identical
// values to every set and pair variable. It sweeps a seeded progen
// corpus of 50 programs (25 full-calculus, 25 loop-free) in both
// analysis modes.
func TestStrategyEquivalenceProgenCorpus(t *testing.T) {
	var programs []*syntax.Program
	for seed := int64(0); seed < 25; seed++ {
		programs = append(programs, progen.Generate(seed, progen.Default()))
	}
	for seed := int64(100); seed < 125; seed++ {
		programs = append(programs, progen.Generate(seed, progen.Finite()))
	}

	// The five built-in strategies, resolved through the registry so
	// the test exercises the same lookup path engine callers use.
	// (Strategies() is not swept wholesale: other tests register
	// throwaway strategies in the shared registry.)
	names := []string{"phased", "monolithic", "worklist", "topo", "ptopo", "shard"}
	strategies := make([]Strategy, len(names))
	for i, name := range names {
		s, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		strategies[i] = s
	}

	modes := []constraints.Mode{constraints.ContextSensitive, constraints.ContextInsensitive}
	checked := 0
	for pi, p := range programs {
		in := labels.Compute(p)
		for _, mode := range modes {
			sys := constraints.Generate(in, mode)
			base := strategies[0].Solve(sys)
			for _, strat := range strategies[1:] {
				sol := strat.Solve(sys)
				if !base.ValuationEqual(sol) {
					t.Fatalf("program %d (%v): %s valuation differs from %s\nprogram:\n%s",
						pi, mode, strat.Name(), names[0], syntax.Print(p))
				}
				checked++
			}
			// Sanity: the comparison is not vacuous — the solved main
			// M must exist (possibly empty for async-free programs).
			if sys.MethodM == nil {
				t.Fatalf("program %d (%v): no method variables", pi, mode)
			}
		}
	}
	if want := len(programs) * len(modes) * (len(strategies) - 1); checked != want {
		t.Fatalf("checked %d strategy comparisons, want %d", checked, want)
	}
}

// TestStrategyEquivalenceViaEngines runs the same check through full
// engines (cache off), covering the registry→engine→pipeline path and
// the derived views rather than raw valuations.
func TestStrategyEquivalenceViaEngines(t *testing.T) {
	var jobs []Job
	for seed := int64(200); seed < 210; seed++ {
		jobs = append(jobs, Job{
			Name:    fmt.Sprintf("progen-%d", seed),
			Program: progen.Generate(seed, progen.Default()),
		})
	}
	base := MustNew(Config{Strategy: "phased", CacheSize: -1}).AnalyzeCorpus(jobs)
	for _, name := range []string{"monolithic", "worklist", "topo", "ptopo", "shard"} {
		got := MustNew(Config{Strategy: name, CacheSize: -1}).AnalyzeCorpus(jobs)
		for i := range jobs {
			if base[i].Err != nil || got[i].Err != nil {
				t.Fatalf("%s/%s: %v / %v", jobs[i].Name, name, base[i].Err, got[i].Err)
			}
			if !base[i].Result.M.Equal(got[i].Result.M) {
				t.Errorf("%s: %s M differs from phased", jobs[i].Name, name)
			}
		}
	}
}
