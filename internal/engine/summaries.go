package engine

import (
	"container/list"
	"sync"

	"fx10/internal/constraints"
	"fx10/internal/intset"
	"fx10/internal/syntax"
	"fx10/internal/types"
)

// The method-summary cache is the second tier of the engine's cache:
// where the program cache (tier 1) reuses whole solved pipelines
// between content-identical programs, this tier reuses one method's
// inferred summary E(f) = (M, O) between content-identical methods of
// different programs in a corpus.
//
// Entries are keyed by the method's content hash and store the
// summary in the canonical label space of the method's call-graph
// subtree (position k of syntax.Program.MethodSubtreeLabels is
// canonical label k). That space is shared by every method with the
// same hash, so a hit is translated to the requesting program's
// global labels by a single table lookup per element. Storage is
// gated to context-sensitive analyses: only there is a method's
// summary a function of its subtree alone (context-insensitively the
// callers' R sets flow in, which the hash deliberately ignores).

// summaryEntry is one cached summary in canonical subtree-local label
// space (universe size = CanonicalMethod.NumLabels).
type summaryEntry struct {
	sum types.Summary
}

// summaryCache is a mutex-guarded LRU keyed by method content hash.
type summaryCache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recently used; values are ProgramHash
	entries map[syntax.ProgramHash]*summaryCacheEntry
}

type summaryCacheEntry struct {
	val  summaryEntry
	elem *list.Element
}

func newSummaryCache(capacity int) *summaryCache {
	return &summaryCache{
		cap:     capacity,
		order:   list.New(),
		entries: make(map[syntax.ProgramHash]*summaryCacheEntry),
	}
}

func (c *summaryCache) get(k syntax.ProgramHash) (summaryEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[k]
	if !ok {
		return summaryEntry{}, false
	}
	c.order.MoveToFront(e.elem)
	return e.val, true
}

func (c *summaryCache) contains(k syntax.ProgramHash) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[k]
	return ok
}

func (c *summaryCache) put(k syntax.ProgramHash, v summaryEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[k]; ok {
		// Identical content implies an identical summary (up to the
		// canonical renaming both sides use); keep the first.
		c.order.MoveToFront(e.elem)
		return
	}
	c.entries[k] = &summaryCacheEntry{val: v, elem: c.order.PushFront(k)}
	for len(c.entries) > c.cap {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(syntax.ProgramHash))
	}
}

func (c *summaryCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// storeSummaries populates the summary tier from a solved
// context-sensitive pipeline: every method's (mᵢ, oᵢ) is translated
// into its subtree's canonical label space and stored under its
// content hash. Methods whose summary mentions a label outside their
// subtree (impossible context-sensitively; defensive) are skipped.
func (e *Engine) storeSummaries(p *syntax.Program, sol *constraints.Solution, mode constraints.Mode) {
	if e.summaries == nil || mode != constraints.ContextSensitive {
		return
	}
	// Clocked programs are excluded from the summary tier entirely —
	// memory and disk alike: the phase analysis prunes a method's mᵢ
	// using phase codes that depend on the whole program (the entry
	// phase flows in from call sites), which the per-method content
	// hash deliberately ignores. Two content-identical methods in
	// different clocked programs can have different pruned summaries,
	// so a clocked summary on disk would poison every engine sharing
	// the store.
	if p.UsesClocks() {
		return
	}
	wrote := false
	for mi := range p.Methods {
		hash := p.MethodHash(mi)
		if e.summaries.contains(hash) {
			continue
		}
		subtree := p.MethodSubtreeLabels(mi)
		toCanon := make(map[int]int, len(subtree))
		for k, l := range subtree {
			toCanon[int(l)] = k
		}
		sum := sol.MethodSummary(mi)
		canon, ok := summaryToCanonical(sum, toCanon, len(subtree))
		if !ok {
			continue
		}
		if e.store != nil && e.store.Has(hash) {
			// Warm start: some earlier process (or an earlier run of
			// this one) already persisted this method. Promote it into
			// the memory tier — the freshly solved canonical summary is
			// bit-identical to the stored one by the content-hash
			// invariant, so no disk read is needed — and count the
			// store hit (Has counted it).
			e.summaries.put(hash, summaryEntry{sum: canon})
			continue
		}
		e.summaries.put(hash, summaryEntry{sum: canon})
		if e.store != nil {
			e.store.Put(hash, canon)
			wrote = true
		}
	}
	if wrote {
		// Best-effort durability per batch; crash-safety (no corrupt
		// records served) never depends on this sync landing.
		_ = e.store.Sync()
	}
}

// summaryKnown reports whether the summary tier — memory or disk —
// holds the given method hash, without counting engine-level hit/miss
// traffic (the disk probe still counts in the store's own stats).
func (e *Engine) summaryKnown(hash syntax.ProgramHash) bool {
	if e.summaries == nil {
		return false
	}
	if e.summaries.contains(hash) {
		return true
	}
	return e.store != nil && e.store.Has(hash)
}

// summaryToCanonical rewrites a summary from global labels into the
// canonical subtree space.
func summaryToCanonical(sum types.Summary, toCanon map[int]int, k int) (types.Summary, bool) {
	out := types.Summary{O: intset.New(k), M: intset.NewPairs(k)}
	ok := true
	sum.O.Each(func(l int) {
		c, in := toCanon[l]
		if !in {
			ok = false
			return
		}
		out.O.Add(c)
	})
	sum.M.Each(func(i, j int) {
		ci, ini := toCanon[i]
		cj, inj := toCanon[j]
		if !ini || !inj {
			ok = false
			return
		}
		out.M.Add(ci, cj)
	})
	return out, ok
}

// CachedSummary looks up method mi of p in the summary tier: a hit
// means some program in the corpus — possibly a different one, possibly
// analyzed by a previous process when a persistent store is configured
// — has already been analyzed context-sensitively with a
// content-identical method, and returns that method's summary
// translated to p's global labels. A disk-tier hit is promoted into
// the memory tier. The caller owns the returned summary.
func (e *Engine) CachedSummary(p *syntax.Program, mi int) (types.Summary, bool) {
	if e.summaries == nil {
		return types.Summary{}, false
	}
	if p.UsesClocks() {
		// Not a miss: clocked programs are excluded from both tiers by
		// design (see storeSummaries), so they must not depress the
		// hit rate — and they must never reach the disk tier.
		e.sumSkipped.Add(1)
		return types.Summary{}, false
	}
	hash := p.MethodHash(mi)
	entry, ok := e.summaries.get(hash)
	if !ok && e.store != nil {
		if sum, found := e.store.Get(hash); found {
			entry = summaryEntry{sum: sum}
			e.summaries.put(hash, entry)
			ok = true
		}
	}
	if !ok {
		e.sumMisses.Add(1)
		return types.Summary{}, false
	}
	e.sumHits.Add(1)
	subtree := p.MethodSubtreeLabels(mi)
	n := p.NumLabels()
	out := types.Summary{O: intset.New(n), M: intset.NewPairs(n)}
	entry.sum.O.Each(func(c int) { out.O.Add(int(subtree[c])) })
	entry.sum.M.Each(func(ci, cj int) { out.M.Add(int(subtree[ci]), int(subtree[cj])) })
	return out, true
}
