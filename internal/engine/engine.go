// Package engine is the unified front door of the MHP analysis: a
// staged pipeline
//
//	parse → labels → constraint generation → solve → report
//
// behind a single reusable Engine that adds what the bare
// labels/constraints packages do not have —
//
//   - named, pluggable solver strategies (Strategy + registry)
//     replacing the mutually-exclusive bools of constraints.Options;
//   - corpus-level analysis on a bounded worker pool with per-program
//     panic isolation, so one bad program cannot kill a sweep;
//   - a two-tier cache: a program tier (content-hash-keyed LRU over
//     whole solved pipelines, serving repeated analyses of identical
//     programs) and a method-summary tier (keyed by per-method
//     content hash, sharing inferred summaries between
//     content-identical methods of different programs in a corpus —
//     see summaries.go);
//   - method-granular incremental analysis: AnalyzeDelta diffs an
//     edited program against a base result by method content hash
//     and re-solves only the dirty methods' call-graph closure
//     (constraints.SolveDelta), reporting what it reused in
//     DeltaStats;
//   - per-stage metrics (Stats) for every result.
//
// internal/mhp.Analyze, internal/experiments and cmd/mhpbench all run
// through this package; it is the seam later scaling work (sharding,
// batching, multi-backend) builds on.
package engine

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"fx10/internal/constraints"
	"fx10/internal/intset"
	"fx10/internal/labels"
	"fx10/internal/parser"
	"fx10/internal/sumstore"
	"fx10/internal/syntax"
	"fx10/internal/types"
)

// Config configures an Engine. The zero value is a usable default:
// phased strategy, GOMAXPROCS workers, a 128-entry cache.
type Config struct {
	// Strategy names a registered solver strategy; empty selects
	// DefaultStrategy.
	Strategy string
	// Workers bounds corpus-level concurrency; ≤ 0 selects
	// GOMAXPROCS.
	Workers int
	// SolverWorkers bounds the solver-internal pool of a
	// WorkerTunable strategy (ptopo); ≤ 0 keeps the strategy's own
	// default (GOMAXPROCS), and it is ignored by the sequential
	// strategies. Worker count never affects results.
	SolverWorkers int
	// CacheSize bounds the program-tier result cache in entries. 0
	// selects the default (128); negative disables caching entirely
	// — both tiers — (every request re-solves — what
	// timing-sensitive callers like the figure tables and benchmarks
	// want).
	CacheSize int
	// SummaryCacheSize bounds the method-summary tier in entries. 0
	// selects the default (512); negative disables just this tier.
	// The tier is also disabled whenever CacheSize is negative.
	SummaryCacheSize int
	// SummaryStorePath names a directory for the persistent
	// content-addressed summary store (internal/sumstore) — the disk
	// tier below the method-summary cache, which then acts as its
	// write-through memory tier. Summaries survive restarts and can be
	// shared between engines: a content-hash hit in any engine's store
	// is the same summary everywhere. Empty disables the disk tier;
	// it is also disabled when the summary tier itself is. Engines
	// with a store should be Closed to flush it.
	SummaryStorePath string
	// SummaryStoreShared opens the summary store in multi-process
	// mode (sumstore.OpenShared): appends serialize under an advisory
	// file lock and read misses re-scan the log tail, so a fleet of
	// daemons can share one store directory and any replica can seed
	// any delta. Ignored when SummaryStorePath is empty.
	SummaryStoreShared bool
}

const (
	defaultCacheSize        = 128
	defaultSummaryCacheSize = 512
)

// Engine runs analyses. It is safe for concurrent use; one Engine is
// meant to be shared and reused so its caches pay off.
type Engine struct {
	strategy  Strategy
	workers   int
	cache     *resultCache    // program tier; nil when caching is disabled
	summaries *summaryCache   // method-summary tier; nil when disabled
	store     *sumstore.Store // disk tier below summaries; nil when disabled

	hits, misses       atomic.Uint64
	sumHits, sumMisses atomic.Uint64
	// sumSkipped counts summary-tier probes for clocked programs,
	// which both tiers exclude by design (the phase analysis makes a
	// method's summary depend on whole-program context the content
	// hash ignores). Counting them separately keeps the hit rate
	// honest over mixed clocked/unclocked corpora.
	sumSkipped atomic.Uint64
}

// New builds an Engine, resolving the configured strategy name.
func New(cfg Config) (*Engine, error) {
	strat, err := Lookup(cfg.Strategy)
	if err != nil {
		return nil, err
	}
	if cfg.SolverWorkers > 0 {
		if wt, ok := strat.(WorkerTunable); ok {
			strat = wt.WithWorkers(cfg.SolverWorkers)
		}
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	e := &Engine{strategy: strat, workers: workers}
	switch {
	case cfg.CacheSize == 0:
		e.cache = newResultCache(defaultCacheSize)
	case cfg.CacheSize > 0:
		e.cache = newResultCache(cfg.CacheSize)
	}
	if e.cache != nil && cfg.SummaryCacheSize >= 0 {
		size := cfg.SummaryCacheSize
		if size == 0 {
			size = defaultSummaryCacheSize
		}
		e.summaries = newSummaryCache(size)
		if cfg.SummaryStorePath != "" {
			open := sumstore.Open
			if cfg.SummaryStoreShared {
				open = sumstore.OpenShared
			}
			store, err := open(cfg.SummaryStorePath)
			if err != nil {
				return nil, err
			}
			e.store = store
		}
	}
	return e, nil
}

// Close flushes and closes the persistent summary store, if any. An
// engine without a store needs no Close; calling it anyway is a no-op.
func (e *Engine) Close() error {
	if e.store == nil {
		return nil
	}
	return e.store.Close()
}

// MustNew is New, panicking on error — for wiring with known-good
// configs.
func MustNew(cfg Config) *Engine {
	e, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return e
}

// Strategy returns the engine's resolved solver strategy.
func (e *Engine) Strategy() Strategy { return e.strategy }

// Workers returns the engine's corpus concurrency bound.
func (e *Engine) Workers() int { return e.workers }

// CacheStats returns the engine's cumulative cache traffic across
// both tiers (zero when caching is disabled).
func (e *Engine) CacheStats() CacheStats {
	return CacheStats{
		Hits:           e.hits.Load(),
		Misses:         e.misses.Load(),
		SummaryHits:    e.sumHits.Load(),
		SummaryMisses:  e.sumMisses.Load(),
		SummarySkipped: e.sumSkipped.Load(),
	}
}

// SummaryStoreStats returns the persistent summary store's counters;
// ok is false when the engine has no disk tier.
func (e *Engine) SummaryStoreStats() (sumstore.Stats, bool) {
	if e.store == nil {
		return sumstore.Stats{}, false
	}
	return e.store.Stats(), true
}

// Job is one analysis request.
type Job struct {
	// Name tags the job in errors and reports (optional).
	Name string
	// Program is the program to analyze. If nil, Source is parsed.
	Program *syntax.Program
	// Source is concrete FX10 syntax, used only when Program is nil.
	Source string
	// Mode selects context-sensitive (zero value) or
	// context-insensitive analysis.
	Mode constraints.Mode
}

// pipelineCore is the output of the expensive stages (labels,
// generation, solving). It is immutable once built and is what the
// cache stores; Program is the program the maps of Sys are keyed by,
// which on a cache hit may be a different (content-identical) value
// than the one the caller supplied.
type pipelineCore struct {
	program *syntax.Program
	info    *labels.Info
	sys     *constraints.System
	sol     *constraints.Solution
}

// Result is one completed analysis.
type Result struct {
	// Program, Info, Sys and Sol are the pipeline's intermediate
	// products. On a cache hit they are shared with every other
	// Result served from the same entry — treat them as read-only.
	Program *syntax.Program
	Info    *labels.Info
	Sys     *constraints.System
	Sol     *constraints.Solution
	// Env is the inferred type environment E with ⊢ p : E. It is
	// freshly extracted per request (the caller owns it).
	Env types.Env
	// M is E(main).M: by Theorem 3, MHP(p) ⊆ M. Freshly extracted
	// per request (the caller owns it).
	M *intset.PairSet
	// Stats is where the time went.
	Stats Stats
}

// Analyze runs the pipeline for one job: cache lookup, then the
// missing stages, then report extraction.
func (e *Engine) Analyze(job Job) (*Result, error) {
	return e.AnalyzeCtx(context.Background(), job)
}

// AnalyzeCtx is Analyze with cooperative cancellation: ctx is checked
// between pipeline stages and, with the built-in strategies, every
// constraints.CancelStride evaluations inside the solver loops. On
// cancellation it returns ctx's error, caches nothing, and leaves
// both cache tiers exactly as they were — an abandoned request can
// never poison a future one.
func (e *Engine) AnalyzeCtx(ctx context.Context, job Job) (*Result, error) {
	start := time.Now()

	p := job.Program
	var parseDur time.Duration
	if p == nil {
		t0 := time.Now()
		parsed, err := parser.Parse(job.Source)
		if err != nil {
			return nil, fmt.Errorf("engine: parse %s: %w", jobName(job), err)
		}
		p = parsed
		parseDur = time.Since(t0)
	}

	var (
		core  pipelineCore
		stats Stats
		key   cacheKey
	)
	if e.cache != nil {
		key = keyFor(p, job.Mode, e.strategy.Name())
	}
	if c, ok := e.cacheGet(key); ok {
		core, stats = c.core, c.stats
		stats.CacheHit = true
	} else {
		var err error
		core, stats, err = e.runPipeline(ctx, p, job.Mode)
		if err != nil {
			return nil, err
		}
		e.cachePut(key, cached{core: core, stats: stats})
	}

	t0 := time.Now()
	res := &Result{
		Program: core.program,
		Info:    core.info,
		Sys:     core.sys,
		Sol:     core.sol,
		Env:     core.sol.Env(),
		M:       core.sol.MainM(),
	}
	stats.Parse = parseDur
	stats.Report = time.Since(t0)
	stats.Total = time.Since(start)
	res.Stats = stats
	return res, nil
}

// runPipeline executes the expensive stages on a cache miss.
func (e *Engine) runPipeline(ctx context.Context, p *syntax.Program, mode constraints.Mode) (pipelineCore, Stats, error) {
	stats := Stats{Strategy: e.strategy.Name()}

	t0 := time.Now()
	info := labels.Compute(p)
	stats.Labels = time.Since(t0)

	if err := ctx.Err(); err != nil {
		return pipelineCore{}, Stats{}, err
	}

	t0 = time.Now()
	sys := constraints.Generate(info, mode)
	stats.Generate = time.Since(t0)

	t0 = time.Now()
	sol, err := solveWith(ctx, e.strategy, sys)
	if err != nil {
		return pipelineCore{}, Stats{}, err
	}
	stats.Solve = time.Since(t0)

	stats.IterSlabels = sol.IterSlabels
	stats.IterL1 = sol.IterL1
	stats.IterL2 = sol.IterL2
	stats.Evaluations = sol.Evaluations
	stats.AllocBytes = sol.AllocBytes
	stats.FootprintBytes = sol.FootprintBytes
	stats.Shard = sol.Shard

	e.storeSummaries(p, sol, mode)
	return pipelineCore{program: p, info: info, sys: sys, sol: sol}, stats, nil
}

func (e *Engine) cacheGet(key cacheKey) (cached, bool) {
	if e.cache == nil {
		return cached{}, false
	}
	c, ok := e.cache.get(key)
	if ok {
		e.hits.Add(1)
	} else {
		e.misses.Add(1)
	}
	return c, ok
}

func (e *Engine) cachePut(key cacheKey, c cached) {
	if e.cache != nil {
		e.cache.put(key, c)
	}
}

func jobName(job Job) string {
	if job.Name != "" {
		return job.Name
	}
	return "<unnamed program>"
}

// CorpusResult is one slot of an AnalyzeCorpus sweep: the result, or
// the error (including recovered panics) that prevented it.
type CorpusResult struct {
	Job    Job
	Result *Result
	Err    error
}

// AnalyzeCorpus analyzes every job on a bounded worker pool
// (Config.Workers wide) and returns the outcomes in input order. A
// job that panics — a malformed program tripping an invariant deep in
// the pipeline — is reported as that slot's Err; the sweep continues.
func (e *Engine) AnalyzeCorpus(jobs []Job) []CorpusResult {
	results := make([]CorpusResult, len(jobs))
	workers := e.workers
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers <= 1 {
		for i, job := range jobs {
			results[i] = e.analyzeIsolated(job)
		}
		return results
	}

	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				results[i] = e.analyzeIsolated(jobs[i])
			}
		}()
	}
	for i := range jobs {
		next <- i
	}
	close(next)
	wg.Wait()
	return results
}

// analyzeIsolated is Analyze behind a recover barrier.
func (e *Engine) analyzeIsolated(job Job) (cr CorpusResult) {
	cr.Job = job
	cr.Result, cr.Err = e.AnalyzeSafe(context.Background(), job)
	return cr
}

// AnalysisError reports a failure of the analysis itself — a panic
// tripped deep in the pipeline by a malformed program, as opposed to
// a parse error (which unwraps to *parser.Error) or a cancellation
// (which unwraps to the context error). Callers use it to map
// failures onto distinct exit codes and HTTP statuses.
type AnalysisError struct {
	// Name is the job name the failure is attributed to.
	Name string
	// Value is the recovered panic value, or the wrapped error.
	Value any
}

func (e *AnalysisError) Error() string {
	return fmt.Sprintf("engine: panic analyzing %s: %v", e.Name, e.Value)
}

// Unwrap exposes a wrapped error value to errors.Is/As.
func (e *AnalysisError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// AnalyzeSafe is AnalyzeCtx behind a recover barrier: a panic in the
// pipeline (a malformed program tripping an invariant) comes back as
// an *AnalysisError instead of unwinding the caller — what a
// long-lived server or a corpus sweep needs. Parse and context errors
// pass through unchanged.
func (e *Engine) AnalyzeSafe(ctx context.Context, job Job) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, &AnalysisError{Name: jobName(job), Value: r}
		}
	}()
	return e.AnalyzeCtx(ctx, job)
}
