package sumstore

import (
	"math/rand"
	"sync"
	"testing"

	"fx10/internal/types"
)

// Two OpenShared stores in one process hold distinct file
// descriptions, so flock serializes them exactly as it would two
// daemons — these tests exercise the real multi-writer protocol.

// TestSharedStoresSeeEachOther checks the fleet-sharing contract: a
// record one replica appends becomes visible to an already-open
// replica through the miss-path tail refresh, without reopening.
func TestSharedStoresSeeEachOther(t *testing.T) {
	if !sharedLocksSupported {
		t.Skip("no flock on this platform")
	}
	dir := t.TempDir()
	a, err := OpenShared(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := OpenShared(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	rng := rand.New(rand.NewSource(11))
	want := map[int]types.Summary{}
	for i := 0; i < 50; i++ {
		sum := randSummary(rng)
		want[i] = sum
		if i%2 == 0 {
			a.Put(keyOf(i), sum)
		} else {
			b.Put(keyOf(i), sum)
		}
	}
	for i, sum := range want {
		for name, st := range map[string]*Store{"a": a, "b": b} {
			got, ok := st.Get(keyOf(i))
			if !ok {
				t.Fatalf("store %s: key %d missing", name, i)
			}
			if !equalSummaries(got, sum) {
				t.Fatalf("store %s: key %d decoded differently", name, i)
			}
		}
	}
	if fr := b.Stats().ForeignRecords + a.Stats().ForeignRecords; fr == 0 {
		t.Fatalf("no foreign records reconciled across the two stores")
	}
	if !a.Stats().Shared {
		t.Fatalf("stats do not report shared mode")
	}
}

// TestSharedStoresConcurrentWriters hammers one directory from several
// stores and goroutines at once, then verifies every record survived
// intact — both via the live stores and via a fresh recovery-path
// open. This is the scenario the process-local append offset used to
// get wrong (two writers clobbering the same EOF).
func TestSharedStoresConcurrentWriters(t *testing.T) {
	if !sharedLocksSupported {
		t.Skip("no flock on this platform")
	}
	dir := t.TempDir()
	const stores = 3
	const perStore = 40

	sts := make([]*Store, stores)
	for i := range sts {
		st, err := OpenShared(dir)
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		sts[i] = st
	}

	// Deterministic per-writer summaries; some keys deliberately
	// overlap across writers (content addressing: first write wins,
	// values for one key are identical).
	sums := map[int]types.Summary{}
	var sumsMu sync.Mutex
	var wg sync.WaitGroup
	for wi, st := range sts {
		wg.Add(1)
		go func(wi int, st *Store) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(100)) // same seed: overlapping keys agree
			for i := 0; i < perStore; i++ {
				key := (wi*perStore + i) % (stores*perStore - 20)
				sum := randSummary(rng)
				sumsMu.Lock()
				if prev, ok := sums[key]; ok {
					sum = prev // keep key→value functional
				} else {
					sums[key] = sum
				}
				sumsMu.Unlock()
				st.Put(keyOf(key), sum)
			}
		}(wi, st)
	}
	wg.Wait()

	for key, sum := range sums {
		for si, st := range sts {
			got, ok := st.Get(keyOf(key))
			if !ok {
				t.Fatalf("store %d: key %d missing after concurrent writes", si, key)
			}
			if !equalSummaries(got, sum) {
				t.Fatalf("store %d: key %d corrupted", si, key)
			}
		}
	}

	// A fresh open must replay the whole log without truncating
	// anything: concurrent appends may not interleave into torn or
	// overlapping records.
	fresh, err := OpenShared(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	st := fresh.Stats()
	if st.TruncatedBytes != 0 || st.Invalidations != 0 {
		t.Fatalf("recovery found damage after concurrent writes: %+v", st)
	}
	if st.Records != len(sums) {
		t.Fatalf("recovered %d records, want %d", st.Records, len(sums))
	}
	for key, sum := range sums {
		got, ok := fresh.Get(keyOf(key))
		if !ok || !equalSummaries(got, sum) {
			t.Fatalf("fresh open: key %d missing or corrupt", key)
		}
	}
}

// TestSharedHasRefreshesTail pins that the presence probe (what the
// engine's warm-start path uses) also sees foreign appends.
func TestSharedHasRefreshesTail(t *testing.T) {
	if !sharedLocksSupported {
		t.Skip("no flock on this platform")
	}
	dir := t.TempDir()
	a, err := OpenShared(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := OpenShared(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	rng := rand.New(rand.NewSource(12))
	a.Put(keyOf(1), randSummary(rng))
	if !b.Has(keyOf(1)) {
		t.Fatalf("Has missed a foreign record")
	}
	if b.Has(keyOf(2)) {
		t.Fatalf("Has found a record nobody wrote")
	}
	if b.Stats().TailRefreshes == 0 {
		t.Fatalf("miss path did not refresh the tail")
	}
}

// TestSoloStoreUnchanged guards the default path: a store opened with
// Open never takes locks or rescans, and its stats say so.
func TestSoloStoreUnchanged(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 10; i++ {
		st.Put(keyOf(i), randSummary(rng))
	}
	s := st.Stats()
	if s.Shared || s.TailRefreshes != 0 || s.ForeignRecords != 0 {
		t.Fatalf("solo store reports shared activity: %+v", s)
	}
	if s.Puts != 10 {
		t.Fatalf("puts = %d, want 10", s.Puts)
	}
}
