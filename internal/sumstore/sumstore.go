// Package sumstore is the persistent, content-addressed method-summary
// store: the disk tier below the engine's in-memory summary cache
// (internal/engine, summaries.go). It maps a method's content hash —
// which canonicalizes the method's whole call-graph subtree, so equal
// hashes mean equal summaries up to label renumbering — to the
// versioned binary encoding of that method's inferred summary
// E(f) = (M, O) in canonical subtree-local label space. Because the
// key determines the value, the store is append-only and records never
// change: restarts and fleet replicas can share one store soundly.
//
// On-disk layout (one directory):
//
//	segment.log   append-only record log: a 16-byte self-describing
//	              header (magic + format version), then records
//	              [len u32][key 32B][payload][crc32c u32] where the
//	              checksum covers key+payload.
//	index         atomically swapped snapshot of the in-memory index
//	              (key → record location) plus the log prefix length it
//	              covers, so open cost is the snapshot plus a scan of
//	              the un-snapshotted tail, not the whole log.
//
// Crash-safety argument: records are appended with a single write and
// the index snapshot is written to a temp file, fsync'd, and renamed
// over the old one (rename is atomic on POSIX). A crash therefore
// leaves (a) a fully written log, (b) a log with a torn final record,
// or (c) a stale-but-valid index alongside either. Open verifies every
// record checksum from the snapshot's covered offset to EOF and
// truncates the log at the first invalid record, so a torn tail — or
// any corrupt suffix — is discarded and the store recovers to the
// longest consistent prefix. Get re-verifies the record checksum
// before decoding, so a summary that went bad on disk after open is
// detected and served as a miss rather than as corrupt data. A header
// with an unknown magic or version resets the log: format bumps
// invalidate cleanly instead of misdecoding.
//
// The store is a cache, not a system of record: I/O errors after a
// successful Open are counted in Stats and degrade the affected
// operation to a miss or a dropped write instead of failing the
// analysis that triggered it.
package sumstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"

	"fx10/internal/types"
)

// Key is a content hash (the engine's syntax.ProgramHash).
type Key = [32]byte

const (
	logName   = "segment.log"
	indexName = "index"

	logMagic   = "FX10SUMS"
	indexMagic = "FX10SUMI"

	// FormatVersion is bumped whenever the record or payload encoding
	// changes; a store written by any other version is discarded on
	// open (the summaries are recomputable).
	FormatVersion = 1

	headerSize = 16 // magic 8 + version u32 + reserved u32

	// recordOverhead is the non-payload bytes per record.
	recordOverhead = 4 + 32 + 4

	// maxPayload bounds one record; anything larger is rejected at Put
	// and treated as corruption when found in a length field on open.
	maxPayload = 64 << 20

	// snapshotEvery is how many appended records trigger a background-
	// free index rewrite on the caller's goroutine; Close always
	// snapshots.
	snapshotEvery = 4096
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// recordLoc locates one record's payload in the log.
type recordLoc struct {
	off int64 // payload offset (record start + 36)
	n   int32 // payload length
}

// Stats is a snapshot of the store's counters. Hits and Misses count
// presence probes (Has and Get); the open/recovery fields describe
// what Open found.
type Stats struct {
	Records  int   `json:"records"`
	LogBytes int64 `json:"logBytes"`

	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Puts    uint64 `json:"puts"`
	DupPuts uint64 `json:"dupPuts"`

	BytesWritten uint64 `json:"bytesWritten"`
	BytesRead    uint64 `json:"bytesRead"`

	// IndexLoaded reports whether Open seeded the index from a valid
	// snapshot; RecoveredRecords counts records replayed from the log
	// tail past the snapshot; TruncatedBytes is the torn or corrupt
	// suffix discarded at open; Invalidations counts whole-log resets
	// (unknown magic or format version).
	IndexLoaded      bool   `json:"indexLoaded"`
	RecoveredRecords int    `json:"recoveredRecords"`
	TruncatedBytes   int64  `json:"truncatedBytes"`
	Invalidations    uint64 `json:"invalidations"`

	WriteErrors uint64 `json:"writeErrors"`
	ReadErrors  uint64 `json:"readErrors"`

	// Shared reports OpenShared mode; ForeignRecords counts records
	// appended by other processes that this store picked up after
	// open, and TailRefreshes counts the shared-lock tail re-scans
	// that found them.
	Shared         bool   `json:"shared"`
	ForeignRecords int    `json:"foreignRecords"`
	TailRefreshes  uint64 `json:"tailRefreshes"`
}

// Store is a disk-backed content-addressed summary store. It is safe
// for concurrent use; opened with OpenShared it is additionally safe
// for concurrent use by multiple processes on one directory.
type Store struct {
	dir    string
	shared bool

	mu     sync.Mutex
	f      *os.File
	size   int64 // log offset this store has scanned up to (== EOF when solo)
	index  map[Key]recordLoc
	broken bool // a failed truncate-after-partial-write poisons appends

	unsnapshotted int // records appended since the last index snapshot

	hits, misses, puts, dupPuts uint64
	bytesWritten, bytesRead     uint64
	writeErrors, readErrors     uint64
	recoveredRecords            int
	foreignRecords              int
	tailRefreshes               uint64
	truncatedBytes              int64
	invalidations               uint64
	indexLoaded                 bool
}

// Open opens (creating if needed) the store rooted at dir, recovering
// the index from the snapshot plus a checksum-verified scan of the
// log tail. A torn or corrupt suffix is truncated; an unknown format
// version resets the store. The store assumes it is the directory's
// only live writer; for a fleet of daemons on one directory use
// OpenShared.
func Open(dir string) (*Store, error) {
	return open(dir, false)
}

// OpenShared opens the store for multi-process sharing: every append
// happens at the verified end of the log under an exclusive flock
// (first reconciling records other processes appended since this
// store last looked), and a read miss re-scans the tail under a
// shared flock before giving up. Content addressing makes this sound
// — identical keys imply identical values, so replicas can only ever
// duplicate work, never disagree — and the locking makes it safe: a
// torn record can only be the leftover of a crashed writer (live
// writers are serialized by the exclusive lock), so truncating it
// under that lock never discards live data. On platforms without
// flock, OpenShared degrades to Open semantics.
func OpenShared(dir string) (*Store, error) {
	return open(dir, true)
}

func open(dir string, shared bool) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sumstore: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(dir, logName), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("sumstore: %w", err)
	}
	s := &Store{dir: dir, f: f, shared: shared, index: make(map[Key]recordLoc)}
	if shared {
		// Recovery may truncate a torn tail, which is only safe with
		// the writers excluded.
		if err := lockExclusive(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("sumstore: lock: %w", err)
		}
		defer unlock(f)
	}
	if err := s.recover(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// recover validates the header, loads the index snapshot, scans the
// uncovered tail, and truncates at the first invalid record.
func (s *Store) recover() error {
	fi, err := s.f.Stat()
	if err != nil {
		return fmt.Errorf("sumstore: %w", err)
	}
	logSize := fi.Size()

	reset := func() error {
		if logSize > 0 {
			s.invalidations++
		}
		if err := s.f.Truncate(0); err != nil {
			return fmt.Errorf("sumstore: reset: %w", err)
		}
		var hdr [headerSize]byte
		copy(hdr[:], logMagic)
		binary.LittleEndian.PutUint32(hdr[8:], FormatVersion)
		if _, err := s.f.WriteAt(hdr[:], 0); err != nil {
			return fmt.Errorf("sumstore: write header: %w", err)
		}
		s.size = headerSize
		return nil
	}

	if logSize < headerSize {
		return reset()
	}
	var hdr [headerSize]byte
	if _, err := s.f.ReadAt(hdr[:], 0); err != nil {
		return fmt.Errorf("sumstore: read header: %w", err)
	}
	if string(hdr[:8]) != logMagic || binary.LittleEndian.Uint32(hdr[8:]) != FormatVersion {
		return reset()
	}

	scanFrom := int64(headerSize)
	if covered, idx, ok := s.loadSnapshot(logSize); ok {
		s.index = idx
		s.indexLoaded = true
		scanFrom = covered
	}

	// Replay the tail record by record; stop (and truncate) at the
	// first record that is short, oversized, or checksum-invalid.
	off := scanFrom
	var lenBuf [4]byte
	for off < logSize {
		if off+recordOverhead > logSize {
			break
		}
		if _, err := s.f.ReadAt(lenBuf[:], off); err != nil {
			return fmt.Errorf("sumstore: scan: %w", err)
		}
		n := int64(binary.LittleEndian.Uint32(lenBuf[:]))
		if n > maxPayload || off+recordOverhead+n > logSize {
			break
		}
		rec := make([]byte, 32+n+4)
		if _, err := s.f.ReadAt(rec, off+4); err != nil {
			return fmt.Errorf("sumstore: scan: %w", err)
		}
		sum := binary.LittleEndian.Uint32(rec[32+n:])
		if crc32.Checksum(rec[:32+n], crcTable) != sum {
			break
		}
		var k Key
		copy(k[:], rec[:32])
		s.index[k] = recordLoc{off: off + 36, n: int32(n)}
		s.recoveredRecords++
		off += recordOverhead + n
	}
	if off < logSize {
		s.truncatedBytes = logSize - off
		if err := s.f.Truncate(off); err != nil {
			return fmt.Errorf("sumstore: truncate torn tail: %w", err)
		}
	}
	s.size = off
	return nil
}

// loadSnapshot reads the index file; ok is false (and the snapshot
// ignored) on any structural problem, checksum mismatch, or a covered
// length beyond the current log — recovery then falls back to a full
// log scan.
func (s *Store) loadSnapshot(logSize int64) (covered int64, idx map[Key]recordLoc, ok bool) {
	b, err := os.ReadFile(filepath.Join(s.dir, indexName))
	if err != nil || len(b) < headerSize+16+4 {
		return 0, nil, false
	}
	if string(b[:8]) != indexMagic || binary.LittleEndian.Uint32(b[8:]) != FormatVersion {
		return 0, nil, false
	}
	body := b[headerSize : len(b)-4]
	if crc32.Checksum(body, crcTable) != binary.LittleEndian.Uint32(b[len(b)-4:]) {
		return 0, nil, false
	}
	covered = int64(binary.LittleEndian.Uint64(body[0:8]))
	count := binary.LittleEndian.Uint64(body[8:16])
	if covered < headerSize || covered > logSize {
		return 0, nil, false
	}
	const entrySize = 32 + 8 + 4
	if uint64(len(body)-16) != count*entrySize {
		return 0, nil, false
	}
	idx = make(map[Key]recordLoc, count)
	for i := uint64(0); i < count; i++ {
		e := body[16+i*entrySize:]
		var k Key
		copy(k[:], e[:32])
		loc := recordLoc{
			off: int64(binary.LittleEndian.Uint64(e[32:40])),
			n:   int32(binary.LittleEndian.Uint32(e[40:44])),
		}
		if loc.off < headerSize+36 || loc.off+int64(loc.n)+4 > covered {
			return 0, nil, false
		}
		idx[k] = loc
	}
	return covered, idx, true
}

// scanTailLocked indexes records other processes appended between the
// scanned offset and EOF. The caller must hold the log's advisory
// lock: exclusively (ex true) when the scan may truncate an invalid
// tail, shared otherwise — then the scan just stops short of a torn
// record and leaves it for the next exclusive holder.
func (s *Store) scanTailLocked(ex bool) {
	fi, err := s.f.Stat()
	if err != nil {
		s.readErrors++
		return
	}
	logSize := fi.Size()
	if logSize < s.size {
		// The log shrank below what we indexed: another process reset
		// it (format bump) or rolled back. Drop everything and rescan
		// from the header; stale locations must not survive.
		s.index = make(map[Key]recordLoc)
		s.size = headerSize
		s.invalidations++
		if logSize < headerSize {
			return
		}
	}
	off := s.size
	var lenBuf [4]byte
	for off < logSize {
		if off+recordOverhead > logSize {
			break
		}
		if _, err := s.f.ReadAt(lenBuf[:], off); err != nil {
			s.readErrors++
			return
		}
		n := int64(binary.LittleEndian.Uint32(lenBuf[:]))
		if n > maxPayload || off+recordOverhead+n > logSize {
			break
		}
		rec := make([]byte, 32+n+4)
		if _, err := s.f.ReadAt(rec, off+4); err != nil {
			s.readErrors++
			return
		}
		sum := binary.LittleEndian.Uint32(rec[32+n:])
		if crc32.Checksum(rec[:32+n], crcTable) != sum {
			break
		}
		var k Key
		copy(k[:], rec[:32])
		s.index[k] = recordLoc{off: off + 36, n: int32(n)}
		s.foreignRecords++
		off += recordOverhead + n
	}
	if off < logSize && ex {
		s.truncatedBytes += logSize - off
		if err := s.f.Truncate(off); err != nil {
			s.writeErrors++
			return
		}
	}
	s.size = off
}

// refreshTailLocked is the miss path's tail re-scan: under the shared
// lock, pick up records appended by other replicas. No-op when not
// shared.
func (s *Store) refreshTailLocked() {
	if !s.shared {
		return
	}
	if err := lockShared(s.f); err != nil {
		s.readErrors++
		return
	}
	defer unlock(s.f)
	s.tailRefreshes++
	s.scanTailLocked(false)
}

// Has reports whether the store holds a record for k, counting a hit
// or a miss — this is the probe the engine's warm-start metrics are
// built on. In shared mode a miss first re-scans the log tail for
// records appended by other replicas.
func (s *Store) Has(k Key) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.index[k]
	if !ok && s.shared {
		s.refreshTailLocked()
		_, ok = s.index[k]
	}
	if ok {
		s.hits++
	} else {
		s.misses++
	}
	return ok
}

// Get returns the decoded summary for k. The record checksum is
// re-verified before decoding; a record that fails verification is
// dropped from the index and reported as a miss (plus a ReadError).
func (s *Store) Get(k Key) (types.Summary, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	loc, ok := s.index[k]
	if !ok && s.shared {
		s.refreshTailLocked()
		loc, ok = s.index[k]
	}
	if !ok {
		s.misses++
		return types.Summary{}, false
	}
	rec := make([]byte, 32+int64(loc.n)+4)
	if _, err := s.f.ReadAt(rec, loc.off-32); err != nil {
		s.readErrors++
		s.misses++
		return types.Summary{}, false
	}
	s.bytesRead += uint64(len(rec))
	if crc32.Checksum(rec[:32+loc.n], crcTable) != binary.LittleEndian.Uint32(rec[32+loc.n:]) {
		s.readErrors++
		s.misses++
		delete(s.index, k)
		return types.Summary{}, false
	}
	sum, err := decodeSummary(rec[32 : 32+loc.n])
	if err != nil {
		s.readErrors++
		s.misses++
		delete(s.index, k)
		return types.Summary{}, false
	}
	s.hits++
	return sum, true
}

// Put appends the summary for k unless a record for k already exists
// (content addressing: identical keys imply identical values, so the
// first write wins). A failed append rolls the log back to its
// pre-record length so the on-disk prefix stays consistent. In shared
// mode the append happens under the exclusive flock, after
// reconciling the tail other replicas appended — so concurrent
// writers serialize at the verified EOF instead of clobbering each
// other.
func (s *Store) Put(k Key, sum types.Summary) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.broken {
		s.writeErrors++
		return
	}
	if _, ok := s.index[k]; ok {
		s.dupPuts++
		return
	}
	if s.shared {
		if err := lockExclusive(s.f); err != nil {
			s.writeErrors++
			return
		}
		defer unlock(s.f)
		s.scanTailLocked(true)
		if _, ok := s.index[k]; ok {
			s.dupPuts++
			return
		}
	}
	payload := encodeSummary(sum)
	if len(payload) > maxPayload {
		s.writeErrors++
		return
	}
	rec := make([]byte, 0, recordOverhead+len(payload))
	rec = binary.LittleEndian.AppendUint32(rec, uint32(len(payload)))
	rec = append(rec, k[:]...)
	rec = append(rec, payload...)
	rec = binary.LittleEndian.AppendUint32(rec, crc32.Checksum(rec[4:], crcTable))
	if _, err := s.f.WriteAt(rec, s.size); err != nil {
		s.writeErrors++
		// Roll back a possibly partial record; if even that fails the
		// in-memory prefix and the file may disagree, so stop writing
		// (reads are still safe: the index only points at verified
		// records).
		if terr := s.f.Truncate(s.size); terr != nil {
			s.broken = true
		}
		return
	}
	s.index[k] = recordLoc{off: s.size + 36, n: int32(len(payload))}
	s.size += int64(len(rec))
	s.puts++
	s.bytesWritten += uint64(len(rec))
	s.unsnapshotted++
	if s.unsnapshotted >= snapshotEvery {
		s.snapshotLocked()
	}
}

// Sync flushes appended records to stable storage.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Sync()
}

// Snapshot writes the current index atomically (temp file, fsync,
// rename) so the next Open scans only records appended after it.
func (s *Store) Snapshot() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snapshotLocked()
}

func (s *Store) snapshotLocked() error {
	body := make([]byte, 0, 16+len(s.index)*(32+8+4))
	body = binary.LittleEndian.AppendUint64(body, uint64(s.size))
	body = binary.LittleEndian.AppendUint64(body, uint64(len(s.index)))
	for k, loc := range s.index {
		body = append(body, k[:]...)
		body = binary.LittleEndian.AppendUint64(body, uint64(loc.off))
		body = binary.LittleEndian.AppendUint32(body, uint32(loc.n))
	}
	buf := make([]byte, 0, headerSize+len(body)+4)
	var hdr [headerSize]byte
	copy(hdr[:], indexMagic)
	binary.LittleEndian.PutUint32(hdr[8:], FormatVersion)
	buf = append(buf, hdr[:]...)
	buf = append(buf, body...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(body, crcTable))

	// The log must be durable up to the length the snapshot claims to
	// cover before the snapshot becomes visible, or a crash could leave
	// an index pointing past the recovered log.
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("sumstore: snapshot: %w", err)
	}
	tmp := filepath.Join(s.dir, indexName+".tmp")
	final := filepath.Join(s.dir, indexName)
	tf, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("sumstore: snapshot: %w", err)
	}
	if _, err := tf.Write(buf); err != nil {
		tf.Close()
		return fmt.Errorf("sumstore: snapshot: %w", err)
	}
	if err := tf.Sync(); err != nil {
		tf.Close()
		return fmt.Errorf("sumstore: snapshot: %w", err)
	}
	if err := tf.Close(); err != nil {
		return fmt.Errorf("sumstore: snapshot: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		return fmt.Errorf("sumstore: snapshot: %w", err)
	}
	if d, err := os.Open(s.dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	s.unsnapshotted = 0
	return nil
}

// Close syncs the log, snapshots the index, and closes the file.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.f == nil {
		s.mu.Unlock()
		return nil
	}
	snapErr := s.snapshotLocked()
	f := s.f
	s.f = nil
	s.mu.Unlock()
	closeErr := f.Close()
	if snapErr != nil {
		return snapErr
	}
	return closeErr
}

// Len is the number of stored summaries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Records:          len(s.index),
		LogBytes:         s.size,
		Hits:             s.hits,
		Misses:           s.misses,
		Puts:             s.puts,
		DupPuts:          s.dupPuts,
		BytesWritten:     s.bytesWritten,
		BytesRead:        s.bytesRead,
		IndexLoaded:      s.indexLoaded,
		RecoveredRecords: s.recoveredRecords,
		TruncatedBytes:   s.truncatedBytes,
		Invalidations:    s.invalidations,
		WriteErrors:      s.writeErrors,
		ReadErrors:       s.readErrors,
		Shared:           s.shared,
		ForeignRecords:   s.foreignRecords,
		TailRefreshes:    s.tailRefreshes,
	}
}
