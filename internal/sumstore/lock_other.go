//go:build !unix

package sumstore

import "os"

// Without flock, a shared open still works but provides no
// cross-process serialization: safe for a single daemon, not for a
// fleet on one store directory.
const sharedLocksSupported = false

func lockExclusive(f *os.File) error { return nil }
func lockShared(f *os.File) error    { return nil }
func unlock(f *os.File) error        { return nil }
