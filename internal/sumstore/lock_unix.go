//go:build unix

package sumstore

import (
	"os"
	"syscall"
)

// sharedLocksSupported reports whether this platform actually
// serializes shared stores; callers that require fleet-grade sharing
// (scripts/fleet_smoke.sh) only run where it is true.
const sharedLocksSupported = true

func flock(f *os.File, how int) error {
	for {
		err := syscall.Flock(int(f.Fd()), how)
		if err != syscall.EINTR {
			return err
		}
	}
}

// lockExclusive blocks until this process holds the log's exclusive
// advisory lock (writers and recovery).
func lockExclusive(f *os.File) error { return flock(f, syscall.LOCK_EX) }

// lockShared blocks until this process holds the log's shared
// advisory lock (tail refresh on reads).
func lockShared(f *os.File) error { return flock(f, syscall.LOCK_SH) }

func unlock(f *os.File) error { return flock(f, syscall.LOCK_UN) }
