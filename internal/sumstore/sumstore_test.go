package sumstore

import (
	"encoding/binary"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"fx10/internal/intset"
	"fx10/internal/types"
)

// randSummary builds a deterministic pseudo-random summary over a
// universe sized by the rng.
func randSummary(rng *rand.Rand) types.Summary {
	n := 1 + rng.Intn(60)
	sum := types.Summary{O: intset.New(n), M: intset.NewPairs(n)}
	for i := 0; i < rng.Intn(n+1); i++ {
		sum.O.Add(rng.Intn(n))
	}
	for i := 0; i < rng.Intn(3*n+1); i++ {
		sum.M.AddSym(rng.Intn(n), rng.Intn(n))
	}
	return sum
}

func keyOf(i int) Key {
	var k Key
	binary.LittleEndian.PutUint64(k[:], uint64(i))
	return k
}

func equalSummaries(a, b types.Summary) bool {
	return a.O.Universe() == b.O.Universe() && a.O.Equal(b.O) && a.M.Equal(b.M)
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		want := randSummary(rng)
		got, err := decodeSummary(encodeSummary(want))
		if err != nil {
			t.Fatalf("round trip %d: %v", i, err)
		}
		if !equalSummaries(got, want) {
			t.Fatalf("round trip %d: got O=%v M pairs=%d, want O=%v M pairs=%d",
				i, got.O, got.M.Len(), want.O, want.M.Len())
		}
	}
	// Degenerate but legal: the empty summary over the empty universe.
	empty := types.Summary{O: intset.New(0), M: intset.NewPairs(0)}
	got, err := decodeSummary(encodeSummary(empty))
	if err != nil || got.O.Universe() != 0 {
		t.Fatalf("empty-universe round trip failed: %v", err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":           {},
		"bad version":     {99},
		"truncated":       {payloadVersion, 10, 3, 1},
		"element outside": {payloadVersion, 2, 1, 5, 0},
		"trailing":        append(encodeSummary(types.Summary{O: intset.New(1), M: intset.NewPairs(1)}), 0xFF),
	}
	for name, b := range cases {
		if _, err := decodeSummary(b); err == nil {
			t.Errorf("%s: decode accepted corrupt payload", name)
		}
	}
}

func TestStorePutGetPersist(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(1))
	want := map[int]types.Summary{}

	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		want[i] = randSummary(rng)
		st.Put(keyOf(i), want[i])
	}
	if st.Len() != 50 {
		t.Fatalf("Len = %d, want 50", st.Len())
	}
	// Duplicate puts are deduplicated, not appended.
	before := st.Stats().LogBytes
	st.Put(keyOf(3), want[3])
	if s := st.Stats(); s.LogBytes != before || s.DupPuts != 1 {
		t.Fatalf("duplicate put appended: %+v", s)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: every summary must come back bit-identical, served from
	// the snapshot (no tail scan needed after a clean close).
	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if s := st2.Stats(); !s.IndexLoaded || s.RecoveredRecords != 0 {
		t.Errorf("clean reopen should load the snapshot with an empty tail: %+v", s)
	}
	for i, w := range want {
		got, ok := st2.Get(keyOf(i))
		if !ok {
			t.Fatalf("key %d lost across reopen", i)
		}
		if !equalSummaries(got, w) {
			t.Fatalf("key %d decoded differently across reopen", i)
		}
	}
	if _, ok := st2.Get(keyOf(999)); ok {
		t.Error("phantom key present")
	}
}

// TestStoreCrashTruncation is the randomized crash test: kill the
// writer at every interesting offset by truncating the segment log
// mid-record, reopen, and assert the store recovers exactly the
// longest consistent prefix — and that nothing served is corrupt.
func TestStoreCrashTruncation(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const records = 30

	// Build a reference store once to learn the record boundaries.
	refDir := t.TempDir()
	st, err := Open(refDir)
	if err != nil {
		t.Fatal(err)
	}
	sums := make([]types.Summary, records)
	bounds := []int64{headerSize}
	for i := range sums {
		sums[i] = randSummary(rng)
		st.Put(keyOf(i), sums[i])
		bounds = append(bounds, st.Stats().LogBytes)
	}
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}
	logPath := filepath.Join(refDir, logName)
	full, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}

	for trial := 0; trial < 60; trial++ {
		// Cut anywhere in the file, including inside the header.
		cut := int64(rng.Intn(len(full) + 1))
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, logName), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		re, err := Open(dir)
		if err != nil {
			t.Fatalf("cut at %d: open: %v", cut, err)
		}
		// The recovered prefix is the last record boundary ≤ cut.
		wantRecords := 0
		for wantRecords < records && bounds[wantRecords+1] <= cut {
			wantRecords++
		}
		if cut < headerSize {
			wantRecords = 0
		}
		if re.Len() != wantRecords {
			t.Fatalf("cut at %d: recovered %d records, want %d", cut, re.Len(), wantRecords)
		}
		for i := 0; i < wantRecords; i++ {
			got, ok := re.Get(keyOf(i))
			if !ok || !equalSummaries(got, sums[i]) {
				t.Fatalf("cut at %d: record %d corrupt or missing after recovery", cut, i)
			}
		}
		for i := wantRecords; i < records; i++ {
			if _, ok := re.Get(keyOf(i)); ok {
				t.Fatalf("cut at %d: record %d served from beyond the torn tail", cut, i)
			}
		}
		// The store must stay appendable after recovery.
		extra := randSummary(rng)
		re.Put(keyOf(1000+trial), extra)
		if got, ok := re.Get(keyOf(1000 + trial)); !ok || !equalSummaries(got, extra) {
			t.Fatalf("cut at %d: append after recovery failed", cut)
		}
		re.Close()
	}
}

// TestStoreCorruptMidLog flips a byte inside an early record: recovery
// must keep the records before it and drop it plus everything after —
// a consistent prefix, never a corrupt summary.
func TestStoreCorruptMidLog(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(3))
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var sums []types.Summary
	var bounds []int64
	for i := 0; i < 10; i++ {
		sums = append(sums, randSummary(rng))
		st.Put(keyOf(i), sums[i])
		bounds = append(bounds, st.Stats().LogBytes)
	}
	st.Close()
	// Remove the snapshot so recovery must scan (and judge) the log.
	if err := os.Remove(filepath.Join(dir, indexName)); err != nil {
		t.Fatal(err)
	}
	logPath := filepath.Join(dir, logName)
	b, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte inside record 4.
	b[bounds[3]+40] ^= 0xFF
	if err := os.WriteFile(logPath, b, 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 4 {
		t.Fatalf("recovered %d records, want the 4 before the corrupt one", re.Len())
	}
	for i := 0; i < 4; i++ {
		got, ok := re.Get(keyOf(i))
		if !ok || !equalSummaries(got, sums[i]) {
			t.Fatalf("record %d corrupt after mid-log recovery", i)
		}
	}
	if s := re.Stats(); s.TruncatedBytes == 0 {
		t.Error("corrupt suffix not reported as truncated")
	}
}

// TestStoreStaleSnapshotReplaysTail: records appended after the last
// snapshot are recovered from the log scan.
func TestStoreStaleSnapshotReplaysTail(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(9))
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var sums []types.Summary
	for i := 0; i < 5; i++ {
		sums = append(sums, randSummary(rng))
		st.Put(keyOf(i), sums[i])
	}
	if err := st.Snapshot(); err != nil {
		t.Fatal(err)
	}
	for i := 5; i < 12; i++ {
		sums = append(sums, randSummary(rng))
		st.Put(keyOf(i), sums[i])
	}
	// Simulate a crash: no Close, no second snapshot.
	if err := st.Sync(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	s := re.Stats()
	if !s.IndexLoaded {
		t.Error("snapshot not used")
	}
	if s.RecoveredRecords != 7 {
		t.Errorf("replayed %d tail records, want 7", s.RecoveredRecords)
	}
	for i, w := range sums {
		if got, ok := re.Get(keyOf(i)); !ok || !equalSummaries(got, w) {
			t.Fatalf("record %d missing or corrupt", i)
		}
	}
}

// TestStoreVersionBumpInvalidates: a log written under a different
// format version is discarded wholesale, not misdecoded.
func TestStoreVersionBumpInvalidates(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	st.Put(keyOf(1), types.Summary{O: intset.New(3), M: intset.NewPairs(3)})
	st.Close()

	logPath := filepath.Join(dir, logName)
	b, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint32(b[8:], FormatVersion+1)
	if err := os.WriteFile(logPath, b, 0o644); err != nil {
		t.Fatal(err)
	}

	re, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 0 {
		t.Fatalf("future-version log yielded %d records, want a clean reset", re.Len())
	}
	if s := re.Stats(); s.Invalidations != 1 {
		t.Errorf("Invalidations = %d, want 1", s.Invalidations)
	}
	// And the reset store works.
	want := types.Summary{O: intset.Of(3, 1), M: intset.NewPairs(3)}
	re.Put(keyOf(2), want)
	if got, ok := re.Get(keyOf(2)); !ok || !equalSummaries(got, want) {
		t.Error("reset store not writable")
	}
}

// TestStoreConcurrent hammers one store from many goroutines; run
// under -race this is the data-race gate for the engine integration.
func TestStoreConcurrent(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 200; i++ {
				k := keyOf(rng.Intn(64))
				if rng.Intn(2) == 0 {
					st.Put(k, randSummary(rng))
				} else {
					st.Get(k)
				}
			}
		}(w)
	}
	for w := 0; w < 4; w++ {
		<-done
	}
}
