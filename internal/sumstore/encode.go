package sumstore

import (
	"encoding/binary"
	"fmt"

	"fx10/internal/intset"
	"fx10/internal/types"
)

// Versioned binary encoding of one types.Summary in canonical
// subtree-local label space. The encoding is element-based rather than
// a raw bit-matrix dump: summaries are sparse relative to n², and
// delta-varint element lists stay compact as the universe grows.
//
// Layout (all varints are unsigned LEB128):
//
//	u8     payload version (payloadVersion)
//	uvar   n                universe size (labels in the subtree)
//	uvar   |O|              then |O| delta-varints: first element
//	                        absolute, the rest gaps from the previous
//	uvar   |M|              ordered-pair count, then |M| delta-varints
//	                        over the row-major pair index i·n + j
//
// Set.Each and PairSet.Each iterate in increasing (row-major) order,
// so every delta is non-negative and the decoder can verify strict
// monotonicity — a decode that would need to go backwards is corrupt.
const payloadVersion = 1

// encodeSummary serializes a summary. The M and O components must
// share one universe (they always do for a method summary).
func encodeSummary(sum types.Summary) []byte {
	n := sum.O.Universe()
	buf := make([]byte, 0, 16+2*sum.O.Len()+4*sum.M.Len())
	buf = append(buf, payloadVersion)
	buf = binary.AppendUvarint(buf, uint64(n))

	buf = binary.AppendUvarint(buf, uint64(sum.O.Len()))
	prev := 0
	sum.O.Each(func(e int) {
		buf = binary.AppendUvarint(buf, uint64(e-prev))
		prev = e
	})

	buf = binary.AppendUvarint(buf, uint64(sum.M.Len()))
	prevIdx := 0
	sum.M.Each(func(i, j int) {
		idx := i*n + j
		buf = binary.AppendUvarint(buf, uint64(idx-prevIdx))
		prevIdx = idx
	})
	return buf
}

// decodeSummary is the inverse of encodeSummary. Every structural
// property is validated (version, counts, element bounds,
// monotonicity), so a checksum-valid but semantically impossible
// record — which a format bug, not disk corruption, would produce —
// fails loudly here instead of corrupting an analysis.
func decodeSummary(b []byte) (types.Summary, error) {
	if len(b) == 0 || b[0] != payloadVersion {
		return types.Summary{}, fmt.Errorf("sumstore: unknown payload version")
	}
	b = b[1:]
	next := func() (uint64, error) {
		v, w := binary.Uvarint(b)
		if w <= 0 {
			return 0, fmt.Errorf("sumstore: truncated varint")
		}
		b = b[w:]
		return v, nil
	}

	un, err := next()
	if err != nil {
		return types.Summary{}, err
	}
	const maxUniverse = 1 << 30
	if un > maxUniverse {
		return types.Summary{}, fmt.Errorf("sumstore: implausible universe %d", un)
	}
	n := int(un)
	sum := types.Summary{O: intset.New(n), M: intset.NewPairs(n)}

	olen, err := next()
	if err != nil {
		return types.Summary{}, err
	}
	if olen > un {
		return types.Summary{}, fmt.Errorf("sumstore: |O| = %d exceeds universe %d", olen, n)
	}
	elem := 0
	for i := uint64(0); i < olen; i++ {
		d, err := next()
		if err != nil {
			return types.Summary{}, err
		}
		if i > 0 && d == 0 {
			return types.Summary{}, fmt.Errorf("sumstore: non-monotone O element")
		}
		elem += int(d)
		if elem >= n {
			return types.Summary{}, fmt.Errorf("sumstore: O element %d outside universe %d", elem, n)
		}
		sum.O.Add(elem)
	}

	plen, err := next()
	if err != nil {
		return types.Summary{}, err
	}
	if n > 0 && plen > un*un {
		return types.Summary{}, fmt.Errorf("sumstore: |M| = %d exceeds universe²", plen)
	}
	idx := 0
	for i := uint64(0); i < plen; i++ {
		d, err := next()
		if err != nil {
			return types.Summary{}, err
		}
		if i > 0 && d == 0 {
			return types.Summary{}, fmt.Errorf("sumstore: non-monotone M pair")
		}
		idx += int(d)
		if n == 0 || idx >= n*n {
			return types.Summary{}, fmt.Errorf("sumstore: M pair index %d outside universe", idx)
		}
		sum.M.Add(idx/n, idx%n)
	}
	if len(b) != 0 {
		return types.Summary{}, fmt.Errorf("sumstore: %d trailing bytes", len(b))
	}
	return sum, nil
}
