// Package x10 is the front end that turns an X10-like subset into the
// condensed form of internal/condensed, standing in for the X10 1.5
// compiler front end the paper's implementation used (see DESIGN.md's
// substitution table). It recognizes exactly the constructs the
// condensed form names:
//
//   - method declarations with arbitrary modifiers:
//     "public static void main(...) { ... }", "def step() { ... }";
//     optional "class Name { ... }" wrappers group methods;
//   - async (with an optional "(place)" clause marking a
//     place-switching async), clocked async, finish;
//   - next / advance, the Section 8 clock barrier;
//   - if/else, switch/case/default;
//   - for, while, do, foreach, ateach — all loops; foreach and ateach
//     desugar to a loop whose body is wrapped in an (implicit) async,
//     ateach's carrying a place switch, as the paper describes;
//   - return;
//   - calls "name(...);" to methods defined in the unit;
//   - every other statement (assignments, declarations, library
//     calls) condenses to a skip node.
//
// Expressions and loop headers are skipped as balanced-parenthesis
// text: the analysis is value-insensitive.
package x10

import (
	"fmt"
	"strings"

	"fx10/internal/condensed"
)

// Stats summarizes a parsed compilation unit.
type Stats struct {
	// LOC is the number of non-blank source lines.
	LOC int
}

// Parse translates X10-subset source to condensed form.
func Parse(src string) (*condensed.Unit, Stats, error) {
	p := &parser{src: src, line: 1}
	unit := &condensed.Unit{}
	for {
		p.skipSpace()
		if p.eof() {
			break
		}
		if p.atClassDecl() {
			if err := p.parseClass(unit); err != nil {
				return nil, Stats{}, err
			}
			continue
		}
		m, err := p.parseMethod()
		if err != nil {
			return nil, Stats{}, err
		}
		unit.Methods = append(unit.Methods, m)
	}
	if len(unit.Methods) == 0 {
		return nil, Stats{}, fmt.Errorf("x10: no methods found")
	}
	return unit, Stats{LOC: countLOC(src)}, nil
}

// MustParse is Parse that panics on error, for embedded workloads.
func MustParse(src string) (*condensed.Unit, Stats) {
	u, s, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return u, s
}

func countLOC(src string) int {
	n := 0
	for _, line := range strings.Split(src, "\n") {
		if strings.TrimSpace(line) != "" {
			n++
		}
	}
	return n
}

type parser struct {
	src  string
	pos  int
	line int
}

func (p *parser) eof() bool { return p.pos >= len(p.src) }

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("x10: line %d: %s", p.line, fmt.Sprintf(format, args...))
}

func (p *parser) peek() byte {
	if p.eof() {
		return 0
	}
	return p.src[p.pos]
}

func (p *parser) advance() byte {
	c := p.src[p.pos]
	p.pos++
	if c == '\n' {
		p.line++
	}
	return c
}

func (p *parser) skipSpace() {
	for !p.eof() {
		c := p.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			p.advance()
		case c == '/' && p.pos+1 < len(p.src) && p.src[p.pos+1] == '/':
			for !p.eof() && p.peek() != '\n' {
				p.advance()
			}
		case c == '/' && p.pos+1 < len(p.src) && p.src[p.pos+1] == '*':
			p.advance()
			p.advance()
			for !p.eof() {
				if p.peek() == '*' && p.pos+1 < len(p.src) && p.src[p.pos+1] == '/' {
					p.advance()
					p.advance()
					break
				}
				p.advance()
			}
		default:
			return
		}
	}
}

func isWordByte(c byte) bool {
	return c == '_' || c == '$' ||
		('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') || ('0' <= c && c <= '9')
}

// word reads an identifier/keyword at the cursor ("" if none).
func (p *parser) word() string {
	start := p.pos
	for !p.eof() && isWordByte(p.peek()) {
		p.advance()
	}
	return p.src[start:p.pos]
}

// peekWord returns the word at the cursor without consuming it.
func (p *parser) peekWord() string {
	save, line := p.pos, p.line
	w := p.word()
	p.pos, p.line = save, line
	return w
}

func (p *parser) atWord(w string) bool { return p.peekWord() == w }

// expectByte consumes one expected byte.
func (p *parser) expectByte(c byte) error {
	p.skipSpace()
	if p.eof() || p.peek() != c {
		return p.errf("expected %q", string(c))
	}
	p.advance()
	return nil
}

// skipNonCode consumes a string literal, character literal, or
// comment at the cursor and reports whether it consumed anything.
// The expression skippers call this first so delimiters inside
// `"..."`, `'...'`, `// ...` and `/* ... */` never perturb their
// depth counting — `print("(");` is one statement, not an
// unterminated one.
func (p *parser) skipNonCode() bool {
	c := p.peek()
	switch {
	case c == '"' || c == '\'':
		quote := p.advance()
		for !p.eof() {
			c := p.advance()
			if c == '\\' && !p.eof() {
				p.advance() // escaped char, including \" and \'
				continue
			}
			if c == quote || c == '\n' {
				break // closed, or tolerate an unterminated literal at EOL
			}
		}
		return true
	case c == '/' && p.pos+1 < len(p.src) && p.src[p.pos+1] == '/':
		for !p.eof() && p.peek() != '\n' {
			p.advance()
		}
		return true
	case c == '/' && p.pos+1 < len(p.src) && p.src[p.pos+1] == '*':
		p.advance()
		p.advance()
		for !p.eof() {
			if p.peek() == '*' && p.pos+1 < len(p.src) && p.src[p.pos+1] == '/' {
				p.advance()
				p.advance()
				return true
			}
			p.advance()
		}
		return true
	}
	return false
}

// skipBalanced consumes from an opening delimiter to its match.
func (p *parser) skipBalanced(open, close byte) error {
	if err := p.expectByte(open); err != nil {
		return err
	}
	depth := 1
	for !p.eof() {
		if p.skipNonCode() {
			continue
		}
		c := p.advance()
		switch c {
		case open:
			depth++
		case close:
			depth--
			if depth == 0 {
				return nil
			}
		}
	}
	return p.errf("unterminated %q", string(open))
}

// skipToSemi consumes up to and including the next ';' at depth 0.
func (p *parser) skipToSemi() error {
	depth := 0
	for !p.eof() {
		if p.skipNonCode() {
			continue
		}
		c := p.advance()
		switch c {
		case '(', '[', '{':
			depth++
		case ')', ']', '}':
			depth--
		case ';':
			if depth <= 0 {
				return nil
			}
		}
	}
	return p.errf("unterminated statement")
}

var modifiers = map[string]bool{
	"public": true, "private": true, "protected": true,
	"static": true, "final": true, "abstract": true, "native": true,
}

// atClassDecl reports whether the cursor is at a (possibly
// modifier-prefixed) class declaration, without consuming input.
func (p *parser) atClassDecl() bool {
	save, line := p.pos, p.line
	defer func() { p.pos, p.line = save, line }()
	for {
		p.skipSpace()
		w := p.word()
		switch {
		case w == "class" || w == "interface":
			return true
		case modifiers[w]:
			// keep scanning
		default:
			return false
		}
	}
}

func (p *parser) parseClass(unit *condensed.Unit) error {
	for modifiers[p.peekWord()] {
		p.word()
		p.skipSpace()
	}
	p.word() // "class" or "interface"
	p.skipSpace()
	if p.word() == "" {
		return p.errf("class name expected")
	}
	if err := p.expectByte('{'); err != nil {
		return err
	}
	for {
		p.skipSpace()
		if p.eof() {
			return p.errf("unterminated class body")
		}
		if p.peek() == '}' {
			p.advance()
			return nil
		}
		// Field declarations inside classes are skipped.
		if isField, err := p.trySkipField(); err != nil {
			return err
		} else if isField {
			continue
		}
		m, err := p.parseMethod()
		if err != nil {
			return err
		}
		unit.Methods = append(unit.Methods, m)
	}
}

// trySkipField consumes a field declaration (words ending in ';'
// before any '(' or '{') and reports whether it did.
func (p *parser) trySkipField() (bool, error) {
	save, line := p.pos, p.line
	depth := 0
	for !p.eof() {
		if p.skipNonCode() {
			continue
		}
		c := p.advance()
		switch c {
		case '[', '(':
			depth++
		case ']', ')':
			depth--
		case '{':
			if depth == 0 { // a method body: rewind
				p.pos, p.line = save, line
				return false, nil
			}
			depth++
		case '}':
			depth--
		case ';':
			if depth == 0 {
				return true, nil
			}
		}
	}
	p.pos, p.line = save, line
	return false, p.errf("unterminated declaration")
}

// parseMethod parses "[modifiers…] name ( args ) { body }".
func (p *parser) parseMethod() (*condensed.MethodDecl, error) {
	var name string
	for {
		p.skipSpace()
		w := p.word()
		if w == "" {
			return nil, p.errf("method declaration expected")
		}
		// Array-bracketed types like int[:rank==1] may follow a word.
		p.skipSpace()
		if !p.eof() && p.peek() == '[' {
			if err := p.skipBalanced('[', ']'); err != nil {
				return nil, err
			}
			continue
		}
		if !p.eof() && p.peek() == '(' {
			name = w
			break
		}
	}
	if err := p.skipBalanced('(', ')'); err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &condensed.MethodDecl{Name: name, Body: body}, nil
}

// parseBlock parses "{ stmt* }" into a node list.
func (p *parser) parseBlock() ([]*condensed.Node, error) {
	if err := p.expectByte('{'); err != nil {
		return nil, err
	}
	var out []*condensed.Node
	for {
		p.skipSpace()
		if p.eof() {
			return nil, p.errf("unterminated block")
		}
		if p.peek() == '}' {
			p.advance()
			return out, nil
		}
		nodes, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		out = append(out, nodes...)
	}
}

// blockOrStmt parses either a braced block or a single statement.
func (p *parser) blockOrStmt() ([]*condensed.Node, error) {
	p.skipSpace()
	if !p.eof() && p.peek() == '{' {
		return p.parseBlock()
	}
	return p.parseStmt()
}

// parseStmt parses one statement into condensed nodes.
func (p *parser) parseStmt() ([]*condensed.Node, error) {
	p.skipSpace()
	switch p.peekWord() {
	case "async":
		p.word()
		return p.finishAsync(false)

	case "clocked":
		p.word()
		p.skipSpace()
		if p.peekWord() != "async" {
			return nil, p.errf("expected \"async\" after \"clocked\"")
		}
		p.word()
		return p.finishAsync(true)

	case "next", "advance":
		// The clock barrier (Section 8); X10 writes it "next;", later
		// dialects "advance;". Both condense to an Advance node.
		p.word()
		if err := p.skipToSemi(); err != nil {
			return nil, err
		}
		return []*condensed.Node{{Kind: condensed.Advance}}, nil

	case "finish":
		p.word()
		body, err := p.blockOrStmt()
		if err != nil {
			return nil, err
		}
		return []*condensed.Node{{Kind: condensed.Finish, Body: body}}, nil

	case "if":
		p.word()
		if err := p.skipBalanced('(', ')'); err != nil {
			return nil, err
		}
		then, err := p.blockOrStmt()
		if err != nil {
			return nil, err
		}
		node := &condensed.Node{Kind: condensed.If, Body: then}
		p.skipSpace()
		if p.atWord("else") {
			p.word()
			els, err := p.blockOrStmt()
			if err != nil {
				return nil, err
			}
			node.Else = els
		}
		return []*condensed.Node{node}, nil

	case "for", "while":
		p.word()
		if err := p.skipBalanced('(', ')'); err != nil {
			return nil, err
		}
		body, err := p.blockOrStmt()
		if err != nil {
			return nil, err
		}
		return []*condensed.Node{{Kind: condensed.Loop, Body: body}}, nil

	case "do":
		p.word()
		body, err := p.blockOrStmt()
		if err != nil {
			return nil, err
		}
		p.skipSpace()
		if p.peekWord() == "while" {
			p.word()
			if err := p.skipBalanced('(', ')'); err != nil {
				return nil, err
			}
			if err := p.skipToSemi(); err != nil {
				return nil, err
			}
		}
		return []*condensed.Node{{Kind: condensed.Loop, Body: body}}, nil

	case "foreach", "ateach":
		kw := p.word()
		if err := p.skipBalanced('(', ')'); err != nil {
			return nil, err
		}
		body, err := p.blockOrStmt()
		if err != nil {
			return nil, err
		}
		place := 0
		if kw == "ateach" {
			place = 1
		}
		// The implicit async wrapping the loop body (paper, Section 6).
		async := &condensed.Node{Kind: condensed.Async, Body: body, Place: place}
		return []*condensed.Node{{Kind: condensed.Loop, Body: []*condensed.Node{async}}}, nil

	case "switch":
		p.word()
		if err := p.skipBalanced('(', ')'); err != nil {
			return nil, err
		}
		return p.parseSwitchBody()

	case "return":
		p.word()
		if err := p.skipToSemi(); err != nil {
			return nil, err
		}
		return []*condensed.Node{{Kind: condensed.Return}}, nil

	case "":
		// Not word-initial (e.g. "{" nested block or stray token).
		if p.peek() == '{' {
			return p.parseBlock()
		}
		if err := p.skipToSemi(); err != nil {
			return nil, err
		}
		return []*condensed.Node{{Kind: condensed.Skip}}, nil

	default:
		// A call "name(...);" or an arbitrary compute statement.
		save, line := p.pos, p.line
		w := p.word()
		p.skipSpace()
		if !p.eof() && p.peek() == '(' {
			if err := p.skipBalanced('(', ')'); err != nil {
				return nil, err
			}
			p.skipSpace()
			if !p.eof() && p.peek() == ';' {
				p.advance()
				return []*condensed.Node{{Kind: condensed.Call, Callee: w}}, nil
			}
		}
		// Not a plain call: consume the rest of the statement.
		p.pos, p.line = save, line
		if err := p.skipToSemi(); err != nil {
			return nil, err
		}
		return []*condensed.Node{{Kind: condensed.Skip}}, nil
	}
}

// finishAsync parses the remainder of an async statement (the "async"
// keyword, and "clocked" if present, already consumed): an optional
// place clause and the body.
func (p *parser) finishAsync(clocked bool) ([]*condensed.Node, error) {
	place := 0
	p.skipSpace()
	if !p.eof() && p.peek() == '(' {
		if err := p.skipBalanced('(', ')'); err != nil {
			return nil, err
		}
		place = 1 // the concrete place is value-level; 1 marks "switched"
	}
	body, err := p.blockOrStmt()
	if err != nil {
		return nil, err
	}
	return []*condensed.Node{{Kind: condensed.Async, Body: body, Place: place, Clocked: clocked}}, nil
}

// parseSwitchBody parses "{ case x: stmts… default: stmts… }".
func (p *parser) parseSwitchBody() ([]*condensed.Node, error) {
	if err := p.expectByte('{'); err != nil {
		return nil, err
	}
	node := &condensed.Node{Kind: condensed.Switch}
	var cur []*condensed.Node
	flush := func() {
		if cur != nil {
			node.Cases = append(node.Cases, cur)
			cur = nil
		}
	}
	for {
		p.skipSpace()
		if p.eof() {
			return nil, p.errf("unterminated switch")
		}
		if p.peek() == '}' {
			p.advance()
			flush()
			return []*condensed.Node{node}, nil
		}
		switch p.peekWord() {
		case "case":
			flush()
			p.word()
			for !p.eof() && p.peek() != ':' {
				if p.skipNonCode() {
					continue
				}
				p.advance()
			}
			if err := p.expectByte(':'); err != nil {
				return nil, err
			}
			cur = []*condensed.Node{}
		case "default":
			flush()
			p.word()
			if err := p.expectByte(':'); err != nil {
				return nil, err
			}
			cur = []*condensed.Node{}
		case "break":
			p.word()
			if err := p.skipToSemi(); err != nil {
				return nil, err
			}
		default:
			nodes, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			if cur == nil {
				return nil, p.errf("statement before first case")
			}
			cur = append(cur, nodes...)
		}
	}
}

// ResolveCalls rewrites Call nodes whose callee is not defined in the
// unit into Skip nodes (library calls condense to skips, as in the
// paper's implementation), and returns the number rewritten.
func ResolveCalls(u *condensed.Unit) int {
	return len(ResolveCallsNamed(u))
}

// ResolveCallsNamed is ResolveCalls, but returns the callee name of
// each rewritten call (in source order, duplicates preserved) so the
// front-end boundary can report them as lowering diagnostics.
func ResolveCallsNamed(u *condensed.Unit) []string {
	defined := map[string]bool{}
	for _, m := range u.Methods {
		defined[m.Name] = true
	}
	var names []string
	var walk func(block []*condensed.Node)
	walk = func(block []*condensed.Node) {
		for _, nd := range block {
			if nd.Kind == condensed.Call && !defined[nd.Callee] {
				names = append(names, nd.Callee)
				nd.Kind = condensed.Skip
				nd.Callee = ""
			}
			walk(nd.Body)
			walk(nd.Else)
			for _, cs := range nd.Cases {
				walk(cs)
			}
		}
	}
	for _, m := range u.Methods {
		walk(m.Body)
	}
	return names
}
