package x10

import (
	"os"
	"path/filepath"
	"testing"

	"fx10/internal/condensed"
)

// FuzzParse checks the X10-subset front end never panics and that
// accepted units survive node counting, async classification, call
// resolution and lowering.
func FuzzParse(f *testing.F) {
	seeds := []string{
		sample,
		"void main() { return; }",
		"public class C { static int x = 1; void main() { foreach (p) { y(); } } void y() { return; } }",
		"void main() { switch (x) { case 1: a(); break; default: break; } } void a() { return; }",
		"void main() { do { x(); } while (y); } void x() { return; }",
		"void main() { if (a) b(); else { c(); } } void b() { return; } void c() { return; }",
		"", "class", "class X {", "void main() {", "void main() { async {",
		"void main() { switch (x) { y(); } }",
		"void main() { ateach (p : d) async { q(); } } void q() { return; }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	// The tricky corpus (literals and comments full of code-looking
	// text) doubles as fuzz seed material.
	tricky, err := filepath.Glob(filepath.Join(trickyDir, "*.x10"))
	if err != nil {
		f.Fatal(err)
	}
	for _, path := range tricky {
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(data))
	}
	f.Fuzz(func(t *testing.T, src string) {
		unit, _, err := Parse(src)
		if err != nil {
			return
		}
		_ = unit.NodeCounts()
		_ = unit.AsyncStats()
		ResolveCalls(unit)
		if _, lerr := condensed.Lower(unit); lerr != nil {
			// Lowering may legitimately fail only for duplicate
			// method names (the front end is permissive); anything
			// else indicates a bug upstream.
			return
		}
	})
}
