package x10

import (
	"fmt"
	"strings"

	"fx10/internal/condensed"
)

// Render pretty-prints a condensed unit as X10-subset source that
// Parse lowers back to an equivalent unit: same kinds, same nesting,
// same callees, so the lowered FX10 programs (and hence the MHP
// reports) are bit-identical. It is the X10 side of the
// cross-front-end oracle (internal/difffuzz): a unit rendered here
// and by gofront.Render must analyze identically through both front
// ends.
//
// Loop guards and if/switch conditions are rendered as the constant 1
// — the front end skips them as balanced text and the analysis is
// value-insensitive, so any expression would do.
func Render(u *condensed.Unit) string {
	var b strings.Builder
	for i, m := range u.Methods {
		if i > 0 {
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "def %s() {\n", m.Name)
		renderBlock(&b, m.Body, 1)
		b.WriteString("}\n")
	}
	return b.String()
}

func renderBlock(b *strings.Builder, block []*condensed.Node, depth int) {
	ind := strings.Repeat("  ", depth)
	for _, n := range block {
		switch n.Kind {
		case condensed.End:
			// Implicit; never materialized.
		case condensed.Skip:
			b.WriteString(ind + "skip;\n")
		case condensed.Return:
			b.WriteString(ind + "return;\n")
		case condensed.Advance:
			b.WriteString(ind + "next;\n")
		case condensed.Call:
			fmt.Fprintf(b, "%s%s();\n", ind, n.Callee)
		case condensed.Async:
			kw := "async"
			if n.Clocked {
				kw = "clocked async"
			}
			if n.Place != 0 {
				kw += " (1)" // the concrete place is value-level; any clause re-parses as Place 1
			}
			b.WriteString(ind + kw + " {\n")
			renderBlock(b, n.Body, depth+1)
			b.WriteString(ind + "}\n")
		case condensed.Finish:
			b.WriteString(ind + "finish {\n")
			renderBlock(b, n.Body, depth+1)
			b.WriteString(ind + "}\n")
		case condensed.Loop:
			b.WriteString(ind + "while (1) {\n")
			renderBlock(b, n.Body, depth+1)
			b.WriteString(ind + "}\n")
		case condensed.If:
			b.WriteString(ind + "if (1) {\n")
			renderBlock(b, n.Body, depth+1)
			b.WriteString(ind + "}")
			if n.Else != nil {
				b.WriteString(" else {\n")
				renderBlock(b, n.Else, depth+1)
				b.WriteString(ind + "}")
			}
			b.WriteByte('\n')
		case condensed.Switch:
			b.WriteString(ind + "switch (1) {\n")
			for i, cs := range n.Cases {
				fmt.Fprintf(b, "%s  case %d:\n", ind, i)
				renderBlock(b, cs, depth+2)
			}
			b.WriteString(ind + "}\n")
		default:
			panic(fmt.Sprintf("x10: render: unknown node kind %v", n.Kind))
		}
	}
}
