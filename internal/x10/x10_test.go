package x10

import (
	"strings"
	"testing"

	"fx10/internal/condensed"
)

const sample = `
// A small X10-subset program exercising every condensed node kind.
public class Main {
  final int[:rank==1] a;

  public static void main(String[] args) {
    int sum = 0;
    finish {
      async { compute(); }
      async (here.next()) { sum = sum + 1; }
    }
    if (sum > 0) {
      compute();
    } else {
      return;
    }
    for (int i = 0; i < 10; i++) {
      step();
    }
    foreach (point p : dist) {
      body();
    }
    ateach (point p : dist) {
      body();
    }
    switch (sum) {
      case 0:
        compute();
        break;
      case 1: {
        async { compute(); }
        break;
      }
      default:
        break;
    }
    while (sum < 3) { sum = sum + 1; }
  }

  static void compute() { int x = 1; }
  static void step() { compute(); }
  static void body() { int y = 2; }
}
`

func TestParseSample(t *testing.T) {
	u, stats, err := Parse(sample)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(u.Methods) != 4 {
		names := []string{}
		for _, m := range u.Methods {
			names = append(names, m.Name)
		}
		t.Fatalf("methods = %v, want 4", names)
	}
	if stats.LOC < 30 {
		t.Fatalf("LOC = %d, want ≥ 30", stats.LOC)
	}
	c := u.NodeCounts()
	if c.Of(condensed.Method) != 4 {
		t.Fatalf("method nodes = %d", c.Of(condensed.Method))
	}
	// asyncs: 2 explicit in finish + 1 in switch case + foreach
	// implicit + ateach implicit = 5.
	if c.Of(condensed.Async) != 5 {
		t.Fatalf("async nodes = %d, want 5", c.Of(condensed.Async))
	}
	// loops: for + foreach + ateach + while = 4.
	if c.Of(condensed.Loop) != 4 {
		t.Fatalf("loop nodes = %d, want 4", c.Of(condensed.Loop))
	}
	if c.Of(condensed.Finish) != 1 || c.Of(condensed.If) != 1 || c.Of(condensed.Switch) != 1 {
		t.Fatalf("finish/if/switch = %d/%d/%d", c.Of(condensed.Finish), c.Of(condensed.If), c.Of(condensed.Switch))
	}
	if c.Of(condensed.Return) != 1 {
		t.Fatalf("return nodes = %d", c.Of(condensed.Return))
	}
	if c.Of(condensed.Call) == 0 || c.Of(condensed.Skip) == 0 || c.Of(condensed.End) == 0 {
		t.Fatalf("call/skip/end missing: %+v", c)
	}
}

func TestAsyncClassification(t *testing.T) {
	u, _, err := Parse(sample)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	s := u.AsyncStats()
	// foreach + ateach implicit asyncs are loop asyncs; the
	// async (here.next()) is place-switching; the plain async in
	// finish and the one in the switch are plain.
	if s.Total != 5 {
		t.Fatalf("total = %d", s.Total)
	}
	if s.Loop != 2 {
		t.Fatalf("loop asyncs = %d, want 2", s.Loop)
	}
	if s.PlaceSwitch != 1 {
		t.Fatalf("place-switch asyncs = %d, want 1", s.PlaceSwitch)
	}
	if s.Plain != 2 {
		t.Fatalf("plain asyncs = %d, want 2", s.Plain)
	}
}

func TestResolveCallsAndLower(t *testing.T) {
	u, _, err := Parse(sample)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	// "body" and "compute"/"step" are defined; library-ish calls are
	// not present in sample except… all calls resolve here.
	rewritten := ResolveCalls(u)
	if rewritten != 0 {
		t.Fatalf("unexpected rewrites: %d", rewritten)
	}
	p := condensed.MustLower(u)
	if p.Main().Name != "main" {
		t.Fatalf("lowered main missing")
	}
}

func TestResolveLibraryCalls(t *testing.T) {
	src := `
void main() {
  System.out.println(x);
  helper();
  unknownLib();
}
void helper() { return; }
`
	u, _, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	n := ResolveCalls(u)
	if n != 1 { // unknownLib(); println is not a plain call (dots)
		t.Fatalf("rewrites = %d, want 1", n)
	}
	if _, err := condensed.Lower(u); err != nil {
		t.Fatalf("Lower after resolve: %v", err)
	}
}

func TestDoWhile(t *testing.T) {
	u, _, err := Parse(`void main() { do { step(); } while (x < 3); } void step() { return; }`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if u.NodeCounts().Of(condensed.Loop) != 1 {
		t.Fatalf("do-while not a loop")
	}
}

func TestIfWithoutBraces(t *testing.T) {
	u, _, err := Parse(`void main() { if (x) step(); else step(); } void step() { return; }`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	c := u.NodeCounts()
	if c.Of(condensed.If) != 1 || c.Of(condensed.Call) != 2 {
		t.Fatalf("braceless if: %+v", c)
	}
}

func TestNestedBlocks(t *testing.T) {
	u, _, err := Parse(`void main() { { async { x = 1; } } }`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if u.NodeCounts().Of(condensed.Async) != 1 {
		t.Fatalf("nested block contents lost")
	}
}

func TestErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"empty", "   \n  "},
		{"unterminated block", "void main() { async {"},
		{"unterminated paren", "void main() { if (x { } }"},
		{"unterminated switch", "void main() { switch (x) { case 1: y();"},
		{"stmt before case", "void main() { switch (x) { y(); } }"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, _, err := Parse(tc.src); err == nil {
				t.Fatalf("Parse succeeded on %q", tc.src)
			}
		})
	}
}

func TestLOCCount(t *testing.T) {
	_, stats, err := Parse("void main() { return; }\n\n\n")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if stats.LOC != 1 {
		t.Fatalf("LOC = %d, want 1", stats.LOC)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("MustParse did not panic")
		}
	}()
	MustParse("{}")
}

func TestCommentsSkipped(t *testing.T) {
	u, _, err := Parse(`
/* block
   comment with async finish keywords */
void main() {
  // async in a comment
  step();
}
void step() { return; }
`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if u.NodeCounts().Of(condensed.Async) != 0 {
		t.Fatalf("comment contents parsed")
	}
	_ = strings.TrimSpace
}
