package x10

import (
	"testing"

	"fx10/internal/condensed"
	"fx10/internal/syntax"
)

// Clock constructs must survive the whole front-end path: X10 text →
// condensed nodes → lowered core program, with the Clocked flag and
// the barrier intact for the static phase analysis.
func TestClockedConstructsLower(t *testing.T) {
	src := `
public static void main() {
  clocked async {
    compute();
    next;
    combine();
  }
  advance;
  finish {
    async { compute(); }
  }
}
def compute() { x = 1; }
def combine() { x = 2; }
`
	u, _ := MustParse(src)
	if n := ResolveCalls(u); n != 0 {
		t.Fatalf("%d unresolved calls", n)
	}

	counts := u.NodeCounts()
	if got := counts.Of(condensed.Advance); got != 2 {
		t.Errorf("advance nodes = %d, want 2 (one next, one advance)", got)
	}

	var clocked, plain int
	var walk func([]*condensed.Node)
	walk = func(block []*condensed.Node) {
		for _, n := range block {
			if n.Kind == condensed.Async {
				if n.Clocked {
					clocked++
				} else {
					plain++
				}
			}
			walk(n.Body)
			walk(n.Else)
			for _, cs := range n.Cases {
				walk(cs)
			}
		}
	}
	for _, m := range u.Methods {
		walk(m.Body)
	}
	if clocked != 1 || plain != 1 {
		t.Errorf("clocked/plain asyncs = %d/%d, want 1/1", clocked, plain)
	}

	p, err := condensed.Lower(u)
	if err != nil {
		t.Fatal(err)
	}
	if !p.UsesClocks() {
		t.Fatal("lowered program lost the clock constructs")
	}
	var nexts, clockedAsyncs int
	p.EachInstr(func(_ int, i syntax.Instr) {
		switch i := i.(type) {
		case *syntax.Next:
			nexts++
		case *syntax.Async:
			if i.Clocked {
				clockedAsyncs++
			}
		}
	})
	if nexts != 2 || clockedAsyncs != 1 {
		t.Errorf("lowered nexts=%d clockedAsyncs=%d, want 2 and 1", nexts, clockedAsyncs)
	}
}
