package x10

import (
	"os"
	"path/filepath"
	"testing"

	"fx10/internal/condensed"
)

// trickyDir is the corpus of sources whose literals and comments
// contain code-looking text ("async {", unbalanced braces, semicolons,
// colons). It is shared with the front-end contract tests
// (internal/frontend) and seeds FuzzParse.
const trickyDir = "../../testdata/tricky"

// TestTrickyCorpus asserts structural expectations per corpus file:
// the skipper must neither lose real constructs nor hallucinate ones
// out of string/char/comment contents.
func TestTrickyCorpus(t *testing.T) {
	want := map[string]struct {
		asyncs, finishes, loops, ifs, switches int
	}{
		"strings.x10":  {asyncs: 1, ifs: 1},
		"comments.x10": {loops: 1, ifs: 1},
		"cases.x10":    {switches: 1},
		"escapes.x10":  {asyncs: 1, finishes: 1},
	}
	for name, w := range want {
		t.Run(name, func(t *testing.T) {
			data, err := os.ReadFile(filepath.Join(trickyDir, name))
			if err != nil {
				t.Fatal(err)
			}
			u, _, err := Parse(string(data))
			if err != nil {
				t.Fatalf("Parse: %v", err)
			}
			c := u.NodeCounts()
			got := [5]int{c.Of(condensed.Async), c.Of(condensed.Finish), c.Of(condensed.Loop), c.Of(condensed.If), c.Of(condensed.Switch)}
			if got != [5]int{w.asyncs, w.finishes, w.loops, w.ifs, w.switches} {
				t.Fatalf("async/finish/loop/if/switch = %v, want %v", got,
					[5]int{w.asyncs, w.finishes, w.loops, w.ifs, w.switches})
			}
			ResolveCalls(u)
			if _, err := condensed.Lower(u); err != nil {
				t.Fatalf("Lower: %v", err)
			}
		})
	}
}

// TestTrickyCaseLabels pins the case-label scanner details: the label
// text may contain ':' inside literals, and the first real ':' past
// them terminates the label.
func TestTrickyCaseLabels(t *testing.T) {
	data, err := os.ReadFile(filepath.Join(trickyDir, "cases.x10"))
	if err != nil {
		t.Fatal(err)
	}
	u, _, err := Parse(string(data))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	var sw *condensed.Node
	for _, n := range u.Methods[0].Body {
		if n.Kind == condensed.Switch {
			sw = n
		}
	}
	if sw == nil {
		t.Fatal("no switch lowered")
	}
	// case ':' / case '}' / case "a:b;{" / default = 4 cases.
	if len(sw.Cases) != 4 {
		t.Fatalf("cases = %d, want 4", len(sw.Cases))
	}
	// The first three cases carry a call each (f, g, f); default only a
	// break (skip).
	for i, callee := range []string{"f", "g", "f"} {
		found := false
		for _, n := range sw.Cases[i] {
			if n.Kind == condensed.Call && n.Callee == callee {
				found = true
			}
		}
		if !found {
			t.Fatalf("case %d lost its call to %s: %+v", i, callee, sw.Cases[i])
		}
	}
}

// TestTrickyInline covers skipper edge cases too small for corpus
// files, including tolerated unterminated literals at end of line.
func TestTrickyInline(t *testing.T) {
	cases := []struct {
		name, src string
		asyncs    int
	}{
		{"string arg with async", `void main() { f("async { }"); } void f() { return; }`, 0},
		{"char brace arg", `void main() { f('{', '}'); } void f() { return; }`, 0},
		{"escaped quote in string", `void main() { f("\""); } void f() { return; }`, 0},
		{"comment in condition", `void main() { if (x /* { */) { async { f(); } } } void f() { return; }`, 1},
		{"line comment mid-block", "void main() {\n  // async {\n  f();\n} void f() { return; }", 0},
		{"semicolon in string stmt", `void main() { f("a;b"); async { f(); } } void f() { return; }`, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			u, _, err := Parse(tc.src)
			if err != nil {
				t.Fatalf("Parse: %v", err)
			}
			if got := u.NodeCounts().Of(condensed.Async); got != tc.asyncs {
				t.Fatalf("asyncs = %d, want %d", got, tc.asyncs)
			}
		})
	}
}
