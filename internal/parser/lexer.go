// Package parser turns concrete FX10 source text into the abstract
// syntax of internal/syntax.
//
// The concrete grammar (extended BNF; [x] optional, {x} repeated):
//
//	program  := ["array" INT ";"] method {method}
//	method   := "void" IDENT "(" ")" block
//	block    := "{" {stmt} "}"
//	stmt     := [IDENT ":"] instr
//	instr    := "skip" ";"
//	          | "a" "[" INT "]" "=" expr ";"
//	          | "while" "(" "a" "[" INT "]" "!=" "0" ")" block
//	          | ["clocked"] "async" ["at" "(" INT ")"] block
//	          | "finish" block
//	          | ("next" | "advance") ";"
//	          | IDENT "(" ")" ";"
//	expr     := INT | "a" "[" INT "]" "+" "1"
//
// Line comments ("// …") and block comments ("/* … */") are ignored.
// An empty block is sugar for a block containing a single unlabeled
// skip, since FX10 statements are non-empty. The optional "at (q)"
// clause on async is the Section 8 places extension; plain FX10
// programs never use it. If the "array n;" header is omitted the array
// length defaults to 16.
package parser

import (
	"fmt"
	"unicode"
)

// tokKind enumerates lexical token kinds.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokInt
	tokLBrace  // {
	tokRBrace  // }
	tokLParen  // (
	tokRParen  // )
	tokLBrack  // [
	tokRBrack  // ]
	tokSemi    // ;
	tokColon   // :
	tokAssign  // =
	tokPlus    // +
	tokNotEq   // !=
	tokKeyword // one of the reserved words
)

var keywords = map[string]bool{
	"array": true, "void": true, "skip": true, "while": true,
	"async": true, "finish": true, "at": true, "a": true,
	"clocked": true, "next": true, "advance": true,
}

// token is one lexical token with its source position.
type token struct {
	kind tokKind
	text string
	line int
	col  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// lexer scans FX10 source into tokens.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

// Error is a parse or scan error with position information.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string {
	return fmt.Sprintf("%d:%d: %s", e.Line, e.Col, e.Msg)
}

func (lx *lexer) errf(line, col int, format string, args ...any) error {
	return &Error{Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

func (lx *lexer) peekByte() byte {
	if lx.pos >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos]
}

func (lx *lexer) advance() byte {
	c := lx.src[lx.pos]
	lx.pos++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

// skipSpace consumes whitespace and comments; it reports an error for
// an unterminated block comment.
func (lx *lexer) skipSpace() error {
	for lx.pos < len(lx.src) {
		c := lx.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '/' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '/':
			for lx.pos < len(lx.src) && lx.peekByte() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '*':
			startLine, startCol := lx.line, lx.col
			lx.advance()
			lx.advance()
			closed := false
			for lx.pos+1 < len(lx.src)+1 && lx.pos < len(lx.src) {
				if lx.peekByte() == '*' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '/' {
					lx.advance()
					lx.advance()
					closed = true
					break
				}
				lx.advance()
			}
			if !closed {
				return lx.errf(startLine, startCol, "unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentCont(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

// next scans the next token.
func (lx *lexer) next() (token, error) {
	if err := lx.skipSpace(); err != nil {
		return token{}, err
	}
	line, col := lx.line, lx.col
	if lx.pos >= len(lx.src) {
		return token{kind: tokEOF, line: line, col: col}, nil
	}
	c := lx.peekByte()
	switch {
	case isIdentStart(c):
		start := lx.pos
		for lx.pos < len(lx.src) && isIdentCont(lx.peekByte()) {
			lx.advance()
		}
		text := lx.src[start:lx.pos]
		kind := tokIdent
		if keywords[text] {
			kind = tokKeyword
		}
		return token{kind: kind, text: text, line: line, col: col}, nil
	case unicode.IsDigit(rune(c)):
		start := lx.pos
		for lx.pos < len(lx.src) && unicode.IsDigit(rune(lx.peekByte())) {
			lx.advance()
		}
		return token{kind: tokInt, text: lx.src[start:lx.pos], line: line, col: col}, nil
	}
	lx.advance()
	single := map[byte]tokKind{
		'{': tokLBrace, '}': tokRBrace, '(': tokLParen, ')': tokRParen,
		'[': tokLBrack, ']': tokRBrack, ';': tokSemi, ':': tokColon,
		'=': tokAssign, '+': tokPlus,
	}
	if k, ok := single[c]; ok {
		return token{kind: k, text: string(c), line: line, col: col}, nil
	}
	if c == '!' {
		if lx.peekByte() == '=' {
			lx.advance()
			return token{kind: tokNotEq, text: "!=", line: line, col: col}, nil
		}
		return token{}, lx.errf(line, col, "unexpected character '!'")
	}
	return token{}, lx.errf(line, col, "unexpected character %q", string(c))
}

// lexAll scans the whole input, for tests.
func lexAll(src string) ([]token, error) {
	lx := newLexer(src)
	var out []token
	for {
		t, err := lx.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}
