package parser

import (
	"fmt"
	"strconv"

	"fx10/internal/syntax"
)

// DefaultArrayLen is the array length used when a program omits the
// "array n;" header.
const DefaultArrayLen = 16

// Parse parses FX10 source text into a validated Program.
func Parse(src string) (*syntax.Program, error) {
	p := &parser{lx: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	return p.parseProgram()
}

// MustParse is Parse that panics on error, for tests, examples and
// embedded workloads.
func MustParse(src string) *syntax.Program {
	prog, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return prog
}

type parser struct {
	lx  *lexer
	tok token
	b   *syntax.Builder
}

func (p *parser) advance() error {
	t, err := p.lx.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) errf(format string, args ...any) error {
	return &Error{Line: p.tok.line, Col: p.tok.col, Msg: fmt.Sprintf(format, args...)}
}

// expect consumes a token of the given kind (and text, if non-empty).
func (p *parser) expect(kind tokKind, text string) (token, error) {
	if p.tok.kind != kind || (text != "" && p.tok.text != text) {
		what := text
		if what == "" {
			what = [...]string{
				tokEOF: "end of input", tokIdent: "identifier", tokInt: "integer",
				tokLBrace: "'{'", tokRBrace: "'}'", tokLParen: "'('", tokRParen: "')'",
				tokLBrack: "'['", tokRBrack: "']'", tokSemi: "';'", tokColon: "':'",
				tokAssign: "'='", tokPlus: "'+'", tokNotEq: "'!='", tokKeyword: "keyword",
			}[kind]
		} else {
			what = "'" + what + "'"
		}
		return token{}, p.errf("expected %s, found %s", what, p.tok)
	}
	t := p.tok
	if err := p.advance(); err != nil {
		return token{}, err
	}
	return t, nil
}

func (p *parser) atKeyword(kw string) bool {
	return p.tok.kind == tokKeyword && p.tok.text == kw
}

func (p *parser) parseProgram() (*syntax.Program, error) {
	arrayLen := DefaultArrayLen
	if p.atKeyword("array") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		n, err := p.parseInt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSemi, ""); err != nil {
			return nil, err
		}
		arrayLen = n
	}
	p.b = syntax.NewBuilder(arrayLen)
	sawMethod := false
	for p.tok.kind != tokEOF {
		if err := p.parseMethod(); err != nil {
			return nil, err
		}
		sawMethod = true
	}
	if !sawMethod {
		return nil, p.errf("program has no methods")
	}
	return p.b.Program()
}

func (p *parser) parseMethod() error {
	if _, err := p.expect(tokKeyword, "void"); err != nil {
		return err
	}
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return err
	}
	if _, err := p.expect(tokLParen, ""); err != nil {
		return err
	}
	if _, err := p.expect(tokRParen, ""); err != nil {
		return err
	}
	body, err := p.parseBlock()
	if err != nil {
		return err
	}
	if err := p.b.AddMethod(name.text, body); err != nil {
		return p.errf("%v", err)
	}
	return nil
}

// parseBlock parses "{ stmt* }". An empty block desugars to a single
// unlabeled skip.
func (p *parser) parseBlock() (*syntax.Stmt, error) {
	if _, err := p.expect(tokLBrace, ""); err != nil {
		return nil, err
	}
	var instrs []syntax.Instr
	for p.tok.kind != tokRBrace {
		if p.tok.kind == tokEOF {
			return nil, p.errf("unexpected end of input in block")
		}
		i, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		instrs = append(instrs, i)
	}
	if err := p.advance(); err != nil { // consume '}'
		return nil, err
	}
	if len(instrs) == 0 {
		instrs = append(instrs, p.b.Skip(""))
	}
	return p.b.Stmts(instrs...), nil
}

// parseStmt parses one optionally labeled instruction.
func (p *parser) parseStmt() (syntax.Instr, error) {
	label := ""
	if p.tok.kind == tokIdent {
		// Either "label :" or "callee ( )".
		name := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind == tokColon {
			if err := p.advance(); err != nil {
				return nil, err
			}
			label = name
		} else {
			return p.finishCall(label, name)
		}
	}
	switch {
	case p.atKeyword("skip"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSemi, ""); err != nil {
			return nil, err
		}
		return p.b.Skip(label), nil

	case p.atKeyword("a"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		d, err := p.parseIndex()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokAssign, ""); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSemi, ""); err != nil {
			return nil, err
		}
		return p.b.Assign(label, d, e), nil

	case p.atKeyword("while"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokLParen, ""); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "a"); err != nil {
			return nil, err
		}
		d, err := p.parseIndex()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokNotEq, ""); err != nil {
			return nil, err
		}
		zero, err := p.parseInt()
		if err != nil {
			return nil, err
		}
		if zero != 0 {
			return nil, p.errf("while guard must compare against 0, found %d", zero)
		}
		if _, err := p.expect(tokRParen, ""); err != nil {
			return nil, err
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return p.b.While(label, d, body), nil

	case p.atKeyword("next"), p.atKeyword("advance"):
		// "advance" is X10's spelling of the clock barrier; the
		// analyzed subset accepts it as a synonym for "next".
		if err := p.advance(); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSemi, ""); err != nil {
			return nil, err
		}
		return p.b.Next(label), nil

	case p.atKeyword("clocked"), p.atKeyword("async"):
		clocked := p.atKeyword("clocked")
		if clocked {
			if err := p.advance(); err != nil {
				return nil, err
			}
			if !p.atKeyword("async") {
				return nil, p.errf("expected 'async' after 'clocked', found %s", p.tok)
			}
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		place := 0
		if p.atKeyword("at") {
			if err := p.advance(); err != nil {
				return nil, err
			}
			if _, err := p.expect(tokLParen, ""); err != nil {
				return nil, err
			}
			q, err := p.parseInt()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokRParen, ""); err != nil {
				return nil, err
			}
			place = q
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		var instr syntax.Instr
		switch {
		case clocked:
			instr = p.b.ClockedAsync(label, body)
		case place != 0:
			instr = p.b.AsyncAt(label, place, body)
		default:
			instr = p.b.Async(label, body)
		}
		if clocked && place != 0 {
			instr.(*syntax.Async).Place = place
		}
		return instr, nil

	case p.atKeyword("finish"):
		if err := p.advance(); err != nil {
			return nil, err
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return p.b.Finish(label, body), nil

	case p.tok.kind == tokIdent:
		name := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		return p.finishCall(label, name)
	}
	return nil, p.errf("expected an instruction, found %s", p.tok)
}

// finishCall parses the "( ) ;" suffix of a method call whose callee
// name has already been consumed.
func (p *parser) finishCall(label, callee string) (syntax.Instr, error) {
	if _, err := p.expect(tokLParen, ""); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRParen, ""); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSemi, ""); err != nil {
		return nil, err
	}
	return p.b.Call(label, callee), nil
}

// parseIndex parses "[ INT ]".
func (p *parser) parseIndex() (int, error) {
	if _, err := p.expect(tokLBrack, ""); err != nil {
		return 0, err
	}
	n, err := p.parseInt()
	if err != nil {
		return 0, err
	}
	if _, err := p.expect(tokRBrack, ""); err != nil {
		return 0, err
	}
	return n, nil
}

// parseExpr parses e := INT | a [ INT ] + 1.
func (p *parser) parseExpr() (syntax.Expr, error) {
	if p.tok.kind == tokInt {
		c, err := p.parseInt()
		if err != nil {
			return nil, err
		}
		return syntax.Const{C: int64(c)}, nil
	}
	if p.atKeyword("a") {
		if err := p.advance(); err != nil {
			return nil, err
		}
		d, err := p.parseIndex()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPlus, ""); err != nil {
			return nil, err
		}
		one, err := p.parseInt()
		if err != nil {
			return nil, err
		}
		if one != 1 {
			return nil, p.errf("array lookup may only add 1, found %d", one)
		}
		return syntax.Plus{D: d}, nil
	}
	return nil, p.errf("expected an expression, found %s", p.tok)
}

func (p *parser) parseInt() (int, error) {
	t, err := p.expect(tokInt, "")
	if err != nil {
		return 0, err
	}
	n, err := strconv.Atoi(t.text)
	if err != nil {
		return 0, p.errf("bad integer %q", t.text)
	}
	return n, nil
}
