package parser

import (
	"strings"
	"testing"

	"fx10/internal/syntax"
)

// example22 is the Section 2.2 program in concrete syntax.
const example22 = `
array 4;

void f() {
  A5: async { S5: skip; }
}

void main() {
  S1: finish {
    A3: async { S3: skip; }
    C1: f();
  }
  S2: finish {
    C2: f();
    A4: async { S4: skip; }
  }
}
`

func TestParseExample22(t *testing.T) {
	p, err := Parse(example22)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if p.ArrayLen != 4 {
		t.Fatalf("ArrayLen = %d, want 4", p.ArrayLen)
	}
	if len(p.Methods) != 2 {
		t.Fatalf("methods = %d, want 2", len(p.Methods))
	}
	if p.Main().Name != "main" {
		t.Fatalf("main = %q", p.Main().Name)
	}
	for _, name := range []string{"S1", "S2", "S3", "S4", "S5", "A3", "A4", "A5", "C1", "C2"} {
		if _, ok := p.LabelByName(name); !ok {
			t.Fatalf("label %s missing", name)
		}
	}
	s1, _ := p.LabelByName("S1")
	if p.Labels[s1].Kind != syntax.KindFinish {
		t.Fatalf("S1 kind = %v", p.Labels[s1].Kind)
	}
}

func TestParseAllInstructionForms(t *testing.T) {
	src := `
array 8;
void helper() { skip; }
void main() {
  skip;
  a[0] = 42;
  a[1] = a[0] + 1;
  W: while (a[1] != 0) {
    a[1] = 0;
  }
  async { skip; }
  async at (2) { skip; }
  finish { helper(); }
}
`
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	var kinds []syntax.Kind
	p.Main().Body.Each(func(i syntax.Instr) { kinds = append(kinds, i.Kind()) })
	want := []syntax.Kind{
		syntax.KindSkip, syntax.KindAssign, syntax.KindAssign,
		syntax.KindWhile, syntax.KindAsync, syntax.KindAsync, syntax.KindFinish,
	}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("kinds = %v, want %v", kinds, want)
		}
	}
	// The place annotation must be preserved.
	var places []int
	p.Main().Body.Each(func(i syntax.Instr) {
		if a, ok := i.(*syntax.Async); ok {
			places = append(places, a.Place)
		}
	})
	if len(places) != 2 || places[0] != 0 || places[1] != 2 {
		t.Fatalf("places = %v, want [0 2]", places)
	}
	// Assignment payloads.
	var rhs []string
	p.Main().Body.Each(func(i syntax.Instr) {
		if as, ok := i.(*syntax.Assign); ok {
			rhs = append(rhs, as.Rhs.String())
		}
	})
	if len(rhs) != 2 || rhs[0] != "42" || rhs[1] != "a[0] + 1" {
		t.Fatalf("rhs = %v", rhs)
	}
}

func TestDefaultArrayLen(t *testing.T) {
	p := MustParse(`void main() { skip; }`)
	if p.ArrayLen != DefaultArrayLen {
		t.Fatalf("ArrayLen = %d, want %d", p.ArrayLen, DefaultArrayLen)
	}
}

func TestEmptyBlockDesugarsToSkip(t *testing.T) {
	p := MustParse(`void main() { async { } }`)
	a := p.Main().Body.Instr.(*syntax.Async)
	if a.Body == nil || a.Body.Instr.Kind() != syntax.KindSkip {
		t.Fatalf("empty async body should desugar to skip")
	}
}

func TestComments(t *testing.T) {
	src := `
// leading comment
array 2; // trailing
/* block
   comment */
void main() {
  skip; /* inline */ skip;
}
`
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if p.Main().Body.Len() != 2 {
		t.Fatalf("body len = %d, want 2", p.Main().Body.Len())
	}
}

func TestRoundTripPrintParse(t *testing.T) {
	p := MustParse(example22)
	printed := syntax.Print(p)
	q, err := Parse(printed)
	if err != nil {
		t.Fatalf("reparse of Print output failed: %v\n%s", err, printed)
	}
	if syntax.Print(q) != printed {
		t.Fatalf("Print/Parse not a fixpoint:\n--- first ---\n%s\n--- second ---\n%s", printed, syntax.Print(q))
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"no methods", `array 4;`, "no methods"},
		{"missing main", `void f() { skip; }`, "main"},
		{"undefined call", `void main() { g(); }`, "undefined method"},
		{"bad guard const", `void main() { while (a[0] != 1) { skip; } }`, "compare against 0"},
		{"bad plus const", `void main() { a[0] = a[0] + 2; }`, "may only add 1"},
		{"index out of range", `array 2; void main() { a[5] = 1; }`, "array index"},
		{"unterminated comment", "void main() { /* skip; }", "unterminated"},
		{"stray char", `void main() { skip; $ }`, "unexpected character"},
		{"lone bang", `void main() { a[0] ! }`, "unexpected character"},
		{"missing semi", `void main() { skip }`, "expected"},
		{"duplicate method", `void main() { skip; } void main() { skip; }`, "duplicate"},
		{"duplicate label", `void main() { X: skip; X: skip; }`, "label"},
		{"eof in block", `void main() { skip;`, "unexpected end of input"},
		{"keyword as callee", `void main() { while(); }`, "expected"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src)
			if err == nil {
				t.Fatalf("Parse succeeded, want error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error = %q, want it to contain %q", err.Error(), tc.want)
			}
		})
	}
}

func TestErrorPositions(t *testing.T) {
	_, err := Parse("void main() {\n  skip\n}")
	if err == nil {
		t.Fatalf("want error")
	}
	pe, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T, want *Error", err)
	}
	if pe.Line != 3 { // the '}' where ';' was expected
		t.Fatalf("error line = %d, want 3 (%v)", pe.Line, err)
	}
}

func TestLexAll(t *testing.T) {
	toks, err := lexAll(`x1: a[0] = a[1] + 1; // c`)
	if err != nil {
		t.Fatalf("lexAll: %v", err)
	}
	var kinds []tokKind
	for _, tk := range toks {
		kinds = append(kinds, tk.kind)
	}
	want := []tokKind{
		tokIdent, tokColon, tokKeyword, tokLBrack, tokInt, tokRBrack,
		tokAssign, tokKeyword, tokLBrack, tokInt, tokRBrack, tokPlus,
		tokInt, tokSemi, tokEOF,
	}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("kinds[%d] = %v, want %v", i, kinds[i], want[i])
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("MustParse did not panic on bad input")
		}
	}()
	MustParse("not a program")
}

func TestLabeledCall(t *testing.T) {
	p := MustParse(`
void f() { skip; }
void main() { C: f(); }
`)
	c, ok := p.LabelByName("C")
	if !ok {
		t.Fatalf("label C missing")
	}
	if p.Labels[c].Kind != syntax.KindCall {
		t.Fatalf("C kind = %v, want call", p.Labels[c].Kind)
	}
}

func TestMutualRecursionParses(t *testing.T) {
	p := MustParse(`
void main() { even(); }
void even() { odd(); }
void odd() { even(); }
`)
	if len(p.Methods) != 3 {
		t.Fatalf("methods = %d", len(p.Methods))
	}
}
