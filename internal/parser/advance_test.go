package parser

import (
	"testing"

	"fx10/internal/syntax"
)

// "advance" is accepted as a synonym for "next" and canonicalizes to
// it: the printed form uses "next", and reparsing is a fixpoint.
func TestAdvanceIsNextSynonym(t *testing.T) {
	p := MustParse(`
array 4;
void main() {
  C: clocked async {
    A: advance;
  }
  N: next;
}
`)
	a, ok := p.LabelByName("A")
	if !ok {
		t.Fatal("label A missing")
	}
	if _, isNext := p.Labels[a].Instr.(*syntax.Next); !isNext {
		t.Fatalf("advance parsed as %T, want *syntax.Next", p.Labels[a].Instr)
	}

	q := MustParse(`
array 4;
void main() {
  C: clocked async {
    A: next;
  }
  N: next;
}
`)
	if syntax.Print(p) != syntax.Print(q) {
		t.Fatalf("advance and next print differently:\n%s\nvs\n%s",
			syntax.Print(p), syntax.Print(q))
	}

	printed := syntax.Print(p)
	r, err := Parse(printed)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if syntax.Print(r) != printed {
		t.Fatalf("advance print/parse not a fixpoint")
	}
}

// "advance" is reserved: it cannot be a label or method name.
func TestAdvanceIsKeyword(t *testing.T) {
	if _, err := Parse("array 2;\nvoid advance() { skip; }\nvoid main() { skip; }"); err == nil {
		t.Fatal("parser accepted 'advance' as a method name")
	}
}
