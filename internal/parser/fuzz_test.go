package parser

import (
	"testing"

	"fx10/internal/syntax"
)

// FuzzParse checks that the parser never panics, and that every
// accepted program validates and round-trips through the printer.
// Run with `go test -fuzz FuzzParse ./internal/parser` to explore; the
// seed corpus runs in every normal `go test`.
func FuzzParse(f *testing.F) {
	seeds := []string{
		example22, // the package-level test fixture
		"array 1; void main() { skip; }",
		"void main() { a[0] = a[1] + 1; }",
		"void main() { while (a[0] != 0) { async { next; } } }",
		"void main() { clocked async at (2) { finish { skip; } } }",
		"void f() { g(); } void g() { f(); } void main() { f(); }",
		"", "array", "array 4", "void", "void main() {",
		"void main() { X: }", "void main() { a[] = 1; }",
		"void main() { /* ", "void main() { // x", "}{", "!!",
		"void main() { S: S: skip; }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		if verr := syntax.Validate(p); verr != nil {
			t.Fatalf("accepted program fails validation: %v\n%s", verr, src)
		}
		printed := syntax.Print(p)
		q, rerr := Parse(printed)
		if rerr != nil {
			t.Fatalf("printed form does not reparse: %v\n%s", rerr, printed)
		}
		if syntax.Print(q) != printed {
			t.Fatalf("print/parse not a fixpoint:\n%s", printed)
		}
	})
}
