package clocks

import (
	"fx10/internal/intset"
	"fx10/internal/syntax"
)

// Phase is an abstract clock phase: unset (⊥), a known concrete
// phase, or unknown (⊤).
type Phase struct {
	// state: 0 = unset, 1 = known, 2 = unknown.
	state int8
	n     int
}

// Unset is the lattice bottom.
var Unset = Phase{state: 0}

// Unknown is the lattice top: the label may execute at any phase.
var Unknown = Phase{state: 2}

// Known returns the phase "exactly n barriers have been passed".
func Known(n int) Phase { return Phase{state: 1, n: n} }

// IsKnown reports whether the phase is a concrete value, and returns
// it.
func (p Phase) IsKnown() (int, bool) { return p.n, p.state == 1 }

// Join is the lattice join: ⊥ is the identity, ⊤ absorbs, and two
// different known phases merge to ⊤. It is commutative, associative
// and idempotent (see the lattice-law tests).
func (p Phase) Join(q Phase) Phase {
	switch {
	case p.state == 0:
		return q
	case q.state == 0:
		return p
	case p.state == 2 || q.state == 2:
		return Unknown
	case p.n == q.n:
		return p
	default:
		return Unknown
	}
}

// add shifts a known phase by a delta; unknown deltas poison it.
func (p Phase) add(d delta) Phase {
	if p.state != 1 {
		return p
	}
	if !d.fixed {
		return Unknown
	}
	return Known(p.n + d.n)
}

// Ordered reports whether two phases are provably ordered by the
// single implicit clock: both are known and different, so the barrier
// serializes them and the labels can never execute simultaneously.
// Any ⊥ or ⊤ operand yields false (no ordering fact).
func (p Phase) Ordered(q Phase) bool {
	return p.state == 1 && q.state == 1 && p.n != q.n
}

func (p Phase) String() string {
	switch p.state {
	case 0:
		return "⊥"
	case 1:
		return itoa(p.n)
	default:
		return "?"
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	neg := n < 0
	if neg {
		n = -n
	}
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}

// delta is how many barriers a statement (or method body) passes in
// the executing activity: a fixed count, or unknown (a next inside a
// loop, or a loop whose trip count decides).
type delta struct {
	fixed bool
	n     int
}

var zeroDelta = delta{fixed: true}
var unknownDelta = delta{}

func (d delta) plus(e delta) delta {
	if !d.fixed || !e.fixed {
		return unknownDelta
	}
	return delta{fixed: true, n: d.n + e.n}
}

// PhaseInfo is the result of the static phase analysis: for every
// label, the clock phase its activity is guaranteed to be at whenever
// the label executes — or Unknown when that is not static.
//
// The key soundness fact (single implicit clock): a registered
// activity observes the global phase exactly; between its own
// barriers the clock cannot advance, because a barrier needs *every*
// live registered activity parked at a next. So a label's phase is
// its activity's spawn phase plus the number of barriers on the path
// from the activity's start — exact whenever that count is fixed.
// Labels in unregistered activities, under phase-varying loops, or in
// methods reachable at several phases are Unknown.
type PhaseInfo struct {
	p      *syntax.Program
	phases []Phase
	// methodDelta[mi] is how many barriers a call to mi passes in the
	// caller's activity.
	methodDelta []delta
	// methodEntry[mi] is the join of phases the method is entered at.
	methodEntry []Phase
}

// ComputePhases runs the analysis.
func ComputePhases(p *syntax.Program) *PhaseInfo {
	pi := &PhaseInfo{
		p:           p,
		phases:      make([]Phase, p.NumLabels()),
		methodDelta: make([]delta, len(p.Methods)),
		methodEntry: make([]Phase, len(p.Methods)),
	}
	pi.computeDeltas()
	pi.propagate()
	return pi
}

// computeDeltas fixpoints the per-method barrier deltas (recursive
// methods that pass barriers converge to unknown via the loop rule;
// a recursive method with no nexts anywhere stays at zero).
func (pi *PhaseInfo) computeDeltas() {
	for i := range pi.methodDelta {
		pi.methodDelta[i] = zeroDelta
	}
	for {
		changed := false
		for mi, m := range pi.p.Methods {
			d := pi.stmtDelta(m.Body)
			if d != pi.methodDelta[mi] {
				pi.methodDelta[mi] = d
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}

// stmtDelta is the barrier delta of running s in the current
// activity.
func (pi *PhaseInfo) stmtDelta(s *syntax.Stmt) delta {
	d := zeroDelta
	for cur := s; cur != nil; cur = cur.Next {
		switch i := cur.Instr.(type) {
		case *syntax.Next:
			d = d.plus(delta{fixed: true, n: 1})
		case *syntax.While:
			if body := pi.stmtDelta(i.Body); !body.fixed || body.n != 0 {
				return unknownDelta // trip count decides the phase
			}
		case *syntax.Finish:
			// The finish body runs in the same activity.
			d = d.plus(pi.stmtDelta(i.Body))
		case *syntax.Call:
			d = d.plus(pi.methodDelta[i.Method])
		case *syntax.Async:
			// A child activity's barriers are its own.
		}
	}
	return d
}

// propagate fixpoints label phases from main (phase 0).
func (pi *PhaseInfo) propagate() {
	pi.methodEntry[pi.p.MainIndex] = Known(0)
	for {
		changed := false
		for mi, m := range pi.p.Methods {
			entry := pi.methodEntry[mi]
			if entry.state == 0 {
				continue // not reachable (yet)
			}
			if pi.walk(m.Body, entry) {
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}

// setLabel joins ph into the label's phase and reports change.
func (pi *PhaseInfo) setLabel(l syntax.Label, ph Phase) bool {
	next := pi.phases[l].Join(ph)
	if next != pi.phases[l] {
		pi.phases[l] = next
		return true
	}
	return false
}

// setEntry joins ph into a method's entry phase and reports change.
func (pi *PhaseInfo) setEntry(mi int, ph Phase) bool {
	next := pi.methodEntry[mi].Join(ph)
	if next != pi.methodEntry[mi] {
		pi.methodEntry[mi] = next
		return true
	}
	return false
}

// walk threads the current phase through the statement, labeling as
// it goes; it reports whether any phase grew.
func (pi *PhaseInfo) walk(s *syntax.Stmt, cur Phase) bool {
	changed := false
	for st := s; st != nil; st = st.Next {
		i := st.Instr
		if pi.setLabel(i.Label(), cur) {
			changed = true
		}
		switch i := i.(type) {
		case *syntax.Next:
			// The barrier instruction itself runs at the incoming
			// phase; the continuation is one phase later.
			cur = cur.add(delta{fixed: true, n: 1})

		case *syntax.While:
			// A barrier-free body keeps the whole loop in the
			// incoming phase (the clock cannot advance while this
			// registered activity is between barriers); a body that
			// passes barriers makes the phase trip-count-dependent.
			bodyDelta := pi.stmtDelta(i.Body)
			inside := cur
			if !bodyDelta.fixed || bodyDelta.n != 0 {
				inside = Unknown
			}
			if pi.walk(i.Body, inside) {
				changed = true
			}
			cur = inside

		case *syntax.Finish:
			if pi.walk(i.Body, cur) {
				changed = true
			}
			cur = cur.add(pi.stmtDelta(i.Body))

		case *syntax.Async:
			spawn := cur
			if !i.Clocked {
				// Unregistered: the clock advances underneath it.
				spawn = Unknown
			}
			if pi.walk(i.Body, spawn) {
				changed = true
			}

		case *syntax.Call:
			if pi.setEntry(i.Method, cur) {
				changed = true
			}
			cur = cur.add(pi.methodDelta[i.Method])
		}
	}
	return changed
}

// PhaseOf returns the computed phase of a label.
func (pi *PhaseInfo) PhaseOf(l syntax.Label) Phase { return pi.phases[l] }

// Codes flattens the analysis to one int32 per label: the concrete
// phase for Known labels, -1 for ⊥/⊤. Two labels with non-negative,
// different codes are Ordered. This is the compact form the
// constraint solvers consume on their hot path.
func (pi *PhaseInfo) Codes() []int32 {
	codes := make([]int32, len(pi.phases))
	for l, ph := range pi.phases {
		if n, ok := ph.IsKnown(); ok {
			codes[l] = int32(n)
		} else {
			codes[l] = -1
		}
	}
	return codes
}

// Refine removes from an MHP pair set every pair whose two labels
// have known, different phases: the single clock serializes different
// phases, so such statements can never execute simultaneously. The
// result is a subset of m and remains a sound MHP approximation for
// the clocked semantics.
func (pi *PhaseInfo) Refine(m *intset.PairSet) *intset.PairSet {
	out := intset.NewPairs(pi.p.NumLabels())
	m.Each(func(i, j int) {
		a, aok := pi.phases[i].IsKnown()
		b, bok := pi.phases[j].IsKnown()
		if aok && bok && a != b {
			return
		}
		out.Add(i, j)
	})
	return out
}
